package perfmodel

import (
	"math"
	"testing"
)

func TestKaaMntPerSecKnown(t *testing.T) {
	// 10,335,365 aa bank × 220 Mnt genome in 3667 s (the paper's 30K /
	// 192 PE row) gives ≈ 620 KaaMnt/s — Table 5's ½RASC-100 value.
	got := KaaMntPerSec(10_335_365, 220_000_000, 3667)
	if math.Abs(got-620) > 1 {
		t.Errorf("KaaMnt/s = %f, want ≈ 620 (paper Table 5)", got)
	}
}

func TestKaaMntPerSecDeCypher(t *testing.T) {
	// DeCypher benchmark: 1,358,990 aa vs 775,191,168 nt in 1h36 ⇒ 182.
	got := KaaMntPerSec(1_358_990, 775_191_168, 96*60)
	if math.Abs(got-182) > 2 {
		t.Errorf("DeCypher KaaMnt/s = %f, want ≈ 182", got)
	}
}

func TestKaaMntPerSecDegenerate(t *testing.T) {
	if KaaMntPerSec(1000, 1000, 0) != 0 {
		t.Error("zero time should give 0")
	}
	if KaaMntPerSec(1000, 1000, -5) != 0 {
		t.Error("negative time should give 0")
	}
}

func TestPaperComparators(t *testing.T) {
	if len(PaperComparators) != 5 {
		t.Fatalf("Table 5 has 5 rows, got %d", len(PaperComparators))
	}
	wants := map[string]float64{
		"DeCypher":     182,
		"CLC":          2,
		"FLASH/FPGA":   451,
		"Systolic":     863,
		"1/2 RASC-100": 620,
	}
	for _, c := range PaperComparators {
		if wants[c.Name] != c.Value {
			t.Errorf("%s = %f, want %f", c.Name, c.Value, wants[c.Name])
		}
		if c.Note == "" {
			t.Errorf("%s missing provenance note", c.Name)
		}
	}
}
