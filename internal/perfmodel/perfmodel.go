// Package perfmodel computes the throughput measure of the paper's
// Table 5 — Kilo amino acids × Mega nucleotides processed per second
// (KaaMnt/sec) — and carries the literature constants the paper
// compares against.
package perfmodel

// KaaMntPerSec returns the Table 5 ratio: the product of the protein
// bank size in kilo amino acids and the genome size in mega
// nucleotides, divided by the processing time.
func KaaMntPerSec(bankResidues, genomeNt int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	kaa := float64(bankResidues) / 1e3
	mnt := float64(genomeNt) / 1e6
	return kaa * mnt / seconds
}

// Comparator is one row of Table 5: a published implementation and its
// throughput as reported or extrapolated by the paper.
type Comparator struct {
	Name  string
	Value float64 // KaaMnt/sec
	Note  string
}

// PaperComparators lists Table 5's literature values. The paper's own
// measurement (half a RASC-100, one FPGA with 192 PEs) is 620.
var PaperComparators = []Comparator{
	{Name: "DeCypher", Value: 182, Note: "TimeLogic benchmark [1]: 4289 proteins vs 192 bacterial genomes in 1h36"},
	{Name: "CLC", Value: 2, Note: "extrapolated from GCUPS in [3]; full Smith-Waterman, strongly biased"},
	{Name: "FLASH/FPGA", Value: 451, Note: "index-in-flash prototype [9], hardware not on the market"},
	{Name: "Systolic", Value: 863, Note: "peak, 3072-PE array exactly matching sequence length [6]; 258 for a standard 330 aa protein; no gap extension"},
	{Name: "1/2 RASC-100", Value: 620, Note: "the paper's measurement: one FPGA, 192 PEs at 100 MHz"},
}
