package pipeline

import (
	"context"
	"strings"
	"sync"
	"testing"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/gapped"
	"seedblast/internal/index"
	"seedblast/internal/seed"
)

// poisonedModel wraps a seed model but returns an out-of-range key for
// the window equal to trigger, so an index build fails exactly for
// banks containing that window.
type poisonedModel struct {
	seed.Model
	trigger []byte
}

func (m poisonedModel) Key(w []byte) (uint32, bool) {
	if string(w) == string(m.trigger) {
		return 1 << 30, true
	}
	return m.Model.Key(w)
}

func mustEncode(t *testing.T, s string) []byte {
	t.Helper()
	b, err := alphabet.EncodeProtein(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Regression: a shard whose index build fails must not be counted in
// Metrics.Index.Shards, and the metrics must still be observable on
// the failure path (Run returns a non-nil Output carrying them).
func TestIndexFailureNotCountedInShardMetrics(t *testing.T) {
	clean := strings.Repeat("CDEFGHIKLMNPQRSTVWY", 3)
	b0 := bank.New("queries")
	b0.Add("q0", mustEncode(t, clean))
	b0.Add("q1", mustEncode(t, clean))
	b0.Add("q2", mustEncode(t, "CDEFG"+"AAA"+"HIKLM")) // poisons shard 1
	b0.Add("q3", mustEncode(t, clean))
	b1 := bank.New("subjects")
	b1.Add("s0", mustEncode(t, clean))

	model := poisonedModel{Model: seed.Exact(3), trigger: mustEncode(t, "AAA")}
	gcfg := gapped.DefaultConfig()
	gcfg.MaxEValue = 10
	gcfg.Workers = 1
	req := &Request{
		Bank0:   b0,
		Bank1:   b1,
		Seed:    model,
		N:       5,
		Workers: 1,
		Gapped:  gcfg,
	}
	eng, err := New(Config{ShardSize: 2, InFlight: 1}, testBackend())
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run(context.Background(), req)
	if err == nil {
		t.Fatal("expected shard index failure")
	}
	if !strings.Contains(err.Error(), "shard 1 index") {
		t.Fatalf("error %q does not identify the failing shard's index build", err)
	}
	if out == nil {
		t.Fatal("failure after the dataflow started must return Output with Metrics")
	}
	if out.Metrics.Shards != 2 {
		t.Errorf("planned shards = %d, want 2", out.Metrics.Shards)
	}
	if out.Metrics.Index.Shards != 1 {
		t.Errorf("Index.Shards = %d, want 1 (the failed build must not count)",
			out.Metrics.Index.Shards)
	}
	if out.Metrics.Index.Busy <= 0 {
		t.Error("Index.Busy should still record the time spent, including the failed build")
	}
}

// assertSameAlignments fails unless two alignment sets are
// bit-identical, including order.
func assertSameAlignments(t *testing.T, want, got []gapped.Alignment) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("alignment count differs: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Seq0 != g.Seq0 || w.Seq1 != g.Seq1 || w.Score != g.Score ||
			w.BitScore != g.BitScore || w.EValue != g.EValue ||
			w.Q != g.Q || w.S != g.S || len(w.Ops) != len(g.Ops) {
			t.Fatalf("alignment %d differs:\nwant %+v\n got %+v", i, w, g)
		}
		for j := range w.Ops {
			if w.Ops[j] != g.Ops[j] {
				t.Fatalf("alignment %d op %d differs", i, j)
			}
		}
	}
}

// The documented concurrency contract: one Engine, many simultaneous
// Run calls sharing one prebuilt subject index, every request's output
// bit-identical to a sequential run. Run under -race in CI.
func TestConcurrentRunsBitIdentical(t *testing.T) {
	b0, b1 := testBanks(t, 16)
	model := testSeed(t)
	ix1, err := index.BuildParallel(b1, model, 14, 0)
	if err != nil {
		t.Fatal(err)
	}
	newReq := func() *Request {
		gcfg := gapped.DefaultConfig()
		gcfg.MaxEValue = 10
		gcfg.Workers = 2
		return &Request{
			Bank0:   b0,
			Bank1:   b1,
			Seed:    model,
			N:       14,
			Workers: 2,
			Gapped:  gcfg,
			Index1:  ix1,
		}
	}
	eng, err := New(Config{ShardSize: 5, InFlight: 2, Step2Workers: 2, Step3Workers: 2}, testBackend())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Run(context.Background(), newReq())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Alignments) == 0 {
		t.Fatal("reference run found no alignments; workload too weak for the test")
	}

	const parallel = 6
	outs := make([]*Output, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = eng.Run(context.Background(), newReq())
		}(i)
	}
	wg.Wait()
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		assertSameAlignments(t, ref.Alignments, outs[i].Alignments)
		if outs[i].Hits != ref.Hits || outs[i].Pairs != ref.Pairs {
			t.Fatalf("concurrent run %d: hits/pairs diverge (%d/%d vs %d/%d)",
				i, outs[i].Hits, outs[i].Pairs, ref.Hits, ref.Pairs)
		}
	}
}
