package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"seedblast/internal/gapped"
)

// TestRunStreamOrderIdentical pins the streaming contract: the
// concatenation of emitted batches is element-for-element the
// materialized Run output, for several shard sizes and worker counts.
func TestRunStreamOrderIdentical(t *testing.T) {
	b0, b1 := testBanks(t, 12)
	req := testRequest(t, b0, b1)

	for _, cfg := range []Config{
		{},
		{ShardSize: 1, InFlight: 3, Step2Workers: 2, Step3Workers: 2},
		{ShardSize: 2, InFlight: 2, Step2Workers: 3, Step3Workers: 3},
		{ShardSize: 5, InFlight: 1, Step2Workers: 1, Step3Workers: 1},
	} {
		ref := mustRun(t, cfg, testBackend(), req)
		if len(ref.Alignments) == 0 {
			t.Fatal("degenerate workload: no alignments")
		}

		eng, err := New(cfg, testBackend())
		if err != nil {
			t.Fatal(err)
		}
		var streamed []gapped.Alignment
		batches := 0
		out, err := eng.RunStream(context.Background(), req, func(as []gapped.Alignment) error {
			batches++
			streamed = append(streamed, as...)
			return nil
		})
		if err != nil {
			t.Fatalf("shard=%d: %v", cfg.ShardSize, err)
		}
		if out.Alignments != nil {
			t.Errorf("shard=%d: streaming run materialized %d alignments", cfg.ShardSize, len(out.Alignments))
		}
		if batches != out.Metrics.Shards {
			t.Errorf("shard=%d: %d batches emitted, want one per shard (%d)",
				cfg.ShardSize, batches, out.Metrics.Shards)
		}
		if !reflect.DeepEqual(streamed, ref.Alignments) {
			t.Errorf("shard=%d: streamed alignments diverge from Run (got %d, want %d)",
				cfg.ShardSize, len(streamed), len(ref.Alignments))
		}
		if out.Hits != ref.Hits || out.Pairs != ref.Pairs || out.GappedWork != ref.GappedWork {
			t.Errorf("shard=%d: streaming counters diverge", cfg.ShardSize)
		}
	}
}

// TestRunStreamPeakBuffer pins the memory win the streaming path
// exists for: on a multi-shard run the peak resident match buffer is
// strictly below the materialized path's (which holds the entire
// output at once).
func TestRunStreamPeakBuffer(t *testing.T) {
	b0, b1 := testBanks(t, 16)
	req := testRequest(t, b0, b1)
	cfg := Config{ShardSize: 2, InFlight: 2, Step2Workers: 2, Step3Workers: 1}

	ref := mustRun(t, cfg, testBackend(), req)
	if got, want := ref.Metrics.MaxBufferedMatches, len(ref.Alignments); got != want {
		t.Fatalf("materialized peak buffer %d, want the whole output %d", got, want)
	}

	eng, err := New(cfg, testBackend())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	out, err := eng.RunStream(context.Background(), req, func(as []gapped.Alignment) error {
		total += len(as)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != len(ref.Alignments) {
		t.Fatalf("streamed %d alignments, want %d", total, len(ref.Alignments))
	}
	if out.Metrics.MaxBufferedMatches >= ref.Metrics.MaxBufferedMatches {
		t.Errorf("streaming peak buffer %d, want below materialized %d",
			out.Metrics.MaxBufferedMatches, ref.Metrics.MaxBufferedMatches)
	}
}

// TestRunStreamEmitError pins that a failing consumer sinks the run.
func TestRunStreamEmitError(t *testing.T) {
	b0, b1 := testBanks(t, 6)
	req := testRequest(t, b0, b1)
	eng, err := New(Config{ShardSize: 1}, testBackend())
	if err != nil {
		t.Fatal(err)
	}
	sinkErr := errors.New("consumer gone")
	out, err := eng.RunStream(context.Background(), req, func([]gapped.Alignment) error {
		return sinkErr
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("emit error not propagated: %v", err)
	}
	if out == nil {
		t.Fatal("failed run returned no metrics")
	}
	if _, err := eng.RunStream(context.Background(), req, nil); err == nil {
		t.Error("nil emit accepted")
	}
}
