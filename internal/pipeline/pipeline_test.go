package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seedblast/internal/bank"
	"seedblast/internal/gapped"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/seed"
	"seedblast/internal/ungapped"
)

// testSeed returns a W=3 subset seed over a 10³-key space: small
// enough that tests run in milliseconds, rich enough that buckets
// collide across sequences.
func testSeed(t testing.TB) seed.Model {
	t.Helper()
	m, err := seed.NewSubset("test-1k", seed.Murphy10(), seed.Murphy10(), seed.Murphy10())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testBanks generates a query bank and a subject bank containing
// mutated copies of the queries, so step 2 finds real hits and step 3
// real alignments.
func testBanks(t testing.TB, n0 int) (*bank.Bank, *bank.Bank) {
	t.Helper()
	b0 := bank.GenerateProteins(bank.ProteinConfig{N: n0, MeanLen: 90, LenJitter: 30, Seed: 7})
	rng := bank.NewRNG(9)
	b1 := bank.New("subjects")
	for i := 0; i < b0.Len(); i++ {
		b1.Add(fmt.Sprintf("s%d", i), bank.MutateProtein(rng, b0.Seq(i), 0.15))
	}
	return b0, b1
}

func testRequest(t testing.TB, b0, b1 *bank.Bank) *Request {
	t.Helper()
	gcfg := gapped.DefaultConfig()
	gcfg.MaxEValue = 10 // generous: the synthetic banks are small
	gcfg.Workers = 1
	return &Request{
		Bank0:   b0,
		Bank1:   b1,
		Seed:    testSeed(t),
		N:       14,
		Workers: 1,
		Gapped:  gcfg,
	}
}

func testBackend() *CPUBackend {
	return &CPUBackend{Matrix: matrix.BLOSUM62, Threshold: 30, Workers: 1}
}

func mustRun(t *testing.T, cfg Config, backend Backend, req *Request) *Output {
	t.Helper()
	eng, err := New(cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPlanShards(t *testing.T) {
	cases := []struct {
		n, size int
		want    [][2]int
	}{
		{0, 4, nil},
		{5, 0, [][2]int{{0, 5}}},
		{5, -3, [][2]int{{0, 5}}},
		{5, 5, [][2]int{{0, 5}}},
		{5, 9, [][2]int{{0, 5}}},
		{6, 2, [][2]int{{0, 2}, {2, 4}, {4, 6}}},
		{5, 2, [][2]int{{0, 2}, {2, 4}, {4, 5}}},
		{5, 1, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}},
	}
	for _, c := range cases {
		got := planShards(c.n, c.size)
		if len(got) != len(c.want) {
			t.Fatalf("planShards(%d,%d) = %v, want %v", c.n, c.size, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("planShards(%d,%d) = %v, want %v", c.n, c.size, got, c.want)
			}
		}
	}
}

// hitKey is a comparable projection of a hit for set comparison.
type hitKey struct {
	Key    uint32
	S0, O0 uint32
	S1, O1 uint32
	Score  int32
}

func sortedHitKeys(hits []ungapped.Hit) []hitKey {
	out := make([]hitKey, len(hits))
	for i, h := range hits {
		out[i] = hitKey{h.Key, h.E0.Seq, h.E0.Off, h.E1.Seq, h.E1.Off, h.Score}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.S0 != b.S0 {
			return a.S0 < b.S0
		}
		if a.S1 != b.S1 {
			return a.S1 < b.S1
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.O0 != b.O0 {
			return a.O0 < b.O0
		}
		return a.O1 < b.O1
	})
	return out
}

func normalizeAligns(as []gapped.Alignment) []gapped.Alignment {
	out := append([]gapped.Alignment(nil), as...)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Seq0 != b.Seq0 {
			return a.Seq0 < b.Seq0
		}
		if a.Seq1 != b.Seq1 {
			return a.Seq1 < b.Seq1
		}
		if a.Q.Start != b.Q.Start {
			return a.Q.Start < b.Q.Start
		}
		if a.S.Start != b.S.Start {
			return a.S.Start < b.S.Start
		}
		return a.Score > b.Score
	})
	return out
}

// TestShardSizesEquivalent is the shard edge-case matrix: shard sizes
// of 1, a mid split, exactly bank-length and beyond bank-length must
// all produce the single-shard run's hit set, alignment set and merged
// index statistics.
func TestShardSizesEquivalent(t *testing.T) {
	b0, b1 := testBanks(t, 9)
	req := testRequest(t, b0, b1)
	req.KeepHits = true

	ref := mustRun(t, Config{}, testBackend(), req)
	if ref.Hits == 0 || len(ref.Alignments) == 0 {
		t.Fatalf("degenerate workload: %d hits, %d alignments", ref.Hits, len(ref.Alignments))
	}
	if ref.Metrics.Shards != 1 {
		t.Fatalf("zero config ran %d shards, want 1", ref.Metrics.Shards)
	}
	refHits := sortedHitKeys(ref.UngappedHits)
	refAligns := normalizeAligns(ref.Alignments)

	for _, ss := range []int{1, 4, b0.Len(), b0.Len() + 13} {
		for _, workers := range []int{1, 3} {
			name := fmt.Sprintf("shard=%d/workers=%d", ss, workers)
			cfg := Config{ShardSize: ss, InFlight: 2, Step2Workers: workers, Step3Workers: workers}
			out := mustRun(t, cfg, testBackend(), req)
			if out.Hits != ref.Hits || out.Pairs != ref.Pairs {
				t.Fatalf("%s: hits/pairs %d/%d, want %d/%d", name, out.Hits, out.Pairs, ref.Hits, ref.Pairs)
			}
			if out.Stats0 != ref.Stats0 {
				t.Errorf("%s: merged Stats0 %+v, want %+v", name, out.Stats0, ref.Stats0)
			}
			if out.Stats1 != ref.Stats1 {
				t.Errorf("%s: Stats1 %+v, want %+v", name, out.Stats1, ref.Stats1)
			}
			if out.GappedWork != ref.GappedWork {
				t.Errorf("%s: gapped stats %+v, want %+v", name, out.GappedWork, ref.GappedWork)
			}
			gotHits := sortedHitKeys(out.UngappedHits)
			if len(gotHits) != len(refHits) {
				t.Fatalf("%s: %d hits, want %d", name, len(gotHits), len(refHits))
			}
			for i := range gotHits {
				if gotHits[i] != refHits[i] {
					t.Fatalf("%s: hit %d = %+v, want %+v", name, i, gotHits[i], refHits[i])
				}
			}
			gotAligns := normalizeAligns(out.Alignments)
			if len(gotAligns) != len(refAligns) {
				t.Fatalf("%s: %d alignments, want %d", name, len(gotAligns), len(refAligns))
			}
			for i := range gotAligns {
				a, b := gotAligns[i], refAligns[i]
				if a.Seq0 != b.Seq0 || a.Seq1 != b.Seq1 || a.Score != b.Score ||
					a.Q != b.Q || a.S != b.S || a.EValue != b.EValue {
					t.Fatalf("%s: alignment %d differs: %+v vs %+v", name, i, a, b)
				}
			}
			wantShards := len(planShards(b0.Len(), ss))
			if out.Metrics.Shards != wantShards ||
				out.Metrics.Index.Shards != wantShards ||
				out.Metrics.Step2.Shards != wantShards ||
				out.Metrics.Step3.Shards != wantShards {
				t.Errorf("%s: metrics shards %+v, want %d per stage", name, out.Metrics, wantShards)
			}
		}
	}
}

func TestEmptyQueryBank(t *testing.T) {
	_, b1 := testBanks(t, 3)
	req := testRequest(t, bank.New("empty"), b1)
	out := mustRun(t, Config{ShardSize: 2}, testBackend(), req)
	if out.Hits != 0 || out.Pairs != 0 || len(out.Alignments) != 0 {
		t.Fatalf("empty bank produced work: %+v", out)
	}
	if out.Metrics.Shards != 0 {
		t.Fatalf("empty bank planned %d shards", out.Metrics.Shards)
	}
	if out.Stats0.Keys != req.Seed.KeySpace() || out.Stats0.Entries != 0 {
		t.Fatalf("empty bank stats %+v", out.Stats0)
	}
}

func TestPrebuiltSubjectIndex(t *testing.T) {
	b0, b1 := testBanks(t, 6)
	req := testRequest(t, b0, b1)
	ref := mustRun(t, Config{ShardSize: 2}, testBackend(), req)

	ix1, err := index.Build(b1, req.Seed, req.N)
	if err != nil {
		t.Fatal(err)
	}
	req.Index1 = ix1
	out := mustRun(t, Config{ShardSize: 2}, testBackend(), req)
	if out.Hits != ref.Hits || len(out.Alignments) != len(ref.Alignments) {
		t.Fatalf("prebuilt index diverged: %d/%d hits, %d/%d alignments",
			out.Hits, ref.Hits, len(out.Alignments), len(ref.Alignments))
	}

	// A mismatched prebuilt index must be rejected.
	wrong, err := index.Build(b1, req.Seed, req.N+1)
	if err != nil {
		t.Fatal(err)
	}
	req.Index1 = wrong
	eng, err := New(Config{}, testBackend())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), req); err == nil {
		t.Fatal("mismatched Index1 accepted")
	}
}

func TestPrebuiltQueryIndex(t *testing.T) {
	b0, b1 := testBanks(t, 6)
	req := testRequest(t, b0, b1)
	ref := mustRun(t, Config{}, testBackend(), req)

	ix0, err := index.Build(b0, req.Seed, req.N)
	if err != nil {
		t.Fatal(err)
	}
	req.Index0 = ix0
	out := mustRun(t, Config{}, testBackend(), req)
	if out.Hits != ref.Hits || len(out.Alignments) != len(ref.Alignments) || out.Stats0 != ref.Stats0 {
		t.Fatalf("prebuilt query index diverged: %d/%d hits, %d/%d alignments",
			out.Hits, ref.Hits, len(out.Alignments), len(ref.Alignments))
	}

	// Index0 is whole-bank only: a sharded run must reject it.
	eng, err := New(Config{ShardSize: 2}, testBackend())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), req); err == nil {
		t.Fatal("Index0 accepted on a sharded run")
	}

	// And a mismatched one must be rejected even single-shard.
	wrong, err := index.Build(b0, req.Seed, req.N+1)
	if err != nil {
		t.Fatal(err)
	}
	req.Index0 = wrong
	eng, err = New(Config{}, testBackend())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), req); err == nil {
		t.Fatal("mismatched Index0 accepted")
	}
}

func TestRequestValidation(t *testing.T) {
	b0, b1 := testBanks(t, 3)
	eng, err := New(Config{}, testBackend())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil backend accepted")
	}
	if _, err := eng.Run(context.Background(), nil); err == nil {
		t.Error("nil request accepted")
	}
	if _, err := eng.Run(context.Background(), &Request{Bank0: b0}); err == nil {
		t.Error("missing bank accepted")
	}
	req := testRequest(t, b0, b1)
	req.Seed = nil
	if _, err := eng.Run(context.Background(), req); err == nil {
		t.Error("missing seed accepted")
	}
	req = testRequest(t, b0, b1)
	req.N = -1
	if _, err := eng.Run(context.Background(), req); err == nil {
		t.Error("negative N accepted")
	}
}

// blockingBackend parks every Step2 call until its context is
// cancelled, signalling when the first shard arrives.
type blockingBackend struct {
	started chan struct{}
	once    sync.Once
}

func (b *blockingBackend) Name() string { return "blocking" }

func (b *blockingBackend) Step2(ctx context.Context, sh *Shard, ix1 *index.Index) (*Step2Output, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCancellationShutsDownCleanly cancels mid-run and asserts the
// engine returns promptly with the context's error and that every
// stage goroutine exits (goroutine count back to baseline).
func TestCancellationShutsDownCleanly(t *testing.T) {
	b0, b1 := testBanks(t, 8)
	req := testRequest(t, b0, b1)
	bb := &blockingBackend{started: make(chan struct{})}
	eng, err := New(Config{ShardSize: 2, InFlight: 2, Step2Workers: 2, Step3Workers: 2}, bb)
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, req)
		errCh <- err
	}()

	<-bb.started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine did not shut down after cancellation")
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancel: %d > baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// failingBackend errors on one shard to exercise error propagation.
type failingBackend struct {
	inner  Backend
	failID int
}

func (b *failingBackend) Name() string { return "failing" }

func (b *failingBackend) Step2(ctx context.Context, sh *Shard, ix1 *index.Index) (*Step2Output, error) {
	if sh.ID == b.failID {
		return nil, fmt.Errorf("injected failure")
	}
	return b.inner.Step2(ctx, sh, ix1)
}

func TestBackendErrorPropagates(t *testing.T) {
	b0, b1 := testBanks(t, 8)
	req := testRequest(t, b0, b1)
	eng, err := New(Config{ShardSize: 2, InFlight: 2}, &failingBackend{inner: testBackend(), failID: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	_, err = eng.Run(context.Background(), req)
	if err == nil {
		t.Fatal("expected error from failing backend")
	}
	if got := err.Error(); !strings.Contains(got, "step 2") || !strings.Contains(got, "injected failure") {
		t.Fatalf("error %q missing stage context", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after error: %d > baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// namedBackend wraps a backend under a distinct name so the dispatch
// split is observable.
type namedBackend struct {
	inner Backend
	label string
	count atomic.Int32
}

func (b *namedBackend) Name() string { return b.label }

func (b *namedBackend) Step2(ctx context.Context, sh *Shard, ix1 *index.Index) (*Step2Output, error) {
	b.count.Add(1)
	out, err := b.inner.Step2(ctx, sh, ix1)
	if err != nil {
		return nil, err
	}
	out.Backend = b.label
	return out, nil
}

func TestMultiBackendFansOut(t *testing.T) {
	b0, b1 := testBanks(t, 12)
	req := testRequest(t, b0, b1)
	ref := mustRun(t, Config{}, testBackend(), req)

	a := &namedBackend{inner: testBackend(), label: "cpu-a"}
	b := &namedBackend{inner: testBackend(), label: "cpu-b"}
	multi, err := NewMultiBackend(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Name() != "multi(cpu-a+cpu-b)" {
		t.Errorf("multi name %q", multi.Name())
	}
	out := mustRun(t, Config{ShardSize: 2, InFlight: 2, Step2Workers: 2, Step3Workers: 2}, multi, req)
	if out.Hits != ref.Hits || len(out.Alignments) != len(ref.Alignments) {
		t.Fatalf("fan-out diverged: %d/%d hits, %d/%d alignments",
			out.Hits, ref.Hits, len(out.Alignments), len(ref.Alignments))
	}
	shards := len(planShards(b0.Len(), 2))
	total := 0
	for _, n := range out.Metrics.ShardsByBackend {
		total += n
	}
	if total != shards {
		t.Fatalf("dispatch split %v covers %d shards, want %d",
			out.Metrics.ShardsByBackend, total, shards)
	}
	if int(a.count.Load())+int(b.count.Load()) != shards {
		t.Fatalf("backends ran %d+%d shards, want %d", a.count.Load(), b.count.Load(), shards)
	}

	if _, err := NewMultiBackend(); err == nil {
		t.Error("empty MultiBackend accepted")
	}
	if _, err := NewMultiBackend(a, nil); err == nil {
		t.Error("nil sub-backend accepted")
	}
}

func TestMetricsPopulated(t *testing.T) {
	b0, b1 := testBanks(t, 8)
	req := testRequest(t, b0, b1)
	out := mustRun(t, Config{ShardSize: 2, InFlight: 2, Step2Workers: 2, Step3Workers: 2}, testBackend(), req)
	m := out.Metrics
	if m.Shards != 4 {
		t.Fatalf("shards = %d, want 4", m.Shards)
	}
	if m.Wall <= 0 {
		t.Error("wall time not recorded")
	}
	if m.Index.Busy <= 0 || m.Step2.Busy <= 0 || m.Step3.Busy <= 0 {
		t.Errorf("stage busy times not recorded: %+v", m)
	}
	if out.IndexTime <= 0 || out.Step2Time <= 0 || out.Step3Time <= 0 {
		t.Errorf("step times not recorded: %v %v %v", out.IndexTime, out.Step2Time, out.Step3Time)
	}
}
