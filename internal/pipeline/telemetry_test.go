package pipeline

import (
	"context"
	"testing"
	"time"

	"seedblast/internal/telemetry"
)

// TestRunRecordsStageSpans pins the engine's trace integration: a run
// with a trace in ctx records one step1/step2/step3 span per shard
// (plus the bank-1 index build), each span's shard attribute resolves,
// and the per-stage span durations sum to the Metrics busy times.
func TestRunRecordsStageSpans(t *testing.T) {
	b0, b1 := testBanks(t, 10)
	req := testRequest(t, b0, b1)
	tr := telemetry.NewTrace(telemetry.NewTraceID())
	ctx := telemetry.ContextWithTrace(context.Background(), tr)

	eng, err := New(Config{ShardSize: 3, InFlight: 2, Step2Workers: 2, Step3Workers: 2}, testBackend())
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wantShards := out.Metrics.Shards
	if wantShards < 2 {
		t.Fatalf("want a sharded run, got %d shards", wantShards)
	}

	byStage := map[string][]telemetry.Span{}
	for _, s := range tr.Spans() {
		byStage[s.Name] = append(byStage[s.Name], s)
	}
	// step1: one span per shard index build plus the subject index.
	if got := len(byStage["step1"]); got != wantShards+1 {
		t.Errorf("step1 spans = %d, want %d (shards + bank1)", got, wantShards+1)
	}
	if got := len(byStage["step2"]); got != wantShards {
		t.Errorf("step2 spans = %d, want %d", got, wantShards)
	}
	if got := len(byStage["step3"]); got != wantShards {
		t.Errorf("step3 spans = %d, want %d", got, wantShards)
	}
	// Every step2 span names its backend; shard attrs cover 0..N-1.
	seen := map[string]bool{}
	for _, s := range byStage["step2"] {
		if s.Attr("backend") != "cpu" {
			t.Errorf("step2 span backend = %q, want cpu", s.Attr("backend"))
		}
		seen[s.Attr("shard")] = true
	}
	if len(seen) != wantShards {
		t.Errorf("step2 spans cover %d distinct shards, want %d", len(seen), wantShards)
	}
	// Span durations are the same measurements the Metrics busy times
	// sum, so they must agree exactly per stage.
	sum := func(spans []telemetry.Span) time.Duration {
		var d time.Duration
		for _, s := range spans {
			d += s.Duration
		}
		return d
	}
	if got, want := sum(byStage["step2"]), out.Metrics.Step2.Busy; got != want {
		t.Errorf("step2 span total %v != Metrics.Step2.Busy %v", got, want)
	}
	if got, want := sum(byStage["step3"]), out.Metrics.Step3.Busy; got != want {
		t.Errorf("step3 span total %v != Metrics.Step3.Busy %v", got, want)
	}
	if got, want := sum(byStage["step1"]), out.Metrics.Index.Busy; got != want {
		t.Errorf("step1 span total %v != Metrics.Index.Busy %v", got, want)
	}
}

// TestRunWithoutTraceRecordsNothing: a trace-free context must not
// grow state anywhere (the nil-trace fast path).
func TestRunWithoutTraceRecordsNothing(t *testing.T) {
	b0, b1 := testBanks(t, 4)
	req := testRequest(t, b0, b1)
	out := mustRun(t, Config{}, testBackend(), req)
	if out.Metrics.Shards != 1 {
		t.Fatalf("shards = %d", out.Metrics.Shards)
	}
}

// TestMetricsMergeFoldsMaps is the direct Merge unit test: kernel and
// backend shard counts fold per key, additive fields add, and
// MaxBufferedMatches keeps the max — not the sum — because peaks of
// concurrent runs never coexist with each other's totals.
func TestMetricsMergeFoldsMaps(t *testing.T) {
	a := Metrics{
		Shards:           2,
		Wall:             3 * time.Second,
		Index:            StageMetrics{Shards: 2, Busy: time.Second},
		Step2:            StageMetrics{Shards: 2, Busy: 2 * time.Second},
		Step3:            StageMetrics{Shards: 2, Busy: 3 * time.Second},
		Prefilter:        StageMetrics{Shards: 2, Busy: time.Second},
		PrefilterKept:    40,
		PrefilterDropped: 60,
		PrefilterQueries: 8,
		ShardsByBackend: map[string]int{
			"cpu": 2,
		},
		ShardsByKernel: map[string]int{
			"blocked": 1,
			"scalar":  1,
		},
		MaxBufferedMatches: 10,
	}
	b := Metrics{
		Shards:           3,
		Wall:             time.Second,
		Index:            StageMetrics{Shards: 3, Busy: time.Second},
		Step2:            StageMetrics{Shards: 3, Busy: time.Second},
		Step3:            StageMetrics{Shards: 3, Busy: time.Second},
		Prefilter:        StageMetrics{Shards: 1, Busy: 2 * time.Second},
		PrefilterKept:    5,
		PrefilterDropped: 15,
		PrefilterQueries: 2,
		ShardsByBackend: map[string]int{
			"cpu":  1,
			"rasc": 2,
		},
		ShardsByKernel: map[string]int{
			"blocked": 3,
		},
		MaxBufferedMatches: 7,
	}
	a.Merge(&b)

	if a.Shards != 5 || a.Wall != 4*time.Second {
		t.Errorf("Shards/Wall = %d/%v", a.Shards, a.Wall)
	}
	if a.Step2.Shards != 5 || a.Step2.Busy != 3*time.Second {
		t.Errorf("Step2 = %+v", a.Step2)
	}
	if a.Prefilter.Shards != 3 || a.Prefilter.Busy != 3*time.Second {
		t.Errorf("Prefilter = %+v", a.Prefilter)
	}
	if a.PrefilterKept != 45 || a.PrefilterDropped != 75 || a.PrefilterQueries != 10 {
		t.Errorf("prefilter counters = %d/%d/%d, want 45/75/10",
			a.PrefilterKept, a.PrefilterDropped, a.PrefilterQueries)
	}
	if a.ShardsByBackend["cpu"] != 3 || a.ShardsByBackend["rasc"] != 2 {
		t.Errorf("ShardsByBackend = %v", a.ShardsByBackend)
	}
	if a.ShardsByKernel["blocked"] != 4 || a.ShardsByKernel["scalar"] != 1 {
		t.Errorf("ShardsByKernel = %v", a.ShardsByKernel)
	}
	if a.MaxBufferedMatches != 10 {
		t.Errorf("MaxBufferedMatches = %d, want max semantics (10)", a.MaxBufferedMatches)
	}
	// Max semantics the other way around: the larger peak wins even
	// when it arrives from the merged-in run.
	c := Metrics{MaxBufferedMatches: 25}
	a.Merge(&c)
	if a.MaxBufferedMatches != 25 {
		t.Errorf("MaxBufferedMatches after second merge = %d, want 25", a.MaxBufferedMatches)
	}
	// Merging into zero-value maps allocates them.
	var z Metrics
	z.Merge(&b)
	if z.ShardsByKernel["blocked"] != 3 || z.ShardsByBackend["rasc"] != 2 {
		t.Errorf("zero-value merge = %v / %v", z.ShardsByKernel, z.ShardsByBackend)
	}
}
