// Package pipeline implements a streaming, stage-based execution
// engine for the paper's bank-vs-bank comparison. The monolithic batch
// driver runs step 1 (indexing), step 2 (ungapped extension) and
// step 3 (gapped extension) strictly in sequence, so the host sits
// idle while the accelerator works and vice versa — exactly the
// host/FPGA overlap opportunity the paper's closing discussion raises.
//
// The engine shards the query bank (bank 0) into batches of sequences
// and flows each shard through the three steps over bounded channels:
//
//	sharder ──shardCh──▶ step-2 backend pool ──step2Ch──▶ step-3 pool
//
// Channel capacities bound the number of shards in flight, providing
// backpressure; a context cancels the whole dataflow promptly and
// leak-free. Where step 2 runs is abstracted behind Backend: the CPU
// engine (package ungapped), the simulated RASC-100 accelerator
// (package hwsim), or a MultiBackend that fans shards out across
// several backends — the paper's multicore-plus-FPGA dispatch
// question, answered in code.
//
// Sharding by query sequence preserves bit-identical results: every
// (seq0, seq1) pair's hits land in exactly one shard, so step 3's
// per-pair containment and dedup rules see the same hit groups in the
// same order as the batch path, and the engine's final stable sort
// reproduces the batch output ordering for the single-shard case.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"seedblast/internal/bank"
	"seedblast/internal/gapped"
	"seedblast/internal/hwsim"
	"seedblast/internal/index"
	"seedblast/internal/prefilter"
	"seedblast/internal/seed"
	"seedblast/internal/telemetry"
	"seedblast/internal/ungapped"
)

// Config tunes the engine. The zero value processes bank 0 as a single
// shard with one shard in flight per stage — batch-equivalent
// behaviour with batch-identical results.
type Config struct {
	// ShardSize is the number of bank-0 sequences per shard. Zero or
	// negative processes the whole bank as one shard.
	ShardSize int
	// InFlight is the capacity of the bounded queues between stages;
	// it caps how many finished shards can wait for the next stage
	// before backpressure stalls the producer. Zero or negative means 1.
	InFlight int
	// Step2Workers is the number of shards extended concurrently in
	// step 2 (each call may use further internal parallelism, e.g. the
	// CPU backend's workers). Zero or negative means 1.
	Step2Workers int
	// Step3Workers is the number of shards gapped-extended concurrently
	// in step 3. Zero or negative means 1.
	Step3Workers int
}

func (c Config) withDefaults() Config {
	if c.InFlight <= 0 {
		c.InFlight = 1
	}
	if c.Step2Workers <= 0 {
		c.Step2Workers = 1
	}
	if c.Step3Workers <= 0 {
		c.Step3Workers = 1
	}
	return c
}

// Shard is one unit of streaming work: a contiguous run of bank-0
// sequences with its own step-1 index. Sequence numbers inside Index
// are shard-local; the engine remaps step-2 hits into bank numbering
// (by adding Start) before step 3.
type Shard struct {
	ID    int
	Start int // first bank-0 sequence number in the shard
	End   int // one past the last
	Bank  *bank.Bank
	Index *index.Index
}

// Request describes one comparison run.
type Request struct {
	Bank0 *bank.Bank // query bank, sharded by the engine
	Bank1 *bank.Bank // subject bank, indexed once
	Seed  seed.Model
	N     int // neighbourhood extension; windows are W+2N

	// Workers is the per-shard index-build parallelism (0 = GOMAXPROCS).
	Workers int

	// Gapped parameterises step 3; it is passed to gapped.RunWithStats
	// unchanged and validated there.
	Gapped gapped.Config

	// Index1 optionally provides a prebuilt subject index (it must
	// match Seed and N); experiments reuse one genome index across many
	// banks this way. When nil the engine builds and times it.
	Index1 *index.Index

	// Index0 optionally provides a prebuilt whole-bank query index. It
	// is only usable when the run is a single shard (Config.ShardSize
	// disabled or >= the bank length) — a sharded run cuts bank 0
	// itself — and must match Seed and N. Callers that already hold the
	// index (e.g. for estimator sweeps) avoid a rebuild this way.
	Index0 *index.Index

	// KeepHits retains the step-2 hits in Output.UngappedHits
	// (concatenated in shard order). Off by default: hit lists are the
	// engine's largest intermediate and are normally consumed by step 3
	// shard by shard.
	KeepHits bool

	// Prefilter enables the candidate-selection stage between step 1
	// and step 2: each shard's queries are diagonal-scored against the
	// subject index and only the top MaxCandidates subjects per query
	// flow into ungapped extension (the backend sees a filtered
	// subject index, and hits from non-surviving pairs are dropped
	// before step 3). The zero value is disabled and bypasses the
	// stage entirely — bit-identical to an engine without it. E-value
	// statistics are unaffected either way: Gapped's search space
	// still describes the full subject bank.
	Prefilter prefilter.Config
}

// StageMetrics describes one stage's work.
type StageMetrics struct {
	Shards int           // shards the stage completed
	Busy   time.Duration // summed host wall time spent processing
}

// Metrics is the engine's per-run accounting. Busy times are host wall
// durations and can exceed Wall when stages overlap — that surplus is
// the overlap the streaming design exists to win.
type Metrics struct {
	Shards          int           // shards planned
	Wall            time.Duration // end-to-end engine wall time
	Index           StageMetrics  // step 1: bank-1 index + shard index builds
	Prefilter       StageMetrics  // candidate selection (zero when disabled)
	Step2           StageMetrics
	Step3           StageMetrics
	ShardsByBackend map[string]int // step-2 dispatch split (MultiBackend)
	// ShardsByKernel counts CPU-scored shards by the step-2 kernel
	// that actually ran ("scalar" or "blocked"), so kernel selection —
	// including auto-resolution and its arithmetic-bound fallback — is
	// observable per run. Accelerator shards are not counted here.
	ShardsByKernel map[string]int
	// PrefilterKept and PrefilterDropped count candidate
	// (query, subject) pairs — pairs sharing at least one seed hit —
	// that survived and fell to the prefilter's per-query top-K cut.
	// Both stay zero when the stage is disabled; their sum is the
	// unfiltered candidate pair count, so kept/(kept+dropped) is the
	// stage's selectivity. PrefilterQueries counts the queries scored.
	PrefilterKept    int64
	PrefilterDropped int64
	PrefilterQueries int64
	// MaxBufferedMatches is the peak number of alignments resident in
	// the engine's shard buffers at any instant. On a materialized Run
	// every shard's alignments stay buffered until assembly, so the peak
	// equals the total output; on a RunStream run a shard's alignments
	// are released to the consumer as soon as every earlier shard has
	// been emitted, so the peak is only the out-of-order backlog — the
	// memory the streaming result path exists to save.
	MaxBufferedMatches int
}

// Merge folds another run's accounting into m: shard counts and busy
// times add up, and the backend dispatch split is summed per backend.
// Wall also sums, so on concurrent runs (one engine per volume in the
// cluster's local mode, or the service's admission pool) the merged
// Wall is aggregate engine time, not elapsed time — the same semantics
// the service's /metrics counters use.
func (m *Metrics) Merge(o *Metrics) {
	m.Shards += o.Shards
	m.Wall += o.Wall
	m.Index.Shards += o.Index.Shards
	m.Index.Busy += o.Index.Busy
	m.Prefilter.Shards += o.Prefilter.Shards
	m.Prefilter.Busy += o.Prefilter.Busy
	m.PrefilterKept += o.PrefilterKept
	m.PrefilterDropped += o.PrefilterDropped
	m.PrefilterQueries += o.PrefilterQueries
	m.Step2.Shards += o.Step2.Shards
	m.Step2.Busy += o.Step2.Busy
	m.Step3.Shards += o.Step3.Shards
	m.Step3.Busy += o.Step3.Busy
	// Peaks across runs are not additive; keep the worst single run.
	m.MaxBufferedMatches = max(m.MaxBufferedMatches, o.MaxBufferedMatches)
	for k, v := range o.ShardsByBackend {
		if m.ShardsByBackend == nil {
			m.ShardsByBackend = make(map[string]int)
		}
		m.ShardsByBackend[k] += v
	}
	for k, v := range o.ShardsByKernel {
		if m.ShardsByKernel == nil {
			m.ShardsByKernel = make(map[string]int)
		}
		m.ShardsByKernel[k] += v
	}
}

// Output is the engine's result.
type Output struct {
	// Alignments is the materialized result, sorted by
	// (Seq0, EValue, Seq1) stably. Nil on a RunStream run, where the
	// same alignments in the same order went to emit instead.
	Alignments []gapped.Alignment
	Hits       int   // step-2 survivors
	Pairs      int64 // step-2 scorings performed
	GappedWork gapped.Stats
	Stats0     index.Stats // whole-bank statistics merged across shards
	Stats1     index.Stats

	// Step durations under the batch StepTimes semantics: IndexTime
	// sums the subject-index and shard-index builds; Step2Time sums the
	// backends' Elapsed (simulated seconds for the RASC backend, host
	// wall for the CPU backend); Step3Time sums the gapped stage. On an
	// overlapped run their sum exceeds Metrics.Wall.
	IndexTime time.Duration
	Step2Time time.Duration
	Step3Time time.Duration

	// Device aggregates the per-shard accelerator reports when the
	// backend attached any (cycle and DMA totals summed, utilization
	// cycle-weighted). With a single reporting shard it is that shard's
	// report verbatim; aggregated multi-shard reports carry a nil Hits
	// slice.
	Device *hwsim.Step2Report

	// UngappedHits holds the step-2 hits in shard order when
	// Request.KeepHits is set.
	UngappedHits []ungapped.Hit

	Metrics Metrics
}

// Engine is a streaming shard-pipeline executor. An Engine holds no
// per-run state — only the immutable Config and the Backend — so it is
// safe for concurrent Run calls from multiple goroutines provided its
// Backend is safe for concurrent Step2 calls. All backends in this
// package are: CPUBackend and RASCBackend keep per-call state on the
// stack (hwsim.Device is configuration-only), and MultiBackend
// serialises access to each inner backend through its free list. Note
// that concurrent runs multiply memory and worker usage; callers
// wanting bounded admission should gate Run with a semaphore (package
// service does).
type Engine struct {
	cfg     Config
	backend Backend
}

// New validates the configuration and returns an engine.
func New(cfg Config, backend Backend) (*Engine, error) {
	if backend == nil {
		return nil, fmt.Errorf("pipeline: backend is required")
	}
	return &Engine{cfg: cfg.withDefaults(), backend: backend}, nil
}

// Backend returns the engine's step-2 backend.
func (e *Engine) Backend() Backend { return e.backend }

// Run executes the request. On cancellation it returns the context's
// error after every stage goroutine has shut down — no goroutines
// outlive the call. Run is safe to call concurrently from multiple
// goroutines (see Engine). When a run fails after the dataflow has
// started, the returned Output is non-nil and carries the Metrics
// accumulated up to the failure (all other fields zero) so callers can
// still account for the work done; early validation errors return a
// nil Output.
func (e *Engine) Run(pctx context.Context, req *Request) (*Output, error) {
	return e.run(pctx, req, nil)
}

// RunStream is Run with streaming results: instead of materializing
// Output.Alignments, the engine hands each shard's step-3 alignments to
// emit as soon as the shard — and every shard before it — has finished
// final ranking. Emission is strictly in shard order from a single
// goroutine, so the concatenation of emitted batches is element-for-
// element identical to Run's Output.Alignments: shards cover disjoint,
// ascending bank-0 ranges and each batch arrives already sorted by
// (Seq0, EValue, Seq1), which is exactly the engine's global order.
// Ownership of each batch transfers to emit; the engine drops its
// reference, so peak resident match memory is bounded by the
// out-of-order backlog instead of the whole result (see
// Metrics.MaxBufferedMatches). An emit error fails the run. The
// returned Output has a nil Alignments slice; all counters, statistics
// and timings are reported as in Run.
func (e *Engine) RunStream(pctx context.Context, req *Request, emit func([]gapped.Alignment) error) (*Output, error) {
	if emit == nil {
		return nil, fmt.Errorf("pipeline: RunStream needs an emit function (use Run)")
	}
	return e.run(pctx, req, emit)
}

func (e *Engine) run(pctx context.Context, req *Request, emit func([]gapped.Alignment) error) (*Output, error) {
	if req == nil || req.Bank0 == nil || req.Bank1 == nil {
		return nil, fmt.Errorf("pipeline: request needs both banks")
	}
	if req.Seed == nil {
		return nil, fmt.Errorf("pipeline: seed model is required")
	}
	if req.N < 0 {
		return nil, fmt.Errorf("pipeline: negative neighbourhood %d", req.N)
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(pctx)
	defer cancel()

	// Per-stage spans land on the request's trace when the caller put
	// one in ctx (the service does, per job). Every stage timing the
	// engine already takes for Metrics is mirrored as a span, so one
	// trace shows where each shard's wall time went — the paper's
	// per-stage breakdown, per production request. A nil trace records
	// nothing and costs nothing.
	tr := telemetry.TraceFromContext(pctx)

	var (
		mu       sync.Mutex
		firstErr error
		met      Metrics
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// Subject index: built once and shared by every shard (or provided
	// by the caller and reused across runs).
	ix1 := req.Index1
	if ix1 == nil {
		t0 := time.Now()
		var err error
		ix1, err = index.BuildParallel(req.Bank1, req.Seed, req.N, req.Workers)
		if err != nil {
			return nil, fmt.Errorf("pipeline: indexing bank 1: %w", err)
		}
		d := time.Since(t0)
		met.Index.Busy += d
		tr.Record("step1", t0, d, telemetry.String("part", "bank1"))
	} else if err := MatchesRequest(ix1, req.Bank1, req.Seed, req.N); err != nil {
		return nil, fmt.Errorf("pipeline: provided bank-1 index %w", err)
	}

	shards := planShards(req.Bank0.Len(), e.cfg.ShardSize)
	met.Shards = len(shards)
	if req.Index0 != nil {
		if len(shards) > 1 {
			return nil, fmt.Errorf("pipeline: provided bank-0 index is unusable on a sharded run (%d shards)", len(shards))
		}
		if err := MatchesRequest(req.Index0, req.Bank0, req.Seed, req.N); err != nil {
			return nil, fmt.Errorf("pipeline: provided bank-0 index %w", err)
		}
	}

	shardCh := make(chan *Shard, e.cfg.InFlight)
	step2Ch := make(chan *Step2Output, e.cfg.InFlight)

	// Stage 1 — sharder: cut bank 0 into shards and build each shard's
	// index. Bounded shardCh stalls this stage once the step-2 pool
	// falls behind.
	merger := newStatsMerger(req.Seed.KeySpace())
	go func() {
		defer close(shardCh)
		for id, rg := range shards {
			if ctx.Err() != nil {
				return
			}
			t0 := time.Now()
			sh, err := buildShard(req, id, rg[0], rg[1])
			d := time.Since(t0)
			mu.Lock()
			met.Index.Busy += d
			if err == nil {
				// Only completed builds count as stage-1 shards; the
				// busy time above still records what the failure cost.
				met.Index.Shards++
			}
			mu.Unlock()
			if err != nil {
				fail(fmt.Errorf("pipeline: shard %d index: %w", id, err))
				return
			}
			tr.Record("step1", t0, d, telemetry.Int("shard", id))
			merger.add(sh.Index)
			select {
			case shardCh <- sh:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Stage 2 — backend pool: ungapped extension on the CPU engine, the
	// simulated accelerator, or a fan-out across both.
	var wg2 sync.WaitGroup
	for w := 0; w < e.cfg.Step2Workers; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for sh := range shardCh {
				if ctx.Err() != nil {
					continue // drain so the sharder can exit
				}
				// Candidate selection: diagonal-score the shard's
				// queries against the full subject index, then hand the
				// backend an index filtered to the survivor union. The
				// backend is unchanged — CPU kernels and the simulated
				// accelerator all just see a smaller ix1 — and the
				// union filter is tightened to exact per-query
				// semantics by dropping non-surviving pairs' hits
				// below.
				ixSub := ix1
				var pf *prefilter.Result
				if req.Prefilter.Enabled() {
					tp := time.Now()
					pfr, err := prefilter.Run(sh.Bank, req.Seed, ix1, req.Prefilter)
					if err != nil {
						fail(fmt.Errorf("pipeline: prefilter, shard %d: %w", sh.ID, err))
						continue
					}
					pf = pfr
					ixSub = ix1.FilterSeqs(pf.Union)
					dp := time.Since(tp)
					mu.Lock()
					met.Prefilter.Shards++
					met.Prefilter.Busy += dp
					met.PrefilterKept += pf.Kept
					met.PrefilterDropped += pf.Dropped
					met.PrefilterQueries += int64(pf.Queries)
					mu.Unlock()
					tr.Record("prefilter", tp, dp,
						telemetry.Int("shard", sh.ID),
						telemetry.Int("kept", int(pf.Kept)),
						telemetry.Int("dropped", int(pf.Dropped)))
				}
				t0 := time.Now()
				r, err := e.backend.Step2(ctx, sh, ixSub)
				d := time.Since(t0)
				if err != nil {
					fail(fmt.Errorf("pipeline: step 2, shard %d (%s): %w", sh.ID, e.backend.Name(), err))
					continue
				}
				if pf != nil {
					// Exact top-K semantics: the union index may pair a
					// query with a subject only another query kept.
					kept := r.Hits[:0]
					for i := range r.Hits {
						if pf.Keeps(int(r.Hits[i].E0.Seq), r.Hits[i].E1.Seq) {
							kept = append(kept, r.Hits[i])
						}
					}
					r.Hits = kept
				}
				// Remap shard-local sequence numbers to bank-0 numbering.
				if sh.Start != 0 {
					for i := range r.Hits {
						r.Hits[i].E0.Seq += uint32(sh.Start)
					}
				}
				mu.Lock()
				met.Step2.Shards++
				met.Step2.Busy += d
				if r.Backend != "" {
					if met.ShardsByBackend == nil {
						met.ShardsByBackend = make(map[string]int)
					}
					met.ShardsByBackend[r.Backend]++
				}
				if r.Kernel != "" {
					if met.ShardsByKernel == nil {
						met.ShardsByKernel = make(map[string]int)
					}
					met.ShardsByKernel[r.Kernel]++
				}
				mu.Unlock()
				attrs := []telemetry.Attr{telemetry.Int("shard", sh.ID), telemetry.String("backend", e.backend.Name())}
				if r.Kernel != "" {
					attrs = append(attrs, telemetry.String("kernel", r.Kernel))
				}
				tr.Record("step2", t0, d, attrs...)
				select {
				case step2Ch <- r:
				case <-ctx.Done():
				}
			}
		}()
	}
	go func() { wg2.Wait(); close(step2Ch) }()

	// Stage 3 — gapped extension on the host. Because every (seq0,
	// seq1) pair's hits live in exactly one shard, per-pair containment
	// and dedup behave exactly as in the batch path.
	type shardOut struct {
		aligns []gapped.Alignment
		gstats gapped.Stats
		hits   []ungapped.Hit
		nHits  int
		pairs  int64
		device *hwsim.Step2Report
		step2  time.Duration
		step3  time.Duration
	}
	outs := make([]shardOut, len(shards))

	// Ordered emitter (streaming runs only): step-3 workers finish
	// shards in any order; this goroutine releases each shard's
	// alignments to the caller as soon as every earlier shard has been
	// emitted, so the stream is in shard order — the engine's exact
	// output order — while only the out-of-order backlog stays resident.
	var buffered int // alignments currently resident in outs (under mu)
	emitCh := make(chan int, len(shards))
	emitDone := make(chan struct{})
	go func() {
		defer close(emitDone)
		next := 0
		ready := make(map[int]bool)
		for id := range emitCh {
			ready[id] = true
			for ready[next] {
				delete(ready, next)
				so := &outs[next]
				aligns := so.aligns
				so.aligns = nil
				mu.Lock()
				buffered -= len(aligns)
				mu.Unlock()
				if ctx.Err() == nil {
					if err := emit(aligns); err != nil {
						fail(fmt.Errorf("pipeline: emitting shard %d: %w", next, err))
					}
				}
				next++
			}
		}
	}()

	var wg3 sync.WaitGroup
	for w := 0; w < e.cfg.Step3Workers; w++ {
		wg3.Add(1)
		go func() {
			defer wg3.Done()
			for r := range step2Ch {
				if ctx.Err() != nil {
					continue
				}
				t0 := time.Now()
				as, gs, err := gapped.RunWithStats(req.Bank0, req.Bank1, r.Hits, req.Gapped)
				d := time.Since(t0)
				if err != nil {
					fail(fmt.Errorf("pipeline: step 3, shard %d: %w", r.Shard.ID, err))
					continue
				}
				mu.Lock()
				met.Step3.Shards++
				met.Step3.Busy += d
				buffered += len(as)
				met.MaxBufferedMatches = max(met.MaxBufferedMatches, buffered)
				mu.Unlock()
				tr.Record("step3", t0, d, telemetry.Int("shard", r.Shard.ID))
				so := &outs[r.Shard.ID]
				so.aligns, so.gstats = as, gs
				so.nHits, so.pairs = len(r.Hits), r.Pairs
				so.device = r.Device
				so.step2, so.step3 = r.Elapsed, d
				if req.KeepHits {
					so.hits = r.Hits
				}
				if emit != nil {
					// The stores above happen before this send, which the
					// emitter receives before touching outs[id].
					emitCh <- r.Shard.ID
				}
			}
		}()
	}
	// All stage goroutines form a chain of channel closes, so waiting
	// for stage 3 waits for everything.
	wg3.Wait()
	close(emitCh)
	<-emitDone

	if perr := pctx.Err(); perr != nil {
		met.Wall = time.Since(start)
		return &Output{Metrics: met}, perr
	}
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		met.Wall = time.Since(start)
		return &Output{Metrics: met}, err
	}

	// Assemble in shard order so the output is deterministic for any
	// worker and in-flight configuration.
	out := &Output{Stats1: ix1.Stats()}
	var dev deviceAggregator
	for i := range outs {
		so := &outs[i]
		out.Alignments = append(out.Alignments, so.aligns...)
		out.Hits += so.nHits
		out.Pairs += so.pairs
		addGappedStats(&out.GappedWork, &so.gstats)
		out.Step2Time += so.step2
		out.Step3Time += so.step3
		if req.KeepHits {
			out.UngappedHits = append(out.UngappedHits, so.hits...)
		}
		dev.add(so.device)
	}
	out.Device = dev.report()
	out.IndexTime = met.Index.Busy
	out.Stats0 = merger.stats()
	// Stable sort under the gapped stage's ordering: a single-shard run
	// arrives already sorted and keeps the batch path's exact order.
	sort.SliceStable(out.Alignments, func(i, j int) bool {
		a, b := &out.Alignments[i], &out.Alignments[j]
		if a.Seq0 != b.Seq0 {
			return a.Seq0 < b.Seq0
		}
		if a.EValue != b.EValue {
			return a.EValue < b.EValue
		}
		return a.Seq1 < b.Seq1
	})
	met.Wall = time.Since(start)
	out.Metrics = met
	return out, nil
}

// MatchesRequest checks a caller-provided prebuilt index against a
// request: seed key space and N must agree, and the indexed bank must
// have the request bank's shape (sequence count and total residues —
// a cheap stand-in for content equality that catches an index built
// from a different bank; full content identity remains the caller's
// responsibility, which the service guarantees by fingerprint-keying
// its cache). Exported so the batch reference path applies the exact
// same acceptance rule as the engine. The error reads as a clause
// ("(keys=…) does not match …"); callers prefix the index's role.
func MatchesRequest(ix *index.Index, b *bank.Bank, model seed.Model, n int) error {
	if ix.Model().KeySpace() != model.KeySpace() || ix.N() != n {
		return fmt.Errorf("(keys=%d N=%d) does not match request (keys=%d N=%d)",
			ix.Model().KeySpace(), ix.N(), model.KeySpace(), n)
	}
	if ix.Bank().Len() != b.Len() || ix.Bank().TotalResidues() != b.TotalResidues() {
		return fmt.Errorf("was built from a different bank (%d seqs/%d aa vs %d seqs/%d aa)",
			ix.Bank().Len(), ix.Bank().TotalResidues(), b.Len(), b.TotalResidues())
	}
	return nil
}

// planShards cuts [0, n) into contiguous ranges of at most size
// sequences. Size <= 0 (or >= n) yields a single shard; n == 0 yields
// none.
func planShards(n, size int) [][2]int {
	if n == 0 {
		return nil
	}
	if size <= 0 || size >= n {
		return [][2]int{{0, n}}
	}
	out := make([][2]int, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// buildShard materialises one shard: a sub-bank view of bank 0 (the
// whole bank when the shard covers it) and its step-1 index.
func buildShard(req *Request, id, lo, hi int) (*Shard, error) {
	b := req.Bank0
	if req.Index0 != nil {
		// Validated single-shard case: reuse the caller's index.
		return &Shard{ID: id, Start: lo, End: hi, Bank: b, Index: req.Index0}, nil
	}
	if lo != 0 || hi != b.Len() {
		sub := bank.New(fmt.Sprintf("%s[%d:%d)", b.Name(), lo, hi))
		for s := lo; s < hi; s++ {
			sub.Add(b.ID(s), b.Seq(s))
		}
		b = sub
	}
	ix, err := index.BuildParallel(b, req.Seed, req.N, req.Workers)
	if err != nil {
		return nil, err
	}
	return &Shard{ID: id, Start: lo, End: hi, Bank: b, Index: ix}, nil
}

// statsMerger accumulates per-key bucket counts across shard indexes;
// summed per key they equal the monolithic index's histogram, so the
// derived statistics match a whole-bank build exactly.
type statsMerger struct {
	counts []uint32
}

func newStatsMerger(space int) *statsMerger {
	return &statsMerger{counts: make([]uint32, space)}
}

func (m *statsMerger) add(ix *index.Index) { ix.AddBucketCounts(m.counts) }

func (m *statsMerger) stats() index.Stats { return index.StatsFromBucketCounts(m.counts) }

func addGappedStats(dst, src *gapped.Stats) {
	dst.Hits += src.Hits
	dst.Contained += src.Contained
	dst.PreFiltered += src.PreFiltered
	dst.Extended += src.Extended
	dst.DPRows += src.DPRows
	dst.DPCells += src.DPCells
}

// deviceAggregator folds per-shard accelerator reports into one.
type deviceAggregator struct {
	reports          int
	first            *hwsim.Step2Report
	agg              hwsim.Step2Report
	utilNum, utilDen float64
}

func (a *deviceAggregator) add(rep *hwsim.Step2Report) {
	if rep == nil {
		return
	}
	a.reports++
	if a.reports == 1 {
		a.first = rep
	}
	a.agg.Pairs += rep.Pairs
	a.agg.Records += rep.Records
	for i, c := range rep.CyclesPerFPGA {
		if i >= len(a.agg.CyclesPerFPGA) {
			a.agg.CyclesPerFPGA = append(a.agg.CyclesPerFPGA, 0)
		}
		a.agg.CyclesPerFPGA[i] += c
	}
	a.agg.BytesToDevice += rep.BytesToDevice
	a.agg.BytesFromDev += rep.BytesFromDev
	a.agg.Transfers += rep.Transfers
	a.agg.ComputeSeconds += rep.ComputeSeconds
	a.agg.DMASeconds += rep.DMASeconds
	a.agg.Seconds += rep.Seconds
	var cycles float64
	for _, c := range rep.CyclesPerFPGA {
		cycles += float64(c)
	}
	a.utilNum += rep.Utilization * cycles
	a.utilDen += cycles
}

func (a *deviceAggregator) report() *hwsim.Step2Report {
	switch a.reports {
	case 0:
		return nil
	case 1:
		return a.first
	default:
		r := a.agg
		if a.utilDen > 0 {
			r.Utilization = a.utilNum / a.utilDen
		}
		return &r
	}
}
