package pipeline

import (
	"context"
	"fmt"
	"strings"
	"time"

	"seedblast/internal/hwsim"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/ungapped"
)

// Step2Output is one shard's ungapped-extension result, handed from
// the step-2 pool to the step-3 pool.
type Step2Output struct {
	Shard *Shard
	// Hits are the surviving seed pairs. Backends return them in
	// shard-local sequence numbering; the engine remaps them to bank
	// numbering before step 3.
	Hits  []ungapped.Hit
	Pairs int64
	// Elapsed is the stage's cost under StepTimes semantics: host wall
	// time for the CPU backend, simulated device seconds for the RASC
	// backend.
	Elapsed time.Duration
	// Device is the accelerator report when the shard ran on hardware.
	Device *hwsim.Step2Report
	// Backend names the backend that processed the shard, so fan-out
	// dispatch is observable in Metrics.ShardsByBackend.
	Backend string
	// Kernel names the step-2 inner-loop implementation that actually
	// ran ("scalar" or "blocked" — never "auto") when the shard was
	// scored by the CPU engine; empty for accelerator shards. Recorded
	// in Metrics.ShardsByKernel.
	Kernel string
}

// Backend abstracts where step 2 (ungapped extension) runs. Backends
// must be safe for concurrent Step2 calls: the engine invokes one call
// per in-flight shard.
type Backend interface {
	Name() string
	Step2(ctx context.Context, shard *Shard, ix1 *index.Index) (*Step2Output, error)
}

// CPUBackend runs step 2 on the host with the parallel software engine
// (package ungapped).
type CPUBackend struct {
	Matrix    *matrix.Matrix
	Threshold int
	Workers   int // per-shard parallelism; 0 = GOMAXPROCS
	// Kernel selects the step-2 inner-loop implementation; the zero
	// value (KernelAuto) picks the blocked kernel whenever the
	// workload fits its arithmetic bounds. Results are bit-identical
	// across kernels either way.
	Kernel ungapped.Kernel
}

// Name implements Backend.
func (b *CPUBackend) Name() string { return "cpu" }

// Step2 implements Backend.
func (b *CPUBackend) Step2(ctx context.Context, shard *Shard, ix1 *index.Index) (*Step2Output, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	r, err := ungapped.Run(shard.Index, ix1, ungapped.Config{
		Matrix:    b.Matrix,
		Threshold: b.Threshold,
		Workers:   b.Workers,
		Kernel:    b.Kernel,
	})
	if err != nil {
		return nil, err
	}
	return &Step2Output{
		Shard:   shard,
		Hits:    r.Hits,
		Pairs:   r.Pairs,
		Elapsed: time.Since(t0),
		Backend: b.Name(),
		Kernel:  r.Kernel.String(),
	}, nil
}

// RASCBackend runs step 2 on the simulated RASC-100 accelerator.
// Elapsed is the simulated device time (cycles at the configured clock
// plus DMA), not host wall time, matching the batch path's StepTimes
// semantics for the RASC engine.
type RASCBackend struct {
	Device *hwsim.Device
}

// Name implements Backend.
func (b *RASCBackend) Name() string { return "rasc" }

// Step2 implements Backend.
func (b *RASCBackend) Step2(ctx context.Context, shard *Shard, ix1 *index.Index) (*Step2Output, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep, err := b.Device.RunStep2(shard.Index, ix1)
	if err != nil {
		return nil, err
	}
	return &Step2Output{
		Shard:   shard,
		Hits:    rep.Hits,
		Pairs:   rep.Pairs,
		Elapsed: time.Duration(rep.Seconds * float64(time.Second)),
		Device:  rep,
		Backend: b.Name(),
	}, nil
}

// MultiBackend fans shards out across several backends: each Step2
// call claims the first free backend and releases it when the shard
// completes. With a CPU and a RASC backend this is the paper's closing
// question — how to dispatch the computation between cores and FPGA —
// answered greedily: whichever resource is idle takes the next shard.
type MultiBackend struct {
	name string
	free chan Backend
}

// NewMultiBackend builds a fan-out over the given backends.
func NewMultiBackend(backends ...Backend) (*MultiBackend, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("pipeline: MultiBackend needs at least one backend")
	}
	names := make([]string, len(backends))
	free := make(chan Backend, len(backends))
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("pipeline: MultiBackend given a nil backend")
		}
		names[i] = b.Name()
		free <- b
	}
	return &MultiBackend{
		name: "multi(" + strings.Join(names, "+") + ")",
		free: free,
	}, nil
}

// Name implements Backend.
func (m *MultiBackend) Name() string { return m.name }

// Step2 implements Backend.
func (m *MultiBackend) Step2(ctx context.Context, shard *Shard, ix1 *index.Index) (*Step2Output, error) {
	select {
	case b := <-m.free:
		defer func() { m.free <- b }()
		return b.Step2(ctx, shard, ix1)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
