package gapped

import (
	"testing"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/seed"
	"seedblast/internal/ungapped"
)

// runPipelineUpTo2 indexes two banks and runs step 2, returning
// everything step 3 needs.
func runPipelineUpTo2(t *testing.T, b0, b1 *bank.Bank, threshold int) []ungapped.Hit {
	t.Helper()
	model := seed.Default()
	ix0, err := index.Build(b0, model, 8)
	if err != nil {
		t.Fatal(err)
	}
	ix1, err := index.Build(b1, model, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ungapped.Run(ix0, ix1, ungapped.Config{Matrix: matrix.BLOSUM62, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	return res.Hits
}

func homologPair(t *testing.T) (*bank.Bank, *bank.Bank) {
	t.Helper()
	rng := bank.NewRNG(7)
	ancestor := bank.RandomProtein(rng, 180)
	b0 := bank.New("q")
	b0.Add("query", ancestor)
	b0.Add("noise", bank.RandomProtein(rng, 180))
	b1 := bank.New("s")
	b1.Add("subject", bank.MutateProtein(rng, ancestor, 0.2))
	b1.Add("decoy", bank.RandomProtein(rng, 180))
	return b0, b1
}

func TestRunFindsHomolog(t *testing.T) {
	b0, b1 := homologPair(t)
	hits := runPipelineUpTo2(t, b0, b1, 25)
	if len(hits) == 0 {
		t.Fatal("step 2 produced no hits for a 80%-identical pair")
	}
	cfg := DefaultConfig()
	as, err := Run(b0, b1, hits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 {
		t.Fatal("no gapped alignments")
	}
	top := as[0]
	if top.Seq0 != 0 || top.Seq1 != 0 {
		t.Errorf("top alignment is %d vs %d, want the homolog pair 0/0", top.Seq0, top.Seq1)
	}
	if top.EValue > 1e-3 {
		t.Errorf("homolog E-value %g too weak", top.EValue)
	}
	if top.Q.Len() < 100 {
		t.Errorf("alignment covers only %d residues", top.Q.Len())
	}
}

func TestRunRespectsEValueCutoff(t *testing.T) {
	b0, b1 := homologPair(t)
	hits := runPipelineUpTo2(t, b0, b1, 25)
	cfg := DefaultConfig()
	cfg.MaxEValue = 1e-300 // impossible
	as, err := Run(b0, b1, hits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 0 {
		t.Errorf("%d alignments passed an impossible cutoff", len(as))
	}
}

func TestRunDedupsPerPair(t *testing.T) {
	// A long shared region yields many seed hits; the pair must still be
	// reported a bounded number of times (not once per seed).
	b0, b1 := homologPair(t)
	hits := runPipelineUpTo2(t, b0, b1, 25)
	if len(hits) < 3 {
		t.Skip("not enough hits to test dedup")
	}
	as, err := Run(b0, b1, hits, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, a := range as {
		if a.Seq0 == 0 && a.Seq1 == 0 {
			count++
		}
	}
	if count > 2 {
		t.Errorf("homolog pair reported %d times (hits: %d)", count, len(hits))
	}
}

func TestRunTracebackOps(t *testing.T) {
	b0, b1 := homologPair(t)
	hits := runPipelineUpTo2(t, b0, b1, 25)
	cfg := DefaultConfig()
	cfg.Traceback = true
	as, err := Run(b0, b1, hits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 {
		t.Fatal("no alignments")
	}
	a := as[0]
	if len(a.Ops) == 0 {
		t.Fatal("traceback requested but no ops")
	}
	// Ops must consume exactly the reported spans.
	var qc, sc int
	for _, op := range a.Ops {
		switch op.Kind {
		case 'M':
			qc += op.Len
			sc += op.Len
		case 'I':
			sc += op.Len
		case 'D':
			qc += op.Len
		}
	}
	if qc != a.Q.Len() || sc != a.S.Len() {
		t.Errorf("ops consume (%d,%d), spans are (%d,%d)", qc, sc, a.Q.Len(), a.S.Len())
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	b0, b1 := homologPair(t)
	hits := runPipelineUpTo2(t, b0, b1, 22)
	var ref []Alignment
	for _, workers := range []int{1, 2, 5} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		as, err := Run(b0, b1, hits, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = as
			continue
		}
		if len(as) != len(ref) {
			t.Fatalf("workers=%d: %d alignments, want %d", workers, len(as), len(ref))
		}
		for i := range as {
			if as[i].Score != ref[i].Score || as[i].Seq0 != ref[i].Seq0 ||
				as[i].Seq1 != ref[i].Seq1 || as[i].Q != ref[i].Q || as[i].S != ref[i].S {
				t.Fatalf("workers=%d: alignment %d differs", workers, i)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	b := bank.New("b")
	b.Add("s", alphabet.MustEncodeProtein("ARND"))
	cfg := DefaultConfig()
	cfg.Matrix = nil
	if _, err := Run(b, b, nil, cfg); err == nil {
		t.Error("nil matrix accepted")
	}
	cfg = DefaultConfig()
	cfg.Band = 0
	if _, err := Run(b, b, nil, cfg); err == nil {
		t.Error("zero band accepted")
	}
	cfg = DefaultConfig()
	cfg.MaxEValue = 0
	if _, err := Run(b, b, nil, cfg); err == nil {
		t.Error("zero cutoff accepted")
	}
}

func TestRunEmptyHits(t *testing.T) {
	b := bank.New("b")
	b.Add("s", alphabet.MustEncodeProtein("ARND"))
	as, err := Run(b, b, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 0 {
		t.Error("alignments from no hits")
	}
}

func TestSpanLen(t *testing.T) {
	if (Span{3, 10}).Len() != 7 {
		t.Error("Span.Len wrong")
	}
}

func TestRandomBanksFewFalsePositives(t *testing.T) {
	// Unrelated random banks at the default cutoff: chance alignments at
	// E ≤ 10⁻³ should essentially never appear at this scale.
	rng := bank.NewRNG(1234)
	b0 := bank.New("r0")
	b1 := bank.New("r1")
	for i := 0; i < 5; i++ {
		b0.Add(string(rune('a'+i)), bank.RandomProtein(rng, 200))
		b1.Add(string(rune('A'+i)), bank.RandomProtein(rng, 200))
	}
	hits := runPipelineUpTo2(t, b0, b1, 25)
	as, err := Run(b0, b1, hits, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(as) > 1 {
		t.Errorf("%d chance alignments passed E ≤ 1e-3", len(as))
	}
}

func TestDedupRemovesContainedAlignments(t *testing.T) {
	as := []Alignment{
		{Seq0: 0, Seq1: 0, Score: 100, Q: Span{0, 100}, S: Span{0, 100}},
		{Seq0: 0, Seq1: 0, Score: 40, Q: Span{10, 50}, S: Span{10, 50}},     // contained
		{Seq0: 0, Seq1: 0, Score: 60, Q: Span{150, 220}, S: Span{150, 220}}, // disjoint
	}
	out := dedup(as)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d alignments, want 2", len(out))
	}
	if out[0].Score != 100 || out[1].Score != 60 {
		t.Errorf("wrong survivors: %+v", out)
	}
}

func TestDedupKeepsPartialOverlaps(t *testing.T) {
	as := []Alignment{
		{Score: 100, Q: Span{0, 100}, S: Span{0, 100}},
		{Score: 80, Q: Span{50, 150}, S: Span{50, 150}}, // overlaps but not contained
	}
	if out := dedup(as); len(out) != 2 {
		t.Fatalf("partial overlap wrongly removed: %d", len(out))
	}
}

func TestDedupSingleton(t *testing.T) {
	as := []Alignment{{Score: 10}}
	if len(dedup(as)) != 1 || len(dedup(nil)) != 0 {
		t.Error("trivial dedup cases wrong")
	}
}

func TestGapTriggerDisabledExtendsEverything(t *testing.T) {
	b0, b1 := homologPair(t)
	hits := runPipelineUpTo2(t, b0, b1, 25)
	on := DefaultConfig()
	off := DefaultConfig()
	off.GapTrigger = 0
	asOn, stOn, err := RunWithStats(b0, b1, hits, on)
	if err != nil {
		t.Fatal(err)
	}
	asOff, stOff, err := RunWithStats(b0, b1, hits, off)
	if err != nil {
		t.Fatal(err)
	}
	if stOff.PreFiltered != 0 {
		t.Error("disabled trigger still pre-filtered")
	}
	if stOff.Extended < stOn.Extended {
		t.Error("disabled trigger should extend at least as many hits")
	}
	// The homolog must be found either way.
	if len(asOn) == 0 || len(asOff) == 0 {
		t.Error("homolog lost")
	}
	if asOn[0].Score != asOff[0].Score {
		t.Errorf("top score differs with/without trigger: %d vs %d",
			asOn[0].Score, asOff[0].Score)
	}
}

func TestStatsAccounting(t *testing.T) {
	b0, b1 := homologPair(t)
	hits := runPipelineUpTo2(t, b0, b1, 25)
	_, st, err := RunWithStats(b0, b1, hits, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != len(hits) {
		t.Errorf("Hits = %d, want %d", st.Hits, len(hits))
	}
	if st.Extended+st.PreFiltered+st.Contained > st.Hits {
		t.Errorf("categories exceed hits: %+v", st)
	}
	if st.Extended > 0 && st.DPCells <= st.DPRows {
		t.Errorf("DP volume inconsistent: %+v", st)
	}
}
