// Package gapped implements step 3 of the paper's algorithm: hits
// surviving the ungapped filter are extended with a banded affine-gap
// local alignment around the seed diagonal, scored with gapped
// Karlin-Altschul statistics, filtered at the configured E-value
// (the paper compares against tblastn at E ≤ 10⁻³) and de-duplicated
// so each similarity region is reported once.
package gapped

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"seedblast/internal/align"
	"seedblast/internal/bank"
	"seedblast/internal/matrix"
	"seedblast/internal/stats"
	"seedblast/internal/ungapped"
)

// Alignment is one reported similarity region between a bank-0 and a
// bank-1 sequence.
type Alignment struct {
	Seq0, Seq1 int // sequence numbers in their banks
	Score      int
	BitScore   float64
	EValue     float64
	Q          Span // range in the bank-0 sequence
	S          Span // range in the bank-1 sequence
	Ops        []align.Op
}

// Span is a half-open residue range.
type Span struct{ Start, End int }

// Len returns the span length.
func (s Span) Len() int { return s.End - s.Start }

// Config parameterises the gapped stage.
type Config struct {
	Matrix *matrix.Matrix
	Gaps   align.GapParams
	Band   int // half-width of the alignment band around the seed diagonal
	// GapTrigger is the raw score a cheap ungapped X-drop extension of
	// the hit must reach before the banded dynamic programming runs, as
	// in NCBI BLAST. Zero disables the pre-filter.
	GapTrigger int
	// XDrop is the X-drop used by the pre-filter extension.
	XDrop     int
	Params    stats.Params // gapped Karlin-Altschul parameters
	MaxEValue float64
	// SearchSpace fixes the database geometry E-values are computed
	// against. The zero value derives n from the subject bank passed to
	// Run — correct for a whole-bank comparison. A coordinator that
	// scatters volumes of a larger bank sets the full bank's geometry
	// here so each volume's E-values (and the MaxEValue cut) match an
	// unpartitioned run exactly.
	SearchSpace stats.SearchSpace
	// Traceback records alignment operations for reporting. The
	// traceback DP runs unbanded over the subject window, so it is
	// slower and can find alignments that escape the band.
	Traceback bool
	Workers   int // 0 means GOMAXPROCS
}

// DefaultConfig returns the stage defaults: BLOSUM62, BLAST gap costs,
// band 16, gap trigger 41 (NCBI's default, in raw BLOSUM62 units),
// published gapped statistics and the paper's E ≤ 10⁻³.
func DefaultConfig() Config {
	return Config{
		Matrix:     matrix.BLOSUM62,
		Gaps:       align.DefaultGaps,
		Band:       16,
		GapTrigger: 41,
		XDrop:      16,
		Params:     stats.GappedBLOSUM62,
		MaxEValue:  1e-3,
	}
}

// Stats describes the work the gapped stage performed; the simulated
// gap-extension operator (the paper's future-work second FPGA design)
// derives its cycle count from these.
type Stats struct {
	Hits        int   // hits received from step 2
	Contained   int   // skipped: seed inside an already-extended region
	PreFiltered int   // dropped by the gap-trigger pre-filter
	Extended    int   // banded DPs actually run
	DPRows      int64 // Σ query lengths over extended DPs
	DPCells     int64 // Σ query length × band width over extended DPs
}

// Run extends hits into alignments. b0 and b1 are the banks the hits'
// entries refer to. Results are sorted by (Seq0, EValue, Seq1) and
// de-duplicated per sequence pair.
func Run(b0, b1 *bank.Bank, hits []ungapped.Hit, cfg Config) ([]Alignment, error) {
	as, _, err := RunWithStats(b0, b1, hits, cfg)
	return as, err
}

// RunWithStats is Run plus work statistics.
func RunWithStats(b0, b1 *bank.Bank, hits []ungapped.Hit, cfg Config) ([]Alignment, Stats, error) {
	if cfg.Matrix == nil {
		return nil, Stats{}, fmt.Errorf("gapped: matrix is required")
	}
	if cfg.Band <= 0 {
		return nil, Stats{}, fmt.Errorf("gapped: band must be positive, got %d", cfg.Band)
	}
	if cfg.MaxEValue <= 0 {
		return nil, Stats{}, fmt.Errorf("gapped: MaxEValue must be positive, got %g", cfg.MaxEValue)
	}
	if err := cfg.SearchSpace.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("gapped: %w", err)
	}

	// Group hits by sequence pair, preserving deterministic order.
	type pairKey struct{ s0, s1 uint32 }
	groups := make(map[pairKey][]ungapped.Hit)
	var order []pairKey
	for _, h := range hits {
		k := pairKey{h.E0.Seq, h.E1.Seq}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], h)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) {
		workers = max(len(order), 1)
	}
	space := cfg.SearchSpace
	if space.IsZero() {
		space = stats.SearchSpace{DBLen: b1.TotalResidues(), DBSeqs: b1.Len()}
	}

	type groupResult struct {
		as []Alignment
		st Stats
	}
	results := make([]groupResult, len(order))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			al := align.NewAligner(cfg.Matrix, cfg.Gaps)
			for gi := range next {
				k := order[gi]
				results[gi].as, results[gi].st = extendGroup(al,
					b0.Seq(int(k.s0)), b1.Seq(int(k.s1)),
					int(k.s0), int(k.s1), groups[k], &cfg, space)
			}
		}()
	}
	for gi := range order {
		next <- gi
	}
	close(next)
	wg.Wait()

	var out []Alignment
	stats := Stats{Hits: len(hits)}
	for _, r := range results {
		out = append(out, r.as...)
		stats.Contained += r.st.Contained
		stats.PreFiltered += r.st.PreFiltered
		stats.Extended += r.st.Extended
		stats.DPRows += r.st.DPRows
		stats.DPCells += r.st.DPCells
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq0 != out[j].Seq0 {
			return out[i].Seq0 < out[j].Seq0
		}
		if out[i].EValue != out[j].EValue {
			return out[i].EValue < out[j].EValue
		}
		return out[i].Seq1 < out[j].Seq1
	})
	return out, stats, nil
}

// extendGroup processes all hits of one (seq0, seq1) pair: hits whose
// seed lands inside an alignment already found on a nearby diagonal are
// skipped (BLAST's containment rule), others are extended with a banded
// local alignment around their diagonal.
func extendGroup(al *align.Aligner, q, s []byte, seq0, seq1 int,
	hits []ungapped.Hit, cfg *Config, space stats.SearchSpace) ([]Alignment, Stats) {
	var found []Alignment
	var st Stats
	for _, h := range hits {
		qPos, sPos := int(h.E0.Off), int(h.E1.Off)
		if contained(found, qPos, sPos, cfg.Band) {
			st.Contained++
			continue
		}
		// Cheap pre-filter: an ungapped X-drop extension anchored at the
		// seed's first residue must reach the gap trigger before the
		// banded DP is paid for (NCBI's two-stage extension). Chance
		// hits from the ungapped window filter rarely extend.
		if cfg.GapTrigger > 0 {
			ext := align.ExtendUngapped(q, s, qPos, sPos, 1, cfg.XDrop, cfg.Matrix)
			if ext.Score < cfg.GapTrigger {
				st.PreFiltered++
				continue
			}
		}
		st.Extended++
		st.DPRows += int64(len(q))
		st.DPCells += int64(len(q)) * int64(2*cfg.Band+1)
		loc, ops := extendOne(al, q, s, qPos, sPos, cfg)
		if loc.Score <= 0 {
			continue
		}
		ev := cfg.Params.EValueIn(loc.Score, len(q), space)
		if ev > cfg.MaxEValue {
			continue
		}
		found = append(found, Alignment{
			Seq0:     seq0,
			Seq1:     seq1,
			Score:    loc.Score,
			BitScore: cfg.Params.BitScore(loc.Score),
			EValue:   ev,
			Q:        Span{loc.AStart, loc.AEnd},
			S:        Span{loc.BStart, loc.BEnd},
			Ops:      ops,
		})
	}
	return dedup(found), st
}

// extendOne aligns the full query against a subject window around the
// hit's diagonal and maps coordinates back to the subject.
func extendOne(al *align.Aligner, q, s []byte, qPos, sPos int, cfg *Config) (align.Local, []align.Op) {
	slack := cfg.Band + 8
	winStart := max(0, sPos-qPos-slack)
	winEnd := min(len(s), sPos+(len(q)-qPos)+slack)
	window := s[winStart:winEnd]
	diag := (sPos - winStart) - qPos

	var loc align.Local
	var ops []align.Op
	if cfg.Traceback {
		loc, ops = al.Traceback(q, window)
	} else {
		loc = al.LocalBanded(q, window, diag, cfg.Band)
	}
	loc.BStart += winStart
	loc.BEnd += winStart
	return loc, ops
}

// contained reports whether the seed (qPos, sPos) lies inside an
// already-reported alignment on a nearby diagonal.
func contained(found []Alignment, qPos, sPos, band int) bool {
	for i := range found {
		a := &found[i]
		if qPos >= a.Q.Start && qPos < a.Q.End &&
			sPos >= a.S.Start && sPos < a.S.End {
			d := (sPos - qPos) - (a.S.Start - a.Q.Start)
			if d >= -band && d <= band {
				return true
			}
		}
	}
	return false
}

// dedup removes alignments whose query and subject ranges are both
// contained in a higher-scoring alignment of the same pair.
func dedup(as []Alignment) []Alignment {
	if len(as) <= 1 {
		return as
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Score > as[j].Score })
	var out []Alignment
	for _, a := range as {
		keep := true
		for _, b := range out {
			if a.Q.Start >= b.Q.Start && a.Q.End <= b.Q.End &&
				a.S.Start >= b.S.Start && a.S.End <= b.S.End {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, a)
		}
	}
	return out
}
