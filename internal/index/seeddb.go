package index

// This file implements seeddb, the persistent on-disk form of a built
// Index together with its bank: step 1 of the paper's algorithm is pure
// preprocessing of the subject bank, so its product is written once
// (seeddb build, the service's warm path) and loaded everywhere else —
// a cold daemon, a cluster volume worker — instead of being recomputed.
//
// Layout (all integers native-endian, guarded by a byte-order sentinel
// so a foreign-endian file is rejected, never misread):
//
//	preamble  magic "SEEDDB01", version, byte-order sentinel,
//	          meta length + CRC32-C
//	meta      fingerprint stamp, seed model (name + per-position
//	          partitions), N, bank (name, ids, sequence lengths),
//	          entry count, key space, window length, and one
//	          (offset, size, CRC32-C) record per data section
//	data      bucketStart, entries, neighborhoods, bank residues —
//	          each 8-byte aligned so the loader can alias them in
//	          place from a memory mapping
//
// Open maps the file and aliases every section directly out of the
// mapping: the neighborhood array — by far the largest section — is
// never materialized a second time, and processes opening the same
// file share its pages. Load decodes from an in-memory buffer (the
// non-mmap fallback and the fuzz target). Both recompute the bank
// fingerprint and compare it to the stamp, so a loaded index is known
// to describe exactly the bank it claims; the big-array CRCs are
// checked by Verify (seeddb verify, CI) rather than on every open, to
// keep the load path from paging in sections the search may never
// touch.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"unsafe"

	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

// seeddb file constants.
const (
	dbMagic    = "SEEDDB01"
	dbVersion  = 1
	dbSentinel = 0x01020304 // byte-order probe: reads back swapped on a foreign-endian host
	// dbPreambleLen is the fixed preamble: magic[8] + version u32 +
	// sentinel u32 + metaLen u64 + metaCRC u32 + reserved u32.
	dbPreambleLen = 8 + 4 + 4 + 8 + 4 + 4
	dbAlign       = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// dbSection locates one data section inside the file.
type dbSection struct {
	off, size uint64
	crc       uint32
}

// dbMeta is the decoded meta block.
type dbMeta struct {
	fingerprint string
	modelName   string
	positions   []seed.Partition
	n           int
	bankName    string
	ids         []string
	seqLens     []uint64
	numEntries  uint64
	keySpace    uint64
	subLen      uint64
	// section order: bucketStart, entries, neighborhoods, residues.
	sections [4]dbSection
}

// DBInfo summarises a seeddb file without loading its data sections —
// the cheap header read behind `seeddb inspect` and the comparison
// service's fingerprint→path registry.
type DBInfo struct {
	Path        string
	Version     int
	Fingerprint string
	ModelName   string
	Width       int
	KeySpace    int
	N           int
	SubLen      int
	BankName    string
	Sequences   int
	Residues    int64
	Entries     int64
	FileSize    int64
}

// WriteTo serialises the index and its bank in the seeddb format. It
// implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	model, ok := ix.model.(*seed.SubsetModel)
	if !ok {
		return 0, fmt.Errorf("index: seeddb can only persist subset seed models, not %T", ix.model)
	}
	b := ix.bank

	// Data section byte views (entries reinterpreted in place; the
	// format is declared native-endian, so this is the on-disk form).
	bucketBytes := u32Bytes(ix.bucketStart)
	entryBytes := entryBytes(ix.entries)
	var residues bytes.Buffer
	for i := 0; i < b.Len(); i++ {
		residues.Write(b.Seq(i))
	}

	// Compute section offsets: preamble + meta, then each section
	// aligned to dbAlign.
	meta := dbMeta{
		fingerprint: ix.Fingerprint(),
		modelName:   model.Name(),
		positions:   model.Positions(),
		n:           ix.n,
		bankName:    b.Name(),
		numEntries:  uint64(len(ix.entries)),
		keySpace:    uint64(model.KeySpace()),
		subLen:      uint64(ix.subLen),
	}
	for i := 0; i < b.Len(); i++ {
		meta.ids = append(meta.ids, b.ID(i))
		meta.seqLens = append(meta.seqLens, uint64(len(b.Seq(i))))
	}
	data := [4][]byte{bucketBytes, entryBytes, ix.neighborhoods, residues.Bytes()}

	// The meta block's own size shifts section offsets, but the size of
	// the encoded meta does not depend on the offset values (fixed u64),
	// so one sizing pass with zero offsets settles the layout.
	sizing := encodeMeta(&meta)
	off := align(uint64(dbPreambleLen)+uint64(len(sizing)), dbAlign)
	for i, d := range data {
		meta.sections[i] = dbSection{off: off, size: uint64(len(d)), crc: crc32.Checksum(d, castagnoli)}
		off = align(off+uint64(len(d)), dbAlign)
	}
	metaBytes := encodeMeta(&meta)
	if len(metaBytes) != len(sizing) {
		return 0, fmt.Errorf("index: internal error: meta sizing pass diverged")
	}

	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	// Preamble.
	pre := make([]byte, dbPreambleLen)
	copy(pre, dbMagic)
	binary.NativeEndian.PutUint32(pre[8:], dbVersion)
	binary.NativeEndian.PutUint32(pre[12:], dbSentinel)
	binary.NativeEndian.PutUint64(pre[16:], uint64(len(metaBytes)))
	binary.NativeEndian.PutUint32(pre[24:], crc32.Checksum(metaBytes, castagnoli))
	if err := count(w.Write(pre)); err != nil {
		return n, err
	}
	if err := count(w.Write(metaBytes)); err != nil {
		return n, err
	}
	pos := uint64(dbPreambleLen) + uint64(len(metaBytes))
	var padBuf [dbAlign]byte
	for i, d := range data {
		if pad := meta.sections[i].off - pos; pad > 0 {
			if err := count(w.Write(padBuf[:pad])); err != nil {
				return n, err
			}
			pos += pad
		}
		if err := count(w.Write(d)); err != nil {
			return n, err
		}
		pos += uint64(len(d))
	}
	return n, nil
}

// WriteFile writes the index to path atomically (temp file + rename),
// so a crashed or concurrent writer never leaves a half-written DB
// where a loader could find it.
func (ix *Index) WriteFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".seeddb-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := ix.WriteTo(tmp); err != nil {
		// The write already failed; that error is the one to report.
		// The deferred remove reclaims the temp file either way.
		_ = tmp.Close()
		return fmt.Errorf("index: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Open maps the seeddb file at path and returns the index it holds.
// Every data section — including the neighborhood array and the bank's
// residues — aliases the mapping: nothing is copied, pages are shared
// with other processes mapping the same file, and the kernel pages
// sections in as the search touches them. The returned index (and its
// Bank) must not be used after Close, which releases the mapping.
//
// Open verifies the preamble, the meta checksum, every structural
// invariant the engine relies on (monotone bucket table, in-range
// entries), and recomputes the bank fingerprint against the stamp. The
// large-array CRCs are checked by Verify, not here.
func Open(path string) (*Index, error) {
	data, closer, err := mmapFile(path)
	if err != nil {
		return nil, fmt.Errorf("index: opening %s: %w", path, err)
	}
	ix, err := load(data)
	if err != nil {
		closer()
		return nil, fmt.Errorf("index: %s: %w", path, err)
	}
	// Close is the contract, but long-lived daemons churn loaded
	// indexes through caches that drop them without closing; a GC
	// cleanup unmaps abandoned mappings so eviction churn cannot
	// accumulate address space. The releaser's once makes explicit
	// Close and the cleanup commute.
	rel := &releaser{f: closer}
	ix.close = rel.release
	runtime.AddCleanup(ix, func(r *releaser) { r.release() }, rel)
	return ix, nil
}

// releaser runs a release function exactly once, from whichever of
// Close and the GC cleanup gets there first.
type releaser struct {
	once sync.Once
	f    func() error
}

func (r *releaser) release() error {
	var err error
	r.once.Do(func() { err = r.f() })
	return err
}

// Load decodes a seeddb image from an in-memory buffer. Sections alias
// data, which must stay immutable and live for the index's lifetime.
// It is the non-mmap fallback behind Open and the decoder the fuzz
// tests drive: corrupt input of any shape must error, never panic.
func Load(data []byte) (*Index, error) {
	return load(alignedImage(data))
}

// alignedImage returns data, copied when its base pointer is not
// aligned for the u32/Entry views the decoder takes. Mappings and
// large heap buffers are always aligned; tiny fuzz inputs may not be.
func alignedImage(data []byte) []byte {
	if len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%dbAlign == 0 {
		return data
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp
}

// Close releases the resources behind a loaded index (the file mapping
// for Open). It is a no-op for built indexes. The index, its bank and
// every slice returned by Bucket/Neighborhood are invalid afterwards.
func (ix *Index) Close() error {
	if ix.close == nil {
		return nil
	}
	c := ix.close
	ix.close = nil
	return c()
}

// load decodes a seeddb image whose base is dbAlign-aligned.
func load(data []byte) (*Index, error) {
	meta, err := decodePreambleAndMeta(data)
	if err != nil {
		return nil, err
	}
	model, err := reconstructModel(meta)
	if err != nil {
		return nil, err
	}

	// Shape checks: the declared geometry must be self-consistent and
	// the sections must carry exactly the bytes it implies.
	w := uint64(model.Width())
	if meta.subLen != w+2*uint64(meta.n) {
		return nil, fmt.Errorf("seeddb: window length %d does not match width %d + 2·N %d", meta.subLen, w, meta.n)
	}
	var totalResidues uint64
	for _, l := range meta.seqLens {
		if l > math.MaxUint64-totalResidues {
			return nil, fmt.Errorf("seeddb: sequence lengths overflow")
		}
		totalResidues += l
	}
	want := [4]uint64{
		(meta.keySpace + 1) * 4,
		meta.numEntries * 8,
		meta.numEntries * meta.subLen,
		totalResidues,
	}
	if meta.numEntries != 0 && (want[1]/meta.numEntries != 8 || want[2]/meta.numEntries != meta.subLen) {
		return nil, fmt.Errorf("seeddb: section sizes overflow")
	}
	var sections [4][]byte
	for i, s := range meta.sections {
		if s.size != want[i] {
			return nil, fmt.Errorf("seeddb: section %d holds %d bytes, geometry implies %d", i, s.size, want[i])
		}
		if s.off%dbAlign != 0 {
			return nil, fmt.Errorf("seeddb: section %d offset %d not %d-aligned", i, s.off, dbAlign)
		}
		if s.off > uint64(len(data)) || s.size > uint64(len(data))-s.off {
			return nil, fmt.Errorf("seeddb: section %d [%d, +%d) outside file of %d bytes", i, s.off, s.size, len(data))
		}
		sections[i] = data[s.off : s.off+s.size]
	}

	ix := &Index{
		model:         model,
		n:             meta.n,
		subLen:        int(meta.subLen),
		bucketStart:   u32View(sections[0]),
		entries:       entryView(sections[1]),
		neighborhoods: sections[2],
	}

	// Rebuild the bank over the residues section: ids are copied
	// (strings), sequences alias the mapping.
	b := bank.New(meta.bankName)
	res := sections[3]
	var off uint64
	for i, l := range meta.seqLens {
		b.Add(meta.ids[i], res[off:off+l:off+l])
		off += l
	}
	ix.bank = b

	// Structural invariants the engine indexes by without re-checking.
	bs := ix.bucketStart
	if bs[0] != 0 || uint64(bs[len(bs)-1]) != meta.numEntries {
		return nil, fmt.Errorf("seeddb: bucket table does not span [0, %d)", meta.numEntries)
	}
	for k := 1; k < len(bs); k++ {
		if bs[k] < bs[k-1] {
			return nil, fmt.Errorf("seeddb: bucket table not monotone at key %d", k-1)
		}
	}
	for i := range ix.entries {
		e := &ix.entries[i]
		if int(e.Seq) >= b.Len() {
			return nil, fmt.Errorf("seeddb: entry %d references sequence %d of %d", i, e.Seq, b.Len())
		}
		if uint64(e.Off)+w > meta.seqLens[e.Seq] {
			return nil, fmt.Errorf("seeddb: entry %d offset %d outside sequence %d (len %d)", i, e.Off, e.Seq, meta.seqLens[e.Seq])
		}
	}

	// The fingerprint stamp is the compatibility contract: recompute it
	// from the decoded bank and model so a loaded index is known to
	// serve exactly the subject it claims (and any corruption of the
	// bank or meta sections is caught even without the full CRC pass).
	if fp := Fingerprint(b, model, meta.n); fp != meta.fingerprint {
		return nil, fmt.Errorf("seeddb: fingerprint mismatch: file stamped %.24s…, contents hash to %.24s…", meta.fingerprint, fp)
	}
	ix.fingerprint = meta.fingerprint
	return ix, nil
}

// Inspect reads a seeddb file's preamble and meta block without
// touching the data sections.
func Inspect(path string) (*DBInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	pre := make([]byte, dbPreambleLen)
	if _, err := io.ReadFull(f, pre); err != nil {
		return nil, fmt.Errorf("index: %s: seeddb preamble: %w", path, err)
	}
	metaLen, err := checkPreamble(pre, uint64(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("index: %s: %w", path, err)
	}
	metaBytes := make([]byte, metaLen)
	if _, err := io.ReadFull(f, metaBytes); err != nil {
		return nil, fmt.Errorf("index: %s: seeddb meta: %w", path, err)
	}
	if crc := crc32.Checksum(metaBytes, castagnoli); crc != binary.NativeEndian.Uint32(pre[24:]) {
		return nil, fmt.Errorf("index: %s: seeddb meta checksum mismatch", path)
	}
	meta, err := decodeMeta(metaBytes)
	if err != nil {
		return nil, fmt.Errorf("index: %s: %w", path, err)
	}
	model, err := reconstructModel(meta)
	if err != nil {
		return nil, fmt.Errorf("index: %s: %w", path, err)
	}
	var residues uint64
	for _, l := range meta.seqLens {
		residues += l
	}
	return &DBInfo{
		Path:        path,
		Version:     dbVersion,
		Fingerprint: meta.fingerprint,
		ModelName:   meta.modelName,
		Width:       model.Width(),
		KeySpace:    int(meta.keySpace),
		N:           meta.n,
		SubLen:      int(meta.subLen),
		BankName:    meta.bankName,
		Sequences:   len(meta.ids),
		Residues:    int64(residues),
		Entries:     int64(meta.numEntries),
		FileSize:    st.Size(),
	}, nil
}

// Verify fully checks a seeddb file: the preamble and meta checksum,
// the CRC32-C of every data section (including the neighborhood array
// Open deliberately skips), and the structural and fingerprint checks
// a load performs. It reads the whole file once.
func Verify(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data = alignedImage(data)
	meta, err := decodePreambleAndMeta(data)
	if err != nil {
		return fmt.Errorf("index: %s: %w", path, err)
	}
	for i, s := range meta.sections {
		if s.off > uint64(len(data)) || s.size > uint64(len(data))-s.off {
			return fmt.Errorf("index: %s: seeddb section %d outside file", path, i)
		}
		if crc := crc32.Checksum(data[s.off:s.off+s.size], castagnoli); crc != s.crc {
			return fmt.Errorf("index: %s: seeddb section %d checksum mismatch", path, i)
		}
	}
	ix, err := load(data)
	if err != nil {
		return fmt.Errorf("index: %s: %w", path, err)
	}
	return ix.Close()
}

// decodePreambleAndMeta validates the fixed preamble and decodes the
// meta block from a whole-file image.
func decodePreambleAndMeta(data []byte) (*dbMeta, error) {
	if len(data) < dbPreambleLen {
		return nil, fmt.Errorf("seeddb: %d bytes is shorter than the preamble", len(data))
	}
	metaLen, err := checkPreamble(data[:dbPreambleLen], uint64(len(data)))
	if err != nil {
		return nil, err
	}
	metaBytes := data[dbPreambleLen : dbPreambleLen+metaLen]
	if crc := crc32.Checksum(metaBytes, castagnoli); crc != binary.NativeEndian.Uint32(data[24:]) {
		return nil, fmt.Errorf("seeddb: meta checksum mismatch")
	}
	return decodeMeta(metaBytes)
}

// checkPreamble validates magic, version and byte order, and returns
// the meta block length after bounding it by the file size.
func checkPreamble(pre []byte, fileSize uint64) (uint64, error) {
	if string(pre[:8]) != dbMagic {
		return 0, fmt.Errorf("seeddb: bad magic %q", pre[:8])
	}
	if v := binary.NativeEndian.Uint32(pre[8:]); v != dbVersion {
		return 0, fmt.Errorf("seeddb: unsupported version %d (this build reads %d)", v, dbVersion)
	}
	if s := binary.NativeEndian.Uint32(pre[12:]); s != dbSentinel {
		return 0, fmt.Errorf("seeddb: byte-order sentinel %#x: file written on a foreign-endian host", s)
	}
	metaLen := binary.NativeEndian.Uint64(pre[16:])
	if metaLen > fileSize-dbPreambleLen {
		return 0, fmt.Errorf("seeddb: meta block of %d bytes outside file of %d", metaLen, fileSize)
	}
	return metaLen, nil
}

// reconstructModel rebuilds the subset seed model from the meta block
// and cross-checks the declared key space.
func reconstructModel(meta *dbMeta) (*seed.SubsetModel, error) {
	model, err := seed.NewSubset(meta.modelName, meta.positions...)
	if err != nil {
		return nil, fmt.Errorf("seeddb: seed model: %w", err)
	}
	if uint64(model.KeySpace()) != meta.keySpace {
		return nil, fmt.Errorf("seeddb: declared key space %d, positions imply %d", meta.keySpace, model.KeySpace())
	}
	return model, nil
}

// --- meta encoding ---

type metaWriter struct{ buf bytes.Buffer }

func (w *metaWriter) u32(v uint32) {
	var b [4]byte
	binary.NativeEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}

func (w *metaWriter) u64(v uint64) {
	var b [8]byte
	binary.NativeEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

func (w *metaWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

func encodeMeta(m *dbMeta) []byte {
	var w metaWriter
	w.str(m.fingerprint)
	w.u64(uint64(m.n))
	w.str(m.modelName)
	w.u64(uint64(len(m.positions)))
	for _, p := range m.positions {
		w.str(p.Label)
		w.u64(uint64(p.NumGroups))
		w.buf.Write(p.Group[:])
	}
	w.str(m.bankName)
	w.u64(uint64(len(m.ids)))
	for i, id := range m.ids {
		w.str(id)
		w.u64(m.seqLens[i])
	}
	w.u64(m.numEntries)
	w.u64(m.keySpace)
	w.u64(m.subLen)
	for _, s := range m.sections {
		w.u64(s.off)
		w.u64(s.size)
		w.u32(s.crc)
	}
	return w.buf.Bytes()
}

// metaReader is a bounds-checked cursor over the meta block: every read
// that would pass the end flips err, and the decode fails closed.
type metaReader struct {
	data []byte
	pos  int
	err  error
}

func (r *metaReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.pos {
		r.err = fmt.Errorf("seeddb: truncated meta block")
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *metaReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.NativeEndian.Uint32(b)
}

func (r *metaReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.NativeEndian.Uint64(b)
}

func (r *metaReader) str() string {
	n := r.u32()
	return string(r.take(int(n)))
}

// count reads an element count that is about to drive a decode loop;
// bounding it by the remaining meta bytes (each element costs at least
// one byte) keeps corrupt counts from driving huge allocations.
func (r *metaReader) count() int {
	n := r.u64()
	if r.err == nil && n > uint64(len(r.data)-r.pos) {
		r.err = fmt.Errorf("seeddb: element count %d exceeds meta block", n)
		return 0
	}
	return int(n)
}

func decodeMeta(data []byte) (*dbMeta, error) {
	r := &metaReader{data: data}
	m := &dbMeta{}
	m.fingerprint = r.str()
	n := r.u64()
	m.modelName = r.str()
	for range r.count() {
		var p seed.Partition
		p.Label = r.str()
		p.NumGroups = int(r.u64())
		copy(p.Group[:], r.take(len(p.Group)))
		if r.err != nil {
			return nil, r.err
		}
		if p.NumGroups <= 0 || p.NumGroups > len(p.Group) {
			return nil, fmt.Errorf("seeddb: partition with %d groups", p.NumGroups)
		}
		for _, g := range p.Group {
			if int(g) >= p.NumGroups {
				return nil, fmt.Errorf("seeddb: partition group id %d outside %d groups", g, p.NumGroups)
			}
		}
		m.positions = append(m.positions, p)
	}
	m.bankName = r.str()
	for range r.count() {
		m.ids = append(m.ids, r.str())
		m.seqLens = append(m.seqLens, r.u64())
		if r.err != nil {
			return nil, r.err
		}
	}
	m.numEntries = r.u64()
	m.keySpace = r.u64()
	m.subLen = r.u64()
	for i := range m.sections {
		m.sections[i] = dbSection{off: r.u64(), size: r.u64(), crc: r.u32()}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("seeddb: %d trailing bytes after meta block", len(r.data)-r.pos)
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("seeddb: neighbourhood extension %d out of range", n)
	}
	m.n = int(n)
	if m.keySpace == 0 || m.keySpace > math.MaxInt32 {
		return nil, fmt.Errorf("seeddb: key space %d out of range", m.keySpace)
	}
	if m.subLen == 0 || m.subLen > math.MaxInt32 {
		return nil, fmt.Errorf("seeddb: window length %d out of range", m.subLen)
	}
	if m.numEntries > math.MaxInt64/m.subLen {
		return nil, fmt.Errorf("seeddb: entry count %d overflows", m.numEntries)
	}
	return m, nil
}

// --- raw slice views (native-endian on-disk form) ---

func align(off, to uint64) uint64 { return (off + to - 1) &^ (to - 1) }

// u32Bytes reinterprets a uint32 slice as its backing bytes.
func u32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// entryBytes reinterprets an Entry slice as its backing bytes. Entry is
// two uint32s, so its in-memory form is exactly the on-disk layout.
func entryBytes(s []Entry) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// u32View aliases a byte section (dbAlign-aligned, length validated a
// multiple of 4 by the caller's geometry check) as uint32s.
func u32View(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// entryView aliases a byte section as Entries.
func entryView(b []byte) []Entry {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*Entry)(unsafe.Pointer(&b[0])), len(b)/8)
}
