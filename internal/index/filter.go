package index

// FilterSeqs returns a new index holding only the entries whose
// sequence number appears in keep. Everything else is preserved: the
// bank pointer (and with it the original global sequence numbering
// inside each Entry), the seed model, N, and the relative order of
// entries within every bucket — so step-2 hits produced against the
// filtered index are exactly the subset of the unfiltered hits whose
// subject survived, in the same order. The prefilter stage builds one
// of these per query shard from the shard's survivor union.
//
// Entries and neighbourhood windows are copied, never aliased, so the
// filtered index is independent storage; for a seeddb-loaded index it
// is only valid while the source index remains open (the bank still
// references the mapping). Close on the filtered index is a no-op.
// keep must contain valid sequence numbers for the indexed bank;
// duplicates are harmless.
func (ix *Index) FilterSeqs(keep []uint32) *Index {
	in := make([]bool, ix.bank.Len())
	for _, s := range keep {
		in[s] = true
	}
	space := ix.model.KeySpace()
	out := &Index{
		bank:        ix.bank,
		model:       ix.model,
		n:           ix.n,
		subLen:      ix.subLen,
		bucketStart: make([]uint32, space+1),
	}
	// Pass 1: surviving bucket sizes, accumulated directly as the
	// shifted prefix-sum layout Build uses.
	for k := 0; k < space; k++ {
		lo, hi := ix.bucketStart[k], ix.bucketStart[k+1]
		n := uint32(0)
		for i := lo; i < hi; i++ {
			if in[ix.entries[i].Seq] {
				n++
			}
		}
		out.bucketStart[k+1] = n
	}
	for k := 1; k <= space; k++ {
		out.bucketStart[k] += out.bucketStart[k-1]
	}
	total := out.bucketStart[space]
	out.entries = make([]Entry, total)
	out.neighborhoods = make([]byte, int(total)*ix.subLen)

	// Pass 2: copy surviving entries and their neighbourhood rows,
	// preserving in-bucket order.
	j := 0
	for i := range ix.entries {
		if !in[ix.entries[i].Seq] {
			continue
		}
		out.entries[j] = ix.entries[i]
		copy(out.neighborhoods[j*ix.subLen:(j+1)*ix.subLen],
			ix.neighborhoods[i*ix.subLen:(i+1)*ix.subLen])
		j++
	}
	return out
}
