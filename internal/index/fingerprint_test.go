package index

import (
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

func fpBank(name string, seqs ...string) *bank.Bank {
	b := bank.New(name)
	for i, s := range seqs {
		b.Add(string(rune('a'+i)), []byte(s))
	}
	return b
}

func TestBankFingerprint(t *testing.T) {
	a := fpBank("a", "ACDEF", "GHIKL")
	same := fpBank("other-name", "ACDEF", "GHIKL")
	if BankFingerprint(a) != BankFingerprint(same) {
		t.Error("fingerprint depends on the bank name")
	}
	// Moving a residue across a record boundary must change the digest
	// (length prefixing).
	shifted := fpBank("a", "ACDEFG", "HIKL")
	if BankFingerprint(a) == BankFingerprint(shifted) {
		t.Error("record boundaries not separated in the fingerprint")
	}
	reordered := fpBank("a", "GHIKL", "ACDEF")
	if BankFingerprint(a) == BankFingerprint(reordered) {
		t.Error("sequence order ignored by the fingerprint")
	}
}

// TestBankFingerprintKeyedOnSequenceIDs pins that renaming a sequence
// changes the fingerprint: alignments are reported (and cluster-merged)
// by id, so a renamed subject must not be served another bank's cached
// index with the old ids baked into its reports.
func TestBankFingerprintKeyedOnSequenceIDs(t *testing.T) {
	a := bank.New("bank")
	a.Add("s0", []byte("ACDEF"))
	a.Add("s1", []byte("GHIKL"))
	renamed := bank.New("bank")
	renamed.Add("s0", []byte("ACDEF"))
	renamed.Add("renamed", []byte("GHIKL"))
	if BankFingerprint(a) == BankFingerprint(renamed) {
		t.Error("renaming a sequence id did not change the fingerprint")
	}
	// The id/residue boundary must not be exploitable either: moving a
	// residue from the id into the sequence is a different bank.
	shifted := bank.New("bank")
	shifted.Add("s0A", []byte("CDEF"))
	shifted.Add("s1", []byte("GHIKL"))
	if BankFingerprint(a) == BankFingerprint(shifted) {
		t.Error("id/residue boundary not separated in the fingerprint")
	}
}

func TestIndexFingerprintKeyedOnModelAndN(t *testing.T) {
	b := bank.GenerateProteins(bank.ProteinConfig{N: 4, MeanLen: 60, Seed: 9})
	m := seed.Default()
	f1 := Fingerprint(b, m, 14)
	if f2 := Fingerprint(b, m, 15); f1 == f2 {
		t.Error("fingerprint ignores N")
	}
	if f3 := Fingerprint(b, seed.Exact(4), 14); f1 == f3 {
		t.Error("fingerprint ignores the seed model")
	}
	ix, err := Build(b, m, 14)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Fingerprint() != f1 {
		t.Error("(*Index).Fingerprint disagrees with Fingerprint")
	}
}

// badKeyModel wraps a model but reports keys outside its declared key
// space for any window, exercising the build-time range defense.
type badKeyModel struct{ seed.Model }

func (badKeyModel) Key(w []byte) (uint32, bool) { return 1 << 30, true }

func TestBuildRejectsOutOfRangeKeys(t *testing.T) {
	b := bank.GenerateProteins(bank.ProteinConfig{N: 4, MeanLen: 50, Seed: 2})
	bad := badKeyModel{seed.Default()}
	if _, err := Build(b, bad, 0); err == nil {
		t.Error("Build accepted out-of-range seed keys")
	}
	if _, err := BuildParallel(b, bad, 0, 2); err == nil {
		t.Error("BuildParallel accepted out-of-range seed keys")
	}
}
