package index

import (
	"bytes"
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

// FuzzSeedDBLoad drives the seeddb decoder with arbitrary bytes: it
// must reject truncated, corrupted and wrong-version images with an
// error — never panic, never over-allocate on a lying count field.
// Seeded with a valid image (and systematic truncations of it) so the
// fuzzer starts from deep decode paths instead of preamble rejects.
func FuzzSeedDBLoad(f *testing.F) {
	b := bank.GenerateProteins(bank.ProteinConfig{N: 6, MeanLen: 40, Seed: 7})
	ix, err := Build(b, seed.Default(), 3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 7, 8, dbPreambleLen - 1, dbPreambleLen, dbPreambleLen + 17, len(valid) / 2, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(valid[:cut])
		}
	}
	// A few targeted mutations as seeds: version, sentinel, meta count
	// region, section table region.
	for _, pos := range []int{8, 12, dbPreambleLen + 2, len(valid) - 9} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0xFF
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Load(data)
		if err != nil {
			return
		}
		// The rare mutations that still decode must yield a usable,
		// self-consistent index: exercise the read surface the engine
		// uses so latent decode bugs surface as failures here, not as
		// panics inside a search.
		st := ix.Stats()
		if st.Entries != ix.NumEntries() {
			t.Fatalf("Stats entries %d != NumEntries %d", st.Entries, ix.NumEntries())
		}
		for k := 0; k < ix.Model().KeySpace(); k += 97 {
			es, nb := ix.Bucket(uint32(k))
			if len(nb) != len(es)*ix.SubLen() {
				t.Fatalf("bucket %d: %d entries but %d neighborhood bytes", k, len(es), len(nb))
			}
		}
		_ = ix.Fingerprint()
		_ = ix.Close()
	})
}
