package index

import (
	"testing"
	"testing/quick"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

func mkBank(seqs ...string) *bank.Bank {
	b := bank.New("test")
	for i, s := range seqs {
		b.Add(string(rune('a'+i)), alphabet.MustEncodeProtein(s))
	}
	return b
}

func TestBuildSimple(t *testing.T) {
	b := mkBank("ARNDAR")
	ix, err := Build(b, seed.Exact(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Windows: AR NR? — AR(0), RN(1), ND(2), DA(3), AR(4): 5 entries.
	if ix.NumEntries() != 5 {
		t.Fatalf("entries = %d, want 5", ix.NumEntries())
	}
	m := seed.Exact(2)
	key, _ := m.Key(alphabet.MustEncodeProtein("AR"))
	entries, hood := ix.Bucket(key)
	if len(entries) != 2 {
		t.Fatalf("AR bucket = %d entries, want 2", len(entries))
	}
	if entries[0].Off != 0 || entries[1].Off != 4 {
		t.Errorf("AR offsets = %d,%d want 0,4", entries[0].Off, entries[1].Off)
	}
	if len(hood) != 2*ix.SubLen() {
		t.Errorf("neighbourhood block = %d bytes, want %d", len(hood), 2*ix.SubLen())
	}
}

func TestNeighborhoodPadding(t *testing.T) {
	b := mkBank("ARND")
	ix, err := Build(b, seed.Exact(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	m := seed.Exact(2)
	key, _ := m.Key(alphabet.MustEncodeProtein("AR"))
	_, hood := ix.Bucket(key)
	// Window of AR at offset 0 with N=3: XXX ARND X → "XXXARNDX".
	got := alphabet.DecodeProtein(hood[:ix.SubLen()])
	if got != "XXXARNDX" {
		t.Errorf("padded window = %q, want XXXARNDX", got)
	}
}

func TestBuildSkipsAmbiguousWindows(t *testing.T) {
	b := mkBank("ARXND")
	ix, err := Build(b, seed.Exact(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Windows: AR ok, RX no, XN no, ND ok.
	if ix.NumEntries() != 2 {
		t.Errorf("entries = %d, want 2", ix.NumEntries())
	}
}

func TestBuildShortSequences(t *testing.T) {
	b := mkBank("A", "AR", "")
	ix, err := Build(b, seed.Exact(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumEntries() != 0 {
		t.Errorf("short sequences produced %d entries", ix.NumEntries())
	}
}

func TestBuildRejectsNegativeN(t *testing.T) {
	if _, err := Build(mkBank("ARND"), seed.Exact(2), -1); err == nil {
		t.Error("negative N accepted")
	}
}

func TestBucketsPartitionAllWindows(t *testing.T) {
	// Property: total entries == number of indexable windows, and every
	// entry's window really has the bucket's key.
	model := seed.Default()
	f := func(raw []byte) bool {
		seq := make([]byte, len(raw))
		for i, r := range raw {
			seq[i] = r % alphabet.NumStandardAA
		}
		b := bank.New("p")
		b.Add("s", seq)
		ix, err := Build(b, model, 2)
		if err != nil {
			return false
		}
		want := 0
		if len(seq) >= model.Width() {
			want = len(seq) - model.Width() + 1
		}
		if ix.NumEntries() != want {
			return false
		}
		for k := 0; k < model.KeySpace(); k++ {
			entries, _ := ix.Bucket(uint32(k))
			for _, e := range entries {
				key, ok := model.Key(seq[e.Off : int(e.Off)+model.Width()])
				if !ok || key != uint32(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNeighborhoodMatchesSequence(t *testing.T) {
	rng := bank.NewRNG(17)
	b := bank.New("r")
	b.Add("s0", bank.RandomProtein(rng, 120))
	b.Add("s1", bank.RandomProtein(rng, 75))
	model := seed.Default()
	const n = 5
	ix, err := Build(b, model, n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < model.KeySpace(); k++ {
		entries, hood := ix.Bucket(uint32(k))
		for i, e := range entries {
			window := hood[i*ix.SubLen() : (i+1)*ix.SubLen()]
			seq := b.Seq(int(e.Seq))
			for j, c := range window {
				p := int(e.Off) - n + j
				want := alphabet.Xaa
				if p >= 0 && p < len(seq) {
					want = seq[p]
				}
				if c != want {
					t.Fatalf("key %d entry %d window[%d] = %d, want %d", k, i, j, c, want)
				}
			}
		}
	}
}

func TestStats(t *testing.T) {
	b := mkBank("ARNDARND", "ARND")
	ix, err := Build(b, seed.Exact(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Entries != ix.NumEntries() {
		t.Errorf("Stats.Entries = %d, want %d", st.Entries, ix.NumEntries())
	}
	if st.UsedKeys == 0 || st.MaxBucket < 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Keys != 400 {
		t.Errorf("Keys = %d, want 400", st.Keys)
	}
	if st.MeanOccupied <= 0 {
		t.Error("MeanOccupied should be positive")
	}
}

func TestAccessors(t *testing.T) {
	b := mkBank("ARNDARND")
	model := seed.Default()
	ix, err := Build(b, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Bank() != b || ix.Model() != seed.Model(model) {
		t.Error("accessors broken")
	}
	if ix.N() != 3 || ix.SubLen() != model.Width()+6 {
		t.Errorf("N=%d SubLen=%d", ix.N(), ix.SubLen())
	}
	if ix.NumEntries() > 0 {
		if len(ix.Neighborhood(0)) != ix.SubLen() {
			t.Error("Neighborhood length wrong")
		}
	}
}
