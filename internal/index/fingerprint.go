package index

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

// BankFingerprint returns a stable hex digest of a bank's contents:
// every sequence id and residue string, length-prefixed so record
// boundaries are unambiguous. Two banks with equal fingerprints index
// identically under any seed model AND report identical ids. The
// per-sequence ids are deliberately part of the digest: reports (and
// the cluster gather) key alignments by id, so a bank whose sequences
// were renamed must not be served another bank's cached index — only
// the bank-level name is excluded, since nothing downstream reads it.
func BankFingerprint(b *bank.Bank) string {
	h := sha256.New()
	var lenBuf [8]byte
	writeChunk := func(p []byte) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(b.Len()))
	h.Write(lenBuf[:])
	for i := 0; i < b.Len(); i++ {
		writeChunk([]byte(b.ID(i)))
		writeChunk(b.Seq(i))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ModelIdentity names a seed model for cache keying: its name, width
// and key space. Two distinct models must not share all three. Every
// fingerprint (here and in the comparison service's genome keys) uses
// this one encoding so the schemes cannot drift apart.
func ModelIdentity(model seed.Model, n int) string {
	return fmt.Sprintf("%s:w%d:k%d/n%d", model.Name(), model.Width(), model.KeySpace(), n)
}

// Fingerprint identifies one index build: the bank contents combined
// with the seed model identity (ModelIdentity) and the neighbourhood
// extension N. It is the cache key the comparison service uses to
// share prebuilt subject indexes across requests.
func Fingerprint(b *bank.Bank, model seed.Model, n int) string {
	return BankFingerprint(b) + "/" + ModelIdentity(model, n)
}

// Fingerprint returns the index's own build fingerprint (the same
// value Fingerprint reports for its bank, model and N). For an index
// loaded from a seeddb file the decoder has already computed and
// verified it, so this is a field read, not a hash pass.
func (ix *Index) Fingerprint() string {
	if ix.fingerprint != "" {
		return ix.fingerprint
	}
	return Fingerprint(ix.bank, ix.model, ix.n)
}
