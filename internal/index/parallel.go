package index

import (
	"runtime"
	"sync"

	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

// BuildParallel builds the same index as Build using the given number
// of workers (0 = GOMAXPROCS). The result is bit-identical to Build:
// sequences are partitioned into contiguous ranges, each worker counts
// its range into a private histogram, an exclusive scan over
// (key, worker) assigns every worker a disjoint cursor region inside
// each bucket, and the fill pass proceeds without synchronisation.
func BuildParallel(b *bank.Bank, model seed.Model, n, workers int) (*Index, error) {
	if n < 0 {
		return nil, errNegativeN(n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > b.Len() {
		workers = b.Len()
	}
	if workers <= 1 {
		return Build(b, model, n)
	}
	w := model.Width()
	ix := &Index{
		bank:   b,
		model:  model,
		n:      n,
		subLen: w + 2*n,
	}
	space := model.KeySpace()

	// Contiguous sequence ranges per worker.
	ranges := make([][2]int, workers)
	for i := range ranges {
		ranges[i] = [2]int{b.Len() * i / workers, b.Len() * (i + 1) / workers}
	}

	// Pass 1: per-worker histograms.
	counts := make([][]uint32, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wi := range ranges {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			local := make([]uint32, space)
			for s := ranges[wi][0]; s < ranges[wi][1]; s++ {
				seq := b.Seq(s)
				for off := 0; off+w <= len(seq); off++ {
					if key, ok := model.Key(seq[off : off+w]); ok {
						if int(key) >= space {
							errs[wi] = errKeyRange(key, space)
							return
						}
						local[key]++
					}
				}
			}
			counts[wi] = local
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Exclusive scan over (key, worker): cursor[wi][k] is where worker
	// wi starts writing inside bucket k; bucketStart is the per-key scan.
	ix.bucketStart = make([]uint32, space+1)
	cursors := make([][]uint32, workers)
	for wi := range cursors {
		cursors[wi] = make([]uint32, space)
	}
	var running uint32
	for k := 0; k < space; k++ {
		ix.bucketStart[k] = running
		for wi := 0; wi < workers; wi++ {
			cursors[wi][k] = running
			running += counts[wi][k]
		}
	}
	ix.bucketStart[space] = running
	total := running
	ix.entries = make([]Entry, total)
	ix.neighborhoods = make([]byte, int(total)*ix.subLen)

	// Pass 2: parallel fill into disjoint regions.
	for wi := range ranges {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			cur := cursors[wi]
			for s := ranges[wi][0]; s < ranges[wi][1]; s++ {
				seq := b.Seq(s)
				for off := 0; off+w <= len(seq); off++ {
					key, ok := model.Key(seq[off : off+w])
					if !ok {
						continue
					}
					i := cur[key]
					cur[key]++
					ix.entries[i] = Entry{Seq: uint32(s), Off: uint32(off)}
					extractWindow(ix.neighborhoods[int(i)*ix.subLen:(int(i)+1)*ix.subLen], seq, off-n)
				}
			}
		}(wi)
	}
	wg.Wait()
	return ix, nil
}
