//go:build !unix

package index

import "os"

// mmapFile reads path into memory on platforms without a wired-up
// mmap: the loaded index behaves identically (sections alias the one
// buffer), it just doesn't share pages across processes.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return alignedImage(data), func() error { return nil }, nil
}
