package index

import (
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

func TestBuildParallelBitIdentical(t *testing.T) {
	rng := bank.NewRNG(71)
	b := bank.New("p")
	for i := 0; i < 17; i++ { // odd count: uneven worker ranges
		b.Add(string(rune('a'+i)), bank.RandomProtein(rng, 80+i*7))
	}
	model := seed.Default()
	ref, err := Build(b, model, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5, 8, 32} {
		par, err := BuildParallel(b, model, 6, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.NumEntries() != ref.NumEntries() {
			t.Fatalf("workers=%d: %d entries, want %d",
				workers, par.NumEntries(), ref.NumEntries())
		}
		for i := range ref.entries {
			if par.entries[i] != ref.entries[i] {
				t.Fatalf("workers=%d: entry %d = %+v, want %+v",
					workers, i, par.entries[i], ref.entries[i])
			}
		}
		if string(par.neighborhoods) != string(ref.neighborhoods) {
			t.Fatalf("workers=%d: neighbourhood storage differs", workers)
		}
		for k := 0; k <= model.KeySpace(); k++ {
			if par.bucketStart[k] != ref.bucketStart[k] {
				t.Fatalf("workers=%d: bucketStart[%d] differs", workers, k)
			}
		}
	}
}

func TestBuildParallelEmptyBank(t *testing.T) {
	b := bank.New("empty")
	ix, err := BuildParallel(b, seed.Exact(3), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumEntries() != 0 {
		t.Error("entries from empty bank")
	}
}

func TestBuildParallelRejectsNegativeN(t *testing.T) {
	b := bank.New("b")
	if _, err := BuildParallel(b, seed.Exact(2), -1, 2); err == nil {
		t.Error("negative N accepted")
	}
}
