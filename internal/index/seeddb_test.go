package index

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"unsafe"

	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

func testBank(t *testing.T) *bank.Bank {
	t.Helper()
	return bank.GenerateProteins(bank.ProteinConfig{N: 24, MeanLen: 90, Seed: 41})
}

func buildTestIndex(t *testing.T, b *bank.Bank) *Index {
	t.Helper()
	ix, err := Build(b, seed.Default(), 14)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func writeTestDB(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.seeddb")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSeedDBRoundTrip pins that a written-and-reloaded index is
// bit-identical to the built one: every array, the bank, the model
// identity and the fingerprint stamp.
func TestSeedDBRoundTrip(t *testing.T) {
	b := testBank(t)
	ix := buildTestIndex(t, b)
	path := writeTestDB(t, ix)

	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()

	if !reflect.DeepEqual(got.bucketStart, ix.bucketStart) {
		t.Error("bucketStart differs after round trip")
	}
	if !reflect.DeepEqual(got.entries, ix.entries) {
		t.Error("entries differ after round trip")
	}
	if !bytes.Equal(got.neighborhoods, ix.neighborhoods) {
		t.Error("neighborhoods differ after round trip")
	}
	if got.N() != ix.N() || got.SubLen() != ix.SubLen() || got.NumEntries() != ix.NumEntries() {
		t.Errorf("geometry differs: N %d/%d SubLen %d/%d entries %d/%d",
			got.N(), ix.N(), got.SubLen(), ix.SubLen(), got.NumEntries(), ix.NumEntries())
	}
	if ModelIdentity(got.Model(), got.N()) != ModelIdentity(ix.Model(), ix.N()) {
		t.Errorf("model identity %q != %q", ModelIdentity(got.Model(), got.N()), ModelIdentity(ix.Model(), ix.N()))
	}
	if got.Fingerprint() != ix.Fingerprint() {
		t.Errorf("fingerprint %q != %q", got.Fingerprint(), ix.Fingerprint())
	}
	gb := got.Bank()
	if gb.Name() != b.Name() || gb.Len() != b.Len() || gb.TotalResidues() != b.TotalResidues() {
		t.Fatalf("bank shape differs: %q %d/%d", gb.Name(), gb.Len(), gb.TotalResidues())
	}
	for i := 0; i < b.Len(); i++ {
		if gb.ID(i) != b.ID(i) || !bytes.Equal(gb.Seq(i), b.Seq(i)) {
			t.Fatalf("bank record %d differs", i)
		}
	}
	// A reconstructed model must key windows identically.
	seq := b.Seq(0)
	w := ix.Model().Width()
	for off := 0; off+w <= len(seq) && off < 50; off++ {
		k0, ok0 := ix.Model().Key(seq[off : off+w])
		k1, ok1 := got.Model().Key(seq[off : off+w])
		if k0 != k1 || ok0 != ok1 {
			t.Fatalf("model keys diverge at offset %d: (%d,%v) vs (%d,%v)", off, k0, ok0, k1, ok1)
		}
	}
}

// TestSeedDBLoadAliasesImage pins the zero-copy contract: the loaded
// index's neighborhood array and bank residues point into the file
// image, not at a second materialized copy.
func TestSeedDBLoadAliasesImage(t *testing.T) {
	ix := buildTestIndex(t, testBank(t))
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := alignedImage(buf.Bytes())
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	lo := uintptr(unsafe.Pointer(&data[0]))
	hi := lo + uintptr(len(data))
	within := func(p *byte) bool {
		u := uintptr(unsafe.Pointer(p))
		return u >= lo && u < hi
	}
	if !within(&got.neighborhoods[0]) {
		t.Error("neighborhoods were copied out of the image")
	}
	if !within(&got.Bank().Seq(0)[0]) {
		t.Error("bank residues were copied out of the image")
	}
}

func TestSeedDBWriteToReportsLength(t *testing.T) {
	ix := buildTestIndex(t, testBank(t))
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
}

func TestSeedDBInspect(t *testing.T) {
	b := testBank(t)
	ix := buildTestIndex(t, b)
	path := writeTestDB(t, ix)
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != ix.Fingerprint() {
		t.Errorf("Inspect fingerprint %q != %q", info.Fingerprint, ix.Fingerprint())
	}
	if info.Sequences != b.Len() || info.Residues != int64(b.TotalResidues()) {
		t.Errorf("Inspect bank shape %d/%d, want %d/%d", info.Sequences, info.Residues, b.Len(), b.TotalResidues())
	}
	if info.Entries != int64(ix.NumEntries()) || info.KeySpace != ix.Model().KeySpace() {
		t.Errorf("Inspect index shape %d/%d, want %d/%d", info.Entries, info.KeySpace, ix.NumEntries(), ix.Model().KeySpace())
	}
	if info.N != ix.N() || info.Width != ix.Model().Width() || info.SubLen != ix.SubLen() {
		t.Errorf("Inspect geometry N=%d W=%d SubLen=%d", info.N, info.Width, info.SubLen)
	}
}

func TestSeedDBVerify(t *testing.T) {
	ix := buildTestIndex(t, testBank(t))
	path := writeTestDB(t, ix)
	if err := Verify(path); err != nil {
		t.Fatalf("Verify of a fresh DB: %v", err)
	}
}

// TestSeedDBCorruptionDetected flips one byte in every region of the
// file in turn; each corruption must be reported by Verify, and
// corruption outside the lazily-checked big arrays must already fail
// Open.
func TestSeedDBCorruptionDetected(t *testing.T) {
	ix := buildTestIndex(t, testBank(t))
	path := writeTestDB(t, ix)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// One probe byte per region: preamble, meta, and each section.
	probes := []int{9, dbPreambleLen + 4, len(orig) / 3, len(orig) / 2, len(orig) - 3}
	for _, pos := range probes {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0xFF
		bad := filepath.Join(t.TempDir(), "bad.seeddb")
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := Verify(bad); err == nil {
			t.Errorf("Verify accepted a file with byte %d flipped", pos)
		}
	}
}

func TestSeedDBOpenErrors(t *testing.T) {
	ix := buildTestIndex(t, testBank(t))
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "preamble"},
		{"truncated preamble", full[:10], "preamble"},
		{"truncated meta", full[:dbPreambleLen+8], "meta"},
		{"bad magic", append([]byte("NOTSEEDB"), full[8:]...), "magic"},
		{"truncated body", full[:len(full)-64], ""},
	}
	// Wrong version.
	wv := append([]byte(nil), full...)
	wv[8] = 99
	cases = append(cases, struct {
		name string
		data []byte
		want string
	}{"wrong version", wv, "version"})
	// Foreign byte order.
	bo := append([]byte(nil), full...)
	bo[12], bo[13], bo[14], bo[15] = bo[15], bo[14], bo[13], bo[12]
	cases = append(cases, struct {
		name string
		data []byte
		want string
	}{"byte order", bo, "byte-order"})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(tc.data)
			if err == nil {
				t.Fatalf("Load accepted %s input", tc.name)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSeedDBFingerprintMismatch rewrites a residue without updating
// the stamp: the load-time fingerprint recompute must reject it even
// though the meta block itself is intact.
func TestSeedDBFingerprintMismatch(t *testing.T) {
	ix := buildTestIndex(t, testBank(t))
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The residues section is the file tail; flip its last byte.
	data[len(data)-1] ^= 0x01
	if _, err := Load(data); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("Load of a bank-corrupted DB: %v, want fingerprint mismatch", err)
	}
}

// TestSeedDBCloseIdempotent pins Close semantics: built indexes no-op,
// loaded ones release once.
func TestSeedDBCloseIdempotent(t *testing.T) {
	ix := buildTestIndex(t, testBank(t))
	if err := ix.Close(); err != nil {
		t.Errorf("Close of a built index: %v", err)
	}
	got, err := Open(writeTestDB(t, ix))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Close(); err != nil {
		t.Errorf("first Close: %v", err)
	}
	if err := got.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestSeedDBParallelBuildRoundTrip pins that the parallel builder's
// output survives the disk round trip identically too (it is
// bit-identical to Build by contract).
func TestSeedDBParallelBuildRoundTrip(t *testing.T) {
	b := testBank(t)
	ix, err := BuildParallel(b, seed.Default(), 14, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(writeTestDB(t, ix))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if !reflect.DeepEqual(got.entries, ix.entries) || !bytes.Equal(got.neighborhoods, ix.neighborhoods) {
		t.Error("parallel-built index differs after round trip")
	}
}
