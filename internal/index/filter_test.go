package index

import (
	"bytes"
	"fmt"
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

func filterTestIndex(t *testing.T) (*bank.Bank, *Index) {
	t.Helper()
	rng := bank.NewRNG(3)
	b := bank.New("s")
	for i := 0; i < 25; i++ {
		b.Add(fmt.Sprintf("s%d", i), bank.RandomProtein(rng, 120))
	}
	ix, err := Build(b, seed.Default(), 14)
	if err != nil {
		t.Fatal(err)
	}
	return b, ix
}

// TestFilterSeqsSubset checks the core contract: every bucket of the
// filtered index is the in-order subsequence of the original bucket
// whose entries' sequences survived, with the neighbourhood rows
// carried along, and the metadata (bank, model, N) untouched.
func TestFilterSeqsSubset(t *testing.T) {
	b, ix := filterTestIndex(t)
	keep := []uint32{1, 4, 7, 7, 20} // duplicate is documented as harmless
	in := map[uint32]bool{1: true, 4: true, 7: true, 20: true}
	f := ix.FilterSeqs(keep)

	if f.Bank() != b || f.Model() != ix.Model() || f.N() != ix.N() || f.SubLen() != ix.SubLen() {
		t.Fatal("filtered index does not preserve bank/model/N metadata")
	}
	wantTotal := 0
	for k := 0; k < ix.Model().KeySpace(); k++ {
		orig, origNb := ix.Bucket(uint32(k))
		got, gotNb := f.Bucket(uint32(k))
		sub := ix.SubLen()
		j := 0
		for i, e := range orig {
			if !in[e.Seq] {
				continue
			}
			if j >= len(got) || got[j] != e {
				t.Fatalf("key %d: filtered bucket %v missing entry %d %v", k, got, i, e)
			}
			if !bytes.Equal(gotNb[j*sub:(j+1)*sub], origNb[i*sub:(i+1)*sub]) {
				t.Fatalf("key %d entry %d: neighbourhood row not carried over", k, i)
			}
			j++
			wantTotal++
		}
		if j != len(got) {
			t.Fatalf("key %d: filtered bucket has %d extra entries", k, len(got)-j)
		}
	}
	if f.NumEntries() != wantTotal {
		t.Fatalf("NumEntries %d, want %d", f.NumEntries(), wantTotal)
	}
}

// TestFilterSeqsAll pins that keeping every sequence reproduces the
// original index entry-for-entry.
func TestFilterSeqsAll(t *testing.T) {
	b, ix := filterTestIndex(t)
	keep := make([]uint32, b.Len())
	for i := range keep {
		keep[i] = uint32(i)
	}
	f := ix.FilterSeqs(keep)
	if f.NumEntries() != ix.NumEntries() {
		t.Fatalf("NumEntries %d, want %d", f.NumEntries(), ix.NumEntries())
	}
	for k := 0; k < ix.Model().KeySpace(); k++ {
		orig, origNb := ix.Bucket(uint32(k))
		got, gotNb := f.Bucket(uint32(k))
		if len(orig) != len(got) {
			t.Fatalf("key %d: %d entries, want %d", k, len(got), len(orig))
		}
		for i := range orig {
			if orig[i] != got[i] {
				t.Fatalf("key %d entry %d: %v != %v", k, i, got[i], orig[i])
			}
		}
		if !bytes.Equal(origNb, gotNb) {
			t.Fatalf("key %d: neighbourhoods differ", k)
		}
	}
}

// TestFilterSeqsNone checks the empty-survivor edge: a valid index
// with zero entries everywhere.
func TestFilterSeqsNone(t *testing.T) {
	_, ix := filterTestIndex(t)
	f := ix.FilterSeqs(nil)
	if f.NumEntries() != 0 {
		t.Fatalf("NumEntries %d, want 0", f.NumEntries())
	}
	for k := 0; k < ix.Model().KeySpace(); k++ {
		if entries, _ := f.Bucket(uint32(k)); len(entries) != 0 {
			t.Fatalf("key %d: %d entries in empty filter", k, len(entries))
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close on filtered index: %v", err)
	}
}
