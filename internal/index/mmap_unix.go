//go:build unix

package index

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the mapping plus its
// release function. The mapping is shared, so every process opening
// the same seeddb file shares one set of physical pages — the paper's
// step-1 product becomes a shared OS resource instead of per-process
// heap. An empty file maps to an empty (heap) slice, since mmap
// rejects zero-length mappings; such a file fails preamble validation
// anyway.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file of %d bytes does not fit the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
