// Package index implements step 1 of the paper's algorithm: indexing a
// protein bank by seed key. For a seed of width W it builds a table
// with one entry per key; entry k points at the index list ILk of
// sequence offsets where a word with key k occurs (§2.1). The layout is
// CSR-like (a flat entry array plus per-key offsets) so buckets are
// contiguous and cache-friendly, and the W+2N neighbourhood windows the
// ungapped-extension stage consumes are pre-extracted next to their
// entries, mirroring the data flow into the PSC operator.
package index

import (
	"fmt"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/seed"
)

// Entry locates one seed occurrence.
type Entry struct {
	Seq uint32 // sequence number within the bank
	Off uint32 // residue offset of the seed's first position
}

// Index is the product of step 1 for one bank.
type Index struct {
	bank        *bank.Bank
	model       seed.Model
	n           int // neighbourhood extension on each side
	subLen      int // W + 2N
	bucketStart []uint32
	entries     []Entry
	// neighborhoods stores, for entry i, the window
	// [off-N, off+W+N) padded with X at sequence boundaries, at
	// neighborhoods[i*subLen : (i+1)*subLen].
	neighborhoods []byte
	// close releases the storage backing a loaded index (the seeddb
	// file mapping); nil for built indexes. See Open and Close.
	close func() error
	// fingerprint caches the build fingerprint for loaded indexes —
	// the seeddb decoder has already recomputed and verified it
	// against the file stamp, so Fingerprint need not hash the bank a
	// second time. Empty for built indexes (computed on demand).
	fingerprint string
}

// Build indexes every W-wide window of every sequence in b. Windows
// containing ambiguous residues are skipped (they are not indexable
// under the seed model). n is the neighbourhood extension N: the
// ungapped stage scores windows of length W+2N centred on the seed.
func Build(b *bank.Bank, model seed.Model, n int) (*Index, error) {
	if n < 0 {
		return nil, errNegativeN(n)
	}
	w := model.Width()
	ix := &Index{
		bank:   b,
		model:  model,
		n:      n,
		subLen: w + 2*n,
	}
	space := model.KeySpace()
	counts := make([]uint32, space+1)

	// Pass 1: bucket sizes.
	for s := 0; s < b.Len(); s++ {
		seq := b.Seq(s)
		for off := 0; off+w <= len(seq); off++ {
			if key, ok := model.Key(seq[off : off+w]); ok {
				if int(key) >= space {
					return nil, errKeyRange(key, space)
				}
				counts[key+1]++
			}
		}
	}
	// Prefix sums: counts becomes bucketStart.
	for k := 1; k <= space; k++ {
		counts[k] += counts[k-1]
	}
	total := counts[space]
	ix.bucketStart = counts
	ix.entries = make([]Entry, total)
	ix.neighborhoods = make([]byte, int(total)*ix.subLen)

	// Pass 2: fill buckets using a moving cursor per key.
	cursor := make([]uint32, space)
	copy(cursor, ix.bucketStart[:space])
	for s := 0; s < b.Len(); s++ {
		seq := b.Seq(s)
		for off := 0; off+w <= len(seq); off++ {
			key, ok := model.Key(seq[off : off+w])
			if !ok {
				continue
			}
			i := cursor[key]
			cursor[key]++
			ix.entries[i] = Entry{Seq: uint32(s), Off: uint32(off)}
			extractWindow(ix.neighborhoods[int(i)*ix.subLen:(int(i)+1)*ix.subLen], seq, off-n)
		}
	}
	return ix, nil
}

func errNegativeN(n int) error {
	return fmt.Errorf("index: negative neighbourhood %d", n)
}

// errKeyRange reports a seed model returning a key outside its
// declared KeySpace — a model bug that would otherwise corrupt the
// bucket table (or panic mid-build).
func errKeyRange(key uint32, space int) error {
	return fmt.Errorf("index: seed model returned key %d outside its key space %d", key, space)
}

// extractWindow copies seq[start : start+len(dst)] into dst, padding
// positions outside the sequence with X. X scores like an unknown
// residue, matching BLAST's handling of sequence boundaries.
func extractWindow(dst, seq []byte, start int) {
	for i := range dst {
		p := start + i
		if p < 0 || p >= len(seq) {
			dst[i] = alphabet.Xaa
		} else {
			dst[i] = seq[p]
		}
	}
}

// Bank returns the indexed bank.
func (ix *Index) Bank() *bank.Bank { return ix.bank }

// Model returns the seed model the index was built with.
func (ix *Index) Model() seed.Model { return ix.model }

// N returns the neighbourhood extension.
func (ix *Index) N() int { return ix.n }

// SubLen returns the neighbourhood window length W + 2N.
func (ix *Index) SubLen() int { return ix.subLen }

// NumEntries returns the total number of indexed seed occurrences.
func (ix *Index) NumEntries() int { return len(ix.entries) }

// Bucket returns the index list for key k (entries and their
// neighbourhood block, len(entries)*SubLen bytes). Both slices alias
// index storage and must not be modified.
func (ix *Index) Bucket(k uint32) ([]Entry, []byte) {
	lo, hi := ix.bucketStart[k], ix.bucketStart[k+1]
	return ix.entries[lo:hi], ix.neighborhoods[int(lo)*ix.subLen : int(hi)*ix.subLen]
}

// BucketLen returns the number of entries for key k without touching
// the entry storage.
func (ix *Index) BucketLen(k uint32) int {
	return int(ix.bucketStart[k+1] - ix.bucketStart[k])
}

// Stats summarises index shape; used by reports and load-balance tests.
type Stats struct {
	Keys         int
	UsedKeys     int
	Entries      int
	MaxBucket    int
	MeanOccupied float64 // mean entries per non-empty bucket
}

// Stats computes summary statistics over all buckets.
func (ix *Index) Stats() Stats {
	st := Stats{Keys: ix.model.KeySpace(), Entries: len(ix.entries)}
	for k := 0; k < st.Keys; k++ {
		n := ix.BucketLen(uint32(k))
		if n == 0 {
			continue
		}
		st.UsedKeys++
		if n > st.MaxBucket {
			st.MaxBucket = n
		}
	}
	if st.UsedKeys > 0 {
		st.MeanOccupied = float64(st.Entries) / float64(st.UsedKeys)
	}
	return st
}

// Neighborhood returns the stored window of entry index ei (aliasing
// internal storage).
func (ix *Index) Neighborhood(ei int) []byte {
	return ix.neighborhoods[ei*ix.subLen : (ei+1)*ix.subLen]
}

// AddBucketCounts adds this index's per-key bucket lengths into dst,
// which must have KeySpace elements. The streaming engine builds one
// index per query shard and merges their histograms with this to
// recover the whole-bank statistics a monolithic build would report.
func (ix *Index) AddBucketCounts(dst []uint32) {
	for k := range dst {
		dst[k] += ix.bucketStart[k+1] - ix.bucketStart[k]
	}
}

// StatsFromBucketCounts computes the same summary as (*Index).Stats
// from a per-key bucket-length histogram (e.g. one merged with
// AddBucketCounts across shard indexes).
func StatsFromBucketCounts(counts []uint32) Stats {
	st := Stats{Keys: len(counts)}
	for _, n := range counts {
		if n == 0 {
			continue
		}
		st.UsedKeys++
		st.Entries += int(n)
		if int(n) > st.MaxBucket {
			st.MaxBucket = int(n)
		}
	}
	if st.UsedKeys > 0 {
		st.MeanOccupied = float64(st.Entries) / float64(st.UsedKeys)
	}
	return st
}
