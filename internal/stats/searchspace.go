package stats

import "fmt"

// SearchSpace pins the database side of the Karlin-Altschul search
// space explicitly, instead of letting each stage infer it from
// whatever subject bank it happens to hold. E-values scale with the
// product m·n of effective query and database lengths, so two runs
// that score the same alignment against differently-sized views of the
// same database disagree on significance. That matters the moment a
// bank is partitioned into volumes: each volume worker sees only its
// slice of the database, but the E-value a hit reports (and the
// E ≤ MaxEValue cut it must survive) has to be computed against the
// full bank for the merged result to equal an unpartitioned run.
//
// The zero value means "derive from the data at hand" (the historical
// behaviour: n = subject bank total residues).
type SearchSpace struct {
	// DBLen is the database length n in residues — for a partitioned
	// search, the total residues of the full bank, not the volume.
	DBLen int
	// DBSeqs is the number of database sequences. The current E-value
	// formula does not consume it, but it travels with DBLen so a
	// coordinator can hand workers the complete database geometry (and
	// so future per-sequence corrections, e.g. BLAST's database-length
	// adjustment variants, need no wire change).
	DBSeqs int
}

// IsZero reports whether the search space is unset, meaning callers
// should fall back to deriving n from the subject data they hold.
func (s SearchSpace) IsZero() bool { return s == SearchSpace{} }

// Validate rejects geometries that cannot describe a database.
func (s SearchSpace) Validate() error {
	if s.DBLen < 0 || s.DBSeqs < 0 {
		return fmt.Errorf("stats: negative search space (dbLen=%d dbSeqs=%d)", s.DBLen, s.DBSeqs)
	}
	if s.DBLen == 0 && s.DBSeqs > 0 {
		return fmt.Errorf("stats: search space with %d sequences but zero residues", s.DBSeqs)
	}
	return nil
}

// String renders the geometry for logs and error messages.
func (s SearchSpace) String() string {
	if s.IsZero() {
		return "search-space(derived)"
	}
	return fmt.Sprintf("search-space(n=%d aa, %d seqs)", s.DBLen, s.DBSeqs)
}

// EValueIn returns the expected number of chance alignments scoring at
// least raw for a query of length m against this database geometry.
// It is EValue with the database side fixed by the SearchSpace.
func (p Params) EValueIn(raw, m int, sp SearchSpace) float64 {
	return p.EValue(raw, m, sp.DBLen)
}
