package stats

import (
	"math"
	"testing"

	"seedblast/internal/matrix"
)

func calibrated(t *testing.T) Params {
	t.Helper()
	p, err := Calibrate(matrix.BLOSUM62, matrix.RobinsonFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLambdaBLOSUM62(t *testing.T) {
	// NCBI reports ungapped λ ≈ 0.3176 for BLOSUM62 with its standard
	// background; under Robinson frequencies the solution is close.
	p := calibrated(t)
	if p.Lambda < 0.25 || p.Lambda > 0.40 {
		t.Errorf("lambda = %f, want ≈ 0.32", p.Lambda)
	}
}

func TestLambdaSolvesMGF(t *testing.T) {
	p := calibrated(t)
	d := newScoreDist(matrix.BLOSUM62, matrix.RobinsonFrequencies())
	var sum float64
	for i, q := range d.prob {
		sum += q * math.Exp(p.Lambda*float64(d.low+i))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σp·e^{λs} = %.12f, want 1", sum)
	}
}

func TestEntropyBLOSUM62(t *testing.T) {
	// NCBI reports H ≈ 0.40 nats for ungapped BLOSUM62.
	p := calibrated(t)
	if p.H < 0.25 || p.H > 0.70 {
		t.Errorf("H = %f, want ≈ 0.4", p.H)
	}
}

func TestKBLOSUM62(t *testing.T) {
	// NCBI reports K ≈ 0.134 for ungapped BLOSUM62; the series formula
	// should land in the same region.
	p := calibrated(t)
	if p.K < 0.02 || p.K > 0.5 {
		t.Errorf("K = %f, want ≈ 0.13", p.K)
	}
}

func TestCalibrateMatchMismatch(t *testing.T) {
	// For match/mismatch scoring the parameters are well conditioned and
	// λ must satisfy the MGF identity.
	m := matrix.NewMatchMismatch(1, -1)
	p, err := Calibrate(m, matrix.RobinsonFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	if p.Lambda <= 0 || p.K <= 0 || p.H <= 0 {
		t.Errorf("parameters must be positive: %+v", p)
	}
}

func TestCalibrateRejectsPositiveExpectation(t *testing.T) {
	// An all-positive matrix has no λ.
	m := matrix.NewMatchMismatch(5, 1)
	if _, err := Calibrate(m, matrix.RobinsonFrequencies()); err == nil {
		t.Error("Calibrate accepted a positive-expectation matrix")
	}
}

func TestBitScoreMonotone(t *testing.T) {
	p := calibrated(t)
	if p.BitScore(50) <= p.BitScore(40) {
		t.Error("bit score must increase with raw score")
	}
	// λ·s − ln K in bits.
	want := (p.Lambda*100 - math.Log(p.K)) / math.Ln2
	if math.Abs(p.BitScore(100)-want) > 1e-12 {
		t.Error("BitScore formula mismatch")
	}
}

func TestEValueBehaviour(t *testing.T) {
	p := calibrated(t)
	const m, n = 300, 1_000_000
	if p.EValue(100, m, n) <= p.EValue(120, m, n) {
		t.Error("E-value must decrease with score")
	}
	if p.EValue(50, m, n) < p.EValue(50, m, n/10)*8 {
		t.Error("E-value must grow roughly linearly with search space")
	}
}

func TestRawScoreForEValueInverse(t *testing.T) {
	p := calibrated(t)
	const m, n = 300, 1_000_000
	for _, target := range []float64{10, 1e-3, 1e-10} {
		s := p.RawScoreForEValue(target, m, n)
		if e := p.EValue(s, m, n); e > target*1.0001 {
			t.Errorf("score %d for target %g has E=%g", s, target, e)
		}
		if e := p.EValue(s-1, m, n); e <= target {
			t.Errorf("score %d already meets target %g; cutoff not minimal", s-1, target)
		}
	}
}

func TestEffectiveLengthsShrinkButStayPositive(t *testing.T) {
	p := calibrated(t)
	em, en := p.EffectiveLengths(300, 1_000_000)
	if em >= 300 || en >= 1_000_000 {
		t.Errorf("effective lengths (%d,%d) should be shorter", em, en)
	}
	if em <= 0 || en <= 0 {
		t.Errorf("effective lengths must stay positive: (%d,%d)", em, en)
	}
	// Tiny sequences must not collapse to zero.
	em, en = p.EffectiveLengths(5, 7)
	if em <= 0 || en <= 0 {
		t.Errorf("tiny effective lengths (%d,%d)", em, en)
	}
}

func TestScoreDistSpan(t *testing.T) {
	d := newScoreDist(matrix.BLOSUM62, matrix.RobinsonFrequencies())
	if d.span() != 1 {
		t.Errorf("BLOSUM62 span = %d, want 1", d.span())
	}
	// A matrix with only even scores has span 2.
	m := matrix.NewMatchMismatch(2, -2)
	d2 := newScoreDist(m, matrix.RobinsonFrequencies())
	if d2.span() != 2 {
		t.Errorf("even matrix span = %d, want 2", d2.span())
	}
}

func TestScoreDistNormalised(t *testing.T) {
	d := newScoreDist(matrix.BLOSUM62, matrix.RobinsonFrequencies())
	var sum float64
	for _, p := range d.prob {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("distribution sums to %.15f", sum)
	}
	if d.low != -4 || d.high != 11 {
		t.Errorf("support [%d,%d], want [-4,11]", d.low, d.high)
	}
}

func TestGappedBLOSUM62Published(t *testing.T) {
	g := GappedBLOSUM62
	if g.Lambda != 0.267 || g.K != 0.041 {
		t.Errorf("gapped params changed: %+v", g)
	}
}
