package stats

import (
	"testing"

	"seedblast/internal/matrix"
)

func TestEstimateGappedBLOSUM62(t *testing.T) {
	// The island estimate for BLOSUM62 11/1 must land near NCBI's
	// simulated constants λ=0.267, K=0.041. The estimator is statistical;
	// the fixed seed makes the run deterministic and the bounds generous.
	p, err := EstimateGapped(IslandConfig{
		Matrix:  matrix.BLOSUM62,
		GapOpen: 11,
		GapExt:  1,
		SeqLen:  300,
		Pairs:   40,
		Cutoff:  22,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Lambda < 0.20 || p.Lambda > 0.34 {
		t.Errorf("gapped λ̂ = %.4f, want ≈ 0.267", p.Lambda)
	}
	if p.K < 0.004 || p.K > 0.4 {
		t.Errorf("gapped K̂ = %.4f, want ≈ 0.041", p.K)
	}
	if p.H <= 0 {
		t.Errorf("H = %f", p.H)
	}
	t.Logf("island estimate: λ=%.4f K=%.4f H=%.4f (published: 0.267 / 0.041 / 0.14)",
		p.Lambda, p.K, p.H)
}

func TestEstimateGappedDeterministic(t *testing.T) {
	cfg := IslandConfig{
		Matrix: matrix.BLOSUM62, GapOpen: 11, GapExt: 1,
		SeqLen: 150, Pairs: 15, Cutoff: 20, Seed: 3,
	}
	a, err := EstimateGapped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateGapped(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different estimates")
	}
}

func TestEstimateGappedCheaperGapsLowerLambda(t *testing.T) {
	// Cheaper gaps make high scores easier, so λ must drop.
	expensive, err := EstimateGapped(IslandConfig{
		Matrix: matrix.BLOSUM62, GapOpen: 11, GapExt: 1,
		SeqLen: 250, Pairs: 25, Cutoff: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := EstimateGapped(IslandConfig{
		Matrix: matrix.BLOSUM62, GapOpen: 6, GapExt: 1,
		SeqLen: 250, Pairs: 25, Cutoff: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Lambda >= expensive.Lambda {
		t.Errorf("cheap-gap λ %.4f should be below expensive-gap λ %.4f",
			cheap.Lambda, expensive.Lambda)
	}
}

func TestEstimateGappedValidation(t *testing.T) {
	if _, err := EstimateGapped(IslandConfig{GapOpen: 11, GapExt: 1}); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := EstimateGapped(IslandConfig{Matrix: matrix.BLOSUM62}); err == nil {
		t.Error("zero gap costs accepted")
	}
	// Impossible cutoff → too few islands.
	if _, err := EstimateGapped(IslandConfig{
		Matrix: matrix.BLOSUM62, GapOpen: 11, GapExt: 1,
		SeqLen: 50, Pairs: 2, Cutoff: 500, Seed: 1,
	}); err == nil {
		t.Error("hopeless cutoff accepted")
	}
}

func TestIslandPeaksIdenticalSequences(t *testing.T) {
	// Two identical sequences have one dominant island whose peak is the
	// full self-alignment score.
	cfg := IslandConfig{Matrix: matrix.BLOSUM62, GapOpen: 11, GapExt: 1}
	rng := makeCDF(matrix.RobinsonFrequencies())
	_ = rng
	seq := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9} // ARNDCQEGHI
	peaks := islandPeaks(seq, seq, cfg)
	self := 0
	for _, c := range seq {
		self += matrix.BLOSUM62.Score(c, c)
	}
	best := 0
	for _, p := range peaks {
		if p > best {
			best = p
		}
	}
	if best != self {
		t.Errorf("dominant island peak %d, want self score %d", best, self)
	}
}
