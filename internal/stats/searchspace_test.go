package stats

import "testing"

func TestSearchSpaceZeroAndValidate(t *testing.T) {
	var z SearchSpace
	if !z.IsZero() {
		t.Error("zero SearchSpace should report IsZero")
	}
	if err := z.Validate(); err != nil {
		t.Errorf("zero SearchSpace should validate: %v", err)
	}
	ok := SearchSpace{DBLen: 1000, DBSeqs: 4}
	if ok.IsZero() {
		t.Error("non-zero SearchSpace reported IsZero")
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid SearchSpace rejected: %v", err)
	}
	for _, bad := range []SearchSpace{
		{DBLen: -1},
		{DBSeqs: -2},
		{DBLen: 0, DBSeqs: 3},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("SearchSpace %+v should not validate", bad)
		}
	}
}

// TestEValueInMatchesEValue pins the core contract: fixing the search
// space explicitly is the same computation as passing n positionally,
// so a worker given the full-bank geometry reproduces the single-node
// E-value bit for bit.
func TestEValueInMatchesEValue(t *testing.T) {
	p := GappedBLOSUM62
	for _, tc := range []struct{ raw, m, n int }{
		{60, 120, 5_000},
		{45, 300, 1_000_000},
		{80, 50, 250},
	} {
		got := p.EValueIn(tc.raw, tc.m, SearchSpace{DBLen: tc.n, DBSeqs: 7})
		want := p.EValue(tc.raw, tc.m, tc.n)
		if got != want {
			t.Errorf("EValueIn(%d,%d,n=%d) = %g, want %g", tc.raw, tc.m, tc.n, got, want)
		}
	}
}
