// Package stats implements Karlin-Altschul statistics for local
// alignment scores: the λ and H parameters solved numerically from the
// scoring system, the K constant from the 1990 series formula, bit
// scores and E-values. These drive the E ≤ 10⁻³ filter the paper uses
// when comparing against NCBI tblastn.
package stats

import (
	"errors"
	"math"

	"seedblast/internal/alphabet"
	"seedblast/internal/matrix"
)

// Params holds the Karlin-Altschul parameters of a scoring system.
type Params struct {
	Lambda float64 // scale of the score distribution (nats per score unit)
	K      float64 // search-space constant
	H      float64 // relative entropy per aligned pair (nats)
}

// GappedBLOSUM62 are NCBI's published empirical parameters for BLOSUM62
// with gap open 11 / gap extend 1 — gapped λ and K cannot be derived
// analytically, so BLAST (and this package) uses the simulated constants.
var GappedBLOSUM62 = Params{Lambda: 0.267, K: 0.041, H: 0.14}

// ErrNoSolution indicates the scoring system admits no positive λ —
// this happens when the expected score is non-negative or no positive
// score exists, making local alignment statistics undefined.
var ErrNoSolution = errors.New("stats: scoring system has no valid lambda (expected score must be negative and a positive score must exist)")

// scoreDist is the probability distribution of the score of one aligned
// residue pair under independent background frequencies.
type scoreDist struct {
	low, high int
	prob      []float64 // prob[s-low] = P(score == s)
}

func newScoreDist(m *matrix.Matrix, freqs *[alphabet.NumStandardAA]float64) *scoreDist {
	low, high := math.MaxInt32, math.MinInt32
	for a := 0; a < alphabet.NumStandardAA; a++ {
		for b := 0; b < alphabet.NumStandardAA; b++ {
			s := m.Score(byte(a), byte(b))
			if s < low {
				low = s
			}
			if s > high {
				high = s
			}
		}
	}
	d := &scoreDist{low: low, high: high, prob: make([]float64, high-low+1)}
	for a := 0; a < alphabet.NumStandardAA; a++ {
		for b := 0; b < alphabet.NumStandardAA; b++ {
			s := m.Score(byte(a), byte(b))
			d.prob[s-low] += freqs[a] * freqs[b]
		}
	}
	// Normalise to guard against frequency rounding.
	var sum float64
	for _, p := range d.prob {
		sum += p
	}
	for i := range d.prob {
		d.prob[i] /= sum
	}
	return d
}

func (d *scoreDist) mean() float64 {
	var e float64
	for i, p := range d.prob {
		e += p * float64(d.low+i)
	}
	return e
}

// span returns the lattice span δ: the greatest common divisor of all
// score offsets with non-zero probability.
func (d *scoreDist) span() int {
	g := 0
	for i, p := range d.prob {
		if p > 0 && d.low+i != 0 {
			g = gcd(g, abs(d.low+i))
		}
	}
	if g == 0 {
		g = 1
	}
	return g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Calibrate solves the ungapped Karlin-Altschul parameters for a
// substitution matrix under the given background frequencies.
func Calibrate(m *matrix.Matrix, freqs *[alphabet.NumStandardAA]float64) (Params, error) {
	d := newScoreDist(m, freqs)
	if d.mean() >= 0 || d.high <= 0 {
		return Params{}, ErrNoSolution
	}
	lambda := solveLambda(d)
	h := entropy(d, lambda)
	k := karlinK(d, lambda, h)
	return Params{Lambda: lambda, K: k, H: h}, nil
}

// solveLambda finds the unique positive root of Σ p(s)·e^{λs} = 1 by
// bisection followed by Newton refinement. The root exists and is unique
// because the moment generating function is convex, equals 1 at λ=0 with
// negative derivative (mean < 0), and diverges as λ→∞ (positive scores
// exist).
func solveLambda(d *scoreDist) float64 {
	phi := func(lambda float64) float64 {
		var sum float64
		for i, p := range d.prob {
			if p > 0 {
				sum += p * math.Exp(lambda*float64(d.low+i))
			}
		}
		return sum - 1
	}
	lo, hi := 0.0, 1.0
	for phi(hi) < 0 {
		hi *= 2
		if hi > 1e4 {
			break
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-14; i++ {
		mid := (lo + hi) / 2
		if phi(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// entropy computes H = λ · Σ p(s)·s·e^{λs}, the relative entropy of the
// aligned-pair distribution in nats.
func entropy(d *scoreDist, lambda float64) float64 {
	var sum float64
	for i, p := range d.prob {
		if p > 0 {
			s := float64(d.low + i)
			sum += p * s * math.Exp(lambda*s)
		}
	}
	return lambda * sum
}

// karlinK evaluates the K constant with the series formula of Karlin &
// Altschul (1990) for lattice score distributions:
//
//	K = δ·λ·exp(-2σ) / (H·(1-exp(-λδ)))
//	σ = Σ_{k≥1} (1/k)·( P(S_k ≥ 0) + E[e^{λ·S_k}; S_k < 0] )
//
// where S_k is the k-step random walk of pair scores and δ the lattice
// span. The walk distributions are computed by exact convolution; the
// series is truncated when its terms fall below 1e-10 (they decay
// geometrically since the walk drifts to -∞).
func karlinK(d *scoreDist, lambda, h float64) float64 {
	delta := float64(d.span())
	const maxIter = 80
	// walk[s-lowK] = P(S_k == s) for the current k.
	low, high := d.low, d.high
	walk := append([]float64(nil), d.prob...)
	walkLow := low
	var sigma float64
	for k := 1; k <= maxIter; k++ {
		var term float64
		for i, p := range walk {
			if p == 0 {
				continue
			}
			s := walkLow + i
			if s >= 0 {
				term += p
			} else {
				term += p * math.Exp(lambda*float64(s))
			}
		}
		sigma += term / float64(k)
		if term/float64(k) < 1e-10 {
			break
		}
		// Convolve one more step.
		next := make([]float64, len(walk)+high-low)
		for i, p := range walk {
			if p == 0 {
				continue
			}
			for j, q := range d.prob {
				if q > 0 {
					next[i+j] += p * q
				}
			}
		}
		walk = next
		walkLow += low
	}
	return delta * lambda * math.Exp(-2*sigma) / (h * (1 - math.Exp(-lambda*delta)))
}

// BitScore converts a raw score to a normalised bit score.
func (p Params) BitScore(raw int) float64 {
	return (p.Lambda*float64(raw) - math.Log(p.K)) / math.Ln2
}

// EValue returns the expected number of chance alignments scoring at
// least raw in a search space of query length m and database length n,
// using effective lengths corrected by the standard length adjustment.
func (p Params) EValue(raw, m, n int) float64 {
	em, en := p.EffectiveLengths(m, n)
	return p.K * float64(em) * float64(en) * math.Exp(-p.Lambda*float64(raw))
}

// RawScoreForEValue returns the minimal raw score whose E-value in an
// (m, n) search space is at most target. Used to derive report cutoffs.
func (p Params) RawScoreForEValue(target float64, m, n int) int {
	em, en := p.EffectiveLengths(m, n)
	s := (math.Log(p.K*float64(em)*float64(en)) - math.Log(target)) / p.Lambda
	return int(math.Ceil(s))
}

// EffectiveLengths applies the BLAST length adjustment
// l = ln(K·m·n)/H, clamping so at least 1/8 of each length remains.
func (p Params) EffectiveLengths(m, n int) (int, int) {
	if m <= 0 || n <= 0 || p.H <= 0 {
		return max(m, 1), max(n, 1)
	}
	l := int(math.Log(p.K*float64(m)*float64(n)) / p.H)
	if l < 0 {
		l = 0
	}
	em := m - l
	if em < m/8+1 {
		em = m/8 + 1
	}
	en := n - l
	if en < n/8+1 {
		en = n/8 + 1
	}
	return em, en
}
