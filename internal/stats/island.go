package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"seedblast/internal/alphabet"
	"seedblast/internal/matrix"
)

// Gapped Karlin-Altschul parameters cannot be derived analytically;
// NCBI ships simulated constants (GappedBLOSUM62). This file implements
// the island method of Altschul et al. (2001): aligning random
// sequences, the local-alignment score landscape decomposes into
// "islands" (connected regions of positive score); island peak scores
// S ≥ t follow P(S ≥ s) ∝ e^{-λs}, giving
//
//	λ̂ = ln(1 + 1/(mean(S) - t))        (lattice MLE, span 1)
//	K̂ = #islands(S ≥ t) · e^{λ̂·t} / Σ(m·n)
//
// The estimator lets users calibrate arbitrary matrix/gap-cost
// combinations instead of relying on shipped constants.

// IslandConfig parameterises EstimateGapped.
type IslandConfig struct {
	Matrix  *matrix.Matrix
	GapOpen int // positive cost; opening a length-L gap costs Open + L·Extend
	GapExt  int
	SeqLen  int   // random sequence length per side (default 400)
	Pairs   int   // number of random pairs aligned (default 30)
	Cutoff  int   // island peak threshold t (default 25)
	Seed    int64 // RNG seed; fixed seed ⇒ deterministic estimate
}

func (c IslandConfig) withDefaults() IslandConfig {
	if c.SeqLen == 0 {
		c.SeqLen = 400
	}
	if c.Pairs == 0 {
		c.Pairs = 30
	}
	if c.Cutoff == 0 {
		c.Cutoff = 25
	}
	return c
}

// EstimateGapped estimates gapped λ and K with the island method. H is
// approximated by evaluating the ungapped relative-entropy formula at
// the estimated λ (gaps contribute little to H at BLAST-like costs).
func EstimateGapped(cfg IslandConfig) (Params, error) {
	cfg = cfg.withDefaults()
	if cfg.Matrix == nil {
		return Params{}, fmt.Errorf("stats: island estimation requires a matrix")
	}
	if cfg.GapOpen <= 0 || cfg.GapExt <= 0 {
		return Params{}, fmt.Errorf("stats: gap costs must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	freqs := matrix.RobinsonFrequencies()
	cdf := makeCDF(freqs)

	var peaks []int
	area := 0
	for p := 0; p < cfg.Pairs; p++ {
		a := randomSeq(rng, cdf, cfg.SeqLen)
		b := randomSeq(rng, cdf, cfg.SeqLen)
		peaks = append(peaks, islandPeaks(a, b, cfg)...)
		area += cfg.SeqLen * cfg.SeqLen
	}

	var above []int
	for _, s := range peaks {
		if s >= cfg.Cutoff {
			above = append(above, s)
		}
	}
	if len(above) < 10 {
		return Params{}, fmt.Errorf("stats: only %d islands above cutoff %d — increase Pairs/SeqLen or lower Cutoff",
			len(above), cfg.Cutoff)
	}
	sort.Ints(above)
	var sum float64
	for _, s := range above {
		sum += float64(s)
	}
	mean := sum / float64(len(above))
	lambda := math.Log(1 + 1/(mean-float64(cfg.Cutoff)))
	k := float64(len(above)) * math.Exp(lambda*float64(cfg.Cutoff)) / float64(area)

	// H via the ungapped entropy at the estimated λ.
	d := newScoreDist(cfg.Matrix, freqs)
	h := entropy(d, lambda)
	return Params{Lambda: lambda, K: k, H: h}, nil
}

func makeCDF(freqs *[alphabet.NumStandardAA]float64) []float64 {
	cdf := make([]float64, alphabet.NumStandardAA)
	var cum float64
	for i, p := range freqs {
		cum += p
		cdf[i] = cum
	}
	cdf[len(cdf)-1] = 1
	return cdf
}

func randomSeq(rng *rand.Rand, cdf []float64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		u := rng.Float64()
		for c, v := range cdf {
			if u <= v {
				out[i] = byte(c)
				break
			}
		}
	}
	return out
}

// islandPeaks runs an affine-gap Smith-Waterman over one random pair,
// tracking which island each positive cell belongs to, and returns the
// peak score of every island. Island identity propagates along the
// traceback predecessor of each cell (including through gap states).
func islandPeaks(a, b []byte, cfg IslandConfig) []int {
	openExt := int32(cfg.GapOpen + cfg.GapExt)
	ext := int32(cfg.GapExt)
	table := cfg.Matrix.Table()
	const ninf = int32(-1 << 28)

	n := len(b)
	h := make([]int32, n+1)
	e := make([]int32, n+1)
	hID := make([]int32, n+1) // island of H[i][j] (0 = none)
	eID := make([]int32, n+1)
	for j := range e {
		e[j] = ninf
	}
	peaks := []int32{0} // peaks[id] = max score of island id; id 0 unused
	nextID := int32(1)

	for i := 1; i <= len(a); i++ {
		row := table[int(a[i-1])*24 : int(a[i-1])*24+24]
		var diag int32
		var diagID int32
		f := ninf
		var fID int32
		for j := 1; j <= n; j++ {
			up, upID := h[j], hID[j]
			val := diag + int32(row[b[j-1]])
			srcID := diagID
			if e[j] > val {
				val = e[j]
				srcID = eID[j]
			}
			if f > val {
				val = f
				srcID = fID
			}
			diag, diagID = up, upID
			if val <= 0 {
				h[j] = 0
				hID[j] = 0
			} else {
				if srcID == 0 {
					// New island born at this cell.
					srcID = nextID
					nextID++
					peaks = append(peaks, 0)
				}
				h[j] = val
				hID[j] = srcID
				if val > peaks[srcID] {
					peaks[srcID] = val
				}
			}
			// Gap state updates inherit the island of their source.
			if e[j]-ext >= h[j]-openExt {
				e[j] -= ext
			} else {
				e[j] = h[j] - openExt
				eID[j] = hID[j]
			}
			if f-ext >= h[j]-openExt {
				f -= ext
			} else {
				f = h[j] - openExt
				fID = hID[j]
			}
		}
	}
	out := make([]int, 0, len(peaks)-1)
	for _, s := range peaks[1:] {
		if s > 0 {
			out = append(out, int(s))
		}
	}
	return out
}
