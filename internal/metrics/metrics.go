// Package metrics implements the sensitivity/selectivity measures of
// the paper's §4.4: ROC50 and the average precision (AP) criterion,
// computed over ranked hit lists with known truth labels.
package metrics

import "sort"

// RankedHit is one search result with its truth label.
type RankedHit struct {
	Score float64
	True  bool
}

// SortByScore orders hits by descending score (rank order). Ties keep
// their relative order (stable), matching report order.
func SortByScore(hits []RankedHit) {
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].Score > hits[j].Score })
}

// ROC50 computes the ROC50 score of one query's ranked hit list, as
// the paper describes: for each of the first 50 false positives, count
// the true positives ranked above it; the counts are summed and divided
// by 50×P, with P the number of sequences of the family. If the list
// runs out before 50 false positives, each missing false positive is
// credited with every true positive found (the curve is extended
// horizontally, as in Gertz et al.).
func ROC50(hits []RankedHit, familySize int) float64 {
	if familySize <= 0 {
		return 0
	}
	const nFP = 50
	tp := 0
	fp := 0
	sum := 0
	for _, h := range hits {
		if h.True {
			tp++
			continue
		}
		fp++
		sum += tp
		if fp == nFP {
			break
		}
	}
	for ; fp < nFP; fp++ {
		sum += tp
	}
	roc := float64(sum) / float64(nFP*familySize)
	if roc > 1 {
		roc = 1
	}
	return roc
}

// AveragePrecision computes the AP criterion over the 50 best
// alignments of one query: for each true positive, its true-positive
// rank divided by its list position, summed and divided by the total
// number of true positives found.
func AveragePrecision(hits []RankedHit) float64 {
	const top = 50
	n := min(len(hits), top)
	tp := 0
	var sum float64
	for i := 0; i < n; i++ {
		if hits[i].True {
			tp++
			sum += float64(tp) / float64(i+1)
		}
	}
	if tp == 0 {
		return 0
	}
	return sum / float64(tp)
}

// Mean averages a slice of per-query scores.
func Mean(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores))
}
