package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func hitsFromPattern(pattern string) []RankedHit {
	// 'T' true positive, 'F' false positive, ranked left to right.
	out := make([]RankedHit, len(pattern))
	for i, c := range pattern {
		out[i] = RankedHit{Score: float64(len(pattern) - i), True: c == 'T'}
	}
	return out
}

func TestROC50Perfect(t *testing.T) {
	// All P=4 members found before any false positive: every one of the
	// 50 FPs (all virtual) has 4 TPs above it → 50·4/(50·4) = 1.
	got := ROC50(hitsFromPattern("TTTTFFFF"), 4)
	if got != 1 {
		t.Errorf("perfect ROC50 = %f, want 1", got)
	}
}

func TestROC50Worst(t *testing.T) {
	// No true positives at all.
	got := ROC50(hitsFromPattern("FFFFFFFF"), 4)
	if got != 0 {
		t.Errorf("worst ROC50 = %f, want 0", got)
	}
}

func TestROC50Interleaved(t *testing.T) {
	// P=2: F T F T → FP1 has 0 TPs above, FP2 has 1; remaining 48 FPs
	// get 2 each → (0+1+48·2)/(50·2) = 97/100.
	got := ROC50(hitsFromPattern("FTFT"), 2)
	want := 97.0 / 100.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ROC50 = %f, want %f", got, want)
	}
}

func TestROC50StopsAt50FPs(t *testing.T) {
	// A TP after the 50th FP must not count.
	pattern := ""
	for i := 0; i < 50; i++ {
		pattern += "F"
	}
	pattern += "T"
	got := ROC50(hitsFromPattern(pattern), 1)
	if got != 0 {
		t.Errorf("TP after 50th FP counted: %f", got)
	}
}

func TestROC50InvalidFamily(t *testing.T) {
	if ROC50(hitsFromPattern("T"), 0) != 0 {
		t.Error("familySize 0 should give 0")
	}
}

func TestROC50Bounds(t *testing.T) {
	f := func(raw []bool, p uint8) bool {
		fam := int(p%5) + 1
		hits := make([]RankedHit, len(raw))
		for i, b := range raw {
			hits[i] = RankedHit{Score: float64(len(raw) - i), True: b}
		}
		r := ROC50(hits, fam)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAveragePrecisionPerfect(t *testing.T) {
	if got := AveragePrecision(hitsFromPattern("TTT")); got != 1 {
		t.Errorf("perfect AP = %f", got)
	}
}

func TestAveragePrecisionKnown(t *testing.T) {
	// T F T: ranks 1 and 3 are true → (1/1 + 2/3)/2 = 5/6.
	got := AveragePrecision(hitsFromPattern("TFT"))
	want := 5.0 / 6.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AP = %f, want %f", got, want)
	}
}

func TestAveragePrecisionEmptyAndAllFalse(t *testing.T) {
	if AveragePrecision(nil) != 0 {
		t.Error("empty AP should be 0")
	}
	if AveragePrecision(hitsFromPattern("FFF")) != 0 {
		t.Error("all-false AP should be 0")
	}
}

func TestAveragePrecisionTop50Only(t *testing.T) {
	// 50 false then a true: the true is outside the window.
	pattern := ""
	for i := 0; i < 50; i++ {
		pattern += "F"
	}
	pattern += "T"
	if AveragePrecision(hitsFromPattern(pattern)) != 0 {
		t.Error("hit 51 counted")
	}
}

func TestAveragePrecisionBounds(t *testing.T) {
	f := func(raw []bool) bool {
		hits := make([]RankedHit, len(raw))
		for i, b := range raw {
			hits[i] = RankedHit{Score: float64(len(raw) - i), True: b}
		}
		ap := AveragePrecision(hits)
		return ap >= 0 && ap <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortByScore(t *testing.T) {
	hits := []RankedHit{{Score: 1}, {Score: 9, True: true}, {Score: 5}}
	SortByScore(hits)
	if !hits[0].True || hits[1].Score != 5 || hits[2].Score != 1 {
		t.Errorf("sort wrong: %+v", hits)
	}
}

func TestSortByScoreStable(t *testing.T) {
	hits := []RankedHit{{Score: 5, True: true}, {Score: 5, True: false}}
	SortByScore(hits)
	if !hits[0].True {
		t.Error("stable sort violated on ties")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}
