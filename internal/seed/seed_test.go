package seed

import (
	"testing"
	"testing/quick"

	"seedblast/internal/alphabet"
)

func TestIdentityPartition(t *testing.T) {
	p := Identity()
	if p.NumGroups != alphabet.NumStandardAA {
		t.Fatalf("NumGroups = %d", p.NumGroups)
	}
	seen := map[uint8]bool{}
	for _, g := range p.Group {
		if seen[g] {
			t.Fatal("identity partition merges residues")
		}
		seen[g] = true
	}
}

func TestNewPartitionValid(t *testing.T) {
	p, err := NewPartition("LVIM,C,A,G,ST,P,FYW,EDNQ,KR,H")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGroups != 10 {
		t.Fatalf("NumGroups = %d, want 10", p.NumGroups)
	}
	l := alphabet.MustEncodeProtein("L")[0]
	v := alphabet.MustEncodeProtein("V")[0]
	c := alphabet.MustEncodeProtein("C")[0]
	if p.Group[l] != p.Group[v] {
		t.Error("L and V should share a class")
	}
	if p.Group[l] == p.Group[c] {
		t.Error("L and C should not share a class")
	}
}

func TestNewPartitionErrors(t *testing.T) {
	cases := []string{
		"LVIM,C,A,G,ST,P,FYW,EDNQ,KR",    // H missing
		"LVIM,C,A,G,ST,P,FYW,EDNQ,KR,HL", // L twice
		"LVIM,C,A,G,ST,P,FYW,EDNQ,KR,HX", // X not standard
		"LV#M,C,A,G,ST,P,FYW,EDNQ,KR,H",  // invalid letter
	}
	for _, spec := range cases {
		if _, err := NewPartition(spec); err == nil {
			t.Errorf("NewPartition(%q) accepted invalid spec", spec)
		}
	}
}

func TestMurphy10(t *testing.T) {
	p := Murphy10()
	if p.NumGroups != 10 || p.Label != "murphy10" {
		t.Fatalf("murphy10 = %+v", p)
	}
}

func TestExactModelKeys(t *testing.T) {
	m := Exact(3)
	if m.Width() != 3 || m.KeySpace() != 20*20*20 {
		t.Fatalf("width=%d keyspace=%d", m.Width(), m.KeySpace())
	}
	k1, ok1 := m.Key(alphabet.MustEncodeProtein("ARN"))
	k2, ok2 := m.Key(alphabet.MustEncodeProtein("ARN"))
	k3, ok3 := m.Key(alphabet.MustEncodeProtein("ARD"))
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("standard windows must be indexable")
	}
	if k1 != k2 {
		t.Error("equal windows produce different keys")
	}
	if k1 == k3 {
		t.Error("different windows collide under exact seed")
	}
}

func TestExactKeyIsMixedRadix(t *testing.T) {
	m := Exact(2)
	w := []byte{3, 7} // D, G by code
	k, ok := m.Key(w)
	if !ok || k != 3*20+7 {
		t.Errorf("key = %d ok=%v, want %d", k, ok, 3*20+7)
	}
}

func TestKeyRejectsAmbiguous(t *testing.T) {
	m := Default()
	for _, s := range []string{"AXRN", "AR*N", "ARNB", "ZRNA"} {
		if _, ok := m.Key(alphabet.MustEncodeProtein(s)); ok {
			t.Errorf("window %q should not be indexable", s)
		}
	}
}

func TestKeyRejectsWrongWidth(t *testing.T) {
	m := Default()
	if _, ok := m.Key(alphabet.MustEncodeProtein("ARN")); ok {
		t.Error("short window accepted")
	}
}

func TestDefaultModel(t *testing.T) {
	m := Default()
	if m.Width() != 4 {
		t.Fatalf("width = %d, want 4", m.Width())
	}
	if m.KeySpace() != 20*10*10*20 {
		t.Fatalf("keyspace = %d, want 40000", m.KeySpace())
	}
	// Inner positions are reduced: LL.. and LV.. group; outer exact.
	k1, _ := m.Key(alphabet.MustEncodeProtein("ALLA"))
	k2, _ := m.Key(alphabet.MustEncodeProtein("AVMA"))
	if k1 != k2 {
		t.Error("subset seed should merge LVIM at inner positions")
	}
	k3, _ := m.Key(alphabet.MustEncodeProtein("VLLA"))
	if k1 == k3 {
		t.Error("outer position must stay exact")
	}
}

func TestSubsetKeysWithinSpace(t *testing.T) {
	m := Default()
	f := func(raw [4]byte) bool {
		w := make([]byte, 4)
		for i, b := range raw {
			w[i] = b % alphabet.NumStandardAA
		}
		k, ok := m.Key(w)
		return ok && int(k) < m.KeySpace()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubsetSeedIsEquivalenceRelation(t *testing.T) {
	// Windows with per-position equal classes collide; otherwise not.
	m := Default()
	pos := m.Positions()
	f := func(a, b [4]byte) bool {
		wa, wb := make([]byte, 4), make([]byte, 4)
		same := true
		for i := 0; i < 4; i++ {
			wa[i] = a[i] % alphabet.NumStandardAA
			wb[i] = b[i] % alphabet.NumStandardAA
			if pos[i].Group[wa[i]] != pos[i].Group[wb[i]] {
				same = false
			}
		}
		ka, _ := m.Key(wa)
		kb, _ := m.Key(wb)
		return (ka == kb) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewSubsetErrors(t *testing.T) {
	if _, err := NewSubset("empty"); err == nil {
		t.Error("empty subset seed accepted")
	}
	// Key space overflow: 20^8 > 2^31.
	positions := make([]Partition, 8)
	for i := range positions {
		positions[i] = Identity()
	}
	if _, err := NewSubset("huge", positions...); err == nil {
		t.Error("overflowing key space accepted")
	}
}

func TestPositionsIsACopy(t *testing.T) {
	m := Default()
	p := m.Positions()
	p[0].NumGroups = 1
	if m.Positions()[0].NumGroups == 1 {
		t.Error("Positions leaked internal state")
	}
}
