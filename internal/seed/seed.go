// Package seed implements the seed models used for indexing: exact
// W-mers (classic BLAST-style words) and subset seeds (Peterlongo et
// al., reference [11] of the paper), where each seed position maps
// amino acids through a reduced alphabet so that similar residues share
// a key. The paper indexes both banks with a single subset seed of
// W = 4 because this approach "is very efficient for indexing the
// protein sequences" while keeping BLAST-level sensitivity.
package seed

import (
	"fmt"
	"strings"

	"seedblast/internal/alphabet"
)

// Model maps fixed-width windows of protein codes to integer keys.
// Two windows receive the same key exactly when they match under the
// seed; the index buckets sequence positions by key.
type Model interface {
	// Width returns the seed width W in residues.
	Width() int
	// KeySpace returns the number of distinct keys (index table size).
	KeySpace() int
	// Key returns the key of the window w (len(w) == Width()) and
	// whether the window is indexable. Windows containing ambiguous or
	// stop residues are not indexable, mirroring BLAST's seed masking.
	Key(w []byte) (uint32, bool)
	// Name identifies the model in reports.
	Name() string
}

// Partition groups the 20 standard amino acids into equivalence classes
// for one seed position. Group[aa] is the class id; NumGroups is the
// number of classes.
type Partition struct {
	Group     [alphabet.NumStandardAA]uint8
	NumGroups int
	Label     string
}

// Identity returns the trivial partition where every amino acid is its
// own class (an exact seed position).
func Identity() Partition {
	var p Partition
	for i := range p.Group {
		p.Group[i] = uint8(i)
	}
	p.NumGroups = alphabet.NumStandardAA
	p.Label = "exact"
	return p
}

// NewPartition builds a partition from explicit classes written as
// amino-acid letter groups, e.g. "LVIM,C,A,G,ST,P,FYW,EDNQ,KR,H".
// Every standard amino acid must appear exactly once.
func NewPartition(spec string) (Partition, error) {
	var p Partition
	seen := [alphabet.NumStandardAA]bool{}
	groups := strings.Split(spec, ",")
	for gi, g := range groups {
		for i := 0; i < len(g); i++ {
			codes, err := alphabet.EncodeProtein(g[i : i+1])
			if err != nil {
				return Partition{}, fmt.Errorf("seed: partition %q: %v", spec, err)
			}
			c := codes[0]
			if !alphabet.IsStandardAA(c) {
				return Partition{}, fmt.Errorf("seed: partition %q: %c is not a standard amino acid", spec, g[i])
			}
			if seen[c] {
				return Partition{}, fmt.Errorf("seed: partition %q: %c appears twice", spec, g[i])
			}
			seen[c] = true
			p.Group[c] = uint8(gi)
		}
	}
	for c, ok := range seen {
		if !ok {
			return Partition{}, fmt.Errorf("seed: partition %q: %c missing", spec, alphabet.ProteinLetter(byte(c)))
		}
	}
	p.NumGroups = len(groups)
	p.Label = spec
	return p, nil
}

// Murphy10 returns the Murphy, Wallqvist & Levy 10-class reduced
// alphabet, the canonical grouping behind protein subset seeds.
func Murphy10() Partition {
	p, err := NewPartition("LVIM,C,A,G,ST,P,FYW,EDNQ,KR,H")
	if err != nil {
		panic(err) // spec is a compile-time constant
	}
	p.Label = "murphy10"
	return p
}

// SubsetModel is a subset seed: one partition per position. The key is
// the mixed-radix number of per-position class ids.
type SubsetModel struct {
	positions []Partition
	keySpace  int
	name      string
}

// NewSubset builds a subset seed from per-position partitions.
func NewSubset(name string, positions ...Partition) (*SubsetModel, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("seed: subset seed needs at least one position")
	}
	space := 1
	for _, p := range positions {
		if p.NumGroups <= 0 {
			return nil, fmt.Errorf("seed: empty partition in subset seed")
		}
		if space > (1<<31)/p.NumGroups {
			return nil, fmt.Errorf("seed: key space overflows uint32")
		}
		space *= p.NumGroups
	}
	return &SubsetModel{positions: positions, keySpace: space, name: name}, nil
}

// Exact returns the exact-word seed of width w: every position uses the
// identity partition, giving the classic 20^w BLAST index.
func Exact(w int) *SubsetModel {
	positions := make([]Partition, w)
	for i := range positions {
		positions[i] = Identity()
	}
	m, err := NewSubset(fmt.Sprintf("exact%d", w), positions...)
	if err != nil {
		panic(err)
	}
	return m
}

// Default returns the seed model the pipeline uses out of the box: the
// paper's W = 4 subset seed, here realised as exact outer positions and
// Murphy10-reduced inner positions (key space 20·10·10·20 = 40000).
func Default() *SubsetModel {
	m, err := NewSubset("subset4", Identity(), Murphy10(), Murphy10(), Identity())
	if err != nil {
		panic(err)
	}
	return m
}

// Width implements Model.
func (m *SubsetModel) Width() int { return len(m.positions) }

// KeySpace implements Model.
func (m *SubsetModel) KeySpace() int { return m.keySpace }

// Name implements Model.
func (m *SubsetModel) Name() string { return m.name }

// Key implements Model.
func (m *SubsetModel) Key(w []byte) (uint32, bool) {
	if len(w) != len(m.positions) {
		return 0, false
	}
	var key uint32
	for i, c := range w {
		if !alphabet.IsStandardAA(c) {
			return 0, false
		}
		p := &m.positions[i]
		key = key*uint32(p.NumGroups) + uint32(p.Group[c])
	}
	return key, true
}

// Positions returns a copy of the per-position partitions.
func (m *SubsetModel) Positions() []Partition {
	return append([]Partition(nil), m.positions...)
}

// compile-time interface check
var _ Model = (*SubsetModel)(nil)
