package alphabet

import "testing"

// FuzzEncodeProtein checks the encoder never panics and that accepted
// inputs survive a decode/encode round trip.
func FuzzEncodeProtein(f *testing.F) {
	f.Add("ARNDCQEGHILKMFPSTWYVBZX*")
	f.Add("acdefghiklm")
	f.Add("U-OJ")
	f.Add("")
	f.Add("MK1")
	f.Fuzz(func(t *testing.T, in string) {
		codes, err := EncodeProtein(in)
		if err != nil {
			return
		}
		for _, c := range codes {
			if !ValidProtein(c) {
				t.Fatalf("encoder produced invalid code %d", c)
			}
		}
		again, err := EncodeProtein(DecodeProtein(codes))
		if err != nil {
			t.Fatalf("decode produced unencodable text: %v", err)
		}
		if string(again) != string(codes) {
			t.Fatal("decode/encode not idempotent")
		}
	})
}

// FuzzEncodeDNA checks the DNA encoder and reverse complement.
func FuzzEncodeDNA(f *testing.F) {
	f.Add("ACGTN")
	f.Add("acgu")
	f.Add("RYSWKM")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		codes, err := EncodeDNA(in)
		if err != nil {
			return
		}
		for _, c := range codes {
			if !ValidNucleotide(c) {
				t.Fatalf("encoder produced invalid code %d", c)
			}
		}
		rc2 := ReverseComplement(ReverseComplement(codes))
		if string(rc2) != string(codes) {
			t.Fatal("reverse complement not an involution")
		}
	})
}
