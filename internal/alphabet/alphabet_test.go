package alphabet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestProteinCodesAreSequential(t *testing.T) {
	if Ala != 0 || Val != 19 || Xaa != 22 || Stp != 23 {
		t.Fatalf("unexpected code layout: Ala=%d Val=%d Xaa=%d Stp=%d", Ala, Val, Xaa, Stp)
	}
	if NumAA != len(proteinLetters) {
		t.Fatalf("NumAA=%d but %d letters", NumAA, len(proteinLetters))
	}
}

func TestEncodeDecodeProteinRoundTrip(t *testing.T) {
	const s = "ARNDCQEGHILKMFPSTWYVBZX*"
	codes, err := EncodeProtein(s)
	if err != nil {
		t.Fatalf("EncodeProtein: %v", err)
	}
	for i, c := range codes {
		if c != byte(i) {
			t.Errorf("letter %c encodes to %d, want %d", s[i], c, i)
		}
	}
	if got := DecodeProtein(codes); got != s {
		t.Errorf("round trip = %q, want %q", got, s)
	}
}

func TestEncodeProteinLowerCase(t *testing.T) {
	upper, err := EncodeProtein("ACDEFGHIKLMNPQRSTVWY")
	if err != nil {
		t.Fatal(err)
	}
	lower, err := EncodeProtein("acdefghiklmnpqrstvwy")
	if err != nil {
		t.Fatal(err)
	}
	if string(upper) != string(lower) {
		t.Error("lower-case encoding differs from upper-case")
	}
}

func TestEncodeProteinAliases(t *testing.T) {
	cases := []struct {
		in   string
		want byte
	}{
		{"U", Cys},
		{"O", Lys},
		{"J", Xaa},
		{"-", Xaa},
	}
	for _, c := range cases {
		got, err := EncodeProtein(c.in)
		if err != nil {
			t.Fatalf("EncodeProtein(%q): %v", c.in, err)
		}
		if got[0] != c.want {
			t.Errorf("EncodeProtein(%q) = %d, want %d", c.in, got[0], c.want)
		}
	}
}

func TestEncodeProteinInvalid(t *testing.T) {
	for _, s := range []string{"AB1", "A B", "#", "A\nR"} {
		if _, err := EncodeProtein(s); err == nil {
			t.Errorf("EncodeProtein(%q) succeeded, want error", s)
		} else if _, ok := err.(*InvalidLetterError); !ok {
			t.Errorf("EncodeProtein(%q) error type %T, want *InvalidLetterError", s, err)
		}
	}
}

func TestInvalidLetterErrorMessage(t *testing.T) {
	_, err := EncodeProtein("AR#D")
	e, ok := err.(*InvalidLetterError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Pos != 2 || e.Letter != '#' {
		t.Errorf("error = %+v, want Pos=2 Letter='#'", e)
	}
	if !strings.Contains(e.Error(), "protein") {
		t.Errorf("message %q should mention kind", e.Error())
	}
}

func TestMustEncodeProteinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncodeProtein did not panic on invalid input")
		}
	}()
	MustEncodeProtein("!!")
}

func TestEncodeDecodeDNARoundTrip(t *testing.T) {
	const s = "ACGTN"
	codes, err := EncodeDNA(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		if c != byte(i) {
			t.Errorf("letter %c encodes to %d, want %d", s[i], c, i)
		}
	}
	if got := DecodeDNA(codes); got != s {
		t.Errorf("round trip = %q, want %q", got, s)
	}
}

func TestEncodeDNAAmbiguityCollapsesToN(t *testing.T) {
	codes, err := EncodeDNA("RYSWKMBDHV")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		if c != NucN {
			t.Errorf("position %d: code %d, want NucN", i, c)
		}
	}
}

func TestEncodeDNAUracil(t *testing.T) {
	codes, err := EncodeDNA("AUGC")
	if err != nil {
		t.Fatal(err)
	}
	if codes[1] != NucT {
		t.Errorf("U encodes to %d, want NucT", codes[1])
	}
}

func TestEncodeDNAInvalid(t *testing.T) {
	if _, err := EncodeDNA("ACGX"); err == nil {
		t.Error("EncodeDNA accepted X (protein-only letter)")
	}
}

func TestComplementPairs(t *testing.T) {
	pairs := map[byte]byte{NucA: NucT, NucC: NucG, NucG: NucC, NucT: NucA, NucN: NucN}
	for in, want := range pairs {
		if got := Complement(in); got != want {
			t.Errorf("Complement(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	in := MustEncodeDNA("AACGTT")
	got := DecodeDNA(ReverseComplement(in))
	if got != "AACGTT" { // palindrome
		t.Errorf("ReverseComplement palindrome = %q", got)
	}
	in2 := MustEncodeDNA("AAACGN")
	if got := DecodeDNA(ReverseComplement(in2)); got != "NCGTTT" {
		t.Errorf("ReverseComplement = %q, want NCGTTT", got)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		dna := make([]byte, len(raw))
		for i, b := range raw {
			dna[i] = b % NumNuc
		}
		back := ReverseComplement(ReverseComplement(dna))
		return string(back) == string(dna)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidityPredicates(t *testing.T) {
	if !ValidProtein(0) || !ValidProtein(NumAA-1) || ValidProtein(NumAA) {
		t.Error("ValidProtein boundary wrong")
	}
	if !IsStandardAA(19) || IsStandardAA(20) {
		t.Error("IsStandardAA boundary wrong")
	}
	if !ValidNucleotide(NucN) || ValidNucleotide(NumNuc) {
		t.Error("ValidNucleotide boundary wrong")
	}
}

func TestDecodeOutOfRange(t *testing.T) {
	if ProteinLetter(200) != '?' {
		t.Error("ProteinLetter out of range should be '?'")
	}
	if NucLetter(200) != '?' {
		t.Error("NucLetter out of range should be '?'")
	}
}

func TestEncodeProteinPropertyRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		codes := make([]byte, len(raw))
		for i, b := range raw {
			codes[i] = b % NumAA
		}
		back, err := EncodeProtein(DecodeProtein(codes))
		if err != nil {
			return false
		}
		return string(back) == string(codes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
