// Package alphabet defines the protein and nucleotide alphabets used
// throughout seedblast, together with compact byte encodings.
//
// Protein residues are encoded in the NCBIstdaa-like order
// ARNDCQEGHILKMFPSTWYVBZX* (20 standard amino acids followed by the
// ambiguity codes B and Z, the wildcard X and the stop symbol '*').
// Nucleotides are encoded as A=0 C=1 G=2 T=3 with N=4 as wildcard.
// All packages operate on encoded []byte sequences; translation to and
// from ASCII letters happens only at the I/O boundary.
package alphabet

import "fmt"

// Protein residue codes. The first NumStandardAA codes are the 20
// standard amino acids; the remaining codes are ambiguity/wildcard
// symbols that substitution matrices still score.
const (
	Ala byte = iota // A
	Arg             // R
	Asn             // N
	Asp             // D
	Cys             // C
	Gln             // Q
	Glu             // E
	Gly             // G
	His             // H
	Ile             // I
	Leu             // L
	Lys             // K
	Met             // M
	Phe             // F
	Pro             // P
	Ser             // S
	Thr             // T
	Trp             // W
	Tyr             // Y
	Val             // V
	Asx             // B = N or D
	Glx             // Z = Q or E
	Xaa             // X = any
	Stp             // * = translation stop
)

// NumStandardAA is the number of unambiguous amino acids.
const NumStandardAA = 20

// NumAA is the total number of protein codes (including B, Z, X, *).
const NumAA = 24

// proteinLetters lists the ASCII letter for each protein code, in code order.
const proteinLetters = "ARNDCQEGHILKMFPSTWYVBZX*"

// Nucleotide codes.
const (
	NucA byte = iota
	NucC
	NucG
	NucT
	NucN // wildcard / unknown
)

// NumNuc is the total number of nucleotide codes.
const NumNuc = 5

// nucLetters lists the ASCII letter for each nucleotide code.
const nucLetters = "ACGTN"

// aaCode maps ASCII bytes to protein codes; 0xFF marks invalid letters.
var aaCode [256]byte

// nucCode maps ASCII bytes to nucleotide codes; 0xFF marks invalid letters.
var nucCode [256]byte

func init() {
	for i := range aaCode {
		aaCode[i] = 0xFF
		nucCode[i] = 0xFF
	}
	for code, letter := range []byte(proteinLetters) {
		aaCode[letter] = byte(code)
		aaCode[letter|0x20] = byte(code) // lower case
	}
	// Accepted aliases: U (selenocysteine) → C, O (pyrrolysine) → K,
	// J (I/L ambiguity) → X, '-' (gap in alignments read back) → X.
	for _, alias := range []struct{ letter, code byte }{
		{'U', Cys}, {'u', Cys},
		{'O', Lys}, {'o', Lys},
		{'J', Xaa}, {'j', Xaa},
		{'-', Xaa},
	} {
		aaCode[alias.letter] = alias.code
	}
	for code, letter := range []byte(nucLetters) {
		nucCode[letter] = byte(code)
		nucCode[letter|0x20] = byte(code)
	}
	// IUPAC ambiguity nucleotides collapse to N; U (RNA) reads as T.
	for _, b := range []byte("RYSWKMBDHVryswkmbdhv") {
		nucCode[b] = NucN
	}
	nucCode['U'] = NucT
	nucCode['u'] = NucT
}

// InvalidLetterError reports a letter that does not belong to the alphabet.
type InvalidLetterError struct {
	Letter byte
	Pos    int
	Kind   string // "protein" or "nucleotide"
}

func (e *InvalidLetterError) Error() string {
	return fmt.Sprintf("alphabet: invalid %s letter %q at position %d", e.Kind, e.Letter, e.Pos)
}

// EncodeProtein converts an ASCII amino-acid string into protein codes.
// Unknown letters yield an *InvalidLetterError.
func EncodeProtein(s string) ([]byte, error) {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := aaCode[s[i]]
		if c == 0xFF {
			return nil, &InvalidLetterError{Letter: s[i], Pos: i, Kind: "protein"}
		}
		out[i] = c
	}
	return out, nil
}

// MustEncodeProtein is EncodeProtein for known-good literals; it panics on
// invalid input and is intended for tests and embedded tables.
func MustEncodeProtein(s string) []byte {
	out, err := EncodeProtein(s)
	if err != nil {
		panic(err)
	}
	return out
}

// DecodeProtein converts protein codes back to an ASCII string.
// Codes out of range decode as '?'.
func DecodeProtein(codes []byte) string {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = ProteinLetter(c)
	}
	return string(out)
}

// ProteinLetter returns the ASCII letter for a single protein code.
func ProteinLetter(code byte) byte {
	if int(code) >= len(proteinLetters) {
		return '?'
	}
	return proteinLetters[code]
}

// ValidProtein reports whether code is a valid protein code.
func ValidProtein(code byte) bool { return code < NumAA }

// IsStandardAA reports whether code is one of the 20 unambiguous amino acids.
func IsStandardAA(code byte) bool { return code < NumStandardAA }

// EncodeDNA converts an ASCII nucleotide string into nucleotide codes.
// IUPAC ambiguity letters collapse to N; unknown letters yield an error.
func EncodeDNA(s string) ([]byte, error) {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := nucCode[s[i]]
		if c == 0xFF {
			return nil, &InvalidLetterError{Letter: s[i], Pos: i, Kind: "nucleotide"}
		}
		out[i] = c
	}
	return out, nil
}

// MustEncodeDNA is EncodeDNA for known-good literals; it panics on invalid
// input and is intended for tests.
func MustEncodeDNA(s string) []byte {
	out, err := EncodeDNA(s)
	if err != nil {
		panic(err)
	}
	return out
}

// DecodeDNA converts nucleotide codes back to an ASCII string.
// Codes out of range decode as '?'.
func DecodeDNA(codes []byte) string {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = NucLetter(c)
	}
	return string(out)
}

// NucLetter returns the ASCII letter for a single nucleotide code.
func NucLetter(code byte) byte {
	if int(code) >= len(nucLetters) {
		return '?'
	}
	return nucLetters[code]
}

// ValidNucleotide reports whether code is a valid nucleotide code.
func ValidNucleotide(code byte) bool { return code < NumNuc }

// Complement returns the Watson-Crick complement of a nucleotide code.
// N complements to N.
func Complement(code byte) byte {
	switch code {
	case NucA:
		return NucT
	case NucC:
		return NucG
	case NucG:
		return NucC
	case NucT:
		return NucA
	default:
		return NucN
	}
}

// ReverseComplement returns the reverse complement of an encoded DNA
// sequence as a new slice.
func ReverseComplement(dna []byte) []byte {
	out := make([]byte, len(dna))
	for i, c := range dna {
		out[len(dna)-1-i] = Complement(c)
	}
	return out
}
