package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

func TestMetricName(t *testing.T) {
	analysistest.RunTree(t, analysis.MetricName, "metricname/good", "metricname/bad")
}
