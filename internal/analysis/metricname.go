package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// MetricName keeps the telemetry registry and loadgen's schema check
// from drifting apart. The registry side is every metric family
// registered through internal/telemetry — Counter/Gauge/Histogram/Func
// call sites, including the repo's helper-closure idiom
// (cnt := func(name, ...) { r.Func("seedservd_"+name, ...) }) whose
// one level of prefix indirection the analyzer resolves. The schema
// side is cmd/loadgen's workerFamilies contract list. The analyzer
// reports three classes at compile time instead of scrape time:
// registry↔schema drift in either direction, the same family
// registered under two different metric types (a runtime panic in
// Registry.lookup), and names outside the Prometheus data model
// grammar (which would produce an unscrapable exposition).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "metric families registered with internal/telemetry must match loadgen's " +
		"schema list, keep one type per name, and obey the Prometheus name grammar",
	Collect:  collectMetricName,
	Finalize: finalizeMetricName,
}

// promNameRE is the Prometheus data model's metric name grammar — the
// same rule telemetry.Registry enforces with validName at runtime.
var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// registryMethods maps registration method names to the metric kind
// they register. Func's kind comes from its type argument instead.
var registryMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "histogram",
	"Func":      "func",
}

// metricHelper is one resolved helper closure: calls to it register
// prefix+arg0 with the given kind.
type metricHelper struct {
	prefix string
	kind   string
}

// collectMetricName exports "metric" facts for every registration call
// site and "schema" facts for every family name loadgen's
// workerFamilies contract lists.
func collectMetricName(pass *Pass) ([]Fact, error) {
	var facts []Fact
	for _, file := range pass.Files {
		helpers := metricHelpers(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Helper-closure call: cnt("requests_running", ...).
			if id, ok := call.Fun.(*ast.Ident); ok {
				h, isHelper := helpers[id.Name]
				if isHelper && len(call.Args) > 0 {
					if name, ok := stringLit(call.Args[0]); ok {
						facts = append(facts, Fact{
							Pkg: pass.Path, Pos: pass.Fset.Position(call.Pos()),
							Kind: "metric", Name: h.prefix + name,
							Attrs: map[string]string{"type": h.kind},
						})
					}
					return true
				}
			}
			// Direct registration: r.Counter("name", ...) etc.
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := registryMethods[sel.Sel.Name]
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, ok := stringLit(call.Args[0])
			if !ok {
				return true
			}
			if kind == "func" {
				kind = funcTypeArg(call)
			}
			facts = append(facts, Fact{
				Pkg: pass.Path, Pos: pass.Fset.Position(call.Pos()),
				Kind: "metric", Name: name,
				Attrs: map[string]string{"type": kind},
			})
			return true
		})
	}
	if pathMatches(pass.Path, "cmd/loadgen") {
		facts = append(facts, schemaFacts(pass)...)
	}
	return facts, nil
}

// metricHelpers finds the registration helper closures in a file:
// local func literals whose body registers prefix+<first param>.
func metricHelpers(file *ast.File) map[string]metricHelper {
	out := make(map[string]metricHelper)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		name, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok || lit.Type.Params == nil || len(lit.Type.Params.List) == 0 {
			return true
		}
		firstParam := ""
		if names := lit.Type.Params.List[0].Names; len(names) > 0 {
			firstParam = names[0].Name
		}
		if firstParam == "" {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := registryMethods[sel.Sel.Name]
			if !ok || len(call.Args) == 0 {
				return true
			}
			bin, ok := call.Args[0].(*ast.BinaryExpr)
			if !ok || bin.Op != token.ADD {
				return true
			}
			prefix, ok := stringLit(bin.X)
			if !ok {
				return true
			}
			param, ok := bin.Y.(*ast.Ident)
			if !ok || param.Name != firstParam {
				return true
			}
			if kind == "func" {
				kind = funcTypeArg(call)
			}
			out[name.Name] = metricHelper{prefix: prefix, kind: kind}
			return false
		})
		return true
	})
	return out
}

// funcTypeArg resolves a Registry.Func call's metric type argument
// (telemetry.TypeCounter → "counter").
func funcTypeArg(call *ast.CallExpr) string {
	if len(call.Args) < 3 {
		return "func"
	}
	var name string
	switch t := call.Args[2].(type) {
	case *ast.SelectorExpr:
		name = t.Sel.Name
	case *ast.Ident:
		name = t.Name
	default:
		return "func"
	}
	if k, ok := strings.CutPrefix(name, "Type"); ok {
		return strings.ToLower(k)
	}
	return "func"
}

// schemaFacts extracts the workerFamilies contract list.
func schemaFacts(pass *Pass) []Fact {
	var facts []Fact
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != "workerFamilies" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						if name, ok := stringLit(elt); ok {
							facts = append(facts, Fact{
								Pkg: pass.Path, Pos: pass.Fset.Position(elt.Pos()),
								Kind: "schema", Name: name,
							})
						}
					}
				}
			}
		}
	}
	return facts
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// finalizeMetricName checks grammar and type consistency on every
// registration, then — when both sides of the contract are in view —
// registry↔schema drift in both directions.
func finalizeMetricName(u *Unit) error {
	metrics := u.FactsOf("metric")
	schema := u.FactsOf("schema")

	// Grammar: an invalid name panics Registry registration at boot.
	for _, m := range metrics {
		if !promNameRE.MatchString(m.Name) {
			u.ReportAt(m.Pkg, m.Pos, "metric name %q violates the Prometheus name grammar [a-zA-Z_:][a-zA-Z0-9_:]*", m.Name)
		}
	}
	// One type per family: Registry.lookup panics on a conflict at
	// runtime; report it at the second registration site instead.
	firstKind := make(map[string]Fact)
	for _, m := range metrics {
		first, seen := firstKind[m.Name]
		if !seen {
			firstKind[m.Name] = m
			continue
		}
		if first.Attrs["type"] != m.Attrs["type"] {
			u.ReportAt(m.Pkg, m.Pos, "metric %q registered as %s here but as %s at %s",
				m.Name, m.Attrs["type"], first.Attrs["type"], first.Pos)
		}
	}

	// Drift needs both sides in view: the loadgen schema list and the
	// seedservd registration surface it contracts.
	registered := make(map[string]bool)
	servdSeen := false
	for _, m := range metrics {
		registered[m.Name] = true
		if strings.HasPrefix(m.Name, "seedservd_") {
			servdSeen = true
		}
	}
	if len(schema) == 0 || !servdSeen {
		return nil
	}
	inSchema := make(map[string]bool)
	for _, s := range schema {
		inSchema[s.Name] = true
		if !registered[s.Name] {
			u.ReportAt(s.Pkg, s.Pos, "loadgen schema family %q is not registered by any telemetry call site (registry↔schema drift)", s.Name)
		}
	}
	reportedFamily := make(map[string]bool)
	for _, m := range metrics {
		if !strings.HasPrefix(m.Name, "seedservd_") || inSchema[m.Name] || reportedFamily[m.Name] {
			continue
		}
		reportedFamily[m.Name] = true
		u.ReportAt(m.Pkg, m.Pos, "seedservd metric %q is missing from loadgen's workerFamilies schema check", m.Name)
	}
	return nil
}
