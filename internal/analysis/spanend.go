package analysis

import (
	"go/ast"
	"go/token"
)

// SpanEnd enforces the tracing lifetime contract: telemetry.StartSpan
// hands back an *ActiveSpan whose End() records the span into the
// trace — a span that never reaches End is simply missing from the
// trace output, which is the silent kind of observability bug (the
// stage ran, the trace says it didn't). Every StartSpan result must
// reach End() on all paths out of the starting function or visibly
// transfer ownership (returned, passed on, deferred, or stored under a
// //seedlint:owns marker naming who ends it). The path tracking is the
// shared resourcelifetime walker mmapclose uses, with End as the
// discharge method.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "telemetry.StartSpan results must reach End() on all paths or visibly transfer " +
		"ownership; a span that never ends silently vanishes from the trace",
	Run: runSpanEnd,
}

// spanLifetime is the spanend diagnostic wording over the shared
// walker (see mmapLifetime for the mmapclose counterpart).
var spanLifetime = lifetimeSpec{
	closeMethod: "End",
	reportBadStore: func(p *Pass, pos token.Pos, v string) {
		p.Reportf(pos, "span %s stored into state that outlives this function without a //seedlint:owns marker", v)
	},
	reportNeverFreed: func(p *Pass, pos token.Pos, what, v string) {
		p.Reportf(pos, "span started by %s (%s) never reaches End and never leaves this function; add defer %s.End() or end it on every path", what, v, v)
	},
	reportLeakReturn: func(p *Pass, pos token.Pos, v, what string, openLine int) {
		p.Reportf(pos, "return loses span %s started by %s at line %d (no End or ownership transfer on this path)", v, what, openLine)
	},
}

// isSpanStart reports whether call is telemetry.StartSpan (or an
// unqualified StartSpan inside the telemetry package itself).
func isSpanStart(call *ast.CallExpr, imports map[string]string, pkgPath string) (string, bool) {
	recv, name := calleeOf(call)
	if name != "StartSpan" {
		return "", false
	}
	if recv == "" {
		if pathMatches(pkgPath, "internal/telemetry") {
			return name, true
		}
		return "", false
	}
	if path, ok := imports[recv]; ok && pathMatches(path, "internal/telemetry") {
		return recv + "." + name, true
	}
	return "", false
}

func runSpanEnd(pass *Pass) error {
	for _, file := range pass.Files {
		imports := importNames(file)
		scopes := allFuncs(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				// A bare StartSpan statement starts a span nothing can
				// ever end. (StartSpan in a larger expression — e.g.
				// defer StartSpan(...).End() — is not a bare statement
				// and is handled by the expression around it.)
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if what, ok := isSpanStart(call, imports, pass.Path); ok {
						pass.Reportf(call.Pos(), "result of %s is dropped; the span can never End and vanishes from the trace", what)
					}
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 || len(stmt.Lhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				what, ok := isSpanStart(call, imports, pass.Path)
				if !ok {
					return true
				}
				v, ok := stmt.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				if v.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s is dropped; the span can never End and vanishes from the trace", what)
					return true
				}
				body := innermost(scopes, call.Pos())
				if body == nil {
					return true
				}
				checkLifetime(pass, body, call, spanLifetime, what, v.Name, "")
			}
			return true
		})
	}
	return nil
}
