package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

func TestErrClose(t *testing.T) {
	analysistest.Run(t, analysis.ErrClose, "errclose/a")
}
