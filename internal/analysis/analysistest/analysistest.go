// Package analysistest runs seedlint analyzers over fixture packages
// and checks their findings against want-comments, mirroring the
// golang.org/x/tools analysistest convention:
//
//	ch <- v // want "sends on .* without selecting"
//
// Every line carrying a finding must have a matching want comment and
// every want comment must be matched by exactly one finding, so a
// fixture pins both that the analyzer fires on the violation and that
// it stays silent everywhere else in the file.
package analysistest

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"seedblast/internal/analysis"
)

// wantRE extracts the expectation regexes from a `// want "..." "..."`
// comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one want-comment: a finding must land on file:line
// with a message matching rx.
type expectation struct {
	file    string // base name
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run analyzes each fixture package under testdata/src and compares
// findings against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, rels ...string) {
	t.Helper()
	for _, rel := range rels {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", rel))
		if err != nil {
			t.Fatal(err)
		}
		runDir(t, a, rel, dir)
	}
}

// RunTree analyzes a whole fixture tree under testdata/src as one
// multi-package unit: every directory below root that holds .go files
// becomes a package whose import path is its slash-path relative to
// testdata/src, so pathMatches-style layer dispatch works the same way
// it does on the real module. Cross-package analyzers (Collect /
// Finalize) run once over the full set; per-package analyzers run on
// each package. Fixture file base names must be unique within a tree —
// want-comments are claimed by base name and line.
func RunTree(t *testing.T, a *analysis.Analyzer, roots ...string) {
	t.Helper()
	for _, root := range roots {
		base, err := filepath.Abs(filepath.Join("testdata", "src"))
		if err != nil {
			t.Fatal(err)
		}
		var pkgs []*analysis.Package
		var allGoFiles []string
		walkErr := filepath.WalkDir(filepath.Join(base, filepath.FromSlash(root)), func(dir string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			rel, err := filepath.Rel(base, dir)
			if err != nil {
				return err
			}
			pkg, goFiles, err := loadDir(filepath.ToSlash(rel), dir)
			if err != nil {
				return err
			}
			if pkg != nil {
				pkgs = append(pkgs, pkg)
				allGoFiles = append(allGoFiles, goFiles...)
			}
			return nil
		})
		if walkErr != nil {
			t.Fatalf("%s: %v", root, walkErr)
		}
		if len(pkgs) == 0 {
			t.Fatalf("%s: fixture tree holds no Go packages", root)
		}
		var findings []analysis.Finding
		if analysis.CrossPackage(a) {
			findings, err = analysis.RunCross(a, pkgs)
			if err != nil {
				t.Fatalf("%s: %v", root, err)
			}
		}
		if a.Run != nil {
			for _, pkg := range pkgs {
				fs, err := analysis.Run(a, pkg)
				if err != nil {
					t.Fatalf("%s: %v", root, err)
				}
				findings = append(findings, fs...)
			}
		}
		checkWants(t, root, findings, allGoFiles)
	}
}

func runDir(t *testing.T, a *analysis.Analyzer, rel, dir string) {
	t.Helper()
	pkg, goFiles, err := loadDir(rel, dir)
	if err != nil {
		t.Fatalf("%s: %v", rel, err)
	}
	if pkg == nil {
		t.Fatalf("%s: fixture dir holds no Go files", rel)
	}
	findings, err := analysis.Run(a, pkg)
	if err != nil {
		t.Fatalf("%s: %v", rel, err)
	}
	checkWants(t, rel, findings, goFiles)
}

// loadDir parses one fixture directory as a package (nil when the
// directory has no non-test Go files).
func loadDir(rel, dir string) (*analysis.Package, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var goFiles, otherFiles []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, "_test.go"):
		case strings.HasSuffix(name, ".go"):
			goFiles = append(goFiles, filepath.Join(dir, name))
		case strings.HasSuffix(name, ".s"):
			otherFiles = append(otherFiles, filepath.Join(dir, name))
		}
	}
	if len(goFiles) == 0 {
		return nil, nil, nil
	}
	pkg, err := analysis.ParsePackage(rel, dir, goFiles, otherFiles)
	if err != nil {
		return nil, nil, err
	}
	return pkg, goFiles, nil
}

// checkWants compares findings against the fixtures' want comments.
func checkWants(t *testing.T, label string, findings []analysis.Finding, goFiles []string) {
	t.Helper()
	var wants []*expectation
	for _, f := range goFiles {
		ws, err := parseWants(f)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		wants = append(wants, ws...)
	}
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected finding: %s", label, f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no finding matched want %q at %s:%d", label, w.rx, w.file, w.line)
		}
	}
}

// claim marks the first unmatched expectation covering the finding.
func claim(wants []*expectation, f analysis.Finding) bool {
	base := filepath.Base(f.Pos.Filename)
	for _, w := range wants {
		if !w.matched && w.file == base && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants scans one fixture file for want comments.
func parseWants(path string) ([]*expectation, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	var out []*expectation
	sc := bufio.NewScanner(fh)
	base := filepath.Base(path)
	for line := 1; sc.Scan(); line++ {
		m := wantRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		rest := m[1]
		for {
			rest = strings.TrimSpace(rest)
			if !strings.HasPrefix(rest, "\"") {
				break
			}
			end := strings.Index(rest[1:], "\"")
			if end < 0 {
				return nil, fmt.Errorf("%s:%d: unterminated want pattern", base, line)
			}
			pat := rest[1 : 1+end]
			rx, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", base, line, pat, err)
			}
			out = append(out, &expectation{file: base, line: line, rx: rx})
			rest = rest[end+2:]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
