package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, analysis.SpanEnd, "spanend/a")
}
