package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

func TestMapDet(t *testing.T) {
	analysistest.RunTree(t, analysis.MapDet, "mapdet/a")
}
