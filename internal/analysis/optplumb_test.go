package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

// TestOptPlumb pins the five-layer knob contract on two fixture
// trees: a compliant one that must stay silent, and a violating one
// with exactly one dropped plumbing step per layer — the
// "delete one layer's maxCandidates plumbing and the analyzer fails"
// demonstration from the invariant's definition.
func TestOptPlumb(t *testing.T) {
	analysistest.RunTree(t, analysis.OptPlumb, "optplumb/good", "optplumb/bad")
}
