package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

func TestDirective(t *testing.T) {
	analysistest.Run(t, analysis.Directive, "directive/a")
}
