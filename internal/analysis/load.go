package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded package: parsed non-test Go files plus enough
// metadata for the analyzers (directory for cross-constraint reparses,
// assembly files for kernelparity).
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Path       string
	Dir        string
	OtherFiles []string
}

// listedPackage is the subset of `go list -json` output seedlint needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	SFiles     []string
	Error      *struct{ Err string }
}

// LoadPackages enumerates packages matching patterns (relative to dir,
// e.g. "./...") with the go tool and parses their non-test Go files.
// Test files are deliberately out of scope: the invariants seedlint
// enforces are production-lifetime obligations, and the tests lean on
// intentionally short-lived opens the analyzers would drown in.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var goFiles, otherFiles []string
		for _, f := range lp.GoFiles {
			goFiles = append(goFiles, filepath.Join(lp.Dir, f))
		}
		for _, f := range lp.SFiles {
			otherFiles = append(otherFiles, filepath.Join(lp.Dir, f))
		}
		pkg, err := ParsePackage(lp.ImportPath, lp.Dir, goFiles, otherFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Loader memoizes LoadPackages by (dir, patterns), so the go list
// subprocess and the parse run once per process however many drivers
// ask for the same view of the module — the vet-tool anchor package
// and TestRepoIsClean both load "./..." through here.
type Loader struct {
	mu    sync.Mutex
	cache map[string][]*Package
}

// SharedLoader is the process-wide package cache.
var SharedLoader = &Loader{}

// Load returns the packages matching patterns under dir, loading them
// at most once per Loader.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	l.mu.Lock()
	defer l.mu.Unlock()
	if pkgs, ok := l.cache[key]; ok {
		return pkgs, nil
	}
	pkgs, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	if l.cache == nil {
		l.cache = make(map[string][]*Package)
	}
	l.cache[key] = pkgs
	return pkgs, nil
}

// ParsePackage parses the given Go files (absolute paths) into a
// Package. It is the shared constructor behind LoadPackages, the
// vettool config mode, and the fixture runner.
func ParsePackage(path, dir string, goFiles, otherFiles []string) (*Package, error) {
	pkg := &Package{
		Fset:       token.NewFileSet(),
		Path:       path,
		Dir:        dir,
		OtherFiles: otherFiles,
	}
	for _, name := range goFiles {
		f, err := parser.ParseFile(pkg.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg, nil
}
