package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// importNames maps each import's local name in f to its path. The
// default name is the path's last segment, which is exact for every
// package in this module and close enough for the stdlib.
func importNames(f *ast.File) map[string]string {
	m := make(map[string]string)
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		m[name] = path
	}
	return m
}

// pathMatches reports whether an import path is, or ends at a path
// boundary with, the given suffix ("seedblast/internal/index" matches
// "internal/index").
func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeOf decomposes a call's function into (package-or-receiver
// ident, method/function name). Both may be empty: f() returns
// ("", "f"), x.M() returns ("x", "M"), a.b.M() returns ("", "").
func calleeOf(call *ast.CallExpr) (recv, name string) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return "", fn.Name
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name, fn.Sel.Name
		}
	}
	return "", ""
}

// rootIdent walks a selector/index/star chain (s.a.b[i].c) down to its
// base identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentionsIdent reports whether the expression tree contains an
// identifier with this name.
func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// enclosingFuncs pairs every function body in f — declarations and
// literals — with its body, innermost discoverable by position.
type funcScope struct {
	name string // "" for literals
	node ast.Node
	body *ast.BlockStmt
}

// allFuncs collects every FuncDecl and FuncLit in the file.
func allFuncs(f *ast.File) []funcScope {
	var out []funcScope
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcScope{name: fn.Name.Name, node: fn, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcScope{node: fn, body: fn.Body})
		}
		return true
	})
	return out
}

// localDecls collects the names declared inside body by short variable
// declarations, var/const specs, range clauses, and type switches —
// everything that makes an identifier function-local rather than a
// parameter, receiver, or outer binding.
func localDecls(body *ast.BlockStmt) map[string]bool {
	names := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok.String() == ":=" {
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						names[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range s.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						names[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					names[id.Name] = true
				}
			}
		}
		return true
	})
	return names
}

// splitTrim splits s on sep and trims surrounding space from each
// element.
func splitTrim(s, sep string) []string {
	parts := strings.Split(s, sep)
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
	}
	return parts
}

// typeString renders a syntactic type expression in a normalized form
// for signature comparison (parameter names stripped by the caller).
func typeString(e ast.Expr) string {
	if e == nil {
		return ""
	}
	return types.ExprString(e)
}

// signatureOf renders a function's signature with parameter names
// stripped, for structural comparison across build-tag variants.
func signatureOf(fd *ast.FuncDecl) string {
	params := strings.Join(fieldTypes(fd.Type.Params), ", ")
	results := fieldTypes(fd.Type.Results)
	switch len(results) {
	case 0:
		return "func(" + params + ")"
	case 1:
		return "func(" + params + ") " + results[0]
	default:
		return "func(" + params + ") (" + strings.Join(results, ", ") + ")"
	}
}

// fieldTypes flattens a parameter/result list into one type string per
// field (a, b int → ["int", "int"]).
func fieldTypes(fl *ast.FieldList) []string {
	if fl == nil {
		return nil
	}
	var out []string
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, typeString(f.Type))
		}
	}
	return out
}
