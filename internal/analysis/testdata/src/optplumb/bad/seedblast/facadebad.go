// Package seedblast is the facade layer of the violating optplumb
// fixture: it forwards to a core setter that does not exist and fails
// to re-export the one that does.
package seedblast

import "optplumb/bad/internal/core"

type Options = core.Options
type Option = core.Option

func WithGhost(n int) Option { return core.WithGhost(n) } // want "facade WithGhost forwards to unknown core setter WithGhost"
