// Package cluster is the coordinator layer of the violating optplumb
// fixture: it rebuilds OptionsJSON field by field, silently dropping
// every knob it does not enumerate.
package cluster

import "optplumb/bad/internal/service"

func resubmit(th int) service.OptionsJSON {
	return service.OptionsJSON{ // want "cluster rebuilds OptionsJSON without deadKnob, maxCandidates"
		Threshold: &th,
	}
}
