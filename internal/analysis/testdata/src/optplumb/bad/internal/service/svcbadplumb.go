// Package service is the wire layer of the violating optplumb
// fixture: a decoded field nothing applies, a field flowing onto an
// Options field no setter manages, and knobs with no CLI flag path.
package service

import "optplumb/bad/internal/core"

type OptionsJSON struct {
	Threshold     *int `json:"threshold,omitempty"`     // want "no With. setter manages" "no seedcmp flag path"
	MaxCandidates *int `json:"maxCandidates,omitempty"` // want "no seedcmp flag path"
	DeadKnob      *int `json:"deadKnob,omitempty"`      // want "never applied by buildOptions"
}

func buildOptions(oj OptionsJSON) (core.Options, error) {
	opt := core.DefaultOptions()
	if oj.Threshold != nil {
		opt.Threshold = *oj.Threshold
	}
	if oj.MaxCandidates != nil {
		opt.MaxCandidates = *oj.MaxCandidates
	}
	return opt, nil
}
