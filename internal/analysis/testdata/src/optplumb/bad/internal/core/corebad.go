// Package core is the setter layer of the violating optplumb fixture:
// a setter with no facade re-export, and no setter at all for the
// Threshold field the service layer wires.
package core

type Options struct {
	Threshold     int
	MaxCandidates int
}

type Option func(*Options) error

func WithMaxCandidates(k int) Option { // want "core setter WithMaxCandidates has no facade re-export"
	return func(o *Options) error {
		o.MaxCandidates = k
		return nil
	}
}

func DefaultOptions() Options { return Options{} }
