// Package main is the CLI layer of the violating optplumb fixture: a
// call the facade never exported, and a knob hard-coded instead of
// flag-fed.
package main

import (
	"flag"

	seedblast "optplumb/bad/seedblast"
)

func main() {
	workers := flag.Int("workers", 4, "stage workers")
	flag.Parse()

	opts := []seedblast.Option{
		seedblast.WithWorkers(*workers), // want "which the facade does not re-export"
		seedblast.WithMaxCandidates(8),  // want "which the facade does not re-export" "no flag-derived input"
	}
	_ = opts
}
