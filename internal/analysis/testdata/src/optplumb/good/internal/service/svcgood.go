// Package service is the wire layer of the compliant optplumb
// fixture: every OptionsJSON field is applied by buildOptions, through
// locals and control dependence the taint walk must follow.
package service

import "optplumb/good/internal/core"

type OptionsJSON struct {
	Threshold     *int   `json:"threshold,omitempty"`
	MaxCandidates *int   `json:"maxCandidates,omitempty"`
	SearchSpace   *int64 `json:"searchSpace,omitempty"`
}

func buildOptions(oj OptionsJSON) (core.Options, error) {
	opt := core.DefaultOptions()
	if oj.Threshold != nil {
		opt.Threshold = *oj.Threshold
	}
	if oj.MaxCandidates != nil {
		opt.MaxCandidates = *oj.MaxCandidates
	}
	if oj.SearchSpace != nil {
		sp := core.SearchSpace{DBLen: *oj.SearchSpace}
		opt.SearchSpaceOverride = sp
	}
	return opt, nil
}
