// Package cluster is the coordinator layer of the compliant optplumb
// fixture: the caller's options struct passes through whole, so knobs
// added later survive the fan-out untouched.
package cluster

import "optplumb/good/internal/service"

func forward(oj service.OptionsJSON, send func(service.OptionsJSON)) {
	send(oj)
}
