// Package core is the setter layer of the compliant optplumb fixture.
package core

import "fmt"

type SearchSpace struct{ DBLen int64 }

type Options struct {
	Threshold           int
	MaxCandidates       int
	SearchSpaceOverride SearchSpace
}

type Option func(*Options) error

// WithOptions replaces the whole struct — the bulk escape hatch, not
// per-knob management ("*" in the analyzer's fact).
func WithOptions(o Options) Option {
	return func(dst *Options) error {
		*dst = o
		return nil
	}
}

func WithUngappedThreshold(t int) Option {
	return func(o *Options) error {
		o.Threshold = t
		return nil
	}
}

func WithMaxCandidates(k int) Option {
	return func(o *Options) error {
		if k < 0 {
			return fmt.Errorf("core: negative candidate cap %d", k)
		}
		o.MaxCandidates = k
		return nil
	}
}

func WithSearchSpace(sp SearchSpace) Option {
	return func(o *Options) error {
		o.SearchSpaceOverride = sp
		return nil
	}
}

func DefaultOptions() Options { return Options{} }
