// Package seedblast is the facade layer of the compliant optplumb
// fixture: every core setter has a one-line re-export.
package seedblast

import "optplumb/good/internal/core"

type Options = core.Options
type Option = core.Option
type SearchSpace = core.SearchSpace

func WithOptions(o Options) Option          { return core.WithOptions(o) }
func WithUngappedThreshold(t int) Option    { return core.WithUngappedThreshold(t) }
func WithMaxCandidates(k int) Option        { return core.WithMaxCandidates(k) }
func WithSearchSpace(sp SearchSpace) Option { return core.WithSearchSpace(sp) }
