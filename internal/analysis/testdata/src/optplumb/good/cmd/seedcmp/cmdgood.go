// Package main is the CLI layer of the compliant optplumb fixture:
// each operator knob is a flag that flows into a facade With* call
// (directly or under flag-derived control dependence).
package main

import (
	"flag"

	seedblast "optplumb/good/seedblast"
)

func main() {
	var (
		threshold = flag.Int("threshold", 11, "ungapped cutoff")
		maxCand   = flag.Int("max-candidates", 0, "prefilter top-k (0 disables)")
	)
	flag.Parse()

	opts := []seedblast.Option{
		seedblast.WithUngappedThreshold(*threshold),
	}
	if *maxCand > 0 {
		opts = append(opts, seedblast.WithMaxCandidates(*maxCand))
	}
	_ = opts
}
