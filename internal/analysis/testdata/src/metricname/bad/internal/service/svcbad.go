// Package service is the violating registration side of the
// metricname fixture: an unscheduled family, a grammar violation, and
// a type conflict.
package service

type metricType string

const (
	TypeCounter metricType = "counter"
	TypeGauge   metricType = "gauge"
)

type registry struct{}

func (r *registry) Counter(name, help string)                                 {}
func (r *registry) Gauge(name, help string)                                   {}
func (r *registry) Func(name, help string, typ metricType, fn func() float64) {}

func register(r *registry) {
	cnt := func(name, help string) {
		r.Func("seedservd_"+name, help, TypeCounter, nil)
	}
	cnt("requests_total", "requests accepted")
	cnt("orphan_total", "registered but absent from the schema") // want "missing from loadgen's workerFamilies"
	r.Counter("bad-name", "dashes are outside the grammar")      // want "violates the Prometheus name grammar"
	r.Counter("seedservd_mode", "registered once as a counter")
	r.Gauge("seedservd_mode", "and again as a gauge") // want "registered as gauge here but as counter"
}
