// Package main is the violating schema side of the metricname
// fixture: it lists a family nothing registers.
package main

var workerFamilies = []string{
	"seedservd_requests_total",
	"seedservd_mode",
	"seedservd_ghost_total", // want "not registered by any telemetry call site"
}
