// Package service is the registration side of the metricname fixture:
// helper-closure registrations (the repo's cnt/gau idiom, one level of
// prefix indirection) plus direct registry calls, all consistent with
// the loadgen schema next door.
package service

type metricType string

const (
	TypeCounter metricType = "counter"
	TypeGauge   metricType = "gauge"
)

type registry struct{}

func (r *registry) Counter(name, help string)                                 {}
func (r *registry) Gauge(name, help string)                                   {}
func (r *registry) Func(name, help string, typ metricType, fn func() float64) {}
func (r *registry) Histogram(name, help string, bounds []float64)             {}

func register(r *registry) {
	cnt := func(name, help string) {
		r.Func("seedservd_"+name, help, TypeCounter, nil)
	}
	gau := func(name, help string) {
		r.Func("seedservd_"+name, help, TypeGauge, nil)
	}
	cnt("requests_total", "requests accepted")
	gau("requests_running", "requests in flight")
	r.Histogram("seedservd_request_seconds", "request latency", nil)
	r.Counter("seedservd_errors_total", "requests failed")
}
