// Package main is the schema side of the metricname fixture: the
// workerFamilies contract list, in sync with the service package.
package main

var workerFamilies = []string{
	"seedservd_requests_total",
	"seedservd_requests_running",
	"seedservd_request_seconds",
	"seedservd_errors_total",
}
