// Package pipeline exercises the ctxselect analyzer: goroutines in
// the concurrency-bearing packages must keep channel sends
// cancellable.
package pipeline

import "context"

// fanOutLeaky sends on a bounded channel with no escape hatch: once
// the consumer stops reading, every worker parks forever.
func fanOutLeaky(ctx context.Context, work []int) <-chan int {
	out := make(chan int, 4)
	for _, w := range work {
		go func(w int) {
			out <- w * w // want "without selecting on ctx.Done"
		}(w)
	}
	return out
}

// fanOutCancellable is the required shape: cancellation unblocks the
// send.
func fanOutCancellable(ctx context.Context, work []int) <-chan int {
	out := make(chan int, 4)
	for _, w := range work {
		go func(w int) {
			select {
			case out <- w * w:
			case <-ctx.Done():
			}
		}(w)
	}
	return out
}

// ownerCloses sends on a channel this same goroutine closes: it is
// the owning producer, mirroring the pipeline's sharder stage.
func ownerCloses(work []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, w := range work {
			out <- w
		}
	}()
	return out
}

// sizedToWorkload sends on a buffer sized to the total send count, so
// no send can ever block — the ordered-emitter pattern.
func sizedToWorkload(work []int) <-chan int {
	out := make(chan int, len(work))
	go func() {
		for _, w := range work {
			out <- w
		}
	}()
	return out
}

// selectNoCancel blocks in a select that cancellation cannot reach.
func selectNoCancel(a, b chan int) {
	go func() {
		select {
		case a <- 1: // want "without selecting on ctx.Done"
		case b <- 2: // want "without selecting on ctx.Done"
		}
	}()
}

// nonBlockingSend is a select with a default clause: it never parks.
func nonBlockingSend(a chan int) {
	go func() {
		select {
		case a <- 1:
		default:
		}
	}()
}

// stopChannel accepts any shutdown-named channel as the cancel case.
func stopChannel(work []int, stop <-chan struct{}) <-chan int {
	out := make(chan int, 4)
	go func() {
		for _, w := range work {
			select {
			case out <- w:
			case <-stop:
				return
			}
		}
	}()
	return out
}
