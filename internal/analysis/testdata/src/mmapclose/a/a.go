// Package a exercises the mmapclose analyzer: every index.Open /
// core.OpenTarget result aliases a file mapping and must reach Close
// on all paths or visibly leave the opening function.
package a

import (
	"fmt"

	"seedblast/internal/core"
	"seedblast/internal/index"
)

type holder struct {
	ix *index.Index
}

// leakNeverClosed opens and forgets the mapping.
func leakNeverClosed(path string) int {
	ix, err := index.Open(path) // want "never closed"
	if err != nil {
		return 0
	}
	return ix.SubLen()
}

// discarded drops the handle on the floor.
func discarded(path string) {
	_, _ = index.Open(path) // want "discarded"
}

// leakOnReturn closes the happy path but leaks the strict branch.
func leakOnReturn(path string, strict bool) error {
	ix, err := index.Open(path)
	if err != nil {
		return err
	}
	if strict {
		return fmt.Errorf("strict mode rejects %s", path) // want "return leaks ix"
	}
	return ix.Close()
}

// stashWithoutMarker parks the mapping in a field nobody promised to
// close.
func (h *holder) stashWithoutMarker(path string) error {
	ix, err := index.Open(path)
	if err != nil {
		return err
	}
	h.ix = ix // want "outlives this function"
	return nil
}

// stashWithMarker names the owner, discharging the obligation.
func (h *holder) stashWithMarker(path string) error {
	ix, err := index.Open(path)
	if err != nil {
		return err
	}
	//seedlint:owns -- released by (*holder).close
	h.ix = ix
	return nil
}

// deferredClose is the canonical local use.
func deferredClose(path string) (int, error) {
	ix, err := index.Open(path)
	if err != nil {
		return 0, err
	}
	defer ix.Close()
	return ix.SubLen(), nil
}

// handoff returns the opened target; the caller owns it.
func handoff(path string) (*core.ProteinTarget, error) {
	t, err := core.OpenTarget(path)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// transfer hands the index to another component.
func transfer(path string, sink func(*index.Index)) error {
	ix, err := index.Open(path)
	if err != nil {
		return err
	}
	sink(ix)
	return nil
}

// closeEveryBranch closes explicitly on each path, no defer.
func closeEveryBranch(path string, strict bool) error {
	ix, err := index.Open(path)
	if err != nil {
		return err
	}
	if strict {
		ix.Close()
		return fmt.Errorf("strict mode rejects %s", path)
	}
	return ix.Close()
}

// waived carries a reviewed exemption.
func waived(path string) int {
	ix, err := index.Open(path) //seedlint:allow mmapclose -- process-lifetime mapping, released at exit
	if err != nil {
		return 0
	}
	return ix.SubLen()
}
