// Fixture assembly: covers scanGroup but not missingSym.

TEXT ·scanGroup(SB), 4, $0-32
	RET
