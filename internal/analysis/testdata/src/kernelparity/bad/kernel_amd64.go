package kernels

const hasAsm = true

//go:noescape
func scanGroup(btab *uint8, n int32, out *[8]int32) // want "signature drifted"

func missingSym() // want "no TEXT"

func archOnly() int32 { return 2 } // want "declared only in kernel_amd64.go"
