// Package kernels is the drifted split-kernel fixture: the shared
// dispatcher depends on names the two variants no longer agree on.
package kernels

func scan(btab *uint8, n int) int32 {
	if hasAsm {
		var out [8]int32
		scanGroup(btab, n, &out)
		return out[0]
	}
	return scanPortable(btab, n)
}

func scanPortable(btab *uint8, n int) int32 {
	_ = btab
	return int32(n)
}

// useArch drags archOnly into the shared dispatch surface, so the
// noasm build would fail to compile.
func useArch() int32 {
	return archOnly()
}
