//go:build ignore

package kernels // want "does not exclude amd64"

const hasAsm = false

const noasmOnly = 7 // want "missing from kernel_amd64.go"

func scanGroup(btab *uint8, n int, out *[8]int32) {
	_ = btab
	_ = n
	_ = out
	panic("kernels: asm kernel called on unsupported GOARCH")
}
