// Fixture assembly: symbol shells only, never assembled.

TEXT ·scanGroup(SB), 4, $0-32
	RET

TEXT ·cpuidHelper(SB), 4, $0-1
	RET
