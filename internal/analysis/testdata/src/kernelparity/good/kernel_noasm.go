//go:build !amd64

package kernels

const hasAsm = false

func scanGroup(btab *uint8, n int, out *[lanes]int32) {
	_ = btab
	_ = n
	_ = out
	panic("kernels: asm kernel called on unsupported GOARCH")
}
