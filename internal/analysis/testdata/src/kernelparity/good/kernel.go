// Package kernels is a conforming split-kernel fixture: the amd64 and
// noasm variants declare the same dispatch surface with identical
// signatures, and every assembly declaration has a TEXT symbol.
package kernels

const lanes = 8

func scan(btab *uint8, n int) int32 {
	if hasAsm {
		var out [lanes]int32
		scanGroup(btab, n, &out)
		return out[0]
	}
	return scanPortable(btab, n)
}

func scanPortable(btab *uint8, n int) int32 {
	_ = btab
	return int32(n)
}
