package kernels

const hasAsm = true

// cpuidHelper is arch-only scaffolding: exempt from parity while no
// shared file references it.
func cpuidHelper() bool

//go:noescape
func scanGroup(btab *uint8, n int, out *[lanes]int32)
