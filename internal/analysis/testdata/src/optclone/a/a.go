// Package a exercises the optclone analyzer: With* setters configure
// a value that may share maps and slices with other Options (the
// defaults included), so in-place container mutation is the bug and
// wholesale replacement is the idiom.
package a

// Options is the fixture's option set.
type Options struct {
	Labels map[string]string
	Hosts  []string
	Limit  int
}

// Option is the functional-option form.
type Option func(*Options) error

// WithLabel writes through the shared map.
func WithLabel(k, v string) Option {
	return func(o *Options) error {
		o.Labels[k] = v // want "writes element of o.Labels in place"
		return nil
	}
}

// WithHost appends into the shared backing array.
func WithHost(h string) Option {
	return func(o *Options) error {
		o.Hosts = append(o.Hosts, h) // want "appends to o.Hosts in place"
		return nil
	}
}

// WithoutLabel deletes from the shared map.
func WithoutLabel(k string) Option {
	return func(o *Options) error {
		delete(o.Labels, k) // want "delete on receiver-reachable o.Labels"
		return nil
	}
}

// WithLimit replaces a scalar wholesale: the documented idiom.
func WithLimit(n int) Option {
	return func(o *Options) error {
		o.Limit = n
		return nil
	}
}

// WithLabelCloned copies before writing: clean.
func WithLabelCloned(k, v string) Option {
	return func(o *Options) error {
		m := make(map[string]string, len(o.Labels)+1)
		for kk, vv := range o.Labels {
			m[kk] = vv
		}
		m[k] = v
		o.Labels = m
		return nil
	}
}

// WithHostInPlace is the method form of the same append bug.
func (o *Options) WithHostInPlace(h string) *Options {
	o.Hosts = append(o.Hosts, h) // want "appends to o.Hosts in place"
	return o
}

// WithHostsReplaced swaps the whole slice: clean.
func (o *Options) WithHostsReplaced(hs []string) *Options {
	o.Hosts = hs
	return o
}
