// Package a exercises the errclose analyzer: Close errors on writable
// or mmap-backed resources (and response bodies) carry information
// and must not be dropped on the floor.
package a

import (
	"net/http"
	"os"

	"seedblast/internal/index"
)

// writeLog drops the close error on its failure path: the write error
// wins, but silently.
func writeLog(path string, lines []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(lines); err != nil {
		f.Close() // want "writable file"
		return err
	}
	return f.Close()
}

// churn drops a munmap failure.
func churn(path string) {
	ix, err := index.Open(path)
	if err != nil {
		return
	}
	ix.Close() // want "mmap-backed index"
}

// fetch drops the body close error.
func fetch(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	resp.Body.Close() // want "response body"
	return nil
}

// readOnly closes a read-only file: its close error is noise, exempt.
func readOnly(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	f.Close()
}

// deliberate discards the error visibly, with the reason on record.
func deliberate(path string) {
	ix, err := index.Open(path)
	if err != nil {
		return
	}
	// Inspection only: nothing was written and the caller retries the
	// open on the next cycle, so a munmap failure has no consumer.
	_ = ix.Close()
}

// deferred closes are the caller's idiom for read paths: exempt.
func deferred(path string) error {
	ix, err := index.Open(path)
	if err != nil {
		return err
	}
	defer ix.Close()
	return nil
}

// waived carries a reviewed exemption via directive.
func waived(path string) {
	ix, err := index.Open(path)
	if err != nil {
		return
	}
	ix.Close() //seedlint:allow errclose -- exercises the waiver path
}
