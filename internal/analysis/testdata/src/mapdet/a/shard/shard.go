// Package shard supplies the cross-package map evidence for the
// mapdet fixture: a named map type and a struct with a map field,
// both ranged over from the parent package.
package shard

// Counts is per-backend shard tallies.
type Counts map[string]int

// Stats carries per-stage timings and an ordered name list.
type Stats struct {
	ByStage map[string]float64
	Names   []string
}
