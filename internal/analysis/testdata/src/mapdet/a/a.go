// Package a exercises the mapdet analyzer: range over a map must not
// feed order-sensitive sinks; collect and sort the keys, then range
// the slice.
package a

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"mapdet/a/shard"
)

var totals = map[string]int{}

type registry struct{}

func (r *registry) Counter(name, help string)   {}
func (r *registry) Func(name, help string)      {}
func (r *registry) Histogram(name, help string) {}

// localMapToBuffer streams a local map in random order.
func localMapToBuffer(buf *bytes.Buffer) {
	m := map[string]int{"a": 1}
	for k, v := range m { // want "order-sensitive sink fmt.Fprintf"
		fmt.Fprintf(buf, "%s %d\n", k, v)
	}
}

// pkgVarToWriter streams a package-level map in random order.
func pkgVarToWriter(w io.Writer) {
	for k := range totals { // want "order-sensitive sink w.Write"
		w.Write([]byte(k))
	}
}

// registerFromField registers metric families from a map field
// declared in another package — registration order is exposition
// order, so this is the PR-9 stage-busy flake shape.
func registerFromField(r *registry, st *shard.Stats) {
	for stage := range st.ByStage { // want "order-sensitive sink r.Counter"
		r.Counter("x_"+stage, "per-stage total")
	}
}

// writeCounts ranges a parameter whose named map type lives in
// another package.
func writeCounts(w io.Writer, c shard.Counts) {
	for name := range c { // want "order-sensitive sink fmt.Fprintln"
		fmt.Fprintln(w, name)
	}
}

// sortedKeys is the compliant idiom: collect, sort, range the slice.
func sortedKeys(w io.Writer) {
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// perEntryBuffer writes into per-iteration state only; nothing ordered
// escapes the loop body.
func perEntryBuffer(m map[string]int, out func(string)) {
	for k, v := range m {
		var b bytes.Buffer
		fmt.Fprintf(&b, "%s=%d", k, v)
		out(b.String())
	}
}

// sliceRange ranges a slice, which iterates deterministically.
func sliceRange(w io.Writer, st *shard.Stats) {
	for _, name := range st.Names {
		fmt.Fprintln(w, name)
	}
}

// waived carries a reviewed exemption.
func waived(w io.Writer) {
	//seedlint:allow mapdet -- debug dump, order is irrelevant here
	for k := range totals {
		fmt.Fprintln(w, k)
	}
}

// reasonlessWaiver is inert: the violation is still reported.
func reasonlessWaiver(w io.Writer) {
	//seedlint:allow mapdet
	for k := range totals { // want "order-sensitive sink fmt.Fprintln"
		fmt.Fprintln(w, k)
	}
}
