// Package a exercises the spanend analyzer: every telemetry.StartSpan
// result must reach End() on all paths out of the starting function or
// visibly transfer ownership; a span that never ends silently vanishes
// from the trace.
package a

import (
	"context"
	"fmt"

	"seedblast/internal/telemetry"
)

type stage struct {
	span *telemetry.ActiveSpan
}

// bareStart starts a span nothing can ever end.
func bareStart(ctx context.Context) {
	telemetry.StartSpan(ctx, "step1") // want "dropped"
}

// blankAssign drops the handle explicitly.
func blankAssign(ctx context.Context) {
	_ = telemetry.StartSpan(ctx, "step1") // want "dropped"
}

// neverEnded starts and forgets.
func neverEnded(ctx context.Context) int {
	sp := telemetry.StartSpan(ctx, "step2") // want "never reaches End"
	_ = sp
	return 1
}

// endOnHappyPathOnly loses the span on the strict branch.
func endOnHappyPathOnly(ctx context.Context, strict bool) error {
	sp := telemetry.StartSpan(ctx, "step2")
	if strict {
		return fmt.Errorf("strict mode") // want "return loses span sp"
	}
	sp.End()
	return nil
}

// stashWithoutMarker parks the span in a field nobody promised to end.
func (s *stage) stashWithoutMarker(ctx context.Context) {
	sp := telemetry.StartSpan(ctx, "step2")
	s.span = sp // want "outlives this function"
}

// stashWithMarker names the owner, discharging the obligation.
func (s *stage) stashWithMarker(ctx context.Context) {
	sp := telemetry.StartSpan(ctx, "step2")
	//seedlint:owns -- ended by (*stage).finish
	s.span = sp
}

// deferredEnd is the canonical use.
func deferredEnd(ctx context.Context) int {
	sp := telemetry.StartSpan(ctx, "step3")
	defer sp.End()
	return 1
}

// endEveryBranch ends explicitly on each path, no defer.
func endEveryBranch(ctx context.Context, strict bool) error {
	sp := telemetry.StartSpan(ctx, "step3")
	if strict {
		sp.End()
		return fmt.Errorf("strict mode")
	}
	sp.End()
	return nil
}

// handoff returns the started span; the caller owns it.
func handoff(ctx context.Context) *telemetry.ActiveSpan {
	sp := telemetry.StartSpan(ctx, "step3")
	return sp
}

// transfer hands the span to another component.
func transfer(ctx context.Context, sink func(*telemetry.ActiveSpan)) {
	sp := telemetry.StartSpan(ctx, "step3")
	sink(sp)
}

// waived carries a reviewed exemption.
func waived(ctx context.Context) {
	sp := telemetry.StartSpan(ctx, "boot") //seedlint:allow spanend -- process-lifetime span, ended by the exit hook
	_ = sp
}

// reasonlessWaiver is inert: the violation is still reported (and the
// directive analyzer flags the bare waiver separately).
func reasonlessWaiver(ctx context.Context) {
	sp := telemetry.StartSpan(ctx, "step4") //seedlint:allow spanend // want "never reaches End"
	_ = sp
}
