// Package a exercises the directive analyzer: seedlint comments must
// use a known verb, name registered analyzers, and carry the
// mandatory "-- reason" tail.
package a

func directives() int {
	x := 1 //seedlint:allow mmapclose // want "missing the '-- reason' tail"
	y := 2 //seedlint:allow nosuchanalyzer -- the analyzer name is misspelled // want "unknown analyzer .nosuchanalyzer."
	z := 3 //seedlint:frobnicate stuff // want "unknown seedlint directive .frobnicate."
	w := 4 //seedlint:owns // want "seedlint:owns directive missing"
	return x + y + z + w
}

func wellFormed() int {
	x := 1 //seedlint:allow errclose -- reviewed: the close error is reported by the caller
	y := 2 //seedlint:owns -- released by (*holder).close
	z := 3 //seedlint:allow mmapclose, errclose -- two analyzers, one waiver
	return x + y + z
}
