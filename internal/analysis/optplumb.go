package analysis

import (
	"fmt"
	"go/ast"
	"reflect"
	"sort"
	"strings"
)

// OptPlumb enforces the five-layer option plumbing contract every
// knob PR since the v2 API has hand-threaded: a search option lives in
// internal/core as a With* setter writing an Options field, is
// re-exported by the root facade, decoded from the service's
// OptionsJSON wire struct and applied by buildOptions, carried through
// the cluster coordinator unmodified, and (for operator-facing knobs)
// registered as a cmd/seedcmp flag that flows into the facade call.
// The analyzer cross-parses all five layers into facts and reports any
// knob missing from a layer — the review-vigilance bug class that
// WithMaxCandidates and WithStep2Kernel (which touch all five layers)
// calibrate it against.
//
// The dataflow is syntactic but real: buildOptions is analyzed with
// function-local taint tracking (oj.MaxEValue → g → opt.Gapped;
// ParseKernel(oj.Kernel) → kernel → opt.Step2Kernel) including
// control dependence (switch oj.Engine { ... opt.Engine = ... }), and
// cmd/seedcmp's With* calls are traced back to flag registrations the
// same way. WithOptions (whole-struct replacement) is the bulk escape
// hatch, not per-knob management, so it never satisfies a field check.
var OptPlumb = &Analyzer{
	Name: "optplumb",
	Doc: "every search knob must span its layers: core With* setter, facade re-export, " +
		"OptionsJSON wire field applied by buildOptions, cluster passthrough, seedcmp flag",
	Collect:  collectOptPlumb,
	Finalize: finalizeOptPlumb,
}

// cliExempt names the wire options deliberately absent from seedcmp,
// each with the reason an operator cannot (or must not) set it there.
var cliExempt = map[string]string{
	"n":           "neighbourhood width is tuned through the service API, not the CLI",
	"workers":     "seedcmp derives stage workers from -stream-workers and the engine",
	"searchSpace": "volume context is set by the cluster coordinator, never by an operator",
	"geneticCode": "seedcmp passes -code to the genome target constructor, not the searcher",
}

func collectOptPlumb(pass *Pass) ([]Fact, error) {
	switch {
	case pathMatches(pass.Path, "internal/core"):
		return coreSetterFacts(pass), nil
	case isFacadePath(pass.Path):
		return facadeFacts(pass), nil
	case pathMatches(pass.Path, "internal/service"):
		return serviceFacts(pass), nil
	case pathMatches(pass.Path, "internal/cluster"):
		return clusterFacts(pass), nil
	case pathMatches(pass.Path, "cmd/seedcmp"):
		return seedcmpFacts(pass), nil
	}
	return nil, nil
}

// isFacadePath recognizes the root facade package ("seedblast" in the
// real module; any path ending in /seedblast in fixture trees).
func isFacadePath(path string) bool {
	return path == "seedblast" || strings.HasSuffix(path, "/seedblast")
}

// isOptionSetter reports whether fd is a With* functional option
// constructor: one result of type Option.
func isOptionSetter(fd *ast.FuncDecl) bool {
	if !strings.HasPrefix(fd.Name.Name, "With") || fd.Type.Results == nil {
		return false
	}
	results := fieldTypes(fd.Type.Results)
	return len(results) == 1 && results[0] == "Option"
}

// coreSetterFacts records each With* setter and the top-level Options
// fields its closure writes ("*" for whole-struct replacement).
func coreSetterFacts(pass *Pass) []Fact {
	var facts []Fact
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isOptionSetter(fd) || fd.Body == nil {
				continue
			}
			lit := returnedFuncLit(fd.Body)
			if lit == nil {
				continue
			}
			param := firstParamName(lit.Type)
			fields := make(map[string]bool)
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					if star, ok := lhs.(*ast.StarExpr); ok {
						if id, ok := star.X.(*ast.Ident); ok && id.Name == param {
							fields["*"] = true
						}
						continue
					}
					if f := topFieldOf(lhs, param); f != "" {
						fields[f] = true
					}
				}
				return true
			})
			facts = append(facts, Fact{
				Pkg: pass.Path, Pos: pass.Fset.Position(fd.Name.Pos()),
				Kind: "setter", Name: fd.Name.Name,
				Attrs: map[string]string{"fields": joinSorted(fields)},
			})
		}
	}
	return facts
}

// facadeFacts records each root-package With* re-export and the core
// setter it forwards to.
func facadeFacts(pass *Pass) []Fact {
	var facts []Fact
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isOptionSetter(fd) || fd.Body == nil {
				continue
			}
			target := ""
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if target != "" {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if _, name := calleeOf(call); strings.HasPrefix(name, "With") {
						target = name
						return false
					}
				}
				return true
			})
			facts = append(facts, Fact{
				Pkg: pass.Path, Pos: pass.Fset.Position(fd.Name.Pos()),
				Kind: "reexport", Name: fd.Name.Name,
				Attrs: map[string]string{"target": target},
			})
		}
	}
	return facts
}

// returnedFuncLit digs the functional option's closure out of the
// setter body (the repo idiom is `return func(o *Options) error {...}`).
func returnedFuncLit(body *ast.BlockStmt) *ast.FuncLit {
	var lit *ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit != nil {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			if fl, ok := ret.Results[0].(*ast.FuncLit); ok {
				lit = fl
				return false
			}
		}
		return true
	})
	return lit
}

func firstParamName(ft *ast.FuncType) string {
	if ft.Params == nil || len(ft.Params.List) == 0 || len(ft.Params.List[0].Names) == 0 {
		return ""
	}
	return ft.Params.List[0].Names[0].Name
}

// topFieldOf returns the field selected directly on the named root in
// a selector chain (o.Gapped.MaxEValue with root o → "Gapped"), or "".
func topFieldOf(e ast.Expr, root string) string {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == root {
				return x.Sel.Name
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// serviceFacts records the OptionsJSON wire fields and the dataflow
// buildOptions establishes from each onto core Options fields.
func serviceFacts(pass *Pass) []Fact {
	var facts []Fact
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != "OptionsJSON" {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						tag := jsonTagName(f)
						if tag == "" {
							continue
						}
						for _, id := range f.Names {
							facts = append(facts, Fact{
								Pkg: pass.Path, Pos: pass.Fset.Position(id.Pos()),
								Kind: "wirefield", Name: tag,
								Attrs: map[string]string{"goname": id.Name},
							})
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name != "buildOptions" || d.Body == nil {
					continue
				}
				facts = append(facts, buildOptionsFlows(pass, d)...)
			}
		}
	}
	return facts
}

// jsonTagName extracts the json tag's name segment from a struct field.
func jsonTagName(f *ast.Field) string {
	if f.Tag == nil {
		return ""
	}
	tag := reflect.StructTag(strings.Trim(f.Tag.Value, "`")).Get("json")
	name, _, _ := strings.Cut(tag, ",")
	if name == "-" {
		return ""
	}
	return name
}

// flowState is the taint-tracking state for one buildOptions-style
// function: which wire fields each local carries, and which Options
// fields each wire field reaches.
type flowState struct {
	param string                     // the OptionsJSON parameter name
	ret   map[string]bool            // returned idents (the Options value under construction)
	taint map[string]map[string]bool // local → wire gonames it carries
	flows map[string]map[string]bool // wire goname → Options fields reached
}

// buildOptionsFlows runs the taint walk over buildOptions and emits
// one wireflow fact per wire field that reaches an Options field.
func buildOptionsFlows(pass *Pass, fd *ast.FuncDecl) []Fact {
	fs := &flowState{
		param: firstParamName(fd.Type),
		ret:   make(map[string]bool),
		taint: make(map[string]map[string]bool),
		flows: make(map[string]map[string]bool),
	}
	if fs.param == "" {
		return nil
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, e := range ret.Results {
				if id, ok := e.(*ast.Ident); ok && id.Name != "nil" {
					fs.ret[id.Name] = true
				}
			}
		}
		return true
	})
	fs.walkStmts(fd.Body.List, nil)

	var facts []Fact
	for wire, fields := range fs.flows {
		facts = append(facts, Fact{
			Pkg: pass.Path, Pos: pass.Fset.Position(fd.Name.Pos()),
			Kind: "wireflow", Name: wire,
			Attrs: map[string]string{"opts": joinSorted(fields)},
		})
	}
	return facts
}

// wireRefs collects the wire gonames an expression depends on: direct
// oj.Field selections plus the taints of every mentioned local.
func (fs *flowState) wireRefs(e ast.Expr) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == fs.param {
				out[sel.Sel.Name] = true
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			for f := range fs.taint[id.Name] {
				out[f] = true
			}
		}
		return true
	})
	return out
}

func mergeInto(dst map[string]bool, srcs ...map[string]bool) map[string]bool {
	if dst == nil {
		dst = make(map[string]bool)
	}
	for _, src := range srcs {
		for k := range src {
			dst[k] = true
		}
	}
	return dst
}

// walkStmts processes statements in order under the given control
// dependence (wire fields mentioned by enclosing if/switch conditions).
func (fs *flowState) walkStmts(stmts []ast.Stmt, cond map[string]bool) {
	for _, s := range stmts {
		fs.walkStmt(s, cond)
	}
}

func (fs *flowState) walkStmt(s ast.Stmt, cond map[string]bool) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		fs.assign(x.Lhs, x.Rhs, cond)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, id := range vs.Names {
					lhs[i] = id
				}
				fs.assign(lhs, vs.Values, cond)
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			fs.walkStmt(x.Init, cond)
		}
		c := mergeInto(nil, cond, fs.wireRefs(x.Cond))
		fs.walkStmts(x.Body.List, c)
		if x.Else != nil {
			fs.walkStmt(x.Else, c)
		}
	case *ast.SwitchStmt:
		if x.Init != nil {
			fs.walkStmt(x.Init, cond)
		}
		c := cond
		if x.Tag != nil {
			c = mergeInto(nil, cond, fs.wireRefs(x.Tag))
		}
		for _, clause := range x.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c = mergeInto(c, fs.wireRefs(e))
				}
				fs.walkStmts(cc.Body, c)
			}
		}
	case *ast.BlockStmt:
		fs.walkStmts(x.List, cond)
	case *ast.ForStmt:
		fs.walkStmts(x.Body.List, cond)
	case *ast.RangeStmt:
		c := mergeInto(nil, cond, fs.wireRefs(x.X))
		fs.walkStmts(x.Body.List, c)
	}
}

// assign applies one (possibly multi-value) assignment to the state.
func (fs *flowState) assign(lhs, rhs []ast.Expr, cond map[string]bool) {
	for i, l := range lhs {
		r := rhs[0]
		if len(rhs) == len(lhs) {
			r = rhs[i]
		}
		refs := mergeInto(nil, cond, fs.wireRefs(r))
		if len(refs) == 0 {
			continue
		}
		if id, ok := l.(*ast.Ident); ok {
			if fs.ret[id.Name] {
				// Whole-value store to the result: unattributable.
				for w := range refs {
					fs.flows[w] = mergeInto(fs.flows[w], map[string]bool{"*": true})
				}
				continue
			}
			fs.taint[id.Name] = mergeInto(fs.taint[id.Name], refs)
			continue
		}
		root := rootIdent(l)
		if root == nil {
			continue
		}
		if fs.ret[root.Name] {
			field := topFieldOf(l, root.Name)
			if field == "" {
				continue
			}
			for w := range refs {
				fs.flows[w] = mergeInto(fs.flows[w], map[string]bool{field: true})
			}
			continue
		}
		// Writing a field of a local taints the local as a whole.
		fs.taint[root.Name] = mergeInto(fs.taint[root.Name], refs)
	}
}

// clusterFacts records how internal/cluster carries the wire options:
// whole-struct passthrough (a parameter of type service.OptionsJSON
// forwarded as-is) versus field-enumerating rebuilds, which silently
// drop any knob added later.
func clusterFacts(pass *Pass) []Fact {
	var facts []Fact
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Type.Params == nil {
					return true
				}
				for _, f := range x.Type.Params.List {
					if strings.HasSuffix(typeString(f.Type), "OptionsJSON") {
						facts = append(facts, Fact{
							Pkg: pass.Path, Pos: pass.Fset.Position(x.Name.Pos()),
							Kind: "passthrough", Name: x.Name.Name,
						})
					}
				}
			case *ast.CompositeLit:
				if !strings.HasSuffix(typeString(x.Type), "OptionsJSON") {
					return true
				}
				fields := make(map[string]bool)
				for _, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							fields[id.Name] = true
						}
					}
				}
				facts = append(facts, Fact{
					Pkg: pass.Path, Pos: pass.Fset.Position(x.Pos()),
					Kind: "partialbuild", Name: "OptionsJSON",
					Attrs: map[string]string{"fields": joinSorted(fields)},
				})
			}
			return true
		})
	}
	return facts
}

// seedcmpFacts traces each facade With* call in cmd/seedcmp back to
// flag registrations, via local taint and control dependence.
func seedcmpFacts(pass *Pass) []Fact {
	var facts []Fact
	for _, file := range pass.Files {
		cs := &cliState{
			pass:    pass,
			imports: importNames(file),
			tainted: make(map[string]bool),
			facts:   &facts,
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				cs.walkStmts(fd.Body.List, false)
			}
		}
	}
	return facts
}

type cliState struct {
	pass    *Pass
	imports map[string]string
	tainted map[string]bool // locals derived from flag registrations
	facts   *[]Fact
}

// flagDerived reports whether the expression depends on a flag: it
// contains a flag.* registration call or mentions a tainted local.
func (cs *cliState) flagDerived(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, _ := calleeOf(call); recv == "flag" {
				found = true
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && cs.tainted[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// emitCalls records every facade With* call inside the node with its
// flag ancestry (argument taint or enclosing control dependence).
func (cs *cliState) emitCalls(n ast.Node, cond bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !strings.HasPrefix(sel.Sel.Name, "With") {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if path, imported := cs.imports[recv.Name]; !imported || !isFacadePath(path) {
			return true
		}
		flagged := cond
		for _, arg := range call.Args {
			if cs.flagDerived(arg) {
				flagged = true
			}
		}
		*cs.facts = append(*cs.facts, Fact{
			Pkg: cs.pass.Path, Pos: cs.pass.Fset.Position(call.Pos()),
			Kind: "cliwire", Name: sel.Sel.Name,
			Attrs: map[string]string{"flag": fmt.Sprintf("%t", flagged)},
		})
		return true
	})
}

func (cs *cliState) walkStmts(stmts []ast.Stmt, cond bool) {
	for _, s := range stmts {
		cs.walkStmt(s, cond)
	}
}

func (cs *cliState) walkStmt(s ast.Stmt, cond bool) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		cs.emitCalls(x, cond)
		flagged := cond
		for _, r := range x.Rhs {
			if cs.flagDerived(r) {
				flagged = true
			}
		}
		if flagged {
			for _, l := range x.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					cs.tainted[id.Name] = true
				}
			}
		}
	case *ast.DeclStmt:
		cs.emitCalls(x, cond)
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				flagged := cond
				for _, v := range vs.Values {
					if cs.flagDerived(v) {
						flagged = true
					}
				}
				if flagged {
					for _, id := range vs.Names {
						cs.tainted[id.Name] = true
					}
				}
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			cs.walkStmt(x.Init, cond)
		}
		c := cond || cs.flagDerived(x.Cond)
		cs.walkStmts(x.Body.List, c)
		if x.Else != nil {
			cs.walkStmt(x.Else, c)
		}
	case *ast.SwitchStmt:
		if x.Init != nil {
			cs.walkStmt(x.Init, cond)
		}
		c := cond
		if x.Tag != nil && cs.flagDerived(x.Tag) {
			c = true
		}
		for _, clause := range x.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				cs.walkStmts(cc.Body, c)
			}
		}
	case *ast.BlockStmt:
		cs.walkStmts(x.List, cond)
	case *ast.ForStmt:
		cs.walkStmts(x.Body.List, cond)
	case *ast.RangeStmt:
		cs.walkStmts(x.Body.List, cond)
	default:
		cs.emitCalls(s, cond)
	}
}

// finalizeOptPlumb runs the layer-pair contracts for every pair whose
// packages are in view, so `seedlint ./internal/service/` checks what
// it can see and the whole-module run checks everything.
func finalizeOptPlumb(u *Unit) error {
	setters := make(map[string]Fact)
	for _, f := range u.FactsOf("setter") {
		setters[f.Name] = f
	}
	reexports := make(map[string]Fact)
	for _, f := range u.FactsOf("reexport") {
		reexports[f.Name] = f
	}
	wirefields := u.FactsOf("wirefield")
	wirefieldByGoname := make(map[string]Fact)
	for _, f := range wirefields {
		wirefieldByGoname[f.Attrs["goname"]] = f
	}
	flows := make(map[string]map[string]bool) // goname → Options fields
	for _, f := range u.FactsOf("wireflow") {
		flows[f.Name] = fieldSet(f.Attrs["opts"])
	}
	cliwires := u.FactsOf("cliwire")

	haveCore := len(setters) > 0
	haveFacade := len(reexports) > 0
	haveService := len(wirefields) > 0
	haveCLI := u.Pkg("cmd/seedcmp") != nil

	// Layer pair 1: core ↔ facade. Every setter is re-exported; every
	// re-export forwards to a real setter.
	if haveCore && haveFacade {
		for _, s := range sortedFacts(setters) {
			if _, ok := reexports[s.Name]; !ok {
				u.ReportAt(s.Pkg, s.Pos, "core setter %s has no facade re-export in the root package", s.Name)
			}
		}
		for _, r := range sortedFacts(reexports) {
			if r.Attrs["target"] == "" {
				continue
			}
			if _, ok := setters[r.Attrs["target"]]; !ok {
				u.ReportAt(r.Pkg, r.Pos, "facade %s forwards to unknown core setter %s", r.Name, r.Attrs["target"])
			}
		}
	}

	// Layer 2: wire → buildOptions. A decoded field nothing applies is
	// a knob the operator can set with no effect.
	if haveService {
		for _, w := range wirefields {
			if len(flows[w.Attrs["goname"]]) == 0 {
				u.ReportAt(w.Pkg, w.Pos, "wire option %q is decoded into OptionsJSON but never applied by buildOptions", w.Name)
			}
		}
	}

	// Layer pair 3: wire → core. Every Options field the wire reaches
	// must be managed by a dedicated With* setter (WithOptions's
	// whole-struct "*" does not count).
	if haveService && haveCore {
		for _, w := range wirefields {
			for _, field := range sortedKeys(flows[w.Attrs["goname"]]) {
				if field == "*" {
					continue
				}
				if !fieldHasSetter(setters, field) {
					u.ReportAt(w.Pkg, w.Pos,
						"wire option %q sets core Options field %s, which no With* setter manages; add the setter and its facade re-export",
						w.Name, field)
				}
			}
		}
	}

	// Layer 4: cluster. A field-enumerating OptionsJSON rebuild drops
	// every knob added after it; the contract is whole-struct
	// passthrough (or at least a complete enumeration).
	if haveService {
		for _, p := range u.FactsOf("partialbuild") {
			built := fieldSet(p.Attrs["fields"])
			var missing []string
			for _, w := range wirefields {
				if !built[w.Attrs["goname"]] {
					missing = append(missing, w.Name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				u.ReportAt(p.Pkg, p.Pos,
					"cluster rebuilds OptionsJSON without %s; forward the caller's options struct whole so new knobs pass through",
					strings.Join(missing, ", "))
			}
		}
	}

	// Layer 5: seedcmp → facade. Every CLI With* call must target a
	// real facade export and trace back to a flag registration.
	if haveFacade {
		for _, c := range cliwires {
			if _, ok := reexports[c.Name]; !ok {
				u.ReportAt(c.Pkg, c.Pos, "seedcmp calls %s, which the facade does not re-export", c.Name)
			}
		}
	}
	for _, c := range cliwires {
		if c.Attrs["flag"] != "true" {
			u.ReportAt(c.Pkg, c.Pos, "seedcmp calls %s with no flag-derived input; register the flag or waive with a reason", c.Name)
		}
	}

	// Closing the loop: every wire option must be reachable from a
	// seedcmp flag through some setter writing its Options fields,
	// unless the exemption table says why not.
	if haveCore && haveService && haveFacade && haveCLI {
		cliSetters := make(map[string]bool)
		for _, c := range cliwires {
			if c.Attrs["flag"] == "true" {
				cliSetters[c.Name] = true
			}
		}
		for _, w := range wirefields {
			if _, exempt := cliExempt[w.Name]; exempt {
				continue
			}
			fields := flows[w.Attrs["goname"]]
			if len(fields) == 0 {
				continue // already reported by the buildOptions check
			}
			if !cliReaches(setters, cliSetters, fields) {
				u.ReportAt(w.Pkg, w.Pos,
					"wire option %q has no seedcmp flag path (no flag-fed With* call writes Options.%s); plumb the flag or add a cliExempt entry with the reason",
					w.Name, strings.Join(sortedKeys(fields), "/"))
			}
		}
	}
	return nil
}

// fieldHasSetter reports whether any dedicated setter writes the
// Options field.
func fieldHasSetter(setters map[string]Fact, field string) bool {
	for _, s := range setters {
		fields := fieldSet(s.Attrs["fields"])
		if fields["*"] {
			continue
		}
		if fields[field] {
			return true
		}
	}
	return false
}

// cliReaches reports whether some flag-fed CLI setter writes any of
// the wire option's Options fields.
func cliReaches(setters map[string]Fact, cliSetters map[string]bool, fields map[string]bool) bool {
	for name := range cliSetters {
		s, ok := setters[name]
		if !ok {
			continue
		}
		sf := fieldSet(s.Attrs["fields"])
		if sf["*"] {
			continue
		}
		for f := range fields {
			if sf[f] {
				return true
			}
		}
	}
	return false
}

func fieldSet(joined string) map[string]bool {
	out := make(map[string]bool)
	for _, f := range splitTrim(joined, ",") {
		if f != "" {
			out[f] = true
		}
	}
	return out
}

func joinSorted(set map[string]bool) string {
	return strings.Join(sortedKeys(set), ",")
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedFacts returns the map's facts in name order, so findings come
// out deterministically.
func sortedFacts(m map[string]Fact) []Fact {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Fact, 0, len(names))
	for _, n := range names {
		out = append(out, m[n])
	}
	return out
}
