package analysis

import (
	"go/ast"
	"strings"
)

// OptClone enforces the copy-on-write contract on option setters: a
// With* setter configures a fresh Options value (the Searcher applies
// options over a private copy of DefaultOptions), so writing *through*
// a map or slice already reachable from the receiver mutates every
// other Options that shares the backing store — including the package
// defaults. Wholesale replacement (o.X = v) is the documented idiom;
// in-place element writes, append-in-place, delete, clear, and copy
// into receiver-reachable containers are the bug.
//
// The analyzer applies to functions named With* that configure an
// options value: methods on an Options-typed receiver, and the
// functional-option form — a With* constructor returning a closure
// whose parameter is Options-typed.
var OptClone = &Analyzer{
	Name: "optclone",
	Doc: "With* option setters must not mutate receiver-reachable maps/slices in place; " +
		"replace wholesale or clone before writing (copy-on-write contract)",
	Run: runOptClone,
}

func runOptClone(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !strings.HasPrefix(fd.Name.Name, "With") || fd.Body == nil {
				continue
			}
			// Method form: receiver of an Options-ish type.
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if name, ok := optionsParam(fd.Recv.List[0]); ok {
					checkSetterBody(pass, fd.Body, name)
				}
			}
			// Functional-option form: closures with an Options-typed
			// parameter anywhere inside the constructor.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				for _, f := range lit.Type.Params.List {
					if name, ok := optionsParam(f); ok {
						checkSetterBody(pass, lit.Body, name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// optionsParam reports the bound name of a field whose type names an
// Options struct (Options, *Options, core.Options, ...).
func optionsParam(f *ast.Field) (string, bool) {
	if len(f.Names) != 1 {
		return "", false
	}
	t := f.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	name := ""
	switch x := t.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	}
	if strings.HasSuffix(name, "Options") {
		return f.Names[0].Name, true
	}
	return "", false
}

// checkSetterBody flags in-place mutations of containers reachable
// from recv inside one setter body.
func checkSetterBody(pass *Pass, body *ast.BlockStmt, recv string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				// o.X[k] = v (also o.X[i].Y = v): an element write into
				// a shared container.
				if idx := indexedThrough(lhs, recv); idx != nil {
					pass.Reportf(x.Pos(), "With* setter writes element of %s in place; shared Options see the mutation — clone the container first", renderExpr(idx))
					continue
				}
				// o.X = append(o.X, ...): append into the shared
				// backing array.
				rhs := x.Rhs[0]
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				if call, ok := rhs.(*ast.CallExpr); ok {
					if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
						if receiverRooted(call.Args[0], recv) {
							pass.Reportf(x.Pos(), "With* setter appends to %s in place; a shared backing array aliases the write — append to a clone", renderExpr(call.Args[0]))
						}
					}
				}
			}
		case *ast.CallExpr:
			if fn, ok := x.Fun.(*ast.Ident); ok && len(x.Args) > 0 && receiverRooted(x.Args[0], recv) {
				switch fn.Name {
				case "delete", "clear":
					pass.Reportf(x.Pos(), "With* setter calls %s on receiver-reachable %s; shared Options see the mutation — clone first", fn.Name, renderExpr(x.Args[0]))
				case "copy":
					pass.Reportf(x.Pos(), "With* setter copies into receiver-reachable %s; shared Options see the mutation — allocate a fresh slice", renderExpr(x.Args[0]))
				}
			}
		}
		return true
	})
}

// indexedThrough returns the container expression when e writes
// through an index rooted at recv (o.X[k], o.X[i].Y), or nil.
func indexedThrough(e ast.Expr, recv string) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			if receiverRooted(x.X, recv) {
				return x.X
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// receiverRooted reports whether e is a plain selector chain rooted at
// recv (o.X, o.X.Y) — not a call result, which would be a fresh value.
func receiverRooted(e ast.Expr, recv string) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name == recv
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

// renderExpr prints a short label for a selector chain.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[...]"
	}
	return "container"
}
