package analysis

// Directive validates the seedlint directive comments themselves: a
// waiver that names a misspelled analyzer or omits its reason silently
// suppresses nothing, which is worse than either working or failing
// loudly. Every //seedlint:... comment must use a known verb (allow,
// owns), carry the "-- reason" tail, and — for allow — name only
// analyzers that exist in the registry.
var Directive = &Analyzer{
	Name: "directive",
	Doc: "seedlint directives must use a known verb, name registered analyzers, " +
		"and carry the mandatory '-- reason' tail (a bare waiver suppresses nothing)",
}

// runDirective consults ByName, which reads Analyzers, which contains
// Directive — wiring Run here keeps the initializers acyclic.
func init() { Directive.Run = runDirective }

func runDirective(pass *Pass) error {
	pass.buildDirectives()
	for _, ds := range pass.directives {
		for _, d := range ds {
			switch d.verb {
			case "allow":
				for _, name := range splitNames(d.args) {
					if ByName(name) == nil {
						pass.reportAt(d.pos, "seedlint:allow names unknown analyzer %q", name)
					}
				}
				if d.reason == "" {
					pass.reportAt(d.pos, "seedlint:allow directive missing the '-- reason' tail; a bare waiver suppresses nothing")
				}
			case "owns":
				if d.reason == "" {
					pass.reportAt(d.pos, "seedlint:owns directive missing the '-- reason' tail naming who closes the resource")
				}
			default:
				pass.reportAt(d.pos, "unknown seedlint directive %q (allow, owns)", d.verb)
			}
		}
	}
	return nil
}

// splitNames splits a comma-separated analyzer list, dropping empties.
func splitNames(args string) []string {
	var out []string
	for _, name := range splitTrim(args, ",") {
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}
