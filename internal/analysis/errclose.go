package analysis

import (
	"go/ast"
)

// ErrClose flags Close() calls whose error silently vanishes on
// resources where the error carries real information: writable files
// (a failed close is a failed write — the data may not be on disk),
// mmap-backed indexes and targets (a failed munmap leaks address
// space invisibly), and HTTP response bodies (whose close errors
// surface broken connection reuse). Plain read-only closes are exempt:
// their close error is noise.
//
// Checking the error, deliberately discarding it (_ = f.Close() with a
// comment saying why), or deferring the close all pass; a bare
// statement-position Close() on a tracked resource does not.
var ErrClose = &Analyzer{
	Name: "errclose",
	Doc: "Close errors on writable or mmap-backed resources (and response bodies) must be " +
		"checked or deliberately discarded; a bare Close() statement drops them",
	Run: runErrClose,
}

// closeOrigins maps constructor (import path suffix, func) pairs to
// the resource description used in diagnostics. Only resources whose
// close error matters appear here.
var closeOrigins = []struct {
	pathSuffix string
	fn         string
	what       string
}{
	{"os", "Create", "writable file"},
	{"os", "OpenFile", "writable file"},
	{"os", "CreateTemp", "writable file"},
	{"internal/index", "Open", "mmap-backed index"},
	{"internal/core", "OpenTarget", "mmap-backed target"},
	{"seedblast", "OpenTarget", "mmap-backed target"},
}

func runErrClose(pass *Pass) error {
	for _, file := range pass.Files {
		imports := importNames(file)
		for _, scope := range allFuncs(file) {
			checkScopeCloses(pass, scope.body, imports, pass.Path)
		}
	}
	return nil
}

// checkScopeCloses tracks tracked-resource variables assigned in one
// function body and flags bare Close statements on them. The walk
// stays within this body but skips nested function literals (they are
// separate scopes in allFuncs).
func checkScopeCloses(pass *Pass, body *ast.BlockStmt, imports map[string]string, pkgPath string) {
	origins := make(map[string]string) // var name → resource description
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := x.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			what, ok := closeOrigin(call, imports, pkgPath)
			if !ok {
				return true
			}
			if v, ok := x.Lhs[0].(*ast.Ident); ok && v.Name != "_" {
				origins[v.Name] = what
			}
		case *ast.ExprStmt:
			call, ok := x.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
				return true
			}
			// resp.Body.Close() and friends: response bodies by shape.
			if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
				pass.Reportf(x.Pos(), "response body Close error is dropped; check it or discard deliberately (_ = %s.Close())", renderExpr(sel.X))
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if what, tracked := origins[id.Name]; tracked {
					pass.Reportf(x.Pos(), "Close error on %s %s is dropped; a failed close is invisible — check it, log it, or discard deliberately (_ = %s.Close())", what, id.Name, id.Name)
				}
			}
		}
		return true
	}
	for _, stmt := range body.List {
		ast.Inspect(stmt, walk)
	}
}

// closeOrigin matches a call against the tracked constructors.
func closeOrigin(call *ast.CallExpr, imports map[string]string, pkgPath string) (string, bool) {
	recv, name := calleeOf(call)
	for _, o := range closeOrigins {
		if name != o.fn {
			continue
		}
		if recv == "" {
			if pathMatches(pkgPath, o.pathSuffix) {
				return o.what, true
			}
			continue
		}
		if path, ok := imports[recv]; ok && pathMatches(path, o.pathSuffix) {
			return o.what, true
		}
	}
	return "", false
}
