package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

func TestKernelParity(t *testing.T) {
	analysistest.Run(t, analysis.KernelParity, "kernelparity/good", "kernelparity/bad")
}
