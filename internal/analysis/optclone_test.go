package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

func TestOptClone(t *testing.T) {
	analysistest.Run(t, analysis.OptClone, "optclone/a")
}
