package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
)

// TestRepoIsClean runs every analyzer over the repository itself: the
// tree must stay warning-free so seedlint can gate CI at exit 0.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads every package via go list")
	}
	pkgs, err := analysis.LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("go list returned no packages")
	}
	findings, err := analysis.RunAll(analysis.Analyzers, pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}
