// Package analysis is seedlint's analysis framework: a deliberately
// small, dependency-free reimplementation of the golang.org/x/tools
// go/analysis API shape (Analyzer, Pass, Diagnostic) on top of the
// standard library's go/ast and go/parser.
//
// The engine carries invariants no off-the-shelf tool checks — mmap
// lifetimes, goroutine cancellation discipline, asm/noasm kernel
// parity, copy-on-write option setters — and this package holds one
// analyzer per invariant (see Analyzers). The build environment
// vendors no third-party modules, so instead of depending on x/tools
// the framework mirrors its surface closely enough that the analyzers
// would port to a real multichecker by swapping the import.
//
// Analyzers are purely syntactic: they parse, they do not type-check.
// Each one is calibrated against this repository's idioms (see the
// per-analyzer files), and every diagnostic can be waived in place
// with a directive comment:
//
//	//seedlint:allow <analyzer>[,<analyzer>...] -- reason
//
// on the flagged line or the line immediately above it. A waiver
// without a reason still works, but the convention is to say who owns
// the obligation the analyzer wanted discharged.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects the Pass and
// reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// seedlint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by seedlint -list.
	Doc string
	// Run performs the check. A returned error is an analyzer
	// malfunction (fixture missing, unreadable directory), not a
	// finding; findings go through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package's parsed syntax through one analyzer.
type Pass struct {
	// Analyzer is the check this pass runs.
	Analyzer *Analyzer
	// Fset resolves token.Pos for Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax (build-constrained files
	// excluded, tests excluded), with comments.
	Files []*ast.File
	// Path is the package import path ("seedblast/internal/index").
	Path string
	// Dir is the package directory on disk. Analyzers that must see
	// across build constraints (kernelparity) re-parse from here.
	Dir string
	// OtherFiles lists non-Go files in the package (assembly).
	OtherFiles []string

	diags      []Finding
	directives map[string][]directive // file name → directives, lazily built
}

// Finding is one resolved diagnostic: a concrete file:line:col plus
// the analyzer that raised it. This is what the driver prints and the
// tests match.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Reportf records a finding at pos (resolved through the pass's Fset)
// unless a seedlint:allow directive for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Fset.Position(pos), format, args...)
}

// reportAt is Reportf for analyzers that parse with their own FileSet
// (kernelparity re-parses across build constraints) and hold already
// resolved positions.
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	p.diags = append(p.diags, Finding{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //seedlint:... comment.
type directive struct {
	line int    // line the comment sits on
	verb string // "allow", "owns", ...
	args string // everything after the verb, "--"-comment stripped
}

// buildDirectives scans the pass's comments once.
func (p *Pass) buildDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = make(map[string][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "seedlint:") {
					continue
				}
				text = strings.TrimPrefix(text, "seedlint:")
				verb, args, _ := strings.Cut(text, " ")
				args, _, _ = strings.Cut(args, "--") // trailing reason
				pos := p.Fset.Position(c.Pos())
				p.directives[pos.Filename] = append(p.directives[pos.Filename], directive{
					line: pos.Line,
					verb: verb,
					args: strings.TrimSpace(args),
				})
			}
		}
	}
}

// directiveAt reports whether a directive with the given verb covers
// the resolved position: same line, or the line immediately above (a
// comment on its own line annotating the statement below it).
func (p *Pass) directiveAt(at token.Position, verb string) (directive, bool) {
	p.buildDirectives()
	for _, d := range p.directives[at.Filename] {
		if d.verb == verb && (d.line == at.Line || d.line == at.Line-1) {
			return d, true
		}
	}
	return directive{}, false
}

// allowed reports whether a seedlint:allow directive naming this
// pass's analyzer covers the position.
func (p *Pass) allowed(at token.Position) bool {
	d, ok := p.directiveAt(at, "allow")
	if !ok {
		return false
	}
	for _, name := range strings.Split(d.args, ",") {
		if strings.TrimSpace(name) == p.Analyzer.Name {
			return true
		}
	}
	return false
}

// Owned reports whether a //seedlint:owns directive covers pos — the
// ownership marker mmapclose requires when an mmap-aliased value is
// stored somewhere that outlives the opening function.
func (p *Pass) Owned(pos token.Pos) bool {
	_, ok := p.directiveAt(p.Fset.Position(pos), "owns")
	return ok
}

// Run executes one analyzer over one package and returns its resolved
// findings sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Finding, error) {
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Path:       pkg.Path,
		Dir:        pkg.Dir,
		OtherFiles: pkg.OtherFiles,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	out := pass.diags
	sortFindings(out)
	return out, nil
}

// RunAll executes every analyzer over every package.
func RunAll(as []*Analyzer, pkgs []*Package) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range as {
			fs, err := Run(a, pkg)
			if err != nil {
				return nil, err
			}
			out = append(out, fs...)
		}
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
