// Package analysis is seedlint's analysis framework: a deliberately
// small, dependency-free reimplementation of the golang.org/x/tools
// go/analysis API shape (Analyzer, Pass, Diagnostic) on top of the
// standard library's go/ast and go/parser.
//
// The engine carries invariants no off-the-shelf tool checks — mmap
// lifetimes, goroutine cancellation discipline, asm/noasm kernel
// parity, copy-on-write option setters — and this package holds one
// analyzer per invariant (see Analyzers). The build environment
// vendors no third-party modules, so instead of depending on x/tools
// the framework mirrors its surface closely enough that the analyzers
// would port to a real multichecker by swapping the import.
//
// Analyzers come in two shapes. Per-package analyzers set Run and see
// one package at a time. Cross-package analyzers set Collect and
// Finalize: Collect exports Facts from each package (the zero-dep
// analogue of x/tools fact export), and Finalize sees the whole Unit —
// every loaded package plus every collected fact — and reports the
// cross-layer drift no single package can see (a wire option missing
// its core setter, a metric family the schema check never learned).
//
// Analyzers are purely syntactic: they parse, they do not type-check.
// Each one is calibrated against this repository's idioms (see the
// per-analyzer files), and every diagnostic can be waived in place
// with a directive comment:
//
//	//seedlint:allow <analyzer>[,<analyzer>...] -- reason
//
// on the flagged line or the line immediately above it. The reason
// tail is mandatory: a bare directive suppresses nothing, and the
// directive analyzer reports it so the dead waiver is visible.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Per-package analyzers set
// Run; cross-package analyzers set Collect and/or Finalize instead.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// seedlint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by seedlint -list.
	Doc string
	// Run performs a per-package check. A returned error is an
	// analyzer malfunction (fixture missing, unreadable directory),
	// not a finding; findings go through pass.Reportf.
	Run func(*Pass) error
	// Collect extracts this analyzer's facts from one package. It may
	// also report package-local findings through pass.Reportf.
	Collect func(*Pass) ([]Fact, error)
	// Finalize runs once per unit, after every package's Collect, and
	// reports cross-package findings through unit.Reportf.
	Finalize func(*Unit) error
}

// CrossPackage reports whether the analyzer needs the whole-unit
// phase (Collect/Finalize) rather than the per-package phase.
func CrossPackage(a *Analyzer) bool { return a.Collect != nil || a.Finalize != nil }

// Fact is one exported per-package observation a cross-package
// analyzer carries from Collect to Finalize: "package P registers
// metric N here", "setter S writes Options fields F". The schema of
// Kind/Name/Attrs is private to each analyzer.
type Fact struct {
	// Pkg is the import path of the package the fact came from.
	Pkg string
	// Pos is where the evidence sits, for Finalize-time diagnostics.
	Pos token.Position
	// Kind discriminates fact flavours within one analyzer.
	Kind string
	// Name is the fact's primary key (a setter name, a metric name).
	Name string
	// Attrs carries secondary payload, such as field lists.
	Attrs map[string]string
}

// Pass carries one package's parsed syntax through one analyzer.
type Pass struct {
	// Analyzer is the check this pass runs.
	Analyzer *Analyzer
	// Fset resolves token.Pos for Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax (build-constrained files
	// excluded, tests excluded), with comments.
	Files []*ast.File
	// Path is the package import path ("seedblast/internal/index").
	Path string
	// Dir is the package directory on disk. Analyzers that must see
	// across build constraints (kernelparity) re-parse from here.
	Dir string
	// OtherFiles lists non-Go files in the package (assembly).
	OtherFiles []string

	diags      []Finding
	directives map[string][]directive // file name → directives, lazily built
}

// Finding is one resolved diagnostic: a concrete file:line:col plus
// the analyzer that raised it. This is what the driver prints and the
// tests match.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Reportf records a finding at pos (resolved through the pass's Fset)
// unless a seedlint:allow directive for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Fset.Position(pos), format, args...)
}

// reportAt is Reportf for analyzers that parse with their own FileSet
// (kernelparity re-parses across build constraints) and hold already
// resolved positions.
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	p.diags = append(p.diags, Finding{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //seedlint:... comment.
type directive struct {
	pos    token.Position // where the comment sits
	line   int            // line the comment sits on
	verb   string         // "allow", "owns", ...
	args   string         // between the verb and "--", nested comments stripped
	reason string         // after "--", empty when the tail is missing
}

// buildDirectives scans the pass's comments once.
func (p *Pass) buildDirectives() {
	if p.directives != nil {
		return
	}
	p.directives = make(map[string][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "seedlint:") {
					continue
				}
				text = strings.TrimPrefix(text, "seedlint:")
				// A trailing comment on the same line (fixture want
				// markers, editor annotations) is not directive text;
				// strip it before looking for the reason separator.
				text, _, _ = strings.Cut(text, "//")
				verb, args, _ := strings.Cut(text, " ")
				args, reason, _ := strings.Cut(args, "--")
				pos := p.Fset.Position(c.Pos())
				p.directives[pos.Filename] = append(p.directives[pos.Filename], directive{
					pos:    pos,
					line:   pos.Line,
					verb:   verb,
					args:   strings.TrimSpace(args),
					reason: strings.TrimSpace(reason),
				})
			}
		}
	}
}

// directiveAt reports whether a directive with the given verb covers
// the resolved position: same line, or the line immediately above (a
// comment on its own line annotating the statement below it).
func (p *Pass) directiveAt(at token.Position, verb string) (directive, bool) {
	p.buildDirectives()
	for _, d := range p.directives[at.Filename] {
		if d.verb == verb && (d.line == at.Line || d.line == at.Line-1) {
			return d, true
		}
	}
	return directive{}, false
}

// allowed reports whether a seedlint:allow directive naming this
// pass's analyzer covers the position. A directive without the
// "-- reason" tail is inert (and reported by the directive analyzer).
func (p *Pass) allowed(at token.Position) bool {
	d, ok := p.directiveAt(at, "allow")
	if !ok || d.reason == "" {
		return false
	}
	for _, name := range strings.Split(d.args, ",") {
		if strings.TrimSpace(name) == p.Analyzer.Name {
			return true
		}
	}
	return false
}

// Owned reports whether a //seedlint:owns directive covers pos — the
// ownership marker mmapclose and spanend require when a tracked value
// is stored somewhere that outlives the opening function. Like allow,
// an owns marker without a reason naming the owner is inert.
func (p *Pass) Owned(pos token.Pos) bool {
	d, ok := p.directiveAt(p.Fset.Position(pos), "owns")
	return ok && d.reason != ""
}

// newPass wraps a loaded package for one analyzer.
func newPass(a *Analyzer, pkg *Package) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Path:       pkg.Path,
		Dir:        pkg.Dir,
		OtherFiles: pkg.OtherFiles,
	}
}

// Run executes one per-package analyzer over one package and returns
// its resolved findings sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Finding, error) {
	pass := newPass(a, pkg)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	out := pass.diags
	sortFindings(out)
	return out, nil
}

// Unit is one cross-package analyzer's view of everything loaded: the
// packages, the facts Collect exported from them, and (internally) the
// per-package passes so Finalize-time reports still honour allow
// directives wherever they land.
type Unit struct {
	Analyzer *Analyzer
	Packages []*Package
	Facts    []Fact

	passes map[string]*Pass // import path → pass
}

// Pkg returns the first loaded package whose import path matches the
// suffix (see pathMatches), or nil — how Finalize checks whether a
// layer is in view before enforcing a contract against it.
func (u *Unit) Pkg(suffix string) *Package {
	for _, pkg := range u.Packages {
		if pathMatches(pkg.Path, suffix) {
			return pkg
		}
	}
	return nil
}

// FactsOf returns the collected facts of one kind.
func (u *Unit) FactsOf(kind string) []Fact {
	var out []Fact
	for _, f := range u.Facts {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// Reportf records a finding at pos inside pkg, honouring that
// package's allow directives.
func (u *Unit) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	u.ReportAt(pkg.Path, pkg.Fset.Position(pos), format, args...)
}

// ReportAt is Reportf for already-resolved positions — the form facts
// carry (Fact.Pkg, Fact.Pos).
func (u *Unit) ReportAt(pkgPath string, pos token.Position, format string, args ...any) {
	pass, ok := u.passes[pkgPath]
	if !ok {
		// Position from a package outside the unit (should not happen;
		// fail open so the finding is not silently dropped).
		pass = &Pass{Analyzer: u.Analyzer, Fset: token.NewFileSet()}
		u.passes[pkgPath] = pass
	}
	pass.reportAt(pos, format, args...)
}

// RunCross executes one cross-package analyzer over the whole package
// set: Collect per package, then Finalize over the unit.
func RunCross(a *Analyzer, pkgs []*Package) ([]Finding, error) {
	u := &Unit{Analyzer: a, Packages: pkgs, passes: make(map[string]*Pass)}
	for _, pkg := range pkgs {
		pass := newPass(a, pkg)
		u.passes[pkg.Path] = pass
		if a.Collect == nil {
			continue
		}
		facts, err := a.Collect(pass)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		u.Facts = append(u.Facts, facts...)
	}
	if a.Finalize != nil {
		if err := a.Finalize(u); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	var out []Finding
	for _, pass := range u.passes {
		out = append(out, pass.diags...)
	}
	sortFindings(out)
	return out, nil
}

// RunAll executes every analyzer over every package: the per-package
// analyzers package by package, then each cross-package analyzer once
// over the whole set.
func RunAll(as []*Analyzer, pkgs []*Package) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range as {
			if a.Run == nil {
				continue
			}
			fs, err := Run(a, pkg)
			if err != nil {
				return nil, err
			}
			out = append(out, fs...)
		}
	}
	for _, a := range as {
		if !CrossPackage(a) {
			continue
		}
		fs, err := RunCross(a, pkgs)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
