package analysis

// Analyzers is the seedlint suite: one analyzer per engine invariant,
// in the order they are documented in DESIGN.md ("Static analysis").
var Analyzers = []*Analyzer{
	MmapClose,
	CtxSelect,
	KernelParity,
	OptClone,
	ErrClose,
	SpanEnd,
	MapDet,
	MetricName,
	OptPlumb,
	Directive,
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
