package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CtxSelect enforces the engine's goroutine cancellation discipline
// (PRs 1–3): inside the concurrency-bearing packages (pipeline,
// cluster, service, ungapped, prefilter), a goroutine that sends on a
// channel must not be able to block forever once the request is
// abandoned.
// A send is acceptable when it
//
//   - sits in a select with a <-ctx.Done() (or done/stop/quit channel)
//     case, so cancellation unblocks it;
//   - targets a channel this same goroutine closes — the goroutine is
//     the channel's owning producer; or
//   - targets a function-local channel made with capacity len(...) or
//     cap(...) of the work list — sized to the total number of sends,
//     so the send can never block (the pipeline's ordered emitter).
//
// Anything else is the goroutine-leak shape that deadlocks
// scatter-gather under cancellation: a worker parked on a bounded
// channel nobody drains after the consumer bailed out.
var CtxSelect = &Analyzer{
	Name: "ctxselect",
	Doc: "goroutines in pipeline/cluster/service/ungapped/prefilter must keep channel sends cancellable: " +
		"select on ctx.Done(), own (close) the channel, or send on a workload-sized buffer",
	Run: runCtxSelect,
}

// ctxSelectPackages are the path segments naming the packages under
// this discipline.
var ctxSelectPackages = map[string]bool{
	"pipeline":  true,
	"cluster":   true,
	"service":   true,
	"ungapped":  true,
	"prefilter": true,
}

func inCtxSelectScope(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if ctxSelectPackages[seg] {
			return true
		}
	}
	return false
}

func runCtxSelect(pass *Pass) error {
	if !inCtxSelectScope(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Channel capacities by name within this one function, so
			// goroutines see the channels their parent function made and
			// same-named channels in other functions don't collide.
			caps := chanCapacities(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				checkGoroutineSends(pass, lit, caps)
				return true
			})
		}
	}
	return nil
}

// chanCapacities maps channel variable names within one function body
// to whether their make() capacity is workload-sized. Shadowing
// collisions are resolved pessimistically: a name made both
// workload-sized and bounded in the same function is treated as
// bounded.
func chanCapacities(body ast.Node) map[string]bool {
	sized := make(map[string]bool) // name → capacity is len(...)/cap(...) everywhere
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if len(call.Args) == 0 {
				continue
			}
			if _, ok := call.Args[0].(*ast.ChanType); !ok {
				continue
			}
			lhs := as.Lhs[0]
			if len(as.Lhs) == len(as.Rhs) {
				lhs = as.Lhs[i]
			}
			name, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			isSized := false
			if len(call.Args) == 2 {
				if capCall, ok := call.Args[1].(*ast.CallExpr); ok {
					if fn, ok := capCall.Fun.(*ast.Ident); ok && (fn.Name == "len" || fn.Name == "cap") {
						isSized = true
					}
				}
			}
			if seen[name.Name] {
				sized[name.Name] = sized[name.Name] && isSized
			} else {
				seen[name.Name] = true
				sized[name.Name] = isSized
			}
		}
		return true
	})
	return sized
}

// checkGoroutineSends walks one go-routine literal for sends that can
// block past cancellation.
func checkGoroutineSends(pass *Pass, lit *ast.FuncLit, sized map[string]bool) {
	closed := channelsClosedBy(lit)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			// A nested goroutine is its own obligation; the outer walk
			// finds it separately.
			return false
		case *ast.SelectStmt:
			if selectHasCancelCase(x) {
				// Every send inside a cancellable select is fine; still
				// descend into case bodies for follow-on sends.
				for _, c := range x.Body.List {
					cc := c.(*ast.CommClause)
					for _, s := range cc.Body {
						ast.Inspect(s, walk)
					}
				}
				return false
			}
		case *ast.SendStmt:
			if name := chanName(x.Chan); name != "" {
				if closed[name] {
					return true // goroutine owns the channel
				}
				if sized[name] {
					return true // workload-sized buffer: sends never block
				}
			}
			pass.Reportf(x.Pos(), "goroutine sends on %s without selecting on ctx.Done(); a cancelled consumer leaks this worker", chanLabel(x.Chan))
		}
		return true
	}
	ast.Inspect(lit.Body, walk)
}

// channelsClosedBy collects channel names the literal itself closes
// (directly or deferred).
func channelsClosedBy(lit *ast.FuncLit) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
			if name := chanName(call.Args[0]); name != "" {
				out[name] = true
			}
		}
		return true
	})
	return out
}

// selectHasCancelCase reports whether the select has a receive case
// from a cancellation source: <-x.Done(), or a channel whose name
// suggests shutdown (done, stop, quit, closing).
func selectHasCancelCase(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default clause: the select never blocks
		}
		var recv ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		un, ok := recv.(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			continue
		}
		switch src := un.X.(type) {
		case *ast.CallExpr:
			if sel, ok := src.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				return true
			}
		default:
			name := strings.ToLower(chanName(un.X))
			for _, hint := range []string{"done", "stop", "quit", "closing"} {
				if strings.Contains(name, hint) {
					return true
				}
			}
		}
	}
	return false
}

// chanName extracts a best-effort name for a channel expression.
func chanName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// chanLabel renders the channel expression for a diagnostic.
func chanLabel(e ast.Expr) string {
	if name := chanName(e); name != "" {
		return "channel " + name
	}
	return "a channel"
}
