package analysis

import (
	"go/ast"
)

// MapDet flags `range` over a map whose loop body writes to an
// order-sensitive sink — exactly the class of the PR-9 stage-busy
// exposition flake, where registering metric families from a map range
// made the /metrics family order (and therefore the scrape diff)
// change run to run. Go randomizes map iteration order per run, so any
// map range that feeds a stream writer, a trace assembly call, or a
// telemetry registration (registration order fixes exposition order)
// is nondeterministic output waiting to be noticed. The compliant
// idiom is collect-keys-then-sort — which ranges a slice, not the map,
// and so passes untouched.
//
// Map-ness is syntactic: locally declared maps (make/literal/var/
// params), package-level map vars, and selector fields whose name is
// declared with a map type anywhere in the loaded unit — which is why
// the analyzer is cross-package (seedcmp ranges over maps declared in
// internal/pipeline). Writes that stay inside the loop iteration (a
// per-entry buffer, the entry itself) are order-insensitive and
// excluded.
var MapDet = &Analyzer{
	Name: "mapdet",
	Doc: "range over a map must not feed order-sensitive sinks (stream writers, trace " +
		"assembly, metric registration); collect and sort the keys, then range the slice",
	Collect:  collectMapDet,
	Finalize: finalizeMapDet,
}

// orderSinkMethods are method names whose call order is observable in
// output: stream/buffer writers, encoders, trace assembly, and
// registry registration (registration order fixes exposition order).
// The sink target is the method receiver.
var orderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true, "WriteTo": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true, // fmt.Fprint* — target is the first argument
	"Encode": true,                // json/gob stream encoders
	"Record": true, "Graft": true, // telemetry trace assembly
	"Counter": true, "Gauge": true, // registry registration
	"Func": true, "Histogram": true,
}

// fprintLike marks the methods above whose sink target is the first
// argument rather than the receiver.
var fprintLike = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// collectMapDet exports the package's map-shaped names: named map
// types, package-level map vars, and struct fields with map types —
// the evidence finalizeMapDet needs to recognize a map range across
// package boundaries.
func collectMapDet(pass *Pass) ([]Fact, error) {
	var facts []Fact
	mapTypes := namedMapTypes(pass.Files)
	for name := range mapTypes {
		facts = append(facts, Fact{Pkg: pass.Path, Kind: "maptype", Name: name})
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.ValueSpec:
					// Package-level map vars (type or initializer).
					if !isMapExprType(sp.Type, mapTypes) && !valuesAreMaps(sp.Values, mapTypes) {
						continue
					}
					for _, id := range sp.Names {
						facts = append(facts, Fact{
							Pkg: pass.Path, Pos: pass.Fset.Position(id.Pos()),
							Kind: "mapvar", Name: id.Name,
						})
					}
				case *ast.TypeSpec:
					st, ok := sp.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						if !isMapExprType(f.Type, mapTypes) {
							continue
						}
						for _, id := range f.Names {
							facts = append(facts, Fact{
								Pkg: pass.Path, Pos: pass.Fset.Position(id.Pos()),
								Kind: "mapfield", Name: id.Name,
							})
						}
					}
				}
			}
		}
	}
	return facts, nil
}

// namedMapTypes collects `type X map[...]...` names in the package.
func namedMapTypes(files []*ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					if _, isMap := ts.Type.(*ast.MapType); isMap {
						out[ts.Name.Name] = true
					}
				}
			}
		}
	}
	return out
}

// isMapExprType reports whether the type expression is a map: a
// MapType literal or a reference to a named map type (possibly
// package-qualified; qualified names match on the bare type name).
func isMapExprType(e ast.Expr, mapTypes map[string]bool) bool {
	switch t := e.(type) {
	case *ast.MapType:
		return true
	case *ast.Ident:
		return mapTypes[t.Name]
	case *ast.SelectorExpr:
		return mapTypes[t.Sel.Name]
	}
	return false
}

// valuesAreMaps reports whether any initializer is a map literal or
// make(map[...]).
func valuesAreMaps(values []ast.Expr, mapTypes map[string]bool) bool {
	for _, v := range values {
		if isMapValue(v, mapTypes) {
			return true
		}
	}
	return false
}

// isMapValue reports whether the expression evidently produces a map.
func isMapValue(e ast.Expr, mapTypes map[string]bool) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return isMapExprType(x.Type, mapTypes)
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
			return isMapExprType(x.Args[0], mapTypes)
		}
	}
	return false
}

// finalizeMapDet walks every loaded package's range statements with
// the unit-wide map evidence in hand.
func finalizeMapDet(u *Unit) error {
	fields := make(map[string]bool)
	for _, f := range u.FactsOf("mapfield") {
		fields[f.Name] = true
	}
	perPkgVars := make(map[string]map[string]bool)
	for _, f := range u.FactsOf("mapvar") {
		if perPkgVars[f.Pkg] == nil {
			perPkgVars[f.Pkg] = make(map[string]bool)
		}
		perPkgVars[f.Pkg][f.Name] = true
	}
	perPkgTypes := make(map[string]map[string]bool)
	for _, f := range u.FactsOf("maptype") {
		if perPkgTypes[f.Pkg] == nil {
			perPkgTypes[f.Pkg] = make(map[string]bool)
		}
		perPkgTypes[f.Pkg][f.Name] = true
	}

	for _, pkg := range u.Packages {
		pkgVars := perPkgVars[pkg.Path]
		// Named map types from anywhere in the unit resolve qualified
		// parameter types (pipeline.ShardCounts); same-name collisions
		// across packages are acceptable for a calibrated linter.
		allTypes := make(map[string]bool)
		for _, types := range perPkgTypes {
			for name := range types {
				allTypes[name] = true
			}
		}
		for _, file := range pkg.Files {
			scopes := allFuncs(file)
			ast.Inspect(file, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !rangesOverMap(rs, scopes, pkgVars, fields, allTypes) {
					return true
				}
				if sink := findOrderSink(rs); sink != "" {
					u.Reportf(pkg, rs.For,
						"map iteration order reaches order-sensitive sink %s; collect the keys, sort, and range the slice instead",
						sink)
				}
				return true
			})
		}
	}
	return nil
}

// rangesOverMap decides, syntactically, whether the range expression
// is a map: a local declared as one in the enclosing function, a
// package-level map var, or a selector whose field name is map-typed
// somewhere in the unit.
func rangesOverMap(rs *ast.RangeStmt, scopes []funcScope, pkgVars, fields, mapTypes map[string]bool) bool {
	switch x := rs.X.(type) {
	case *ast.Ident:
		if body := innermost(scopes, rs.Pos()); body != nil {
			if mapLocals(scopes, body, mapTypes)[x.Name] {
				return true
			}
		}
		return pkgVars[x.Name]
	case *ast.SelectorExpr:
		return fields[x.Sel.Name]
	}
	return false
}

// mapLocals collects the names evidently declared as maps within the
// function owning body: parameters with map types plus local
// declarations initialized with make(map[...]) or a map literal.
func mapLocals(scopes []funcScope, body *ast.BlockStmt, mapTypes map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for _, s := range scopes {
		if s.body != body {
			continue
		}
		var params *ast.FieldList
		switch fn := s.node.(type) {
		case *ast.FuncDecl:
			params = fn.Type.Params
		case *ast.FuncLit:
			params = fn.Type.Params
		}
		if params != nil {
			for _, f := range params.List {
				if !isMapExprType(f.Type, mapTypes) {
					continue
				}
				for _, id := range f.Names {
					out[id.Name] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) && len(s.Rhs) != 1 {
				return true
			}
			for i, l := range s.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				rhs := s.Rhs[0]
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				if isMapValue(rhs, mapTypes) {
					out[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if isMapExprType(s.Type, mapTypes) || valuesAreMaps(s.Values, mapTypes) {
				for _, id := range s.Names {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}

// findOrderSink scans the loop body for a call whose order is
// observable in output and whose target is rooted outside the loop
// iteration; it returns a rendered "target.Method" or "".
func findOrderSink(rs *ast.RangeStmt) string {
	// Names scoped to one iteration: the key/value vars and anything
	// declared inside the body. Writes to those are per-entry state,
	// not ordered output.
	iterLocal := localDecls(rs.Body)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			iterLocal[id.Name] = true
		}
	}
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !orderSinkMethods[sel.Sel.Name] {
			return true
		}
		target := ast.Expr(sel.X)
		if fprintLike[sel.Sel.Name] {
			if len(call.Args) == 0 {
				return true
			}
			target = call.Args[0]
		}
		root := rootIdent(target)
		if root == nil || iterLocal[root.Name] {
			return true
		}
		sink = typeString(sel)
		return false
	})
	return sink
}
