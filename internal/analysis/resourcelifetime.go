package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the shared resource-lifetime walker behind mmapclose
// and spanend. Both analyzers enforce the same shape of contract — a
// constructor hands back a value carrying an obligation (Close the
// mapping, End the span) that must be discharged on every path out of
// the acquiring function or visibly transferred — so the path
// tracking lives here once, parameterized by the discharge method and
// the analyzer's diagnostic wording. The wording stays with each
// analyzer (see lifetimeSpec's report callbacks) so extracting the
// walker changed no pinned fixture output.

// lifetimeSpec parameterizes checkLifetime over one resource kind.
type lifetimeSpec struct {
	// closeMethod discharges the obligation ("Close", "End").
	closeMethod string

	// reportBadStore fires when the value is stored into state rooted
	// outside the acquiring function without a //seedlint:owns marker.
	reportBadStore func(p *Pass, pos token.Pos, v string)
	// reportNeverFreed fires when the value neither reaches the close
	// method nor ever leaves the function.
	reportNeverFreed func(p *Pass, pos token.Pos, what, v string)
	// reportLeakReturn fires on a return path not covered by a close
	// or an ownership transfer.
	reportLeakReturn func(p *Pass, pos token.Pos, v, what string, openLine int)
}

// innermost returns the body of the smallest function scope containing pos.
func innermost(scopes []funcScope, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	bestSize := token.Pos(-1)
	for _, s := range scopes {
		if s.node.Pos() <= pos && pos < s.node.End() {
			if size := s.node.End() - s.node.Pos(); best == nil || size < bestSize {
				best, bestSize = s.body, size
			}
		}
	}
	return best
}

// checkLifetime inspects the acquiring function's body for the opened
// value's fate: a deferred discharge, explicit discharges covering
// every return, or an ownership transfer.
func checkLifetime(pass *Pass, body *ast.BlockStmt, open *ast.CallExpr, spec lifetimeSpec, what, v, errName string) {
	locals := localDecls(body)
	var (
		deferred  bool
		safePos   []token.Pos // positions after which a plain return is fine: discharge calls and ownership transfers
		badStores []token.Pos
	)
	transferred := false
	markSafe := func(pos token.Pos) { safePos = append(safePos, pos) }

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if isMethodCallOn(x.Call, v, spec.closeMethod) {
				deferred = true
			}
		case *ast.CallExpr:
			if isMethodCallOn(x, v, spec.closeMethod) {
				markSafe(x.Pos())
				return true
			}
			for _, arg := range x.Args {
				if mentionsAsValue(arg, v) {
					transferred = true
					markSafe(x.Pos())
				}
			}
		case *ast.SelectorExpr:
			// A v.Close / v.End method value outside a call is an
			// ownership handoff (e.g. t.closer = ix.Close).
			if id, ok := x.X.(*ast.Ident); ok && id.Name == v && x.Sel.Name == spec.closeMethod {
				transferred = true
				markSafe(x.Pos())
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				rhs := x.Rhs[0]
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				if !mentionsAsValue(rhs, v) {
					continue
				}
				root := rootIdent(lhs)
				if root == nil || root.Name == v || locals[root.Name] {
					continue
				}
				if root.Name == "_" {
					// A blank store (_ = v) silences the compiler but
					// transfers nothing.
					continue
				}
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					// Plain store to a named result or outer variable:
					// ownership leaves with it.
					transferred = true
					markSafe(x.Pos())
					continue
				}
				// Stored into a field/slot rooted outside this
				// function: outlives the acquirer.
				if pass.Owned(x.Pos()) {
					transferred = true
					markSafe(x.Pos())
				} else {
					badStores = append(badStores, x.Pos())
				}
			}
		}
		return true
	})

	for _, pos := range badStores {
		spec.reportBadStore(pass, pos, v)
	}

	if deferred {
		return
	}
	if len(badStores) > 0 {
		// The value does leave the function — through the unmarked
		// store already reported above. One finding is enough.
		return
	}
	// A return that carries v out is itself an ownership transfer
	// (handoff constructors: return t, nil).
	returns := plainReturns(body, open.Pos())
	returnsCarry := false
	for _, r := range returns {
		if returnMentions(r.stmt, v) {
			returnsCarry = true
			break
		}
	}

	if len(safePos) == 0 && !transferred && !returnsCarry {
		spec.reportNeverFreed(pass, open.Pos(), what, v)
		return
	}

	// Path check: every plain return after the open must be covered by
	// an earlier discharge/transfer, carry v out itself, or sit in the
	// open's own error branch. Statement position approximates
	// dominance — good enough for this repo's early-return style, and
	// //seedlint:allow covers the exceptions.
	openLine := pass.Fset.Position(open.Pos()).Line
	for _, r := range returns {
		if returnMentions(r.stmt, v) {
			continue
		}
		if errName != "" && r.errGuard == errName {
			continue
		}
		covered := false
		for _, p := range safePos {
			// End(), not Pos(): a discharge inside the return
			// expression itself (return ix.Close()) covers this path.
			if p < r.stmt.End() {
				covered = true
				break
			}
		}
		if !covered {
			spec.reportLeakReturn(pass, r.stmt.Pos(), v, what, openLine)
		}
	}
}

// isMethodCallOn reports whether call is v.<method>().
func isMethodCallOn(call *ast.CallExpr, v, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == v
}

// mentionsAsValue reports whether expr uses name as a value — anywhere
// except as the receiver of a method call (v.M() passes a derived
// result, not v itself).
func mentionsAsValue(expr ast.Expr, name string) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == name {
					// Receiver position: inspect only the arguments.
					for _, a := range call.Args {
						ast.Inspect(a, walk)
					}
					return false
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	}
	ast.Inspect(expr, walk)
	return found
}

// plainReturn is a return statement after the open, with the name of
// the error whose != nil check guards it (when trivially detectable).
type plainReturn struct {
	stmt     *ast.ReturnStmt
	errGuard string
}

// plainReturns collects returns in body after pos, skipping nested
// function literals (their returns exit the literal, not the opener).
func plainReturns(body *ast.BlockStmt, pos token.Pos) []plainReturn {
	var out []plainReturn
	var guards []string // stack of err idents guarding the current if-branch
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			g := ""
			if b, ok := x.Cond.(*ast.BinaryExpr); ok && b.Op == token.NEQ {
				if id, ok := b.X.(*ast.Ident); ok {
					if y, ok := b.Y.(*ast.Ident); ok && y.Name == "nil" {
						g = id.Name
					}
				}
			}
			guards = append(guards, g)
			ast.Inspect(x.Body, walk)
			guards = guards[:len(guards)-1]
			if x.Else != nil {
				guards = append(guards, "")
				ast.Inspect(x.Else, walk)
				guards = guards[:len(guards)-1]
			}
			if x.Init != nil {
				ast.Inspect(x.Init, walk)
			}
			ast.Inspect(x.Cond, walk)
			return false
		case *ast.ReturnStmt:
			if x.Pos() > pos {
				g := ""
				if len(guards) > 0 {
					g = guards[len(guards)-1]
				}
				out = append(out, plainReturn{stmt: x, errGuard: g})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// returnMentions reports whether the return carries v out.
func returnMentions(r *ast.ReturnStmt, v string) bool {
	for _, e := range r.Results {
		if mentionsAsValue(e, v) {
			return true
		}
	}
	return false
}
