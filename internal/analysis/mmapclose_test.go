package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

func TestMmapClose(t *testing.T) {
	analysistest.Run(t, analysis.MmapClose, "mmapclose/a")
}
