package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// KernelParity keeps the build-tag variants of the step-2 kernel from
// drifting (PR 6): kernel_<arch>.go (asm declarations) and
// kernel_noasm.go (portable stubs) are alternative definitions of the
// same dispatch surface, selected by GOARCH, so a signature or
// name-set mismatch compiles fine on the developer's machine and
// breaks — or worse, silently diverges — on a cross-build. The
// analyzer re-parses every kernel_*.go in the package directory
// regardless of build constraints and requires:
//
//   - every name (func, const, var) declared in kernel_noasm.go exists
//     in each kernel_<arch>.go, and vice versa — except arch-only
//     helpers referenced from no shared file (cpuidSSSE3);
//   - functions declared in both variants have identical signatures;
//   - every body-less (assembly-implemented) declaration has a
//     matching TEXT ·name symbol in the package's .s files;
//   - kernel_noasm.go's build constraint excludes each arch variant.
var KernelParity = &Analyzer{
	Name: "kernelparity",
	Doc: "kernel_<arch>.go and kernel_noasm.go must declare the same functions with the same " +
		"signatures, with TEXT symbols behind every asm declaration",
	Run: runKernelParity,
}

// kernelVariant is one parsed kernel_*.go file.
type kernelVariant struct {
	path  string
	arch  string // "" for noasm
	file  *ast.File
	funcs map[string]*ast.FuncDecl
	names map[string]token.Pos // every package-level declared name
}

func runKernelParity(pass *Pass) error {
	if pass.Dir == "" {
		return nil
	}
	noasmPath := filepath.Join(pass.Dir, "kernel_noasm.go")
	if _, err := os.Stat(noasmPath); err != nil {
		return nil // no split-kernel surface in this package
	}

	entries, err := os.ReadDir(pass.Dir)
	if err != nil {
		return fmt.Errorf("kernelparity: %w", err)
	}
	fset := token.NewFileSet()
	var noasm *kernelVariant
	var arches []*kernelVariant
	var asmText []string // TEXT symbols across all kernel .s files
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, "_test.go"):
		case strings.HasPrefix(name, "kernel_") && strings.HasSuffix(name, ".go"):
			v, err := parseKernelVariant(fset, filepath.Join(pass.Dir, name))
			if err != nil {
				return err
			}
			if v.arch == "" {
				noasm = v
			} else {
				arches = append(arches, v)
			}
		case strings.HasPrefix(name, "kernel_") && strings.HasSuffix(name, ".s"):
			syms, err := textSymbols(filepath.Join(pass.Dir, name))
			if err != nil {
				return err
			}
			asmText = append(asmText, syms...)
		}
	}
	if noasm == nil || len(arches) == 0 {
		return nil
	}

	// Names referenced from shared (non-kernel_*) files of the package:
	// these are the dispatch surface every variant must provide.
	shared := sharedReferences(pass)

	for _, arch := range arches {
		checkVariantPair(pass, fset, noasm, arch, shared)
		checkAsmBacked(pass, fset, arch, asmText)
		checkNoasmConstraint(pass, fset, noasm, arch.arch)
	}
	return nil
}

func parseKernelVariant(fset *token.FileSet, path string) (*kernelVariant, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("kernelparity: %w", err)
	}
	base := strings.TrimSuffix(filepath.Base(path), ".go")
	arch := strings.TrimPrefix(base, "kernel_")
	if arch == "noasm" {
		arch = ""
	}
	v := &kernelVariant{
		path:  path,
		arch:  arch,
		file:  f,
		funcs: make(map[string]*ast.FuncDecl),
		names: make(map[string]token.Pos),
	}
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *ast.FuncDecl:
			if decl.Recv == nil {
				v.funcs[decl.Name.Name] = decl
				v.names[decl.Name.Name] = decl.Pos()
			}
		case *ast.GenDecl:
			for _, spec := range decl.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						v.names[id.Name] = id.Pos()
					}
				}
			}
		}
	}
	return v, nil
}

// sharedReferences collects identifiers used by the pass's files other
// than the kernel_* variants themselves: a name referenced there must
// exist on every build.
func sharedReferences(pass *Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasPrefix(name, "kernel_") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				out[id.Name] = true
			}
			return true
		})
	}
	return out
}

// checkVariantPair compares one arch variant against the noasm stubs.
func checkVariantPair(pass *Pass, fset *token.FileSet, noasm, arch *kernelVariant, shared map[string]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		// Positions come from the analyzer's own fset (the variants are
		// re-parsed to bypass build constraints), so resolve here and
		// report through a file-position diagnostic.
		pass.reportAt(fset.Position(pos), format, args...)
	}
	for name, nf := range noasm.funcs {
		af, ok := arch.funcs[name]
		if !ok {
			report(nf.Pos(), "func %s is declared in %s but missing from %s", name, filepath.Base(noasm.path), filepath.Base(arch.path))
			continue
		}
		nsig, asig := signatureOf(nf), signatureOf(af)
		if nsig != asig {
			report(af.Pos(), "func %s signature drifted: %s has %s, %s has %s", name, filepath.Base(arch.path), asig, filepath.Base(noasm.path), nsig)
		}
	}
	for name, af := range arch.funcs {
		if _, ok := noasm.funcs[name]; ok {
			continue
		}
		// Arch-only helpers are fine while nothing outside the arch
		// file depends on them.
		if shared[name] {
			report(af.Pos(), "func %s is used by shared code but declared only in %s; add a %s counterpart", name, filepath.Base(arch.path), filepath.Base(noasm.path))
		}
	}
	for name, pos := range noasm.names {
		if _, isFunc := noasm.funcs[name]; isFunc {
			continue
		}
		if _, ok := arch.names[name]; !ok {
			report(pos, "%s is declared in %s but missing from %s", name, filepath.Base(noasm.path), filepath.Base(arch.path))
		}
	}
	for name, pos := range arch.names {
		if _, isFunc := arch.funcs[name]; isFunc {
			continue
		}
		if _, ok := noasm.names[name]; !ok && shared[name] {
			report(pos, "%s is used by shared code but declared only in %s; add a %s counterpart", name, filepath.Base(arch.path), filepath.Base(noasm.path))
		}
	}
}

// checkAsmBacked verifies each body-less declaration has a TEXT symbol.
func checkAsmBacked(pass *Pass, fset *token.FileSet, arch *kernelVariant, asmText []string) {
	syms := make(map[string]bool, len(asmText))
	for _, s := range asmText {
		syms[s] = true
	}
	for name, fd := range arch.funcs {
		if fd.Body != nil {
			continue
		}
		if !syms[name] {
			pass.reportAt(fset.Position(fd.Pos()), "func %s has no body and no TEXT ·%s symbol in the package's kernel assembly", name, name)
		}
	}
}

// textRE matches plan9 assembly TEXT directives: TEXT ·name(SB), ...
var textRE = regexp.MustCompile(`(?m)^TEXT\s+[·&]?([\p{L}_][\p{L}\p{N}_]*)\s*\(SB\)`)

// textSymbols extracts the function symbols a .s file defines.
func textSymbols(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kernelparity: %w", err)
	}
	var out []string
	for _, m := range textRE.FindAllStringSubmatch(string(data), -1) {
		out = append(out, m[1])
	}
	return out, nil
}

// checkNoasmConstraint requires kernel_noasm.go's build constraint to
// exclude the arch (//go:build !amd64 for kernel_amd64.go), so both
// variants can never be compiled together.
func checkNoasmConstraint(pass *Pass, fset *token.FileSet, noasm *kernelVariant, arch string) {
	for _, cg := range noasm.file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build") && strings.Contains(c.Text, "!"+arch) {
				return
			}
		}
	}
	pass.reportAt(fset.Position(noasm.file.Pos()), "kernel_noasm.go build constraint does not exclude %s (want //go:build with !%s)", arch, arch)
}
