package analysis_test

import (
	"testing"

	"seedblast/internal/analysis"
	"seedblast/internal/analysis/analysistest"
)

func TestCtxSelect(t *testing.T) {
	analysistest.Run(t, analysis.CtxSelect, "ctxselect/pipeline")
}
