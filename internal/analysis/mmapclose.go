package analysis

import (
	"go/ast"
	"go/token"
)

// MmapClose enforces the seeddb mmap lifetime contract (PR 5):
// index.Open and core.OpenTarget return views that alias a file
// mapping, so every opened value must reach a Close on all paths out
// of the opening function, or visibly hand its ownership off —
// returned to the caller, passed into another component, or stored
// under a //seedlint:owns marker naming who closes it. An aliased
// value stored into state that outlives the opening function without
// that marker is exactly the dangling-mapping bug the contract exists
// to prevent. The path tracking itself is the shared resourcelifetime
// walker (checkLifetime), which spanend reuses for span End coverage.
var MmapClose = &Analyzer{
	Name: "mmapclose",
	Doc: "mmap-backed opens (index.Open, core.OpenTarget) must reach Close on all paths " +
		"or visibly transfer ownership; stores that outlive the opener need a //seedlint:owns marker",
	Run: runMmapClose,
}

// opener describes one recognized mmap-returning constructor.
type opener struct {
	pathSuffix string // import path suffix the qualifier must resolve to
	name       string
}

var mmapOpeners = []opener{
	{"internal/index", "Open"},
	{"internal/core", "OpenTarget"},
	{"seedblast", "OpenTarget"},
}

// mmapLifetime pins the analyzer's diagnostic wording; the fixtures
// match these strings, so they survive the walker extraction verbatim.
var mmapLifetime = lifetimeSpec{
	closeMethod: "Close",
	reportBadStore: func(p *Pass, pos token.Pos, v string) {
		p.Reportf(pos, "mmap-aliased %s stored into state that outlives this function without a //seedlint:owns marker", v)
	},
	reportNeverFreed: func(p *Pass, pos token.Pos, what, v string) {
		p.Reportf(pos, "result of %s (%s) is never closed and never leaves this function; add defer %s.Close() or close it on every path", what, v, v)
	},
	reportLeakReturn: func(p *Pass, pos token.Pos, v, what string, openLine int) {
		p.Reportf(pos, "return leaks %s opened by %s at line %d (no Close or ownership transfer on this path)", v, what, openLine)
	},
}

// isMmapOpen reports whether call is a recognized opener in a file
// with the given import table, inside a package at pkgPath (for
// unqualified in-package calls).
func isMmapOpen(call *ast.CallExpr, imports map[string]string, pkgPath string) (string, bool) {
	recv, name := calleeOf(call)
	for _, op := range mmapOpeners {
		if name != op.name {
			continue
		}
		if recv == "" {
			// Unqualified: only an in-package call counts.
			if pathMatches(pkgPath, op.pathSuffix) {
				return name, true
			}
			continue
		}
		if path, ok := imports[recv]; ok && pathMatches(path, op.pathSuffix) {
			return recv + "." + name, true
		}
	}
	return "", false
}

func runMmapClose(pass *Pass) error {
	for _, file := range pass.Files {
		imports := importNames(file)
		scopes := allFuncs(file)
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			what, ok := isMmapOpen(call, imports, pass.Path)
			if !ok {
				return true
			}
			v, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if v.Name == "_" {
				pass.Reportf(call.Pos(), "result of %s is discarded; the mapping can never be closed", what)
				return true
			}
			var errName string
			if len(as.Lhs) == 2 {
				if id, ok := as.Lhs[1].(*ast.Ident); ok {
					errName = id.Name
				}
			}
			body := innermost(scopes, call.Pos())
			if body == nil {
				return true
			}
			checkLifetime(pass, body, call, mmapLifetime, what, v.Name, errName)
			return true
		})
	}
	return nil
}
