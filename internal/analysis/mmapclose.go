package analysis

import (
	"go/ast"
	"go/token"
)

// MmapClose enforces the seeddb mmap lifetime contract (PR 5):
// index.Open and core.OpenTarget return views that alias a file
// mapping, so every opened value must reach a Close on all paths out
// of the opening function, or visibly hand its ownership off —
// returned to the caller, passed into another component, or stored
// under a //seedlint:owns marker naming who closes it. An aliased
// value stored into state that outlives the opening function without
// that marker is exactly the dangling-mapping bug the contract exists
// to prevent.
var MmapClose = &Analyzer{
	Name: "mmapclose",
	Doc: "mmap-backed opens (index.Open, core.OpenTarget) must reach Close on all paths " +
		"or visibly transfer ownership; stores that outlive the opener need a //seedlint:owns marker",
	Run: runMmapClose,
}

// opener describes one recognized mmap-returning constructor.
type opener struct {
	pathSuffix string // import path suffix the qualifier must resolve to
	name       string
}

var mmapOpeners = []opener{
	{"internal/index", "Open"},
	{"internal/core", "OpenTarget"},
	{"seedblast", "OpenTarget"},
}

// isMmapOpen reports whether call is a recognized opener in a file
// with the given import table, inside a package at pkgPath (for
// unqualified in-package calls).
func isMmapOpen(call *ast.CallExpr, imports map[string]string, pkgPath string) (string, bool) {
	recv, name := calleeOf(call)
	for _, op := range mmapOpeners {
		if name != op.name {
			continue
		}
		if recv == "" {
			// Unqualified: only an in-package call counts.
			if pathMatches(pkgPath, op.pathSuffix) {
				return name, true
			}
			continue
		}
		if path, ok := imports[recv]; ok && pathMatches(path, op.pathSuffix) {
			return recv + "." + name, true
		}
	}
	return "", false
}

func runMmapClose(pass *Pass) error {
	for _, file := range pass.Files {
		imports := importNames(file)
		scopes := allFuncs(file)
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			what, ok := isMmapOpen(call, imports, pass.Path)
			if !ok {
				return true
			}
			v, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if v.Name == "_" {
				pass.Reportf(call.Pos(), "result of %s is discarded; the mapping can never be closed", what)
				return true
			}
			var errName string
			if len(as.Lhs) == 2 {
				if id, ok := as.Lhs[1].(*ast.Ident); ok {
					errName = id.Name
				}
			}
			body := innermost(scopes, call.Pos())
			if body == nil {
				return true
			}
			checkMmapLifetime(pass, body, call, what, v.Name, errName)
			return true
		})
	}
	return nil
}

// innermost returns the body of the smallest function scope containing pos.
func innermost(scopes []funcScope, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	bestSize := token.Pos(-1)
	for _, s := range scopes {
		if s.node.Pos() <= pos && pos < s.node.End() {
			if size := s.node.End() - s.node.Pos(); best == nil || size < bestSize {
				best, bestSize = s.body, size
			}
		}
	}
	return best
}

// checkMmapLifetime inspects the opening function's body for the
// opened value's fate: a defer Close, explicit Closes covering every
// return, or an ownership transfer.
func checkMmapLifetime(pass *Pass, body *ast.BlockStmt, open *ast.CallExpr, what, v, errName string) {
	locals := localDecls(body)
	var (
		deferred  bool
		safePos   []token.Pos // positions after which a plain return is fine: Close calls and ownership transfers
		badStores []token.Pos
	)
	transferred := false
	markSafe := func(pos token.Pos) { safePos = append(safePos, pos) }

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if isCloseOn(x.Call, v) {
				deferred = true
			}
		case *ast.CallExpr:
			if isCloseOn(x, v) {
				markSafe(x.Pos())
				return true
			}
			for _, arg := range x.Args {
				if mentionsAsValue(arg, v) {
					transferred = true
					markSafe(x.Pos())
				}
			}
		case *ast.SelectorExpr:
			// A v.Close method value outside a call is an ownership
			// handoff (e.g. t.closer = ix.Close).
			if id, ok := x.X.(*ast.Ident); ok && id.Name == v && x.Sel.Name == "Close" {
				transferred = true
				markSafe(x.Pos())
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				rhs := x.Rhs[0]
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				if !mentionsAsValue(rhs, v) {
					continue
				}
				root := rootIdent(lhs)
				if root == nil || root.Name == v || locals[root.Name] {
					continue
				}
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					// Plain store to a named result or outer variable:
					// ownership leaves with it.
					transferred = true
					markSafe(x.Pos())
					continue
				}
				// Stored into a field/slot rooted outside this
				// function: outlives the opener.
				if pass.Owned(x.Pos()) {
					transferred = true
					markSafe(x.Pos())
				} else {
					badStores = append(badStores, x.Pos())
				}
			}
		}
		return true
	})

	for _, pos := range badStores {
		pass.Reportf(pos, "mmap-aliased %s stored into state that outlives this function without a //seedlint:owns marker", v)
	}

	if deferred {
		return
	}
	if len(badStores) > 0 {
		// The value does leave the function — through the unmarked
		// store already reported above. One finding is enough.
		return
	}
	// A return that carries v out is itself an ownership transfer
	// (handoff constructors: return t, nil).
	returns := plainReturns(body, open.Pos())
	returnsCarry := false
	for _, r := range returns {
		if returnMentions(r.stmt, v) {
			returnsCarry = true
			break
		}
	}

	if len(safePos) == 0 && !transferred && !returnsCarry {
		pass.Reportf(open.Pos(), "result of %s (%s) is never closed and never leaves this function; add defer %s.Close() or close it on every path", what, v, v)
		return
	}

	// Path check: every plain return after the open must be covered by
	// an earlier Close/transfer, carry v out itself, or sit in the
	// open's own error branch. Statement position approximates
	// dominance — good enough for this repo's early-return style, and
	// //seedlint:allow covers the exceptions.
	for _, r := range returns {
		if returnMentions(r.stmt, v) {
			continue
		}
		if errName != "" && r.errGuard == errName {
			continue
		}
		covered := false
		for _, p := range safePos {
			// End(), not Pos(): a Close inside the return expression
			// itself (return ix.Close()) covers this path.
			if p < r.stmt.End() {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(r.stmt.Pos(), "return leaks %s opened by %s at line %d (no Close or ownership transfer on this path)", v, what, pass.Fset.Position(open.Pos()).Line)
		}
	}
}

// isCloseOn reports whether call is v.Close().
func isCloseOn(call *ast.CallExpr, v string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == v
}

// mentionsAsValue reports whether expr uses name as a value — anywhere
// except as the receiver of a method call (v.M() passes a derived
// result, not v itself).
func mentionsAsValue(expr ast.Expr, name string) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == name {
					// Receiver position: inspect only the arguments.
					for _, a := range call.Args {
						ast.Inspect(a, walk)
					}
					return false
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	}
	ast.Inspect(expr, walk)
	return found
}

// plainReturn is a return statement after the open, with the name of
// the error whose != nil check guards it (when trivially detectable).
type plainReturn struct {
	stmt     *ast.ReturnStmt
	errGuard string
}

// plainReturns collects returns in body after pos, skipping nested
// function literals (their returns exit the literal, not the opener).
func plainReturns(body *ast.BlockStmt, pos token.Pos) []plainReturn {
	var out []plainReturn
	var guards []string // stack of err idents guarding the current if-branch
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			g := ""
			if b, ok := x.Cond.(*ast.BinaryExpr); ok && b.Op == token.NEQ {
				if id, ok := b.X.(*ast.Ident); ok {
					if y, ok := b.Y.(*ast.Ident); ok && y.Name == "nil" {
						g = id.Name
					}
				}
			}
			guards = append(guards, g)
			ast.Inspect(x.Body, walk)
			guards = guards[:len(guards)-1]
			if x.Else != nil {
				guards = append(guards, "")
				ast.Inspect(x.Else, walk)
				guards = guards[:len(guards)-1]
			}
			if x.Init != nil {
				ast.Inspect(x.Init, walk)
			}
			ast.Inspect(x.Cond, walk)
			return false
		case *ast.ReturnStmt:
			if x.Pos() > pos {
				g := ""
				if len(guards) > 0 {
					g = guards[len(guards)-1]
				}
				out = append(out, plainReturn{stmt: x, errGuard: g})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// returnMentions reports whether the return carries v out.
func returnMentions(r *ast.ReturnStmt, v string) bool {
	for _, e := range r.Results {
		if mentionsAsValue(e, v) {
			return true
		}
	}
	return false
}
