package seqio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader checks that arbitrary input never panics the parser and
// that every successfully parsed record set round-trips through Write.
func FuzzReader(f *testing.F) {
	f.Add(">a\nACGT\n")
	f.Add(">a desc\nAC\nGT\n>b\nTTTT\n")
	f.Add("")
	f.Add(">\n")
	f.Add("junk before header\n>a\nAC\n")
	f.Add(">a\r\nAC GT\t\r\n\n>b x y\nA\n")
	f.Add(">only-header\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadAll(strings.NewReader(in))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		for _, r := range recs {
			if r.ID == "" {
				t.Fatal("parsed record with empty ID")
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs...); err != nil {
			t.Fatalf("Write failed on parsed records: %v", err)
		}
		back, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed record count: %d vs %d", len(back), len(recs))
		}
		for i := range recs {
			if string(back[i].Seq) != string(recs[i].Seq) {
				t.Fatalf("record %d sequence changed", i)
			}
		}
	})
}
