package seqio

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadSingleRecord(t *testing.T) {
	in := ">sp|P1 test protein\nMKV\nLLA\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.ID != "sp|P1" || r.Description != "test protein" {
		t.Errorf("header parsed as ID=%q Desc=%q", r.ID, r.Description)
	}
	if string(r.Seq) != "MKVLLA" {
		t.Errorf("Seq = %q, want MKVLLA", r.Seq)
	}
}

func TestReadMultipleRecords(t *testing.T) {
	in := ">a\nAC\n>b descr here\nGT\nAC\n>c\nTTT"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[1].ID != "b" || recs[1].Description != "descr here" {
		t.Errorf("record b parsed as %+v", recs[1])
	}
	if string(recs[2].Seq) != "TTT" {
		t.Errorf("record c seq = %q (no trailing newline case)", recs[2].Seq)
	}
}

func TestReadSkipsBlankLinesAndWhitespace(t *testing.T) {
	in := "\n\n>x\nA C\tG\r\n\nT\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGT" {
		t.Errorf("Seq = %q, want ACGT", recs[0].Seq)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("ACGT\n")); err == nil {
		t.Error("data before header accepted")
	}
	if _, err := ReadAll(strings.NewReader(">\nACGT\n")); err == nil {
		t.Error("empty header accepted")
	}
	var pe *ParseError
	_, err := ReadAll(strings.NewReader("junk"))
	if e, ok := err.(*ParseError); ok {
		pe = e
	} else {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if !strings.Contains(pe.Error(), "line 1") {
		t.Errorf("error %q should carry the line number", pe.Error())
	}
}

func TestReadEmptyInput(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty input", len(recs))
	}
}

func TestReaderStreaming(t *testing.T) {
	r := NewReader(strings.NewReader(">a\nAA\n>b\nCC\n"))
	first, err := r.Next()
	if err != nil || first.ID != "a" {
		t.Fatalf("first: %v %v", first, err)
	}
	second, err := r.Next()
	if err != nil || second.ID != "b" {
		t.Fatalf("second: %v %v", second, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestWriteWrapsLines(t *testing.T) {
	seq := bytes.Repeat([]byte{'A'}, LineWidth+5)
	var buf bytes.Buffer
	if err := Write(&buf, &Record{ID: "long", Seq: seq}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 sequence lines", len(lines))
	}
	if len(lines[1]) != LineWidth || len(lines[2]) != 5 {
		t.Errorf("wrap widths %d,%d", len(lines[1]), len(lines[2]))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []*Record{
		{ID: "p1", Description: "first seq", Seq: []byte("MKVLLA")},
		{ID: "p2", Seq: bytes.Repeat([]byte{'W'}, 200)},
		{ID: "empty"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs...); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].ID != recs[i].ID ||
			back[i].Description != recs[i].Description ||
			string(back[i].Seq) != string(recs[i].Seq) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, back[i], recs[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bank.fa")
	recs := []*Record{{ID: "x", Seq: []byte("ACGT")}}
	if err := WriteFile(path, recs...); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || string(back[0].Seq) != "ACGT" {
		t.Errorf("file round trip got %+v", back)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.fa")); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v, want IsNotExist", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	letters := []byte("ACDEFGHIKLMNPQRSTVWY")
	f := func(raw []byte, n uint8) bool {
		nrec := int(n%4) + 1
		var recs []*Record
		for i := 0; i < nrec; i++ {
			seq := make([]byte, len(raw))
			for j, b := range raw {
				seq[j] = letters[int(b)%len(letters)]
			}
			recs = append(recs, &Record{ID: string(rune('a' + i)), Seq: seq})
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs...); err != nil {
			return false
		}
		back, err := ReadAll(&buf)
		if err != nil || len(back) != nrec {
			return false
		}
		for i := range recs {
			if string(back[i].Seq) != string(recs[i].Seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsEmbeddedHeaderChar(t *testing.T) {
	// Regression (found by FuzzReader): a '>' inside sequence data must
	// be rejected, or write/read round trips change the record count.
	if _, err := ReadAll(strings.NewReader(">a\nACGT>b\n")); err == nil {
		t.Error("embedded '>' accepted in sequence data")
	}
}

func TestReadFileGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bank.fa.gz")
	var raw bytes.Buffer
	gz := gzip.NewWriter(&raw)
	if _, err := gz.Write([]byte(">a\nMKVL\n>b\nWWWW\n")); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Seq) != "MKVL" {
		t.Errorf("gzip read got %+v", recs)
	}
	// A .gz file that is not gzipped must error cleanly.
	bad := filepath.Join(dir, "bad.fa.gz")
	if err := os.WriteFile(bad, []byte(">a\nMKVL\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("non-gzip .gz accepted")
	}
}
