// Package seqio reads and writes biological sequences in FASTA format.
//
// Records hold raw ASCII residues; encoding into the compact alphabet
// codes is the caller's job (packages alphabet / translate), so the same
// reader serves protein and nucleotide files.
package seqio

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is a single FASTA record. ID is the first whitespace-delimited
// token of the header line; Description is the remainder (possibly
// empty); Seq holds the residue letters with whitespace removed.
type Record struct {
	ID          string
	Description string
	Seq         []byte
}

// Reader streams FASTA records from an io.Reader.
type Reader struct {
	scanner *bufio.Reader
	pending string // header line of the next record, without '>'
	line    int
	started bool
}

// NewReader returns a Reader consuming FASTA text from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{scanner: bufio.NewReaderSize(r, 1<<16)}
}

// ParseError reports malformed FASTA input.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("seqio: line %d: %s", e.Line, e.Msg)
}

// Next returns the next record, or io.EOF after the last one.
func (r *Reader) Next() (*Record, error) {
	header := r.pending
	r.pending = ""
	if header == "" {
		for {
			line, err := r.readLine()
			if err != nil {
				if err == io.EOF && !r.started {
					return nil, io.EOF
				}
				return nil, err
			}
			if len(line) == 0 {
				continue
			}
			if line[0] != '>' {
				return nil, &ParseError{Line: r.line, Msg: "sequence data before first header"}
			}
			header = strings.TrimSpace(line[1:])
			break
		}
	}
	r.started = true
	var seq []byte
	for {
		line, err := r.readLine()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			r.pending = strings.TrimSpace(line[1:])
			break
		}
		for i := 0; i < len(line); i++ {
			c := line[i]
			if c == ' ' || c == '\t' || c == '\r' {
				continue
			}
			if c == '>' {
				// '>' can only start a header line; embedded in sequence
				// data it would not survive a write/read round trip.
				return nil, &ParseError{Line: r.line, Msg: "unexpected '>' inside sequence data"}
			}
			seq = append(seq, c)
		}
	}
	rec := &Record{Seq: seq}
	if sp := strings.IndexAny(header, " \t"); sp >= 0 {
		rec.ID = header[:sp]
		rec.Description = strings.TrimSpace(header[sp+1:])
	} else {
		rec.ID = header
	}
	if rec.ID == "" {
		return nil, &ParseError{Line: r.line, Msg: "empty record header"}
	}
	return rec, nil
}

func (r *Reader) readLine() (string, error) {
	line, err := r.scanner.ReadString('\n')
	if len(line) > 0 {
		r.line++
		return strings.TrimRight(line, "\r\n"), nil
	}
	return "", err
}

// ReadAll consumes every record from r.
func ReadAll(r io.Reader) ([]*Record, error) {
	fr := NewReader(r)
	var out []*Record
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// ReadFile reads every record from a FASTA file on disk. Files ending
// in ".gz" are transparently decompressed, as sequence databases are
// customarily distributed gzipped.
func ReadFile(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("seqio: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	return ReadAll(r)
}

// LineWidth is the residue wrap width used by Write.
const LineWidth = 70

// Write emits records in FASTA format, wrapping sequence lines at
// LineWidth columns.
func Write(w io.Writer, recs ...*Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if rec.Description != "" {
			fmt.Fprintf(bw, ">%s %s\n", rec.ID, rec.Description)
		} else {
			fmt.Fprintf(bw, ">%s\n", rec.ID)
		}
		for off := 0; off < len(rec.Seq); off += LineWidth {
			end := min(off+LineWidth, len(rec.Seq))
			bw.Write(rec.Seq[off:end])
			bw.WriteByte('\n')
		}
		if len(rec.Seq) == 0 {
			// Keep a blank sequence line so the file round-trips record count.
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteFile writes records to a FASTA file, replacing it if present.
func WriteFile(path string, recs ...*Record) error {
	var buf bytes.Buffer
	if err := Write(&buf, recs...); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
