package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"seedblast/internal/alphabet"
)

func scoreOf(t *testing.T, m *Matrix, a, b string) int {
	t.Helper()
	ca := alphabet.MustEncodeProtein(a)[0]
	cb := alphabet.MustEncodeProtein(b)[0]
	return m.Score(ca, cb)
}

func TestBLOSUM62KnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"A", "A", 4},
		{"W", "W", 11},
		{"C", "C", 9},
		{"P", "P", 7},
		{"A", "R", -1},
		{"W", "P", -4},
		{"I", "V", 3},
		{"I", "L", 2},
		{"E", "Z", 4},
		{"N", "B", 3},
		{"D", "B", 4},
		{"X", "X", -1},
		{"*", "*", 1},
		{"A", "*", -4},
		{"X", "A", 0},
		{"S", "T", 1},
		{"H", "Y", 2},
		{"F", "Y", 3},
	}
	for _, c := range cases {
		if got := scoreOf(t, BLOSUM62, c.a, c.b); got != c.want {
			t.Errorf("BLOSUM62(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBLOSUM62Symmetric(t *testing.T) {
	if !BLOSUM62.IsSymmetric() {
		t.Fatal("BLOSUM62 is not symmetric")
	}
}

func TestBLOSUM62Extremes(t *testing.T) {
	if got := BLOSUM62.MaxScore(); got != 11 {
		t.Errorf("MaxScore = %d, want 11 (W/W)", got)
	}
	if got := BLOSUM62.MinScore(); got != -4 {
		t.Errorf("MinScore = %d, want -4", got)
	}
}

func TestBLOSUM62DiagonalPositive(t *testing.T) {
	// Every standard residue must score positively against itself.
	for a := byte(0); a < alphabet.NumStandardAA; a++ {
		if BLOSUM62.Score(a, a) <= 0 {
			t.Errorf("BLOSUM62 diagonal for %c = %d, want > 0",
				alphabet.ProteinLetter(a), BLOSUM62.Score(a, a))
		}
	}
}

func TestBLOSUM62ExpectedScoreNegative(t *testing.T) {
	// A matrix valid for local alignment statistics must have negative
	// expected score. Under Robinson background frequencies BLOSUM62's
	// expected score is about -0.95 (it is -0.52 under the matrix's own
	// implied frequencies).
	e := BLOSUM62.ExpectedScore(RobinsonFrequencies())
	if e >= 0 {
		t.Fatalf("expected score = %f, want negative", e)
	}
	if e < -1.1 || e > -0.8 {
		t.Errorf("expected score = %f, want about -0.95", e)
	}
}

func TestRobinsonFrequenciesSumToOne(t *testing.T) {
	f := RobinsonFrequencies()
	var sum float64
	for _, p := range f {
		if p <= 0 {
			t.Fatal("non-positive background frequency")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("frequencies sum to %f, want 1", sum)
	}
}

func TestRobinsonFrequenciesIsACopy(t *testing.T) {
	f := RobinsonFrequencies()
	f[0] = 99
	if RobinsonFrequencies()[0] == 99 {
		t.Error("RobinsonFrequencies returned shared state")
	}
}

func TestNewRejectsWrongSize(t *testing.T) {
	if _, err := New("bad", make([]int8, 10)); err == nil {
		t.Error("New accepted a 10-entry table")
	}
}

func TestNewCopiesTable(t *testing.T) {
	table := make([]int8, alphabet.NumAA*alphabet.NumAA)
	m, err := New("copy", table)
	if err != nil {
		t.Fatal(err)
	}
	table[0] = 42
	if m.Score(0, 0) == 42 {
		t.Error("New aliased the caller's table")
	}
}

func TestMatchMismatch(t *testing.T) {
	m := NewMatchMismatch(5, -4)
	if got := scoreOf(t, m, "A", "A"); got != 5 {
		t.Errorf("match = %d, want 5", got)
	}
	if got := scoreOf(t, m, "A", "R"); got != -4 {
		t.Errorf("mismatch = %d, want -4", got)
	}
	if got := scoreOf(t, m, "X", "X"); got != -4 {
		t.Errorf("X/X = %d, want mismatch", got)
	}
	if !m.IsSymmetric() {
		t.Error("match/mismatch matrix must be symmetric")
	}
}

func TestRowMatchesScore(t *testing.T) {
	f := func(a, b byte) bool {
		a %= alphabet.NumAA
		b %= alphabet.NumAA
		return int(BLOSUM62.Row(a)[b]) == BLOSUM62.Score(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableMatchesScore(t *testing.T) {
	tab := BLOSUM62.Table()
	for a := 0; a < alphabet.NumAA; a++ {
		for b := 0; b < alphabet.NumAA; b++ {
			if int(tab[a*alphabet.NumAA+b]) != BLOSUM62.Score(byte(a), byte(b)) {
				t.Fatalf("Table()[%d,%d] disagrees with Score", a, b)
			}
		}
	}
}

func TestName(t *testing.T) {
	if BLOSUM62.Name() != "BLOSUM62" {
		t.Errorf("Name = %q", BLOSUM62.Name())
	}
}
