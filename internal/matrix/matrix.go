// Package matrix provides amino-acid substitution matrices and the
// background residue frequencies needed by the scoring statistics.
//
// The matrix the paper uses is BLOSUM62 (Henikoff & Henikoff 1992,
// reference [8]); it is embedded exactly as distributed by NCBI, over the
// 24-letter alphabet ARNDCQEGHILKMFPSTWYVBZX*. Parametrised
// match/mismatch matrices are provided for tests and ablations.
package matrix

import (
	"fmt"

	"seedblast/internal/alphabet"
)

// Matrix is a substitution score matrix over the protein alphabet.
// Scores are small integers (int8 storage) indexed by a pair of protein
// codes. The zero value is unusable; construct with New or use BLOSUM62.
type Matrix struct {
	name   string
	scores [alphabet.NumAA * alphabet.NumAA]int8
}

// New builds a Matrix from a dense row-major table of
// alphabet.NumAA × alphabet.NumAA scores.
func New(name string, table []int8) (*Matrix, error) {
	if len(table) != alphabet.NumAA*alphabet.NumAA {
		return nil, fmt.Errorf("matrix: table for %s has %d entries, want %d",
			name, len(table), alphabet.NumAA*alphabet.NumAA)
	}
	m := &Matrix{name: name}
	copy(m.scores[:], table)
	return m, nil
}

// Name returns the matrix name (e.g. "BLOSUM62").
func (m *Matrix) Name() string { return m.name }

// Score returns the substitution score for the residue pair (a, b).
// Both arguments must be valid protein codes; out-of-range codes panic
// via the bounds check, which indicates a bug upstream of scoring.
func (m *Matrix) Score(a, b byte) int {
	return int(m.scores[int(a)*alphabet.NumAA+int(b)])
}

// Row returns the scores of residue a against every residue, in code
// order. The returned slice aliases the matrix; callers must not modify it.
func (m *Matrix) Row(a byte) []int8 {
	off := int(a) * alphabet.NumAA
	return m.scores[off : off+alphabet.NumAA]
}

// Table returns the full row-major score table. The returned slice
// aliases the matrix; callers must not modify it. The hardware simulator
// uses this as the contents of each processing element's score ROM.
func (m *Matrix) Table() []int8 { return m.scores[:] }

// MaxScore returns the largest score in the matrix.
func (m *Matrix) MaxScore() int {
	best := int(m.scores[0])
	for _, s := range m.scores {
		if int(s) > best {
			best = int(s)
		}
	}
	return best
}

// MinScore returns the smallest score in the matrix.
func (m *Matrix) MinScore() int {
	worst := int(m.scores[0])
	for _, s := range m.scores {
		if int(s) < worst {
			worst = int(s)
		}
	}
	return worst
}

// IsSymmetric reports whether Score(a,b) == Score(b,a) for all pairs.
// All distributed substitution matrices are symmetric.
func (m *Matrix) IsSymmetric() bool {
	for a := 0; a < alphabet.NumAA; a++ {
		for b := a + 1; b < alphabet.NumAA; b++ {
			if m.scores[a*alphabet.NumAA+b] != m.scores[b*alphabet.NumAA+a] {
				return false
			}
		}
	}
	return true
}

// ExpectedScore returns the expected per-position score
// Σ p(a)·p(b)·s(a,b) over the 20 standard amino acids under the given
// background frequencies. For a matrix usable with local alignment
// statistics this must be negative.
func (m *Matrix) ExpectedScore(freqs *[alphabet.NumStandardAA]float64) float64 {
	var e float64
	for a := 0; a < alphabet.NumStandardAA; a++ {
		row := m.Row(byte(a))
		for b := 0; b < alphabet.NumStandardAA; b++ {
			e += freqs[a] * freqs[b] * float64(row[b])
		}
	}
	return e
}

// NewMatchMismatch builds a simple matrix scoring match for identical
// standard residues and mismatch otherwise. X and * score mismatch
// against everything (including themselves). Useful in tests where exact
// hand-computable scores are needed.
func NewMatchMismatch(match, mismatch int8) *Matrix {
	m := &Matrix{name: fmt.Sprintf("match%d/mismatch%d", match, mismatch)}
	for a := 0; a < alphabet.NumAA; a++ {
		for b := 0; b < alphabet.NumAA; b++ {
			s := mismatch
			if a == b && a < alphabet.NumStandardAA {
				s = match
			}
			m.scores[a*alphabet.NumAA+b] = s
		}
	}
	return m
}

// RobinsonFrequencies returns the Robinson & Robinson (1991) background
// amino-acid frequencies used by NCBI BLAST for protein statistics and by
// the synthetic workload generator. Indexed by protein code; the 20
// entries sum to 1 within rounding.
func RobinsonFrequencies() *[alphabet.NumStandardAA]float64 {
	f := robinson // copy
	return &f
}

var robinson = [alphabet.NumStandardAA]float64{
	alphabet.Ala: 0.07805,
	alphabet.Arg: 0.05129,
	alphabet.Asn: 0.04487,
	alphabet.Asp: 0.05364,
	alphabet.Cys: 0.01925,
	alphabet.Gln: 0.04264,
	alphabet.Glu: 0.06295,
	alphabet.Gly: 0.07377,
	alphabet.His: 0.02199,
	alphabet.Ile: 0.05142,
	alphabet.Leu: 0.09019,
	alphabet.Lys: 0.05744,
	alphabet.Met: 0.02243,
	alphabet.Phe: 0.03856,
	alphabet.Pro: 0.05203,
	alphabet.Ser: 0.07120,
	alphabet.Thr: 0.05841,
	alphabet.Trp: 0.01330,
	alphabet.Tyr: 0.03216,
	alphabet.Val: 0.06441,
}
