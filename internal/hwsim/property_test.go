package hwsim

import (
	"testing"
	"testing/quick"

	"seedblast/internal/align"
	"seedblast/internal/bank"
	"seedblast/internal/matrix"
)

// TestOperatorPropertyRandomConfigs drives the micro-engine with
// randomized array geometry and batch sizes, checking that every
// (PE, IL1) pair is scored exactly once with the software score,
// regardless of slot structure or FIFO depth.
func TestOperatorPropertyRandomConfigs(t *testing.T) {
	f := func(pesRaw, slotRaw, fifoRaw, n0Raw, n1Raw uint8, seed int16) bool {
		pes := int(pesRaw%24) + 1
		slot := int(slotRaw%8) + 1
		fifoDepth := int(fifoRaw%8) + 1
		subLen := 12
		n0 := int(n0Raw%uint8(pes)) + 1
		n1 := int(n1Raw%12) + 1

		cfg := PSCConfig{
			NumPEs: pes, SlotSize: slot, FIFODepth: fifoDepth,
			SubLen: subLen, Threshold: 1, Matrix: matrix.BLOSUM62,
		}
		op, err := NewOperator(cfg)
		if err != nil {
			return false
		}
		rng := bank.NewRNG(int64(seed))
		il0 := make([][]byte, n0)
		for i := range il0 {
			il0[i] = bank.RandomProtein(rng, subLen)
		}
		var il1 []byte
		il1Subs := make([][]byte, n1)
		for j := range il1Subs {
			il1Subs[j] = bank.RandomProtein(rng, subLen)
			il1 = append(il1, il1Subs[j]...)
		}
		if err := op.LoadIL0(il0); err != nil {
			return false
		}
		recs, err := op.StreamIL1(il1, n1)
		if err != nil {
			return false
		}
		seen := map[[2]int]int{}
		for _, r := range recs {
			if _, dup := seen[[2]int{r.PE, r.IL1}]; dup {
				return false // duplicate emission
			}
			seen[[2]int{r.PE, r.IL1}] = r.Score
		}
		for i := 0; i < n0; i++ {
			for j := 0; j < n1; j++ {
				want := align.WindowScore(il0[i], il1Subs[j], matrix.BLOSUM62)
				got, ok := seen[[2]int{i, j}]
				if want >= 1 {
					if !ok || got != want {
						return false
					}
					delete(seen, [2]int{i, j})
				}
			}
		}
		return len(seen) == 0 // nothing extra emitted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestModelCyclesMonotone checks the closed-form cycle model's basic
// monotonicity: more data can never cost fewer cycles.
func TestModelCyclesMonotone(t *testing.T) {
	cfg := testPSC(16, 20)
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw%16) + 1
		b := int(bRaw%64) + 1
		if cfg.PassCycles(a, b) > cfg.PassCycles(a, b+1) {
			return false
		}
		if a < 16 && cfg.PassCycles(a, b) > cfg.PassCycles(a+1, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLoadCyclesZeroAndOne pins the load model's edge cases.
func TestLoadCyclesZeroAndOne(t *testing.T) {
	cfg := testPSC(8, 20)
	if cfg.LoadCycles(0) != 0 {
		t.Error("loading nothing should cost nothing")
	}
	if cfg.LoadCycles(1) != uint64(cfg.SubLen) {
		t.Errorf("single load = %d, want SubLen", cfg.LoadCycles(1))
	}
	if cfg.StreamCycles(0, 5) != 0 || cfg.StreamCycles(5, 0) != 0 {
		t.Error("empty stream should cost nothing")
	}
}
