package hwsim

import (
	"fmt"

	"seedblast/internal/alphabet"
)

// Record is one result produced by the PSC operator: PE number (which
// identifies the IL0 sub-sequence of the current batch), the IL1
// sub-sequence number within the stream, and the ungapped score. The
// output controller writes these to the result port.
type Record struct {
	PE    int
	IL1   int
	Score int
}

// pe is one processing element (Figure 2): a shift register holding an
// IL0 sub-sequence with a feedback loop, a substitution ROM, an adder
// with zero clamp and a running maximum.
type pe struct {
	reg    []byte // IL0 sub-sequence
	loaded bool
	pos    int   // next residue of the current comparison
	score  int32 // running (clamped) sum
	best   int32 // running maximum
	il1    int   // index of the IL1 sub-sequence being scored
}

// consume feeds one IL1 residue into the PE; reports whether the PE
// finished a sub-sequence this cycle (finish score in best). The
// substitution ROM is the flat matrix table, row stride alphabet.NumAA
// (matrix.Table() is pinned to NumAA×NumAA by test).
func (p *pe) consume(c byte, table []int8, subLen int) bool {
	p.score += int32(table[int(p.reg[p.pos])*alphabet.NumAA+int(c)])
	if p.score < 0 {
		p.score = 0 // zero clamp: best-segment semantics
	}
	if p.score > p.best {
		p.best = p.score
	}
	p.pos++
	if p.pos == subLen {
		return true
	}
	return false
}

func (p *pe) reset(il1Next int) {
	p.pos = 0
	p.score = 0
	p.best = 0
	p.il1 = il1Next
}

// fifo is a bounded ring buffer standing in for one slot's result FIFO.
type fifo struct {
	buf  []Record
	head int
	n    int
}

func newFIFO(depth int) *fifo { return &fifo{buf: make([]Record, depth)} }

func (f *fifo) full() bool  { return f.n == len(f.buf) }
func (f *fifo) empty() bool { return f.n == 0 }

func (f *fifo) push(r Record) {
	f.buf[(f.head+f.n)%len(f.buf)] = r
	f.n++
}

func (f *fifo) pop() Record {
	r := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return r
}

// Operator is the cycle-accurate PSC operator micro-engine: input
// controllers, the slotted PE pipeline with register barriers, per-slot
// result management feeding cascaded FIFOs, and the output controller
// (Figure 1). The master controller's phases are the LoadIL0 /
// StreamIL1 calls.
type Operator struct {
	cfg    PSCConfig
	pes    []pe
	fifos  []*fifo // one per slot, cascading toward the output port
	loaded int

	cycles uint64 // total cycles across all phases
	stalls uint64 // cycles lost to result back-pressure

	// Trace, when non-nil, receives one line per micro-architectural
	// event (PE finish, FIFO push, output pop, stall) with the cycle it
	// occurred in. Used by cmd/psctrace; nil in normal operation.
	Trace func(cycle uint64, event string)
}

func (op *Operator) trace(format string, args ...any) {
	if op.Trace != nil {
		op.Trace(op.cycles, fmt.Sprintf(format, args...))
	}
}

// NewOperator builds a PSC operator micro-engine.
func NewOperator(cfg PSCConfig) (*Operator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	op := &Operator{
		cfg: cfg,
		pes: make([]pe, cfg.NumPEs),
	}
	for i := range op.pes {
		op.pes[i].reg = make([]byte, cfg.SubLen)
	}
	for s := 0; s < cfg.NumSlots(); s++ {
		op.fifos = append(op.fifos, newFIFO(cfg.FIFODepth))
	}
	return op, nil
}

// Cycles returns the total simulated cycles so far.
func (op *Operator) Cycles() uint64 { return op.cycles }

// StallCycles returns cycles lost to FIFO back-pressure.
func (op *Operator) StallCycles() uint64 { return op.stalls }

// LoadIL0 loads up to NumPEs IL0 sub-sequences into the PE shift
// registers (initialisation phase of §3.2). Loading streams one
// residue per cycle through the IL0 pipeline, so it costs
// n·SubLen + peDelay(n-1) cycles; register contents are set directly
// since the load path has no data-dependent behaviour.
func (op *Operator) LoadIL0(subs [][]byte) error {
	if len(subs) == 0 || len(subs) > op.cfg.NumPEs {
		return fmt.Errorf("hwsim: LoadIL0 with %d sub-sequences (array size %d)",
			len(subs), op.cfg.NumPEs)
	}
	for i, s := range subs {
		if len(s) != op.cfg.SubLen {
			return fmt.Errorf("hwsim: IL0 sub-sequence %d has length %d, want %d",
				i, len(s), op.cfg.SubLen)
		}
		copy(op.pes[i].reg, s)
		op.pes[i].loaded = true
		op.pes[i].reset(0)
	}
	for i := len(subs); i < op.cfg.NumPEs; i++ {
		op.pes[i].loaded = false
	}
	op.loaded = len(subs)
	op.cycles += uint64(len(subs)*op.cfg.SubLen + op.cfg.peDelay(len(subs)-1))
	return nil
}

// StreamIL1 streams count IL1 sub-sequences (concatenated in il1,
// count·SubLen bytes) through the pipeline and returns the result
// records in output-port order. Each PE scores every IL1 sub-sequence;
// scores meeting the threshold enter the slot FIFO and drain through
// the cascade at one record per cycle. When a slot FIFO is full at a
// push, the master controller freezes the pipeline until the cascade
// has drained (counted in StallCycles).
func (op *Operator) StreamIL1(il1 []byte, count int) ([]Record, error) {
	L := op.cfg.SubLen
	if len(il1) != count*L {
		return nil, fmt.Errorf("hwsim: IL1 stream length %d, want %d·%d", len(il1), count, L)
	}
	if op.loaded == 0 {
		return nil, fmt.Errorf("hwsim: StreamIL1 before LoadIL0")
	}
	table := op.cfg.Matrix.Table()
	for i := 0; i < op.loaded; i++ {
		op.pes[i].reset(0)
	}
	lastDelay := op.cfg.peDelay(op.loaded - 1)
	streamLen := len(il1)
	var out []Record

	// advance counts pipeline steps actually taken: during a stall the
	// in-flight residues freeze with the array, so consumption indices
	// are functions of advance, not of wall cycles.
	advance := 0
	// Safety bound: a correct run needs at most one cycle per pipeline
	// step plus one per record through the cascade.
	bound := uint64(streamLen+lastDelay+16) +
		uint64(op.loaded)*uint64(count+1) +
		uint64(len(op.fifos)*op.cfg.FIFODepth)
	for start := op.cycles; ; {
		if op.cycles-start > 4*bound+1024 {
			return nil, fmt.Errorf("hwsim: pipeline failed to drain (simulator bug)")
		}
		op.cycles++

		// Output controller: pop one record per cycle from the last
		// FIFO; cascade one record forward between adjacent FIFOs.
		last := len(op.fifos) - 1
		if !op.fifos[last].empty() {
			r := op.fifos[last].pop()
			op.trace("output pe=%d il1=%d score=%d", r.PE, r.IL1, r.Score)
			out = append(out, r)
		}
		for s := last - 1; s >= 0; s-- {
			if !op.fifos[s].empty() && !op.fifos[s+1].full() {
				op.fifos[s+1].push(op.fifos[s].pop())
			}
		}

		if advance > streamLen-1+lastDelay {
			// Stream fully consumed: keep cycling only to drain.
			done := true
			for _, f := range op.fifos {
				if !f.empty() {
					done = false
					break
				}
			}
			if done {
				op.cycles-- // this cycle did no work
				break
			}
			continue
		}

		// Back-pressure check: would any PE finishing this step push
		// into a full FIFO? If so the master controller freezes the
		// array for the cycle and lets the cascade drain.
		blocked := false
		for p := 0; p < op.loaded; p++ {
			k := advance - op.cfg.peDelay(p)
			if k < 0 || k >= streamLen {
				continue
			}
			if op.pes[p].pos == L-1 && op.fifos[p/op.cfg.SlotSize].full() {
				blocked = true
				break
			}
		}
		if blocked {
			op.stalls++
			op.trace("stall: slot FIFO full, pipeline frozen")
			continue
		}

		// All loaded PEs consume their in-flight residue.
		for p := 0; p < op.loaded; p++ {
			k := advance - op.cfg.peDelay(p)
			if k < 0 || k >= streamLen {
				continue
			}
			pep := &op.pes[p]
			if pep.consume(il1[k], table, L) {
				if int(pep.best) >= op.cfg.Threshold {
					op.trace("pe %d (slot %d) finishes il1=%d score=%d ≥ T: push",
						p, p/op.cfg.SlotSize, pep.il1, pep.best)
					op.fifos[p/op.cfg.SlotSize].push(Record{
						PE:    p,
						IL1:   pep.il1,
						Score: int(pep.best),
					})
				} else {
					op.trace("pe %d finishes il1=%d score=%d < T: drop",
						p, pep.il1, pep.best)
				}
				pep.reset(pep.il1 + 1)
			}
		}
		advance++
	}
	return out, nil
}
