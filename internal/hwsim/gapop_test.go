package hwsim

import (
	"testing"

	"seedblast/internal/gapped"
)

func TestGapOpEstimate(t *testing.T) {
	cfg := DefaultGapOp(16)
	st := gapped.Stats{Extended: 10, DPRows: 3300}
	rep, err := cfg.EstimateStep3(st)
	if err != nil {
		t.Fatal(err)
	}
	wantCycles := uint64(3300) + 10*uint64(2*16+16)
	if rep.Cycles != wantCycles {
		t.Errorf("cycles = %d, want %d", rep.Cycles, wantCycles)
	}
	if rep.Seconds != float64(wantCycles)/cfg.ClockHz {
		t.Error("seconds inconsistent with cycles")
	}
	if rep.Tasks != 10 {
		t.Errorf("tasks = %d", rep.Tasks)
	}
}

func TestGapOpZeroWork(t *testing.T) {
	cfg := DefaultGapOp(16)
	rep, err := cfg.EstimateStep3(gapped.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 0 || rep.Seconds != 0 {
		t.Errorf("zero work should cost nothing: %+v", rep)
	}
}

func TestGapOpValidate(t *testing.T) {
	for _, bad := range []GapOpConfig{
		{Band: 0, ClockHz: 1e8},
		{Band: 16, ClockHz: 0},
		{Band: 16, ClockHz: 1e8, Fill: -1},
	} {
		if _, err := bad.EstimateStep3(gapped.Stats{}); err == nil {
			t.Errorf("invalid config accepted: %+v", bad)
		}
	}
}

func TestGapOpScalesWithWork(t *testing.T) {
	cfg := DefaultGapOp(16)
	small, _ := cfg.EstimateStep3(gapped.Stats{Extended: 5, DPRows: 1000})
	large, _ := cfg.EstimateStep3(gapped.Stats{Extended: 50, DPRows: 10000})
	if large.Seconds <= small.Seconds {
		t.Error("more work should take longer")
	}
}
