package hwsim

import (
	"fmt"

	"seedblast/internal/gapped"
)

// GapOpConfig describes the gap-extension operator the paper's
// conclusion proposes as future work: "another reconfigurable operator
// dedicated to the computation of similarities including gap penalty",
// running on the RASC-100's second FPGA concurrently with the PSC
// operator. The model is a banded systolic aligner: an anti-diagonal
// wavefront of 2·Band+1 cells advances one query row per cycle, so one
// banded extension of an L-residue query costs L + 2·Band + Fill
// cycles, plus the query-load stream.
type GapOpConfig struct {
	Band    int     // band half-width (matches the gapped stage's Band)
	ClockHz float64 // operator clock
	Fill    int     // pipeline fill/drain cycles per task
}

// DefaultGapOp returns a gap operator matched to the gapped-stage
// defaults at the RASC-100 clock.
func DefaultGapOp(band int) GapOpConfig {
	return GapOpConfig{Band: band, ClockHz: 100e6, Fill: 16}
}

// Validate checks invariants.
func (c *GapOpConfig) Validate() error {
	switch {
	case c.Band <= 0:
		return fmt.Errorf("hwsim: gap operator band must be positive")
	case c.ClockHz <= 0:
		return fmt.Errorf("hwsim: gap operator clock must be positive")
	case c.Fill < 0:
		return fmt.Errorf("hwsim: gap operator fill must be non-negative")
	}
	return nil
}

// GapOpReport is the simulated timing of running the gapped stage's
// extensions on the gap operator.
type GapOpReport struct {
	Tasks   int
	Cycles  uint64
	Seconds float64
}

// EstimateStep3 models running the recorded gapped-stage work on the
// gap operator: each extended DP streams its query once (DPRows cycles
// across all tasks) and sweeps the band wavefront (2·Band + Fill extra
// cycles per task).
func (c *GapOpConfig) EstimateStep3(st gapped.Stats) (*GapOpReport, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cycles := uint64(st.DPRows) + uint64(st.Extended)*uint64(2*c.Band+c.Fill)
	return &GapOpReport{
		Tasks:   st.Extended,
		Cycles:  cycles,
		Seconds: float64(cycles) / c.ClockHz,
	}, nil
}
