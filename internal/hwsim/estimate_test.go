package hwsim

import (
	"testing"
)

func TestEstimateMatchesRunStep2(t *testing.T) {
	ix0, ix1 := testIndexes(t, 6, 8, 150, 8)
	for _, fpgas := range []int{1, 2} {
		for _, pes := range []int{16, 64, 192} {
			d := deviceFor(t, ix0, pes, fpgas, 22)
			full, err := d.RunStep2(ix0, ix1)
			if err != nil {
				t.Fatal(err)
			}
			est, err := d.EstimateStep2(ix0, ix1, full.Records)
			if err != nil {
				t.Fatal(err)
			}
			if est.Pairs != full.Pairs {
				t.Errorf("pes=%d fpgas=%d: pairs %d vs %d", pes, fpgas, est.Pairs, full.Pairs)
			}
			if len(est.CyclesPerFPGA) != len(full.CyclesPerFPGA) {
				t.Fatalf("cycle vectors differ in length")
			}
			for i := range est.CyclesPerFPGA {
				if est.CyclesPerFPGA[i] != full.CyclesPerFPGA[i] {
					t.Errorf("pes=%d fpgas=%d: fpga %d cycles %d vs %d",
						pes, fpgas, i, est.CyclesPerFPGA[i], full.CyclesPerFPGA[i])
				}
			}
			if est.BytesToDevice != full.BytesToDevice ||
				est.BytesFromDev != full.BytesFromDev ||
				est.Transfers != full.Transfers {
				t.Errorf("pes=%d fpgas=%d: traffic accounting differs", pes, fpgas)
			}
			if est.Seconds != full.Seconds || est.Utilization != full.Utilization {
				t.Errorf("pes=%d fpgas=%d: derived timing differs (%.9f vs %.9f)",
					pes, fpgas, est.Seconds, full.Seconds)
			}
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	ix0, ix1 := testIndexes(t, 2, 2, 60, 4)
	d := deviceFor(t, ix0, 64, 1, 20)
	if _, err := d.EstimateStep2(ix0, ix1, -1); err == nil {
		t.Error("negative record count accepted")
	}
}

func TestEstimateFewerRecordsLessTraffic(t *testing.T) {
	ix0, ix1 := testIndexes(t, 4, 6, 120, 6)
	d := deviceFor(t, ix0, 64, 1, 20)
	many, err := d.EstimateStep2(ix0, ix1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	few, err := d.EstimateStep2(ix0, ix1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if few.BytesFromDev >= many.BytesFromDev {
		t.Error("record count did not change result traffic")
	}
	if few.ComputeSeconds != many.ComputeSeconds {
		t.Error("record count should not change compute time")
	}
}
