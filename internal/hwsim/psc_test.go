package hwsim

import (
	"sort"
	"testing"

	"seedblast/internal/align"
	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/matrix"
)

const testSubLen = 16

func testPSC(numPEs, threshold int) PSCConfig {
	return PSCConfig{
		NumPEs:    numPEs,
		SlotSize:  4,
		FIFODepth: 8,
		SubLen:    testSubLen,
		Threshold: threshold,
		Matrix:    matrix.BLOSUM62,
	}
}

// randWindows builds n random neighbourhood windows.
func randWindows(seed int64, n int) [][]byte {
	rng := bank.NewRNG(seed)
	out := make([][]byte, n)
	for i := range out {
		out[i] = bank.RandomProtein(rng, testSubLen)
	}
	return out
}

func flatten(ws [][]byte) []byte {
	var out []byte
	for _, w := range ws {
		out = append(out, w...)
	}
	return out
}

func TestPSCConfigValidate(t *testing.T) {
	good := testPSC(8, 20)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*PSCConfig){
		func(c *PSCConfig) { c.NumPEs = 0 },
		func(c *PSCConfig) { c.SlotSize = 0 },
		func(c *PSCConfig) { c.FIFODepth = 0 },
		func(c *PSCConfig) { c.SubLen = 0 },
		func(c *PSCConfig) { c.Threshold = 0 },
		func(c *PSCConfig) { c.Matrix = nil },
	}
	for i, mut := range bads {
		c := testPSC(8, 20)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPEDelayAndSlots(t *testing.T) {
	c := testPSC(10, 20) // slot size 4 → slots of 4,4,2
	if c.NumSlots() != 3 {
		t.Errorf("NumSlots = %d, want 3", c.NumSlots())
	}
	// PE 0: no delay beyond its own register.
	if c.peDelay(0) != 0 {
		t.Errorf("peDelay(0) = %d", c.peDelay(0))
	}
	// PE 5 is in slot 1: 5 PE registers + 1 barrier.
	if c.peDelay(5) != 6 {
		t.Errorf("peDelay(5) = %d, want 6", c.peDelay(5))
	}
	// PE 9 in slot 2: 9 + 2.
	if c.peDelay(9) != 11 {
		t.Errorf("peDelay(9) = %d, want 11", c.peDelay(9))
	}
}

func TestOperatorScoresMatchWindowScore(t *testing.T) {
	// Every (PE, IL1) pair's score must equal the software WindowScore.
	il0 := randWindows(1, 5)
	il1 := randWindows(2, 9)
	op, err := NewOperator(testPSC(8, 1)) // threshold 1: keep everything positive
	if err != nil {
		t.Fatal(err)
	}
	if err := op.LoadIL0(il0); err != nil {
		t.Fatal(err)
	}
	recs, err := op.StreamIL1(flatten(il1), len(il1))
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int]int{}
	for _, r := range recs {
		got[[2]int{r.PE, r.IL1}] = r.Score
	}
	for i := range il0 {
		for j := range il1 {
			want := align.WindowScore(il0[i], il1[j], matrix.BLOSUM62)
			if want >= 1 {
				if got[[2]int{i, j}] != want {
					t.Fatalf("PE %d IL1 %d: score %d, want %d", i, j, got[[2]int{i, j}], want)
				}
				delete(got, [2]int{i, j})
			}
		}
	}
	if len(got) != 0 {
		t.Errorf("%d unexpected records", len(got))
	}
}

func TestOperatorThresholdFilters(t *testing.T) {
	il0 := randWindows(3, 4)
	il1 := randWindows(4, 6)
	const threshold = 18
	op, _ := NewOperator(testPSC(4, threshold))
	if err := op.LoadIL0(il0); err != nil {
		t.Fatal(err)
	}
	recs, err := op.StreamIL1(flatten(il1), len(il1))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range il0 {
		for j := range il1 {
			if align.WindowScore(il0[i], il1[j], matrix.BLOSUM62) >= threshold {
				want++
			}
		}
	}
	if len(recs) != want {
		t.Errorf("records = %d, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Score < threshold {
			t.Errorf("record below threshold: %+v", r)
		}
	}
}

func TestOperatorCyclesMatchModelSparse(t *testing.T) {
	// In the sparse-results regime the micro-engine's cycle count must
	// match the closed-form model within the cascade-drain bound.
	for _, tc := range []struct{ pes, n0, n1 int }{
		{8, 8, 20},
		{8, 3, 20}, // under-filled array
		{16, 16, 5},
		{16, 16, 1},
		{4, 1, 1},
	} {
		cfg := testPSC(tc.pes, 60) // high threshold: almost no results
		op, _ := NewOperator(cfg)
		il0 := randWindows(int64(tc.pes), tc.n0)
		il1 := randWindows(int64(tc.pes)+100, tc.n1)
		if err := op.LoadIL0(il0); err != nil {
			t.Fatal(err)
		}
		recs, err := op.StreamIL1(flatten(il1), len(il1))
		if err != nil {
			t.Fatal(err)
		}
		micro := op.Cycles()
		model := cfg.PassCycles(tc.n0, tc.n1)
		slack := uint64(cfg.NumSlots() + len(recs) + 2)
		if micro < model || micro > model+slack {
			t.Errorf("%+v: micro=%d model=%d (+%d slack)", tc, micro, model, slack)
		}
	}
}

func TestOperatorBackPressureStalls(t *testing.T) {
	// Every pair is a result and the array produces more than one
	// record per cycle on average (NumPEs > SubLen), so the single
	// output port cannot keep up: depth-2 FIFOs must back-pressure,
	// and every record must still come out exactly once.
	rng := bank.NewRNG(55)
	w := bank.RandomProtein(rng, testSubLen)
	const numPEs, numIL1 = 24, 12
	il0 := make([][]byte, numPEs)
	il1 := make([][]byte, numIL1)
	for i := range il0 {
		il0[i] = w
	}
	for j := range il1 {
		il1[j] = w
	}
	cfg := testPSC(numPEs, 1)
	cfg.FIFODepth = 2
	op, _ := NewOperator(cfg)
	if err := op.LoadIL0(il0); err != nil {
		t.Fatal(err)
	}
	recs, err := op.StreamIL1(flatten(il1), len(il1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != numPEs*numIL1 {
		t.Fatalf("records = %d, want %d (dense hit case)", len(recs), numPEs*numIL1)
	}
	if op.StallCycles() == 0 {
		t.Error("dense results at >1 record/cycle with depth-2 FIFOs should stall")
	}
	// All pairs present exactly once.
	seen := map[[2]int]bool{}
	for _, r := range recs {
		k := [2]int{r.PE, r.IL1}
		if seen[k] {
			t.Fatalf("duplicate record %+v", r)
		}
		seen[k] = true
	}
}

func TestOperatorNoStallsWhenProductionUnderDrainRate(t *testing.T) {
	// With NumPEs < SubLen the staggered slot delays serialise pushes
	// below one record per cycle, so even dense hits never stall.
	rng := bank.NewRNG(56)
	w := bank.RandomProtein(rng, testSubLen)
	il0 := make([][]byte, 8)
	il1 := make([][]byte, 12)
	for i := range il0 {
		il0[i] = w
	}
	for j := range il1 {
		il1[j] = w
	}
	cfg := testPSC(8, 1)
	cfg.FIFODepth = 2
	op, _ := NewOperator(cfg)
	if err := op.LoadIL0(il0); err != nil {
		t.Fatal(err)
	}
	recs, err := op.StreamIL1(flatten(il1), len(il1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8*12 {
		t.Fatalf("records = %d, want 96", len(recs))
	}
	if op.StallCycles() != 0 {
		t.Errorf("unexpected stalls: %d", op.StallCycles())
	}
}

func TestOperatorPartialLoadIgnoresEmptyPEs(t *testing.T) {
	il0 := randWindows(7, 2)
	il1 := randWindows(8, 4)
	op, _ := NewOperator(testPSC(8, 1))
	if err := op.LoadIL0(il0); err != nil {
		t.Fatal(err)
	}
	recs, err := op.StreamIL1(flatten(il1), len(il1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.PE >= 2 {
			t.Errorf("record from unloaded PE %d", r.PE)
		}
	}
}

func TestOperatorReload(t *testing.T) {
	// A second batch must fully replace the first.
	il0a := randWindows(9, 4)
	il0b := randWindows(10, 2)
	il1 := randWindows(11, 3)
	op, _ := NewOperator(testPSC(4, 1))
	if err := op.LoadIL0(il0a); err != nil {
		t.Fatal(err)
	}
	if _, err := op.StreamIL1(flatten(il1), len(il1)); err != nil {
		t.Fatal(err)
	}
	if err := op.LoadIL0(il0b); err != nil {
		t.Fatal(err)
	}
	recs, err := op.StreamIL1(flatten(il1), len(il1))
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].PE < recs[j].PE })
	for _, r := range recs {
		if r.PE >= 2 {
			t.Fatalf("stale PE %d produced a record after reload", r.PE)
		}
		want := align.WindowScore(il0b[r.PE], il1[r.IL1], matrix.BLOSUM62)
		if r.Score != want {
			t.Errorf("reloaded PE %d score %d, want %d", r.PE, r.Score, want)
		}
	}
}

func TestOperatorErrors(t *testing.T) {
	op, _ := NewOperator(testPSC(4, 10))
	if _, err := op.StreamIL1(nil, 0); err == nil {
		t.Error("stream before load accepted")
	}
	if err := op.LoadIL0(nil); err == nil {
		t.Error("empty load accepted")
	}
	if err := op.LoadIL0(randWindows(1, 5)); err == nil {
		t.Error("overfull load accepted")
	}
	short := [][]byte{make([]byte, testSubLen-1)}
	if err := op.LoadIL0(short); err == nil {
		t.Error("short sub-sequence accepted")
	}
	if err := op.LoadIL0(randWindows(2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := op.StreamIL1(make([]byte, 5), 1); err == nil {
		t.Error("mis-sized stream accepted")
	}
}

// The PE substitution ROM indexes the flat matrix table with row
// stride alphabet.NumAA. Pin the table layout so a change to the
// alphabet cannot silently misindex the operator.
func TestSubstitutionTableStride(t *testing.T) {
	table := matrix.BLOSUM62.Table()
	if len(table) != alphabet.NumAA*alphabet.NumAA {
		t.Fatalf("matrix.Table() has %d entries, want NumAA²=%d; the PSC ROM stride is broken",
			len(table), alphabet.NumAA*alphabet.NumAA)
	}
	for a := 0; a < alphabet.NumAA; a++ {
		for b := 0; b < alphabet.NumAA; b++ {
			if got, want := int(table[a*alphabet.NumAA+b]), matrix.BLOSUM62.Score(byte(a), byte(b)); got != want {
				t.Fatalf("table[%d*NumAA+%d]=%d, Score=%d: stride mismatch", a, b, got, want)
			}
		}
	}
}
