// Package hwsim simulates the paper's hardware: the Parallel Sequence
// Comparison (PSC) operator — a SIMD array of processing elements that
// scores one IL0 sub-sequence against a stream of IL1 sub-sequences —
// and the SGI RASC-100 accelerator it runs on (two Virtex-4 FPGAs
// behind a NUMAlink-attached DMA engine).
//
// The simulator has two layers that are cross-validated against each
// other in tests:
//
//   - a cycle-accurate micro-engine (PE shift registers, score ROMs,
//     slot register barriers, cascaded result FIFOs, input/output
//     controllers) mirroring Figures 1 and 2 of the paper, used on
//     small workloads and to validate the timing model; and
//   - a batch-level device model (Device) that computes identical
//     functional results and accounts cycles with closed-form per-pass
//     formulas plus a DMA/host-link model, fast enough for the paper's
//     table-scale experiments.
//
// Functional results are bit-identical to the CPU ungapped engine: the
// same hits in the same deterministic order.
package hwsim

import (
	"fmt"

	"seedblast/internal/matrix"
)

// PSCConfig describes one PSC operator instance (one FPGA design).
type PSCConfig struct {
	NumPEs    int // size of the PE array (the paper builds 64/128/192)
	SlotSize  int // PEs per slot; slots are separated by register barriers
	FIFODepth int // result FIFO depth per slot
	SubLen    int // sub-sequence length W + 2N handled by each PE
	Threshold int // ungapped score threshold applied by result management
	Matrix    *matrix.Matrix
}

// DefaultPSC returns the paper's largest configuration: 192 PEs in
// slots of 8 at sub-sequence length 32.
func DefaultPSC(m *matrix.Matrix, subLen, threshold int) PSCConfig {
	return PSCConfig{
		NumPEs:    192,
		SlotSize:  8,
		FIFODepth: 64,
		SubLen:    subLen,
		Threshold: threshold,
		Matrix:    m,
	}
}

// Validate checks configuration invariants.
func (c *PSCConfig) Validate() error {
	switch {
	case c.NumPEs <= 0:
		return fmt.Errorf("hwsim: NumPEs must be positive, got %d", c.NumPEs)
	case c.SlotSize <= 0:
		return fmt.Errorf("hwsim: SlotSize must be positive, got %d", c.SlotSize)
	case c.FIFODepth <= 0:
		return fmt.Errorf("hwsim: FIFODepth must be positive, got %d", c.FIFODepth)
	case c.SubLen <= 0:
		return fmt.Errorf("hwsim: SubLen must be positive, got %d", c.SubLen)
	case c.Threshold <= 0:
		return fmt.Errorf("hwsim: Threshold must be positive, got %d", c.Threshold)
	case c.Matrix == nil:
		return fmt.Errorf("hwsim: Matrix is required")
	}
	return nil
}

// NumSlots returns the number of PE slots (the last may be partial).
func (c *PSCConfig) NumSlots() int {
	return (c.NumPEs + c.SlotSize - 1) / c.SlotSize
}

// peDelay returns the pipeline latency, in cycles, from the IL1 input
// port to PE p: one register per PE plus one extra register per slot
// barrier crossed. This is the "short and parallel data paths" pipeline
// of §3.1.
func (c *PSCConfig) peDelay(p int) int {
	return p + p/c.SlotSize
}

// DeviceConfig describes a RASC-100 style accelerator.
type DeviceConfig struct {
	PSC          PSCConfig
	NumFPGAs     int     // the RASC-100 carries two Virtex-4 FPGAs
	ClockHz      float64 // PE array clock; the paper runs at 100 MHz
	DMABandwidth float64 // host link bytes/s (NUMAlink-class)
	DMALatency   float64 // seconds of fixed cost per DMA transfer
	SharedLink   bool    // both FPGAs share one host link (contention)
	// SRAMBytes models the board SRAM (Figure 3): an IL1 stream staged
	// in SRAM replays across the passes of a multi-pass bucket without
	// being re-sent over the host link. Zero disables staging.
	SRAMBytes int
}

// DefaultDevice returns a RASC-100-like device: 100 MHz, 3.2 GB/s
// shared host link with 2 µs per-transfer latency and 16 MB of board
// SRAM for IL1 staging.
func DefaultDevice(psc PSCConfig) DeviceConfig {
	return DeviceConfig{
		PSC:          psc,
		NumFPGAs:     1,
		ClockHz:      100e6,
		DMABandwidth: 3.2e9,
		DMALatency:   2e-6,
		SharedLink:   true,
		SRAMBytes:    16 << 20,
	}
}

// Validate checks device invariants.
func (c *DeviceConfig) Validate() error {
	if err := c.PSC.Validate(); err != nil {
		return err
	}
	switch {
	case c.NumFPGAs < 1 || c.NumFPGAs > 2:
		return fmt.Errorf("hwsim: NumFPGAs must be 1 or 2 (RASC-100 has two), got %d", c.NumFPGAs)
	case c.ClockHz <= 0:
		return fmt.Errorf("hwsim: ClockHz must be positive")
	case c.DMABandwidth <= 0:
		return fmt.Errorf("hwsim: DMABandwidth must be positive")
	case c.DMALatency < 0:
		return fmt.Errorf("hwsim: DMALatency must be non-negative")
	case c.SRAMBytes < 0:
		return fmt.Errorf("hwsim: SRAMBytes must be non-negative")
	}
	return nil
}
