package hwsim

// Closed-form cycle accounting for the PSC operator, validated against
// the micro-engine in tests. One "pass" loads up to NumPEs IL0
// sub-sequences and streams K1 IL1 sub-sequences past them.

// LoadCycles returns the cycles to load n IL0 sub-sequences: the IL0
// pipeline carries one residue per cycle, so n·SubLen residues plus the
// pipeline latency to the last PE.
func (c *PSCConfig) LoadCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(n*c.SubLen + c.peDelay(n-1))
}

// StreamCycles returns the cycles for n loaded PEs to score a stream of
// k IL1 sub-sequences: the stream length plus the latency for the last
// residue to reach the last PE. The cascade drain overlaps the stream
// in the sparse-results regime; tests bound the residual against the
// micro-engine by NumSlots + records-in-flight.
func (c *PSCConfig) StreamCycles(n, k int) uint64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	return uint64(k*c.SubLen + c.peDelay(n-1))
}

// PassCycles returns load + stream cycles for one pass.
func (c *PSCConfig) PassCycles(nLoaded, nStream int) uint64 {
	return c.LoadCycles(nLoaded) + c.StreamCycles(nLoaded, nStream)
}

// recordBytes is the host-visible size of one result record: PE id,
// IL1 id and score packed as three 32-bit words.
const recordBytes = 12

// dmaCost models one direction of host/FPGA traffic: fixed per-transfer
// latency plus bytes over the link. bandwidth is bytes/second.
func dmaCost(bytes, transfers uint64, bandwidth, latency float64) float64 {
	return float64(transfers)*latency + float64(bytes)/bandwidth
}
