package hwsim

import (
	"fmt"

	"seedblast/internal/index"
)

// EstimateStep2 computes the timing side of RunStep2 — cycles, DMA
// traffic and the derived simulated seconds — without scoring any
// pairs. The functional results of step 2 do not depend on the PE
// count, so experiments run the scoring once (on the CPU engine or one
// device configuration) and sweep array sizes with this estimator;
// tests pin it to RunStep2's accounting.
//
// records is the number of result records crossing the host link,
// taken from a functional run at the same threshold.
func (d *Device) EstimateStep2(ix0, ix1 *index.Index, records int) (*Step2Report, error) {
	cfg := &d.cfg
	if ix0.SubLen() != cfg.PSC.SubLen || ix1.SubLen() != cfg.PSC.SubLen {
		return nil, fmt.Errorf("hwsim: index SubLen %d/%d does not match PSC SubLen %d",
			ix0.SubLen(), ix1.SubLen(), cfg.PSC.SubLen)
	}
	if ix0.Model().KeySpace() != ix1.Model().KeySpace() {
		return nil, fmt.Errorf("hwsim: indexes built with different seed models")
	}
	if records < 0 {
		return nil, fmt.Errorf("hwsim: negative record count %d", records)
	}

	space := ix0.Model().KeySpace()
	ranges := splitByWork(ix0, ix1, space, cfg.NumFPGAs)
	rep := &Step2Report{Records: records}
	var slowestCycles uint64
	subLen := cfg.PSC.SubLen
	for _, rg := range ranges {
		var cycles, bytesIn, xfers uint64
		var pairs int64
		for k := rg[0]; k < rg[1]; k++ {
			k0 := ix0.BucketLen(k)
			if k0 == 0 {
				continue
			}
			k1 := ix1.BucketLen(k)
			if k1 == 0 {
				continue
			}
			pairs += int64(k0) * int64(k1)
			il1Bytes := uint64(k1 * subLen)
			staged := cfg.SRAMBytes > 0 && il1Bytes <= uint64(cfg.SRAMBytes)
			for base := 0; base < k0; base += cfg.PSC.NumPEs {
				n := min(cfg.PSC.NumPEs, k0-base)
				cycles += cfg.PSC.PassCycles(n, k1)
				bytesIn += uint64(n * subLen)
				xfers++
				if base == 0 || !staged {
					bytesIn += il1Bytes
					xfers++
				}
			}
		}
		rep.Pairs += pairs
		rep.CyclesPerFPGA = append(rep.CyclesPerFPGA, cycles)
		rep.BytesToDevice += bytesIn
		rep.Transfers += xfers
		if cycles > slowestCycles {
			slowestCycles = cycles
		}
	}
	rep.BytesFromDev = uint64(records) * recordBytes

	rep.ComputeSeconds = float64(slowestCycles) / cfg.ClockHz
	bandwidth := cfg.DMABandwidth
	if cfg.SharedLink && len(ranges) > 1 {
		bandwidth /= float64(len(ranges))
	}
	perFPGABytes := (rep.BytesToDevice + rep.BytesFromDev) / uint64(len(ranges))
	perFPGAXfers := rep.Transfers / uint64(len(ranges))
	rep.DMASeconds = dmaCost(perFPGABytes, perFPGAXfers, bandwidth, cfg.DMALatency)
	rep.Seconds = maxF(rep.ComputeSeconds, rep.DMASeconds) + cfg.DMALatency
	if slowestCycles > 0 {
		useful := float64(rep.Pairs) * float64(subLen)
		var provisioned float64
		for _, c := range rep.CyclesPerFPGA {
			provisioned += float64(c) * float64(cfg.PSC.NumPEs)
		}
		rep.Utilization = useful / provisioned
	}
	return rep, nil
}
