package hwsim

import (
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/seed"
	"seedblast/internal/ungapped"
)

// testIndexes builds a pair of small indexes with guaranteed overlap.
func testIndexes(t *testing.T, n0Seqs, n1Seqs, seqLen, n int) (*index.Index, *index.Index) {
	t.Helper()
	rng := bank.NewRNG(31)
	b0 := bank.New("b0")
	b1 := bank.New("b1")
	shared := bank.RandomProtein(rng, seqLen)
	for i := 0; i < n0Seqs; i++ {
		s := bank.MutateProtein(rng, shared, 0.4)
		b0.Add(string(rune('a'+i)), s)
	}
	for i := 0; i < n1Seqs; i++ {
		s := bank.MutateProtein(rng, shared, 0.4)
		b1.Add(string(rune('A'+i)), s)
	}
	model := seed.Default()
	ix0, err := index.Build(b0, model, n)
	if err != nil {
		t.Fatal(err)
	}
	ix1, err := index.Build(b1, model, n)
	if err != nil {
		t.Fatal(err)
	}
	return ix0, ix1
}

func deviceFor(t *testing.T, ix *index.Index, numPEs, numFPGAs, threshold int) *Device {
	t.Helper()
	psc := DefaultPSC(matrix.BLOSUM62, ix.SubLen(), threshold)
	psc.NumPEs = numPEs
	cfg := DefaultDevice(psc)
	cfg.NumFPGAs = numFPGAs
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceMatchesCPUEngine(t *testing.T) {
	ix0, ix1 := testIndexes(t, 4, 6, 120, 6)
	const threshold = 20
	cpu, err := ungapped.Run(ix0, ix1, ungapped.Config{Matrix: matrix.BLOSUM62, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	for _, fpgas := range []int{1, 2} {
		d := deviceFor(t, ix0, 64, fpgas, threshold)
		rep, err := d.RunStep2(ix0, ix1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pairs != cpu.Pairs {
			t.Errorf("fpgas=%d: pairs %d, want %d", fpgas, rep.Pairs, cpu.Pairs)
		}
		if len(rep.Hits) != len(cpu.Hits) {
			t.Fatalf("fpgas=%d: %d hits, want %d", fpgas, len(rep.Hits), len(cpu.Hits))
		}
		for i := range rep.Hits {
			if rep.Hits[i] != cpu.Hits[i] {
				t.Fatalf("fpgas=%d: hit %d = %+v, want %+v (bit-identical order required)",
					fpgas, i, rep.Hits[i], cpu.Hits[i])
			}
		}
	}
}

func TestDeviceCycleAccountingAgainstMicroEngine(t *testing.T) {
	// The device's per-pass formula must track the micro-engine on the
	// exact same bucket contents.
	ix0, ix1 := testIndexes(t, 3, 5, 90, 6)
	const threshold = 35
	psc := PSCConfig{
		NumPEs: 8, SlotSize: 4, FIFODepth: 32,
		SubLen: ix0.SubLen(), Threshold: threshold, Matrix: matrix.BLOSUM62,
	}
	var modelCycles uint64
	var microCycles uint64
	var records int
	space := ix0.Model().KeySpace()
	op, err := NewOperator(psc)
	if err != nil {
		t.Fatal(err)
	}
	subLen := ix0.SubLen()
	for k := 0; k < space; k++ {
		il0, hood0 := ix0.Bucket(uint32(k))
		il1, hood1 := ix1.Bucket(uint32(k))
		if len(il0) == 0 || len(il1) == 0 {
			continue
		}
		for base := 0; base < len(il0); base += psc.NumPEs {
			n := min(psc.NumPEs, len(il0)-base)
			modelCycles += psc.PassCycles(n, len(il1))
			subs := make([][]byte, n)
			for i := 0; i < n; i++ {
				subs[i] = hood0[(base+i)*subLen : (base+i+1)*subLen]
			}
			before := op.Cycles()
			if err := op.LoadIL0(subs); err != nil {
				t.Fatal(err)
			}
			recs, err := op.StreamIL1(hood1, len(il1))
			if err != nil {
				t.Fatal(err)
			}
			records += len(recs)
			microCycles += op.Cycles() - before
		}
	}
	if microCycles == 0 {
		t.Fatal("no work simulated")
	}
	// Micro can only exceed the model by cascade-drain tails and stalls.
	slack := uint64(records+1)*uint64(psc.NumSlots()+2) + op.StallCycles()
	if microCycles < modelCycles || microCycles > modelCycles+slack {
		t.Errorf("micro=%d model=%d slack=%d", microCycles, modelCycles, slack)
	}
}

// denseIndexes builds indexes over a tiny key space (width-1 seed) so
// IL0 buckets overfill even a 192-PE array, as the paper's large banks do.
func denseIndexes(t *testing.T, n0Seqs, n1Seqs, seqLen, n int) (*index.Index, *index.Index) {
	t.Helper()
	rng := bank.NewRNG(32)
	b0 := bank.New("d0")
	b1 := bank.New("d1")
	for i := 0; i < n0Seqs; i++ {
		b0.Add(string(rune('a'+i)), bank.RandomProtein(rng, seqLen))
	}
	for i := 0; i < n1Seqs; i++ {
		b1.Add(string(rune('A'+i)), bank.RandomProtein(rng, seqLen))
	}
	model := seed.Exact(1)
	ix0, err := index.Build(b0, model, n)
	if err != nil {
		t.Fatal(err)
	}
	ix1, err := index.Build(b1, model, n)
	if err != nil {
		t.Fatal(err)
	}
	return ix0, ix1
}

func TestDeviceMorePEsFewerCycles(t *testing.T) {
	// IL0 buckets of ~600 entries: a larger array means fewer passes,
	// so compute time must fall as PEs grow (Table 4's trend).
	ix0, ix1 := denseIndexes(t, 40, 10, 300, 8)
	var prev float64
	for i, pes := range []int{16, 64, 192} {
		d := deviceFor(t, ix0, pes, 1, 20)
		rep, err := d.RunStep2(ix0, ix1)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rep.ComputeSeconds >= prev {
			t.Errorf("%d PEs not faster than previous (%.6f vs %.6f)",
				pes, rep.ComputeSeconds, prev)
		}
		prev = rep.ComputeSeconds
	}
}

func TestDeviceSmallBucketsDoNotBenefitFromMorePEs(t *testing.T) {
	// The subset-seed key space spreads a small bank so thin that no
	// bucket fills even 16 PEs: adding PEs cannot help — the effect the
	// paper reports for small protein banks in Table 2.
	ix0, ix1 := testIndexes(t, 8, 10, 200, 8)
	d16 := deviceFor(t, ix0, 16, 1, 20)
	d192 := deviceFor(t, ix0, 192, 1, 20)
	r16, err := d16.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	r192, err := d192.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	if r192.ComputeSeconds != r16.ComputeSeconds {
		t.Errorf("under-filled array should not speed up: %.6f vs %.6f",
			r192.ComputeSeconds, r16.ComputeSeconds)
	}
}

func TestDeviceTwoFPGAsFaster(t *testing.T) {
	ix0, ix1 := testIndexes(t, 10, 12, 200, 8)
	d1 := deviceFor(t, ix0, 192, 1, 20)
	d2 := deviceFor(t, ix0, 192, 2, 20)
	r1, err := d1.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ComputeSeconds >= r1.ComputeSeconds {
		t.Errorf("2 FPGAs compute %.6fs, 1 FPGA %.6fs", r2.ComputeSeconds, r1.ComputeSeconds)
	}
	speedup := r1.Seconds / r2.Seconds
	if speedup <= 1.0 || speedup > 2.0 {
		t.Errorf("2-FPGA speedup %.2f outside (1, 2]", speedup)
	}
}

func TestDeviceUtilizationBounds(t *testing.T) {
	ix0, ix1 := testIndexes(t, 4, 6, 150, 8)
	d := deviceFor(t, ix0, 192, 1, 20)
	rep, err := d.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Errorf("utilization %.3f outside (0,1]", rep.Utilization)
	}
	// Small buckets + huge array ⇒ low utilization; a small array on
	// the same workload must be utilised better.
	dSmall := deviceFor(t, ix0, 8, 1, 20)
	repSmall, err := dSmall.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	if repSmall.Utilization <= rep.Utilization {
		t.Errorf("8-PE utilization %.3f should exceed 192-PE %.3f",
			repSmall.Utilization, rep.Utilization)
	}
}

func TestDeviceDMATrafficScalesWithThreshold(t *testing.T) {
	// Raising the threshold reports fewer records without reducing
	// computation — the paper's Table 3 mitigation.
	ix0, ix1 := testIndexes(t, 6, 8, 150, 8)
	dLow := deviceFor(t, ix0, 64, 1, 18)
	dHigh := deviceFor(t, ix0, 64, 1, 40)
	low, err := dLow.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := dHigh.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	if low.Pairs != high.Pairs {
		t.Errorf("threshold changed the amount of computation: %d vs %d", low.Pairs, high.Pairs)
	}
	if high.Records >= low.Records {
		t.Errorf("higher threshold should report fewer records: %d vs %d",
			high.Records, low.Records)
	}
	if high.BytesFromDev >= low.BytesFromDev {
		t.Errorf("result traffic did not drop: %d vs %d", high.BytesFromDev, low.BytesFromDev)
	}
}

func TestDeviceValidation(t *testing.T) {
	psc := DefaultPSC(matrix.BLOSUM62, 32, 20)
	cfg := DefaultDevice(psc)
	cfg.NumFPGAs = 3
	if _, err := NewDevice(cfg); err == nil {
		t.Error("3 FPGAs accepted (RASC-100 has 2)")
	}
	cfg = DefaultDevice(psc)
	cfg.ClockHz = 0
	if _, err := NewDevice(cfg); err == nil {
		t.Error("zero clock accepted")
	}
	cfg = DefaultDevice(psc)
	cfg.DMABandwidth = 0
	if _, err := NewDevice(cfg); err == nil {
		t.Error("zero bandwidth accepted")
	}
	// SubLen mismatch against the index.
	ix0, ix1 := testIndexes(t, 2, 2, 60, 4)
	d, err := NewDevice(DefaultDevice(DefaultPSC(matrix.BLOSUM62, ix0.SubLen()+2, 20)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunStep2(ix0, ix1); err == nil {
		t.Error("SubLen mismatch accepted")
	}
}

func TestSplitByWorkBalances(t *testing.T) {
	ix0, ix1 := testIndexes(t, 6, 8, 150, 6)
	ranges := splitByWork(ix0, ix1, ix0.Model().KeySpace(), 2)
	if len(ranges) != 2 {
		t.Fatalf("ranges = %d", len(ranges))
	}
	if ranges[0][1] != ranges[1][0] || ranges[0][0] != 0 {
		t.Errorf("ranges not contiguous: %v", ranges)
	}
	work := func(lo, hi uint32) int64 {
		var w int64
		for k := lo; k < hi; k++ {
			w += int64(ix0.BucketLen(k)) * int64(ix1.BucketLen(k))
		}
		return w
	}
	w0 := work(ranges[0][0], ranges[0][1])
	w1 := work(ranges[1][0], ranges[1][1])
	total := w0 + w1
	if total == 0 {
		t.Skip("no overlap in workload")
	}
	if w0 < total/4 || w1 < total/4 {
		t.Errorf("imbalanced split: %d vs %d", w0, w1)
	}
}

func TestSRAMStagingReducesTraffic(t *testing.T) {
	// A workload with multi-pass buckets: SRAM staging must cut IL1
	// re-streaming, without changing cycles or results.
	ix0, ix1 := denseIndexes(t, 40, 10, 300, 8) // buckets ≫ 8 PEs
	psc := DefaultPSC(matrix.BLOSUM62, ix0.SubLen(), 20)
	psc.NumPEs = 8

	withSRAM := DefaultDevice(psc)
	noSRAM := DefaultDevice(psc)
	noSRAM.SRAMBytes = 0

	dS, err := NewDevice(withSRAM)
	if err != nil {
		t.Fatal(err)
	}
	dN, err := NewDevice(noSRAM)
	if err != nil {
		t.Fatal(err)
	}
	rS, err := dS.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	rN, err := dN.RunStep2(ix0, ix1)
	if err != nil {
		t.Fatal(err)
	}
	if rS.BytesToDevice >= rN.BytesToDevice {
		t.Errorf("SRAM staging did not reduce traffic: %d vs %d",
			rS.BytesToDevice, rN.BytesToDevice)
	}
	if rS.CyclesPerFPGA[0] != rN.CyclesPerFPGA[0] {
		t.Error("SRAM staging changed compute cycles")
	}
	if len(rS.Hits) != len(rN.Hits) {
		t.Error("SRAM staging changed functional results")
	}
}

func TestSRAMTooSmallFallsBackToStreaming(t *testing.T) {
	ix0, ix1 := denseIndexes(t, 40, 10, 300, 8)
	psc := DefaultPSC(matrix.BLOSUM62, ix0.SubLen(), 20)
	psc.NumPEs = 8
	tiny := DefaultDevice(psc)
	tiny.SRAMBytes = 16 // smaller than any IL1 stream
	none := DefaultDevice(psc)
	none.SRAMBytes = 0
	dT, err := NewDevice(tiny)
	if err != nil {
		t.Fatal(err)
	}
	dN, err := NewDevice(none)
	if err != nil {
		t.Fatal(err)
	}
	rT, err := dT.EstimateStep2(ix0, ix1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rN, err := dN.EstimateStep2(ix0, ix1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rT.BytesToDevice != rN.BytesToDevice {
		t.Errorf("undersized SRAM should behave like none: %d vs %d",
			rT.BytesToDevice, rN.BytesToDevice)
	}
}

func TestDeviceValidationSRAM(t *testing.T) {
	psc := DefaultPSC(matrix.BLOSUM62, 32, 20)
	cfg := DefaultDevice(psc)
	cfg.SRAMBytes = -1
	if _, err := NewDevice(cfg); err == nil {
		t.Error("negative SRAM accepted")
	}
}
