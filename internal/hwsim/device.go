package hwsim

import (
	"fmt"
	"sync"

	"seedblast/internal/align"
	"seedblast/internal/index"
	"seedblast/internal/ungapped"
)

// Device models a RASC-100 style accelerator: one or two FPGAs, each
// carrying one PSC operator, fed by DMA over a (possibly shared) host
// link, as in Figure 3. RunStep2 executes the paper's step 2 on the
// device model: functional results are bit-identical to the CPU engine
// (ungapped.Run) while time is accounted from the cycle model at the
// configured clock plus the DMA model.
type Device struct {
	cfg DeviceConfig
}

// NewDevice validates the configuration and returns a device.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg}, nil
}

// Config returns the device configuration.
func (d *Device) Config() DeviceConfig { return d.cfg }

// Step2Report is the outcome of running step 2 on the device.
type Step2Report struct {
	Hits    []ungapped.Hit
	Pairs   int64 // neighbourhood scorings performed
	Records int   // results crossing the host link

	CyclesPerFPGA  []uint64
	BytesToDevice  uint64
	BytesFromDev   uint64
	Transfers      uint64
	ComputeSeconds float64 // slowest FPGA's cycle time
	DMASeconds     float64 // slowest FPGA's link time (with contention)
	Seconds        float64 // simulated step-2 wall time
	Utilization    float64 // useful PE-cycles / provisioned PE-cycles
}

// RunStep2 runs the ungapped stage for two indexes on the device.
// The key space is split between FPGAs by balancing the pair workload;
// each FPGA processes its keys in passes of up to NumPEs IL0
// sub-sequences, streaming the key's IL1 list past the array.
func (d *Device) RunStep2(ix0, ix1 *index.Index) (*Step2Report, error) {
	cfg := &d.cfg
	if ix0.SubLen() != cfg.PSC.SubLen || ix1.SubLen() != cfg.PSC.SubLen {
		return nil, fmt.Errorf("hwsim: index SubLen %d/%d does not match PSC SubLen %d",
			ix0.SubLen(), ix1.SubLen(), cfg.PSC.SubLen)
	}
	if ix0.Model().KeySpace() != ix1.Model().KeySpace() {
		return nil, fmt.Errorf("hwsim: indexes built with different seed models")
	}

	space := ix0.Model().KeySpace()
	ranges := splitByWork(ix0, ix1, space, cfg.NumFPGAs)

	type fpgaResult struct {
		hits    []ungapped.Hit
		pairs   int64
		cycles  uint64
		inBytes uint64
		xfers   uint64
	}
	results := make([]fpgaResult, len(ranges))
	var wg sync.WaitGroup
	for f := range ranges {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			r := &results[f]
			r.hits, r.pairs, r.cycles, r.inBytes, r.xfers =
				runKeyRange(ix0, ix1, ranges[f][0], ranges[f][1], &cfg.PSC, cfg.SRAMBytes)
		}(f)
	}
	wg.Wait()

	rep := &Step2Report{}
	var slowestCycles uint64
	var totBytesIn uint64
	var totXfers uint64
	for _, r := range results {
		rep.Hits = append(rep.Hits, r.hits...)
		rep.Pairs += r.pairs
		rep.CyclesPerFPGA = append(rep.CyclesPerFPGA, r.cycles)
		totBytesIn += r.inBytes
		totXfers += r.xfers
		if r.cycles > slowestCycles {
			slowestCycles = r.cycles
		}
	}
	rep.Records = len(rep.Hits)
	rep.BytesToDevice = totBytesIn
	rep.BytesFromDev = uint64(rep.Records) * recordBytes
	rep.Transfers = totXfers

	rep.ComputeSeconds = float64(slowestCycles) / cfg.ClockHz
	bandwidth := cfg.DMABandwidth
	if cfg.SharedLink && len(ranges) > 1 {
		// Both FPGAs contend for the one NUMAlink attachment.
		bandwidth /= float64(len(ranges))
	}
	// Per-FPGA link time; transfers and bytes split across FPGAs.
	perFPGABytes := (totBytesIn + rep.BytesFromDev) / uint64(len(ranges))
	perFPGAXfers := totXfers / uint64(len(ranges))
	rep.DMASeconds = dmaCost(perFPGABytes, perFPGAXfers, bandwidth, cfg.DMALatency)
	// Streaming DMA overlaps compute; the wall time is the slower of
	// the two plus a fixed device setup cost per run.
	rep.Seconds = maxF(rep.ComputeSeconds, rep.DMASeconds) + cfg.DMALatency
	if slowestCycles > 0 {
		useful := float64(rep.Pairs) * float64(cfg.PSC.SubLen)
		var provisioned float64
		for _, c := range rep.CyclesPerFPGA {
			provisioned += float64(c) * float64(cfg.PSC.NumPEs)
		}
		rep.Utilization = useful / provisioned
	}
	return rep, nil
}

// splitByWork partitions the key space into numFPGAs contiguous ranges
// with approximately equal pair workload.
func splitByWork(ix0, ix1 *index.Index, space, numFPGAs int) [][2]uint32 {
	if numFPGAs == 1 {
		return [][2]uint32{{0, uint32(space)}}
	}
	var total int64
	for k := 0; k < space; k++ {
		total += int64(ix0.BucketLen(uint32(k))) * int64(ix1.BucketLen(uint32(k)))
	}
	half := total / 2
	var acc int64
	cut := space / 2
	for k := 0; k < space; k++ {
		acc += int64(ix0.BucketLen(uint32(k))) * int64(ix1.BucketLen(uint32(k)))
		if acc >= half {
			cut = k + 1
			break
		}
	}
	if cut <= 0 {
		cut = 1
	}
	if cut >= space {
		cut = space - 1
	}
	return [][2]uint32{{0, uint32(cut)}, {uint32(cut), uint32(space)}}
}

// runKeyRange processes keys [lo, hi) on one FPGA: for each key, IL0 is
// loaded in passes of up to NumPEs sub-sequences and the full IL1
// stream is sent past the array per pass. Functional scoring uses the
// same WindowScore as the CPU engine; cycles follow the validated
// closed-form model; DMA bytes count IL0 loads, IL1 streams (replayed
// from SRAM across passes when the stream fits) and result records.
func runKeyRange(ix0, ix1 *index.Index, lo, hi uint32, psc *PSCConfig, sramBytes int) (
	hits []ungapped.Hit, pairs int64, cycles, bytesIn, xfers uint64) {
	subLen := psc.SubLen
	for k := lo; k < hi; k++ {
		il0, hood0 := ix0.Bucket(k)
		if len(il0) == 0 {
			continue
		}
		il1, hood1 := ix1.Bucket(k)
		if len(il1) == 0 {
			continue
		}
		pairs += int64(len(il0)) * int64(len(il1))
		il1Bytes := uint64(len(il1) * subLen)
		staged := sramBytes > 0 && il1Bytes <= uint64(sramBytes)
		for base := 0; base < len(il0); base += psc.NumPEs {
			n := min(psc.NumPEs, len(il0)-base)
			cycles += psc.PassCycles(n, len(il1))
			bytesIn += uint64(n * subLen)
			xfers++ // IL0 load burst
			if base == 0 || !staged {
				bytesIn += il1Bytes
				xfers++ // IL1 stream over the host link
			}
			for i := base; i < base+n; i++ {
				w0 := hood0[i*subLen : (i+1)*subLen]
				for j := range il1 {
					w1 := hood1[j*subLen : (j+1)*subLen]
					score := align.WindowScore(w0, w1, psc.Matrix)
					if score >= psc.Threshold {
						hits = append(hits, ungapped.Hit{
							Key:    k,
							E0:     il0[i],
							E1:     il1[j],
							Score:  int32(score),
							SubLen: int32(subLen),
						})
					}
				}
			}
		}
	}
	return hits, pairs, cycles, bytesIn, xfers
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
