// Package service is the comparison-as-a-service layer: a long-lived,
// concurrency-safe front end over the streaming shard engine (package
// pipeline, driven through package core). The paper's host/accelerator
// split assumes one batch job; a production deployment instead sees
// many concurrent query banks against a small set of hot subject
// banks. The service exploits that regime three ways:
//
//   - Shared subject indexes. Step 1 of the paper's algorithm is pure
//     preprocessing of the subject bank, so its product is cached in an
//     LRU keyed by (bank fingerprint, seed model, N) and shared across
//     requests. Singleflight build semantics mean a burst of requests
//     against a cold subject pays for exactly one build.
//   - Bounded admission. A semaphore caps how many comparisons run
//     simultaneously, so K requests stream through the engine without
//     oversubscribing the step-2 backend or the host; the rest queue.
//   - Async jobs. Submit returns immediately with a pollable Job;
//     synchronous Compare/CompareGenome wrap the same path.
//
// Every request runs through core.CompareContext, so results are
// bit-identical to a standalone core.Compare call with the same
// options. cmd/seedservd exposes the service over HTTP+JSON.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/gapped"
	"seedblast/internal/index"
	"seedblast/internal/telemetry"
)

// Config tunes the service. The zero value gets sensible defaults.
type Config struct {
	// MaxConcurrent is the admission bound: how many comparisons may
	// run at once. Requests beyond it queue (FIFO over a semaphore).
	// Zero or negative means 2.
	MaxConcurrent int
	// CacheEntries is the subject-index LRU capacity in indexes.
	// Zero or negative means 8.
	CacheEntries int
	// MaxJobsRetained caps how many finished jobs stay pollable; once
	// exceeded, the oldest finished jobs are dropped (queued and
	// running jobs are never dropped). Bounds a long-lived daemon's
	// memory. Zero or negative means 256.
	MaxJobsRetained int
	// JobTTL caps how long a finished job (and its result) stays
	// pollable; finished jobs older than it are evicted on the next
	// store access, whichever of TTL and MaxJobsRetained bites first.
	// Queued and running jobs never expire. Zero means 15 minutes;
	// negative disables TTL eviction.
	JobTTL time.Duration
	// MaxQueued caps async jobs admitted but not yet finished. Pending
	// jobs hold their full request (banks included) and are never
	// evicted, so without a cap a submit burst grows daemon memory
	// without bound no matter what the finished-job eviction does.
	// Submit rejects beyond it. Zero means 1024; negative disables.
	MaxQueued int
	// SweepInterval is the cadence of the background job-store sweep
	// that evicts expired jobs on an idle daemon (access-time pruning
	// alone would retain dead jobs and their alignments until the next
	// request). Zero means JobTTL/2, clamped to [1s, 1min]; negative
	// disables the sweeper (pruning still happens on access).
	SweepInterval time.Duration
	// Logger, when set, receives operational events the service cannot
	// surface through a request's error — e.g. a failed munmap while
	// discarding a stale disk-registry index. Nil discards them;
	// daemons wire it to their structured logger.
	Logger *slog.Logger
	// Registry, when set, is the metrics registry the service registers
	// its counters, gauges and stage-latency histograms on — daemons
	// share one registry between the service and their own metrics. Nil
	// means a private registry; either way Service.Registry serves it.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 8
	}
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 256
	}
	if c.JobTTL == 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 1024
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = DefaultSweepInterval(c.JobTTL)
	}
	return c
}

// log returns the configured structured logger (a discard logger when
// none is set), so call sites never nil-check.
func (s *Service) log() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.New(slog.DiscardHandler)
}

// DefaultSweepInterval derives a job-store sweep cadence from a TTL:
// half the TTL bounds staleness at 1.5× the configured age, clamped so
// tiny test TTLs don't spin and huge TTLs still sweep every minute.
// Shared with the cluster daemon so both front ends age jobs out the
// same way.
func DefaultSweepInterval(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return -1 // no TTL: access-time count pruning suffices
	}
	iv := ttl / 2
	if iv < time.Second {
		iv = time.Second
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

// Request describes one comparison. Exactly one of Subject (bank vs
// bank) or Genome (protein bank vs genome, tblastn-style) must be set.
type Request struct {
	Query   *bank.Bank
	Subject *bank.Bank
	Genome  []byte // encoded DNA (alphabet.EncodeDNA)
	// Options parameterises the run. Zero Seed/Matrix/UngappedThreshold
	// fall back to core.DefaultOptions; Options.SubjectIndex is managed
	// by the service and overwritten.
	Options core.Options
	// TraceID, when set, names the job's trace — the cluster coordinator
	// propagates its trace ID here (via the Seedblast-Trace-Id header) so
	// worker spans correlate with the coordinator's. Empty means a fresh
	// random ID.
	TraceID string
}

// JobState is a job's lifecycle position.
type JobState string

// Job states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one asynchronous comparison. All accessors are safe for
// concurrent use.
type Job struct {
	id     string
	req    *Request
	trace  *telemetry.Trace
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *core.Result
	genome    *core.GenomeResult
	err       error
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Request returns the request the job was submitted with (treated as
// immutable after Submit).
func (j *Job) Request() *Request { return j.req }

// Trace returns the job's span trace. It is live: the pipeline appends
// spans while the job runs, and Trace().Spans() snapshots safely.
func (j *Job) Trace() *telemetry.Trace { return j.trace }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Times returns the submitted/started/finished timestamps; zero values
// mean the phase has not been reached.
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

// Err returns the job's failure, nil unless State is JobFailed.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the bank-vs-bank result once the job is done (nil for
// genome jobs or unfinished ones).
func (j *Job) Result() *core.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// GenomeResult returns the genome-mode result once the job is done.
func (j *Job) GenomeResult() *core.GenomeResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.genome
}

// Done returns a channel closed when the job finishes (done or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// FinishedAt returns the completion time (zero until finished); with
// Done it satisfies JobStoreEntry.
func (j *Job) FinishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// Cancel stops the job; a queued job fails without running, a running
// one is cancelled through its context.
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job finishes or ctx is cancelled.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// MetricsSnapshot is a point-in-time view of the service's counters.
type MetricsSnapshot struct {
	Submitted int64 // requests accepted (sync + async)
	Completed int64
	Failed    int64
	Running   int // comparisons currently admitted
	Waiting   int // requests blocked on admission or on a shared index build

	Cache        CacheStats
	CacheHitRate float64

	// Per-stage busy time summed over all completed runs (the engine's
	// Metrics accounting), plus total engine wall time. IndexBusy only
	// grows when an index is actually built, so its ratio to Step2Busy
	// shrinks as the cache gets hotter.
	IndexBusy     time.Duration
	PrefilterBusy time.Duration
	Step2Busy     time.Duration
	Step3Busy     time.Duration
	Wall          time.Duration

	Alignments int64 // alignments reported across completed runs

	// Prefilter pair accounting summed over completed runs: candidate
	// (query, subject) pairs kept by and dropped at the per-query
	// top-K cut. Both stay zero while no request enables
	// maxCandidates.
	PrefilterKept    int64
	PrefilterDropped int64
}

// Service is the comparison service. Create with New; all methods are
// safe for concurrent use.
type Service struct {
	cfg      Config
	sem      chan struct{}
	buildSem chan struct{} // bounds concurrent cold index builds
	cache    *indexCache
	disk     diskRegistry // fingerprint → seeddb path (RegisterDB)

	store *JobStore[*Job]

	reg           *telemetry.Registry
	stageHist     map[string]*telemetry.Histogram // span name → latency histogram
	reqHist       *telemetry.Histogram            // whole-request latency
	survivorsHist *telemetry.Histogram            // prefilter survivors per query

	mu      sync.Mutex
	seq     int
	pending int // async jobs admitted but not finished
	closed  bool
	running int
	waiting int

	submitted        int64
	completed        int64
	failed           int64
	indexBusy        time.Duration
	prefilterBusy    time.Duration
	step2Busy        time.Duration
	step3Busy        time.Duration
	wall             time.Duration
	alignments       int64
	prefilterKept    int64
	prefilterDropped int64

	wg sync.WaitGroup // outstanding async jobs
}

// New returns a ready service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		buildSem: make(chan struct{}, cfg.MaxConcurrent),
		cache:    newIndexCache(cfg.CacheEntries),
		store:    NewJobStore[*Job](cfg.MaxJobsRetained, cfg.JobTTL),
		reg:      cfg.Registry,
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.registerMetrics()
	s.store.StartSweeper(cfg.SweepInterval)
	return s
}

// Registry returns the metrics registry the service reports on; the
// HTTP layer serves it on /metrics.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// registerMetrics puts the service's counters on the registry. The
// historical /metrics names are kept verbatim as callback-backed
// metrics over the MetricsSnapshot counters — one source of truth, now
// with HELP/TYPE lines — and per-shard stage latencies gain real
// histograms fed from each finished run's trace spans.
func (s *Service) registerMetrics() {
	r := s.reg
	cnt := func(name, help string, get func(MetricsSnapshot) float64) {
		r.Func("seedservd_"+name, help, telemetry.TypeCounter, func() float64 { return get(s.Metrics()) })
	}
	gau := func(name, help string, get func(MetricsSnapshot) float64) {
		r.Func("seedservd_"+name, help, telemetry.TypeGauge, func() float64 { return get(s.Metrics()) })
	}
	cnt("requests_submitted_total", "Requests accepted (sync and async).",
		func(m MetricsSnapshot) float64 { return float64(m.Submitted) })
	cnt("requests_completed_total", "Requests finished successfully.",
		func(m MetricsSnapshot) float64 { return float64(m.Completed) })
	cnt("requests_failed_total", "Requests that errored or were cancelled.",
		func(m MetricsSnapshot) float64 { return float64(m.Failed) })
	gau("requests_running", "Comparisons currently admitted.",
		func(m MetricsSnapshot) float64 { return float64(m.Running) })
	gau("requests_waiting", "Requests blocked on admission or an index build.",
		func(m MetricsSnapshot) float64 { return float64(m.Waiting) })
	cnt("index_cache_hits_total", "Subject-index cache hits.",
		func(m MetricsSnapshot) float64 { return float64(m.Cache.Hits) })
	cnt("index_cache_misses_total", "Subject-index cache misses.",
		func(m MetricsSnapshot) float64 { return float64(m.Cache.Misses) })
	cnt("index_cache_evictions_total", "Subject indexes evicted from the LRU.",
		func(m MetricsSnapshot) float64 { return float64(m.Cache.Evictions) })
	cnt("index_cache_disk_loads_total", "Cache misses served from a registered seeddb.",
		func(m MetricsSnapshot) float64 { return float64(m.Cache.DiskLoads) })
	gau("index_cache_entries", "Subject indexes resident in the cache.",
		func(m MetricsSnapshot) float64 { return float64(m.Cache.Entries) })
	gau("index_cache_hit_rate", "Cache hits over lookups since start.",
		func(m MetricsSnapshot) float64 { return m.CacheHitRate })
	// Registration order fixes the exposition order (index first —
	// scrapers reading the family without labels see a live series),
	// so this stays a slice, not a map.
	for _, sc := range []struct {
		stage string
		get   func(MetricsSnapshot) time.Duration
	}{
		{"index", func(m MetricsSnapshot) time.Duration { return m.IndexBusy }},
		{"prefilter", func(m MetricsSnapshot) time.Duration { return m.PrefilterBusy }},
		{"step2", func(m MetricsSnapshot) time.Duration { return m.Step2Busy }},
		{"step3", func(m MetricsSnapshot) time.Duration { return m.Step3Busy }},
	} {
		stage, get := sc.stage, sc.get
		r.Func("seedservd_stage_busy_seconds_total",
			"Per-stage busy time summed over completed runs.",
			telemetry.TypeCounter,
			func() float64 { return get(s.Metrics()).Seconds() },
			telemetry.L("stage", stage))
	}
	cnt("engine_wall_seconds_total", "Engine wall time summed over completed runs.",
		func(m MetricsSnapshot) float64 { return m.Wall.Seconds() })
	cnt("alignments_total", "Alignments reported across completed runs.",
		func(m MetricsSnapshot) float64 { return float64(m.Alignments) })
	cnt("prefilter_kept_total", "Candidate pairs kept by the prefilter's per-query top-K cut.",
		func(m MetricsSnapshot) float64 { return float64(m.PrefilterKept) })
	cnt("prefilter_dropped_total", "Candidate pairs dropped at the prefilter's per-query top-K cut.",
		func(m MetricsSnapshot) float64 { return float64(m.PrefilterDropped) })

	// Survivors per query, observed once per completed prefiltered run
	// (the run's mean): the distribution shows how often the top-K cut
	// actually binds versus passes everything through.
	s.survivorsHist = r.Histogram("seedservd_prefilter_survivors",
		"Mean surviving subjects per query on completed prefiltered runs.",
		telemetry.ExpBuckets(1, 2, 16))

	s.stageHist = make(map[string]*telemetry.Histogram)
	for _, stage := range []string{"step1", "prefilter", "step2", "step3"} {
		s.stageHist[stage] = r.Histogram("seedservd_stage_seconds",
			"Per-shard stage latency, one observation per pipeline span.",
			telemetry.DurationBuckets, telemetry.L("stage", stage))
	}
	s.reqHist = r.Histogram("seedservd_request_seconds",
		"End-to-end request latency (admission wait included).",
		telemetry.DurationBuckets)
}

// observeTrace feeds one finished run's stage spans into the latency
// histograms. Each job and each sync call runs under its own trace, so
// the spans seen here are exactly this run's.
func (s *Service) observeTrace(tr *telemetry.Trace) {
	for _, sp := range tr.Spans() {
		if h, ok := s.stageHist[sp.Name]; ok {
			h.Observe(sp.Duration.Seconds())
		}
	}
}

// Config returns the resolved configuration.
func (s *Service) Config() Config { return s.cfg }

// Compare runs a bank-vs-bank comparison synchronously through the
// service (shared index cache + admission). Results are bit-identical
// to core.CompareContext with the same options.
func (s *Service) Compare(ctx context.Context, query, subject *bank.Bank, opt core.Options) (*core.Result, error) {
	res, _, err := s.run(ctx, &Request{Query: query, Subject: subject, Options: opt}, nil)
	return res, err
}

// CompareGenome runs a protein-vs-genome comparison synchronously
// through the service. The genome's six-frame index is cached like any
// subject bank, keyed by genome digest, genetic code, seed and N.
func (s *Service) CompareGenome(ctx context.Context, query *bank.Bank, genome []byte, opt core.Options) (*core.GenomeResult, error) {
	_, gres, err := s.run(ctx, &Request{Query: query, Genome: genome, Options: opt}, nil)
	return gres, err
}

// Submit accepts a request for asynchronous execution and returns its
// Job immediately. The job runs as soon as admission allows.
func (s *Service) Submit(req *Request) (*Job, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	// The job's trace: the submitter's ID when one came over the wire
	// (the cluster coordinator correlating worker spans with its own),
	// fresh otherwise. It rides the job context so the pipeline finds it.
	tid := req.TraceID
	if tid == "" {
		tid = telemetry.NewTraceID()
	}
	tr := telemetry.NewTrace(tid)
	ctx, cancel := context.WithCancel(telemetry.ContextWithTrace(context.Background(), tr))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("service: closed")
	}
	if s.cfg.MaxQueued > 0 && s.pending >= s.cfg.MaxQueued {
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("service: %d jobs pending, queue full", s.cfg.MaxQueued)
	}
	s.pending++
	s.seq++
	j := &Job{
		id:        fmt.Sprintf("job-%d", s.seq),
		req:       req,
		trace:     tr,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     JobQueued,
		submitted: time.Now(),
	}
	s.wg.Add(1)
	// Added under s.mu so concurrent submits land in the store in id
	// order — Jobs() ordering and oldest-first eviction both rely on it.
	s.store.Add(j.id, j)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		defer cancel()
		res, gres, err := s.run(ctx, req, func() {
			j.mu.Lock()
			j.state = JobRunning
			j.started = time.Now()
			j.mu.Unlock()
		})
		j.mu.Lock()
		j.finished = time.Now()
		if err != nil {
			j.state = JobFailed
			j.err = err
		} else {
			j.state = JobDone
			j.result = res
			j.genome = gres
		}
		j.mu.Unlock()
		close(j.done)
		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
		s.store.Prune()
	}()
	return j, nil
}

// Job returns the job with the given id. A finished job past its TTL
// is gone: expiry is enforced on every lookup.
func (s *Service) Job(id string) (*Job, bool) { return s.store.Get(id) }

// Jobs returns all retained jobs in submission order.
func (s *Service) Jobs() []*Job { return s.store.All() }

// Close stops accepting new jobs, waits for outstanding ones and
// shuts the job-store sweeper down.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	s.store.StopSweeper()
}

// Metrics returns a snapshot of the service counters.
func (s *Service) Metrics() MetricsSnapshot {
	cs := s.cache.snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	return MetricsSnapshot{
		Submitted:        s.submitted,
		Completed:        s.completed,
		Failed:           s.failed,
		Running:          s.running,
		Waiting:          s.waiting,
		Cache:            cs,
		CacheHitRate:     cs.HitRate(),
		IndexBusy:        s.indexBusy,
		PrefilterBusy:    s.prefilterBusy,
		Step2Busy:        s.step2Busy,
		Step3Busy:        s.step3Busy,
		Wall:             s.wall,
		Alignments:       s.alignments,
		PrefilterKept:    s.prefilterKept,
		PrefilterDropped: s.prefilterDropped,
	}
}

func validate(req *Request) error {
	if req == nil || req.Query == nil {
		return fmt.Errorf("service: request needs a query bank")
	}
	if (req.Subject == nil) == (req.Genome == nil) {
		return fmt.Errorf("service: request needs exactly one of Subject or Genome")
	}
	return nil
}

// resolveOptions fills unset core options from the defaults so HTTP
// callers can send sparse option sets. An entirely zero Gapped config
// takes the full step-3 defaults (matching the HTTP layer and the
// historical core.Compare behaviour, gap-trigger pre-filter included);
// a partially-set one is completed field-by-field downstream by
// core's gappedConfig.
func resolveOptions(opt core.Options) core.Options {
	def := core.DefaultOptions()
	if opt.Seed == nil {
		opt.Seed = def.Seed
		if opt.N == 0 {
			opt.N = def.N
		}
	}
	if opt.Matrix == nil {
		opt.Matrix = def.Matrix
	}
	if opt.UngappedThreshold == 0 {
		opt.UngappedThreshold = def.UngappedThreshold
	}
	if opt.Gapped == (gapped.Config{}) {
		opt.Gapped = def.Gapped
	}
	return opt
}

// subjectKey returns the cache key and builder for the request's
// subject index.
func (s *Service) subjectKey(req *Request, opt core.Options) (string, func() (*index.Index, error)) {
	if req.Genome != nil {
		sum := sha256.Sum256(req.Genome)
		key := fmt.Sprintf("genome/%s/%s/%s",
			hex.EncodeToString(sum[:]), opt.Code().Name(),
			index.ModelIdentity(opt.Seed, opt.N))
		return key, func() (*index.Index, error) {
			fb := core.FrameBank(req.Genome, opt)
			return index.BuildParallel(fb, opt.Seed, opt.N, opt.Workers)
		}
	}
	return index.Fingerprint(req.Subject, opt.Seed, opt.N), func() (*index.Index, error) {
		return index.BuildParallel(req.Subject, opt.Seed, opt.N, opt.Workers)
	}
}

// run is the shared execution path: resolve options, obtain the shared
// subject index (cache + singleflight), pass admission, run the
// engine, record metrics. onStart, when non-nil, fires once the
// request passes admission and actually starts comparing.
func (s *Service) run(ctx context.Context, req *Request, onStart func()) (*core.Result, *core.GenomeResult, error) {
	if err := validate(req); err != nil {
		return nil, nil, err
	}
	opt := resolveOptions(req.Options)

	// Every run gets a trace: async jobs carry theirs in ctx (Submit
	// puts it there), sync calls get an ephemeral one. The pipeline
	// records per-shard stage spans into it; on success they feed the
	// stage-latency histograms.
	tr := telemetry.TraceFromContext(ctx)
	if tr == nil {
		tr = telemetry.NewTrace(telemetry.NewTraceID())
		ctx = telemetry.ContextWithTrace(ctx, tr)
	}
	start := time.Now()

	s.mu.Lock()
	s.submitted++
	s.waiting++
	s.mu.Unlock()

	finish := func(res *core.Result, gres *core.GenomeResult, err error) (*core.Result, *core.GenomeResult, error) {
		s.mu.Lock()
		if err != nil {
			s.failed++
			s.mu.Unlock()
			return nil, nil, err
		}
		s.completed++
		pm := res
		if gres != nil {
			pm = &gres.Result
		}
		s.indexBusy += pm.Pipeline.Index.Busy
		s.prefilterBusy += pm.Pipeline.Prefilter.Busy
		s.step2Busy += pm.Pipeline.Step2.Busy
		s.step3Busy += pm.Pipeline.Step3.Busy
		s.wall += pm.Pipeline.Wall
		s.alignments += int64(len(pm.Alignments))
		s.prefilterKept += pm.Pipeline.PrefilterKept
		s.prefilterDropped += pm.Pipeline.PrefilterDropped
		s.mu.Unlock()
		if q := pm.Pipeline.PrefilterQueries; q > 0 {
			s.survivorsHist.Observe(float64(pm.Pipeline.PrefilterKept) / float64(q))
		}
		d := time.Since(start)
		tr.Record("request", start, d)
		s.reqHist.Observe(d.Seconds())
		s.observeTrace(tr)
		return res, gres, nil
	}

	// The service runs on the v2 search API: the cached subject index
	// is adopted by a per-request Target, and the engine streams
	// through Collect — the same adapter path the deprecated v1 entry
	// points use, so results stay bit-identical to a standalone
	// core.Compare call.
	searcher, err := core.SearcherFromOptions(opt)
	if err != nil {
		s.mu.Lock()
		s.waiting--
		s.mu.Unlock()
		return finish(nil, nil, err)
	}

	// The index build/lookup happens outside the admission gate: a
	// build is one-off per subject (singleflight), and keeping waiters
	// out of the semaphore means a slow build never pins a compare
	// slot. Cold builds have their own bound of the same size, so a
	// burst against many distinct cold subjects cannot oversubscribe
	// the host with parallel builds. The build itself deliberately
	// ignores the requester's context: concurrent waiters share its
	// result, so cancelling the request that happened to arrive first
	// must not poison everyone else — ctx only bounds this caller's
	// wait (inside cache.get).
	key, build := s.subjectKey(req, opt)
	gatedBuild := func() (*index.Index, error) {
		s.buildSem <- struct{}{}
		defer func() { <-s.buildSem }()
		// Second tier before rebuild: a registered seeddb with this
		// fingerprint is loaded from disk (mmap, no step-1 pass). A
		// failed or stale disk load silently falls back to building —
		// the rebuild path is always correct.
		if ix, ok := s.loadFromDisk(key); ok {
			return ix, nil
		}
		return build()
	}
	ix, err := s.cache.get(ctx, key, gatedBuild)
	if err != nil {
		s.mu.Lock()
		s.waiting--
		s.mu.Unlock()
		return finish(nil, nil, fmt.Errorf("service: subject index: %w", err))
	}

	// Admission: at most MaxConcurrent comparisons in flight.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.mu.Lock()
		s.waiting--
		s.mu.Unlock()
		return finish(nil, nil, ctx.Err())
	}
	s.mu.Lock()
	s.waiting--
	s.running++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		<-s.sem
	}()
	if onStart != nil {
		onStart()
	}

	if req.Genome != nil {
		tgt := core.NewGenomeTarget(req.Genome, opt.GeneticCode)
		tgt.Adopt(ix)
		ms, sum, err := search(ctx, searcher, req.Query, tgt)
		if err != nil {
			return finish(nil, nil, err)
		}
		return finish(nil, core.GenomeResultFrom(ms, sum, len(req.Genome)), nil)
	}
	tgt := core.NewProteinTarget(req.Subject)
	tgt.Adopt(ix)
	ms, sum, err := search(ctx, searcher, req.Query, tgt)
	if err != nil {
		return finish(nil, nil, err)
	}
	return finish(core.ResultFrom(ms, sum), nil, nil)
}

// search drains one v2 search and returns its matches and summary.
func search(ctx context.Context, s *core.Searcher, query *bank.Bank, tgt core.Target) ([]core.Match, *core.Summary, error) {
	res := s.Search(ctx, core.NewProteinTarget(query), tgt)
	ms, err := res.Collect()
	if err != nil {
		return nil, nil, err
	}
	sum, err := res.Summary()
	if err != nil {
		return nil, nil, err
	}
	return ms, sum, nil
}
