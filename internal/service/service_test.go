package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/gapped"
	"seedblast/internal/index"
)

// testWorkload returns a query bank and a subject bank holding mutated
// copies of the queries, so the pipeline finds real alignments.
func testWorkload(t testing.TB, n int, seed int64) (*bank.Bank, *bank.Bank) {
	t.Helper()
	b0 := bank.GenerateProteins(bank.ProteinConfig{N: n, MeanLen: 100, LenJitter: 25, Seed: seed})
	rng := bank.NewRNG(seed + 1000)
	b1 := bank.New("subjects")
	for i := 0; i < b0.Len(); i++ {
		b1.Add(fmt.Sprintf("s%d", i), bank.MutateProtein(rng, b0.Seq(i), 0.15))
	}
	return b0, b1
}

func testOptions() core.Options {
	opt := core.DefaultOptions()
	opt.Workers = 1
	g := gapped.DefaultConfig()
	g.MaxEValue = 10
	g.Workers = 1
	opt.Gapped = g
	return opt
}

func assertSameResult(t *testing.T, want, got *core.Result) {
	t.Helper()
	if want.Hits != got.Hits || want.Pairs != got.Pairs {
		t.Fatalf("hits/pairs differ: want %d/%d, got %d/%d", want.Hits, want.Pairs, got.Hits, got.Pairs)
	}
	if len(want.Alignments) != len(got.Alignments) {
		t.Fatalf("alignment counts differ: want %d, got %d", len(want.Alignments), len(got.Alignments))
	}
	for i := range want.Alignments {
		w, g := want.Alignments[i], got.Alignments[i]
		if w.Seq0 != g.Seq0 || w.Seq1 != g.Seq1 || w.Score != g.Score ||
			w.EValue != g.EValue || w.Q != g.Q || w.S != g.S {
			t.Fatalf("alignment %d differs:\nwant %+v\n got %+v", i, w, g)
		}
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := newIndexCache(4)
	b := bank.GenerateProteins(bank.ProteinConfig{N: 4, MeanLen: 60, Seed: 1})
	opt := testOptions()

	var builds atomic.Int32
	build := func() (*index.Index, error) {
		builds.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the singleflight window
		return index.BuildParallel(b, opt.Seed, opt.N, 1)
	}

	const waiters = 8
	got := make([]*index.Index, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ix, err := c.get(context.Background(), "k", build)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = ix
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds for one key under concurrency, want 1 (singleflight)", n)
	}
	for i := 1; i < waiters; i++ {
		if got[i] != got[0] {
			t.Fatalf("waiter %d received a different index instance", i)
		}
	}
	st := c.snapshot()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Errorf("cache stats = %+v, want 1 miss and %d hits", st, waiters-1)
	}
}

func TestCacheFailedBuildNotCached(t *testing.T) {
	c := newIndexCache(4)
	var calls atomic.Int32
	failing := func() (*index.Index, error) {
		calls.Add(1)
		return nil, fmt.Errorf("boom")
	}
	if _, err := c.get(context.Background(), "k", failing); err == nil {
		t.Fatal("expected build error")
	}
	if _, err := c.get(context.Background(), "k", failing); err == nil {
		t.Fatal("expected build error on retry")
	}
	if calls.Load() != 2 {
		t.Errorf("failed build was cached: %d calls, want 2", calls.Load())
	}
	if st := c.snapshot(); st.Entries != 0 {
		t.Errorf("failed entries left resident: %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newIndexCache(2)
	b := bank.GenerateProteins(bank.ProteinConfig{N: 2, MeanLen: 40, Seed: 5})
	opt := testOptions()
	mk := func() (*index.Index, error) { return index.BuildParallel(b, opt.Seed, opt.N, 1) }
	for _, k := range []string{"a", "b", "a", "c"} { // touches keep "a" hot, "b" is LRU
		if _, err := c.get(context.Background(), k, mk); err != nil {
			t.Fatal(err)
		}
	}
	st := c.snapshot()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats after eviction = %+v, want 2 entries, 1 eviction", st)
	}
	// "a" must still be resident (hit), "b" must have been evicted (miss).
	misses := st.Misses
	if _, err := c.get(context.Background(), "a", mk); err != nil {
		t.Fatal(err)
	}
	if st = c.snapshot(); st.Misses != misses {
		t.Error(`hot entry "a" was evicted instead of LRU "b"`)
	}
	if _, err := c.get(context.Background(), "b", mk); err != nil {
		t.Fatal(err)
	}
	if st = c.snapshot(); st.Misses != misses+1 {
		t.Error(`LRU entry "b" unexpectedly still resident`)
	}
}

func TestServiceMatchesCore(t *testing.T) {
	b0, b1 := testWorkload(t, 10, 3)
	opt := testOptions()
	want, err := core.Compare(b0, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Alignments) == 0 {
		t.Fatal("workload produced no alignments")
	}
	svc := New(Config{})
	defer svc.Close()
	got, err := svc.Compare(context.Background(), b0, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got)

	m := svc.Metrics()
	if m.Completed != 1 || m.Cache.Misses != 1 {
		t.Errorf("metrics after one request: %+v", m)
	}

	// Second identical request: cache hit, identical result.
	got2, err := svc.Compare(context.Background(), b0, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got2)
	m = svc.Metrics()
	if m.Cache.Hits != 1 {
		t.Errorf("second request did not hit the index cache: %+v", m.Cache)
	}
	if m.CacheHitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", m.CacheHitRate)
	}
}

// Concurrent requests through the service against one shared subject
// bank: every response bit-identical to the sequential reference, one
// index build total. Run under -race in CI.
func TestServiceConcurrentBitIdentical(t *testing.T) {
	b0a, b1 := testWorkload(t, 12, 7)
	b0b := bank.GenerateProteins(bank.ProteinConfig{N: 9, MeanLen: 100, LenJitter: 25, Seed: 7}) // prefix queries
	opt := testOptions()

	refA, err := core.Compare(b0a, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := core.Compare(b0b, b1, opt)
	if err != nil {
		t.Fatal(err)
	}

	svc := New(Config{MaxConcurrent: 3, CacheEntries: 4})
	defer svc.Close()

	const rounds = 10
	var wg sync.WaitGroup
	errs := make([]error, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, want := b0a, refA
			if i%2 == 1 {
				q, want = b0b, refB
			}
			got, err := svc.Compare(context.Background(), q, b1, opt)
			if err != nil {
				errs[i] = err
				return
			}
			assertSameResult(t, want, got)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	m := svc.Metrics()
	if m.Cache.Misses != 1 {
		t.Errorf("%d index builds for one hot subject bank, want 1 (singleflight+cache): %+v",
			m.Cache.Misses, m.Cache)
	}
	if m.Completed != rounds {
		t.Errorf("completed = %d, want %d", m.Completed, rounds)
	}
	if m.Running != 0 || m.Waiting != 0 {
		t.Errorf("gauges not drained: %+v", m)
	}
}

func TestServiceGenomeCached(t *testing.T) {
	proteins := bank.GenerateProteins(bank.ProteinConfig{N: 8, MeanLen: 110, LenJitter: 20, Seed: 41})
	genome, _, err := bank.GenerateGenome(bank.GenomeConfig{
		Length: 40_000, Source: proteins, PlantCount: 4, PlantSubRate: 0.1, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	want, err := core.CompareGenome(proteins, genome, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) == 0 {
		t.Fatal("no genome matches in reference run")
	}

	svc := New(Config{})
	defer svc.Close()
	for round := 0; round < 2; round++ {
		got, err := svc.CompareGenome(context.Background(), proteins, genome, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, &want.Result, &got.Result)
		if len(got.Matches) != len(want.Matches) {
			t.Fatalf("round %d: %d matches, want %d", round, len(got.Matches), len(want.Matches))
		}
		for i := range want.Matches {
			if want.Matches[i].NucStart != got.Matches[i].NucStart ||
				want.Matches[i].NucEnd != got.Matches[i].NucEnd ||
				want.Matches[i].Frame != got.Matches[i].Frame {
				t.Fatalf("round %d: genome match %d differs", round, i)
			}
		}
	}
	if m := svc.Metrics(); m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("genome frame index not cached across runs: %+v", m.Cache)
	}
}

func TestJobLifecycle(t *testing.T) {
	b0, b1 := testWorkload(t, 8, 11)
	svc := New(Config{})

	j, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j.State() != JobDone {
		t.Fatalf("state = %s, want done", j.State())
	}
	if j.Result() == nil || len(j.Result().Alignments) == 0 {
		t.Fatal("done job has no result")
	}
	sub, started, fin := j.Times()
	if sub.IsZero() || started.IsZero() || fin.IsZero() || fin.Before(started) {
		t.Errorf("inconsistent job times: %v %v %v", sub, started, fin)
	}
	if got, ok := svc.Job(j.ID()); !ok || got != j {
		t.Error("Job lookup by id failed")
	}
	if all := svc.Jobs(); len(all) != 1 || all[0] != j {
		t.Error("Jobs() does not list the job")
	}

	// Validation.
	if _, err := svc.Submit(&Request{Query: b0}); err == nil {
		t.Error("request without subject or genome accepted")
	}
	if _, err := svc.Submit(&Request{Query: b0, Subject: b1, Genome: []byte{0}}); err == nil {
		t.Error("request with both subject and genome accepted")
	}

	svc.Close()
	if _, err := svc.Submit(&Request{Query: b0, Subject: b1}); err == nil {
		t.Error("Submit after Close accepted")
	}
}

func TestJobCancel(t *testing.T) {
	b0, b1 := testWorkload(t, 30, 13)
	svc := New(Config{MaxConcurrent: 1})
	defer svc.Close()

	// Occupy the only slot so the second job sits in admission, then
	// cancel it there.
	first, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	second.Cancel()
	_ = second.Wait(context.Background())
	if err := first.Wait(context.Background()); err != nil {
		t.Fatalf("first job: %v", err)
	}
	// The cancelled job either failed with a context error or finished
	// if it had already been admitted; both are legal. What must hold:
	// both jobs finished and the service gauges drained.
	if s := second.State(); s != JobFailed && s != JobDone {
		t.Errorf("cancelled job state = %s", s)
	}
	if m := svc.Metrics(); m.Running != 0 || m.Waiting != 0 {
		t.Errorf("gauges not drained after cancel: %+v", m)
	}
}

// The headline claim: repeated requests against a hot subject bank are
// cheaper through the service (shared index) than naive per-request
// core.Compare calls that rebuild the subject index every time.
func BenchmarkServiceConcurrent(b *testing.B) {
	b0, b1 := testWorkload(b, 24, 17)
	opt := testOptions()
	svc := New(Config{MaxConcurrent: 4, CacheEntries: 4})
	defer svc.Close()
	// Warm the cache so steady-state behaviour is measured.
	if _, err := svc.Compare(context.Background(), b0, b1, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := svc.Compare(context.Background(), b0, b1, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNaiveConcurrent is the baseline BenchmarkServiceConcurrent
// beats: the same workload with per-request core.Compare, rebuilding
// the subject index on every call.
func BenchmarkNaiveConcurrent(b *testing.B) {
	b0, b1 := testWorkload(b, 24, 17)
	opt := testOptions()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := core.Compare(b0, b1, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestJobRetentionBounded(t *testing.T) {
	b0, b1 := testWorkload(t, 4, 61)
	svc := New(Config{MaxJobsRetained: 2})
	defer svc.Close()
	var last *Job
	for i := 0; i < 5; i++ {
		j, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		last = j
	}
	jobs := svc.Jobs()
	if len(jobs) > 2 {
		t.Fatalf("retained %d finished jobs, cap is 2", len(jobs))
	}
	if _, ok := svc.Job(last.ID()); !ok {
		t.Error("newest job was pruned; only the oldest finished jobs should be")
	}
	if _, ok := svc.Job("job-1"); ok {
		t.Error("oldest finished job survived past the retention cap")
	}
}

// TTL eviction: finished jobs older than JobTTL disappear on the next
// store access, while unexpired and running jobs survive — the other
// half of the long-running-daemon memory bound next to
// MaxJobsRetained.
func TestJobTTLEviction(t *testing.T) {
	b0, b1 := testWorkload(t, 4, 62)
	svc := New(Config{JobTTL: 30 * time.Millisecond})
	defer svc.Close()

	j, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Freshly finished: still pollable.
	if _, ok := svc.Job(j.ID()); !ok {
		t.Fatal("finished job evicted before its TTL")
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		time.Sleep(10 * time.Millisecond)
		if _, ok := svc.Job(j.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job survived well past its TTL")
		}
	}

	// TTL starts at finish time: a job that just finished is pollable
	// even though older jobs have already expired.
	j2, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Job(j2.ID()); !ok {
		t.Error("just-finished job missing: TTL must start at finish time, not submit time")
	}

	// Negative TTL disables age-based eviction entirely.
	keep := New(Config{JobTTL: -1})
	defer keep.Close()
	k, err := keep.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, ok := keep.Job(k.ID()); !ok {
		t.Error("JobTTL < 0 should disable TTL eviction")
	}
}

// MaxQueued bounds unfinished jobs: pending jobs pin their full
// request and are exempt from eviction, so the queue itself must cap.
func TestSubmitQueueBounded(t *testing.T) {
	b0, b1 := testWorkload(t, 3, 63)
	svc := New(Config{MaxConcurrent: 1, MaxQueued: 2})
	defer svc.Close()

	// Hold the only admission slot so submitted jobs stay pending.
	svc.sem <- struct{}{}
	j1, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()}); err == nil {
		t.Fatal("submission beyond MaxQueued accepted")
	}
	<-svc.sem // release admission; the pending jobs drain
	if err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// With the queue drained, submissions are accepted again.
	j3, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatalf("queue did not reopen after draining: %v", err)
	}
	if err := j3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// A zero Options through the service must behave exactly like
// core.Compare with DefaultOptions — including the gap-trigger
// pre-filter, which a zero gapped.Config would silently disable.
func TestZeroOptionsMatchDefaults(t *testing.T) {
	b0, b1 := testWorkload(t, 8, 71)
	want, err := core.Compare(b0, b1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	defer svc.Close()
	got, err := svc.Compare(context.Background(), b0, b1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got)
}
