package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seedblast/internal/core"
)

// TestHTTPMaxCandidates covers the wire plumbing for the prefilter
// knob: validation of a negative value, the k=∞ bit-identity contract
// through the HTTP layer, and the /metrics families the stage feeds.
func TestHTTPMaxCandidates(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	b0, b1 := testWorkload(t, 8, 37)

	neg := -2
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequestJSON{
		Query:   bankToJSON(b0),
		Subject: bankToJSON(b1),
		Options: OptionsJSON{MaxCandidates: &neg},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative maxCandidates: status = %d, want 400", resp.StatusCode)
	}

	// Reference without the prefilter, then a wide-open filtered job:
	// the top-K cut never bites, so alignments must match exactly.
	opt := testOptions()
	opt.Workers = 0
	want, err := core.Compare(b0, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Alignments) == 0 {
		t.Fatal("reference run found no alignments")
	}
	k := b1.Len()
	resp = postJSON(t, ts.URL+"/v1/jobs", JobRequestJSON{
		Query:   bankToJSON(b0),
		Subject: bankToJSON(b1),
		Options: OptionsJSON{MaxCandidates: &k},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	sub := decodeJSON[map[string]string](t, resp)
	st := pollDone(t, ts.URL, sub["id"])
	if st.State != string(JobDone) {
		t.Fatalf("job failed: %s", st.Error)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub["id"] + "/alignments")
	if err != nil {
		t.Fatal(err)
	}
	got := decodeJSON[[]AlignmentJSON](t, resp)
	if len(got) != len(want.Alignments) {
		t.Fatalf("fetched %d alignments, want %d", len(got), len(want.Alignments))
	}
	for i, a := range want.Alignments {
		g := got[i]
		if g.Query != b0.ID(a.Seq0) || g.Subject != b1.ID(a.Seq1) ||
			g.Score != a.Score || g.EValue != a.EValue ||
			g.QStart != a.Q.Start || g.QEnd != a.Q.End ||
			g.SStart != a.S.Start || g.SEnd != a.S.End {
			t.Fatalf("alignment %d differs under wide-open prefilter:\nwant %+v\n got %+v", i, a, g)
		}
	}

	// A tight-cut run drives the prefilter counters and the exported
	// telemetry families.
	opt = testOptions()
	opt.MaxCandidates = 2
	if _, err := svc.Compare(context.Background(), b0, b1, opt); err != nil {
		t.Fatal(err)
	}
	snap := svc.Metrics()
	if snap.PrefilterKept == 0 || snap.PrefilterDropped == 0 {
		t.Fatalf("prefilter counters not fed: %+v", snap)
	}
	if snap.PrefilterBusy <= 0 {
		t.Fatalf("prefilter busy time not fed: %v", snap.PrefilterBusy)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"seedservd_prefilter_kept_total",
		"seedservd_prefilter_dropped_total",
		"seedservd_prefilter_survivors_bucket",
		`seedservd_stage_busy_seconds_total{stage="prefilter"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
