package service

import (
	"encoding/json"
	"fmt"
	"iter"
	"net/http"
	"time"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/gapped"
	"seedblast/internal/pipeline"
	"seedblast/internal/stats"
	"seedblast/internal/telemetry"
	"seedblast/internal/translate"
	"seedblast/internal/ungapped"
)

// MaxRequestBytes bounds a submitted job body (banks are sent inline).
const MaxRequestBytes = 64 << 20

// streamFlushEvery is how many NDJSON lines the streaming alignments
// fetch writes between flushes: small enough that a slow consumer sees
// steady progress, large enough to amortize the chunked-encoding
// overhead.
const streamFlushEvery = 64

// NewHandler returns the service's HTTP+JSON API:
//
//	POST   /v1/jobs                submit a comparison; returns {"id": ...}
//	GET    /v1/jobs                list job summaries
//	GET    /v1/jobs/{id}           poll one job's status
//	DELETE /v1/jobs/{id}           cancel a job
//	GET    /v1/jobs/{id}/alignments fetch a finished job's alignments
//	                               (?stream=1: chunked NDJSON, one
//	                               alignment per line, instead of one
//	                               JSON array)
//	GET    /v1/jobs/{id}/trace     the job's span trace (per-shard
//	                               stage timings; live while running)
//	GET    /metrics                Prometheus text exposition (the
//	                               service registry: counters, gauges,
//	                               stage-latency histograms)
//	GET    /healthz                liveness probe
//
// A submit carrying a Seedblast-Trace-Id header runs under that trace
// ID — the cluster coordinator correlates worker spans this way.
func NewHandler(s *Service) http.Handler {
	h := &handler{svc: s}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", h.submit)
	mux.HandleFunc("GET /v1/jobs", h.list)
	mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/alignments", h.alignments)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", h.trace)
	mux.Handle("GET /metrics", s.Registry().Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type handler struct{ svc *Service }

// SequenceJSON is one sequence record in a request body.
type SequenceJSON struct {
	ID  string `json:"id"`
	Seq string `json:"seq"`
}

// OptionsJSON is the wire form of the per-request option subset the
// API exposes. Absent fields take the pipeline defaults.
type OptionsJSON struct {
	Engine    string   `json:"engine,omitempty"` // cpu (default), rasc, multi
	N         *int     `json:"n,omitempty"`
	Threshold *int     `json:"threshold,omitempty"`
	MaxEValue *float64 `json:"maxEValue,omitempty"`
	Traceback bool     `json:"traceback,omitempty"`
	Workers   int      `json:"workers,omitempty"`
	// Kernel selects the CPU step-2 inner loop: "auto" (default),
	// "scalar" or "blocked". Results are bit-identical across kernels;
	// only throughput differs.
	Kernel        string `json:"kernel,omitempty"`
	ShardSize     int    `json:"shardSize,omitempty"`
	InFlight      int    `json:"inFlight,omitempty"`
	StreamWorkers int    `json:"streamWorkers,omitempty"`
	GeneticCode   string `json:"geneticCode,omitempty"`
	// MaxCandidates enables the two-stage prefilter: only the top k
	// subjects per query (by hashed-seed diagonal score) are extended.
	// Absent or 0 disables it (bit-identical to today's behaviour);
	// E-values are unaffected either way. On a cluster worker the cut
	// applies per volume — see cluster.Coordinator.Compare.
	MaxCandidates *int `json:"maxCandidates,omitempty"`
	// SearchSpace is the volume context: when the submitted subject is
	// one volume of a larger partitioned bank, the coordinator sets the
	// full bank's geometry here so this worker's E-values (and the
	// maxEValue cut) are computed against the whole database — making
	// the gathered, merged result bit-identical to an unpartitioned
	// run. Absent means the subject bank is the whole database.
	SearchSpace *SearchSpaceJSON `json:"searchSpace,omitempty"`
}

// SearchSpaceJSON is the wire form of stats.SearchSpace.
type SearchSpaceJSON struct {
	DBLen  int `json:"dbLen"`            // full database length in residues
	DBSeqs int `json:"dbSeqs,omitempty"` // full database sequence count
}

// JobRequestJSON is a submitted comparison: a query bank against
// either a subject bank or a genome (nucleotide string, tblastn-style).
type JobRequestJSON struct {
	Query   []SequenceJSON `json:"query"`
	Subject []SequenceJSON `json:"subject,omitempty"`
	Genome  string         `json:"genome,omitempty"`
	Options OptionsJSON    `json:"options"`
}

// JobStatusJSON is the poll response.
type JobStatusJSON struct {
	ID        string     `json:"id"`
	State     string     `json:"state"`
	Mode      string     `json:"mode"` // "bank" or "genome"
	TraceID   string     `json:"traceId,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	// Summary fields, present once the job is done.
	Alignments *int           `json:"alignments,omitempty"`
	Hits       *int           `json:"hits,omitempty"`
	Pairs      *int64         `json:"pairs,omitempty"`
	WallMS     *float64       `json:"wallMS,omitempty"`
	Shards     map[string]int `json:"shardsByBackend,omitempty"`
}

// AlignmentJSON is one reported alignment.
type AlignmentJSON struct {
	Query    string  `json:"query"`
	Subject  string  `json:"subject"`
	Score    int     `json:"score"`
	BitScore float64 `json:"bitScore"`
	EValue   float64 `json:"eValue"`
	QStart   int     `json:"qStart"`
	QEnd     int     `json:"qEnd"`
	SStart   int     `json:"sStart"`
	SEnd     int     `json:"sEnd"`
	// Genome-mode extras.
	Frame    string `json:"frame,omitempty"`
	NucStart *int   `json:"nucStart,omitempty"`
	NucEnd   *int   `json:"nucEnd,omitempty"`
}

// WriteJSON encodes v as the response with the given status code. It
// is shared with the cluster daemon so both speak one wire dialect.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the API's {"error": ...} response — the shape
// Client.readError decodes.
func WriteError(w http.ResponseWriter, code int, format string, args ...any) {
	WriteJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// buildOptions maps the wire options onto core.Options.
func buildOptions(oj OptionsJSON) (core.Options, error) {
	opt := core.DefaultOptions()
	switch oj.Engine {
	case "", "cpu":
		opt.Engine = core.EngineCPU
	case "rasc":
		opt.Engine = core.EngineRASC
	case "multi":
		opt.Engine = core.EngineMulti
	default:
		return opt, fmt.Errorf("unknown engine %q (cpu, rasc, multi)", oj.Engine)
	}
	if oj.N != nil {
		if *oj.N < 0 {
			return opt, fmt.Errorf("negative n %d", *oj.N)
		}
		opt.N = *oj.N
	}
	if oj.Threshold != nil {
		opt.UngappedThreshold = *oj.Threshold
	}
	g := gapped.DefaultConfig()
	if oj.MaxEValue != nil {
		if *oj.MaxEValue <= 0 {
			return opt, fmt.Errorf("maxEValue must be positive, got %g", *oj.MaxEValue)
		}
		g.MaxEValue = *oj.MaxEValue
	}
	g.Traceback = oj.Traceback
	opt.Gapped = g
	opt.Workers = oj.Workers
	kernel, err := ungapped.ParseKernel(oj.Kernel)
	if err != nil {
		return opt, err
	}
	opt.Step2Kernel = kernel
	opt.Pipeline = pipeline.Config{
		ShardSize:    oj.ShardSize,
		InFlight:     oj.InFlight,
		Step2Workers: oj.StreamWorkers,
		Step3Workers: oj.StreamWorkers,
	}
	if oj.MaxCandidates != nil {
		if *oj.MaxCandidates < 0 {
			return opt, fmt.Errorf("negative maxCandidates %d", *oj.MaxCandidates)
		}
		opt.MaxCandidates = *oj.MaxCandidates
	}
	if oj.GeneticCode != "" {
		code, err := translate.CodeByName(oj.GeneticCode)
		if err != nil {
			return opt, err
		}
		opt.GeneticCode = code
	}
	if oj.SearchSpace != nil {
		sp := stats.SearchSpace{DBLen: oj.SearchSpace.DBLen, DBSeqs: oj.SearchSpace.DBSeqs}
		if err := sp.Validate(); err != nil {
			return opt, err
		}
		if sp.IsZero() {
			return opt, fmt.Errorf("searchSpace present but empty (needs dbLen)")
		}
		opt.SearchSpaceOverride = sp
	}
	return opt, nil
}

func decodeBank(name string, seqs []SequenceJSON) (*bank.Bank, error) {
	b := bank.New(name)
	for i, sj := range seqs {
		id := sj.ID
		if id == "" {
			id = fmt.Sprintf("%s%d", name, i)
		}
		enc, err := alphabet.EncodeProtein(sj.Seq)
		if err != nil {
			return nil, fmt.Errorf("sequence %q: %w", id, err)
		}
		b.Add(id, enc)
	}
	return b, nil
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	var body JobRequestJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err := dec.Decode(&body); err != nil {
		WriteError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(body.Query) == 0 {
		WriteError(w, http.StatusBadRequest, "request needs a query bank")
		return
	}
	if (len(body.Subject) == 0) == (body.Genome == "") {
		WriteError(w, http.StatusBadRequest, "request needs exactly one of subject or genome")
		return
	}
	opt, err := buildOptions(body.Options)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "options: %v", err)
		return
	}
	req := &Request{Options: opt}
	if req.Query, err = decodeBank("query", body.Query); err != nil {
		WriteError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	if body.Genome != "" {
		if req.Genome, err = alphabet.EncodeDNA(body.Genome); err != nil {
			WriteError(w, http.StatusBadRequest, "genome: %v", err)
			return
		}
	} else if req.Subject, err = decodeBank("subject", body.Subject); err != nil {
		WriteError(w, http.StatusBadRequest, "subject: %v", err)
		return
	}
	req.TraceID = r.Header.Get(telemetry.TraceHeader)
	j, err := h.svc.Submit(req)
	if err != nil {
		WriteError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	WriteJSON(w, http.StatusAccepted, map[string]string{
		"id": j.ID(), "state": string(j.State()), "traceId": j.Trace().ID(),
	})
}

func jobStatus(j *Job) JobStatusJSON {
	sub, started, fin := j.Times()
	st := JobStatusJSON{
		ID:        j.ID(),
		State:     string(j.State()),
		Mode:      "bank",
		TraceID:   j.Trace().ID(),
		Submitted: sub,
	}
	if j.Request().Genome != nil {
		st.Mode = "genome"
	}
	if !started.IsZero() {
		st.Started = &started
	}
	if !fin.IsZero() {
		st.Finished = &fin
	}
	if err := j.Err(); err != nil {
		st.Error = err.Error()
	}
	var res *core.Result
	if gr := j.GenomeResult(); gr != nil {
		res = &gr.Result
	} else {
		res = j.Result()
	}
	if res != nil {
		n := len(res.Alignments)
		st.Alignments = &n
		st.Hits = &res.Hits
		st.Pairs = &res.Pairs
		ms := float64(res.Pipeline.Wall) / float64(time.Millisecond)
		st.WallMS = &ms
		st.Shards = res.Pipeline.ShardsByBackend
	}
	return st
}

func (h *handler) list(w http.ResponseWriter, _ *http.Request) {
	jobs := h.svc.Jobs()
	out := make([]JobStatusJSON, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobStatus(j))
	}
	WriteJSON(w, http.StatusOK, out)
}

func (h *handler) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := h.svc.Job(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j, ok
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := h.lookup(w, r); ok {
		WriteJSON(w, http.StatusOK, jobStatus(j))
	}
}

// trace serves the job's span trace — the per-request equivalent of
// the paper's per-stage wall-time table. Live while the job runs: the
// snapshot holds whatever spans have finished so far.
func (h *handler) trace(w http.ResponseWriter, r *http.Request) {
	if j, ok := h.lookup(w, r); ok {
		WriteJSON(w, http.StatusOK, j.Trace().JSON())
	}
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	if j, ok := h.lookup(w, r); ok {
		j.Cancel()
		WriteJSON(w, http.StatusOK, map[string]string{"id": j.ID(), "state": string(j.State())})
	}
}

func (h *handler) alignments(w http.ResponseWriter, r *http.Request) {
	j, ok := h.lookup(w, r)
	if !ok {
		return
	}
	switch j.State() {
	case JobFailed:
		WriteError(w, http.StatusConflict, "job failed: %v", j.Err())
		return
	case JobQueued, JobRunning:
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusConflict, "job is %s; poll until done", j.State())
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		WriteNDJSON(w, jobAlignments(j))
		return
	}
	var out []AlignmentJSON
	for aj := range jobAlignments(j) {
		out = append(out, aj)
	}
	if out == nil {
		out = []AlignmentJSON{}
	}
	WriteJSON(w, http.StatusOK, out)
}

// jobAlignments yields a finished job's alignments in rank order, one
// wire record at a time — the single producer behind both the array
// and the NDJSON fetch paths.
func jobAlignments(j *Job) iter.Seq[AlignmentJSON] {
	req := j.Request()
	return func(yield func(AlignmentJSON) bool) {
		if gr := j.GenomeResult(); gr != nil {
			for i := range gr.Matches {
				m := &gr.Matches[i]
				// The frame doubles as the subject id: in genome mode the
				// subject sequences are the six frame translations.
				frame := m.Frame.String()
				aj := alignmentJSON(req.Query.ID(m.Seq0), frame, &m.Alignment)
				aj.Frame = frame
				ns, ne := m.NucStart, m.NucEnd
				aj.NucStart, aj.NucEnd = &ns, &ne
				if !yield(aj) {
					return
				}
			}
			return
		}
		res := j.Result()
		for i := range res.Alignments {
			a := &res.Alignments[i]
			if !yield(alignmentJSON(req.Query.ID(a.Seq0), req.Subject.ID(a.Seq1), a)) {
				return
			}
		}
	}
}

// WriteNDJSON streams records as application/x-ndjson — one JSON
// object per line, flushed every streamFlushEvery lines so consumers
// decode results while the response is still being written. Shared
// with the cluster daemon's streaming fetch.
func WriteNDJSON[T any](w http.ResponseWriter, seq iter.Seq[T]) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	n := 0
	for v := range seq {
		// Encode appends the newline NDJSON needs; a write error means
		// the client went away, which ends the response anyway.
		if err := enc.Encode(v); err != nil {
			return
		}
		if n++; n%streamFlushEvery == 0 {
			_ = rc.Flush()
		}
	}
	_ = rc.Flush()
}

func alignmentJSON(qid, sid string, a *gapped.Alignment) AlignmentJSON {
	return AlignmentJSON{
		Query:    qid,
		Subject:  sid,
		Score:    a.Score,
		BitScore: a.BitScore,
		EValue:   a.EValue,
		QStart:   a.Q.Start,
		QEnd:     a.Q.End,
		SStart:   a.S.Start,
		SEnd:     a.S.End,
	}
}

// MatchJSON renders a v2 match in the service's wire encoding: the
// query id from the match's query locus, the subject id from its
// subject locus (the frame string for genome targets), and — when the
// subject side is translated — the frame and nucleotide interval the
// genome-mode API reports. cmd/seedcmp's machine-readable output uses
// it so CLI and service speak one dialect.
func MatchJSON(m *core.Match) AlignmentJSON {
	aj := alignmentJSON(m.Query.ID, m.Subject.ID, &m.Alignment)
	if m.Subject.Translated() {
		aj.Frame = m.Subject.Frame.String()
		ns, ne := m.Subject.NucStart, m.Subject.NucEnd
		aj.NucStart, aj.NucEnd = &ns, &ne
	}
	return aj
}
