package service

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/index"
)

// writeSubjectDB builds the subject's index under the request options
// and writes its seeddb, returning the path.
func writeSubjectDB(t *testing.T, subject *bank.Bank) string {
	t.Helper()
	opt := testOptions()
	ix, err := index.BuildParallel(subject, opt.Seed, opt.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "subject.seeddb")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPreloadDBWarmsCache pins the seedservd -db contract: after
// PreloadDB, the very first request against the stored subject is a
// cache hit (zero misses, zero builds) and its result is bit-identical
// to the build path.
func TestPreloadDBWarmsCache(t *testing.T) {
	b0, b1 := testWorkload(t, 5, 81)
	path := writeSubjectDB(t, b1)

	ref, err := core.Compare(b0, b1, testOptions())
	if err != nil {
		t.Fatal(err)
	}

	svc := New(Config{})
	defer svc.Close()
	fp, err := svc.PreloadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	if want := index.Fingerprint(b1, opt.Seed, opt.N); fp != want {
		t.Fatalf("preloaded fingerprint %.24s… does not key the request's %.24s…", fp, want)
	}

	res, err := svc.Compare(context.Background(), b0, b1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, ref, res)

	st := svc.Metrics()
	if st.Cache.Misses != 0 || st.Cache.Hits != 1 {
		t.Errorf("first request after preload: %+v, want 1 hit / 0 misses", st.Cache)
	}
}

// TestDiskFallbackAfterEviction pins the second tier: once the
// preloaded entry is evicted by cache churn, the next request for the
// known fingerprint reloads from disk (DiskLoads grows) instead of
// rebuilding, and still matches the build path bit-for-bit.
func TestDiskFallbackAfterEviction(t *testing.T) {
	b0, b1 := testWorkload(t, 5, 82)
	path := writeSubjectDB(t, b1)

	svc := New(Config{CacheEntries: 1})
	defer svc.Close()
	if _, err := svc.PreloadDB(path); err != nil {
		t.Fatal(err)
	}

	// Churn the capacity-1 cache with a different subject: the
	// preloaded entry is the LRU and gets evicted.
	other0, other1 := testWorkload(t, 4, 83)
	if _, err := svc.Compare(context.Background(), other0, other1, testOptions()); err != nil {
		t.Fatal(err)
	}

	ref, err := core.Compare(b0, b1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Compare(context.Background(), b0, b1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, ref, res)

	st := svc.Metrics()
	if st.Cache.DiskLoads != 1 {
		t.Errorf("disk loads = %d, want 1 (miss on a registered fingerprint must reload, not rebuild)", st.Cache.DiskLoads)
	}
}

// TestRegisterDBServesColdMiss pins RegisterDB alone (no preload): the
// first request is a miss served from disk.
func TestRegisterDBServesColdMiss(t *testing.T) {
	b0, b1 := testWorkload(t, 5, 84)
	path := writeSubjectDB(t, b1)

	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.RegisterDB(path); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Compare(context.Background(), b0, b1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Compare(b0, b1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, ref, res)
	if st := svc.Metrics(); st.Cache.DiskLoads != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache stats %+v, want 1 miss served by 1 disk load", st.Cache)
	}
}

// TestDiskFallbackSurvivesMissingFile pins resilience: a registered
// file that disappears falls back to the rebuild path (correct
// results, no error), rather than failing requests.
func TestDiskFallbackSurvivesMissingFile(t *testing.T) {
	b0, b1 := testWorkload(t, 4, 85)
	path := writeSubjectDB(t, b1)

	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.RegisterDB(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Compare(context.Background(), b0, b1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Compare(b0, b1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, ref, res)
	if st := svc.Metrics(); st.Cache.DiskLoads != 0 {
		t.Errorf("disk loads = %d for a vanished file, want 0 (rebuild fallback)", st.Cache.DiskLoads)
	}
}

func TestRegisterDBErrors(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.RegisterDB(filepath.Join(t.TempDir(), "missing.seeddb")); err == nil {
		t.Error("RegisterDB accepted a missing file")
	}
	junk := filepath.Join(t.TempDir(), "junk.seeddb")
	if err := os.WriteFile(junk, []byte("not a seeddb file at all, just some bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterDB(junk); err == nil {
		t.Error("RegisterDB accepted a non-seeddb file")
	}
	if _, err := svc.PreloadDB(junk); err == nil {
		t.Error("PreloadDB accepted a non-seeddb file")
	}
}
