package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seedblast/internal/bank"
	"seedblast/internal/index"
)

// TestCacheEvictSkipsInFlight is the regression test for the eviction
// bug: under capacity pressure the LRU trim used to evict entries
// whose build was still running, silently discarding the finished
// index so the next request for that key rebuilt. A burst against one
// cold key while other keys churn the cache must cost exactly one
// build for that key — including a request arriving after the burst.
func TestCacheEvictSkipsInFlight(t *testing.T) {
	c := newIndexCache(1) // tightest capacity: every insert pressures the LRU
	b := bank.GenerateProteins(bank.ProteinConfig{N: 3, MeanLen: 50, Seed: 8})
	opt := testOptions()

	var buildsA atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	var startOnce sync.Once
	slowA := func() (*index.Index, error) {
		buildsA.Add(1)
		startOnce.Do(func() { close(started) })
		<-release
		return index.BuildParallel(b, opt.Seed, opt.N, 1)
	}
	fast := func() (*index.Index, error) { return index.BuildParallel(b, opt.Seed, opt.N, 1) }

	const waiters = 6
	got := make([]*index.Index, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ix, err := c.get(context.Background(), "A", slowA)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = ix
		}(i)
	}
	<-started

	// Capacity pressure while A's build is in flight: distinct keys
	// push through a capacity-1 cache. None of these inserts may evict
	// the in-flight "A" entry.
	for _, k := range []string{"B", "C", "D"} {
		if _, err := c.get(context.Background(), k, fast); err != nil {
			t.Fatal(err)
		}
	}

	close(release)
	wg.Wait()
	for i := 1; i < waiters; i++ {
		if got[i] != got[0] {
			t.Fatalf("waiter %d received a different index instance", i)
		}
	}

	// The finished build must have been retained: this request is a hit
	// on the surviving entry, not a rebuild.
	if _, err := c.get(context.Background(), "A", slowA); err != nil {
		t.Fatal(err)
	}
	if n := buildsA.Load(); n != 1 {
		t.Errorf("%d builds for key A under capacity pressure, want exactly 1", n)
	}

	// The cache still converges to capacity once builds settle.
	if _, err := c.get(context.Background(), "E", fast); err != nil {
		t.Fatal(err)
	}
	if st := c.snapshot(); st.Entries > 2 {
		t.Errorf("%d entries resident after pressure settled (cap 1, one may be over)", st.Entries)
	}
}

// TestCacheAllInFlightOverflows pins the escape valve: when every
// resident entry is mid-build the cache exceeds capacity rather than
// discard running work, and trims back once they finish.
func TestCacheAllInFlightOverflows(t *testing.T) {
	c := newIndexCache(1)
	b := bank.GenerateProteins(bank.ProteinConfig{N: 2, MeanLen: 40, Seed: 9})
	opt := testOptions()

	release := make(chan struct{})
	var wg sync.WaitGroup
	for _, k := range []string{"A", "B", "C"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			_, err := c.get(context.Background(), k, func() (*index.Index, error) {
				<-release
				return index.BuildParallel(b, opt.Seed, opt.N, 1)
			})
			if err != nil {
				t.Error(err)
			}
		}(k)
	}
	// Wait for all three to be resident and in flight.
	deadline := time.Now().Add(2 * time.Second)
	for c.snapshot().Entries < 3 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight entries never became resident")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	// A later insert trims the now-ready overflow back toward capacity.
	if _, err := c.get(context.Background(), "D", func() (*index.Index, error) {
		return index.BuildParallel(b, opt.Seed, opt.N, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.snapshot(); st.Entries > 2 {
		t.Errorf("%d entries resident after overflow settled", st.Entries)
	}
}

// TestCacheWaiterContextCancelled pins the ctx-bounded wait: a waiter
// whose context dies while a build is in flight gets ctx's error, its
// lookup is counted once, and the entry remains fully usable by later
// callers once the build lands.
func TestCacheWaiterContextCancelled(t *testing.T) {
	c := newIndexCache(2)
	b := bank.GenerateProteins(bank.ProteinConfig{N: 3, MeanLen: 50, Seed: 10})
	opt := testOptions()

	started := make(chan struct{})
	release := make(chan struct{})
	var builds atomic.Int32
	slow := func() (*index.Index, error) {
		builds.Add(1)
		close(started)
		<-release
		return index.BuildParallel(b, opt.Seed, opt.N, 1)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.get(context.Background(), "K", slow); err != nil {
			t.Error(err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := c.get(ctx, "K", slow); err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}

	st := c.snapshot()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("after one builder and one cancelled waiter: %+v, want 1 hit / 1 miss", st)
	}

	close(release)
	wg.Wait()

	// The abandoned wait must not have poisoned the entry: the next
	// caller hits the finished index without a rebuild.
	ix, err := c.get(context.Background(), "K", slow)
	if err != nil {
		t.Fatal(err)
	}
	if ix == nil {
		t.Fatal("later caller got a nil index")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("%d builds, want 1: a cancelled waiter must not trigger a rebuild", n)
	}
	if st := c.snapshot(); st.Hits != 2 || st.Misses != 1 {
		t.Errorf("final stats %+v, want 2 hits / 1 miss (each lookup counted exactly once)", st)
	}
}
