package service

import (
	"context"
	"testing"
	"time"
)

// fakeJob is a minimal JobStoreEntry for store-level tests.
type fakeJob struct {
	done chan struct{}
	fin  time.Time
}

func finishedFakeJob(at time.Time) *fakeJob {
	f := &fakeJob{done: make(chan struct{}), fin: at}
	close(f.done)
	return f
}

func (f *fakeJob) Done() <-chan struct{} { return f.done }
func (f *fakeJob) FinishedAt() time.Time { return f.fin }

// TestJobStoreBackgroundSweep is the regression test for idle-daemon
// retention: expired finished jobs must disappear with NO store
// accesses at all — the background sweeper alone evicts them.
func TestJobStoreBackgroundSweep(t *testing.T) {
	s := NewJobStore[*fakeJob](100, 20*time.Millisecond)
	s.StartSweeper(5 * time.Millisecond)
	defer s.StopSweeper()

	s.Add("j1", finishedFakeJob(time.Now()))
	s.Add("j2", finishedFakeJob(time.Now()))

	// Observe via len(), which deliberately does not prune: any
	// eviction seen here was the sweeper's doing.
	deadline := time.Now().Add(2 * time.Second)
	for s.len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle store still retains %d expired jobs; sweeper never evicted", s.len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobStoreSweeperShutdown pins the clean-shutdown contract: after
// StopSweeper returns, no further sweeps run; Stop is idempotent and
// Start after Stop works again.
func TestJobStoreSweeperShutdown(t *testing.T) {
	s := NewJobStore[*fakeJob](100, 10*time.Millisecond)
	s.StartSweeper(2 * time.Millisecond)
	s.StopSweeper()
	s.StopSweeper() // idempotent

	// With the sweeper stopped, a job added fresh (Add prunes, but the
	// job is unexpired at that point) then left to expire sits
	// untouched: neither len() nor anything else prunes it.
	s.Add("stale", finishedFakeJob(time.Now()))
	time.Sleep(30 * time.Millisecond)
	if s.len() != 1 {
		t.Fatal("job evicted after StopSweeper returned")
	}

	// Restart: the sweeper picks the stale job up again.
	s.StartSweeper(2 * time.Millisecond)
	defer s.StopSweeper()
	deadline := time.Now().Add(2 * time.Second)
	for s.len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted sweeper never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobStoreSweeperDisabled(t *testing.T) {
	s := NewJobStore[*fakeJob](100, 10*time.Millisecond)
	s.StartSweeper(0)  // no-op
	s.StartSweeper(-1) // no-op
	s.StopSweeper()    // nothing to stop
	s.Add("stale", finishedFakeJob(time.Now()))
	time.Sleep(25 * time.Millisecond)
	if s.len() != 1 {
		t.Fatal("disabled sweeper still evicted")
	}
}

// TestServiceIdleTTLSweep drives the same guarantee through the
// Service: a finished job on an otherwise idle daemon ages out without
// any Job/Jobs call arriving.
func TestServiceIdleTTLSweep(t *testing.T) {
	b0, b1 := testWorkload(t, 3, 64)
	svc := New(Config{JobTTL: 25 * time.Millisecond, SweepInterval: 5 * time.Millisecond})
	defer svc.Close()

	j, err := svc.Submit(&Request{Query: b0, Subject: b1, Options: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for svc.store.len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle service retained an expired job; background sweep missing")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDefaultSweepInterval(t *testing.T) {
	cases := []struct {
		ttl, want time.Duration
	}{
		{0, -1},
		{-time.Second, -1},
		{10 * time.Millisecond, time.Second}, // clamped up
		{10 * time.Second, 5 * time.Second},  // ttl/2
		{10 * time.Hour, time.Minute},        // clamped down
		{15 * time.Minute, time.Minute},      // the daemon default
	}
	for _, c := range cases {
		if got := DefaultSweepInterval(c.ttl); got != c.want {
			t.Errorf("DefaultSweepInterval(%v) = %v, want %v", c.ttl, got, c.want)
		}
	}
}
