package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/core"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// pollDone polls the status endpoint until the job leaves the
// queued/running states.
func pollDone(t *testing.T, base, id string) JobStatusJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeJSON[JobStatusJSON](t, resp)
		if st.State == string(JobDone) || st.State == string(JobFailed) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func bankToJSON(b *bank.Bank) []SequenceJSON {
	out := make([]SequenceJSON, b.Len())
	for i := range out {
		out[i] = SequenceJSON{ID: b.ID(i), Seq: alphabet.DecodeProtein(b.Seq(i))}
	}
	return out
}

// The acceptance path: submit a bank-vs-bank job over HTTP, poll its
// status, fetch the alignments, and check them against a direct
// core.Compare run with the same options.
func TestHTTPSubmitPollFetch(t *testing.T) {
	b0, b1 := testWorkload(t, 10, 23)
	opt := testOptions()
	opt.Workers = 0 // the HTTP layer builds options itself; match its default
	want, err := core.Compare(b0, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Alignments) == 0 {
		t.Fatal("reference run found no alignments")
	}

	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	ev := 10.0
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequestJSON{
		Query:   bankToJSON(b0),
		Subject: bankToJSON(b1),
		Options: OptionsJSON{MaxEValue: &ev},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	sub := decodeJSON[map[string]string](t, resp)
	id := sub["id"]
	if id == "" {
		t.Fatal("submit response missing job id")
	}

	st := pollDone(t, ts.URL, id)
	if st.State != string(JobDone) {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Mode != "bank" || st.Alignments == nil || *st.Alignments != len(want.Alignments) {
		t.Fatalf("status summary wrong: %+v", st)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + id + "/alignments")
	if err != nil {
		t.Fatal(err)
	}
	got := decodeJSON[[]AlignmentJSON](t, resp)
	if len(got) != len(want.Alignments) {
		t.Fatalf("fetched %d alignments, want %d", len(got), len(want.Alignments))
	}
	for i, a := range want.Alignments {
		g := got[i]
		if g.Query != b0.ID(a.Seq0) || g.Subject != b1.ID(a.Seq1) ||
			g.Score != a.Score || g.EValue != a.EValue ||
			g.QStart != a.Q.Start || g.QEnd != a.Q.End ||
			g.SStart != a.S.Start || g.SEnd != a.S.End {
			t.Fatalf("alignment %d over HTTP differs:\nwant %+v\n got %+v", i, a, g)
		}
	}

	// Unknown job: 404. Alignments of an unknown job: 404.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/alignments"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHTTPGenomeJob(t *testing.T) {
	proteins := bank.GenerateProteins(bank.ProteinConfig{N: 6, MeanLen: 100, LenJitter: 15, Seed: 31})
	genome, _, err := bank.GenerateGenome(bank.GenomeConfig{
		Length: 30_000, Source: proteins, PlantCount: 3, PlantSubRate: 0.1, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Gapped.MaxEValue = 10
	want, err := core.CompareGenome(proteins, genome, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) == 0 {
		t.Fatal("reference genome run found no matches")
	}

	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	ev := 10.0
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequestJSON{
		Query:   bankToJSON(proteins),
		Genome:  alphabet.DecodeDNA(genome),
		Options: OptionsJSON{MaxEValue: &ev},
	})
	sub := decodeJSON[map[string]string](t, resp)
	st := pollDone(t, ts.URL, sub["id"])
	if st.State != string(JobDone) {
		t.Fatalf("genome job failed: %s", st.Error)
	}
	if st.Mode != "genome" {
		t.Errorf("mode = %s, want genome", st.Mode)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub["id"] + "/alignments")
	if err != nil {
		t.Fatal(err)
	}
	got := decodeJSON[[]AlignmentJSON](t, resp)
	if len(got) != len(want.Matches) {
		t.Fatalf("fetched %d matches, want %d", len(got), len(want.Matches))
	}
	for i, m := range want.Matches {
		g := got[i]
		if g.Frame != m.Frame.String() || g.NucStart == nil || *g.NucStart != m.NucStart ||
			g.NucEnd == nil || *g.NucEnd != m.NucEnd || g.Query != proteins.ID(m.Protein) {
			t.Fatalf("genome match %d over HTTP differs:\nwant %+v\n got %+v", i, m, g)
		}
	}
}

func TestHTTPValidationAndMetrics(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	for name, body := range map[string]JobRequestJSON{
		"no query":           {Subject: []SequenceJSON{{ID: "s", Seq: "MKV"}}},
		"subject and genome": {Query: []SequenceJSON{{ID: "q", Seq: "MKV"}}, Subject: []SequenceJSON{{ID: "s", Seq: "MKV"}}, Genome: "ACGT"},
		"neither":            {Query: []SequenceJSON{{ID: "q", Seq: "MKV"}}},
		"bad residue":        {Query: []SequenceJSON{{ID: "q", Seq: "M1V"}}, Subject: []SequenceJSON{{ID: "s", Seq: "MKV"}}},
		"bad engine":         {Query: []SequenceJSON{{ID: "q", Seq: "MKV"}}, Subject: []SequenceJSON{{ID: "s", Seq: "MKV"}}, Options: OptionsJSON{Engine: "gpu"}},
		"bad kernel":         {Query: []SequenceJSON{{ID: "q", Seq: "MKV"}}, Subject: []SequenceJSON{{ID: "s", Seq: "MKV"}}, Options: OptionsJSON{Kernel: "simd"}},
		"bad nucleotide":     {Query: []SequenceJSON{{ID: "q", Seq: "MKV"}}, Genome: "ACGZ"},
		"negative search space": {Query: []SequenceJSON{{ID: "q", Seq: "MKV"}}, Subject: []SequenceJSON{{ID: "s", Seq: "MKV"}},
			Options: OptionsJSON{SearchSpace: &SearchSpaceJSON{DBLen: -5}}},
		"empty search space": {Query: []SequenceJSON{{ID: "q", Seq: "MKV"}}, Subject: []SequenceJSON{{ID: "s", Seq: "MKV"}},
			Options: OptionsJSON{SearchSpace: &SearchSpaceJSON{}}},
	} {
		resp := postJSON(t, ts.URL+"/v1/jobs", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}

	// A healthy round trip, then the metrics reflect it.
	b0, b1 := testWorkload(t, 6, 51)
	if _, err := svc.Compare(context.Background(), b0, b1, testOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Compare(context.Background(), b0, b1, testOptions()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"seedservd_requests_completed_total 2",
		"seedservd_index_cache_hits_total 1",
		"seedservd_index_cache_misses_total 1",
		"seedservd_index_cache_hit_rate 0.5",
		`seedservd_stage_busy_seconds_total{stage="step2"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}
