package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
)

// testGenomeString generates a genome with planted copies of the
// bank's proteins, as the wire's nucleotide string.
func testGenomeString(t *testing.T, src *bank.Bank) string {
	t.Helper()
	genome, _, err := bank.GenerateGenome(bank.GenomeConfig{
		Length: 30_000, Source: src, PlantCount: 3, PlantSubRate: 0.1, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	return alphabet.DecodeDNA(genome)
}

// submitAndFinish runs one job through a test server and returns its
// id once done.
func submitAndFinish(t *testing.T, ts *httptest.Server, req JobRequestJSON) string {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]
	st := pollDone(t, ts.URL, id)
	if st.State != string(JobDone) {
		t.Fatalf("job failed: %s", st.Error)
	}
	return id
}

// TestStreamAlignmentsMatchesArrayFetch pins the streaming fetch path:
// the NDJSON stream must carry exactly the records the array fetch
// does, in the same order, for both bank and genome jobs.
func TestStreamAlignmentsMatchesArrayFetch(t *testing.T) {
	b0, b1 := testWorkload(t, 10, 23)
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	cl := NewClient(ts.URL, ClientConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ev := 10.0
	jobs := []JobRequestJSON{
		{Query: bankToJSON(b0), Subject: bankToJSON(b1), Options: OptionsJSON{MaxEValue: &ev}},
		{Query: bankToJSON(b0), Genome: testGenomeString(t, b0), Options: OptionsJSON{MaxEValue: &ev}},
	}
	for _, req := range jobs {
		id := submitAndFinish(t, ts, req)

		want, err := cl.Alignments(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatal("degenerate job: no alignments to stream")
		}

		// The raw response must actually be NDJSON, not a JSON array.
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/alignments?stream=1")
		if err != nil {
			t.Fatal(err)
		}
		ct := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if !strings.Contains(ct, "ndjson") {
			t.Fatalf("stream content type %q, want NDJSON", ct)
		}

		var got []AlignmentJSON
		for aj, err := range cl.StreamAlignments(ctx, id) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, aj)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("streamed alignments diverge from array fetch:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestStreamAlignmentsArrayFallback pins the version-skew path: a
// server that ignores ?stream=1 and answers with a JSON array must
// still stream-decode element by element.
func TestStreamAlignmentsArrayFallback(t *testing.T) {
	mux := http.NewServeMux()
	want := []AlignmentJSON{
		{Query: "q0", Subject: "s0", Score: 42, EValue: 1e-5},
		{Query: "q1", Subject: "s1", Score: 7, EValue: 0.5},
	}
	mux.HandleFunc("GET /v1/jobs/{id}/alignments", func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, http.StatusOK, want)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := NewClient(ts.URL, ClientConfig{})
	var got []AlignmentJSON
	for aj, err := range cl.StreamAlignments(context.Background(), "job-1") {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, aj)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("array fallback decoded %+v, want %+v", got, want)
	}
}

// TestStreamAlignmentsErrors pins the failure surface: unknown jobs
// and unfinished jobs are yielded as errors, not silence.
func TestStreamAlignmentsErrors(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	cl := NewClient(ts.URL, ClientConfig{})

	n := 0
	for _, err := range cl.StreamAlignments(context.Background(), "nope") {
		n++
		if err == nil {
			t.Fatal("unknown job streamed data")
		}
	}
	if n != 1 {
		t.Fatalf("unknown job yielded %d elements, want 1 error", n)
	}
}
