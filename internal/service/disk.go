package service

import (
	"errors"
	"fmt"
	"sync"

	"seedblast/internal/index"
)

// diskRegistry maps index-build fingerprints to seeddb files on local
// disk. It is the service's second cache tier: a subject-index cache
// miss whose fingerprint is registered loads the prebuilt index from
// disk (mmap, shared pages, no step-1 pass) instead of rebuilding.
type diskRegistry struct {
	mu   sync.Mutex
	byFP map[string]string // fingerprint → path
}

// register records path under its stamped fingerprint, read from the
// file header without loading the data sections.
func (d *diskRegistry) register(path string) (string, error) {
	info, err := index.Inspect(path)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	if d.byFP == nil {
		d.byFP = make(map[string]string)
	}
	d.byFP[info.Fingerprint] = path
	d.mu.Unlock()
	return info.Fingerprint, nil
}

// lookup returns the registered path for a fingerprint.
func (d *diskRegistry) lookup(fp string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.byFP[fp]
	return p, ok
}

// RegisterDB records a seeddb file so cache misses for its fingerprint
// load it from disk before falling back to a rebuild. The file is
// header-validated now and fully loaded (mmap + fingerprint recompute)
// on first use; it must stay in place for the daemon's lifetime. The
// stamped fingerprint is returned.
func (s *Service) RegisterDB(path string) (string, error) {
	return s.disk.register(path)
}

// PreloadDB registers a seeddb file and loads it into the subject-index
// cache immediately — the daemon-start warm path behind seedservd -db.
// The first request against the stored subject is a cache hit; should
// the entry later be evicted, the registration still serves misses from
// disk.
func (s *Service) PreloadDB(path string) (string, error) {
	fp, err := s.disk.register(path)
	if err != nil {
		return "", err
	}
	ix, err := index.Open(path)
	if err != nil {
		return "", err
	}
	if got := ix.Fingerprint(); got != fp {
		err := fmt.Errorf("service: %s: loaded fingerprint %.24s… does not match header stamp %.24s…", path, got, fp)
		if cerr := ix.Close(); cerr != nil {
			// A failed munmap leaks address space; join it so the
			// caller sees both failures.
			err = errors.Join(err, cerr)
		}
		return "", err
	}
	s.cache.put(fp, ix)
	return fp, nil
}

// loadFromDisk serves a cache miss from the registry when the
// fingerprint has a seeddb behind it. The bool reports whether the
// load was attempted; a failed load falls back to build (a stale or
// corrupt file must not take the subject down — the rebuild path is
// always correct).
func (s *Service) loadFromDisk(fingerprint string) (*index.Index, bool) {
	path, ok := s.disk.lookup(fingerprint)
	if !ok {
		return nil, false
	}
	ix, err := index.Open(path)
	if err != nil {
		return nil, false
	}
	if ix.Fingerprint() != fingerprint {
		// The file changed since registration; its stamp no longer
		// matches the requested key. Rebuild rather than serve another
		// bank's index — but a failed munmap of the stale mapping
		// must not stay invisible: it leaks address space on every
		// churned load.
		if cerr := ix.Close(); cerr != nil {
			s.log().Warn("closing stale seeddb", "path", path, "err", cerr)
		}
		return nil, false
	}
	s.cache.diskLoad()
	return ix, true
}
