package service

import (
	"container/list"
	"context"
	"sync"

	"seedblast/internal/index"
)

// CacheStats reports the subject-index cache's behaviour. A Hit is any
// request that found an entry — including requests that joined an
// in-flight build (singleflight). A Miss is a request that had to
// start a build (or a disk load, see DiskLoads).
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// DiskLoads counts misses satisfied by loading a registered seeddb
	// file instead of rebuilding the index (see Service.RegisterDB).
	DiskLoads int64
	Entries   int // entries currently resident (including in-flight builds)
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheEntry is one cached (possibly still building) subject index.
// ready is closed when the build finishes; ix/err are immutable after
// that.
type cacheEntry struct {
	key   string
	ready chan struct{}
	ix    *index.Index
	err   error
}

// indexCache is an LRU cache of prebuilt subject indexes keyed by
// build fingerprint, with singleflight semantics: concurrent requests
// for the same key share one build, so a burst of queries against a
// cold subject bank pays for exactly one step-1 pass.
type indexCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // value type *cacheEntry
	order   *list.List               // front = most recently used
	stats   CacheStats
}

func newIndexCache(capacity int) *indexCache {
	return &indexCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the index for key, running build on a miss. The first
// caller for a key builds; concurrent callers block on that build and
// share its result. Failed builds are evicted immediately so the next
// request retries instead of caching the error. ctx only bounds the
// wait — a build in progress is never abandoned, since other waiters
// may want it.
func (c *indexCache) get(ctx context.Context, key string, build func() (*index.Index, error)) (*index.Index, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.stats.Hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.ix, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.order.PushFront(e)
	c.entries[key] = el
	c.stats.Misses++
	c.evictLocked()
	c.mu.Unlock()

	e.ix, e.err = build()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == el {
			c.order.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.ix, nil
}

// evictLocked trims the cache to capacity from the LRU end, skipping
// entries whose build is still in flight: evicting one would silently
// discard the finished index (its builder closes ready and its current
// waiters get the result, but the cache forgets it), so the very next
// request for that key would rebuild — under sustained capacity
// pressure, every time. Ready entries are evicted oldest-first; if
// every resident entry is in flight the cache temporarily exceeds
// capacity rather than throw away running work.
func (c *indexCache) evictLocked() {
	over := c.order.Len() - c.cap
	for el := c.order.Back(); el != nil && over > 0; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.stats.Evictions++
			over--
		default: // build in flight: keep
		}
		el = prev
	}
}

// put installs an already-built index under key (the disk pre-warm
// path). An existing entry — ready or in flight — wins: put never
// clobbers state other requests may be waiting on.
func (c *indexCache) put(key string, ix *index.Index) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &cacheEntry{key: key, ready: make(chan struct{}), ix: ix}
	close(e.ready)
	c.entries[key] = c.order.PushFront(e)
	c.evictLocked()
}

// diskLoad records a miss that was satisfied from a seeddb file.
func (c *indexCache) diskLoad() {
	c.mu.Lock()
	c.stats.DiskLoads++
	c.mu.Unlock()
}

// snapshot returns the current statistics.
func (c *indexCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.order.Len()
	return st
}
