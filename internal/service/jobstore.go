package service

import (
	"sync"
	"time"
)

// JobStoreEntry is the minimal view a JobStore needs of a job: a
// channel closed at completion, and the completion time — which must
// be set before the channel closes, so it is stable once Done is
// closed.
type JobStoreEntry interface {
	Done() <-chan struct{}
	FinishedAt() time.Time
}

// JobStore is the bounded, submission-ordered job index shared by the
// worker daemon and the cluster coordinator daemon (one eviction
// policy, one implementation). Finished entries are evicted beyond a
// count cap (oldest first) and past a TTL. The policy runs on every
// access, and — because an idle daemon gets no accesses, which would
// otherwise pin dead jobs and their alignment payloads indefinitely —
// on a background sweep (StartSweeper). Queued and running entries are
// never evicted. Safe for concurrent use.
type JobStore[J JobStoreEntry] struct {
	mu    sync.Mutex
	max   int
	ttl   time.Duration
	jobs  map[string]J
	order []string

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewJobStore returns a store evicting finished jobs beyond maxJobs
// and older than ttl. ttl <= 0 disables age eviction — the daemons'
// Config types resolve their "zero means default" semantics before
// calling this.
func NewJobStore[J JobStoreEntry](maxJobs int, ttl time.Duration) *JobStore[J] {
	return &JobStore[J]{max: maxJobs, ttl: ttl, jobs: make(map[string]J)}
}

// Add inserts a job under id and prunes.
func (s *JobStore[J]) Add(id string, j J) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
}

// Get returns the job with the given id. A finished job past its TTL
// is gone: expiry is enforced on every lookup.
func (s *JobStore[J]) Get(id string) (J, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	j, ok := s.jobs[id]
	return j, ok
}

// All returns the retained jobs in submission order.
func (s *JobStore[J]) All() []J {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	out := make([]J, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Prune applies the eviction policy now (the daemons call it when a
// job finishes, so completed results age out even without lookups
// arriving first).
func (s *JobStore[J]) Prune() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
}

// StartSweeper runs the eviction policy every interval until
// StopSweeper is called, so an idle daemon sheds expired jobs (and
// their retained alignments) without waiting for the next request to
// happen by. interval <= 0 or an already-running sweeper is a no-op.
func (s *JobStore[J]) StartSweeper(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.mu.Lock()
	if s.sweepStop != nil {
		s.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	s.sweepStop, s.sweepDone = stop, done
	s.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Prune()
			case <-stop:
				return
			}
		}
	}()
}

// StopSweeper stops the background sweep and waits for it to exit. It
// is safe to call with no sweeper running, and more than once.
func (s *JobStore[J]) StopSweeper() {
	s.mu.Lock()
	stop, done := s.sweepStop, s.sweepDone
	s.sweepStop, s.sweepDone = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// len reports the retained job count without pruning — the observer
// the sweeper tests watch to see eviction happen with no access
// traffic.
func (s *JobStore[J]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// pruneLocked drops finished jobs beyond the count cap (oldest first)
// and finished jobs older than the TTL. Caller holds s.mu.
func (s *JobStore[J]) pruneLocked() {
	excess := len(s.order) - s.max
	if excess <= 0 && s.ttl <= 0 {
		return
	}
	now := time.Now()
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		finished := false
		select {
		case <-j.Done():
			finished = true
		default:
		}
		if finished {
			if excess > 0 || (s.ttl > 0 && now.Sub(j.FinishedAt()) > s.ttl) {
				delete(s.jobs, id)
				if excess > 0 {
					excess--
				}
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}
