package service

import (
	"sync"
	"time"
)

// JobStoreEntry is the minimal view a JobStore needs of a job: a
// channel closed at completion, and the completion time — which must
// be set before the channel closes, so it is stable once Done is
// closed.
type JobStoreEntry interface {
	Done() <-chan struct{}
	FinishedAt() time.Time
}

// JobStore is the bounded, submission-ordered job index shared by the
// worker daemon and the cluster coordinator daemon (one eviction
// policy, one implementation). Finished entries are evicted beyond a
// count cap (oldest first) and past a TTL, checked on every access,
// so a long-lived daemon's store stays bounded without a background
// sweeper. Queued and running entries are never evicted. Safe for
// concurrent use.
type JobStore[J JobStoreEntry] struct {
	mu    sync.Mutex
	max   int
	ttl   time.Duration
	jobs  map[string]J
	order []string
}

// NewJobStore returns a store evicting finished jobs beyond maxJobs
// and older than ttl. ttl <= 0 disables age eviction — the daemons'
// Config types resolve their "zero means default" semantics before
// calling this.
func NewJobStore[J JobStoreEntry](maxJobs int, ttl time.Duration) *JobStore[J] {
	return &JobStore[J]{max: maxJobs, ttl: ttl, jobs: make(map[string]J)}
}

// Add inserts a job under id and prunes.
func (s *JobStore[J]) Add(id string, j J) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
}

// Get returns the job with the given id. A finished job past its TTL
// is gone: expiry is enforced on every lookup.
func (s *JobStore[J]) Get(id string) (J, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	j, ok := s.jobs[id]
	return j, ok
}

// All returns the retained jobs in submission order.
func (s *JobStore[J]) All() []J {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	out := make([]J, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Prune applies the eviction policy now (the daemons call it when a
// job finishes, so completed results age out even without lookups
// arriving first).
func (s *JobStore[J]) Prune() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
}

// pruneLocked drops finished jobs beyond the count cap (oldest first)
// and finished jobs older than the TTL. Caller holds s.mu.
func (s *JobStore[J]) pruneLocked() {
	excess := len(s.order) - s.max
	if excess <= 0 && s.ttl <= 0 {
		return
	}
	now := time.Now()
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		finished := false
		select {
		case <-j.Done():
			finished = true
		default:
		}
		if finished {
			if excess > 0 || (s.ttl > 0 && now.Sub(j.FinishedAt()) > s.ttl) {
				delete(s.jobs, id)
				if excess > 0 {
					excess--
				}
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}
