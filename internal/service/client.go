package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a typed HTTP client for the service's job API
// (submit/poll/fetch/cancel as served by NewHandler). It is the one
// place the wire protocol is spoken from the client side: the cluster
// coordinator scatters volumes through it and the end-to-end smoke
// tests drive daemons with it, so a protocol change breaks loudly in
// both. The zero value is not usable; construct with NewClient. A
// Client is safe for concurrent use.
//
// Idempotent calls (status, alignments, cancel, health) retry
// transient transport errors and 5xx responses with exponential
// backoff. Submit is deliberately not retried: it is not idempotent —
// a lost response would leave an orphan job running on the worker —
// and callers with retry semantics (the coordinator) reissue it at
// their own level where they can also pick a different worker.
type Client struct {
	base     string
	httpc    *http.Client
	attempts int
	backoff  time.Duration
}

// ClientConfig tunes a Client. The zero value gets defaults.
type ClientConfig struct {
	// HTTPClient overrides the transport; nil means a client with a
	// 60 s per-request timeout.
	HTTPClient *http.Client
	// Attempts caps tries for idempotent calls. Zero or negative means 3.
	Attempts int
	// Backoff is the initial retry delay, doubling per attempt. Zero or
	// negative means 50 ms.
	Backoff time.Duration
}

// NewClient returns a client for the service at baseURL
// (e.g. "http://127.0.0.1:8844").
func NewClient(baseURL string, cfg ClientConfig) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	return &Client{
		base:     strings.TrimRight(baseURL, "/"),
		httpc:    cfg.HTTPClient,
		attempts: cfg.Attempts,
		backoff:  cfg.Backoff,
	}
}

// BaseURL returns the service root this client talks to.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response from the service, with the decoded
// {"error": ...} message when the body carried one.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: http %d: %s", e.StatusCode, e.Message)
}

// Submit posts a job and returns its id. Not retried (see Client).
func (c *Client) Submit(ctx context.Context, req *JobRequestJSON) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out, false); err != nil {
		return "", err
	}
	if out.ID == "" {
		return "", fmt.Errorf("service: submit returned no job id")
	}
	return out.ID, nil
}

// Status polls one job.
func (c *Client) Status(ctx context.Context, id string) (*JobStatusJSON, error) {
	var st JobStatusJSON
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls the job every interval until it reaches a terminal state
// (done or failed — inspect the returned status) or ctx is cancelled.
// Interval <= 0 means 25 ms.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*JobStatusJSON, error) {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == string(JobDone) || st.State == string(JobFailed) {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Alignments fetches a finished job's alignments.
func (c *Client) Alignments(ctx context.Context, id string) ([]AlignmentJSON, error) {
	var out []AlignmentJSON
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/alignments", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel stops a job. Cancelling an already-finished job is a no-op
// on the server and returns nil here.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, true)
}

// Healthy probes /healthz once.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, false)
}

// WaitHealthy polls /healthz until the service answers or ctx is
// cancelled — the "daemon just forked, wait for it to come up" helper.
func (c *Client) WaitHealthy(ctx context.Context) error {
	for {
		if err := c.Healthy(ctx); err == nil {
			return nil
		}
		select {
		case <-time.After(25 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("service at %s not healthy: %w", c.base, ctx.Err())
		}
	}
}

// do issues one API call: marshal in (when non-nil), decode the JSON
// response into out (when non-nil). retry enables the backoff loop for
// idempotent calls; 4xx responses never retry (the request itself is
// wrong), 5xx and transport errors do.
func (c *Client) do(ctx context.Context, method, path string, in, out any, retry bool) error {
	attempts := 1
	if retry {
		attempts = c.attempts
	}
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("service: encoding request: %w", err)
		}
	}
	backoff := c.backoff
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			backoff *= 2
		}
		var rd io.Reader
		if in != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		if resp.StatusCode >= 300 {
			apiErr := &APIError{StatusCode: resp.StatusCode, Message: readError(resp.Body)}
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				lastErr = apiErr
				continue
			}
			return apiErr
		}
		if out == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("service: decoding response: %w", err)
			continue // a truncated body is transient; retry when allowed
		}
		return nil
	}
	return lastErr
}

// readError extracts the handler's {"error": ...} message, falling
// back to the raw body.
func readError(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}
