package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"math/rand/v2"
	"net/http"
	"strings"
	"time"

	"seedblast/internal/telemetry"
)

// Client is a typed HTTP client for the service's job API
// (submit/poll/fetch/cancel as served by NewHandler). It is the one
// place the wire protocol is spoken from the client side: the cluster
// coordinator scatters volumes through it and the end-to-end smoke
// tests drive daemons with it, so a protocol change breaks loudly in
// both. The zero value is not usable; construct with NewClient. A
// Client is safe for concurrent use.
//
// Idempotent calls (status, alignments, cancel, health) retry
// transient transport errors and 5xx responses with exponential
// backoff. Submit is deliberately not retried: it is not idempotent —
// a lost response would leave an orphan job running on the worker —
// and callers with retry semantics (the coordinator) reissue it at
// their own level where they can also pick a different worker.
type Client struct {
	base     string
	httpc    *http.Client
	streamc  *http.Client // httpc without the overall response timeout (streams are bounded by ctx)
	attempts int
	backoff  time.Duration
}

// ClientConfig tunes a Client. The zero value gets defaults.
type ClientConfig struct {
	// HTTPClient overrides the transport; nil means a client with a
	// 60 s per-request timeout.
	HTTPClient *http.Client
	// Attempts caps tries for idempotent calls. Zero or negative means 3.
	Attempts int
	// Backoff is the initial retry delay, doubling per attempt. Zero or
	// negative means 50 ms.
	Backoff time.Duration
}

// NewClient returns a client for the service at baseURL
// (e.g. "http://127.0.0.1:8844").
func NewClient(baseURL string, cfg ClientConfig) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	// Streaming fetches share the transport but drop the client-wide
	// Timeout: http.Client.Timeout spans the whole body, which would
	// kill a long NDJSON stream mid-read. Stream lifetimes are bounded
	// by the caller's context instead.
	streamc := *cfg.HTTPClient
	streamc.Timeout = 0
	return &Client{
		base:     strings.TrimRight(baseURL, "/"),
		httpc:    cfg.HTTPClient,
		streamc:  &streamc,
		attempts: cfg.Attempts,
		backoff:  cfg.Backoff,
	}
}

// BaseURL returns the service root this client talks to.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response from the service, with the decoded
// {"error": ...} message when the body carried one.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: http %d: %s", e.StatusCode, e.Message)
}

// Submit posts a job and returns its id. Not retried (see Client).
func (c *Client) Submit(ctx context.Context, req *JobRequestJSON) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out, false); err != nil {
		return "", err
	}
	if out.ID == "" {
		return "", fmt.Errorf("service: submit returned no job id")
	}
	return out.ID, nil
}

// Status polls one job.
func (c *Client) Status(ctx context.Context, id string) (*JobStatusJSON, error) {
	var st JobStatusJSON
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// waitBackoffCap bounds how far Wait's poll interval grows: 16× the
// base interval, but never beyond 5 s, so a long job is still noticed
// within seconds of finishing.
const (
	waitBackoffFactor = 16
	waitBackoffMax    = 5 * time.Second
)

// Wait polls the job until it reaches a terminal state (done or failed
// — inspect the returned status) or ctx is cancelled. interval <= 0
// means 25 ms.
//
// interval is the base poll cadence, not a fixed one: successive polls
// back off exponentially from interval up to min(16×interval, 5s), and
// every delay is jittered ±25%. A fixed cadence synchronizes thousands
// of concurrent pollers against one daemon — every client that
// submitted in the same burst polls in the same instant, forever; the
// jittered backoff spreads them out while keeping the first polls (the
// ones that catch short jobs) fast.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*JobStatusJSON, error) {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	maxDelay := min(waitBackoffFactor*interval, waitBackoffMax)
	if maxDelay < interval {
		maxDelay = interval
	}
	delay := interval
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == string(JobDone) || st.State == string(JobFailed) {
			return st, nil
		}
		// ±25% jitter, then grow toward the cap.
		jittered := delay/2 + time.Duration(rand.Int64N(int64(delay)))/2 + delay/4
		select {
		case <-time.After(jittered):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		delay = min(2*delay, maxDelay)
	}
}

// Alignments fetches a finished job's alignments as one decoded slice.
func (c *Client) Alignments(ctx context.Context, id string) ([]AlignmentJSON, error) {
	var out []AlignmentJSON
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/alignments", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// StreamAlignments fetches a finished job's alignments as a stream:
// records are yielded as they are decoded off the wire (the server's
// ?stream=1 chunked NDJSON fetch path), so the full result is never
// resident on the client. A failure is yielded as the final element's
// non-nil error. Opening the stream retries transient errors like any
// idempotent call; a mid-stream failure is terminal (callers needing
// at-most-once semantics can reopen — the fetch is idempotent). A
// server that answers with a plain JSON array (no streaming support)
// is decoded incrementally all the same.
func (c *Client) StreamAlignments(ctx context.Context, id string) iter.Seq2[AlignmentJSON, error] {
	return func(yield func(AlignmentJSON, error) bool) {
		resp, err := c.get(ctx, "/v1/jobs/"+id+"/alignments?stream=1")
		if err != nil {
			yield(AlignmentJSON{}, err)
			return
		}
		defer drainClose(resp.Body) // drained even when the consumer stops early, so the stream connection is reused
		dec := json.NewDecoder(resp.Body)
		array := strings.Contains(resp.Header.Get("Content-Type"), "application/json")
		if array {
			// Array fallback: consume the opening bracket, then decode
			// elements one by one — still incremental.
			if _, err := dec.Token(); err != nil {
				yield(AlignmentJSON{}, fmt.Errorf("service: decoding alignments: %w", err))
				return
			}
		}
		for {
			if array && !dec.More() {
				return
			}
			var aj AlignmentJSON
			if err := dec.Decode(&aj); err != nil {
				if !array && err == io.EOF {
					return
				}
				if ctx.Err() != nil {
					err = ctx.Err()
				}
				yield(AlignmentJSON{}, fmt.Errorf("service: decoding alignments: %w", err))
				return
			}
			if !yield(aj, nil) {
				return
			}
		}
	}
}

// get issues one idempotent GET with the client's retry policy and
// returns the raw 2xx response for streaming consumption (no
// body-spanning timeout); failures classify exactly as in do.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	backoff := c.backoff
	var lastErr error
	for a := 0; a < c.attempts; a++ {
		if a > 0 {
			if err := sleepBackoff(ctx, &backoff); err != nil {
				return nil, err
			}
		}
		resp, retryable, err := c.attempt(ctx, http.MethodGet, path, nil, true)
		if err != nil {
			if !retryable {
				return nil, err
			}
			lastErr = err
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// Trace fetches a job's span trace (the GET /v1/jobs/{id}/trace
// endpoint). Live while the job runs; the coordinator calls it at
// gather time to graft worker spans into its own trace.
func (c *Client) Trace(ctx context.Context, id string) (*telemetry.TraceJSON, error) {
	var tj telemetry.TraceJSON
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &tj, true); err != nil {
		return nil, err
	}
	return &tj, nil
}

// Cancel stops a job. Cancelling an already-finished job is a no-op
// on the server and returns nil here.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, true)
}

// Healthy probes /healthz once.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, false)
}

// WaitHealthy polls /healthz until the service answers or ctx is
// cancelled — the "daemon just forked, wait for it to come up" helper.
func (c *Client) WaitHealthy(ctx context.Context) error {
	for {
		if err := c.Healthy(ctx); err == nil {
			return nil
		}
		select {
		case <-time.After(25 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("service at %s not healthy: %w", c.base, ctx.Err())
		}
	}
}

// attempt issues one request and classifies its failure: transport
// errors and 5xx responses are retryable, context expiry and other
// non-2xx responses (APIError) are not. stream selects the client
// without the body-spanning timeout. The caller owns the returned
// response body.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, stream bool) (resp *http.Response, retryable bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// A trace in the caller's context propagates over the wire: the
	// server runs the submitted job under the same trace ID, so the
	// coordinator's gather can stitch worker spans into its own trace.
	if tr := telemetry.TraceFromContext(ctx); tr != nil {
		req.Header.Set(telemetry.TraceHeader, tr.ID())
	}
	hc := c.httpc
	if stream {
		hc = c.streamc
	}
	resp, err = hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, true, err
	}
	if resp.StatusCode >= 300 {
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: readError(resp.Body)}
		drainClose(resp.Body)
		return nil, resp.StatusCode >= 500, apiErr
	}
	return resp, false, nil
}

// drainLimit caps how much of an abandoned response body drainClose
// will read through: past this, resetting the connection is cheaper
// than consuming the remainder just to reuse it.
const drainLimit = 256 << 10

// drainClose discards any unread remainder of a response body and
// closes it. Draining matters: the transport only reuses a keep-alive
// connection whose body was read to EOF — closing early tears it down
// and the next request pays a fresh dial. The close error is
// deliberately discarded; after a drain there is nothing left for it
// to say, and every caller is already on an error path or done with
// the response.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, drainLimit))
	_ = body.Close()
}

// sleepBackoff waits out one retry delay, doubling it in place.
func sleepBackoff(ctx context.Context, backoff *time.Duration) error {
	select {
	case <-time.After(*backoff):
		*backoff *= 2
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do issues one API call: marshal in (when non-nil), decode the JSON
// response into out (when non-nil). retry enables the backoff loop for
// idempotent calls; 4xx responses never retry (the request itself is
// wrong), 5xx and transport errors do.
func (c *Client) do(ctx context.Context, method, path string, in, out any, retry bool) error {
	attempts := 1
	if retry {
		attempts = c.attempts
	}
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("service: encoding request: %w", err)
		}
	}
	backoff := c.backoff
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if err := sleepBackoff(ctx, &backoff); err != nil {
				return err
			}
		}
		resp, retryable, err := c.attempt(ctx, method, path, body, false)
		if err != nil {
			if !retryable {
				return err
			}
			lastErr = err
			continue
		}
		if out == nil {
			drainClose(resp.Body)
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		drainClose(resp.Body) // the decoder may leave trailing bytes buffered
		if err != nil {
			lastErr = fmt.Errorf("service: decoding response: %w", err)
			continue // a truncated body is transient; retry when allowed
		}
		return nil
	}
	return lastErr
}

// readError extracts the handler's {"error": ...} message, falling
// back to the raw body.
func readError(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}
