package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"seedblast/internal/core"
	"seedblast/internal/hwsim"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/pipeline"
)

// HostDispatchRow answers the paper's closing question — "when such
// processors [4, 8 or more cores] will be linked to reconfigurable
// resources, the question will be how to dispatch the overall
// computation between cores and FPGA" — for one worker count: the
// multicore host's step-2 time against the simulated accelerator's.
type HostDispatchRow struct {
	Workers   int
	HostSec   float64
	DeviceSec float64
	Ratio     float64 // HostSec / DeviceSec (>1: FPGA wins)
}

// RunHostDispatch measures step 2 on the host at several worker counts
// and compares against the 192-PE device. The host side runs through
// the pipeline engine's CPU backend — the same code path the streaming
// engine dispatches shards to.
func RunHostDispatch(w *Workload, bankIdx int, workerCounts []int) ([]HostDispatchRow, error) {
	if bankIdx < 0 || bankIdx >= len(w.Banks) {
		return nil, fmt.Errorf("experiments: bank index %d out of range", bankIdx)
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	b := w.Banks[bankIdx]
	ixB, err := index.Build(b, w.Scale.SeedModel, w.Scale.N)
	if err != nil {
		return nil, err
	}
	ixG, err := index.Build(w.Frames, w.Scale.SeedModel, w.Scale.N)
	if err != nil {
		return nil, err
	}
	shard := &pipeline.Shard{ID: 0, Start: 0, End: b.Len(), Bank: b, Index: ixB}

	// Device side once: hits are worker-independent.
	psc := hwsim.DefaultPSC(matrix.BLOSUM62, ixB.SubLen(), w.Scale.Threshold)
	dev, err := hwsim.NewDevice(hwsim.DefaultDevice(psc))
	if err != nil {
		return nil, err
	}
	ref, err := (&pipeline.CPUBackend{
		Matrix: matrix.BLOSUM62, Threshold: w.Scale.Threshold, Workers: 1,
	}).Step2(context.Background(), shard, ixG)
	if err != nil {
		return nil, err
	}
	devRep, err := dev.EstimateStep2(ixB, ixG, len(ref.Hits))
	if err != nil {
		return nil, err
	}

	var rows []HostDispatchRow
	for _, workers := range workerCounts {
		cpu := &pipeline.CPUBackend{
			Matrix: matrix.BLOSUM62, Threshold: w.Scale.Threshold, Workers: workers,
		}
		out, err := cpu.Step2(context.Background(), shard, ixG)
		if err != nil {
			return nil, err
		}
		row := HostDispatchRow{
			Workers:   workers,
			HostSec:   out.Elapsed.Seconds(),
			DeviceSec: devRep.Seconds,
		}
		if devRep.Seconds > 0 {
			row.Ratio = row.HostSec / devRep.Seconds
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatHostDispatch renders the host-vs-FPGA dispatch table.
func FormatHostDispatch(rows []HostDispatchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Host dispatch (paper §5): multicore step 2 vs 192-PE accelerator\n")
	fmt.Fprintf(&b, "%8s %12s %12s %10s\n", "workers", "host (s)", "device (s)", "host/dev")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %12.3f %12.3f %10.2f\n",
			r.Workers, r.HostSec, r.DeviceSec, r.Ratio)
	}
	return b.String()
}

// OverlapRow compares the batch pipeline (steps strictly sequential)
// against the streaming shard engine at one shard count: the overlap
// the paper's closing discussion points at, exploited rather than
// merely measured.
type OverlapRow struct {
	Shards    int
	ShardSize int
	BatchSec  float64
	StreamSec float64
	Gain      float64 // BatchSec / StreamSec (>1: overlap wins)
}

// scaleOptions builds single-threaded pipeline options matching the
// workload's scale, so batch and streamed runs move identical work.
func scaleOptions(w *Workload) core.Options {
	opt := core.DefaultOptions()
	opt.Seed = w.Scale.SeedModel
	opt.N = w.Scale.N
	opt.UngappedThreshold = w.Scale.Threshold
	opt.Workers = 1
	return opt
}

// RunOverlap measures the bank-vs-genome comparison batch and then
// streamed at each shard count (one shard in flight per stage, so the
// win is pure stage overlap, not intra-stage parallelism).
func RunOverlap(w *Workload, bankIdx int, shardCounts []int) ([]OverlapRow, error) {
	if bankIdx < 0 || bankIdx >= len(w.Banks) {
		return nil, fmt.Errorf("experiments: bank index %d out of range", bankIdx)
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{2, 4}
	}
	for _, n := range shardCounts {
		if n <= 0 {
			return nil, fmt.Errorf("experiments: non-positive shard count %d", n)
		}
	}
	b := w.Banks[bankIdx]
	opt := scaleOptions(w)

	t0 := time.Now()
	batch, err := core.CompareBatch(b, w.Frames, opt)
	if err != nil {
		return nil, err
	}
	batchSec := time.Since(t0).Seconds()

	var rows []OverlapRow
	for _, n := range shardCounts {
		size := (b.Len() + n - 1) / n
		opt.Pipeline = pipeline.Config{
			ShardSize:    size,
			InFlight:     2,
			Step2Workers: 1,
			Step3Workers: 1,
		}
		t := time.Now()
		res, err := core.Compare(b, w.Frames, opt)
		if err != nil {
			return nil, err
		}
		streamSec := time.Since(t).Seconds()
		if res.Hits != batch.Hits || res.Pairs != batch.Pairs {
			return nil, fmt.Errorf("experiments: streamed run diverged (hits %d/%d, pairs %d/%d)",
				res.Hits, batch.Hits, res.Pairs, batch.Pairs)
		}
		row := OverlapRow{
			Shards:    res.Pipeline.Shards,
			ShardSize: size,
			BatchSec:  batchSec,
			StreamSec: streamSec,
		}
		if streamSec > 0 {
			row.Gain = batchSec / streamSec
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatOverlap renders the batch-vs-streaming table.
func FormatOverlap(rows []OverlapRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Streaming overlap: batch pipeline vs shard engine (1 shard in flight per stage)\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s %8s\n", "shards", "shard size", "batch (s)", "stream (s)", "gain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %12d %12.3f %12.3f %8.2f\n",
			r.Shards, r.ShardSize, r.BatchSec, r.StreamSec, r.Gain)
	}
	return b.String()
}

// MultiDispatchResult reports how the MultiBackend split shards
// between the host CPU and the simulated accelerator — the dispatch
// question answered greedily by whichever resource frees up first.
type MultiDispatchResult struct {
	Shards  int
	WallSec float64
	Split   map[string]int // backend name -> shards processed
}

// RunMultiDispatch streams one bank through the EngineMulti fan-out.
func RunMultiDispatch(w *Workload, bankIdx, shards int) (*MultiDispatchResult, error) {
	if bankIdx < 0 || bankIdx >= len(w.Banks) {
		return nil, fmt.Errorf("experiments: bank index %d out of range", bankIdx)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("experiments: non-positive shard count %d", shards)
	}
	b := w.Banks[bankIdx]
	opt := scaleOptions(w)
	opt.Engine = core.EngineMulti
	opt.Pipeline = pipeline.Config{
		ShardSize:    (b.Len() + shards - 1) / shards,
		InFlight:     2,
		Step2Workers: 2, // one in-flight shard per backend
		Step3Workers: 1,
	}
	res, err := core.Compare(b, w.Frames, opt)
	if err != nil {
		return nil, err
	}
	return &MultiDispatchResult{
		Shards:  res.Pipeline.Shards,
		WallSec: res.Pipeline.Wall.Seconds(),
		Split:   res.Pipeline.ShardsByBackend,
	}, nil
}

// FormatMultiDispatch renders the fan-out split.
func FormatMultiDispatch(r *MultiDispatchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-backend dispatch: %d shards in %.3fs wall\n", r.Shards, r.WallSec)
	names := make([]string, 0, len(r.Split))
	for name := range r.Split {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%10s: %d shards\n", name, r.Split[name])
	}
	return b.String()
}
