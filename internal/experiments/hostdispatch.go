package experiments

import (
	"fmt"
	"strings"
	"time"

	"seedblast/internal/hwsim"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/ungapped"
)

// HostDispatchRow answers the paper's closing question — "when such
// processors [4, 8 or more cores] will be linked to reconfigurable
// resources, the question will be how to dispatch the overall
// computation between cores and FPGA" — for one worker count: the
// multicore host's step-2 time against the simulated accelerator's.
type HostDispatchRow struct {
	Workers   int
	HostSec   float64
	DeviceSec float64
	Ratio     float64 // HostSec / DeviceSec (>1: FPGA wins)
}

// RunHostDispatch measures step 2 on the host at several worker counts
// and compares against the 192-PE device.
func RunHostDispatch(w *Workload, bankIdx int, workerCounts []int) ([]HostDispatchRow, error) {
	if bankIdx < 0 || bankIdx >= len(w.Banks) {
		return nil, fmt.Errorf("experiments: bank index %d out of range", bankIdx)
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	ixB, err := index.Build(w.Banks[bankIdx], w.Scale.SeedModel, w.Scale.N)
	if err != nil {
		return nil, err
	}
	ixG, err := index.Build(w.Frames, w.Scale.SeedModel, w.Scale.N)
	if err != nil {
		return nil, err
	}

	// Device side once: hits are worker-independent.
	psc := hwsim.DefaultPSC(matrix.BLOSUM62, ixB.SubLen(), w.Scale.Threshold)
	dev, err := hwsim.NewDevice(hwsim.DefaultDevice(psc))
	if err != nil {
		return nil, err
	}
	ref, err := ungapped.Run(ixB, ixG, ungapped.Config{
		Matrix: matrix.BLOSUM62, Threshold: w.Scale.Threshold, Workers: 1,
	})
	if err != nil {
		return nil, err
	}
	devRep, err := dev.EstimateStep2(ixB, ixG, len(ref.Hits))
	if err != nil {
		return nil, err
	}

	var rows []HostDispatchRow
	for _, workers := range workerCounts {
		t0 := time.Now()
		if _, err := ungapped.Run(ixB, ixG, ungapped.Config{
			Matrix: matrix.BLOSUM62, Threshold: w.Scale.Threshold, Workers: workers,
		}); err != nil {
			return nil, err
		}
		hostSec := time.Since(t0).Seconds()
		row := HostDispatchRow{
			Workers:   workers,
			HostSec:   hostSec,
			DeviceSec: devRep.Seconds,
		}
		if devRep.Seconds > 0 {
			row.Ratio = hostSec / devRep.Seconds
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatHostDispatch renders the host-vs-FPGA dispatch table.
func FormatHostDispatch(rows []HostDispatchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Host dispatch (paper §5): multicore step 2 vs 192-PE accelerator\n")
	fmt.Fprintf(&b, "%8s %12s %12s %10s\n", "workers", "host (s)", "device (s)", "host/dev")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %12.3f %12.3f %10.2f\n",
			r.Workers, r.HostSec, r.DeviceSec, r.Ratio)
	}
	return b.String()
}
