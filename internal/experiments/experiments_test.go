package experiments

import (
	"strings"
	"testing"
)

// measured caches one Tiny() measurement for all table tests.
var measured *Measurements

func getMeasurements(t *testing.T) *Measurements {
	t.Helper()
	if measured != nil {
		return measured
	}
	w, err := NewWorkload(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Measure(w, MeasureOptions{WithBlast: true})
	if err != nil {
		t.Fatal(err)
	}
	measured = ms
	return ms
}

func TestByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, s.Name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestScalesWellFormed(t *testing.T) {
	for _, s := range []Scale{Tiny(), Small(), Medium(), Paper()} {
		if len(s.BankSizes) < 2 || s.GenomeLen <= 0 || s.SeedModel == nil {
			t.Errorf("scale %s malformed: %+v", s.Name, s)
		}
		for i := 1; i < len(s.BankSizes); i++ {
			if s.BankSizes[i] <= s.BankSizes[i-1] {
				t.Errorf("scale %s: bank sizes not increasing", s.Name)
			}
		}
	}
	// The paper scale must carry the original sizes.
	p := Paper()
	if p.BankSizes[3] != 30000 || p.GenomeLen != 220_000_000 {
		t.Error("paper scale does not match the paper")
	}
}

func TestWorkloadNested(t *testing.T) {
	ms := getMeasurements(t)
	w := ms.Workload
	if len(w.Banks) != len(w.Scale.BankSizes) {
		t.Fatalf("banks = %d", len(w.Banks))
	}
	// Nested: smaller bank is a prefix of the larger.
	small, large := w.Banks[0], w.Banks[1]
	for i := 0; i < small.Len(); i++ {
		if string(small.Seq(i)) != string(large.Seq(i)) {
			t.Fatal("banks are not nested")
		}
	}
	if w.Frames.Len() != 6 {
		t.Errorf("frame bank has %d sequences", w.Frames.Len())
	}
}

func TestMeasureBasicInvariants(t *testing.T) {
	ms := getMeasurements(t)
	if len(ms.Banks) != len(ms.Workload.Banks) {
		t.Fatal("missing bank measurements")
	}
	for i, m := range ms.Banks {
		if m.Step1Sec <= 0 || m.Step2SeqSec <= 0 {
			t.Errorf("bank %d: non-positive step times %+v", i, m)
		}
		if m.Pairs <= 0 {
			t.Errorf("bank %d: no pairs scored", i)
		}
		if m.BlastSec <= 0 {
			t.Errorf("bank %d: baseline not measured", i)
		}
		for pes, dt := range m.Device {
			if dt.Seconds <= 0 {
				t.Errorf("bank %d: device %dPE zero time", i, pes)
			}
		}
		// Larger banks strictly more work.
		if i > 0 && m.Pairs <= ms.Banks[i-1].Pairs {
			t.Errorf("bank %d pairs %d not greater than previous %d",
				i, m.Pairs, ms.Banks[i-1].Pairs)
		}
	}
}

func TestTable1Step2Dominates(t *testing.T) {
	ms := getMeasurements(t)
	t1 := RunTable1(ms)
	if t1.Fractions[1] < 0.5 {
		t.Errorf("step 2 share %.2f; the paper's critical section must dominate", t1.Fractions[1])
	}
	sum := t1.Fractions[0] + t1.Fractions[1] + t1.Fractions[2]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f", sum)
	}
	if !strings.Contains(t1.Format(), "Table 1") {
		t.Error("format missing title")
	}
}

func TestTable2SpeedupGrowsWithPEs(t *testing.T) {
	ms := getMeasurements(t)
	rows := RunTable2(ms)
	if len(rows) != len(ms.Banks) {
		t.Fatal("row count")
	}
	for _, r := range rows {
		// RASC time decreases (weakly) as PEs grow.
		for i := 1; i < len(ms.PECounts); i++ {
			lo, hi := ms.PECounts[i-1], ms.PECounts[i]
			if r.RASC[hi] > r.RASC[lo]*1.001 {
				t.Errorf("%s: RASC %dPE slower than %dPE (%.4f vs %.4f)",
					r.BankName, hi, lo, r.RASC[hi], r.RASC[lo])
			}
		}
	}
	out := FormatTable2(rows, ms.PECounts)
	if !strings.Contains(out, "speedup") {
		t.Error("format missing speedup column")
	}
}

func TestTable3TwoFPGAsBounded(t *testing.T) {
	ms := getMeasurements(t)
	rows := RunTable3(ms)
	for _, r := range rows {
		if r.Speedup <= 0.99 || r.Speedup > 2.01 {
			t.Errorf("%s: 2-FPGA speedup %.2f outside (1,2]", r.BankName, r.Speedup)
		}
	}
	if !strings.Contains(FormatTable3(rows), "2 FPGAs") {
		t.Error("format wrong")
	}
}

func TestTable4SpeedupsPositiveAndOrdered(t *testing.T) {
	ms := getMeasurements(t)
	rows := RunTable4(ms)
	for _, r := range rows {
		prev := 0.0
		for _, pes := range ms.PECounts {
			if r.Speedup[pes] <= 0 {
				t.Errorf("%s: non-positive speedup at %d PE", r.BankName, pes)
			}
			if r.Speedup[pes] < prev*0.999 {
				t.Errorf("%s: speedup fell from %.1f to %.1f with more PEs",
					r.BankName, prev, r.Speedup[pes])
			}
			prev = r.Speedup[pes]
		}
	}
	// The paper's key trend: larger banks use the array better, so the
	// largest bank's 192-PE speedup must exceed the smallest bank's.
	big := rows[len(rows)-1].Speedup[ms.PECounts[len(ms.PECounts)-1]]
	small := rows[0].Speedup[ms.PECounts[len(ms.PECounts)-1]]
	if big <= small {
		t.Errorf("largest bank speedup %.1f not above smallest bank %.1f", big, small)
	}
	if !strings.Contains(FormatTable4(rows, ms.PECounts), "step 2 only") {
		t.Error("format wrong")
	}
}

func TestTable5IncludesPaperRowsAndOurs(t *testing.T) {
	ms := getMeasurements(t)
	rows := RunTable5(ms)
	if len(rows) != 6 {
		t.Fatalf("Table 5 rows = %d, want 5 paper + 1 ours", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Value <= 0 {
		t.Error("our throughput not positive")
	}
	if !strings.Contains(FormatTable5(rows), "RASC-100") {
		t.Error("format wrong")
	}
}

func TestTable7ProfileShiftsToStep3(t *testing.T) {
	ms := getMeasurements(t)
	t1 := RunTable1(ms)
	rows := RunTable7(ms)
	last := rows[len(rows)-1]
	// On the accelerator, step 2's share must collapse relative to the
	// software profile.
	if last.Fractions[1] >= t1.Fractions[1] {
		t.Errorf("step-2 share did not shrink: %.2f vs software %.2f",
			last.Fractions[1], t1.Fractions[1])
	}
	sum := last.Fractions[0] + last.Fractions[1] + last.Fractions[2]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f", sum)
	}
	if !strings.Contains(FormatTable7(rows), "step 3") {
		t.Error("format wrong")
	}
}

func TestTable6QualityClose(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity benchmark in -short mode")
	}
	cfg := DefaultTable6Config()
	cfg.Family.Families = 8
	cfg.Family.DecoyGenes = 40
	res, err := RunTable6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RASCROC50 <= 0 || res.BlastROC50 <= 0 {
		t.Fatalf("degenerate ROC50: %+v", res)
	}
	// The engines must be in the same quality region (paper: 0.468 vs
	// 0.479). Allow a generous band for the synthetic benchmark.
	if diff := res.RASCROC50 - res.BlastROC50; diff > 0.25 || diff < -0.25 {
		t.Errorf("ROC50 diverges: %+v", res)
	}
	if diff := res.RASCAPMean - res.BlastAPMean; diff > 0.25 || diff < -0.25 {
		t.Errorf("AP diverges: %+v", res)
	}
	if !strings.Contains(res.Format(), "ROC50") {
		t.Error("format wrong")
	}
}

func TestFutureWorkProjection(t *testing.T) {
	ms := getMeasurements(t)
	rows, err := RunFutureWork(ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ms.Banks) {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if r.DualSec <= 0 || r.PaperSec <= 0 {
			t.Errorf("%s: non-positive times %+v", r.BankName, r)
		}
		if r.DualSec > r.PaperSec*1.0001 {
			t.Errorf("%s: dual-FPGA config slower than the paper config", r.BankName)
		}
		if r.Projection < 1 {
			t.Errorf("%s: projection %f < 1", r.BankName, r.Projection)
		}
	}
	if !strings.Contains(FormatFutureWork(rows), "gap-extension operator") {
		t.Error("format wrong")
	}
}

func TestHostDispatch(t *testing.T) {
	ms := getMeasurements(t)
	rows, err := RunHostDispatch(ms.Workload, len(ms.Workload.Banks)-1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	for _, r := range rows {
		if r.HostSec <= 0 || r.DeviceSec <= 0 {
			t.Errorf("non-positive times: %+v", r)
		}
	}
	if rows[0].DeviceSec != rows[1].DeviceSec {
		t.Error("device time should not depend on host workers")
	}
	if _, err := RunHostDispatch(ms.Workload, 99, nil); err == nil {
		t.Error("out-of-range bank accepted")
	}
	if !strings.Contains(FormatHostDispatch(rows), "workers") {
		t.Error("format wrong")
	}
}

func TestOverlap(t *testing.T) {
	ms := getMeasurements(t)
	rows, err := RunOverlap(ms.Workload, len(ms.Workload.Banks)-1, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("row count %d", len(rows))
	}
	for _, r := range rows {
		if r.BatchSec <= 0 || r.StreamSec <= 0 || r.Gain <= 0 {
			t.Errorf("non-positive timings: %+v", r)
		}
		if r.Shards < 2 {
			t.Errorf("expected a multi-shard run, got %d shards", r.Shards)
		}
	}
	if _, err := RunOverlap(ms.Workload, 99, nil); err == nil {
		t.Error("out-of-range bank accepted")
	}
	if _, err := RunOverlap(ms.Workload, 0, []int{0}); err == nil {
		t.Error("zero shard count accepted")
	}
	if !strings.Contains(FormatOverlap(rows), "gain") {
		t.Error("format wrong")
	}
}

func TestMultiDispatch(t *testing.T) {
	ms := getMeasurements(t)
	res, err := RunMultiDispatch(ms.Workload, len(ms.Workload.Banks)-1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Fatalf("shards = %d, want 4", res.Shards)
	}
	total := 0
	for _, n := range res.Split {
		total += n
	}
	if total != res.Shards {
		t.Fatalf("split %v covers %d of %d shards", res.Split, total, res.Shards)
	}
	if res.WallSec <= 0 {
		t.Error("wall time not recorded")
	}
	if _, err := RunMultiDispatch(ms.Workload, 0, 0); err == nil {
		t.Error("zero shard count accepted")
	}
	if !strings.Contains(FormatMultiDispatch(res), "shards") {
		t.Error("format wrong")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a, err := NewWorkload(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkload(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Genome) != string(b.Genome) {
		t.Error("same scale produced different genomes")
	}
	for i := range a.Banks {
		if a.Banks[i].TotalResidues() != b.Banks[i].TotalResidues() {
			t.Error("same scale produced different banks")
		}
	}
}

func TestNewWorkloadRejectsEmptyScale(t *testing.T) {
	if _, err := NewWorkload(Scale{}); err == nil {
		t.Error("empty scale accepted")
	}
}
