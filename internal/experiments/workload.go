// Package experiments regenerates every table of the paper's
// evaluation (§4, Tables 1-7) on synthetic workloads at configurable
// scale. Absolute seconds differ from the paper (the accelerator is
// simulated and the data synthetic); the experiments reproduce the
// paper's shapes: step 2 dominating the software profile, speedups
// growing with bank size and PE count, the 2-FPGA gain approaching 2×,
// the profile shifting to step 3 on the accelerator, and
// BLAST-equivalent sensitivity.
package experiments

import (
	"fmt"

	"seedblast/internal/bank"
	"seedblast/internal/seed"
	"seedblast/internal/translate"
)

// Scale describes a workload family: the four protein banks and the
// genome the paper's tables sweep over, at some fraction of the
// paper's size.
type Scale struct {
	Name           string
	BankSizes      []int // proteins per bank (paper: 1000/3000/10000/30000)
	MeanProteinLen int   // paper banks average ≈335 aa
	GenomeLen      int   // nucleotides (paper: 220·10⁶, Human chr 1)
	PlantPerBank   int   // homologous genes planted per bank
	PlantSubRate   float64
	Seed           int64
	// Index parameters. Key space scales with bank size so that the
	// array-fill behaviour (IL0 bucket length vs PE count) matches the
	// paper's regime at reduced scale.
	SeedModel seed.Model
	N         int
	Threshold int
}

// Tiny returns a seconds-scale workload for tests and quick benches.
func Tiny() Scale {
	return Scale{
		Name:           "tiny",
		BankSizes:      []int{10, 30, 100},
		MeanProteinLen: 120,
		GenomeLen:      120_000,
		PlantPerBank:   4,
		PlantSubRate:   0.2,
		Seed:           2009,
		SeedModel:      reducedSeed(),
		N:              14,
		Threshold:      38,
	}
}

// Small returns the default experiment scale: a 1:100 reduction of the
// paper's workload that runs the full table suite in minutes.
func Small() Scale {
	return Scale{
		Name:           "small",
		BankSizes:      []int{10, 30, 100, 300},
		MeanProteinLen: 330,
		GenomeLen:      2_000_000,
		PlantPerBank:   10,
		PlantSubRate:   0.2,
		Seed:           2009,
		SeedModel:      reducedSeed(),
		N:              14,
		Threshold:      38,
	}
}

// Medium returns a 1:10 reduction (minutes to tens of minutes).
func Medium() Scale {
	return Scale{
		Name:           "medium",
		BankSizes:      []int{100, 300, 1000, 3000},
		MeanProteinLen: 330,
		GenomeLen:      22_000_000,
		PlantPerBank:   30,
		PlantSubRate:   0.2,
		Seed:           2009,
		SeedModel:      seed.Default(),
		N:              14,
		Threshold:      38,
	}
}

// Paper returns the paper's full scale. Running it is hours of compute;
// it exists so the harness documents the original parameters.
func Paper() Scale {
	return Scale{
		Name:           "paper",
		BankSizes:      []int{1000, 3000, 10000, 30000},
		MeanProteinLen: 335,
		GenomeLen:      220_000_000,
		PlantPerBank:   100,
		PlantSubRate:   0.2,
		Seed:           2009,
		SeedModel:      seed.Default(),
		N:              14,
		Threshold:      38,
	}
}

// reducedSeed returns a W=4 subset seed over a 10³-key space (Murphy10
// at three positions, one don't-care position): the paper's 40000-key
// index sees IL0 buckets of hundreds of entries at the 30K-protein
// scale, and shrinking the key space by the same factor as the banks
// keeps the buckets-per-PE ratio — and with it the array-fill behaviour
// the tables depend on — in the same regime at 1:100 scale.
func reducedSeed() seed.Model {
	anyAA, err := seed.NewPartition("ARNDCQEGHILKMFPSTWYV")
	if err != nil {
		panic(err)
	}
	anyAA.Label = "any"
	m, err := seed.NewSubset("murphy-reduced-1k",
		seed.Murphy10(), seed.Murphy10(), anyAA, seed.Murphy10())
	if err != nil {
		panic(err)
	}
	return m
}

// ByName resolves a scale by name.
func ByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny(), nil
	case "small":
		return Small(), nil
	case "medium":
		return Medium(), nil
	case "paper":
		return Paper(), nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (tiny, small, medium, paper)", name)
	}
}

// Workload is a generated experiment input: the protein banks, the
// genome, and its six-frame translation bank.
type Workload struct {
	Scale  Scale
	Banks  []*bank.Bank
	Genome []byte
	Frames *bank.Bank
}

// NewWorkload generates the banks and genome for a scale. The genome
// contains planted mutated genes drawn from the largest bank, so every
// bank (a prefix-nested subset would bias; banks are generated
// independently but genes come from the largest) finds true
// similarities proportional to its overlap.
func NewWorkload(s Scale) (*Workload, error) {
	if len(s.BankSizes) == 0 || s.GenomeLen <= 0 {
		return nil, fmt.Errorf("experiments: empty scale")
	}
	w := &Workload{Scale: s}
	// Banks are nested: the larger bank extends the smaller one, as the
	// paper's NR subsets do, so bigger banks strictly add work.
	largest := bank.GenerateProteins(bank.ProteinConfig{
		N:       s.BankSizes[len(s.BankSizes)-1],
		MeanLen: s.MeanProteinLen,
		Seed:    s.Seed,
	})
	for _, size := range s.BankSizes {
		b := bank.New(fmt.Sprintf("%dprot", size))
		for i := 0; i < size; i++ {
			b.Add(largest.ID(i), largest.Seq(i))
		}
		w.Banks = append(w.Banks, b)
	}
	genome, _, err := bank.GenerateGenome(bank.GenomeConfig{
		Length:       s.GenomeLen,
		Source:       w.Banks[0], // plant from the smallest so every bank hits
		PlantCount:   s.PlantPerBank,
		PlantSubRate: s.PlantSubRate,
		Seed:         s.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	w.Genome = genome
	frames := translate.SixFrames(genome)
	fb := bank.New("genome-frames")
	for _, ft := range frames {
		fb.Add(ft.Frame.String(), ft.Protein)
	}
	w.Frames = fb
	return w, nil
}
