package experiments

import (
	"fmt"
	"sort"
	"strings"

	"seedblast/internal/bank"
	"seedblast/internal/blast"
	"seedblast/internal/core"
	"seedblast/internal/metrics"
	"seedblast/internal/perfmodel"
)

// Table1 reproduces Table 1: the percentage of time spent in the three
// steps of the *software* pipeline (the paper reports 0.3/97/2.7 for
// 30K proteins vs Human chr 1). The measurement uses the largest bank.
type Table1 struct {
	BankName  string
	StepSecs  [3]float64
	Fractions [3]float64
}

// RunTable1 extracts the software profile from the measurements.
func RunTable1(ms *Measurements) Table1 {
	m := ms.Banks[len(ms.Banks)-1]
	t := Table1{
		BankName: m.BankName(),
		StepSecs: [3]float64{m.Step1Sec, m.Step2SeqSec, m.Step3Sec},
	}
	tot := m.SoftwareTotalSec()
	if tot > 0 {
		for i, s := range t.StepSecs {
			t.Fractions[i] = s / tot
		}
	}
	return t
}

// Format renders the table.
func (t Table1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: %% of time in the software pipeline steps (%s)\n", t.BankName)
	fmt.Fprintf(&b, "%-8s %-8s %-8s\n", "step 1", "step 2", "step 3")
	fmt.Fprintf(&b, "%-8s %-8s %-8s\n",
		pct(t.Fractions[0]), pct(t.Fractions[1]), pct(t.Fractions[2]))
	fmt.Fprintf(&b, "(paper: 0.3%%   97%%   2.7%%)\n")
	return b.String()
}

// Table2Row is one bank of Table 2: overall times and speedups.
type Table2Row struct {
	BankName string
	BlastSec float64
	RASC     map[int]float64 // PE count → seconds
	Speedup  map[int]float64
}

// RunTable2 reproduces Table 2: NCBI-style baseline vs the RASC
// pipeline at each PE count; speedup = baseline / RASC.
func RunTable2(ms *Measurements) []Table2Row {
	var rows []Table2Row
	for _, m := range ms.Banks {
		row := Table2Row{
			BankName: m.BankName(),
			BlastSec: m.BlastSec,
			RASC:     map[int]float64{},
			Speedup:  map[int]float64{},
		}
		for _, pes := range ms.PECounts {
			total := m.RASCTotalSec(pes)
			row.RASC[pes] = total
			if total > 0 && m.BlastSec > 0 {
				row.Speedup[pes] = m.BlastSec / total
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row, peCounts []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: overall performance, baseline vs RASC pipeline (seconds)\n")
	fmt.Fprintf(&b, "%-10s %12s", "bank", "baseline")
	for _, p := range peCounts {
		fmt.Fprintf(&b, " %10s %8s", fmt.Sprintf("RASC %dPE", p), "speedup")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.2f", r.BankName, r.BlastSec)
		for _, p := range peCounts {
			fmt.Fprintf(&b, " %10.2f %8.2f", r.RASC[p], r.Speedup[p])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(paper, 30K bank: 70891s vs 3667s at 192 PE ⇒ 19.33×)\n")
	return b.String()
}

// Table3Row is one bank of Table 3: 1 vs 2 FPGAs at 192 PE with the
// raised threshold.
type Table3Row struct {
	BankName   string
	OneFPGASec float64
	TwoFPGASec float64
	Speedup    float64
}

// RunTable3 reproduces Table 3.
func RunTable3(ms *Measurements) []Table3Row {
	pes := ms.PECounts[len(ms.PECounts)-1]
	var rows []Table3Row
	for _, m := range ms.Banks {
		one := m.OneFPGARaised[pes].Seconds
		two := m.TwoFPGA[pes].Seconds
		row := Table3Row{
			BankName:   m.BankName(),
			OneFPGASec: one,
			TwoFPGASec: two,
		}
		if two > 0 {
			row.Speedup = one / two
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: 1 FPGA vs 2 FPGAs, 192 PE, raised threshold (step-2 seconds)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %8s\n", "bank", "1 FPGA", "2 FPGAs", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.3f %10.3f %8.2f\n",
			r.BankName, r.OneFPGASec, r.TwoFPGASec, r.Speedup)
	}
	fmt.Fprintf(&b, "(paper, 30K bank: 1373s vs 759s ⇒ 1.80×)\n")
	return b.String()
}

// Table4Row is one bank of Table 4: step 2 only.
type Table4Row struct {
	BankName string
	SeqSec   float64
	Device   map[int]float64
	Speedup  map[int]float64
}

// RunTable4 reproduces Table 4: sequential step-2 time vs the
// accelerator at each PE count.
func RunTable4(ms *Measurements) []Table4Row {
	var rows []Table4Row
	for _, m := range ms.Banks {
		row := Table4Row{
			BankName: m.BankName(),
			SeqSec:   m.Step2SeqSec,
			Device:   map[int]float64{},
			Speedup:  map[int]float64{},
		}
		for _, pes := range ms.PECounts {
			row.Device[pes] = m.Device[pes].Seconds
			if row.Device[pes] > 0 {
				row.Speedup[pes] = m.Step2SeqSec / row.Device[pes]
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row, peCounts []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: step 2 only, sequential vs PE array (seconds)\n")
	fmt.Fprintf(&b, "%-10s %12s", "bank", "sequential")
	for _, p := range peCounts {
		fmt.Fprintf(&b, " %10s %8s", fmt.Sprintf("%d PE", p), "speedup")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.2f", r.BankName, r.SeqSec)
		for _, p := range peCounts {
			fmt.Fprintf(&b, " %10.3f %8.1f", r.Device[p], r.Speedup[p])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(paper, 30K bank: 73492s sequential, 53.5× at 192 PE)\n")
	return b.String()
}

// Table5Row is one implementation's throughput.
type Table5Row = perfmodel.Comparator

// RunTable5 reproduces Table 5: literature constants plus this
// reproduction's measured throughput (largest bank, largest PE count,
// full pipeline time).
func RunTable5(ms *Measurements) []Table5Row {
	rows := append([]Table5Row(nil), perfmodel.PaperComparators...)
	m := ms.Banks[len(ms.Banks)-1]
	pes := ms.PECounts[len(ms.PECounts)-1]
	ours := perfmodel.KaaMntPerSec(m.Residues, ms.Workload.Scale.GenomeLen, m.RASCTotalSec(pes))
	rows = append(rows, Table5Row{
		Name:  "this repro (sim)",
		Value: ours,
		Note: fmt.Sprintf("simulated: %s bank vs %.1f Mnt genome, %d PE",
			m.BankName(), float64(ms.Workload.Scale.GenomeLen)/1e6, pes),
	})
	return rows
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Kaa×Mnt processed per second\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.1f   %s\n", r.Name, r.Value, r.Note)
	}
	return b.String()
}

// Table7Row is one bank of Table 7: the RASC pipeline profile.
type Table7Row struct {
	BankName  string
	Fractions [3]float64
}

// RunTable7 reproduces Table 7: per-step share of the RASC pipeline at
// the largest PE count, per bank.
func RunTable7(ms *Measurements) []Table7Row {
	pes := ms.PECounts[len(ms.PECounts)-1]
	var rows []Table7Row
	for _, m := range ms.Banks {
		steps := [3]float64{m.Step1Sec, m.Device[pes].Seconds, m.Step3Sec}
		tot := steps[0] + steps[1] + steps[2]
		row := Table7Row{BankName: m.BankName()}
		if tot > 0 {
			for i := range steps {
				row.Fractions[i] = steps[i] / tot
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable7 renders Table 7.
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: %% of time in the RASC pipeline steps (192 PE)\n")
	fmt.Fprintf(&b, "%-10s %-8s %-8s %-8s\n", "bank", "step 1", "step 2", "step 3")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8s %-8s %-8s\n", r.BankName,
			pct(r.Fractions[0]), pct(r.Fractions[1]), pct(r.Fractions[2]))
	}
	fmt.Fprintf(&b, "(paper, 30K bank: 6%% / 37%% / 57%% — step 3 dominates)\n")
	return b.String()
}

// Table6 reproduces Table 6: ROC50 and AP-Mean of the seed pipeline
// ("FPGA-RASC") and the BLAST baseline on the family benchmark.
type Table6 struct {
	Queries     int
	RASCROC50   float64
	RASCAPMean  float64
	BlastROC50  float64
	BlastAPMean float64
}

// Table6Config parameterises the sensitivity benchmark.
type Table6Config struct {
	Family    bank.FamilyConfig
	MaxEValue float64 // relaxed so rankings contain false positives
	Threshold int     // ungapped threshold for the seed pipeline
}

// DefaultTable6Config returns the default sensitivity workload: 25
// families at 60% divergence (remote homologies, like the paper's
// yeast benchmark), rankings cut at E ≤ 10 so both engines see genuine
// false positives.
func DefaultTable6Config() Table6Config {
	return Table6Config{
		Family: bank.FamilyConfig{
			Families:         25,
			MembersPerFamily: 4,
			MemberLen:        200,
			Divergence:       0.65,
			DecoyGenes:       120,
			Seed:             606,
		},
		MaxEValue: 10,
		Threshold: 30,
	}
}

// RunTable6 runs both engines over the family benchmark and scores
// their rankings.
func RunTable6(cfg Table6Config) (*Table6, error) {
	fb, err := bank.GenerateFamilyBenchmark(cfg.Family)
	if err != nil {
		return nil, err
	}

	// Seed pipeline (functional results are engine-independent; CPU
	// engine used for speed). Sensitivity runs use the coarse subset
	// seed — the paper's subset-seed design [11] trades key-space size
	// for BLAST-level sensitivity — and a matching lower threshold.
	opt := core.DefaultOptions()
	opt.Seed = reducedSeed()
	if cfg.Threshold > 0 {
		opt.UngappedThreshold = cfg.Threshold
	}
	opt.Gapped.MaxEValue = cfg.MaxEValue
	res, err := core.CompareGenome(fb.Queries, fb.Genome, opt)
	if err != nil {
		return nil, err
	}
	rascHits := make(map[int][]metrics.RankedHit)
	for _, m := range res.Matches {
		fam := fb.QueryFamily[m.Protein]
		rascHits[m.Protein] = append(rascHits[m.Protein], metrics.RankedHit{
			Score: float64(m.Score),
			True:  fb.TrueHit(fam, m.NucStart, m.NucEnd-m.NucStart),
		})
	}

	// Baseline.
	bcfg := blast.DefaultConfig()
	bcfg.MaxEValue = cfg.MaxEValue
	bms, err := blast.SearchGenome(fb.Queries, fb.Genome, bcfg)
	if err != nil {
		return nil, err
	}
	blastHits := make(map[int][]metrics.RankedHit)
	for _, m := range bms {
		fam := fb.QueryFamily[m.Query]
		blastHits[m.Query] = append(blastHits[m.Query], metrics.RankedHit{
			Score: float64(m.Score),
			True:  fb.TrueHit(fam, m.NucStart, m.NucEnd-m.NucStart),
		})
	}

	out := &Table6{Queries: fb.Queries.Len()}
	out.RASCROC50, out.RASCAPMean = scoreRankings(rascHits, fb)
	out.BlastROC50, out.BlastAPMean = scoreRankings(blastHits, fb)
	return out, nil
}

func scoreRankings(perQuery map[int][]metrics.RankedHit, fb *bank.FamilyBenchmark) (roc, ap float64) {
	var rocs, aps []float64
	for q := 0; q < fb.Queries.Len(); q++ {
		hits := perQuery[q]
		metrics.SortByScore(hits)
		fam := fb.QueryFamily[q]
		rocs = append(rocs, metrics.ROC50(hits, fb.FamilySize(fam)))
		aps = append(aps, metrics.AveragePrecision(hits))
	}
	sort.Float64s(rocs) // deterministic summation order
	sort.Float64s(aps)
	return metrics.Mean(rocs), metrics.Mean(aps)
}

// Format renders Table 6.
func (t Table6) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: sensitivity and selectivity (%d queries)\n", t.Queries)
	fmt.Fprintf(&b, "%-12s %10s %10s\n", "", "seed/RASC", "baseline")
	fmt.Fprintf(&b, "%-12s %10.3f %10.3f\n", "ROC50", t.RASCROC50, t.BlastROC50)
	fmt.Fprintf(&b, "%-12s %10.3f %10.3f\n", "AP-Mean", t.RASCAPMean, t.BlastAPMean)
	fmt.Fprintf(&b, "(paper: ROC50 0.468 vs 0.479, AP-Mean 0.447 vs 0.441 — near-equal quality)\n")
	return b.String()
}

func pct(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}
