package experiments

import (
	"fmt"
	"sort"
	"strings"

	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/index"
	"seedblast/internal/metrics"
)

// PrefilterSweepRow is one maxCandidates cell of the sensitivity-vs-
// speed sweep: ranking quality (ROC50 / AP-Mean, same scoring as
// Table 6) against end-to-end wall time with the candidate prefilter
// cut at k (0 = exhaustive).
type PrefilterSweepRow struct {
	MaxCandidates int
	ROC50         float64
	APMean        float64
	Matches       int
	WallMS        float64
	SpeedupVsOff  float64
}

// PrefilterSweep is the table the sweep produces.
type PrefilterSweep struct {
	Queries  int
	Subjects int
	Rows     []PrefilterSweepRow
}

// RunPrefilterSweep measures the prefilter's speed/sensitivity trade
// on a blastp-style family benchmark: one query per family against a
// protein bank of planted family members plus unrelated decoys (the
// genome harness of Table 6 has only six frame-subjects, too few for
// a per-subject top-K cut to mean anything). Truth is family
// membership; rankings are scored exactly as Table 6 scores them.
// The subject index is built once and shared, so rows measure the
// per-request stages the cut shrinks.
func RunPrefilterSweep(cfg Table6Config, ks []int) (*PrefilterSweep, error) {
	fc := cfg.Family
	rng := bank.NewRNG(fc.Seed)
	queries := bank.New("queries")
	subjects := bank.New("subjects")
	var subjFamily []int
	for fam := 0; fam < fc.Families; fam++ {
		ancestor := bank.RandomProtein(rng, fc.MemberLen)
		queries.Add(fmt.Sprintf("query%03d", fam), bank.MutateProtein(rng, ancestor, fc.Divergence/2))
		for m := 0; m < fc.MembersPerFamily; m++ {
			subjects.Add(fmt.Sprintf("fam%03d_m%d", fam, m), bank.MutateProtein(rng, ancestor, fc.Divergence))
			subjFamily = append(subjFamily, fam)
		}
	}
	for d := 0; d < fc.DecoyGenes; d++ {
		subjects.Add(fmt.Sprintf("decoy%03d", d), bank.RandomProtein(rng, fc.MemberLen))
		subjFamily = append(subjFamily, -1)
	}

	base := core.DefaultOptions()
	base.Seed = reducedSeed()
	if cfg.Threshold > 0 {
		base.UngappedThreshold = cfg.Threshold
	}
	base.Gapped.MaxEValue = cfg.MaxEValue
	ix1, err := index.BuildParallel(subjects, base.Seed, base.N, 0)
	if err != nil {
		return nil, err
	}

	out := &PrefilterSweep{Queries: queries.Len(), Subjects: subjects.Len()}
	var offWall float64
	for _, k := range ks {
		opt := base
		opt.MaxCandidates = k
		opt.SubjectIndex = ix1
		var res *core.Result
		for rep := 0; rep < 3; rep++ { // best-of-3 wall; results are deterministic
			r, err := core.Compare(queries, subjects, opt)
			if err != nil {
				return nil, err
			}
			if res == nil || r.Pipeline.Wall < res.Pipeline.Wall {
				res = r
			}
		}
		perQuery := make(map[int][]metrics.RankedHit)
		for _, a := range res.Alignments {
			perQuery[a.Seq0] = append(perQuery[a.Seq0], metrics.RankedHit{
				Score: float64(a.Score),
				True:  subjFamily[a.Seq1] == a.Seq0,
			})
		}
		var rocs, aps []float64
		for q := 0; q < queries.Len(); q++ {
			hits := perQuery[q]
			metrics.SortByScore(hits)
			rocs = append(rocs, metrics.ROC50(hits, fc.MembersPerFamily))
			aps = append(aps, metrics.AveragePrecision(hits))
		}
		sort.Float64s(rocs)
		sort.Float64s(aps)
		wallMS := float64(res.Pipeline.Wall.Nanoseconds()) / 1e6
		if k == 0 {
			offWall = wallMS
		}
		speedup := 0.0
		if offWall > 0 {
			speedup = offWall / wallMS
		}
		out.Rows = append(out.Rows, PrefilterSweepRow{
			MaxCandidates: k,
			ROC50:         metrics.Mean(rocs),
			APMean:        metrics.Mean(aps),
			Matches:       len(res.Alignments),
			WallMS:        wallMS,
			SpeedupVsOff:  speedup,
		})
	}
	return out, nil
}

// Format renders the sweep table.
func (s PrefilterSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Prefilter sweep: ROC50 vs speed (%d queries, %d subjects)\n", s.Queries, s.Subjects)
	fmt.Fprintf(&b, "%14s %8s %8s %8s %10s %9s\n", "maxCandidates", "ROC50", "AP-Mean", "matches", "wall(ms)", "speedup")
	for _, r := range s.Rows {
		k := fmt.Sprintf("%d", r.MaxCandidates)
		if r.MaxCandidates == 0 {
			k = "off"
		}
		fmt.Fprintf(&b, "%14s %8.3f %8.3f %8d %10.1f %8.2fx\n",
			k, r.ROC50, r.APMean, r.Matches, r.WallMS, r.SpeedupVsOff)
	}
	return b.String()
}
