package experiments

import (
	"context"
	"fmt"
	"time"

	"seedblast/internal/blast"
	"seedblast/internal/gapped"
	"seedblast/internal/hwsim"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/pipeline"
	"seedblast/internal/ungapped"
)

// DeviceTiming is the simulated accelerator timing for one
// configuration.
type DeviceTiming struct {
	Seconds        float64
	ComputeSeconds float64
	DMASeconds     float64
	Utilization    float64
}

// BankMeasurement collects everything the tables need for one protein
// bank against the workload genome.
type BankMeasurement struct {
	BankIdx  int
	Proteins int
	Residues int

	// Software pipeline (sequential, one core — as the paper runs it).
	Step1Sec    float64
	Step2SeqSec float64
	Step3Sec    float64
	Hits        int
	Pairs       int64

	// Baseline.
	BlastSec     float64
	BlastMatches int

	// Gapped-stage work profile (for the future-work gap operator).
	GapStats gapped.Stats

	// Simulated accelerator timings, keyed by PE count.
	Device map[int]DeviceTiming
	// Two-FPGA timings at the raised threshold (Table 3), keyed by PE
	// count; OneFPGARaised is the 1-FPGA counterpart.
	TwoFPGA       map[int]DeviceTiming
	OneFPGARaised map[int]DeviceTiming
}

// Measurements is the full dataset behind Tables 1-5 and 7.
type Measurements struct {
	Workload *Workload
	PECounts []int
	Banks    []BankMeasurement
}

// MeasureOptions tunes what Measure runs.
type MeasureOptions struct {
	PECounts        []int // default {64, 128, 192}
	WithBlast       bool  // run the sequential baseline (Table 2)
	RaisedThreshold int   // Table 3's lightened-traffic threshold; default 2× base
	Progress        func(format string, args ...any)
}

func (o MeasureOptions) withDefaults(base int) MeasureOptions {
	if len(o.PECounts) == 0 {
		o.PECounts = []int{64, 128, 192}
	}
	if o.RaisedThreshold == 0 {
		o.RaisedThreshold = base * 2
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
	return o
}

// Measure runs the pipeline over every bank of the workload and
// collects the raw numbers behind the tables. The software pipeline is
// driven through the streaming shard engine pinned to one shard and
// one worker per stage (Workers=1), matching the paper's single-core
// methodology; accelerator timings come from the validated cycle model.
func Measure(w *Workload, opt MeasureOptions) (*Measurements, error) {
	opt = opt.withDefaults(w.Scale.Threshold)
	ms := &Measurements{Workload: w, PECounts: opt.PECounts}

	// The genome-side index does not depend on the bank: build once,
	// hand it to the engine via Request.Index1, and charge the measured
	// build time to each bank's step 1 the way the paper's pipeline
	// does.
	tGenome := time.Now()
	ixG, err := index.Build(w.Frames, w.Scale.SeedModel, w.Scale.N)
	if err != nil {
		return nil, err
	}
	genomeIndexSec := time.Since(tGenome).Seconds()

	// The paper's software baseline is the sequential scalar inner
	// loop; pin it so the measured profile (Tables 1, 7) keeps the
	// paper's shape regardless of what KernelAuto would pick. The
	// blocked kernel's speedup is recorded separately (BENCH_0006,
	// EXPERIMENTS.md "Step-2 blocked kernel").
	eng, err := pipeline.New(pipeline.Config{}, &pipeline.CPUBackend{
		Matrix:    matrix.BLOSUM62,
		Threshold: w.Scale.Threshold,
		Workers:   1,
		Kernel:    ungapped.KernelScalar,
	})
	if err != nil {
		return nil, err
	}

	for bi, b := range w.Banks {
		opt.Progress("bank %s (%d proteins)", b.Name(), b.Len())
		m := BankMeasurement{
			BankIdx:       bi,
			Proteins:      b.Len(),
			Residues:      b.TotalResidues(),
			Device:        map[int]DeviceTiming{},
			TwoFPGA:       map[int]DeviceTiming{},
			OneFPGARaised: map[int]DeviceTiming{},
		}

		// Step 1: the bank-side index, built once — the engine reuses it
		// (Request.Index0) and the estimator sweeps below reuse it again.
		t0 := time.Now()
		ixB, err := index.Build(b, w.Scale.SeedModel, w.Scale.N)
		if err != nil {
			return nil, err
		}
		m.Step1Sec = time.Since(t0).Seconds() + genomeIndexSec

		// Steps 2-3 through the engine; per-stage durations come from
		// the engine's accounting. KeepHits retains the step-2 records
		// for the raised-threshold traffic count below.
		gcfg := gapped.DefaultConfig()
		gcfg.Workers = 1
		out, err := eng.Run(context.Background(), &pipeline.Request{
			Bank0:    b,
			Bank1:    w.Frames,
			Seed:     w.Scale.SeedModel,
			N:        w.Scale.N,
			Workers:  1,
			Gapped:   gcfg,
			Index0:   ixB,
			Index1:   ixG,
			KeepHits: true,
		})
		if err != nil {
			return nil, err
		}
		m.Step2SeqSec = out.Step2Time.Seconds()
		m.Step3Sec = out.Step3Time.Seconds()
		m.Hits = out.Hits
		m.Pairs = out.Pairs
		m.GapStats = out.GappedWork

		// Accelerator timings for every PE count (1 FPGA, base threshold).
		for _, pes := range opt.PECounts {
			dt, err := estimate(ixB, ixG, w, pes, 1, m.Hits)
			if err != nil {
				return nil, err
			}
			m.Device[pes] = dt
		}
		// Table 3: raised threshold, 1 vs 2 FPGAs, largest PE count.
		raisedRecords := 0
		for _, h := range out.UngappedHits {
			if int(h.Score) >= opt.RaisedThreshold {
				raisedRecords++
			}
		}
		bigPE := opt.PECounts[len(opt.PECounts)-1]
		one, err := estimate(ixB, ixG, w, bigPE, 1, raisedRecords)
		if err != nil {
			return nil, err
		}
		two, err := estimate(ixB, ixG, w, bigPE, 2, raisedRecords)
		if err != nil {
			return nil, err
		}
		m.OneFPGARaised[bigPE] = one
		m.TwoFPGA[bigPE] = two

		// Baseline.
		if opt.WithBlast {
			t3 := time.Now()
			bms, err := blast.SearchGenome(b, w.Genome, blast.DefaultConfig())
			if err != nil {
				return nil, err
			}
			m.BlastSec = time.Since(t3).Seconds()
			m.BlastMatches = len(bms)
		}
		ms.Banks = append(ms.Banks, m)
	}
	return ms, nil
}

// estimate runs the device timing model for one configuration.
func estimate(ixB, ixG *index.Index, w *Workload, pes, fpgas, records int) (DeviceTiming, error) {
	psc := hwsim.DefaultPSC(matrix.BLOSUM62, ixB.SubLen(), w.Scale.Threshold)
	psc.NumPEs = pes
	cfg := hwsim.DefaultDevice(psc)
	cfg.NumFPGAs = fpgas
	dev, err := hwsim.NewDevice(cfg)
	if err != nil {
		return DeviceTiming{}, err
	}
	rep, err := dev.EstimateStep2(ixB, ixG, records)
	if err != nil {
		return DeviceTiming{}, err
	}
	return DeviceTiming{
		Seconds:        rep.Seconds,
		ComputeSeconds: rep.ComputeSeconds,
		DMASeconds:     rep.DMASeconds,
		Utilization:    rep.Utilization,
	}, nil
}

// RASCTotalSec returns the simulated end-to-end pipeline time for one
// bank at the given PE count: measured steps 1 and 3 plus the simulated
// step 2.
func (m *BankMeasurement) RASCTotalSec(pes int) float64 {
	return m.Step1Sec + m.Device[pes].Seconds + m.Step3Sec
}

// SoftwareTotalSec returns the all-software sequential pipeline time.
func (m *BankMeasurement) SoftwareTotalSec() float64 {
	return m.Step1Sec + m.Step2SeqSec + m.Step3Sec
}

// BankName formats the bank label used in tables.
func (m *BankMeasurement) BankName() string {
	return fmt.Sprintf("%d prot", m.Proteins)
}
