package experiments

import (
	"fmt"
	"strings"

	"seedblast/internal/gapped"
	"seedblast/internal/hwsim"
)

// FutureWorkRow projects the paper's §5 proposal for one bank: the
// second FPGA carries a gap-extension operator, the two designs run
// concurrently, and the pipeline streams buckets through both, so the
// wall time of steps 2+3 approaches max(step2, step3) instead of their
// sum.
type FutureWorkRow struct {
	BankName   string
	PaperSec   float64 // step1 + simulated step2 + host step3 (the paper's config)
	DualSec    float64 // step1 + max(simulated step2, simulated step3)
	GapOpSec   float64 // simulated gap-operator time
	HostMode   float64 // host step 3 for reference
	Projection float64 // PaperSec / DualSec
}

// RunFutureWork computes the dual-FPGA projection from the
// measurements at the largest PE count.
func RunFutureWork(ms *Measurements) ([]FutureWorkRow, error) {
	pes := ms.PECounts[len(ms.PECounts)-1]
	gop := hwsim.DefaultGapOp(gapped.DefaultConfig().Band)
	var rows []FutureWorkRow
	for _, m := range ms.Banks {
		rep, err := gop.EstimateStep3(m.GapStats)
		if err != nil {
			return nil, err
		}
		step2 := m.Device[pes].Seconds
		paper := m.Step1Sec + step2 + m.Step3Sec
		dual := m.Step1Sec + maxF(step2, rep.Seconds)
		row := FutureWorkRow{
			BankName: m.BankName(),
			PaperSec: paper,
			DualSec:  dual,
			GapOpSec: rep.Seconds,
			HostMode: m.Step3Sec,
		}
		if dual > 0 {
			row.Projection = paper / dual
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// FormatFutureWork renders the projection table.
func FormatFutureWork(rows []FutureWorkRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Future work (paper §5): gap-extension operator on the second FPGA\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %12s %8s\n",
		"bank", "paper cfg", "host step3", "gap-op st3", "dual-FPGA", "gain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.3f %12.3f %12.3f %12.3f %8.2f\n",
			r.BankName, r.PaperSec, r.HostMode, r.GapOpSec, r.DualSec, r.Projection)
	}
	fmt.Fprintf(&b, "(the paper projects 'optimizing global performances implies now to\n")
	fmt.Fprintf(&b, " consider ... another reconfigurable operator dedicated to ... gap penalty')\n")
	return b.String()
}
