package report

import (
	"bytes"
	"strings"
	"testing"

	"seedblast/internal/align"
	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/matrix"
)

func TestComputeStatsIdentity(t *testing.T) {
	q := alphabet.MustEncodeProtein("MKVLILAC")
	al := align.NewAligner(matrix.BLOSUM62, align.DefaultGaps)
	loc, ops := al.Traceback(q, q)
	st := ComputeStats(q, q, loc, ops, matrix.BLOSUM62)
	if st.Identities != 8 || st.Length != 8 || st.Gaps != 0 {
		t.Errorf("identity stats wrong: %+v", st)
	}
	if st.Identity() != 1 {
		t.Errorf("Identity() = %f", st.Identity())
	}
}

func TestComputeStatsSubstitutionsAndGaps(t *testing.T) {
	// q=WWWWWWKKKKKK vs s=WWWWWWAAAKKKKKK: 12 aligned + 3-gap.
	m := matrix.NewMatchMismatch(2, -2)
	al := align.NewAligner(m, align.GapParams{Open: 3, Extend: 1})
	q := alphabet.MustEncodeProtein("WWWWWWKKKKKK")
	s := alphabet.MustEncodeProtein("WWWWWWAAAKKKKKK")
	loc, ops := al.Traceback(q, s)
	st := ComputeStats(q, s, loc, ops, m)
	if st.Gaps != 3 {
		t.Errorf("gaps = %d, want 3", st.Gaps)
	}
	if st.Identities != 12 {
		t.Errorf("identities = %d, want 12", st.Identities)
	}
	if st.Length != 15 {
		t.Errorf("length = %d, want 15", st.Length)
	}
}

func TestComputeStatsPositives(t *testing.T) {
	// I vs V scores +3 under BLOSUM62: positive but not identical.
	q := alphabet.MustEncodeProtein("MKVI")
	s := alphabet.MustEncodeProtein("MKVV")
	al := align.NewAligner(matrix.BLOSUM62, align.DefaultGaps)
	loc, ops := al.Traceback(q, s)
	st := ComputeStats(q, s, loc, ops, matrix.BLOSUM62)
	if st.Identities != 3 || st.Positives != 4 {
		t.Errorf("stats = %+v, want 3 identities / 4 positives", st)
	}
	if st.Identity() <= 0.7 || st.Identity() >= 0.8 {
		t.Errorf("identity = %f, want 0.75", st.Identity())
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	var st AlignmentStats
	if st.Identity() != 0 {
		t.Error("empty identity should be 0")
	}
}

func TestWriteGenomeReport(t *testing.T) {
	proteins := bank.GenerateProteins(bank.ProteinConfig{N: 6, MeanLen: 100, Seed: 61})
	genome, _, err := bank.GenerateGenome(bank.GenomeConfig{
		Length: 30_000, Source: proteins, PlantCount: 3, Seed: 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Gapped.Traceback = true
	res, err := core.CompareGenome(proteins, genome, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches to report")
	}
	var buf bytes.Buffer
	if err := WriteGenomeReport(&buf, proteins, genome, res, matrix.BLOSUM62); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"tblastn-style search",
		"E-value",
		"identities",
		"Query ",
		"Sbjct",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out[:min(len(out), 600)])
		}
	}
}

func TestWriteGenomeReportNoTraceback(t *testing.T) {
	proteins := bank.GenerateProteins(bank.ProteinConfig{N: 4, MeanLen: 80, Seed: 63})
	genome, _, err := bank.GenerateGenome(bank.GenomeConfig{
		Length: 20_000, Source: proteins, PlantCount: 2, Seed: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CompareGenome(proteins, genome, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGenomeReport(&buf, proteins, genome, res, matrix.BLOSUM62); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "identities") {
		t.Error("alignment blocks present without traceback")
	}
	if !strings.Contains(buf.String(), "E-value") {
		t.Error("summary table missing")
	}
}

func TestIndent(t *testing.T) {
	if got := indent("a\nb\n", "> "); got != "> a\n> b\n" {
		t.Errorf("indent = %q", got)
	}
}
