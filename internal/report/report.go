// Package report renders comparison results as human-readable,
// BLAST-style text reports: a per-query summary table of hits followed
// by the pairwise alignment blocks, with identity/positive/gap
// statistics computed from alignment operations.
package report

import (
	"fmt"
	"io"
	"sort"

	"seedblast/internal/align"
	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/matrix"
	"seedblast/internal/translate"
)

// AlignmentStats summarises an alignment's character classes.
type AlignmentStats struct {
	Length     int // alignment columns
	Identities int
	Positives  int // identities + positive substitution scores
	Gaps       int // gap columns
}

// Identity returns the identity fraction (0 when empty).
func (s AlignmentStats) Identity() float64 {
	if s.Length == 0 {
		return 0
	}
	return float64(s.Identities) / float64(s.Length)
}

// ComputeStats walks alignment operations over the aligned sequences.
// q and s are the full encoded sequences; the spans in loc delimit the
// aligned regions.
func ComputeStats(q, s []byte, loc align.Local, ops []align.Op, m *matrix.Matrix) AlignmentStats {
	var st AlignmentStats
	i, j := loc.AStart, loc.BStart
	for _, op := range ops {
		st.Length += op.Len
		switch op.Kind {
		case align.OpAligned:
			for k := 0; k < op.Len; k++ {
				switch {
				case q[i] == s[j]:
					st.Identities++
					st.Positives++
				case m.Score(q[i], s[j]) > 0:
					st.Positives++
				}
				i++
				j++
			}
		case align.OpInsB:
			st.Gaps += op.Len
			j += op.Len
		case align.OpDelB:
			st.Gaps += op.Len
			i += op.Len
		}
	}
	return st
}

// WriteGenomeReport renders a tblastn-style report for CompareGenome
// results. Alignment blocks appear only for matches that carry
// traceback operations (Options.Gapped.Traceback).
func WriteGenomeReport(w io.Writer, proteins *bank.Bank, genome []byte, res *core.GenomeResult, m *matrix.Matrix) error {
	fmt.Fprintf(w, "seedblast tblastn-style search\n")
	fmt.Fprintf(w, "Query bank: %s (%d sequences, %d residues)\n",
		proteins.Name(), proteins.Len(), proteins.TotalResidues())
	fmt.Fprintf(w, "Subject: %d nt genome, 6 reading frames\n", res.GenomeLen)
	fmt.Fprintf(w, "Matches: %d (pairs scored: %d, hits: %d)\n\n",
		len(res.Matches), res.Pairs, res.Hits)

	// Group matches per query, best first.
	perQuery := map[int][]core.GenomeMatch{}
	for _, gm := range res.Matches {
		perQuery[gm.Protein] = append(perQuery[gm.Protein], gm)
	}
	queries := make([]int, 0, len(perQuery))
	for q := range perQuery {
		queries = append(queries, q)
	}
	sort.Ints(queries)

	var frames [][]byte
	for _, q := range queries {
		ms := perQuery[q]
		sort.Slice(ms, func(i, j int) bool { return ms[i].EValue < ms[j].EValue })
		fmt.Fprintf(w, "Query %s (%d aa)\n", proteins.ID(q), len(proteins.Seq(q)))
		fmt.Fprintf(w, "  %-8s %-22s %8s %10s %12s\n",
			"frame", "genome interval", "score", "bits", "E-value")
		for _, gm := range ms {
			fmt.Fprintf(w, "  %-8s [%9d, %9d) %8d %10.1f %12.2e\n",
				gm.Frame, gm.NucStart, gm.NucEnd, gm.Score, gm.BitScore, gm.EValue)
		}
		for _, gm := range ms {
			if len(gm.Ops) == 0 {
				continue
			}
			if frames == nil {
				for _, ft := range translate.SixFrames(genome) {
					frames = append(frames, ft.Protein)
				}
			}
			loc := align.Local{
				Score:  gm.Score,
				AStart: gm.Q.Start, AEnd: gm.Q.End,
				BStart: gm.S.Start, BEnd: gm.S.End,
			}
			st := ComputeStats(proteins.Seq(q), frames[gm.Seq1], loc, gm.Ops, m)
			fmt.Fprintf(w, "\n  Frame %s, length %d: identities %d/%d (%.0f%%), positives %d, gaps %d\n",
				gm.Frame, st.Length, st.Identities, st.Length,
				100*st.Identity(), st.Positives, st.Gaps)
			fmt.Fprint(w, indent(align.FormatAlignment(
				proteins.Seq(q), frames[gm.Seq1], loc, gm.Ops, m), "  "))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	// Trim the trailing prefix after the final newline.
	if len(out) >= len(prefix) && out[len(out)-len(prefix):] == prefix {
		out = out[:len(out)-len(prefix)]
	}
	return out
}
