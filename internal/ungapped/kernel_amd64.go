package ungapped

// hasAsmKernel gates the architecture-specific group scanners: on
// amd64 the blocked kernel scores whole groups of windows per pass
// with the exact SIMD routines in kernel_amd64.s instead of the
// portable 4-lane SWAR pass.
const hasAsmKernel = true

// hasSSSE3 selects between the two asm scanners: the 16-lane
// PSHUFB-based scanner needs SSSE3, the 8-lane PINSRW-based one only
// baseline SSE2. Detected once at startup.
var hasSSSE3 = cpuidSSSE3()

// cpuidSSSE3 reports whether the CPU supports SSSE3 (CPUID leaf 1,
// ECX bit 9). Implemented in kernel_amd64.s.
func cpuidSSSE3() bool

// scanGroup16SSSE3 scores 16 consecutive subject windows of subLen
// bytes starting at win against the query window w0, writing each
// window's exact maximum zero-clamped running sum (align.WindowScore)
// to best. btab is the scratch's biased score table. The caller
// guarantees all 16 windows are in bounds, that the workload passed
// blockedFits, and that hasSSSE3 is true.
//
//go:noescape
func scanGroup16SSSE3(btab *uint8, w0 *byte, win *byte, subLen int, best *[ssse3Lanes]int16)

// scanGroup8SSE is the SSE2-only variant: 8 windows per group, scores
// gathered with PINSRW chains. Same contract as scanGroup16SSSE3 for
// its 8 windows, no CPU-feature requirement beyond the amd64 baseline.
//
//go:noescape
func scanGroup8SSE(btab *uint8, w0 *byte, win *byte, subLen int, best *[asmLanes]int16)
