package ungapped

import (
	"fmt"
	"math/rand"
	"testing"

	"seedblast/internal/align"
	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/seed"
)

func TestParseKernel(t *testing.T) {
	cases := []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"", KernelAuto, true},
		{"auto", KernelAuto, true},
		{"scalar", KernelScalar, true},
		{"blocked", KernelBlocked, true},
		{"simd", 0, false},
		{"Blocked", 0, false},
	}
	for _, c := range cases {
		got, err := ParseKernel(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseKernel(%q) accepted", c.in)
		}
	}
	for _, k := range []Kernel{KernelAuto, KernelScalar, KernelBlocked} {
		back, err := ParseKernel(k.String())
		if err != nil || back != k {
			t.Errorf("round trip %v → %q → %v, %v", k, k.String(), back, err)
		}
	}
}

func TestKernelResolve(t *testing.T) {
	if got := KernelScalar.resolve(matrix.BLOSUM62, 32); got != KernelScalar {
		t.Errorf("scalar resolved to %v", got)
	}
	if got := KernelAuto.resolve(matrix.BLOSUM62, 32); got != KernelBlocked {
		t.Errorf("auto resolved to %v for BLOSUM62/32", got)
	}
	if got := KernelBlocked.resolve(matrix.BLOSUM62, 32); got != KernelBlocked {
		t.Errorf("blocked resolved to %v", got)
	}
	// A workload whose max window score overflows the int16 lanes must
	// fall back to scalar even when blocked is requested.
	big := matrix.NewMatchMismatch(127, -1)
	if got := KernelBlocked.resolve(big, 1000); got != KernelScalar {
		t.Errorf("overflowing workload resolved to %v, want scalar fallback", got)
	}
	if got := KernelAuto.resolve(big, 1000); got != KernelScalar {
		t.Errorf("auto on overflowing workload resolved to %v, want scalar", got)
	}
}

// randomIndexes builds a moderately dense random workload so buckets
// have multi-window IL1 lists and the blocked path actually engages.
func randomIndexes(t testing.TB, seedVal int64, nSeqs, seqLen, n int) (*index.Index, *index.Index) {
	rng := bank.NewRNG(seedVal)
	b0 := bank.New("k0")
	b1 := bank.New("k1")
	for i := 0; i < nSeqs; i++ {
		b0.Add(fmt.Sprintf("q%d", i), bank.RandomProtein(rng, seqLen))
		b1.Add(fmt.Sprintf("s%d", i), bank.RandomProtein(rng, seqLen))
	}
	model := seed.Default()
	ix0, err := index.Build(b0, model, n)
	if err != nil {
		t.Fatal(err)
	}
	ix1, err := index.Build(b1, model, n)
	if err != nil {
		t.Fatal(err)
	}
	return ix0, ix1
}

// benchIndexes builds the asymmetric workload shape of the paper —
// n0 query sequences of length l0 against a much larger subject bank
// of n1 sequences of length l1 — giving dense IL1 lists.
func benchIndexes(t testing.TB, n0, l0, n1, l1, n int) (*index.Index, *index.Index) {
	rng := bank.NewRNG(42)
	b0 := bank.New("q")
	for i := 0; i < n0; i++ {
		b0.Add(fmt.Sprintf("q%d", i), bank.RandomProtein(rng, l0))
	}
	b1 := bank.New("s")
	for i := 0; i < n1; i++ {
		b1.Add(fmt.Sprintf("s%d", i), bank.RandomProtein(rng, l1))
	}
	model := seed.Default()
	ix0, err := index.Build(b0, model, n)
	if err != nil {
		t.Fatal(err)
	}
	ix1, err := index.Build(b1, model, n)
	if err != nil {
		t.Fatal(err)
	}
	return ix0, ix1
}

func requireIdentical(t *testing.T, ref, got *Result, label string) {
	t.Helper()
	if got.Pairs != ref.Pairs {
		t.Fatalf("%s: pairs = %d, want %d", label, got.Pairs, ref.Pairs)
	}
	if len(got.Hits) != len(ref.Hits) {
		t.Fatalf("%s: %d hits, want %d", label, len(got.Hits), len(ref.Hits))
	}
	for i := range got.Hits {
		if got.Hits[i] != ref.Hits[i] {
			t.Fatalf("%s: hit %d differs:\n  got  %+v\n  want %+v", label, i, got.Hits[i], ref.Hits[i])
		}
	}
}

func TestBlockedKernelMatchesScalar(t *testing.T) {
	// Dense enough that many buckets exceed blockedMinIL1 and several
	// cache blocks are traversed; low threshold so hits are plentiful.
	ix0, ix1 := randomIndexes(t, 7, 24, 260, 8)
	for _, thr := range []int{12, 18, 25, 38} {
		ref, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: thr, Workers: 1, Kernel: KernelScalar})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: thr, Workers: 1, Kernel: KernelBlocked})
		if err != nil {
			t.Fatal(err)
		}
		if got.Kernel != KernelBlocked {
			t.Fatalf("thr=%d: resolved kernel %v, want blocked", thr, got.Kernel)
		}
		if ref.Kernel != KernelScalar {
			t.Fatalf("thr=%d: reference kernel %v, want scalar", thr, ref.Kernel)
		}
		if thr <= 18 && len(ref.Hits) == 0 {
			t.Fatalf("thr=%d: workload produced no hits; test is vacuous", thr)
		}
		requireIdentical(t, ref, got, fmt.Sprintf("thr=%d", thr))
	}
}

func TestBlockedKernelMatchesScalarSmallNeighbourhood(t *testing.T) {
	// N=4 is the smallest window the acceptance criteria name; also
	// covers buckets straddling the blockedMinIL1 boundary.
	ix0, ix1 := randomIndexes(t, 11, 16, 150, 4)
	ref, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 13, Workers: 1, Kernel: KernelScalar})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 13, Workers: 1, Kernel: KernelBlocked})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Hits) == 0 {
		t.Fatal("no hits; test is vacuous")
	}
	requireIdentical(t, ref, got, "N=4")
}

func TestKernelDeterministicAcrossWorkersAndKernels(t *testing.T) {
	// The satellite's deterministic-order matrix: every worker count ×
	// every kernel must produce the identical hit stream.
	ix0, ix1 := randomIndexes(t, 23, 12, 200, 6)
	var ref *Result
	for _, kernel := range []Kernel{KernelScalar, KernelBlocked, KernelAuto} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			res, err := Run(ix0, ix1, Config{
				Matrix: matrix.BLOSUM62, Threshold: 16,
				Workers: workers, Kernel: kernel,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				if len(ref.Hits) == 0 {
					t.Fatal("no hits; test is vacuous")
				}
				continue
			}
			requireIdentical(t, ref, res, fmt.Sprintf("kernel=%v workers=%d", kernel, workers))
		}
	}
}

func TestBlockedKernelMatchMismatchMatrix(t *testing.T) {
	// A second matrix shape: uniform match/mismatch, where long exact
	// repeats drive scores near the window maximum.
	rng := bank.NewRNG(5)
	b0 := bank.New("m0")
	b1 := bank.New("m1")
	motif := bank.RandomProtein(rng, 40)
	for i := 0; i < 6; i++ {
		s0 := append(append([]byte{}, bank.RandomProtein(rng, 60)...), motif...)
		s1 := append(append([]byte{}, motif...), bank.RandomProtein(rng, 60)...)
		b0.Add(fmt.Sprintf("q%d", i), s0)
		b1.Add(fmt.Sprintf("s%d", i), s1)
	}
	model := seed.Default()
	ix0, _ := index.Build(b0, model, 10)
	ix1, _ := index.Build(b1, model, 10)
	m := matrix.NewMatchMismatch(5, -4)
	ref, err := Run(ix0, ix1, Config{Matrix: m, Threshold: 20, Workers: 1, Kernel: KernelScalar})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(ix0, ix1, Config{Matrix: m, Threshold: 20, Workers: 1, Kernel: KernelBlocked})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Hits) == 0 {
		t.Fatal("no hits; test is vacuous")
	}
	requireIdentical(t, ref, got, "match/mismatch")
}

// TestBlockedKernelLaneWidths forces every lane width the build can
// run (16-lane SSSE3 and 8-lane SSE2 where the hardware has them, the
// portable 4-lane SWAR pass everywhere) through the scalar-identity
// check, so narrower paths stay covered on machines whose hardware
// would pick a wider one.
func TestBlockedKernelLaneWidths(t *testing.T) {
	ix0, ix1 := randomIndexes(t, 7, 24, 260, 8)
	ref, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 16, Workers: 1, Kernel: KernelScalar})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Hits) == 0 {
		t.Fatal("no hits; test is vacuous")
	}
	defer func(old int) { kernelLaneCap = old }(kernelLaneCap)
	for _, cap := range []int{0, asmLanes, groupLanes} {
		kernelLaneCap = cap
		got, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 16, Workers: 1, Kernel: KernelBlocked})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, ref, got, fmt.Sprintf("laneCap=%d", cap))
	}
}

// asmGroupTrial builds one random group-scan workload: a query window
// and lanes consecutive subject windows backed by one hood slice.
func asmGroupTrial(rng *rand.Rand, subLen, lanes int) (w0 []byte, windows [][]byte, hood []byte) {
	w0 = make([]byte, subLen)
	for k := range w0 {
		w0[k] = byte(rng.Intn(alphabet.NumAA))
	}
	windows = make([][]byte, lanes)
	hood = make([]byte, subLen*lanes)
	for l := range windows {
		w := hood[l*subLen : (l+1)*subLen]
		for k := range w {
			w[k] = byte(rng.Intn(alphabet.NumAA))
		}
		windows[l] = w
	}
	return w0, windows, hood
}

// TestAsmScanGroupsExact pins both architecture-specific scanners to
// align.WindowScore exactly, lane by lane: unlike the portable SWAR
// flags they return the true score, so equality is strict. Window
// lengths sweep the 16-lane scanner's three internal phases (8-wide
// tiles, the 4-wide half tile, byte-gathered remainders).
func TestAsmScanGroupsExact(t *testing.T) {
	if !hasAsmKernel {
		t.Skip("no asm scanner on this GOARCH")
	}
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 400; trial++ {
		subLen := 1 + rng.Intn(67)
		m := matrix.BLOSUM62
		if trial%3 == 1 {
			m = matrix.NewMatchMismatch(int8(1+rng.Intn(11)), int8(-1-rng.Intn(11)))
		}
		ks := newBlockedScratch(m, subLen, 1)

		w0, windows, hood := asmGroupTrial(rng, subLen, ssse3Lanes)
		want := scoreGroupRef(w0, windows, m)

		if hasSSSE3 {
			var best [ssse3Lanes]int16
			scanGroup16SSSE3(&ks.btab[0], &w0[0], &hood[0], subLen, &best)
			for l := 0; l < ssse3Lanes; l++ {
				if int(best[l]) != want[l] {
					t.Fatalf("trial %d (subLen=%d): ssse3 lane %d = %d, want %d",
						trial, subLen, l, best[l], want[l])
				}
			}
		}
		var best8 [asmLanes]int16
		scanGroup8SSE(&ks.btab[0], &w0[0], &hood[0], subLen, &best8)
		for l := 0; l < asmLanes; l++ {
			if int(best8[l]) != want[l] {
				t.Fatalf("trial %d (subLen=%d): sse2 lane %d = %d, want %d",
					trial, subLen, l, best8[l], want[l])
			}
		}
	}
}

// scoreGroupRef scores the lanes of one group with the scalar reference.
func scoreGroupRef(w0 []byte, windows [][]byte, m *matrix.Matrix) []int {
	out := make([]int, len(windows))
	for i, w1 := range windows {
		out[i] = align.WindowScore(w0, w1, m)
	}
	return out
}

// requireLaneFlags checks the kernel's conservative flag contract for
// one group against scalar reference scores: every lane whose window
// reaches the threshold must be flagged, and a flagged lane's window
// must score at least threshold − maxScore (the fused recurrence's
// over-approximation band).
func requireLaneFlags(t *testing.T, f uint64, want []int, threshold int, m *matrix.Matrix, label string) {
	t.Helper()
	band := m.MaxScore()
	if band < 0 {
		band = 0
	}
	for l := 0; l < groupLanes; l++ {
		got := f>>(l*16+15)&1 == 1
		if want[l] >= threshold && !got {
			t.Fatalf("%s lane %d: not flagged, reference score %d ≥ threshold %d",
				label, l, want[l], threshold)
		}
		if got && want[l] < threshold-band {
			t.Fatalf("%s lane %d: flagged, reference score %d < threshold %d − band %d",
				label, l, want[l], threshold, band)
		}
	}
}

func TestKernelScanGroupAgainstReference(t *testing.T) {
	// Direct unit check of the SWAR group flags against align.WindowScore
	// on random residues, including the non-standard codes.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		subLen := 1 + rng.Intn(64)
		w0 := make([]byte, subLen)
		for k := range w0 {
			w0[k] = byte(rng.Intn(alphabet.NumAA))
		}
		windows := make([][]byte, groupLanes)
		hood := make([]byte, subLen*groupLanes)
		for l := range windows {
			w := hood[l*subLen : (l+1)*subLen]
			for k := range w {
				w[k] = byte(rng.Intn(alphabet.NumAA))
			}
			windows[l] = w
		}
		m := matrix.BLOSUM62
		if trial%3 == 1 {
			m = matrix.NewMatchMismatch(int8(1+rng.Intn(11)), int8(-1-rng.Intn(11)))
		}
		// Thresholds straddling typical scores so both flag outcomes occur.
		threshold := 1 + rng.Intn(30)
		ks := newBlockedScratch(m, subLen, threshold)
		f := ks.scanGroup4(w0, hood, 0)
		want := scoreGroupRef(w0, windows, m)
		requireLaneFlags(t, f, want, threshold, m, fmt.Sprintf("trial %d (subLen=%d)", trial, subLen))
	}
}

// FuzzWindowScoreKernel fuzzes random windows, matrices and thresholds
// through the blocked group scorer against the align.WindowScore
// reference — the satellite's kernel-equivalence fuzz target.
func FuzzWindowScoreKernel(f *testing.F) {
	f.Add(int64(1), 14, int8(11), int8(-4), 38)
	f.Add(int64(2), 1, int8(1), int8(-1), 1)
	f.Add(int64(3), 64, int8(127), int8(-128), 100)
	f.Add(int64(4), 7, int8(0), int8(0), 5)
	f.Fuzz(func(t *testing.T, rngSeed int64, subLen int, match, mismatch int8, threshold int) {
		if subLen < 1 || subLen > 256 {
			t.Skip()
		}
		if threshold < 1 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(rngSeed))
		// A full random matrix (not just match/mismatch): every pair
		// gets an arbitrary int8 score derived from the two fuzzed
		// scores, exercising asymmetric and extreme tables.
		table := make([]int8, alphabet.NumAA*alphabet.NumAA)
		for i := range table {
			switch rng.Intn(3) {
			case 0:
				table[i] = match
			case 1:
				table[i] = mismatch
			default:
				table[i] = int8(rng.Intn(256) - 128)
			}
		}
		m, err := matrix.New("fuzz", table)
		if err != nil {
			t.Fatal(err)
		}
		if !blockedFits(m, subLen) {
			// Out of the blocked kernel's arithmetic bounds; Run would
			// fall back to scalar, so there is nothing to compare.
			t.Skip()
		}

		w0, windows, hood := asmGroupTrial(rng, subLen, ssse3Lanes)
		wantAll := scoreGroupRef(w0, windows, m)

		// The asm scanners return exact scores; compare them strictly.
		if hasAsmKernel {
			ks := newBlockedScratch(m, subLen, threshold)
			if hasSSSE3 {
				var best [ssse3Lanes]int16
				scanGroup16SSSE3(&ks.btab[0], &w0[0], &hood[0], subLen, &best)
				for l := 0; l < ssse3Lanes; l++ {
					if int(best[l]) != wantAll[l] {
						t.Fatalf("ssse3 lane %d = %d, want %d (subLen=%d)", l, best[l], wantAll[l], subLen)
					}
				}
			}
			var best8 [asmLanes]int16
			scanGroup8SSE(&ks.btab[0], &w0[0], &hood[0], subLen, &best8)
			for l := 0; l < asmLanes; l++ {
				if int(best8[l]) != wantAll[l] {
					t.Fatalf("sse2 lane %d = %d, want %d (subLen=%d)", l, best8[l], wantAll[l], subLen)
				}
			}
		}

		ks := newBlockedScratch(m, subLen, threshold)
		f := ks.scanGroup4(w0, hood[:subLen*groupLanes], 0)
		want := wantAll[:groupLanes]
		band := m.MaxScore()
		if band < 0 {
			band = 0
		}
		anyWant := false
		for l := 0; l < groupLanes; l++ {
			got := f>>(l*16+15)&1 == 1
			if want[l] >= threshold && !got {
				t.Fatalf("lane %d: not flagged, scalar score %d ≥ threshold %d (subLen=%d)",
					l, want[l], threshold, subLen)
			}
			if got && want[l] < threshold-band {
				t.Fatalf("lane %d: flagged, scalar score %d < threshold %d − band %d (subLen=%d)",
					l, want[l], threshold, band, subLen)
			}
			if want[l] >= threshold {
				anyWant = true
			}
		}
		if f == 0 && anyWant {
			t.Fatalf("group skipped but a lane reaches threshold %d", threshold)
		}
	})
}

// BenchmarkStep2Kernel is the acceptance benchmark: single-core step-2
// throughput by kernel and neighbourhood length. The blocked kernel
// must reach ≥4x the scalar pairs/sec for N≥4. The workload is the
// paper's shape — a small query bank against a large subject bank
// (their chromosome-scale database), which is what makes IL1 lists
// long enough for the lanes to fill.
func BenchmarkStep2Kernel(b *testing.B) {
	for _, n := range []int{4, 8, 14} {
		ix0, ix1 := benchIndexes(b, 8, 200, 2000, 600, n)
		pairs := PairCount(ix0, ix1)
		for _, kernel := range []Kernel{KernelScalar, KernelBlocked} {
			b.Run(fmt.Sprintf("N=%d/%s", n, kernel), func(b *testing.B) {
				cfg := Config{Matrix: matrix.BLOSUM62, Threshold: 38, Workers: 1, Kernel: kernel}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := Run(ix0, ix1, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if res.Kernel != kernel {
						b.Fatalf("resolved kernel %v, want %v", res.Kernel, kernel)
					}
				}
				b.StopTimer()
				nsPerPair := float64(b.Elapsed().Nanoseconds()) / float64(pairs*int64(b.N))
				b.ReportMetric(nsPerPair, "ns/pair")
				b.ReportMetric(1e9/nsPerPair, "pairs/s")
			})
		}
	}
}
