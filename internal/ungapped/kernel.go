// Blocked, lane-parallel step-2 kernel (ROADMAP item 1).
//
// The scalar reference scores one (IL0, IL1) window pair at a time,
// performing one 24-stride substitution-table lookup per residue. The
// blocked kernel restructures the same computation the way MMseqs2's
// prefilter and Farrar's striped Smith-Waterman do:
//
//   - Query-residue score rows: the substitution table is re-laid
//     once per worker as 256-byte rows biased by +128 into uint8
//     (btab), so the inner loop turns one query residue into a row
//     base with a mask and a shift and then gathers subject scores
//     with single byte loads — no strided 24-wide lookups, no
//     per-pair sign handling, and the row padding makes every gather
//     index provably in bounds so the loop is bounds-check-free.
//   - Lane parallelism: on amd64 with SSSE3, 16 IL1 windows are
//     scored per pass — the windows are transposed into position-major
//     rows eight positions at a time and each position's 16 scores
//     come from two PSHUFB lookups into the 32-byte btab row, exactly
//     the table-shuffle trick MMseqs2's prefilter uses. On pre-SSSE3
//     amd64, 8 windows per pass with PINSRW score gathers (SSE2, the
//     amd64 baseline). Both asm paths compute the exact zero-clamped
//     running sum per int16 lane (kernel_amd64.s). Elsewhere, 4 IL1
//     windows are scored per pass using int16 lanes packed into one
//     uint64 word (portable SWAR — plain Go that any GOARCH compiles
//     well, sized so the whole loop state stays in registers), with
//     two window positions fused per step.
//   - Cache blocking: the bucket's IL1 windows are walked in blocks of
//     at most blockedTargetBytes of neighbourhood data, with the IL0
//     loop inside the block loop, so every IL0 window of the bucket
//     rescans a block while it is hot in L1/L2.
//
// Bit-exactness, asm path: the SSE2 lanes compute align.WindowScore
// exactly (saturating adds cannot saturate within the blockedFits
// bound), so surviving lanes are emitted directly with their exact
// scores.
//
// Bit-exactness, portable path: each lane runs a conservative
// relaxation of the scalar recurrence (the zero-clamped running sum)
// and flags lanes whose running bound ever reaches the threshold. Fusing two
// positions per step uses
//
//	max(max(s+p1, 0)+p2, 0) = max(s+p1+p2, p2, 0) ≤ max(s+p1+p2, C, 0)
//
// with C the matrix's maximum score; tracking q = s − C turns the
// right-hand side back into the plain clamp q' = max(q+p1+p2, 0),
// with q ≤ s ≤ q+C as an invariant. A lane's flag therefore fires
// for every window whose true best reaches the threshold (no hit is
// ever missed) and possibly for windows within C of it. Flagged
// lanes (rare at real thresholds) are rescored with
// align.WindowScore, whose exact threshold test filters the
// overshoot — that recheck in extract is load-bearing, not
// defensive. Hits are buffered per IL0 row and flushed in (i, j)
// order, so the blocked kernel is pinned bit-identical — values and
// order — to the scalar path. The SWAR arithmetic never carries
// across lanes as long as subLen·maxScore ≤ blockedMaxWindowScore;
// Run falls back to the scalar kernel when a workload violates that
// bound (see blockedFits).
package ungapped

import (
	"fmt"

	"seedblast/internal/align"
	"seedblast/internal/alphabet"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
)

// Kernel selects the step-2 inner-loop implementation.
type Kernel int

const (
	// KernelAuto picks the blocked kernel whenever the workload fits
	// its arithmetic bounds, the scalar kernel otherwise. The zero
	// value, so existing Configs keep working.
	KernelAuto Kernel = iota
	// KernelScalar is the reference implementation: one
	// align.WindowScore call per pair.
	KernelScalar
	// KernelBlocked is the lane-parallel kernel with re-laid score
	// rows and cache blocking. Requesting it explicitly still falls back
	// to scalar when the workload's score bound does not fit int16
	// lanes (results are bit-identical either way).
	KernelBlocked
)

// String returns the kernel's selector name as used by ParseKernel.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelScalar:
		return "scalar"
	case KernelBlocked:
		return "blocked"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// ParseKernel resolves a kernel selector name; the empty string means
// auto.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "scalar":
		return KernelScalar, nil
	case "blocked":
		return KernelBlocked, nil
	}
	return KernelAuto, fmt.Errorf("ungapped: unknown kernel %q (want auto, scalar or blocked)", s)
}

const (
	// btabRows and btabStride shape the biased score table: 32 ≥
	// NumAA rows of 256 bytes, both powers of two, so a row base is
	// (query residue & 31) << 8 and any subject byte indexes the row
	// without masking — base+byte ≤ 31·256+255 < len(btab), which the
	// compiler proves, making every gather bounds-check-free.
	btabRows   = 32
	btabStride = 256
	btabShift  = 8 // log2(btabStride), so row bases are a masked shift

	// groupLanes is the portable SWAR shape: 4 int16 lanes in one
	// uint64 word, 4 subject windows per group. One word keeps the
	// whole scan state (window pointers, running scores, flags) in
	// registers.
	groupLanes = 4

	// asmLanes is the group width of the SSE2 scanner (one XMM
	// register of int16 lanes), the amd64 fallback on pre-SSSE3 CPUs.
	asmLanes = 8

	// ssse3Lanes is the group width of the PSHUFB-based scanner (two
	// XMM registers of int16 lanes), the widest and fastest path. Also
	// the size of the shared best buffer, being the maximum width.
	ssse3Lanes = 16

	// blockedMaxWindowScore is the largest window score the int16
	// lanes can represent without the biased compare tricks carrying
	// across lanes: running scores plus two biased score bytes
	// (≤ 2×0xFF) must stay below 0x8000. Any real matrix is far below
	// this (BLOSUM62: subLen=32 × max 11 = 352).
	blockedMaxWindowScore = 0x7FFF - 0x1FF

	// blockedTargetBytes is the cache-block budget: IL1 windows are
	// walked in blocks whose neighbourhood data fits L1/L2 alongside
	// the score table, so every IL0 window of the bucket rescans a hot
	// block.
	blockedTargetBytes = 32 << 10

	// blockedMinIL1 is the per-bucket lane-occupancy heuristic:
	// buckets with fewer IL1 windows than this run the scalar
	// sub-path (identical results) rather than paying group setup
	// for mostly-empty lanes. The effective minimum is
	// max(blockedMinIL1, lanes) — see blockedScratch.minIL1 — so the
	// overlapped final group always has a full span of real windows
	// behind it whatever the lane width.
	blockedMinIL1 = 8
)

// SWAR lane masks: the sign bit, the +128 single-position bias and
// the +256 fused-pair bias replicated across the four int16 lanes of
// a word.
const (
	laneHi    uint64 = 0x8000_8000_8000_8000
	laneBias  uint64 = 0x0080_0080_0080_0080
	laneBias2 uint64 = 0x0100_0100_0100_0100
)

// blockedFits reports whether the blocked kernel's int16 lanes can
// represent every reachable window score for this matrix and window
// length. Window scores are zero-clamped running sums, so the maximum
// reachable value is subLen times the largest matrix score.
func blockedFits(m *matrix.Matrix, subLen int) bool {
	ms := m.MaxScore()
	if ms <= 0 {
		// No positive scores: every window scores 0, nothing to overflow.
		return true
	}
	return subLen*ms <= blockedMaxWindowScore
}

// resolve maps the configured kernel to the one that will actually
// run for this workload.
func (k Kernel) resolve(m *matrix.Matrix, subLen int) Kernel {
	switch k {
	case KernelScalar:
		return KernelScalar
	default: // KernelAuto, KernelBlocked, or out-of-range values
		if blockedFits(m, subLen) {
			return KernelBlocked
		}
		return KernelScalar
	}
}

// pendHit is a surviving (j, score) pair buffered per IL0 row so the
// blocked traversal can emit hits in the scalar (i, j) order.
type pendHit struct {
	j     int32
	score int32
}

// blockedScratch holds one worker's reusable kernel state: the biased
// score table and the per-row pending-hit buffers. It is not safe for
// concurrent use; Run gives each worker its own.
type blockedScratch struct {
	// btab is the substitution table biased by +128 into uint8 and
	// re-laid with btabStride-byte rows (see the btabRows comment for
	// why the padding makes the hot loop bounds-check-free).
	btab [btabRows * btabStride]uint8

	m         *matrix.Matrix
	subLen    int
	threshold int
	// thrNegMid and thrNegEnd are 0x8000 − clamp(flag threshold)
	// replicated across lanes: adding one to a lane's running value
	// sets the lane's bit 15 exactly when the value reached the
	// corresponding flag threshold, so each flag test is a single
	// add+or per word. The mid threshold checks the fused step's
	// intermediate sum q+p'1 (bias +128) so peaks at odd positions
	// are never missed; the end threshold checks the pair-end bound
	// q. Both shift down by the matrix maximum C because the lanes
	// track q = s − C.
	thrNegMid uint64
	thrNegEnd uint64
	// lanes is the group width: ssse3Lanes or asmLanes when an exact
	// architecture-specific scanner is in use, groupLanes for the
	// portable SWAR pass.
	lanes int
	// minIL1 is the effective per-bucket occupancy floor,
	// max(blockedMinIL1, lanes).
	minIL1 int
	// best receives the architecture-specific scanners' exact
	// per-lane window scores (the SSE2 scanner fills the first
	// asmLanes entries only).
	best [ssse3Lanes]int16
	// jBlock is the number of IL1 windows per cache block, a multiple
	// of lanes sized from blockedTargetBytes.
	jBlock int

	nodes []pendNode // pending-hit arena for the current bucket
	rows  [][2]int   // per-IL0-row [head,tail] node indexes, -1 when empty
}

// kernelLaneCap is a test hook: when nonzero, it caps the lane width
// picked by newBlockedScratch (groupLanes forces the portable SWAR
// pass, asmLanes the SSE2 scanner on amd64), so the narrower paths
// stay covered on machines whose hardware would pick a wider one.
var kernelLaneCap int

func newBlockedScratch(m *matrix.Matrix, subLen, threshold int) *blockedScratch {
	ks := &blockedScratch{
		m:         m,
		subLen:    subLen,
		threshold: threshold,
	}
	table := m.Table()
	for a := 0; a < alphabet.NumAA; a++ {
		for b := 0; b < alphabet.NumAA; b++ {
			ks.btab[a*btabStride+b] = uint8(int(table[a*alphabet.NumAA+b]) + 128)
		}
	}
	// The lanes track q = s − C (C = positive part of the matrix
	// maximum), so both flag thresholds shift down by C; the mid test
	// additionally sees the +128 single-byte bias. Clamped below to 0
	// (every position flags; extract still filters exactly) and above
	// to 0x7FFF (no position flags, which is right because such
	// thresholds are unreachable inside the lanes' score bound).
	c := m.MaxScore()
	if c < 0 {
		c = 0
	}
	pack := func(flagThr int) uint64 {
		if flagThr < 0 {
			flagThr = 0
		}
		if flagThr > 0x7FFF {
			flagThr = 0x7FFF
		}
		t := uint64(uint16(0x8000 - flagThr))
		return t | t<<16 | t<<32 | t<<48
	}
	ks.thrNegMid = pack(threshold - c + 128)
	ks.thrNegEnd = pack(threshold - c)

	ks.lanes = groupLanes
	if hasAsmKernel {
		ks.lanes = asmLanes
		if hasSSSE3 {
			ks.lanes = ssse3Lanes
		}
	}
	if kernelLaneCap != 0 && kernelLaneCap < ks.lanes {
		ks.lanes = kernelLaneCap
	}
	ks.minIL1 = blockedMinIL1
	if ks.lanes > ks.minIL1 {
		ks.minIL1 = ks.lanes
	}
	jb := blockedTargetBytes / subLen
	jb -= jb % ks.lanes
	if jb < ks.lanes {
		jb = ks.lanes
	}
	ks.jBlock = jb
	return ks
}

// scanGroup4 runs one IL0 window over 4 consecutive IL1
// windows starting at window base, two positions per step: each int16
// lane maintains the fused clamp recurrence q' = max(q + p1 + p2, 0)
// described in the package comment — a lower-shifted upper bound on
// the scalar zero-clamped running sum — and accumulates a per-lane
// flag recording whether the bound ever reached the (shifted)
// threshold, checking both the fused step's intermediate sum (the
// running score at the odd position) and its end value, so a peak at
// any position fires the flag. The flag is conservative: it fires
// for every window align.WindowScore would pass and possibly for
// windows whose best is within maxScore of the threshold; extract's
// exact rescore filters those.
//
// Lane math, for biased score bytes p' = p+128 ∈ [0, 255] and
// running bounds q ≤ blockedMaxWindowScore:
//
//	t  = q + p'1                  // true q + p1, + 128 bias; ≤ 0x7FFF
//	f |= t + (0x8000 - thrMid)    // bit 15 set iff t ≥ thrMid
//	u  = t + p'2                  // true q + p1 + p2, + 256 bias
//	d  = (u | 0x8000) - 256       // bit 15 set iff u ≥ 256 (bound ≥ 0)
//	m  = d & 0x8000
//	q' = d & (m - (m>>15))        // max(u-256, 0): m - (m>>15) is
//	                              // 0x7FFF where the lane stayed
//	                              // positive, 0 where not
//	f |= q' + (0x8000 - thrEnd)   // bit 15 set iff q' ≥ thrEnd
//
// An odd final position runs the same step with an all-zero second
// score (p'2 = 128, exact). No step carries across lanes because
// every intermediate stays within its 16 bits (see
// blockedMaxWindowScore). Bits of f other than each lane's bit 15
// are meaningless; the return masks them off.
func (ks *blockedScratch) scanGroup4(w0, hood1 []byte, base int) uint64 {
	subLen := ks.subLen
	btab := &ks.btab
	thrNegMid, thrNegEnd := ks.thrNegMid, ks.thrNegEnd

	// Exact-length window slices: [:subLen] re-slicing pins each
	// length to the loop bound so the k indexing below is check-free,
	// and gather indexes row+byte stay below len(btab) by the btabRows
	// padding, so the loop body has no bounds checks at all.
	h := hood1[base*subLen:]
	wa := h[:subLen]
	wb := h[subLen:][:subLen]
	wc := h[2*subLen:][:subLen]
	wd := h[3*subLen:][:subLen]
	w := w0[:subLen]

	var q, f uint64
	k := 0
	// The k < len(w)-1 guard form (rather than k+2 <= len(w)) is what
	// lets the compiler prove k and k+1 in bounds and drop every check
	// in the loop body.
	for ; k < len(w)-1; k += 2 {
		r0 := int(w[k]&31) << btabShift
		r1 := int(w[k+1]&31) << btabShift
		p1 := uint64(btab[r0+int(wa[k])]) | uint64(btab[r0+int(wb[k])])<<16 |
			uint64(btab[r0+int(wc[k])])<<32 | uint64(btab[r0+int(wd[k])])<<48
		p2 := uint64(btab[r1+int(wa[k+1])]) | uint64(btab[r1+int(wb[k+1])])<<16 |
			uint64(btab[r1+int(wc[k+1])])<<32 | uint64(btab[r1+int(wd[k+1])])<<48

		t := q + p1
		f |= t + thrNegMid
		d := ((t + p2) | laneHi) - laneBias2
		m := d & laneHi
		q = d & (m - (m >> 15))
		f |= q + thrNegEnd
	}
	if k < len(w) {
		r0 := int(w[k]&31) << btabShift
		p1 := uint64(btab[r0+int(wa[k])]) | uint64(btab[r0+int(wb[k])])<<16 |
			uint64(btab[r0+int(wc[k])])<<32 | uint64(btab[r0+int(wd[k])])<<48

		d := ((q + p1 + laneBias) | laneHi) - laneBias2
		m := d & laneHi
		q = d & (m - (m >> 15))
		f |= q + thrNegEnd
	}
	return f & laneHi
}

// scanBucket scores every (IL0, IL1) pair of one bucket with the
// blocked kernel and appends surviving hits to *hits in exactly the
// scalar kernel's (i, j) order.
func (ks *blockedScratch) scanBucket(key uint32, il0 []index.Entry, hood0 []byte, il1 []index.Entry, hood1 []byte, hits *[]Hit) {
	subLen := ks.subLen
	n0, n1 := len(il0), len(il1)

	ks.nodes = ks.nodes[:0]
	if cap(ks.rows) < n0 {
		ks.rows = make([][2]int, n0)
	}
	ks.rows = ks.rows[:n0]
	for i := range ks.rows {
		ks.rows[i] = [2]int{-1, -1}
	}

	// Blocks are the outer loop so each block of subject windows is
	// rescanned by every IL0 window while hot. Hits from different
	// rows interleave in the arena, but each row's chain stays sorted
	// by j (blocks advance in ascending j0; groups and lanes advance
	// in ascending j), so the per-row flush reproduces the scalar
	// (i, j) emission order exactly.
	for j0 := 0; j0 < n1; j0 += ks.jBlock {
		jn := n1 - j0
		if jn > ks.jBlock {
			jn = ks.jBlock
		}
		lanes := ks.lanes
		for i := 0; i < n0; i++ {
			w0 := hood0[i*subLen : (i+1)*subLen]
			g := 0
			for ; g+lanes <= jn; g += lanes {
				ks.scanSpan(i, w0, hood1, j0+g, 0)
			}
			if g < jn {
				// Overlapped final group: re-span the last lanes
				// windows ending at the block edge and skip the lanes
				// already scanned — possibly reaching into the previous
				// block, whose windows this row has already scored.
				// n1 ≥ minIL1 ≥ lanes keeps the span in bounds.
				base := j0 + jn - lanes
				ks.scanSpan(i, w0, hood1, base, j0+g-base)
			}
		}
	}

	ks.flush(key, il0, il1, hits)
}

// scanSpan scores one lanes-wide group of IL1 windows starting at
// window base against IL0 row i and queues surviving windows, ignoring
// the first skip lanes (already scanned by earlier groups). The asm
// scanner returns exact scores, so its lanes are emitted directly; the
// portable pass returns conservative flags that extract rescores.
func (ks *blockedScratch) scanSpan(i int, w0, hood1 []byte, base, skip int) {
	switch ks.lanes {
	case ssse3Lanes:
		scanGroup16SSSE3(&ks.btab[0], &w0[0], &hood1[base*ks.subLen], ks.subLen, &ks.best)
	case asmLanes:
		scanGroup8SSE(&ks.btab[0], &w0[0], &hood1[base*ks.subLen], ks.subLen, (*[asmLanes]int16)(ks.best[:asmLanes]))
	default:
		if f := ks.scanGroup4(w0, hood1, base); f != 0 {
			ks.extract(i, w0, hood1, base, skip, f)
		}
		return
	}
	for l := skip; l < ks.lanes; l++ {
		if score := int(ks.best[l]); score >= ks.threshold {
			ks.pendRow(i, pendHit{j: int32(base + l), score: int32(score)})
		}
	}
}

// extract rescores the flagged lanes of one group with the scalar
// reference and queues threshold-passing windows on the row's pending
// chain. The exact score test here is what turns the flag pass's
// conservative over-approximation into bit-identical results. The
// first skip lanes were already scanned by earlier groups and are
// ignored.
func (ks *blockedScratch) extract(i int, w0, hood1 []byte, base, skip int, f uint64) {
	subLen := ks.subLen
	for l := skip; l < groupLanes; l++ {
		if f>>(l*16+15)&1 == 0 {
			continue
		}
		j := base + l
		w1 := hood1[j*subLen : (j+1)*subLen]
		if score := align.WindowScore(w0, w1, ks.m); score >= ks.threshold {
			ks.pendRow(i, pendHit{j: int32(j), score: int32(score)})
		}
	}
}

// Row-grouped pending storage. Hits for one row arrive in ascending j
// across blocks but interleaved with other rows; rows chains them.
type pendNode struct {
	hit  pendHit
	next int32 // index of the next hit of the same row, -1 at the tail
}

func (ks *blockedScratch) pendRow(i int, h pendHit) {
	n := int32(len(ks.nodes))
	ks.nodes = append(ks.nodes, pendNode{hit: h, next: -1})
	if ks.rows[i][0] < 0 {
		ks.rows[i][0] = int(n)
	} else {
		ks.nodes[ks.rows[i][1]].next = n
	}
	ks.rows[i][1] = int(n)
}

// flush emits the bucket's pending hits in (i, j) order.
func (ks *blockedScratch) flush(key uint32, il0, il1 []index.Entry, hits *[]Hit) {
	subLen := int32(ks.subLen)
	for i := range ks.rows[:len(il0)] {
		for n := int32(ks.rows[i][0]); n >= 0; {
			nd := &ks.nodes[n]
			*hits = append(*hits, Hit{
				Key:    key,
				E0:     il0[i],
				E1:     il1[nd.hit.j],
				Score:  nd.hit.score,
				SubLen: subLen,
			})
			n = nd.next
		}
	}
	ks.nodes = ks.nodes[:0]
}
