// Package ungapped implements step 2 of the paper's algorithm on the
// CPU: for every seed key, every pair formed from the two index lists
// IL0 and IL1 is scored over its W+2N neighbourhood, and pairs whose
// ungapped score reaches the threshold survive to the gapped stage.
// This is the paper's critical section (97% of the software profile,
// Table 1) and the computation the PSC operator parallelises; the
// hardware simulator must produce bit-identical hits to this engine.
package ungapped

import (
	"fmt"
	"runtime"
	"sync"

	"seedblast/internal/align"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
)

// Hit is a surviving seed pair: an occurrence in bank 0 and one in
// bank 1 whose neighbourhood score reached the threshold.
type Hit struct {
	Key    uint32
	E0     index.Entry
	E1     index.Entry
	Score  int32
	SubLen int32 // neighbourhood window length, for downstream staging
}

// Config parameterises the ungapped stage.
type Config struct {
	Matrix    *matrix.Matrix
	Threshold int    // minimal window score to survive
	Workers   int    // 0 means GOMAXPROCS
	Kernel    Kernel // inner-loop implementation (default KernelAuto)
}

// Result is the outcome of step 2.
type Result struct {
	Hits   []Hit
	Pairs  int64  // total K0×K1 pairs scored, the stage's work measure
	Kernel Kernel // the kernel that actually ran (never KernelAuto)
}

// Run executes step 2 over two indexes built with the same seed model
// and neighbourhood. Hits are returned in deterministic order (by key,
// then IL0 position, then IL1 position) regardless of worker count.
func Run(ix0, ix1 *index.Index, cfg Config) (*Result, error) {
	if err := validate(ix0, ix1, &cfg); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	space := ix0.Model().KeySpace()
	if workers > space {
		workers = space
	}
	kernel := cfg.Kernel.resolve(cfg.Matrix, ix0.SubLen())

	// Static partition of the key space: each worker owns a contiguous
	// chunk, appends hits locally, and chunks are concatenated in order,
	// keeping the result deterministic.
	chunks := make([]chunk, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := space * w / workers
			hi := space * (w + 1) / workers
			chunks[w] = scanKeys(ix0, ix1, uint32(lo), uint32(hi), &cfg, kernel)
		}(w)
	}
	wg.Wait()

	res := &Result{Kernel: kernel}
	total := 0
	for _, c := range chunks {
		total += len(c.hits)
		res.Pairs += c.pairs
	}
	// One exact allocation for the merged hits instead of growing by
	// repeated append.
	res.Hits = make([]Hit, 0, total)
	for _, c := range chunks {
		res.Hits = append(res.Hits, c.hits...)
	}
	return res, nil
}

func validate(ix0, ix1 *index.Index, cfg *Config) error {
	if ix0.Model().KeySpace() != ix1.Model().KeySpace() ||
		ix0.Model().Width() != ix1.Model().Width() {
		return fmt.Errorf("ungapped: indexes built with different seed models (%s vs %s)",
			ix0.Model().Name(), ix1.Model().Name())
	}
	if ix0.SubLen() != ix1.SubLen() {
		return fmt.Errorf("ungapped: neighbourhood lengths differ (%d vs %d)",
			ix0.SubLen(), ix1.SubLen())
	}
	if cfg.Matrix == nil {
		return fmt.Errorf("ungapped: matrix is required")
	}
	if cfg.Threshold <= 0 {
		return fmt.Errorf("ungapped: threshold must be positive, got %d", cfg.Threshold)
	}
	return nil
}

// chunk is one worker's share of step 2: locally-appended hits plus
// the pair count.
type chunk struct {
	hits  []Hit
	pairs int64
}

// scanKeys runs the paper's nested loops over keys [lo, hi) with the
// resolved kernel (never KernelAuto).
func scanKeys(ix0, ix1 *index.Index, lo, hi uint32, cfg *Config, kernel Kernel) (c chunk) {
	subLen := ix0.SubLen()

	// Pre-size the chunk's hit slice from a bucket-density estimate:
	// the expected pair count for uniformly spread buckets is
	// e0/space × e1/space pairs per key. With the paper's thresholds a
	// small fraction of scored pairs survive, so 1/128 of that
	// (clamped) avoids most of the append regrowth without
	// overcommitting memory — and the O(1) estimate keeps the hot
	// per-op path free of an extra pass over the key space.
	space := int64(ix0.Model().KeySpace())
	chunkPairs := int64(ix0.NumEntries()) * int64(ix1.NumEntries()) / space
	chunkPairs = chunkPairs * int64(hi-lo) / space
	if chunkPairs > 0 {
		est := chunkPairs / 128
		if est < 16 {
			est = 16
		}
		if est > 1<<20 {
			est = 1 << 20
		}
		c.hits = make([]Hit, 0, est)
	}

	var ks *blockedScratch
	if kernel == KernelBlocked {
		ks = newBlockedScratch(cfg.Matrix, subLen, cfg.Threshold)
	}

	for k := lo; k < hi; k++ {
		// Length-only probes first: most keys have an empty side, and
		// skipping them avoids materialising both bucket views.
		if ix0.BucketLen(k) == 0 || ix1.BucketLen(k) == 0 {
			continue
		}
		il0, hood0 := ix0.Bucket(k)
		il1, hood1 := ix1.Bucket(k)
		c.pairs += int64(len(il0)) * int64(len(il1))
		if ks != nil && len(il1) >= ks.minIL1 {
			ks.scanBucket(k, il0, hood0, il1, hood1, &c.hits)
			continue
		}
		// Scalar reference path; also used by the blocked kernel for
		// small buckets where lane occupancy would be poor.
		for i := range il0 {
			w0 := hood0[i*subLen : (i+1)*subLen]
			for j := range il1 {
				w1 := hood1[j*subLen : (j+1)*subLen]
				score := align.WindowScore(w0, w1, cfg.Matrix)
				if score >= cfg.Threshold {
					c.hits = append(c.hits, Hit{
						Key:    k,
						E0:     il0[i],
						E1:     il1[j],
						Score:  int32(score),
						SubLen: int32(subLen),
					})
				}
			}
		}
	}
	return c
}

// PairCount returns the total number of neighbourhood scorings step 2
// must perform for the two indexes — Σk |IL0k|·|IL1k| — without
// running them. The hardware simulator uses it for cross-checking.
func PairCount(ix0, ix1 *index.Index) int64 {
	var n int64
	space := ix0.Model().KeySpace()
	for k := 0; k < space; k++ {
		n += int64(ix0.BucketLen(uint32(k))) * int64(ix1.BucketLen(uint32(k)))
	}
	return n
}
