// Package ungapped implements step 2 of the paper's algorithm on the
// CPU: for every seed key, every pair formed from the two index lists
// IL0 and IL1 is scored over its W+2N neighbourhood, and pairs whose
// ungapped score reaches the threshold survive to the gapped stage.
// This is the paper's critical section (97% of the software profile,
// Table 1) and the computation the PSC operator parallelises; the
// hardware simulator must produce bit-identical hits to this engine.
package ungapped

import (
	"fmt"
	"runtime"
	"sync"

	"seedblast/internal/align"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
)

// Hit is a surviving seed pair: an occurrence in bank 0 and one in
// bank 1 whose neighbourhood score reached the threshold.
type Hit struct {
	Key    uint32
	E0     index.Entry
	E1     index.Entry
	Score  int32
	SubLen int32 // neighbourhood window length, for downstream staging
}

// Config parameterises the ungapped stage.
type Config struct {
	Matrix    *matrix.Matrix
	Threshold int // minimal window score to survive
	Workers   int // 0 means GOMAXPROCS
}

// Result is the outcome of step 2.
type Result struct {
	Hits  []Hit
	Pairs int64 // total K0×K1 pairs scored, the stage's work measure
}

// Run executes step 2 over two indexes built with the same seed model
// and neighbourhood. Hits are returned in deterministic order (by key,
// then IL0 position, then IL1 position) regardless of worker count.
func Run(ix0, ix1 *index.Index, cfg Config) (*Result, error) {
	if err := validate(ix0, ix1, &cfg); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	space := ix0.Model().KeySpace()
	if workers > space {
		workers = space
	}

	// Static partition of the key space: each worker owns a contiguous
	// chunk, appends hits locally, and chunks are concatenated in order,
	// keeping the result deterministic.
	type chunk struct {
		hits  []Hit
		pairs int64
	}
	chunks := make([]chunk, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := space * w / workers
			hi := space * (w + 1) / workers
			chunks[w] = scanKeys(ix0, ix1, uint32(lo), uint32(hi), &cfg)
		}(w)
	}
	wg.Wait()

	res := &Result{}
	for _, c := range chunks {
		res.Hits = append(res.Hits, c.hits...)
		res.Pairs += c.pairs
	}
	return res, nil
}

func validate(ix0, ix1 *index.Index, cfg *Config) error {
	if ix0.Model().KeySpace() != ix1.Model().KeySpace() ||
		ix0.Model().Width() != ix1.Model().Width() {
		return fmt.Errorf("ungapped: indexes built with different seed models (%s vs %s)",
			ix0.Model().Name(), ix1.Model().Name())
	}
	if ix0.SubLen() != ix1.SubLen() {
		return fmt.Errorf("ungapped: neighbourhood lengths differ (%d vs %d)",
			ix0.SubLen(), ix1.SubLen())
	}
	if cfg.Matrix == nil {
		return fmt.Errorf("ungapped: matrix is required")
	}
	if cfg.Threshold <= 0 {
		return fmt.Errorf("ungapped: threshold must be positive, got %d", cfg.Threshold)
	}
	return nil
}

// scanKeys runs the paper's nested loops over keys [lo, hi).
func scanKeys(ix0, ix1 *index.Index, lo, hi uint32, cfg *Config) (c struct {
	hits  []Hit
	pairs int64
}) {
	subLen := ix0.SubLen()
	for k := lo; k < hi; k++ {
		il0, hood0 := ix0.Bucket(k)
		if len(il0) == 0 {
			continue
		}
		il1, hood1 := ix1.Bucket(k)
		if len(il1) == 0 {
			continue
		}
		c.pairs += int64(len(il0)) * int64(len(il1))
		for i := range il0 {
			w0 := hood0[i*subLen : (i+1)*subLen]
			for j := range il1 {
				w1 := hood1[j*subLen : (j+1)*subLen]
				score := align.WindowScore(w0, w1, cfg.Matrix)
				if score >= cfg.Threshold {
					c.hits = append(c.hits, Hit{
						Key:    k,
						E0:     il0[i],
						E1:     il1[j],
						Score:  int32(score),
						SubLen: int32(subLen),
					})
				}
			}
		}
	}
	return c
}

// PairCount returns the total number of neighbourhood scorings step 2
// must perform for the two indexes — Σk |IL0k|·|IL1k| — without
// running them. The hardware simulator uses it for cross-checking.
func PairCount(ix0, ix1 *index.Index) int64 {
	var n int64
	space := ix0.Model().KeySpace()
	for k := 0; k < space; k++ {
		n += int64(ix0.BucketLen(uint32(k))) * int64(ix1.BucketLen(uint32(k)))
	}
	return n
}
