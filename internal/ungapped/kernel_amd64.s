// Architecture-specific fast paths for the blocked step-2 kernel.
// Both scanners keep one int16 lane per IL1 window and compute the
// exact zero-clamped running sum (Kadane) via saturating adds and
// maxima: PADDSW never saturates inside the blockedMaxWindowScore
// bound, PMAXSW against zero implements the clamp, and PMAXSW into
// the best register tracks the running maximum. Unlike the portable
// SWAR kernel the lanes hold the exact align.WindowScore value, so
// the caller reads exact scores from best and needs no rescore pass.
//
//   - scanGroup16SSSE3: 16 windows per group. Subject windows are
//     transposed 8 positions at a time into position-major rows with
//     a PUNPCK network, then each position's 16 scores come from two
//     PSHUFB lookups into the 32-byte btab row (low/high half of the
//     residue range selected by biasing the index bytes), replacing
//     the scalar gather chains entirely. Needs SSSE3 (PSHUFB).
//   - scanGroup8SSE: 8 windows per group, scores gathered byte by
//     byte with PINSRW chains. SSE2 only, the amd64 baseline — the
//     fallback on pre-SSSE3 CPUs.

#include "textflag.h"

// func cpuidSSSE3() bool
//
// CPUID leaf 1, ECX bit 9. SSE2 needs no check (amd64 baseline);
// SSSE3 does.
TEXT ·cpuidSSSE3(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	SHRL $9, CX
	ANDL $1, CX
	MOVB CX, ret+0(FP)
	RET

// func scanGroup16SSSE3(btab *uint8, w0 *byte, win *byte, subLen int, best *[16]int16)
//
// btab: 32×256-byte biased score table (score+128 as uint8)
// w0:   query window, subLen residues
// win:  first of 16 consecutive subject windows, each subLen bytes
// best: out: per-window maximum zero-clamped running sum
//
// Register plan: AX=btab, BX=w0 (advances), CX=subLen (also the
// addressing scale), SI/DI/R8/R9/R10/R11 = six advancing base
// pointers covering the 16 window streams with {0, CX, 2·CX} scaled
// addressing (rows 0-2, 3-5, 6-8, 9-11, 12-14, 15), DX = loop
// counter, R12/R13 = temps, R15 = transposed-tile buffer.
//
// XMM plan: X0/X8 = running scores (windows 0-7 / 8-15), X5/X9 =
// best so far, X12 = zero, X13 = +128 word bias, X11 = 0x10 bytes,
// X10 = 0x70 bytes (rebuilt per tile; the transpose uses it as a
// temp), X1-X4/X6/X7/X14/X15 = transpose working set.
TEXT ·scanGroup16SSSE3(SB), NOSPLIT, $136-40
	MOVQ btab+0(FP), AX
	MOVQ w0+8(FP), BX
	MOVQ win+16(FP), SI
	MOVQ subLen+24(FP), CX

	LEAQ (SI)(CX*2), DI
	ADDQ CX, DI         // DI  = win +  3·subLen
	LEAQ (DI)(CX*2), R8
	ADDQ CX, R8         // R8  = win +  6·subLen
	LEAQ (R8)(CX*2), R9
	ADDQ CX, R9         // R9  = win +  9·subLen
	LEAQ (R9)(CX*2), R10
	ADDQ CX, R10        // R10 = win + 12·subLen
	LEAQ (R10)(CX*2), R11
	ADDQ CX, R11        // R11 = win + 15·subLen

	PXOR X0, X0
	PXOR X5, X5
	PXOR X8, X8
	PXOR X9, X9
	PXOR X12, X12
	MOVQ $0x0080008000800080, R12
	MOVQ R12, X13
	PUNPCKLQDQ X13, X13
	MOVQ $0x1010101010101010, R12
	MOVQ R12, X11
	PUNPCKLQDQ X11, X11
	MOVQ $0x7070707070707070, R12
	MOVQ R12, X10
	PUNPCKLQDQ X10, X10

	LEAQ tile-136(SP), R15

	MOVQ CX, DX
	SHRQ $3, DX
	JZ   tail           // subLen < 8: tail positions only
	MOVQ DX, cnt-8(SP)

tileLoop:
	// Transpose 16 windows × 8 positions into 8 position-major rows
	// of 16 residue bytes (row p, byte x = window x, position p).
	// Stage 1: byte-interleave window pairs (8 MOVQ-loaded pairs).
	MOVQ (SI), X1
	MOVQ (SI)(CX*1), X10
	PUNPCKLBW X10, X1   // w0,w1
	MOVQ (SI)(CX*2), X2
	MOVQ (DI), X10
	PUNPCKLBW X10, X2   // w2,w3
	MOVQ (DI)(CX*1), X3
	MOVQ (DI)(CX*2), X10
	PUNPCKLBW X10, X3   // w4,w5
	MOVQ (R8), X4
	MOVQ (R8)(CX*1), X10
	PUNPCKLBW X10, X4   // w6,w7
	MOVQ (R8)(CX*2), X6
	MOVQ (R9), X10
	PUNPCKLBW X10, X6   // w8,w9
	MOVQ (R9)(CX*1), X7
	MOVQ (R9)(CX*2), X10
	PUNPCKLBW X10, X7   // w10,w11
	MOVQ (R10), X14
	MOVQ (R10)(CX*1), X10
	PUNPCKLBW X10, X14  // w12,w13
	MOVQ (R10)(CX*2), X15
	MOVQ (R11), X10
	PUNPCKLBW X10, X15  // w14,w15

	// Stage 2: word-interleave → dwords of 4 windows per position.
	MOVOU X1, X10
	PUNPCKLWL X2, X1    // X1  = pos0-3 × win0-3
	PUNPCKHWL X2, X10   // X10 = pos4-7 × win0-3
	MOVOU X3, X2
	PUNPCKLWL X4, X3    // X3  = pos0-3 × win4-7
	PUNPCKHWL X4, X2    // X2  = pos4-7 × win4-7
	MOVOU X6, X4
	PUNPCKLWL X7, X6    // X6  = pos0-3 × win8-11
	PUNPCKHWL X7, X4    // X4  = pos4-7 × win8-11
	MOVOU X14, X7
	PUNPCKLWL X15, X14  // X14 = pos0-3 × win12-15
	PUNPCKHWL X15, X7   // X7  = pos4-7 × win12-15

	// Stage 3: dword-interleave → qwords of 8 windows per position.
	MOVOU X1, X15
	PUNPCKLLQ X3, X1    // X1  = pos0-1 × win0-7
	PUNPCKHLQ X3, X15   // X15 = pos2-3 × win0-7
	MOVOU X10, X3
	PUNPCKLLQ X2, X10   // X10 = pos4-5 × win0-7
	PUNPCKHLQ X2, X3    // X3  = pos6-7 × win0-7
	MOVOU X6, X2
	PUNPCKLLQ X14, X6   // X6  = pos0-1 × win8-15
	PUNPCKHLQ X14, X2   // X2  = pos2-3 × win8-15
	MOVOU X4, X14
	PUNPCKLLQ X7, X4    // X4  = pos4-5 × win8-15
	PUNPCKHLQ X7, X14   // X14 = pos6-7 × win8-15

	// Stage 4: qword-interleave → full 16-window rows, spilled to the
	// tile buffer (registers cannot hold 8 rows plus the scan state).
	MOVOU X1, X7
	PUNPCKLQDQ X6, X1   // pos0
	PUNPCKHQDQ X6, X7   // pos1
	MOVOU X1, (R15)
	MOVOU X7, 16(R15)
	MOVOU X15, X6
	PUNPCKLQDQ X2, X15  // pos2
	PUNPCKHQDQ X2, X6   // pos3
	MOVOU X15, 32(R15)
	MOVOU X6, 48(R15)
	MOVOU X10, X2
	PUNPCKLQDQ X4, X10  // pos4
	PUNPCKHQDQ X4, X2   // pos5
	MOVOU X10, 64(R15)
	MOVOU X2, 80(R15)
	MOVOU X3, X4
	PUNPCKLQDQ X14, X3  // pos6
	PUNPCKHQDQ X14, X4  // pos7
	MOVOU X3, 96(R15)
	MOVOU X4, 112(R15)

	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11

	// The transpose used X10 as a temp; rebuild the 0x70 byte bias.
	MOVQ $0x7070707070707070, R12
	MOVQ R12, X10
	PUNPCKLQDQ X10, X10

	MOVQ R15, R13
	MOVQ $8, DX

posLoop:
	// Biased score row for this query residue; the row's 32 leading
	// bytes are the scores for subject residues 0-31.
	MOVBLZX (BX), R12
	INCQ    BX
	ANDL    $31, R12
	SHLL    $8, R12
	ADDQ    AX, R12
	MOVOU   (R12), X6   // row bytes  0-15
	MOVOU   16(R12), X7 // row bytes 16-31

	// 16 subject residues at this position, one per byte lane. Each
	// PSHUFB control byte with bit 7 set yields 0, so biasing the
	// index selects which half answers: idx+0x70 keeps residues 0-15
	// (bit 7 sets exactly when idx ≥ 16), idx−0x10 keeps 16-31.
	MOVOU (R13), X1
	ADDQ  $16, R13
	MOVOU X1, X2
	PADDB X10, X1
	PSUBB X11, X2
	PSHUFB X1, X6
	PSHUFB X2, X7
	POR   X7, X6        // 16 biased scores, one byte per window

	// Widen to the two int16 lane sets, drop the bias, and run the
	// exact clamped-sum recurrence per half.
	MOVOU     X6, X7
	PUNPCKLBW X12, X6   // windows 0-7
	PUNPCKHBW X12, X7   // windows 8-15
	PSUBW  X13, X6
	PSUBW  X13, X7
	PADDSW X6, X0
	PADDSW X7, X8
	PMAXSW X12, X0
	PMAXSW X12, X8
	PMAXSW X0, X5
	PMAXSW X8, X9

	DECQ DX
	JNZ  posLoop

	DECQ cnt-8(SP)
	JNZ  tileLoop

tail:
	MOVQ CX, DX
	ANDQ $7, DX
	JZ   done
	CMPQ DX, $4
	JLT  tailScalar

	// Four or more positions left: run one half-height tile (16
	// windows × 4 positions, MOVL loads feeding the same PUNPCK
	// network) so the common subLen ≡ 4 (mod 8) shapes never touch
	// the byte-by-byte gather path below.
	MOVQ DX, cnt-8(SP)

	MOVL (SI), X1
	MOVL (SI)(CX*1), X10
	PUNPCKLBW X10, X1   // w0,w1
	MOVL (SI)(CX*2), X2
	MOVL (DI), X10
	PUNPCKLBW X10, X2   // w2,w3
	MOVL (DI)(CX*1), X3
	MOVL (DI)(CX*2), X10
	PUNPCKLBW X10, X3   // w4,w5
	MOVL (R8), X4
	MOVL (R8)(CX*1), X10
	PUNPCKLBW X10, X4   // w6,w7
	MOVL (R8)(CX*2), X6
	MOVL (R9), X10
	PUNPCKLBW X10, X6   // w8,w9
	MOVL (R9)(CX*1), X7
	MOVL (R9)(CX*2), X10
	PUNPCKLBW X10, X7   // w10,w11
	MOVL (R10), X14
	MOVL (R10)(CX*1), X10
	PUNPCKLBW X10, X14  // w12,w13
	MOVL (R10)(CX*2), X15
	MOVL (R11), X10
	PUNPCKLBW X10, X15  // w14,w15

	PUNPCKLWL X2, X1    // X1  = pos0-3 × win0-3
	PUNPCKLWL X4, X3    // X3  = pos0-3 × win4-7
	PUNPCKLWL X7, X6    // X6  = pos0-3 × win8-11
	PUNPCKLWL X15, X14  // X14 = pos0-3 × win12-15

	MOVOU X1, X2
	PUNPCKLLQ X3, X1    // X1 = pos0-1 × win0-7
	PUNPCKHLQ X3, X2    // X2 = pos2-3 × win0-7
	MOVOU X6, X7
	PUNPCKLLQ X14, X6   // X6 = pos0-1 × win8-15
	PUNPCKHLQ X14, X7   // X7 = pos2-3 × win8-15

	MOVOU X1, X3
	PUNPCKLQDQ X6, X1   // pos0
	PUNPCKHQDQ X6, X3   // pos1
	MOVOU X1, (R15)
	MOVOU X3, 16(R15)
	MOVOU X2, X3
	PUNPCKLQDQ X7, X2   // pos2
	PUNPCKHQDQ X7, X3   // pos3
	MOVOU X2, 32(R15)
	MOVOU X3, 48(R15)

	ADDQ $4, SI
	ADDQ $4, DI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11

	MOVQ $0x7070707070707070, R12
	MOVQ R12, X10
	PUNPCKLQDQ X10, X10

	MOVQ R15, R13
	MOVQ $4, DX

pos4Loop:
	// Same per-position body as posLoop, over the 4 tile rows.
	MOVBLZX (BX), R12
	INCQ    BX
	ANDL    $31, R12
	SHLL    $8, R12
	ADDQ    AX, R12
	MOVOU   (R12), X6
	MOVOU   16(R12), X7

	MOVOU (R13), X1
	ADDQ  $16, R13
	MOVOU X1, X2
	PADDB X10, X1
	PSUBB X11, X2
	PSHUFB X1, X6
	PSHUFB X2, X7
	POR   X7, X6

	MOVOU     X6, X7
	PUNPCKLBW X12, X6
	PUNPCKHBW X12, X7
	PSUBW  X13, X6
	PSUBW  X13, X7
	PADDSW X6, X0
	PADDSW X7, X8
	PMAXSW X12, X0
	PMAXSW X12, X8
	PMAXSW X0, X5
	PMAXSW X8, X9

	DECQ DX
	JNZ  pos4Loop

	MOVQ cnt-8(SP), DX
	SUBQ $4, DX
	JZ   done

tailScalar:
	// Remaining subLen%4 positions: gather scores byte by byte into
	// word lanes, as in scanGroup8SSE, once per 8-window half.

tailLoop:
	MOVBLZX (BX), R13
	INCQ    BX
	ANDL    $31, R13
	SHLL    $8, R13
	ADDQ    AX, R13

	// Windows 0-7 into X1.
	MOVBLZX (SI), R12
	MOVBLZX (R13)(R12*1), R12
	MOVQ    R12, X1
	MOVBLZX (SI)(CX*1), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $1, R12, X1
	MOVBLZX (SI)(CX*2), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $2, R12, X1
	MOVBLZX (DI), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $3, R12, X1
	MOVBLZX (DI)(CX*1), R12
	MOVBLZX (R13)(R12*1), R12
	MOVQ    R12, X2
	MOVBLZX (DI)(CX*2), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $1, R12, X2
	MOVBLZX (R8), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $2, R12, X2
	MOVBLZX (R8)(CX*1), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $3, R12, X2
	PUNPCKLQDQ X2, X1
	PSUBW  X13, X1
	PADDSW X1, X0
	PMAXSW X12, X0
	PMAXSW X0, X5

	// Windows 8-15 into X1.
	MOVBLZX (R8)(CX*2), R12
	MOVBLZX (R13)(R12*1), R12
	MOVQ    R12, X1
	MOVBLZX (R9), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $1, R12, X1
	MOVBLZX (R9)(CX*1), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $2, R12, X1
	MOVBLZX (R9)(CX*2), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $3, R12, X1
	MOVBLZX (R10), R12
	MOVBLZX (R13)(R12*1), R12
	MOVQ    R12, X2
	MOVBLZX (R10)(CX*1), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $1, R12, X2
	MOVBLZX (R10)(CX*2), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $2, R12, X2
	MOVBLZX (R11), R12
	MOVBLZX (R13)(R12*1), R12
	PINSRW  $3, R12, X2
	PUNPCKLQDQ X2, X1
	PSUBW  X13, X1
	PADDSW X1, X8
	PMAXSW X12, X8
	PMAXSW X8, X9

	INCQ SI
	INCQ DI
	INCQ R8
	INCQ R9
	INCQ R10
	INCQ R11

	DECQ DX
	JNZ  tailLoop

done:
	MOVQ  best+32(FP), R12
	MOVOU X5, (R12)
	MOVOU X9, 16(R12)
	RET

// func scanGroup8SSE(btab *uint8, w0 *byte, win *byte, subLen int, best *[8]int16)
//
// btab: 32×256-byte biased score table (score+128 as uint8)
// w0:   query window, subLen residues
// win:  first of 8 consecutive subject windows, each subLen bytes
// best: out: per-window maximum zero-clamped running sum
TEXT ·scanGroup8SSE(SB), NOSPLIT, $0-40
	MOVQ btab+0(FP), AX
	MOVQ w0+8(FP), BX
	MOVQ win+16(FP), SI
	MOVQ subLen+24(FP), CX

	// Three advancing base pointers cover the 8 window streams with
	// {0, CX, 2·CX} scaled addressing: SI → windows 0-2, DI → 3-5,
	// R8 → 6-7.
	LEAQ (SI)(CX*2), DI
	ADDQ CX, DI
	LEAQ (DI)(CX*2), R8
	ADDQ CX, R8

	// X0 = running scores (zero-clamped), X5 = best so far, X4 = 0,
	// X3 = the +128 byte bias replicated across lanes.
	PXOR X0, X0
	PXOR X4, X4
	PXOR X5, X5
	MOVQ $0x0080008000800080, R11
	MOVQ R11, X3
	PUNPCKLQDQ X3, X3

	MOVQ CX, R9 // remaining positions

loop:
	// Biased score row for this query residue.
	MOVBLZX (BX), R10
	INCQ    BX
	ANDL    $31, R10
	SHLL    $8, R10
	ADDQ    AX, R10

	// Gather the 8 subject scores of this position: lanes 0-3 built
	// in X1, lanes 4-7 in X2, merged with one unpack. The first write
	// of each half is a full-register MOVQ so neither half carries a
	// false dependency on the previous iteration's value, and the two
	// halves' insert chains run in parallel.
	MOVBLZX (SI), R11
	MOVBLZX (R10)(R11*1), R11
	MOVQ    R11, X1
	MOVBLZX (SI)(CX*1), R12
	MOVBLZX (R10)(R12*1), R12
	PINSRW  $1, R12, X1
	MOVBLZX (SI)(CX*2), R11
	MOVBLZX (R10)(R11*1), R11
	PINSRW  $2, R11, X1
	MOVBLZX (DI), R12
	MOVBLZX (R10)(R12*1), R12
	PINSRW  $3, R12, X1
	MOVBLZX (DI)(CX*1), R11
	MOVBLZX (R10)(R11*1), R11
	MOVQ    R11, X2
	MOVBLZX (DI)(CX*2), R12
	MOVBLZX (R10)(R12*1), R12
	PINSRW  $1, R12, X2
	MOVBLZX (R8), R11
	MOVBLZX (R10)(R11*1), R11
	PINSRW  $2, R11, X2
	MOVBLZX (R8)(CX*1), R12
	MOVBLZX (R10)(R12*1), R12
	PINSRW  $3, R12, X2
	PUNPCKLQDQ X2, X1
	INCQ    SI
	INCQ    DI
	INCQ    R8

	// s = max(s + p, 0); best = max(best, s). The +128 byte bias is
	// removed on the gather register, keeping the loop-carried chain
	// through X0 at two instructions (PADDSW, PMAXSW) per position.
	PSUBW  X3, X1
	PADDSW X1, X0
	PMAXSW X4, X0
	PMAXSW X0, X5

	DECQ R9
	JNZ  loop

	MOVQ  best+32(FP), R10
	MOVOU X5, (R10)
	RET
