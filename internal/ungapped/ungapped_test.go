package ungapped

import (
	"testing"

	"seedblast/internal/align"
	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/seed"
)

func buildPair(t *testing.T, seqs0, seqs1 []string, n int) (*index.Index, *index.Index) {
	t.Helper()
	b0 := bank.New("b0")
	for i, s := range seqs0 {
		b0.Add(string(rune('a'+i)), alphabet.MustEncodeProtein(s))
	}
	b1 := bank.New("b1")
	for i, s := range seqs1 {
		b1.Add(string(rune('A'+i)), alphabet.MustEncodeProtein(s))
	}
	model := seed.Exact(3)
	ix0, err := index.Build(b0, model, n)
	if err != nil {
		t.Fatal(err)
	}
	ix1, err := index.Build(b1, model, n)
	if err != nil {
		t.Fatal(err)
	}
	return ix0, ix1
}

func TestRunFindsPlantedSimilarity(t *testing.T) {
	// Identical 12-mer shared between the banks must produce hits.
	common := "WCWHMWYWFWCW" // rare residues: no background collisions
	ix0, ix1 := buildPair(t,
		[]string{"AAAA" + common + "GGGG"},
		[]string{"KKKKKK" + common + "SSSS"},
		4)
	res, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits for planted identity")
	}
	for _, h := range res.Hits {
		if h.Score < 30 {
			t.Errorf("hit below threshold: %+v", h)
		}
	}
}

func TestRunNoHitsBelowThreshold(t *testing.T) {
	ix0, ix1 := buildPair(t,
		[]string{"ARNDARNDARND"},
		[]string{"ARNDARNDARND"},
		2)
	// Absurdly high threshold: everything filtered, pairs still counted.
	res, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Errorf("hits above impossible threshold: %d", len(res.Hits))
	}
	if res.Pairs == 0 {
		t.Error("pair count should be non-zero for identical banks")
	}
}

func TestRunPairsMatchesPairCount(t *testing.T) {
	ix0, ix1 := buildPair(t,
		[]string{"ARNDCQEGHILKARNDCQ", "MKVLILACMKVLILAC"},
		[]string{"ARNDCQEGHILK", "MKVLILACWWWW", "DDDDDDDD"},
		3)
	res, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != PairCount(ix0, ix1) {
		t.Errorf("Pairs = %d, PairCount = %d", res.Pairs, PairCount(ix0, ix1))
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := bank.NewRNG(99)
	b0 := bank.New("r0")
	b1 := bank.New("r1")
	for i := 0; i < 8; i++ {
		b0.Add(string(rune('a'+i)), bank.RandomProtein(rng, 150))
		b1.Add(string(rune('A'+i)), bank.RandomProtein(rng, 150))
	}
	model := seed.Default()
	ix0, _ := index.Build(b0, model, 6)
	ix1, _ := index.Build(b1, model, 6)

	var ref *Result
	for _, workers := range []int{1, 2, 3, 7, 16} {
		res, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 18, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Hits) != len(ref.Hits) || res.Pairs != ref.Pairs {
			t.Fatalf("workers=%d: %d hits / %d pairs, want %d / %d",
				workers, len(res.Hits), res.Pairs, len(ref.Hits), ref.Pairs)
		}
		for i := range res.Hits {
			if res.Hits[i] != ref.Hits[i] {
				t.Fatalf("workers=%d: hit %d differs: %+v vs %+v",
					workers, i, res.Hits[i], ref.Hits[i])
			}
		}
	}
}

func TestRunHitScoresMatchWindowScore(t *testing.T) {
	ix0, ix1 := buildPair(t,
		[]string{"MKVLILACDEFGMKVLILAC"},
		[]string{"MKVLILACDEFGWWWWWWWW"},
		4)
	res, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("expected hits")
	}
	subLen := ix0.SubLen()
	for _, h := range res.Hits {
		// Recompute the window score from the raw sequences.
		w0 := windowOf(ix0, h.E0, subLen)
		w1 := windowOf(ix1, h.E1, subLen)
		want := align.WindowScore(w0, w1, matrix.BLOSUM62)
		if int(h.Score) != want {
			t.Errorf("hit score %d, recomputed %d", h.Score, want)
		}
	}
}

func windowOf(ix *index.Index, e index.Entry, subLen int) []byte {
	seq := ix.Bank().Seq(int(e.Seq))
	n := ix.N()
	w := make([]byte, subLen)
	for i := range w {
		p := int(e.Off) - n + i
		if p < 0 || p >= len(seq) {
			w[i] = alphabet.Xaa
		} else {
			w[i] = seq[p]
		}
	}
	return w
}

func TestRunValidation(t *testing.T) {
	b := bank.New("b")
	b.Add("s", alphabet.MustEncodeProtein("ARNDARND"))
	ixA, _ := index.Build(b, seed.Exact(3), 2)
	ixB, _ := index.Build(b, seed.Exact(4), 2)
	ixC, _ := index.Build(b, seed.Exact(3), 3)

	if _, err := Run(ixA, ixB, Config{Matrix: matrix.BLOSUM62, Threshold: 10}); err == nil {
		t.Error("mismatched models accepted")
	}
	if _, err := Run(ixA, ixC, Config{Matrix: matrix.BLOSUM62, Threshold: 10}); err == nil {
		t.Error("mismatched neighbourhoods accepted")
	}
	if _, err := Run(ixA, ixA, Config{Threshold: 10}); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := Run(ixA, ixA, Config{Matrix: matrix.BLOSUM62}); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestRunEmptyBank(t *testing.T) {
	b0 := bank.New("empty")
	b1 := bank.New("full")
	b1.Add("s", alphabet.MustEncodeProtein("ARNDCQEGHILK"))
	model := seed.Exact(3)
	ix0, _ := index.Build(b0, model, 2)
	ix1, _ := index.Build(b1, model, 2)
	res, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 || res.Pairs != 0 {
		t.Errorf("empty bank produced work: %+v", res)
	}
}

func TestPairCountMatchesBruteForce(t *testing.T) {
	// Independent check of PairCount against direct enumeration.
	ix0, ix1 := buildPair(t,
		[]string{"ARNDCQEGHILKMFPSTWYV", "MKVLILACMKVLILAC"},
		[]string{"ARNDCQEGHILK", "WWWWMKVLILAC"},
		2)
	var brute int64
	space := ix0.Model().KeySpace()
	for k := 0; k < space; k++ {
		e0, _ := ix0.Bucket(uint32(k))
		e1, _ := ix1.Bucket(uint32(k))
		brute += int64(len(e0)) * int64(len(e1))
	}
	if got := PairCount(ix0, ix1); got != brute {
		t.Errorf("PairCount = %d, brute force = %d", got, brute)
	}
}

func TestRunSymmetricThresholdOne(t *testing.T) {
	// With a symmetric matrix, swapping the banks must give the same
	// number of hits (pairs mirror).
	ix0, ix1 := buildPair(t,
		[]string{"MKVLILACDEFG"},
		[]string{"MKVLILACWWWW", "DEFGMKVLILAC"},
		3)
	fwd, err := Run(ix0, ix1, Config{Matrix: matrix.BLOSUM62, Threshold: 12})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Run(ix1, ix0, Config{Matrix: matrix.BLOSUM62, Threshold: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd.Hits) != len(rev.Hits) || fwd.Pairs != rev.Pairs {
		t.Errorf("asymmetry: %d/%d hits, %d/%d pairs",
			len(fwd.Hits), len(rev.Hits), fwd.Pairs, rev.Pairs)
	}
}
