//go:build !amd64

package ungapped

// hasAsmKernel: no architecture-specific group scanner on this GOARCH;
// the blocked kernel uses the portable 4-lane SWAR pass.
const hasAsmKernel = false

// hasSSSE3 is never consulted when hasAsmKernel is false.
const hasSSSE3 = false

// The asm scanners are never called when hasAsmKernel is false; these
// stubs keep the portable build compiling.

func scanGroup16SSSE3(btab *uint8, w0 *byte, win *byte, subLen int, best *[ssse3Lanes]int16) {
	panic("ungapped: asm kernel called on unsupported GOARCH")
}

func scanGroup8SSE(btab *uint8, w0 *byte, win *byte, subLen int, best *[asmLanes]int16) {
	panic("ungapped: asm kernel called on unsupported GOARCH")
}
