// Package benchfmt is the shared layout of the repo's checked-in
// benchmark records (BENCH_*.json): a schema version string, so tools
// reading a record can tell which fields to expect, and the host
// provenance every record carries — without it a recorded speedup is
// uninterpretable a few commits later ("fast compared to what, where?").
//
// cmd/benchrec (kernel/pipeline microbenchmarks) and cmd/loadgen
// (daemon-level load generation) both stamp their records through
// Collect, so every BENCH file answers the same questions: which
// commit, which Go, which CPU, how many cores.
package benchfmt

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Schema version strings. A record's "schema" field names its layout;
// bump the suffix when a record type changes incompatibly.
const (
	// SchemaBench is cmd/benchrec's record: kernel grid + speedups +
	// one streaming-pipeline sample.
	SchemaBench = "seedblast-bench/2"
	// SchemaLoadgen is cmd/loadgen's record: daemon-level throughput,
	// cold start and per-stage latency quantiles.
	SchemaLoadgen = "seedblast-loadgen/1"
)

// Provenance identifies the code and host a record was measured on.
type Provenance struct {
	Date      string `json:"date"` // RFC 3339, UTC
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numCPU"`
	// CPUModel is the host CPU's model string (best effort; empty when
	// the platform does not expose one).
	CPUModel string `json:"cpuModel,omitempty"`
	// Commit is the git HEAD the binary was run from (best effort;
	// empty outside a git checkout). "-dirty" is appended when the
	// working tree had uncommitted changes.
	Commit string `json:"commit,omitempty"`
}

// Collect gathers provenance for a record written now. The commit and
// CPU model are best-effort: a record measured outside a git checkout
// or on a platform without /proc/cpuinfo simply omits them.
func Collect() Provenance {
	return Provenance{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		CPUModel:  cpuModel(),
		Commit:    gitCommit(),
	}
}

// Validate checks the fields every record must carry.
func (p *Provenance) Validate() error {
	switch {
	case p.Date == "":
		return fmt.Errorf("benchfmt: provenance missing date")
	case p.GoVersion == "":
		return fmt.Errorf("benchfmt: provenance missing goVersion")
	case p.GOOS == "" || p.GOARCH == "":
		return fmt.Errorf("benchfmt: provenance missing goos/goarch")
	case p.NumCPU <= 0:
		return fmt.Errorf("benchfmt: provenance numCPU = %d", p.NumCPU)
	}
	if _, err := time.Parse(time.RFC3339, p.Date); err != nil {
		return fmt.Errorf("benchfmt: provenance date: %w", err)
	}
	return nil
}

// gitCommit returns HEAD's hash, "-dirty"-suffixed when the tree has
// uncommitted changes; "" when git or a repository is unavailable.
func gitCommit() string {
	head, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(head))
	if commit == "" {
		return ""
	}
	// --porcelain prints nothing on a clean tree.
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(bytes.TrimSpace(st)) > 0 {
		commit += "-dirty"
	}
	return commit
}

// cpuModel reads the CPU model string from /proc/cpuinfo (Linux); ""
// elsewhere.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		// x86 says "model name", arm64 says "Processor" or only
		// implementer codes; take the first name-ish field.
		for _, key := range []string{"model name", "Processor", "cpu model"} {
			if rest, ok := strings.CutPrefix(line, key); ok {
				if i := strings.IndexByte(rest, ':'); i >= 0 {
					return strings.TrimSpace(rest[i+1:])
				}
			}
		}
	}
	return ""
}
