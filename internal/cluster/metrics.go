package cluster

import (
	"sync"
	"time"

	"seedblast/internal/telemetry"
)

// WorkerMetrics is one worker's cumulative scatter-gather accounting.
type WorkerMetrics struct {
	URL          string
	Volumes      int64         // volume jobs completed on this worker
	Failures     int64         // volume attempts that failed here (then retried elsewhere)
	TotalLatency time.Duration // summed submit→gather latency of completed volumes
	MaxLatency   time.Duration
}

// MeanLatency returns the average completed-volume latency.
func (w WorkerMetrics) MeanLatency() time.Duration {
	if w.Volumes == 0 {
		return 0
	}
	return w.TotalLatency / time.Duration(w.Volumes)
}

// MetricsSnapshot is a point-in-time view of the coordinator's
// counters.
type MetricsSnapshot struct {
	Requests  int64 // cluster comparisons started
	Completed int64
	Failed    int64
	Retries   int64 // volume attempts reissued after a worker failure

	Workers []WorkerMetrics

	// Volume-skew accounting for the most recent partition: how many
	// volumes were cut and the max/mean residue ratio across them
	// (1.0 = perfectly balanced). Scatter latency is bounded by the
	// slowest volume, so skew is the number to watch when picking a
	// partitioning strategy.
	LastVolumes int
	LastSkew    float64
}

// metrics is the coordinator's internal mutable counter set.
type metrics struct {
	// volHist holds one per-worker volume-latency histogram, set once at
	// registration (before any volume runs) and read-only after.
	volHist []*telemetry.Histogram

	mu          sync.Mutex
	requests    int64
	completed   int64
	failed      int64
	retries     int64
	workers     []WorkerMetrics
	lastVolumes int
	lastSkew    float64
}

func newMetrics(urls []string) *metrics {
	m := &metrics{workers: make([]WorkerMetrics, len(urls))}
	for i, u := range urls {
		m.workers[i].URL = u
	}
	return m
}

func (m *metrics) requestStarted(vols []Volume) {
	var maxR, sum int
	for _, v := range vols {
		sum += v.Residues
		if v.Residues > maxR {
			maxR = v.Residues
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	m.lastVolumes = len(vols)
	if len(vols) > 0 && sum > 0 {
		m.lastSkew = float64(maxR) * float64(len(vols)) / float64(sum)
	} else {
		m.lastSkew = 0
	}
}

func (m *metrics) requestDone(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.failed++
	} else {
		m.completed++
	}
}

func (m *metrics) volumeDone(worker int, latency time.Duration) {
	if m.volHist != nil {
		m.volHist[worker].Observe(latency.Seconds())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &m.workers[worker]
	w.Volumes++
	w.TotalLatency += latency
	if latency > w.MaxLatency {
		w.MaxLatency = latency
	}
}

func (m *metrics) volumeFailed(worker int, retried bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workers[worker].Failures++
	if retried {
		m.retries++
	}
}

// register puts the coordinator's counters on a telemetry registry:
// the historical /cluster/metrics names verbatim as callback-backed
// metrics (one source of truth, now with HELP/TYPE lines), plus a real
// per-worker volume-latency histogram fed by volumeDone.
func (m *metrics) register(r *telemetry.Registry, urls []string) {
	cnt := func(name, help string, get func(MetricsSnapshot) float64) {
		r.Func("seedclusterd_"+name, help, telemetry.TypeCounter, func() float64 { return get(m.snapshot()) })
	}
	gau := func(name, help string, get func(MetricsSnapshot) float64) {
		r.Func("seedclusterd_"+name, help, telemetry.TypeGauge, func() float64 { return get(m.snapshot()) })
	}
	cnt("requests_total", "Cluster comparisons started.",
		func(s MetricsSnapshot) float64 { return float64(s.Requests) })
	cnt("requests_completed_total", "Cluster comparisons finished successfully.",
		func(s MetricsSnapshot) float64 { return float64(s.Completed) })
	cnt("requests_failed_total", "Cluster comparisons that errored or were cancelled.",
		func(s MetricsSnapshot) float64 { return float64(s.Failed) })
	cnt("volume_retries_total", "Volume attempts reissued after a worker failure.",
		func(s MetricsSnapshot) float64 { return float64(s.Retries) })
	gau("last_volumes", "Volumes cut for the most recent request.",
		func(s MetricsSnapshot) float64 { return float64(s.LastVolumes) })
	gau("last_volume_skew", "Max/mean residue ratio of the last partition (1 = balanced).",
		func(s MetricsSnapshot) float64 { return s.LastSkew })
	m.volHist = make([]*telemetry.Histogram, len(urls))
	for i, u := range urls {
		r.Func("seedclusterd_worker_volumes_total", "Volume jobs completed per worker.",
			telemetry.TypeCounter,
			func() float64 { return float64(m.snapshot().Workers[i].Volumes) },
			telemetry.L("worker", u))
		r.Func("seedclusterd_worker_failures_total", "Failed volume attempts per worker.",
			telemetry.TypeCounter,
			func() float64 { return float64(m.snapshot().Workers[i].Failures) },
			telemetry.L("worker", u))
		r.Func("seedclusterd_worker_latency_seconds_total", "Summed submit-to-gather volume latency per worker.",
			telemetry.TypeCounter,
			func() float64 { return m.snapshot().Workers[i].TotalLatency.Seconds() },
			telemetry.L("worker", u))
		m.volHist[i] = r.Histogram("seedclusterd_volume_seconds",
			"Per-volume submit-to-gather latency.",
			telemetry.DurationBuckets, telemetry.L("worker", u))
	}
}

func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MetricsSnapshot{
		Requests:    m.requests,
		Completed:   m.completed,
		Failed:      m.failed,
		Retries:     m.retries,
		Workers:     append([]WorkerMetrics(nil), m.workers...),
		LastVolumes: m.lastVolumes,
		LastSkew:    m.lastSkew,
	}
}
