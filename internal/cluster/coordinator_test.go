package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"seedblast/internal/alphabet"
	"seedblast/internal/service"
)

// wireWorkload converts the bank workload into the JSON sequence
// lists a coordinator scatters.
func wireWorkload(t testing.TB, n int, seed int64) (query, subject []service.SequenceJSON) {
	t.Helper()
	b0, b1 := testWorkload(t, n, seed)
	for i := 0; i < b0.Len(); i++ {
		query = append(query, service.SequenceJSON{ID: b0.ID(i), Seq: alphabet.DecodeProtein(b0.Seq(i))})
	}
	for i := 0; i < b1.Len(); i++ {
		subject = append(subject, service.SequenceJSON{ID: b1.ID(i), Seq: alphabet.DecodeProtein(b1.Seq(i))})
	}
	return query, subject
}

func wireOptions() service.OptionsJSON {
	ev := 10.0
	return service.OptionsJSON{MaxEValue: &ev, Workers: 1}
}

// startWorker boots an in-process seedservd (real service behind a
// test listener) and returns its base URL.
func startWorker(t testing.TB) string {
	t.Helper()
	svc := service.New(service.Config{MaxConcurrent: 2})
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return srv.URL
}

// singleNodeReference submits the unpartitioned request to one worker
// and returns its alignments — the wire-level ground truth.
func singleNodeReference(t testing.TB, query, subject []service.SequenceJSON) []service.AlignmentJSON {
	t.Helper()
	cl := service.NewClient(startWorker(t), service.ClientConfig{})
	ctx := context.Background()
	id, err := cl.Submit(ctx, &service.JobRequestJSON{Query: query, Subject: subject, Options: wireOptions()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != string(service.JobDone) {
		t.Fatalf("reference job %s: %s", st.State, st.Error)
	}
	as, err := cl.Alignments(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 {
		t.Fatal("reference run produced no alignments; equivalence would be vacuous")
	}
	return as
}

// TestCoordinatorEquivalence: scattered over real HTTP workers, the
// gathered report must be bit-identical to a single worker serving
// the unpartitioned bank — strategies × volume counts.
func TestCoordinatorEquivalence(t *testing.T) {
	query, subject := wireWorkload(t, 8, 51)
	want := singleNodeReference(t, query, subject)

	workers := []string{startWorker(t), startWorker(t), startWorker(t)}
	for _, p := range partitioners() {
		for _, volumes := range []int{2, 3, 5} {
			t.Run(fmt.Sprintf("%s/%dvol", p.Name(), volumes), func(t *testing.T) {
				coord, err := New(Config{Workers: workers, Partitioner: p, Volumes: volumes})
				if err != nil {
					t.Fatal(err)
				}
				rep, err := coord.Compare(context.Background(), query, subject, wireOptions())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rep.Alignments, want) {
					t.Fatalf("merged wire alignments differ from single-node worker:\n got %d\nwant %d",
						len(rep.Alignments), len(want))
				}
				if rep.Volumes != min(volumes, len(subject)) {
					t.Errorf("report volumes = %d, want %d", rep.Volumes, volumes)
				}
				if rep.Retries != 0 {
					t.Errorf("healthy workers, but %d retries", rep.Retries)
				}
			})
		}
	}
}

// flakyWorker accepts submissions, then fails every poll with a 500 —
// a worker that died mid-job from the coordinator's point of view.
func flakyWorker(t testing.TB) string {
	t.Helper()
	var mu sync.Mutex
	n := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		n++
		id := fmt.Sprintf("flaky-%d", n)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%q,"state":"queued"}`, id)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"worker crashed"}`, http.StatusInternalServerError)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestCoordinatorRetriesOnWorkerFailure: one worker dies mid-job (and
// another is down entirely); the partial gather must complete by
// retrying the lost volumes on the surviving worker, and the merged
// output must still be bit-identical.
func TestCoordinatorRetriesOnWorkerFailure(t *testing.T) {
	query, subject := wireWorkload(t, 6, 52)
	want := singleNodeReference(t, query, subject)

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens: submits fail at the transport

	workers := []string{flakyWorker(t), deadURL, startWorker(t)}
	coord, err := New(Config{
		Workers: workers,
		Volumes: 3,
		Client:  service.ClientConfig{Attempts: 2, Backoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Compare(context.Background(), query, subject, wireOptions())
	if err != nil {
		t.Fatalf("gather did not survive worker failures: %v", err)
	}
	if !reflect.DeepEqual(rep.Alignments, want) {
		t.Fatalf("retried gather differs from single-node output: got %d alignments, want %d",
			len(rep.Alignments), len(want))
	}
	if rep.Retries == 0 {
		t.Error("two broken workers but the report counts no retries")
	}
	m := coord.Metrics()
	if m.Retries == 0 {
		t.Error("coordinator metrics count no retries")
	}
	if m.Workers[0].Failures == 0 && m.Workers[1].Failures == 0 {
		t.Error("neither broken worker charged with a failure")
	}
	if m.Workers[2].Volumes == 0 {
		t.Error("surviving worker served no volumes")
	}
	if m.Completed != 1 || m.Failed != 0 {
		t.Errorf("metrics completed/failed = %d/%d, want 1/0", m.Completed, m.Failed)
	}
}

// TestCoordinatorFailsWhenNoWorkerSurvives: when every worker is
// broken the request must fail with the volume's last error, and the
// failure must be counted.
func TestCoordinatorFailsWhenNoWorkerSurvives(t *testing.T) {
	query, subject := wireWorkload(t, 4, 53)
	coord, err := New(Config{
		Workers: []string{flakyWorker(t), flakyWorker(t)},
		Client:  service.ClientConfig{Attempts: 1, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Compare(context.Background(), query, subject, wireOptions())
	if err == nil {
		t.Fatal("request succeeded with every worker broken")
	}
	if !strings.Contains(err.Error(), "volume") {
		t.Errorf("error does not identify the failed volume: %v", err)
	}
	if m := coord.Metrics(); m.Failed != 1 {
		t.Errorf("metrics failed = %d, want 1", m.Failed)
	}
}

// TestCoordinatorFailsFastOnClientError: a request every worker
// rejects as invalid (bad genetic code → 400 at submit) must fail on
// the first worker without rotating through the rest, and without
// charging healthy workers failures or burning retries.
func TestCoordinatorFailsFastOnClientError(t *testing.T) {
	query, subject := wireWorkload(t, 3, 56)
	coord, err := New(Config{Workers: []string{startWorker(t), startWorker(t), startWorker(t)}})
	if err != nil {
		t.Fatal(err)
	}
	opt := wireOptions()
	opt.GeneticCode = "not-a-code"
	_, err = coord.Compare(context.Background(), query, subject, opt)
	if err == nil {
		t.Fatal("invalid options accepted")
	}
	if !strings.Contains(err.Error(), "submit rejected") {
		t.Errorf("error does not mark the rejection: %v", err)
	}
	m := coord.Metrics()
	if m.Retries != 0 {
		t.Errorf("client error burned %d retries; it should fail fast", m.Retries)
	}
	for _, wm := range m.Workers {
		if wm.Failures != 0 {
			t.Errorf("worker %s charged %d failures for a client error", wm.URL, wm.Failures)
		}
	}
}

// Duplicate ids would silently remap alignments onto the wrong
// sequence during the gather, so the coordinator must reject them —
// including a clash manufactured by default-id normalization.
func TestCoordinatorRejectsDuplicateIDs(t *testing.T) {
	coord, err := New(Config{Workers: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := []service.SequenceJSON{{ID: "q0", Seq: "MKV"}}
	dupSubject := []service.SequenceJSON{{ID: "A", Seq: "MKV"}, {ID: "B", Seq: "MKL"}, {ID: "A", Seq: "MKI"}}
	if _, err := coord.Compare(ctx, q, dupSubject, wireOptions()); err == nil || !strings.Contains(err.Error(), "duplicate subject id") {
		t.Errorf("duplicate subject ids not rejected: %v", err)
	}
	dupQuery := []service.SequenceJSON{{ID: "q0", Seq: "MKV"}, {ID: "q0", Seq: "MKL"}}
	sub := []service.SequenceJSON{{ID: "s0", Seq: "MKV"}}
	if _, err := coord.Compare(ctx, dupQuery, sub, wireOptions()); err == nil || !strings.Contains(err.Error(), "duplicate query id") {
		t.Errorf("duplicate query ids not rejected: %v", err)
	}
	// Normalization clash: explicit "subject1" plus a blank id at
	// position 1 both become "subject1".
	clash := []service.SequenceJSON{{ID: "subject1", Seq: "MKV"}, {Seq: "MKL"}}
	if _, err := coord.Compare(ctx, q, clash, wireOptions()); err == nil || !strings.Contains(err.Error(), "duplicate subject id") {
		t.Errorf("normalization-manufactured duplicate not rejected: %v", err)
	}
}

// hangingWorker accepts jobs that never finish and records which ones
// get cancelled — for pinning cancellation propagation.
type hangingWorker struct {
	mu        sync.Mutex
	submitted []string
	cancelled map[string]bool
	n         int
}

func newHangingWorker(t testing.TB) (*hangingWorker, string) {
	t.Helper()
	h := &hangingWorker{cancelled: make(map[string]bool)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		h.mu.Lock()
		h.n++
		id := fmt.Sprintf("hang-%d", h.n)
		h.submitted = append(h.submitted, id)
		h.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%q,"state":"queued"}`, id)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"id": r.PathValue("id"), "state": "running", "mode": "bank"})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		h.mu.Lock()
		h.cancelled[r.PathValue("id")] = true
		h.mu.Unlock()
		fmt.Fprintf(w, `{"id":%q,"state":"failed"}`, r.PathValue("id"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return h, srv.URL
}

// TestCoordinatorCancellationPropagates: cancelling the request
// context must abort the gather promptly AND cancel every outstanding
// job on the workers, so abandoned volumes stop burning worker
// admission slots.
func TestCoordinatorCancellationPropagates(t *testing.T) {
	query, subject := wireWorkload(t, 4, 54)
	h1, u1 := newHangingWorker(t)
	h2, u2 := newHangingWorker(t)
	coord, err := New(Config{Workers: []string{u1, u2}, Volumes: 4, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let the scatter reach the workers, then pull the plug.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			h1.mu.Lock()
			n1 := len(h1.submitted)
			h1.mu.Unlock()
			h2.mu.Lock()
			n2 := len(h2.submitted)
			h2.mu.Unlock()
			if n1 > 0 && n2 > 0 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		cancel()
	}()

	start := time.Now()
	_, err = coord.Compare(ctx, query, subject, wireOptions())
	if err == nil {
		t.Fatal("cancelled Compare returned no error")
	}
	if context.Cause(ctx) == nil || time.Since(start) > 10*time.Second {
		t.Fatalf("Compare returned %v after %v", err, time.Since(start))
	}

	// Every job the workers accepted must have received its DELETE.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := true
		for _, h := range []*hangingWorker{h1, h2} {
			h.mu.Lock()
			for _, id := range h.submitted {
				if !h.cancelled[id] {
					ok = false
				}
			}
			h.mu.Unlock()
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("outstanding worker jobs were not cancelled after the request context died")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
