package cluster

import (
	"context"
	"reflect"
	"testing"
)

// TestClusterPrefilterPerVolume pins the documented per-volume
// semantics of maxCandidates under partitioning:
//
//   - wide open (k ≥ bank size): no volume cuts anything, so the
//     gathered result is bit-identical to the unfiltered cluster run
//     (and, via TestLocalEquivalence, to a single node);
//   - tight k: the cut may drop alignments but never invents or
//     rescores one — every survivor matches its unfiltered
//     counterpart exactly, E-value included (full-bank geometry), and
//     per query at most volumes×k distinct subjects remain;
//   - the merged metrics fold the per-volume prefilter counters.
func TestClusterPrefilterPerVolume(t *testing.T) {
	b0, b1 := testWorkload(t, 10, 41)
	const volumes = 3
	l := NewLocal(LocalConfig{Volumes: volumes})

	ref, err := l.Compare(context.Background(), b0, b1, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Alignments) == 0 {
		t.Fatal("unfiltered cluster run produced no alignments")
	}
	if ref.Metrics.PrefilterKept != 0 || ref.Metrics.Prefilter.Shards != 0 {
		t.Fatalf("k=0 cluster run recorded prefilter work: %+v", ref.Metrics.Prefilter)
	}

	wide := testOptions()
	wide.MaxCandidates = b1.Len()
	got, err := l.Compare(context.Background(), b0, b1, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Alignments, ref.Alignments) {
		t.Fatalf("wide-open prefilter diverged from k=0 cluster run: %d vs %d alignments",
			len(got.Alignments), len(ref.Alignments))
	}
	if got.Metrics.PrefilterDropped != 0 {
		t.Fatalf("wide-open cluster run dropped %d pairs", got.Metrics.PrefilterDropped)
	}
	if got.Metrics.PrefilterKept == 0 || got.Metrics.Prefilter.Shards == 0 {
		t.Fatalf("merged metrics did not fold prefilter counters: %+v", got.Metrics.Prefilter)
	}

	const k = 2
	tight := testOptions()
	tight.MaxCandidates = k
	cut, err := l.Compare(context.Background(), b0, b1, tight)
	if err != nil {
		t.Fatal(err)
	}
	subjects := map[int]map[int]bool{} // query → surviving subjects
	for _, a := range cut.Alignments {
		found := false
		for _, b := range ref.Alignments {
			if reflect.DeepEqual(a, b) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("filtered cluster run invented or rescored alignment %+v", a)
		}
		if subjects[a.Seq0] == nil {
			subjects[a.Seq0] = map[int]bool{}
		}
		subjects[a.Seq0][a.Seq1] = true
	}
	for q, subs := range subjects {
		if len(subs) > volumes*k {
			t.Fatalf("query %d kept %d subjects, per-volume bound is %d×%d",
				q, len(subs), volumes, k)
		}
	}
	if cut.Metrics.PrefilterDropped == 0 {
		t.Fatalf("tight cut dropped nothing across %d subjects", b1.Len())
	}
}
