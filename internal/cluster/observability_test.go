package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"seedblast/internal/service"
	"seedblast/internal/telemetry"
)

// startClusterOver boots a coordinator daemon over the given workers
// and returns its base URL.
func startClusterOver(t testing.TB, volumes int, workers ...string) string {
	t.Helper()
	coord, err := New(Config{Workers: workers, Volumes: volumes})
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(coord, ServerConfig{})
	srv := httptest.NewServer(NewHandler(server))
	t.Cleanup(func() { srv.Close(); server.Close() })
	return srv.URL
}

func runWireJob(t *testing.T, cl *service.Client, query, subject []service.SequenceJSON) string {
	t.Helper()
	ctx := context.Background()
	id, err := cl.Submit(ctx, &service.JobRequestJSON{Query: query, Subject: subject, Options: wireOptions()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != string(service.JobDone) {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	return id
}

// TestMetricsExpositionParses is the golden grammar gate for both
// daemons: after real traffic, GET /metrics from a worker and from a
// coordinator must survive the strict Prometheus text parser, and the
// families the dashboards key on must be present with live values.
func TestMetricsExpositionParses(t *testing.T) {
	query, subject := wireWorkload(t, 6, 55)
	worker := startWorker(t)
	clusterURL := startClusterOver(t, 2, worker, startWorker(t))
	runWireJob(t, service.NewClient(clusterURL, service.ClientConfig{}), query, subject)

	scrape := func(base string) telemetry.Families {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/metrics: %d", base, resp.StatusCode)
		}
		fams, err := telemetry.ParseText(resp.Body)
		if err != nil {
			t.Fatalf("%s/metrics violates the exposition grammar: %v", base, err)
		}
		return fams
	}

	wf := scrape(worker)
	for _, name := range []string{
		"seedservd_requests_submitted_total",
		"seedservd_requests_completed_total",
		"seedservd_stage_busy_seconds_total",
		"seedservd_engine_wall_seconds_total",
	} {
		if v, ok := wf.Value(name); !ok || v <= 0 {
			t.Errorf("worker %s = %v (present=%v), want > 0", name, v, ok)
		}
	}
	// The stage histograms are fed from job traces; the count suffix
	// resolving proves the full _bucket/_sum/_count triple parsed.
	if v, ok := wf.Value("seedservd_stage_seconds_count", telemetry.L("stage", "step2")); !ok || v <= 0 {
		t.Errorf("worker stage histogram empty: count=%v present=%v", v, ok)
	}

	cf := scrape(clusterURL)
	for _, name := range []string{
		"seedclusterd_requests_total",
		"seedclusterd_requests_completed_total",
		"seedclusterd_last_volumes",
	} {
		if v, ok := cf.Value(name); !ok || v <= 0 {
			t.Errorf("coordinator %s = %v (present=%v), want > 0", name, v, ok)
		}
	}
	if v, ok := cf.Value("seedclusterd_volume_seconds_count", telemetry.L("worker", worker)); !ok || v <= 0 {
		t.Errorf("coordinator volume histogram for %s empty: count=%v present=%v", worker, v, ok)
	}
}

// TestClusterTraceSpansWorkers is the distributed-tracing acceptance
// gate: one clustered job yields one trace, under the caller's own
// trace ID when supplied, containing the coordinator's stages plus
// engine spans grafted from at least two distinct workers.
func TestClusterTraceSpansWorkers(t *testing.T) {
	query, subject := wireWorkload(t, 6, 55)
	clusterURL := startClusterOver(t, 4, startWorker(t), startWorker(t))
	cl := service.NewClient(clusterURL, service.ClientConfig{})

	// A context-carried trace makes the client stamp the Seedblast-
	// Trace-Id header, so the job must come back under OUR ID.
	tr := telemetry.NewTrace(telemetry.NewTraceID())
	ctx := telemetry.ContextWithTrace(context.Background(), tr)
	id, err := cl.Submit(ctx, &service.JobRequestJSON{Query: query, Subject: subject, Options: wireOptions()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != string(service.JobDone) {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	if st.TraceID != tr.ID() {
		t.Errorf("status traceId = %q, want propagated %q", st.TraceID, tr.ID())
	}

	tj, err := cl.Trace(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if tj.TraceID != tr.ID() {
		t.Errorf("trace id = %q, want propagated %q", tj.TraceID, tr.ID())
	}

	byName := map[string]int{}
	workersSeen := map[string]bool{}
	enginesGrafted := map[string]bool{}
	for _, sp := range tj.Spans {
		byName[sp.Name]++
		if w := sp.Attrs["worker"]; w != "" {
			workersSeen[w] = true
			if sp.Name == "step1" || sp.Name == "step2" || sp.Name == "step3" {
				enginesGrafted[w] = true
			}
		}
	}
	for _, stage := range []string{"partition", "scatter", "gather"} {
		if byName[stage] != 1 {
			t.Errorf("coordinator stage %q appears %d times, want 1", stage, byName[stage])
		}
	}
	if byName["volume"] != 4 {
		t.Errorf("volume spans = %d, want 4", byName["volume"])
	}
	if len(workersSeen) < 2 {
		t.Errorf("trace carries spans from %d worker(s), want >= 2: %v", len(workersSeen), workersSeen)
	}
	if len(enginesGrafted) < 2 {
		t.Errorf("engine stages grafted from %d worker(s), want >= 2: %v", len(enginesGrafted), enginesGrafted)
	}
}
