package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"seedblast/internal/service"
)

// TestServerJobFlow drives the coordinator daemon's HTTP API end to
// end with the shared service.Client — the same client the smoke
// tests and the coordinator itself use — proving the daemon really
// speaks the worker API (plus /cluster/metrics).
func TestServerJobFlow(t *testing.T) {
	query, subject := wireWorkload(t, 6, 55)
	want := singleNodeReference(t, query, subject)

	coord, err := New(Config{Workers: []string{startWorker(t), startWorker(t)}, Volumes: 3})
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(coord, ServerConfig{})
	defer server.Close()
	srv := httptest.NewServer(NewHandler(server))
	defer srv.Close()

	cl := service.NewClient(srv.URL, service.ClientConfig{})
	ctx := context.Background()
	id, err := cl.Submit(ctx, &service.JobRequestJSON{Query: query, Subject: subject, Options: wireOptions()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != string(service.JobDone) {
		t.Fatalf("cluster job %s: %s", st.State, st.Error)
	}
	if st.Hits == nil || *st.Hits == 0 {
		t.Error("done status carries no hit summary")
	}
	got, err := cl.Alignments(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("daemon alignments differ from single-node worker: got %d, want %d", len(got), len(want))
	}

	resp, err := http.Get(srv.URL + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, wantLine := range []string{
		"seedclusterd_requests_completed_total 1",
		"seedclusterd_last_volumes 3",
		"seedclusterd_worker_volumes_total{worker=",
		"seedclusterd_worker_latency_seconds_total{worker=",
	} {
		if !strings.Contains(string(body), wantLine) {
			t.Errorf("/cluster/metrics missing %q:\n%s", wantLine, body)
		}
	}
}

// The daemon's queue cap: with jobs stuck in flight, submissions
// beyond MaxQueued get 503 instead of pinning unbounded memory.
func TestServerQueueBounded(t *testing.T) {
	_, u := newHangingWorker(t)
	coord, err := New(Config{Workers: []string{u}, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(coord, ServerConfig{MaxQueued: 1})
	defer server.Close()
	srv := httptest.NewServer(NewHandler(server))
	defer srv.Close()

	cl := service.NewClient(srv.URL, service.ClientConfig{})
	ctx := context.Background()
	req := &service.JobRequestJSON{
		Query:   []service.SequenceJSON{{ID: "q0", Seq: "MKV"}},
		Subject: []service.SequenceJSON{{ID: "s0", Seq: "MKV"}},
	}
	id, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Submit(ctx, req)
	var ae *service.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit beyond MaxQueued: got %v, want 503", err)
	}
	// Cancelling the stuck job drains the queue and reopens it.
	if err := cl.Cancel(ctx, id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Submit(ctx, req); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never reopened after cancelling the stuck job")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerValidation(t *testing.T) {
	coord, err := New(Config{Workers: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(coord, ServerConfig{})
	defer server.Close()
	srv := httptest.NewServer(NewHandler(server))
	defer srv.Close()

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"subject":[{"seq":"MKV"}]}`); code != http.StatusBadRequest {
		t.Errorf("missing query accepted: %d", code)
	}
	if code := post(`{"query":[{"seq":"MKV"}]}`); code != http.StatusBadRequest {
		t.Errorf("missing subject accepted: %d", code)
	}
	if code := post(`{"query":[{"seq":"MKV"}],"genome":"ACGT"}`); code != http.StatusBadRequest {
		t.Errorf("genome job accepted by the cluster: %d", code)
	}
	if code := post(`{"query":[{"seq":"MKV"}],"subject":[{"seq":"MKV"}],"options":{"searchSpace":{"dbLen":9}}}`); code != http.StatusBadRequest {
		t.Errorf("client-supplied searchSpace accepted: %d", code)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: %d, want 404", resp.StatusCode)
	}
}
