// Package cluster is the distributed scatter-gather layer over the
// comparison service: a coordinator splits the subject bank into
// volumes, scatters one comparison job per volume across seedservd
// workers (or, in Local mode, across in-process pipeline engines),
// and gathers the per-volume results into a single merged report.
//
// The paper accelerates one host with one RASC-100 board; its natural
// scale-out — argued in Nguyen & Lavenier's fine-grained
// parallelization report and taken to the extreme by Selvitopi et
// al.'s many-against-many search — is partitioning the subject bank
// and merging hits. Three properties make the merge exact rather than
// approximate:
//
//   - Partitioning is by whole subject sequence, so every
//     (query, subject) pair is compared by exactly one volume: hit
//     counts and pair counts sum, and step 3's per-pair containment
//     and dedup rules see exactly the hit groups a single node would.
//   - Every volume job carries the full bank's search-space geometry
//     (stats.SearchSpace over the job API's searchSpace field), so
//     workers compute E-values — and apply the E ≤ MaxEValue cut —
//     against the whole database, not their slice.
//   - The gather re-ranks under the engine's (Seq0, EValue, Seq1)
//     ordering after remapping volume-local subject numbers to global
//     ones.
//
// Together these make the merged output bit-identical to a
// single-node run over the unpartitioned bank, which the equivalence
// tests pin for several partitioning strategies and volume counts.
package cluster

import (
	"fmt"
	"sort"
)

// Volume is one partition of the subject bank: the global sequence
// numbers it carries, in ascending order, and their summed residues.
type Volume struct {
	Seqs     []int
	Residues int
}

// Partitioner splits a subject bank — given only its per-sequence
// residue lengths — into at most n volumes. Implementations must be
// deterministic and must cover every sequence exactly once; volumes
// must list their sequences in ascending global order (the merge
// relies on it to remap volume-local numbering).
type Partitioner interface {
	Name() string
	Partition(lens []int, n int) []Volume
}

// PartitionerByName resolves a strategy name (for flags and config
// files): "seqcount" or "size".
func PartitionerByName(name string) (Partitioner, error) {
	switch name {
	case "seqcount":
		return SeqCount{}, nil
	case "size", "":
		return SizeBalanced{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown partitioner %q (seqcount, size)", name)
	}
}

// SeqCount partitions into contiguous runs of near-equal sequence
// count — the classic database volume split: order-preserving and
// cheap, but skewed when sequence lengths vary a lot.
type SeqCount struct{}

// Name implements Partitioner.
func (SeqCount) Name() string { return "seqcount" }

// Partition implements Partitioner. Volume v gets the index range
// [v·t/n, (v+1)·t/n), so counts differ by at most one.
func (SeqCount) Partition(lens []int, n int) []Volume {
	t := len(lens)
	if t == 0 {
		return nil
	}
	if n <= 0 {
		n = 1
	}
	if n > t {
		n = t
	}
	out := make([]Volume, 0, n)
	for v := 0; v < n; v++ {
		lo, hi := v*t/n, (v+1)*t/n
		vol := Volume{Seqs: make([]int, 0, hi-lo)}
		for i := lo; i < hi; i++ {
			vol.Seqs = append(vol.Seqs, i)
			vol.Residues += lens[i]
		}
		out = append(out, vol)
	}
	return out
}

// SizeBalanced partitions by greedy longest-processing-time
// assignment: sequences are taken longest first and each goes to the
// currently lightest volume, so per-volume residue totals — and with
// them worker step-2 work — stay balanced even under heavy-tailed
// length distributions. All ties break deterministically (longer
// sequence first, then lower sequence number; lightest volume, then
// lower volume number).
type SizeBalanced struct{}

// Name implements Partitioner.
func (SizeBalanced) Name() string { return "size" }

// Partition implements Partitioner.
func (SizeBalanced) Partition(lens []int, n int) []Volume {
	t := len(lens)
	if t == 0 {
		return nil
	}
	if n <= 0 {
		n = 1
	}
	if n > t {
		n = t
	}
	order := make([]int, t)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lens[order[a]] > lens[order[b]] })

	out := make([]Volume, n)
	for _, i := range order {
		best := 0
		for v := 1; v < n; v++ {
			// Residue ties break on sequence count so zero-length
			// sequences spread out instead of piling onto one volume and
			// leaving others empty (every volume gets at least one
			// sequence whenever n <= len(lens)).
			if out[v].Residues < out[best].Residues ||
				(out[v].Residues == out[best].Residues && len(out[v].Seqs) < len(out[best].Seqs)) {
				best = v
			}
		}
		out[best].Seqs = append(out[best].Seqs, i)
		out[best].Residues += lens[i]
	}
	for v := range out {
		sort.Ints(out[v].Seqs)
	}
	return out
}

// checkPartition verifies a partitioner's output covers every
// sequence exactly once with ascending per-volume order — the
// invariants the exact merge depends on. The coordinator runs it on
// every request (it is O(bank) and catches a buggy third-party
// Partitioner before it silently drops sequences).
func checkPartition(lens []int, vols []Volume) error {
	seen := make([]bool, len(lens))
	total := 0
	for vi, v := range vols {
		if len(v.Seqs) == 0 {
			return fmt.Errorf("cluster: partitioner produced empty volume %d", vi)
		}
		prev := -1
		for _, s := range v.Seqs {
			if s < 0 || s >= len(lens) {
				return fmt.Errorf("cluster: volume %d references sequence %d outside [0,%d)", vi, s, len(lens))
			}
			if s <= prev {
				return fmt.Errorf("cluster: volume %d sequences not ascending at %d", vi, s)
			}
			if seen[s] {
				return fmt.Errorf("cluster: sequence %d assigned to two volumes", s)
			}
			seen[s] = true
			prev = s
			total++
		}
	}
	if total != len(lens) {
		return fmt.Errorf("cluster: partition covers %d of %d sequences", total, len(lens))
	}
	return nil
}
