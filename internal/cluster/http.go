package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"seedblast/internal/service"
	"seedblast/internal/telemetry"
)

// ServerConfig tunes the coordinator daemon's job store.
type ServerConfig struct {
	// MaxJobsRetained caps finished jobs kept pollable. Zero or
	// negative means 256.
	MaxJobsRetained int
	// JobTTL expires finished jobs by age, like the worker daemon's.
	// Zero means 15 minutes; negative disables.
	JobTTL time.Duration
	// MaxQueued caps jobs accepted but not yet finished (each pins its
	// banks and fans out onto every worker). Submissions beyond it get
	// 503. Zero means 1024; negative disables.
	MaxQueued int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 256
	}
	if c.JobTTL == 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 1024
	}
	return c
}

// Server fronts a Coordinator with the same submit/poll/fetch/cancel
// job API the workers speak, so a client cannot tell a coordinator
// from a single worker — except for the extra /cluster/metrics
// endpoint and the scatter-gather fan-out behind every job.
type Server struct {
	coord     *Coordinator
	store     *service.JobStore[*clusterJob]
	maxQueued int

	mu      sync.Mutex
	seq     int
	pending int // jobs accepted but not finished
}

// clusterJob is one asynchronous scatter-gather comparison.
type clusterJob struct {
	id     string
	mode   string
	trace  *telemetry.Trace
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     service.JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	report    *Report
	err       error
}

// Done and FinishedAt satisfy service.JobStoreEntry, so the cluster
// daemon shares the worker daemon's eviction policy and store.
func (j *clusterJob) Done() <-chan struct{} { return j.done }

func (j *clusterJob) FinishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// NewServer returns a coordinator daemon front end. Its job store
// sweeps expired jobs in the background like the worker daemon's;
// call Close on shutdown to stop the sweeper.
func NewServer(coord *Coordinator, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		coord:     coord,
		store:     service.NewJobStore[*clusterJob](cfg.MaxJobsRetained, cfg.JobTTL),
		maxQueued: cfg.MaxQueued,
	}
	s.store.StartSweeper(service.DefaultSweepInterval(cfg.JobTTL))
	return s
}

// Close stops the server's background job-store sweeper.
func (s *Server) Close() { s.store.StopSweeper() }

// NewHandler returns the daemon's HTTP API:
//
//	POST   /v1/jobs                 submit a comparison; returns {"id": ...}
//	GET    /v1/jobs                 list job summaries
//	GET    /v1/jobs/{id}            poll one job's status
//	DELETE /v1/jobs/{id}            cancel a job (propagates to workers)
//	GET    /v1/jobs/{id}/alignments fetch a finished job's merged alignments
//	                                (?stream=1: chunked NDJSON, as on workers)
//	GET    /v1/jobs/{id}/trace      the job's span trace: coordinator
//	                                partition/scatter/gather spans plus
//	                                every worker's per-shard stage spans,
//	                                grafted at gather under one trace ID
//	GET    /metrics                 Prometheus text exposition (the
//	                                coordinator registry, per-worker
//	                                volume-latency histograms included)
//	GET    /cluster/metrics         per-worker latency/retry and volume-skew stats
//	                                (historical hand-rendered form)
//	GET    /healthz                 liveness probe
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/alignments", s.alignments)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	mux.Handle("GET /metrics", s.coord.Registry().Handler())
	mux.HandleFunc("GET /cluster/metrics", s.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var body service.JobRequestJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, service.MaxRequestBytes))
	if err := dec.Decode(&body); err != nil {
		service.WriteError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(body.Query) == 0 {
		service.WriteError(w, http.StatusBadRequest, "request needs a query bank")
		return
	}
	if body.Genome != "" {
		// Genome mode partitions the genome, not a sequence list; the
		// cluster layer does not implement that cut yet.
		service.WriteError(w, http.StatusBadRequest, "cluster serves bank-vs-bank jobs; submit genome jobs to a worker directly")
		return
	}
	if len(body.Subject) == 0 {
		service.WriteError(w, http.StatusBadRequest, "request needs a subject bank")
		return
	}
	if body.Options.SearchSpace != nil {
		service.WriteError(w, http.StatusBadRequest, "searchSpace is set by the coordinator; submit without it")
		return
	}

	// The request trace: coordinator spans and, grafted at gather,
	// every worker's spans — all under one trace ID, taken from the
	// submitter's header when present (a client correlating its own
	// telemetry with the cluster's).
	tid := r.Header.Get(telemetry.TraceHeader)
	if tid == "" {
		tid = telemetry.NewTraceID()
	}
	tr := telemetry.NewTrace(tid)
	ctx, cancel := context.WithCancel(telemetry.ContextWithTrace(context.Background(), tr))
	s.mu.Lock()
	if s.maxQueued > 0 && s.pending >= s.maxQueued {
		s.mu.Unlock()
		cancel()
		service.WriteError(w, http.StatusServiceUnavailable, "%d jobs pending, queue full", s.maxQueued)
		return
	}
	s.pending++
	s.seq++
	j := &clusterJob{
		id:        fmt.Sprintf("cjob-%d", s.seq),
		mode:      "bank",
		trace:     tr,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     service.JobQueued,
		submitted: time.Now(),
	}
	// Added under s.mu so concurrent submits land in the store in id
	// order (list ordering and oldest-first eviction rely on it).
	s.store.Add(j.id, j)
	s.mu.Unlock()

	go func() {
		defer cancel()
		j.mu.Lock()
		j.state = service.JobRunning
		j.started = time.Now()
		j.mu.Unlock()
		rep, err := s.coord.Compare(ctx, body.Query, body.Subject, body.Options)
		j.mu.Lock()
		j.finished = time.Now()
		if err != nil {
			j.state = service.JobFailed
			j.err = err
		} else {
			j.state = service.JobDone
			j.report = rep
		}
		j.mu.Unlock()
		close(j.done)
		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
		s.store.Prune()
	}()
	service.WriteJSON(w, http.StatusAccepted, map[string]string{
		"id": j.id, "state": string(service.JobQueued), "traceId": tr.ID(),
	})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*clusterJob, bool) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		service.WriteError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j, ok
}

func (j *clusterJob) statusJSON() service.JobStatusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := service.JobStatusJSON{
		ID:        j.id,
		State:     string(j.state),
		Mode:      j.mode,
		TraceID:   j.trace.ID(),
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		started := j.started
		st.Started = &started
	}
	if !j.finished.IsZero() {
		finished := j.finished
		st.Finished = &finished
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.report != nil {
		n := len(j.report.Alignments)
		st.Alignments = &n
		hits := j.report.Hits
		st.Hits = &hits
		pairs := j.report.Pairs
		st.Pairs = &pairs
		wall := j.report.WallMS
		st.WallMS = &wall
	}
	return st
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		service.WriteJSON(w, http.StatusOK, j.statusJSON())
	}
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := s.store.All()
	out := make([]service.JobStatusJSON, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.statusJSON())
	}
	service.WriteJSON(w, http.StatusOK, out)
}

// trace serves the job's stitched span trace: the coordinator's
// partition/scatter/volume/gather spans plus each worker's per-shard
// stage spans (grafted at gather with worker= and volume= attributes),
// all under one trace ID.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		service.WriteJSON(w, http.StatusOK, j.trace.JSON())
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		j.cancel()
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		service.WriteJSON(w, http.StatusOK, map[string]string{"id": j.id, "state": string(state)})
	}
}

func (s *Server) alignments(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	state, err, rep := j.state, j.err, j.report
	j.mu.Unlock()
	switch state {
	case service.JobFailed:
		service.WriteError(w, http.StatusConflict, "job failed: %v", err)
		return
	case service.JobQueued, service.JobRunning:
		w.Header().Set("Retry-After", "1")
		service.WriteError(w, http.StatusConflict, "job is %s; poll until done", state)
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		// Same NDJSON dialect as the workers, so Client.StreamAlignments
		// cannot tell a coordinator from a worker.
		service.WriteNDJSON(w, func(yield func(service.AlignmentJSON) bool) {
			for _, a := range rep.Alignments {
				if !yield(a) {
					return
				}
			}
		})
		return
	}
	aligns := rep.Alignments
	if aligns == nil {
		// A zero-match merge is nil internally; the wire contract is an
		// empty array, exactly as the worker daemon answers.
		aligns = []service.AlignmentJSON{}
	}
	service.WriteJSON(w, http.StatusOK, aligns)
}

// metrics renders the coordinator counters in the Prometheus text
// exposition format: request totals, retry counts, per-worker volume
// throughput and latency, and the last partition's volume skew.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	m := s.coord.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(name string, v any) { fmt.Fprintf(w, "seedclusterd_%s %v\n", name, v) }
	p("requests_total", m.Requests)
	p("requests_completed_total", m.Completed)
	p("requests_failed_total", m.Failed)
	p("volume_retries_total", m.Retries)
	p("last_volumes", m.LastVolumes)
	p("last_volume_skew", m.LastSkew)
	for _, wm := range m.Workers {
		l := fmt.Sprintf("{worker=%q}", wm.URL)
		fmt.Fprintf(w, "seedclusterd_worker_volumes_total%s %d\n", l, wm.Volumes)
		fmt.Fprintf(w, "seedclusterd_worker_failures_total%s %d\n", l, wm.Failures)
		fmt.Fprintf(w, "seedclusterd_worker_latency_seconds_total%s %v\n", l, wm.TotalLatency.Seconds())
		fmt.Fprintf(w, "seedclusterd_worker_latency_seconds_max%s %v\n", l, wm.MaxLatency.Seconds())
		fmt.Fprintf(w, "seedclusterd_worker_latency_seconds_mean%s %v\n", l, wm.MeanLatency().Seconds())
	}
}
