package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/gapped"
	"seedblast/internal/pipeline"
	"seedblast/internal/stats"
)

// LocalConfig tunes the in-process scatter-gather.
type LocalConfig struct {
	// Partitioner cuts the subject bank into volumes. Nil means
	// SizeBalanced.
	Partitioner Partitioner
	// Volumes is how many volumes to cut. Zero means GOMAXPROCS
	// (capped at the subject sequence count by the partitioner).
	Volumes int
	// Parallel bounds how many volumes are compared at once. Zero
	// means all of them.
	Parallel int
}

// Local runs the cluster's scatter-gather inside one process: the
// subject bank is partitioned exactly like the distributed
// coordinator's, but each volume runs through its own pipeline engine
// via core.CompareContext instead of a remote worker — the
// single-binary multi-socket deployment, and the reference
// implementation the HTTP path is equivalence-tested against. A Local
// is safe for concurrent use.
type Local struct {
	cfg LocalConfig
}

// NewLocal returns an in-process scatter-gather runner.
func NewLocal(cfg LocalConfig) *Local {
	if cfg.Partitioner == nil {
		cfg.Partitioner = SizeBalanced{}
	}
	if cfg.Volumes <= 0 {
		cfg.Volumes = runtime.GOMAXPROCS(0)
	}
	return &Local{cfg: cfg}
}

// LocalResult is the merged outcome of an in-process scatter-gather
// run.
type LocalResult struct {
	// Alignments are globally numbered and ranked exactly as a
	// single-node core.Compare over the unpartitioned bank.
	Alignments []gapped.Alignment
	Hits       int
	Pairs      int64
	GappedWork gapped.Stats

	// Volumes is the partition used; PerVolume[i] is volume i's engine
	// accounting (its skew across volumes is the load-balance signal),
	// and Metrics merges them (aggregate work, not elapsed time).
	Volumes   []Volume
	PerVolume []pipeline.Metrics
	Metrics   pipeline.Metrics
}

// Compare partitions the subject bank and runs one comparison per
// volume, each with the full bank's search-space geometry, then
// merges. Options semantics match core.Compare; a caller-provided
// SubjectIndex is rejected (it describes the unpartitioned bank, and
// silently dropping it would hide the performance regression).
func (l *Local) Compare(pctx context.Context, query, subject *bank.Bank, opt core.Options) (*LocalResult, error) {
	if query == nil || subject == nil {
		return nil, fmt.Errorf("cluster: Compare needs both banks")
	}
	if opt.SubjectIndex != nil {
		return nil, fmt.Errorf("cluster: SubjectIndex is whole-bank; it cannot be reused across volumes")
	}
	lens := make([]int, subject.Len())
	for i := range lens {
		lens[i] = len(subject.Seq(i))
	}
	vols := l.cfg.Partitioner.Partition(lens, l.cfg.Volumes)
	if err := checkPartition(lens, vols); err != nil {
		return nil, fmt.Errorf("%w (partitioner %q)", err, l.cfg.Partitioner.Name())
	}
	opt.SearchSpaceOverride = stats.SearchSpace{DBLen: subject.TotalResidues(), DBSeqs: subject.Len()}

	parallel := l.cfg.Parallel
	if parallel <= 0 || parallel > len(vols) {
		parallel = len(vols)
	}

	ctx, cancel := context.WithCancel(pctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	perVol := make([]*core.Result, len(vols))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for vi := range vols {
		wg.Add(1)
		go func(vi int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			sub := bank.New(fmt.Sprintf("%s/vol%d", subject.Name(), vi))
			for _, gi := range vols[vi].Seqs {
				sub.Add(subject.ID(gi), subject.Seq(gi))
			}
			res, err := core.CompareContext(ctx, query, sub, opt)
			if err != nil {
				fail(fmt.Errorf("cluster: volume %d: %w", vi, err))
				return
			}
			perVol[vi] = res
		}(vi)
	}
	wg.Wait()
	if perr := pctx.Err(); perr != nil {
		return nil, perr
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := &LocalResult{Volumes: vols, PerVolume: make([]pipeline.Metrics, len(vols))}
	aligns := make([][]gapped.Alignment, len(vols))
	for vi, res := range perVol {
		aligns[vi] = res.Alignments
		out.Hits += res.Hits
		out.Pairs += res.Pairs
		out.GappedWork.Hits += res.GappedWork.Hits
		out.GappedWork.Contained += res.GappedWork.Contained
		out.GappedWork.PreFiltered += res.GappedWork.PreFiltered
		out.GappedWork.Extended += res.GappedWork.Extended
		out.GappedWork.DPRows += res.GappedWork.DPRows
		out.GappedWork.DPCells += res.GappedWork.DPCells
		out.PerVolume[vi] = res.Pipeline
		out.Metrics.Merge(&res.Pipeline)
	}
	out.Alignments = MergeAlignments(vols, aligns)
	return out, nil
}
