package cluster

import (
	"sort"

	"seedblast/internal/gapped"
	"seedblast/internal/service"
)

// MergeAlignments stitches per-volume gapped alignments back into the
// global subject numbering and re-ranks them under the engine's
// (Seq0, EValue, Seq1) ordering. perVol[i] must be the alignments the
// engine produced for vols[i], with volume-local Seq1. Because every
// (Seq0, Seq1) pair lives in exactly one volume and workers computed
// E-values against the full-bank search space, the result is
// bit-identical to a single-node run: equal keys can only come from
// the same pair, hence the same volume, and the stable sort preserves
// that volume's internal order exactly as the single-node sort would.
func MergeAlignments(vols []Volume, perVol [][]gapped.Alignment) []gapped.Alignment {
	var out []gapped.Alignment
	for vi, as := range perVol {
		for _, a := range as {
			a.Seq1 = vols[vi].Seqs[a.Seq1]
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Seq0 != b.Seq0 {
			return a.Seq0 < b.Seq0
		}
		if a.EValue != b.EValue {
			return a.EValue < b.EValue
		}
		return a.Seq1 < b.Seq1
	})
	return out
}

// rankedAlignment pairs a wire alignment with the global sequence
// numbers its ids resolve to, so JSON results can be ranked exactly
// like engine results.
type rankedAlignment struct {
	a    service.AlignmentJSON
	q, s int
}

// mergeWireAlignments is MergeAlignments for results gathered over
// HTTP: per-volume AlignmentJSON lists whose Query/Subject fields are
// the ids the coordinator submitted. queryIdx maps a query id to its
// bank position; vols[i] gives volume i's global subject numbers, and
// subjIdxInVol maps a subject id to its position within its volume's
// submission order (ids are resolved per volume, so duplicate subject
// ids across volumes cannot collide).
func mergeWireAlignments(vols []Volume, perVol [][]service.AlignmentJSON,
	queryIdx map[string]int, subjIdxInVol []map[string]int) []service.AlignmentJSON {
	var ranked []rankedAlignment
	for vi, as := range perVol {
		for _, a := range as {
			ranked = append(ranked, rankedAlignment{
				a: a,
				q: queryIdx[a.Query],
				s: vols[vi].Seqs[subjIdxInVol[vi][a.Subject]],
			})
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := &ranked[i], &ranked[j]
		if a.q != b.q {
			return a.q < b.q
		}
		if a.a.EValue != b.a.EValue {
			return a.a.EValue < b.a.EValue
		}
		return a.s < b.s
	})
	out := make([]service.AlignmentJSON, len(ranked))
	for i := range ranked {
		out[i] = ranked[i].a
	}
	return out
}
