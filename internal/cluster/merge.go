package cluster

import (
	"fmt"
	"sort"

	"seedblast/internal/gapped"
	"seedblast/internal/service"
)

// MergeAlignments stitches per-volume gapped alignments back into the
// global subject numbering and re-ranks them under the engine's
// (Seq0, EValue, Seq1) ordering. perVol[i] must be the alignments the
// engine produced for vols[i], with volume-local Seq1. Because every
// (Seq0, Seq1) pair lives in exactly one volume and workers computed
// E-values against the full-bank search space, the result is
// bit-identical to a single-node run: equal keys can only come from
// the same pair, hence the same volume, and the stable sort preserves
// that volume's internal order exactly as the single-node sort would.
func MergeAlignments(vols []Volume, perVol [][]gapped.Alignment) []gapped.Alignment {
	var out []gapped.Alignment
	for vi, as := range perVol {
		for _, a := range as {
			a.Seq1 = vols[vi].Seqs[a.Seq1]
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Seq0 != b.Seq0 {
			return a.Seq0 < b.Seq0
		}
		if a.EValue != b.EValue {
			return a.EValue < b.EValue
		}
		return a.Seq1 < b.Seq1
	})
	return out
}

// rankedAlignment pairs a wire alignment with the global sequence
// numbers its ids resolve to, so JSON results can be ranked exactly
// like engine results.
type rankedAlignment struct {
	a    service.AlignmentJSON
	q, s int
}

// rankLess orders wire alignments under the engine's global
// (Seq0, EValue, Seq1) ranking. Equal full keys can only come from the
// same (query, subject) pair, hence the same volume; the volume number
// completes a total order for determinism.
func rankLess(a, b *rankedAlignment, va, vb int) bool {
	if a.q != b.q {
		return a.q < b.q
	}
	if a.a.EValue != b.a.EValue {
		return a.a.EValue < b.a.EValue
	}
	if a.s != b.s {
		return a.s < b.s
	}
	return va < vb
}

// mergeWireAlignments is MergeAlignments for fully-buffered results
// gathered over HTTP (see mergeAlignmentStreams for the streaming
// k-way merge the coordinator uses; this buffered form is the
// reference it is equivalence-tested against). queryIdx maps a query
// id to its bank position; vols[i] gives volume i's global subject
// numbers, and subjIdxInVol maps a subject id to its position within
// its volume's submission order (ids are resolved per volume, so
// duplicate subject ids across volumes cannot collide).
func mergeWireAlignments(vols []Volume, perVol [][]service.AlignmentJSON,
	queryIdx map[string]int, subjIdxInVol []map[string]int) []service.AlignmentJSON {
	var ranked []rankedAlignment
	var volOf []int
	for vi, as := range perVol {
		for _, a := range as {
			ranked = append(ranked, rankedAlignment{
				a: a,
				q: queryIdx[a.Query],
				s: vols[vi].Seqs[subjIdxInVol[vi][a.Subject]],
			})
			volOf = append(volOf, vi)
		}
	}
	order := make([]int, len(ranked))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return rankLess(&ranked[order[i]], &ranked[order[j]], volOf[order[i]], volOf[order[j]])
	})
	out := make([]service.AlignmentJSON, len(ranked))
	for i, oi := range order {
		out[i] = ranked[oi].a
	}
	return out
}

// volumeCursor is one volume's position in the k-way merge: a pull
// over its (already globally-ranked) wire stream plus the current
// head. The coordinator primes each cursor (advances it once) the
// moment its volume job completes, which starts the worker writing the
// response and so freezes the result against job-store eviction while
// the remaining volumes finish.
type volumeCursor struct {
	vi     int
	pull   func() (service.AlignmentJSON, error, bool)
	stop   func()
	cur    rankedAlignment
	primed bool // cur holds an unconsumed head
	done   bool // stream exhausted
	count  int  // alignments consumed from this volume
}

// advance loads the next stream element into cur, setting primed, or
// done on exhaustion.
func (c *volumeCursor) advance(rank func(vi int, a service.AlignmentJSON) rankedAlignment) error {
	a, err, ok := c.pull()
	if !ok {
		c.primed, c.done = false, true
		return nil
	}
	if err != nil {
		c.primed, c.done = false, true
		return err
	}
	c.cur = rank(c.vi, a)
	c.primed = true
	c.count++
	return nil
}

// mergeAlignmentStreams k-way merges per-volume wire streams into the
// globally ranked result without buffering any volume's input whole.
// Each stream must already be ordered under the global ranking — which
// per-volume results are: a worker sorts by (Seq0, EValue, local
// Seq1), query numbering is shared, and a volume's local→global
// subject remap is monotonic (Volume.Seqs ascend). Equal full keys
// only occur within one volume (one (query, subject) pair lives in
// exactly one volume) and FIFO pops preserve their stream order, so
// the merge is bit-identical to buffering everything and sorting —
// pinned against mergeWireAlignments by tests.
func mergeAlignmentStreams(curs []*volumeCursor,
	rank func(vi int, a service.AlignmentJSON) rankedAlignment) ([]service.AlignmentJSON, error) {
	// Seed the heap with each stream's head (cursors may arrive primed).
	h := make([]*volumeCursor, 0, len(curs))
	for _, c := range curs {
		if !c.primed && !c.done {
			if err := c.advance(rank); err != nil {
				return nil, fmt.Errorf("volume %d: %w", c.vi, err)
			}
		}
		if c.primed {
			h = append(h, c)
		}
	}
	less := func(a, b *volumeCursor) bool { return rankLess(&a.cur, &b.cur, a.vi, b.vi) }
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, less)
	}

	var out []service.AlignmentJSON
	for len(h) > 0 {
		top := h[0]
		out = append(out, top.cur.a)
		if err := top.advance(rank); err != nil {
			return nil, fmt.Errorf("volume %d: %w", top.vi, err)
		}
		if top.done {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(h, 0, less)
		}
	}
	return out, nil
}

// siftDown restores the min-heap property at i.
func siftDown[T any](h []T, i int, less func(a, b T) bool) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && less(h[l], h[m]) {
			m = l
		}
		if r < len(h) && less(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
