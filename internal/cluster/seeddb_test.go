package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/index"
	"seedblast/internal/service"
)

// TestClusterPrebuiltVolumeDBs is the end-to-end test for the seeddb
// cluster workflow: `seeddb build -volumes K` cuts the subject bank
// with the same deterministic partitioner the coordinator uses, so
// when volume V's seeddb is preloaded on worker V (the coordinator's
// round-robin preference), every scattered volume job fingerprints
// onto a pre-warmed cache entry — no worker runs step 1 at all — and
// the merged report is still bit-identical to a single cold node.
func TestClusterPrebuiltVolumeDBs(t *testing.T) {
	const volumes = 2
	query, subject := wireWorkload(t, 8, 57)
	want := singleNodeReference(t, query, subject)

	// Rebuild the volume banks exactly as `seeddb build -volumes` does:
	// partition by encoded residue length (identical to the wire
	// length: the protein encoding is one code per letter) under the
	// same strategy and count the coordinator will use.
	lens := make([]int, len(subject))
	for i, s := range subject {
		lens[i] = len(s.Seq)
	}
	part := SizeBalanced{}
	vols := part.Partition(lens, volumes)
	if len(vols) != volumes {
		t.Fatalf("partitioned into %d volumes, want %d", len(vols), volumes)
	}

	opt := core.DefaultOptions()
	var workerURLs []string
	var svcs []*service.Service
	dir := t.TempDir()
	for vi, vol := range vols {
		vb := bank.New(fmt.Sprintf("vol%d", vi))
		for _, gi := range vol.Seqs {
			enc, err := alphabet.EncodeProtein(subject[gi].Seq)
			if err != nil {
				t.Fatal(err)
			}
			vb.Add(subject[gi].ID, enc)
		}
		ix, err := index.BuildParallel(vb, opt.Seed, opt.N, 1)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("vol%d.seeddb", vi))
		if err := ix.WriteFile(path); err != nil {
			t.Fatal(err)
		}

		svc := service.New(service.Config{MaxConcurrent: 2})
		if _, err := svc.PreloadDB(path); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(service.NewHandler(svc))
		t.Cleanup(func() { srv.Close(); svc.Close() })
		svcs = append(svcs, svc)
		workerURLs = append(workerURLs, srv.URL)
	}

	coord, err := New(Config{Workers: workerURLs, Partitioner: part, Volumes: volumes})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Compare(context.Background(), query, subject, wireOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Alignments, want) {
		t.Fatalf("prebuilt-volume gather diverged: %d vs %d alignments", len(rep.Alignments), len(want))
	}

	// The point of the exercise: every volume job hit its worker's
	// pre-warmed cache — no worker ran step 1 on its subject volume.
	// (IndexBusy stays nonzero: it also counts query-side shard
	// indexing, which is per-request by design.)
	for wi, svc := range svcs {
		st := svc.Metrics()
		if st.Cache.Misses != 0 {
			t.Errorf("worker %d: %d cache misses, want 0 (prebuilt volume should cover its scatter)", wi, st.Cache.Misses)
		}
		if st.Cache.Hits == 0 {
			t.Errorf("worker %d: no cache hits; did the coordinator's scatter reach it?", wi)
		}
	}

	// No retries, exactly one volume per worker: the round-robin
	// preference is what makes "vol K on worker K" line up.
	if rep.Retries != 0 {
		t.Errorf("%d retries; volume-to-worker preference did not hold", rep.Retries)
	}
	for _, pv := range rep.PerVolume {
		if pv.Worker != workerURLs[pv.Volume%len(workerURLs)] {
			t.Errorf("volume %d served by %s, want its preferred worker %s",
				pv.Volume, pv.Worker, workerURLs[pv.Volume%len(workerURLs)])
		}
	}
}
