package cluster

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"seedblast/internal/bank"
	"seedblast/internal/core"
	"seedblast/internal/gapped"
	"seedblast/internal/index"
)

// testWorkload returns a query bank and a subject bank holding mutated
// copies of the queries plus unrelated decoys, so the pipeline finds
// real alignments against a length-diverse bank.
func testWorkload(t testing.TB, n int, seed int64) (*bank.Bank, *bank.Bank) {
	t.Helper()
	b0 := bank.GenerateProteins(bank.ProteinConfig{N: n, MeanLen: 100, LenJitter: 40, Seed: seed})
	rng := bank.NewRNG(seed + 1000)
	decoys := bank.GenerateProteins(bank.ProteinConfig{N: n, MeanLen: 140, LenJitter: 60, Seed: seed + 2000})
	b1 := bank.New("subjects")
	for i := 0; i < b0.Len(); i++ {
		b1.Add(fmt.Sprintf("s%d", 2*i), bank.MutateProtein(rng, b0.Seq(i), 0.15))
		b1.Add(fmt.Sprintf("s%d", 2*i+1), decoys.Seq(i))
	}
	return b0, b1
}

func testOptions() core.Options {
	opt := core.DefaultOptions()
	opt.Workers = 1
	g := gapped.DefaultConfig()
	g.MaxEValue = 10
	g.Workers = 1
	opt.Gapped = g
	return opt
}

// TestLocalEquivalence is the subsystem's acceptance criterion: the
// merged scatter-gather output — alignments, E-values, and ranking —
// must be bit-identical to a single-node core.Compare over the
// unpartitioned bank, for multiple partitioning strategies and volume
// counts.
func TestLocalEquivalence(t *testing.T) {
	b0, b1 := testWorkload(t, 10, 41)
	opt := testOptions()
	want, err := core.Compare(b0, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Alignments) == 0 {
		t.Fatal("workload produced no alignments; the equivalence test would be vacuous")
	}

	for _, p := range partitioners() {
		for _, volumes := range []int{2, 3, 5, 7} {
			t.Run(fmt.Sprintf("%s/%dvol", p.Name(), volumes), func(t *testing.T) {
				l := NewLocal(LocalConfig{Partitioner: p, Volumes: volumes})
				got, err := l.Compare(context.Background(), b0, b1, testOptions())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Alignments, want.Alignments) {
					t.Fatalf("merged alignments differ from single-node run:\n got %d: %+v\nwant %d: %+v",
						len(got.Alignments), head(got.Alignments), len(want.Alignments), head(want.Alignments))
				}
				if got.Hits != want.Hits || got.Pairs != want.Pairs {
					t.Errorf("hits/pairs differ: got %d/%d, want %d/%d", got.Hits, got.Pairs, want.Hits, want.Pairs)
				}
				if got.GappedWork != want.GappedWork {
					t.Errorf("gapped work differs: got %+v, want %+v", got.GappedWork, want.GappedWork)
				}
				if len(got.Volumes) != len(got.PerVolume) {
					t.Fatalf("%d volumes but %d per-volume metrics", len(got.Volumes), len(got.PerVolume))
				}
				shards := 0
				for _, pm := range got.PerVolume {
					shards += pm.Shards
				}
				if shards != got.Metrics.Shards || shards == 0 {
					t.Errorf("merged metrics shards %d, per-volume sum %d", got.Metrics.Shards, shards)
				}
			})
		}
	}
}

func head(as []gapped.Alignment) []gapped.Alignment {
	if len(as) > 4 {
		return as[:4]
	}
	return as
}

// A whole-bank SubjectIndex cannot be reused across volumes; silently
// dropping it would hide the rebuild cost, so Local must reject it.
func TestLocalRejectsSubjectIndex(t *testing.T) {
	b0, b1 := testWorkload(t, 3, 42)
	opt := testOptions()
	ix, err := index.BuildParallel(b1, opt.Seed, opt.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt.SubjectIndex = ix
	if _, err := NewLocal(LocalConfig{Volumes: 2}).Compare(context.Background(), b0, b1, opt); err == nil {
		t.Fatal("whole-bank SubjectIndex accepted by the cluster's local mode")
	}
}

func TestLocalCancellation(t *testing.T) {
	b0, b1 := testWorkload(t, 12, 43)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every volume must abort promptly
	l := NewLocal(LocalConfig{Volumes: 4})
	start := time.Now()
	_, err := l.Compare(ctx, b0, b1, testOptions())
	if err == nil {
		t.Fatal("cancelled Compare returned no error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancelled Compare took %v", time.Since(start))
	}
}
