package cluster

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"time"

	"seedblast/internal/service"
	"seedblast/internal/telemetry"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers are the seedservd base URLs the coordinator scatters
	// over. At least one is required.
	Workers []string
	// Partitioner cuts the subject bank into volumes. Nil means
	// SizeBalanced.
	Partitioner Partitioner
	// Volumes is how many volumes each request is cut into. Zero means
	// one per worker. More volumes than workers is useful when worker
	// capacity is uneven: volumes queue behind the fan-out bound and
	// fast workers take more of them — at the cost of more per-volume
	// overhead.
	Volumes int
	// MaxAttempts caps how many distinct workers a volume is tried on
	// before the whole request fails. Zero means every worker once.
	MaxAttempts int
	// FanOut bounds how many volume jobs the coordinator keeps in
	// flight at once per request. Zero means one per worker.
	FanOut int
	// PollInterval is the job-status poll cadence. Zero means 25 ms.
	PollInterval time.Duration
	// Client tunes the per-worker HTTP clients (timeouts, retry
	// backoff for idempotent calls).
	Client service.ClientConfig
	// Registry, when set, is the metrics registry the coordinator
	// registers its counters and per-worker latency histograms on. Nil
	// means a private one; either way Coordinator.Registry serves it.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Partitioner == nil {
		c.Partitioner = SizeBalanced{}
	}
	if c.Volumes <= 0 {
		c.Volumes = len(c.Workers)
	}
	if c.MaxAttempts <= 0 || c.MaxAttempts > len(c.Workers) {
		c.MaxAttempts = len(c.Workers)
	}
	if c.FanOut <= 0 {
		c.FanOut = len(c.Workers)
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	return c
}

// Coordinator scatters comparison requests across seedservd workers
// volume by volume and gathers the merged report. It is safe for
// concurrent use; all state beyond configuration lives in the
// per-request call frames and the metrics counters.
type Coordinator struct {
	cfg     Config
	clients []*service.Client
	met     *metrics
	reg     *telemetry.Registry
}

// New validates the configuration and returns a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: at least one worker URL is required")
	}
	cfg = cfg.withDefaults()
	clients := make([]*service.Client, len(cfg.Workers))
	for i, u := range cfg.Workers {
		clients[i] = service.NewClient(u, cfg.Client)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	met := newMetrics(cfg.Workers)
	met.register(reg, cfg.Workers)
	return &Coordinator{cfg: cfg, clients: clients, met: met, reg: reg}, nil
}

// Config returns the resolved configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// Registry returns the metrics registry the coordinator reports on;
// the cluster daemon serves it on /metrics.
func (c *Coordinator) Registry() *telemetry.Registry { return c.reg }

// Metrics returns a snapshot of the coordinator's counters.
func (c *Coordinator) Metrics() MetricsSnapshot { return c.met.snapshot() }

// WaitHealthy blocks until every worker answers its health probe or
// ctx is cancelled.
func (c *Coordinator) WaitHealthy(ctx context.Context) error {
	for _, cl := range c.clients {
		if err := cl.WaitHealthy(ctx); err != nil {
			return err
		}
	}
	return nil
}

// VolumeReport describes how one volume of a request was served.
type VolumeReport struct {
	Volume     int // volume number
	Worker     string
	Seqs       int
	Residues   int
	Attempts   int // 1 = no retries
	Latency    time.Duration
	Alignments int
}

// Report is the gathered result of one scatter-gather comparison: the
// merged, globally re-ranked alignments plus per-volume accounting.
// Hits/Pairs/WallMS sum the workers' per-volume summaries (aggregate
// work, not elapsed time).
type Report struct {
	Alignments []service.AlignmentJSON
	Hits       int
	Pairs      int64
	WallMS     float64
	Volumes    int
	Retries    int // volume attempts beyond the first, summed
	PerVolume  []VolumeReport
}

// Compare scatters one comparison across the workers and gathers the
// merged report. The query goes to every worker; the subject bank is
// partitioned into volumes, and each volume job carries the full
// bank's search-space geometry so worker E-values are computed
// against the whole database. Alignments in the report are
// bit-identical (values and ranking) to submitting the unpartitioned
// request to a single worker.
//
// Options travel to the workers verbatim, which gives maxCandidates
// per-volume semantics: each worker applies the top-K cut within its
// own volume, so across V volumes a query can keep up to V×K
// subjects. Because a volume's candidate ranking is a sub-ranking of
// the whole bank's, partitioning tends to add sensitivity under the
// prefilter rather than remove it (modulo the stage's hashed scoring:
// volume-local sequence numbering shifts which accumulator cells
// collide, so scores — and near-tie cut decisions — can differ
// slightly from an unpartitioned run). The gather-side re-ranking and
// E-values are unaffected either way (the geometry is the full
// bank's), and with maxCandidates large enough that no volume cuts
// anything the gathered result is bit-identical to the unfiltered
// run. With maxCandidates absent or 0 the bit-identity guarantee
// above holds exactly.
//
// On the first volume failure (after per-volume retries across
// distinct workers are exhausted) the whole request fails and every
// outstanding worker job is cancelled; cancelling ctx does the same.
func (c *Coordinator) Compare(ctx context.Context, query, subject []service.SequenceJSON, opt service.OptionsJSON) (*Report, error) {
	if len(query) == 0 {
		return nil, fmt.Errorf("cluster: request needs a query bank")
	}
	if len(subject) == 0 {
		return nil, fmt.Errorf("cluster: request needs a subject bank")
	}
	query = normalizeIDs("query", query)
	subject = normalizeIDs("subject", subject)
	// The gather maps wire ids back to global sequence numbers, so ids
	// must be unique — a duplicate would silently remap alignments onto
	// the wrong sequence and break the bit-identical ordering guarantee.
	// (A single worker tolerates duplicates; the cluster rejects them
	// loudly rather than return a subtly misordered merge.)
	if err := checkUniqueIDs("query", query); err != nil {
		return nil, err
	}
	if err := checkUniqueIDs("subject", subject); err != nil {
		return nil, err
	}

	lens := make([]int, len(subject))
	dbLen := 0
	for i, s := range subject {
		lens[i] = len(s.Seq)
		dbLen += lens[i]
	}
	tr := telemetry.TraceFromContext(ctx)
	t0 := time.Now()
	vols := c.cfg.Partitioner.Partition(lens, c.cfg.Volumes)
	tr.Record("partition", t0, time.Since(t0),
		telemetry.Int("volumes", len(vols)), telemetry.String("partitioner", c.cfg.Partitioner.Name()))
	if err := checkPartition(lens, vols); err != nil {
		return nil, fmt.Errorf("%w (partitioner %q)", err, c.cfg.Partitioner.Name())
	}
	// The volume context: every worker computes significance against
	// the full bank, not its slice.
	opt.SearchSpace = &service.SearchSpaceJSON{DBLen: dbLen, DBSeqs: len(subject)}

	c.met.requestStarted(vols)
	rep, err := c.scatterGather(ctx, query, subject, opt, vols)
	c.met.requestDone(err)
	return rep, err
}

// volumeResult is one scattered volume's completed job with its
// already-opened (and primed) result stream, ready for the gather.
type volumeResult struct {
	status   *service.JobStatusJSON
	cursor   *volumeCursor
	worker   int
	attempts int
	latency  time.Duration
}

func (c *Coordinator) scatterGather(pctx context.Context, query, subject []service.SequenceJSON,
	opt service.OptionsJSON, vols []Volume) (*Report, error) {
	ctx, cancel := context.WithCancel(pctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel() // a lost volume sinks the request: stop scattering
	}

	rank := wireRanker(vols, query, subject)
	sem := make(chan struct{}, c.cfg.FanOut)
	results := make([]volumeResult, len(vols))
	// Every opened volume stream is released on exit, success or not
	// (stopping an exhausted stream is a no-op).
	defer func() {
		for i := range results {
			if cur := results[i].cursor; cur != nil {
				cur.stop()
			}
		}
	}()
	tr := telemetry.TraceFromContext(pctx)
	scatterStart := time.Now()
	var wg sync.WaitGroup
	for vi := range vols {
		wg.Add(1)
		go func(vi int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			res, err := c.runVolume(ctx, vi, vols[vi], query, subject, opt, rank)
			if err != nil {
				fail(err)
				return
			}
			results[vi] = res
		}(vi)
	}
	wg.Wait()
	tr.Record("scatter", scatterStart, time.Since(scatterStart), telemetry.Int("volumes", len(vols)))

	if perr := pctx.Err(); perr != nil {
		return nil, perr
	}
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}

	// Gather: k-way merge the per-volume result streams into the global
	// ranking. Each volume's stream was opened — and its head pulled —
	// the moment its job completed, so the worker began writing (and so
	// pinned) the result immediately; the merge then consumes the
	// streams head-first, buffering one in-flight record per volume on
	// the input side instead of every volume's full list plus ranking
	// scratch. The merged output itself is still materialized — the
	// async job API has to hold it for later fetches.
	rep := &Report{Volumes: len(vols)}
	curs := make([]*volumeCursor, len(vols))
	for vi := range results {
		curs[vi] = results[vi].cursor
	}
	gatherStart := time.Now()
	rep.Alignments, err = mergeAlignmentStreams(curs, rank)
	if err != nil {
		return nil, fmt.Errorf("cluster: gather: %w", err)
	}
	tr.Record("gather", gatherStart, time.Since(gatherStart), telemetry.Int("alignments", len(rep.Alignments)))

	for vi := range vols {
		r := &results[vi]
		st := r.status
		if st.Hits != nil {
			rep.Hits += *st.Hits
		}
		if st.Pairs != nil {
			rep.Pairs += *st.Pairs
		}
		if st.WallMS != nil {
			rep.WallMS += *st.WallMS
		}
		rep.Retries += r.attempts - 1
		rep.PerVolume = append(rep.PerVolume, VolumeReport{
			Volume:     vi,
			Worker:     c.cfg.Workers[r.worker],
			Seqs:       len(vols[vi].Seqs),
			Residues:   vols[vi].Residues,
			Attempts:   r.attempts,
			Latency:    r.latency,
			Alignments: r.cursor.count,
		})
	}
	return rep, nil
}

// wireRanker builds the id→global-number resolver the gather ranks
// wire alignments with.
func wireRanker(vols []Volume, query, subject []service.SequenceJSON) func(int, service.AlignmentJSON) rankedAlignment {
	queryIdx := make(map[string]int, len(query))
	for i, q := range query {
		if _, dup := queryIdx[q.ID]; !dup {
			queryIdx[q.ID] = i
		}
	}
	subjIdxInVol := make([]map[string]int, len(vols))
	for vi := range vols {
		m := make(map[string]int, len(vols[vi].Seqs))
		for local, gi := range vols[vi].Seqs {
			if _, dup := m[subject[gi].ID]; !dup {
				m[subject[gi].ID] = local
			}
		}
		subjIdxInVol[vi] = m
	}
	return func(vi int, a service.AlignmentJSON) rankedAlignment {
		return rankedAlignment{
			a: a,
			q: queryIdx[a.Query],
			s: vols[vi].Seqs[subjIdxInVol[vi][a.Subject]],
		}
	}
}

// runVolume tries one volume on up to MaxAttempts distinct workers,
// starting at the volume's preferred worker (volumes spread
// round-robin) and excluding workers that already failed this volume.
func (c *Coordinator) runVolume(ctx context.Context, vi int, vol Volume,
	query, subject []service.SequenceJSON, opt service.OptionsJSON,
	rank func(int, service.AlignmentJSON) rankedAlignment) (volumeResult, error) {
	sub := make([]service.SequenceJSON, len(vol.Seqs))
	for local, gi := range vol.Seqs {
		sub[local] = subject[gi]
	}
	req := &service.JobRequestJSON{Query: query, Subject: sub, Options: opt}

	var lastErr error
	attempts := 0
	for try := 0; try < len(c.clients) && attempts < c.cfg.MaxAttempts; try++ {
		// Round-robin from the preferred worker; every retry lands on a
		// worker this volume has not failed on yet.
		wi := (vi + try) % len(c.clients)
		attempts++
		start := time.Now()
		st, cur, err := c.runVolumeOn(ctx, c.clients[wi], req, vi, rank)
		if err == nil {
			latency := time.Since(start)
			c.met.volumeDone(wi, latency)
			telemetry.TraceFromContext(ctx).Record("volume", start, latency,
				telemetry.Int("volume", vi), telemetry.String("worker", c.cfg.Workers[wi]))
			return volumeResult{status: st, cursor: cur, worker: wi, attempts: attempts, latency: latency}, nil
		}
		if ctx.Err() != nil {
			// Cancellation, not worker failure: don't charge the worker.
			return volumeResult{}, ctx.Err()
		}
		if errors.As(err, new(*permanentError)) {
			// The request is at fault, not the worker: every worker would
			// reject or fail it the same way, so rotating workers only
			// multiplies the damage. Fail fast, charge nobody.
			return volumeResult{}, fmt.Errorf("cluster: volume %d on %s: %w",
				vi, c.cfg.Workers[wi], err)
		}
		retrying := attempts < c.cfg.MaxAttempts && try+1 < len(c.clients)
		c.met.volumeFailed(wi, retrying)
		lastErr = fmt.Errorf("cluster: volume %d on %s (attempt %d): %w",
			vi, c.cfg.Workers[wi], attempts, err)
	}
	return volumeResult{}, lastErr
}

// permanentError marks a volume failure no other worker can fix: the
// worker rejected the request as invalid (4xx) or ran the comparison
// and it failed deterministically. Transport errors and 5xx stay
// retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// runVolumeOn executes one volume job on one worker: submit → poll to
// completion → open the result stream and pull its head. Priming the
// stream immediately makes the worker start writing the response, so
// the result cannot be evicted from the worker's job store (max-jobs /
// job-ttl) while slower volumes finish; the records themselves are
// consumed later by the gather's k-way merge. A failure to open the
// stream counts as a worker failure — the caller retries the volume on
// another worker, exactly as a failed fetch always did. When the wait
// or the open is abandoned (context cancelled or worker unreachable)
// the job is best-effort cancelled on the worker over a detached
// context, so an abandoned volume does not keep burning a worker's
// admission slot.
func (c *Coordinator) runVolumeOn(ctx context.Context, cl *service.Client,
	req *service.JobRequestJSON, vi int,
	rank func(int, service.AlignmentJSON) rankedAlignment) (*service.JobStatusJSON, *volumeCursor, error) {
	id, err := cl.Submit(ctx, req)
	if err != nil {
		var ae *service.APIError
		if errors.As(err, &ae) && ae.StatusCode >= 400 && ae.StatusCode < 500 {
			return nil, nil, &permanentError{fmt.Errorf("submit rejected: %w", err)}
		}
		return nil, nil, fmt.Errorf("submit: %w", err)
	}
	abandon := func() {
		dctx, dcancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
		defer dcancel()
		_ = cl.Cancel(dctx, id)
	}
	st, err := cl.Wait(ctx, id, c.cfg.PollInterval)
	if err != nil {
		abandon()
		return nil, nil, fmt.Errorf("wait: %w", err)
	}
	if st.State != string(service.JobDone) {
		return nil, nil, &permanentError{fmt.Errorf("worker job %s: %s", st.State, st.Error)}
	}
	next, stop := iter.Pull2(cl.StreamAlignments(ctx, id))
	cur := &volumeCursor{vi: vi, pull: next, stop: stop}
	if err := cur.advance(rank); err != nil {
		stop()
		abandon()
		return nil, nil, fmt.Errorf("fetch: %w", err)
	}
	// Stitch the worker's spans into the request trace, stamped with
	// where they ran. The worker recorded them under the same trace ID
	// (Submit propagated it in the Seedblast-Trace-Id header). Strictly
	// best-effort: a trace fetch failure never fails the volume.
	if tr := telemetry.TraceFromContext(ctx); tr != nil {
		if wtj, terr := cl.Trace(ctx, id); terr == nil {
			tr.Graft(telemetry.SpansFromJSON(wtj.Spans),
				telemetry.String("worker", cl.BaseURL()), telemetry.Int("volume", vi))
		}
	}
	return st, cur, nil
}

// normalizeIDs fills empty sequence ids with the same positional
// naming the worker's decoder would use on the unpartitioned request,
// so a scattered volume job reports the exact ids a single-node run
// would — the merge and the equivalence guarantee both key on ids.
func normalizeIDs(name string, seqs []service.SequenceJSON) []service.SequenceJSON {
	out := make([]service.SequenceJSON, len(seqs))
	for i, s := range seqs {
		if s.ID == "" {
			s.ID = fmt.Sprintf("%s%d", name, i)
		}
		out[i] = s
	}
	return out
}

// checkUniqueIDs rejects duplicate ids after normalization (which can
// itself manufacture a clash: an explicit "subject1" next to a blank
// id at position 1).
func checkUniqueIDs(name string, seqs []service.SequenceJSON) error {
	seen := make(map[string]int, len(seqs))
	for i, s := range seqs {
		if prev, dup := seen[s.ID]; dup {
			return fmt.Errorf("cluster: duplicate %s id %q (sequences %d and %d); ids must be unique for an exact gather",
				name, s.ID, prev, i)
		}
		seen[s.ID] = i
	}
	return nil
}
