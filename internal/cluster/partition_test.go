package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

func partitioners() []Partitioner {
	return []Partitioner{SeqCount{}, SizeBalanced{}}
}

func TestPartitionCoversEverySequenceOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range partitioners() {
		for _, total := range []int{1, 2, 7, 100} {
			lens := make([]int, total)
			for i := range lens {
				lens[i] = 20 + rng.Intn(500)
			}
			for _, n := range []int{1, 2, 3, 5, total, total + 10} {
				vols := p.Partition(lens, n)
				if err := checkPartition(lens, vols); err != nil {
					t.Errorf("%s: total=%d n=%d: %v", p.Name(), total, n, err)
				}
				if want := min(n, total); len(vols) != want {
					t.Errorf("%s: total=%d n=%d: got %d volumes, want %d", p.Name(), total, n, len(vols), want)
				}
				for _, v := range vols {
					sum := 0
					for _, s := range v.Seqs {
						sum += lens[s]
					}
					if sum != v.Residues {
						t.Errorf("%s: volume Residues=%d, sequences sum to %d", p.Name(), v.Residues, sum)
					}
				}
			}
		}
	}
}

func TestPartitionEmptyAndDeterministic(t *testing.T) {
	for _, p := range partitioners() {
		if vols := p.Partition(nil, 4); vols != nil {
			t.Errorf("%s: empty bank should partition to nil, got %v", p.Name(), vols)
		}
		lens := []int{100, 400, 50, 50, 300, 120, 80}
		a := p.Partition(lens, 3)
		b := p.Partition(lens, 3)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: partition is not deterministic", p.Name())
		}
	}
}

// On a heavy-tailed bank, the greedy size-balanced cut must beat the
// contiguous count cut on residue skew — that is its whole point.
func TestSizeBalancedBeatsSeqCountOnSkewedBank(t *testing.T) {
	// A few giants up front followed by many small sequences: the
	// contiguous cut puts all giants in volume 0.
	lens := []int{5000, 4000, 3000}
	for i := 0; i < 30; i++ {
		lens = append(lens, 100)
	}
	skew := func(vols []Volume) float64 {
		maxR, sum := 0, 0
		for _, v := range vols {
			sum += v.Residues
			if v.Residues > maxR {
				maxR = v.Residues
			}
		}
		return float64(maxR) * float64(len(vols)) / float64(sum)
	}
	sc := skew(SeqCount{}.Partition(lens, 3))
	sb := skew(SizeBalanced{}.Partition(lens, 3))
	if sb >= sc {
		t.Errorf("size-balanced skew %.3f not better than contiguous skew %.3f", sb, sc)
	}
	if sb > 1.2 {
		t.Errorf("size-balanced skew %.3f, want near 1.0 on this bank", sb)
	}
}

// Zero-length sequences are legal bank members (the worker encoder
// accepts ""); they must not collapse onto one volume and leave
// another empty, which would fail requests a single worker serves.
func TestPartitionHandlesZeroLengthSequences(t *testing.T) {
	lens := []int{10, 20, 0, 0}
	for _, p := range partitioners() {
		for _, n := range []int{2, 3, 4} {
			vols := p.Partition(lens, n)
			if err := checkPartition(lens, vols); err != nil {
				t.Errorf("%s: n=%d: %v", p.Name(), n, err)
			}
		}
	}
}

func TestPartitionerByName(t *testing.T) {
	for name, want := range map[string]string{"seqcount": "seqcount", "size": "size", "": "size"} {
		p, err := PartitionerByName(name)
		if err != nil {
			t.Fatalf("PartitionerByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("PartitionerByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := PartitionerByName("bogus"); err == nil {
		t.Error("unknown strategy accepted")
	}
}
