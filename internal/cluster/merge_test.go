package cluster

import (
	"fmt"
	"iter"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"seedblast/internal/service"
)

// sliceCursor wraps a buffered per-volume list as a stream cursor, so
// the k-way merge can be pinned against the buffered reference merge
// on synthetic data.
func sliceCursors(perVol [][]service.AlignmentJSON) []*volumeCursor {
	curs := make([]*volumeCursor, len(perVol))
	for vi, as := range perVol {
		seq := func(as []service.AlignmentJSON) iter.Seq2[service.AlignmentJSON, error] {
			return func(yield func(service.AlignmentJSON, error) bool) {
				for _, a := range as {
					if !yield(a, nil) {
						return
					}
				}
			}
		}(as)
		next, _ := iter.Pull2(seq)
		curs[vi] = &volumeCursor{vi: vi, pull: next}
	}
	return curs
}

// TestMergeStreamsMatchesBufferedMerge generates random volume
// partitions and per-volume sorted results, and pins the streaming
// k-way merge bit-identical to the buffered sort-based reference.
func TestMergeStreamsMatchesBufferedMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		nq, ns := 1+rng.IntN(5), 2+rng.IntN(10)
		nvol := 1 + rng.IntN(ns)

		query := make([]service.SequenceJSON, nq)
		queryIdx := make(map[string]int, nq)
		for i := range query {
			query[i] = service.SequenceJSON{ID: fmt.Sprintf("q%d", i)}
			queryIdx[query[i].ID] = i
		}
		subject := make([]service.SequenceJSON, ns)
		for i := range subject {
			subject[i] = service.SequenceJSON{ID: fmt.Sprintf("s%d", i)}
		}

		// Random partition with ascending per-volume sequence lists
		// (empty volumes dropped, as a partitioner would).
		buckets := make([]Volume, nvol)
		for i := 0; i < ns; i++ {
			v := rng.IntN(nvol)
			buckets[v].Seqs = append(buckets[v].Seqs, i)
		}
		var vols []Volume
		for _, v := range buckets {
			if len(v.Seqs) > 0 {
				vols = append(vols, v)
			}
		}

		// Per-volume results: random alignments per (q, s) pair, sorted
		// the way a worker sorts (Seq0, EValue, local Seq1). E-values are
		// drawn from a tiny set so cross-volume ties actually occur.
		subjIdxInVol := make([]map[string]int, len(vols))
		perVol := make([][]service.AlignmentJSON, len(vols))
		evs := []float64{1e-8, 1e-4, 0.5}
		for vi, v := range vols {
			m := make(map[string]int)
			for local, gi := range v.Seqs {
				m[subject[gi].ID] = local
			}
			subjIdxInVol[vi] = m
			var as []service.AlignmentJSON
			for q := 0; q < nq; q++ {
				for _, gi := range v.Seqs {
					for n := rng.IntN(3); n > 0; n-- {
						as = append(as, service.AlignmentJSON{
							Query:   query[q].ID,
							Subject: subject[gi].ID,
							Score:   rng.IntN(100),
							EValue:  evs[rng.IntN(len(evs))],
						})
					}
				}
			}
			sort.SliceStable(as, func(i, j int) bool {
				qi, qj := queryIdx[as[i].Query], queryIdx[as[j].Query]
				if qi != qj {
					return qi < qj
				}
				if as[i].EValue != as[j].EValue {
					return as[i].EValue < as[j].EValue
				}
				return m[as[i].Subject] < m[as[j].Subject]
			})
			perVol[vi] = as
		}

		want := mergeWireAlignments(vols, perVol, queryIdx, subjIdxInVol)
		got, err := mergeAlignmentStreams(sliceCursors(perVol), wireRanker(vols, query, subject))
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: k-way merge diverges from buffered reference\n got %+v\nwant %+v",
				trial, got, want)
		}
	}
}

// TestMergeStreamsPropagatesError pins that a mid-stream failure in
// any volume fails the merge.
func TestMergeStreamsPropagatesError(t *testing.T) {
	bad := func(yield func(service.AlignmentJSON, error) bool) {
		if !yield(service.AlignmentJSON{Query: "q0", Subject: "s0"}, nil) {
			return
		}
		yield(service.AlignmentJSON{}, fmt.Errorf("stream torn"))
	}
	next, stop := iter.Pull2(iter.Seq2[service.AlignmentJSON, error](bad))
	defer stop()
	curs := []*volumeCursor{{vi: 0, pull: next}}
	rank := wireRanker([]Volume{{Seqs: []int{0}}},
		[]service.SequenceJSON{{ID: "q0"}}, []service.SequenceJSON{{ID: "s0"}})
	if _, err := mergeAlignmentStreams(curs, rank); err == nil {
		t.Fatal("mid-stream failure not propagated")
	}
}
