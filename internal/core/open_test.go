package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"seedblast/internal/bank"
	"seedblast/internal/index"
	"seedblast/internal/pipeline"
)

// openWorkload builds a query bank, a related subject bank (mutated
// copies of the queries plus background noise, so the search actually
// finds alignments), and the subject's seeddb file.
func openWorkload(t testing.TB, nSubjects int) (*bank.Bank, *bank.Bank, string) {
	t.Helper()
	rng := bank.NewRNG(77)
	query := bank.GenerateProteins(bank.ProteinConfig{N: 8, MeanLen: 150, Seed: 11})
	subject := bank.New("subjects")
	for i := 0; i < nSubjects; i++ {
		var seq []byte
		if i < query.Len() {
			seq = bank.MutateProtein(rng, query.Seq(i), 0.2)
		} else {
			seq = bank.RandomProtein(rng, 120)
		}
		subject.Add(fmt.Sprintf("s%03d", i), seq)
	}

	opt := DefaultOptions()
	ix, err := index.BuildParallel(subject, opt.Seed, opt.N, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "subject.seeddb")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return query, subject, path
}

// TestOpenTargetSearchEquivalent is the acceptance gate for the disk
// path: a Search over a seeddb-loaded target must be bit-identical —
// values and order — to the same Search over an in-memory bank with a
// freshly built index, on every engine and with sharding enabled.
func TestOpenTargetSearchEquivalent(t *testing.T) {
	query, subject, path := openWorkload(t, 24)

	type cfg struct {
		name string
		opts []Option
	}
	cfgs := []cfg{
		{"cpu", []Option{WithEngine(EngineCPU)}},
		{"rasc", []Option{WithEngine(EngineRASC)}},
		{"cpu-sharded", []Option{
			WithEngine(EngineCPU),
			WithPipeline(pipeline.Config{ShardSize: 3, InFlight: 2, Step2Workers: 2, Step3Workers: 2}),
		}},
	}
	for _, c := range cfgs {
		t.Run(c.name, func(t *testing.T) {
			s, err := NewSearcher(c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := s.Search(context.Background(), NewProteinTarget(query), NewProteinTarget(subject)).Collect()
			if err != nil {
				t.Fatal(err)
			}
			if len(ref) == 0 {
				t.Fatal("degenerate workload: no matches")
			}

			tgt, err := OpenTarget(path)
			if err != nil {
				t.Fatal(err)
			}
			defer tgt.Close()
			got, err := s.Search(context.Background(), NewProteinTarget(query), tgt).Collect()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("disk-loaded search diverged: %d vs %d matches", len(got), len(ref))
			}
		})
	}
}

// TestOpenTargetSkipsIndexBuild pins the point of the disk path: a
// search over an opened target reports (almost) no index-build time,
// because the adopted index satisfies the (seed, N) lookup.
func TestOpenTargetSkipsIndexBuild(t *testing.T) {
	query, _, path := openWorkload(t, 24)
	tgt, err := OpenTarget(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	if tgt.cached(DefaultOptions().Seed, DefaultOptions().N) == nil {
		t.Fatal("opened target has no cached index under the default (seed, N)")
	}
	s, err := NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	res := s.Search(context.Background(), NewProteinTarget(query), tgt)
	if _, err := res.Collect(); err != nil {
		t.Fatal(err)
	}
	sum, err := res.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stats1.Entries == 0 {
		t.Error("summary missing subject index statistics")
	}
}

// TestOpenTargetOtherSeedStillBuilds pins the fallback: a searcher
// with a different N than the stored index builds its own index from
// the loaded bank instead of failing or serving the wrong windows.
func TestOpenTargetOtherSeedStillBuilds(t *testing.T) {
	query, subject, path := openWorkload(t, 12)
	tgt, err := OpenTarget(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	s, err := NewSearcher(WithNeighborhood(10))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Search(context.Background(), NewProteinTarget(query), tgt).Collect()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Search(context.Background(), NewProteinTarget(query), NewProteinTarget(subject)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("N=10 search over an N=14 seeddb target diverged from the in-memory run")
	}
}

func TestOpenTargetErrors(t *testing.T) {
	if _, err := OpenTarget(filepath.Join(t.TempDir(), "missing.seeddb")); err == nil {
		t.Error("OpenTarget accepted a missing file")
	}
	junk := filepath.Join(t.TempDir(), "junk.seeddb")
	if err := os.WriteFile(junk, []byte("definitely not a seeddb file, long enough to pass size checks"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTarget(junk); err == nil {
		t.Error("OpenTarget accepted a non-seeddb file")
	}
}

// coldStartBank is the benchmark workload: big enough that step-1
// rebuild cost dominates any fixed overhead.
func coldStartBank() *bank.Bank {
	return bank.GenerateProteins(bank.ProteinConfig{N: 600, MeanLen: 350, Seed: 3})
}

// TestColdStartLoadBeatsRebuild asserts the direction of the tentpole
// claim without benchmark-grade precision: opening the seeddb must be
// faster than rebuilding the index (the benchmark below quantifies the
// gap, ≥5× on this workload).
func TestColdStartLoadBeatsRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("cold-start timing in -short mode")
	}
	b := coldStartBank()
	opt := DefaultOptions()
	ix, err := index.BuildParallel(b, opt.Seed, opt.N, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cold.seeddb")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	// Warm the page cache so the comparison is compute vs compute, not
	// compute vs disk spin-up.
	if tgt, err := OpenTarget(path); err != nil {
		t.Fatal(err)
	} else {
		tgt.Close()
	}

	t0 := time.Now()
	tgt, err := OpenTarget(path)
	if err != nil {
		t.Fatal(err)
	}
	load := time.Since(t0)
	tgt.Close()

	t1 := time.Now()
	if _, err := index.BuildParallel(b, opt.Seed, opt.N, 0); err != nil {
		t.Fatal(err)
	}
	build := time.Since(t1)

	if load*2 > build {
		t.Errorf("cold start: load %v not clearly faster than rebuild %v", load, build)
	}
	t.Logf("cold start: load %v vs rebuild %v (%.1fx)", load, build, float64(build)/float64(load))
}

// BenchmarkColdStartLoadVsBuild quantifies the tentpole: cold-start a
// subject target from its seeddb versus rebuilding the index from the
// bank. Run with -benchtime and compare Load vs Build ns/op; the
// acceptance bar is Load at least 5× faster on this bank.
func BenchmarkColdStartLoadVsBuild(b *testing.B) {
	bk := coldStartBank()
	opt := DefaultOptions()
	ix, err := index.BuildParallel(bk, opt.Seed, opt.N, 0)
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "seeddb-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.seeddb")
	if err := ix.WriteFile(path); err != nil {
		b.Fatal(err)
	}

	b.Run("Load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tgt, err := OpenTarget(path)
			if err != nil {
				b.Fatal(err)
			}
			tgt.Close()
		}
	})
	b.Run("Build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.BuildParallel(bk, opt.Seed, opt.N, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
