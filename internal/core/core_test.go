package core

import (
	"testing"
	"time"

	"seedblast/internal/bank"
	"seedblast/internal/pipeline"
	"seedblast/internal/translate"
	"seedblast/internal/ungapped"
)

// plantedWorkload builds a protein bank and a genome containing mutated
// copies of some of its proteins.
func plantedWorkload(t *testing.T, nProteins, genomeLen, plants int) (*bank.Bank, []byte, []bank.PlantedGene) {
	t.Helper()
	proteins := bank.GenerateProteins(bank.ProteinConfig{
		N: nProteins, MeanLen: 120, LenJitter: 20, Seed: 41,
	})
	genome, genes, err := bank.GenerateGenome(bank.GenomeConfig{
		Length:       genomeLen,
		Source:       proteins,
		PlantCount:   plants,
		PlantSubRate: 0.15,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(genes) == 0 {
		t.Fatal("no genes planted")
	}
	return proteins, genome, genes
}

func TestCompareGenomeFindsPlantedGenes(t *testing.T) {
	proteins, genome, genes := plantedWorkload(t, 10, 60_000, 6)
	res, err := CompareGenome(proteins, genome, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches for planted genes")
	}
	// Every planted gene must be recovered by a match of the right
	// protein overlapping the right interval.
	for gi, g := range genes {
		found := false
		for _, m := range res.Matches {
			if m.Protein != g.ProteinIdx {
				continue
			}
			lo := max(m.NucStart, g.Start)
			hi := min(m.NucEnd, g.Start+g.NucLen)
			if hi-lo >= g.NucLen/2 {
				found = true
				if m.Frame != g.Frame {
					t.Errorf("gene %d found in frame %s, planted in %s", gi, m.Frame, g.Frame)
				}
				break
			}
		}
		if !found {
			t.Errorf("planted gene %d (protein %d at %d, frame %s) not recovered",
				gi, g.ProteinIdx, g.Start, g.Frame)
		}
	}
}

func TestCompareEnginesBitIdentical(t *testing.T) {
	proteins, genome, _ := plantedWorkload(t, 8, 40_000, 4)
	frames := translate.SixFrames(genome)
	fbank := bank.New("frames")
	for _, ft := range frames {
		fbank.Add(ft.Frame.String(), ft.Protein)
	}

	optCPU := DefaultOptions()
	cpu, err := Compare(proteins, fbank, optCPU)
	if err != nil {
		t.Fatal(err)
	}
	for _, fpgas := range []int{1, 2} {
		optR := DefaultOptions()
		optR.Engine = EngineRASC
		optR.RASC.NumFPGAs = fpgas
		rasc, err := Compare(proteins, fbank, optR)
		if err != nil {
			t.Fatal(err)
		}
		if rasc.Hits != cpu.Hits || rasc.Pairs != cpu.Pairs {
			t.Fatalf("fpgas=%d: hits/pairs %d/%d, want %d/%d",
				fpgas, rasc.Hits, rasc.Pairs, cpu.Hits, cpu.Pairs)
		}
		if len(rasc.Alignments) != len(cpu.Alignments) {
			t.Fatalf("fpgas=%d: %d alignments, want %d",
				fpgas, len(rasc.Alignments), len(cpu.Alignments))
		}
		for i := range rasc.Alignments {
			a, b := rasc.Alignments[i], cpu.Alignments[i]
			if a.Seq0 != b.Seq0 || a.Seq1 != b.Seq1 || a.Score != b.Score ||
				a.Q != b.Q || a.S != b.S {
				t.Fatalf("fpgas=%d: alignment %d differs: %+v vs %+v", fpgas, i, a, b)
			}
		}
	}
}

// TestCompareKernelsBitIdentical pins the step-2 kernel contract at
// the engine level: scalar, blocked and auto produce the same
// alignments in the same order, batch or sharded, and the pipeline
// metrics record which kernel actually ran.
func TestCompareKernelsBitIdentical(t *testing.T) {
	proteins, genome, _ := plantedWorkload(t, 8, 40_000, 4)
	frames := translate.SixFrames(genome)
	fbank := bank.New("frames")
	for _, ft := range frames {
		fbank.Add(ft.Frame.String(), ft.Protein)
	}

	optRef := DefaultOptions()
	optRef.Step2Kernel = ungapped.KernelScalar
	ref, err := Compare(proteins, fbank, optRef)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, res *Result) {
		t.Helper()
		if res.Hits != ref.Hits || res.Pairs != ref.Pairs {
			t.Fatalf("%s: hits/pairs %d/%d, want %d/%d",
				name, res.Hits, res.Pairs, ref.Hits, ref.Pairs)
		}
		if len(res.Alignments) != len(ref.Alignments) {
			t.Fatalf("%s: %d alignments, want %d",
				name, len(res.Alignments), len(ref.Alignments))
		}
		for i := range res.Alignments {
			a, b := res.Alignments[i], ref.Alignments[i]
			if a.Seq0 != b.Seq0 || a.Seq1 != b.Seq1 || a.Score != b.Score ||
				a.Q != b.Q || a.S != b.S {
				t.Fatalf("%s: alignment %d differs: %+v vs %+v", name, i, a, b)
			}
		}
	}

	for _, kernel := range []ungapped.Kernel{ungapped.KernelAuto, ungapped.KernelBlocked} {
		opt := DefaultOptions()
		opt.Step2Kernel = kernel
		res, err := Compare(proteins, fbank, opt)
		if err != nil {
			t.Fatal(err)
		}
		check("batch/"+kernel.String(), res)

		// Sharded pipeline with the same kernel: identical results, and
		// ShardsByKernel must attribute every shard to the blocked
		// kernel (auto resolves to blocked for the default workload).
		opt.Pipeline = pipeline.Config{ShardSize: 3, Step2Workers: 2, Step3Workers: 2}
		res, err = Compare(proteins, fbank, opt)
		if err != nil {
			t.Fatal(err)
		}
		check("sharded/"+kernel.String(), res)
		if got := res.Pipeline.ShardsByKernel["blocked"]; got != res.Pipeline.Shards {
			t.Fatalf("kernel %s: ShardsByKernel = %v, want all %d shards blocked",
				kernel, res.Pipeline.ShardsByKernel, res.Pipeline.Shards)
		}
	}

	// RASC shards bypass the CPU kernel entirely; the forced kernel must
	// not disturb the accelerator path and no kernel may be recorded.
	optR := DefaultOptions()
	optR.Engine = EngineRASC
	optR.Step2Kernel = ungapped.KernelBlocked
	res, err := Compare(proteins, fbank, optR)
	if err != nil {
		t.Fatal(err)
	}
	check("rasc", res)
	if len(res.Pipeline.ShardsByKernel) != 0 {
		t.Fatalf("rasc: ShardsByKernel = %v, want empty", res.Pipeline.ShardsByKernel)
	}
}

func TestCompareTimesPopulated(t *testing.T) {
	proteins, genome, _ := plantedWorkload(t, 6, 30_000, 3)
	res, err := CompareGenome(proteins, genome, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Times.Index <= 0 || res.Times.Ungapped <= 0 {
		t.Errorf("missing step times: %+v", res.Times)
	}
	if res.Times.Total() < res.Times.Index {
		t.Error("Total less than a component")
	}
	fr := res.Times.Fractions()
	sum := fr[0] + fr[1] + fr[2]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f", sum)
	}
}

func TestCompareRASCReportsSimulatedTime(t *testing.T) {
	proteins, genome, _ := plantedWorkload(t, 6, 30_000, 3)
	opt := DefaultOptions()
	opt.Engine = EngineRASC
	res, err := CompareGenome(proteins, genome, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Device == nil {
		t.Fatal("RASC engine must attach a device report")
	}
	wantDur := time.Duration(res.Device.Seconds * float64(time.Second))
	if res.Times.Ungapped != wantDur {
		t.Errorf("Ungapped time %v, want simulated %v", res.Times.Ungapped, wantDur)
	}
	if res.Device.Pairs != res.Pairs {
		t.Error("device pairs disagree with result")
	}
}

func TestGenomeMatchCoordinates(t *testing.T) {
	proteins, genome, _ := plantedWorkload(t, 6, 30_000, 4)
	res, err := CompareGenome(proteins, genome, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.NucStart < 0 || m.NucEnd > len(genome) || m.NucStart >= m.NucEnd {
			t.Errorf("bad nucleotide interval [%d,%d)", m.NucStart, m.NucEnd)
		}
		if (m.NucEnd-m.NucStart)%3 != 0 {
			t.Errorf("interval length %d not a codon multiple", m.NucEnd-m.NucStart)
		}
		if (m.NucEnd-m.NucStart)/3 != m.S.Len() {
			t.Errorf("interval %d codons vs span %d residues",
				(m.NucEnd-m.NucStart)/3, m.S.Len())
		}
		if !m.Frame.Valid() {
			t.Errorf("invalid frame %d", m.Frame)
		}
	}
}

func TestCompareValidation(t *testing.T) {
	b := bank.GenerateProteins(bank.ProteinConfig{N: 2, Seed: 1})
	var opt Options // zero: invalid
	if _, err := Compare(b, b, opt); err == nil {
		t.Error("zero options accepted")
	}
	opt = DefaultOptions()
	opt.N = -1
	if _, err := Compare(b, b, opt); err == nil {
		t.Error("negative N accepted")
	}
	opt = DefaultOptions()
	opt.Engine = Engine(99)
	if _, err := Compare(b, b, opt); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestEngineString(t *testing.T) {
	if EngineCPU.String() != "cpu" || EngineRASC.String() != "rasc" {
		t.Error("engine names wrong")
	}
	if Engine(9).String() == "" {
		t.Error("unknown engine should still format")
	}
}

func TestStepTimesZero(t *testing.T) {
	var st StepTimes
	if st.Fractions() != [3]float64{} {
		t.Error("zero times should give zero fractions")
	}
}

func TestCompareOffloadGapped(t *testing.T) {
	proteins, genome, _ := plantedWorkload(t, 6, 30_000, 3)
	optCPU := DefaultOptions()
	cpu, err := CompareGenome(proteins, genome, optCPU)
	if err != nil {
		t.Fatal(err)
	}

	opt := DefaultOptions()
	opt.Engine = EngineRASC
	opt.RASC.OffloadGapped = true
	res, err := CompareGenome(proteins, genome, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.GapDevice == nil {
		t.Fatal("OffloadGapped must attach a gap-operator report")
	}
	wantDur := time.Duration(res.GapDevice.Seconds * float64(time.Second))
	if res.Times.Gapped != wantDur {
		t.Errorf("Gapped time %v, want simulated %v", res.Times.Gapped, wantDur)
	}
	// Functional results stay identical to the CPU pipeline.
	if len(res.Matches) != len(cpu.Matches) {
		t.Fatalf("offload changed results: %d vs %d matches",
			len(res.Matches), len(cpu.Matches))
	}
	for i := range res.Matches {
		if res.Matches[i].Score != cpu.Matches[i].Score ||
			res.Matches[i].NucStart != cpu.Matches[i].NucStart {
			t.Fatal("offload changed alignment content")
		}
	}
	// The gap operator only times the DPs the host actually ran.
	if res.GapDevice.Tasks != res.GappedWork.Extended {
		t.Errorf("gap tasks %d != extended DPs %d",
			res.GapDevice.Tasks, res.GappedWork.Extended)
	}
}

func TestGappedWorkStatsPopulated(t *testing.T) {
	proteins, genome, _ := plantedWorkload(t, 8, 40_000, 4)
	res, err := CompareGenome(proteins, genome, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := res.GappedWork
	if st.Hits != res.Hits {
		t.Errorf("stats hits %d != result hits %d", st.Hits, res.Hits)
	}
	if st.Extended == 0 {
		t.Error("no DPs recorded despite matches found")
	}
	if st.Extended+st.Contained+st.PreFiltered > st.Hits {
		t.Errorf("stats exceed hit count: %+v", st)
	}
	if st.DPRows <= 0 || st.DPCells < st.DPRows {
		t.Errorf("DP volume inconsistent: %+v", st)
	}
}
