package core

import (
	"fmt"
	"testing"

	"seedblast/internal/gapped"
	"seedblast/internal/pipeline"
	"seedblast/internal/ungapped"
)

// prefilterConfigs is the engine × kernel × shard-size grid the
// prefilter equivalence contract is pinned over.
func prefilterConfigs(n int) []struct {
	name   string
	eng    Engine
	kernel ungapped.Kernel
	shard  int
} {
	return []struct {
		name   string
		eng    Engine
		kernel ungapped.Kernel
		shard  int
	}{
		{"cpu-scalar/shard=0", EngineCPU, ungapped.KernelScalar, 0},
		{"cpu-scalar/shard=5", EngineCPU, ungapped.KernelScalar, 5},
		{"cpu-blocked/shard=0", EngineCPU, ungapped.KernelBlocked, 0},
		{"cpu-blocked/shard=5", EngineCPU, ungapped.KernelBlocked, 5},
		{"rasc/shard=0", EngineRASC, ungapped.KernelAuto, 0},
		{"rasc/shard=5", EngineRASC, ungapped.KernelAuto, 5},
		{"multi/shard=5", EngineMulti, ungapped.KernelAuto, 5},
		{"cpu-scalar/shard=big", EngineCPU, ungapped.KernelScalar, n + 9},
	}
}

func prefilterOpts(c struct {
	name   string
	eng    Engine
	kernel ungapped.Kernel
	shard  int
}, maxCand int) Options {
	opt := DefaultOptions()
	opt.Engine = c.eng
	opt.Step2Kernel = c.kernel
	opt.MaxCandidates = maxCand
	if c.shard > 0 {
		opt.Pipeline = pipeline.Config{
			ShardSize:    c.shard,
			InFlight:     2,
			Step2Workers: 2,
			Step3Workers: 2,
		}
	}
	return opt
}

func sameAlignment(a, b gapped.Alignment) bool {
	return a.Seq0 == b.Seq0 && a.Seq1 == b.Seq1 && a.Score == b.Score &&
		a.BitScore == b.BitScore && a.EValue == b.EValue &&
		a.Q == b.Q && a.S == b.S
}

// TestPrefilterOffBitIdentical pins the k=0 bypass: WithMaxCandidates(0)
// must leave every engine's result bit-identical — values AND emission
// order — to the same run without the option ever mentioned.
func TestPrefilterOffBitIdentical(t *testing.T) {
	proteins, fbank := equivWorkload(t)
	for _, c := range prefilterConfigs(proteins.Len()) {
		ref, err := Compare(proteins, fbank, prefilterOpts(c, 0))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		opt := prefilterOpts(c, 0)
		opt.MaxCandidates = 0 // explicit zero via the documented off switch
		res, err := Compare(proteins, fbank, opt)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		assertIdenticalResults(t, c.name, res, ref)
		if res.Pipeline.PrefilterKept != 0 || res.Pipeline.PrefilterDropped != 0 ||
			res.Pipeline.Prefilter.Shards != 0 {
			t.Fatalf("%s: disabled prefilter recorded work: %+v", c.name, res.Pipeline.Prefilter)
		}
	}
}

// TestPrefilterWideOpenBitIdentical is the monotonicity gate: with
// MaxCandidates at least the subject-bank size no candidate is ever
// cut, so the filtered pipeline must reproduce the unfiltered result
// bit-for-bit — same Hits, Pairs, stats, and alignments in the same
// order — on every engine, kernel and shard size.
func TestPrefilterWideOpenBitIdentical(t *testing.T) {
	proteins, fbank := equivWorkload(t)
	for _, c := range prefilterConfigs(proteins.Len()) {
		ref, err := Compare(proteins, fbank, prefilterOpts(c, 0))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if ref.Hits == 0 || len(ref.Alignments) == 0 {
			t.Fatalf("%s: degenerate reference", c.name)
		}
		res, err := Compare(proteins, fbank, prefilterOpts(c, fbank.Len()))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		assertIdenticalResults(t, c.name, res, ref)
		if res.Pipeline.PrefilterDropped != 0 {
			t.Fatalf("%s: wide-open prefilter dropped %d pairs",
				c.name, res.Pipeline.PrefilterDropped)
		}
		if res.Pipeline.PrefilterKept == 0 || res.Pipeline.Prefilter.Shards == 0 {
			t.Fatalf("%s: prefilter ran but recorded no work: kept=%d shards=%d",
				c.name, res.Pipeline.PrefilterKept, res.Pipeline.Prefilter.Shards)
		}
	}
}

func assertIdenticalResults(t *testing.T, name string, res, ref *Result) {
	t.Helper()
	if res.Hits != ref.Hits || res.Pairs != ref.Pairs {
		t.Fatalf("%s: hits/pairs %d/%d, want %d/%d",
			name, res.Hits, res.Pairs, ref.Hits, ref.Pairs)
	}
	if res.Stats0 != ref.Stats0 || res.Stats1 != ref.Stats1 {
		t.Fatalf("%s: index stats diverged", name)
	}
	if res.GappedWork != ref.GappedWork {
		t.Fatalf("%s: gapped work %+v, want %+v", name, res.GappedWork, ref.GappedWork)
	}
	if len(res.Alignments) != len(ref.Alignments) {
		t.Fatalf("%s: %d alignments, want %d", name, len(res.Alignments), len(ref.Alignments))
	}
	for i := range res.Alignments {
		if !sameAlignment(res.Alignments[i], ref.Alignments[i]) {
			t.Fatalf("%s: alignment %d differs (value or order):\n%+v\nvs\n%+v",
				name, i, res.Alignments[i], ref.Alignments[i])
		}
	}
}

// TestPrefilterSmallKSubsetInvariantEValues checks the lossy regime:
// a tight cut may drop alignments but must never invent one, and every
// surviving alignment keeps the exact score, bit score and E-value of
// its unfiltered counterpart — the E-value-invariance contract
// (search-space geometry still describes the full bank).
func TestPrefilterSmallKSubsetInvariantEValues(t *testing.T) {
	proteins, fbank := equivWorkload(t)
	ref, err := Compare(proteins, fbank, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4} {
		for _, eng := range []Engine{EngineCPU, EngineRASC} {
			name := fmt.Sprintf("%s/k=%d", eng, k)
			opt := DefaultOptions()
			opt.Engine = eng
			opt.MaxCandidates = k
			res, err := Compare(proteins, fbank, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Pairs > ref.Pairs || res.Hits > ref.Hits {
				t.Fatalf("%s: filtered run found MORE work: hits/pairs %d/%d vs %d/%d",
					name, res.Hits, res.Pairs, ref.Hits, ref.Pairs)
			}
			for i, a := range res.Alignments {
				found := false
				for _, b := range ref.Alignments {
					if sameAlignment(a, b) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: alignment %d %+v absent from the unfiltered result", name, i, a)
				}
			}
			if res.Pipeline.PrefilterDropped == 0 {
				t.Fatalf("%s: tight cut dropped nothing on a %d-subject bank", name, fbank.Len())
			}
		}
	}
}

// TestWithMaxCandidatesOption pins option-level validation.
func TestWithMaxCandidatesOption(t *testing.T) {
	if _, err := NewSearcher(WithMaxCandidates(-1)); err == nil {
		t.Fatal("negative MaxCandidates accepted")
	}
	s, err := NewSearcher(WithMaxCandidates(7))
	if err != nil {
		t.Fatal(err)
	}
	if s.opt.MaxCandidates != 7 {
		t.Fatalf("MaxCandidates = %d, want 7", s.opt.MaxCandidates)
	}
}
