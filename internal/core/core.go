// Package core implements the paper's primary contribution: a
// bank-vs-bank protein comparison pipeline structured so that the
// dominant computation is a small critical section suitable for
// hardware acceleration. The pipeline has three steps (§2.1):
//
//	step 1  indexing           — both banks indexed by subset seed
//	step 2  ungapped extension — all seed pairs scored over W+2N windows
//	step 3  gapped extension   — surviving pairs aligned with gaps
//
// Step 2 runs either on the CPU engine (package ungapped), on the
// simulated RASC-100 accelerator (package hwsim), or fanned out across
// both (EngineMulti); results are bit-identical between engines.
// Compare executes the steps through the streaming shard engine
// (package pipeline): bank 0 flows through the stages in shards over
// bounded channels, so host gapped extension overlaps device ungapped
// extension. The zero Options.Pipeline runs one shard and reproduces
// the historical batch behaviour (kept verbatim as CompareBatch)
// bit-identically. CompareGenome adds the tblastn-style workflow: the
// genome is translated into its six reading frames and alignments are
// mapped back to nucleotide coordinates.
package core

import (
	"context"
	"fmt"
	"time"

	"seedblast/internal/align"
	"seedblast/internal/bank"
	"seedblast/internal/gapped"
	"seedblast/internal/hwsim"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/pipeline"
	"seedblast/internal/seed"
	"seedblast/internal/stats"
	"seedblast/internal/translate"
	"seedblast/internal/ungapped"
)

// Engine selects where step 2 runs.
type Engine int

// Engines.
const (
	EngineCPU   Engine = iota // parallel software engine
	EngineRASC                // simulated RASC-100 accelerator
	EngineMulti               // shards fanned out across CPU and RASC
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineCPU:
		return "cpu"
	case EngineRASC:
		return "rasc"
	case EngineMulti:
		return "multi"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// RASCOptions configures the simulated accelerator when Engine is
// EngineRASC. Zero values take the paper's defaults.
type RASCOptions struct {
	NumPEs       int     // default 192
	NumFPGAs     int     // default 1 (the paper's main tables use one FPGA)
	SlotSize     int     // default 8
	FIFODepth    int     // default 64
	ClockHz      float64 // default 100 MHz
	DMABandwidth float64 // default 3.2 GB/s
	DMALatency   float64 // default 2 µs
	// OffloadGapped enables the paper's future-work configuration
	// (§5): the second FPGA carries a gap-extension operator, so step 3
	// is also simulated in hardware. Requires NumFPGAs == 1 for step 2
	// (the other FPGA is busy with gapped extension).
	OffloadGapped bool
}

func (r RASCOptions) withDefaults() RASCOptions {
	if r.NumPEs == 0 {
		r.NumPEs = 192
	}
	if r.NumFPGAs == 0 {
		r.NumFPGAs = 1
	}
	if r.SlotSize == 0 {
		r.SlotSize = 8
	}
	if r.FIFODepth == 0 {
		r.FIFODepth = 64
	}
	if r.ClockHz == 0 {
		r.ClockHz = 100e6
	}
	if r.DMABandwidth == 0 {
		r.DMABandwidth = 3.2e9
	}
	if r.DMALatency == 0 {
		r.DMALatency = 2e-6
	}
	return r
}

// Options parameterises the pipeline. The zero value is not valid; use
// DefaultOptions and override fields.
type Options struct {
	Seed              seed.Model
	N                 int // neighbourhood extension; windows are W+2N
	Matrix            *matrix.Matrix
	UngappedThreshold int
	Gapped            gapped.Config
	Engine            Engine
	RASC              RASCOptions
	Workers           int // CPU engine parallelism; 0 = GOMAXPROCS
	// Step2Kernel selects the CPU step-2 inner-loop implementation.
	// The zero value (ungapped.KernelAuto) uses the blocked
	// lane-parallel kernel whenever the matrix and window length fit
	// its arithmetic bounds; results are bit-identical across kernels.
	Step2Kernel ungapped.Kernel
	// Pipeline tunes the streaming shard engine: shard size and how
	// many shards each stage runs in flight. The zero value processes
	// bank 0 as one shard, reproducing the batch path bit-identically.
	Pipeline pipeline.Config
	// MaxCandidates enables the two-stage prefilter: before step 2,
	// each query's subjects are ranked by hashed-seed diagonal-band
	// score and only the top MaxCandidates survive into ungapped and
	// gapped extension. Zero (the default) disables the stage and the
	// pipeline is bit-identical to one without it. E-values are
	// unaffected either way — the statistics still use the full
	// subject bank's geometry — so enabling it trades sensitivity
	// (pairs beyond the top K are never extended) for throughput.
	// Ignored by CompareBatch, which stays the exhaustive reference.
	MaxCandidates int
	// GeneticCode selects the translation table for genome modes
	// (tblastn/blastx/tblastx); nil means the standard code. Bacterial
	// and vertebrate-mitochondrial codes are provided by package
	// translate.
	GeneticCode *translate.Code
	// SearchSpaceOverride fixes the database geometry used for E-value
	// statistics instead of deriving it from the subject bank. The
	// cluster layer sets it to the full bank's geometry when this run
	// compares against one volume of a partitioned bank, so reported
	// E-values — and the Gapped.MaxEValue significance cut — are
	// bit-identical to an unpartitioned run. The zero value keeps the
	// historical behaviour (n = subject bank total residues). It takes
	// precedence over any Gapped.SearchSpace already set.
	SearchSpaceOverride stats.SearchSpace
	// SubjectIndex optionally provides a prebuilt step-1 index of the
	// subject bank (bank 1). It must have been built from the same
	// subject contents with the same Seed and N. The engine rejects
	// mismatched key space, N, or bank shape (sequence count / total
	// residues); full content identity is the caller's responsibility —
	// the comparison service guarantees it by keying its cache on
	// index.Fingerprint. Nil means build (and time) it per call.
	SubjectIndex *index.Index
}

// code resolves the genetic code option.
func (o *Options) code() *translate.Code {
	if o.GeneticCode != nil {
		return o.GeneticCode
	}
	return translate.StandardCode
}

// gappedConfig resolves the step-3 configuration. Fields the caller
// set are preserved; only unset (zero) fields that have no meaningful
// zero value are filled from gapped.DefaultConfig: the matrix, the
// band, the E-value cutoff, the gap costs and the statistical
// parameters. GapTrigger, XDrop and Traceback keep their zero values
// because zero is meaningful there (pre-filter disabled, no
// traceback). An explicit Gapped.Workers wins over Options.Workers.
func (o *Options) gappedConfig() gapped.Config {
	g := o.Gapped
	def := gapped.DefaultConfig()
	if g.Matrix == nil {
		g.Matrix = def.Matrix
	}
	if g.Band == 0 {
		g.Band = def.Band
	}
	if g.MaxEValue == 0 {
		g.MaxEValue = def.MaxEValue
	}
	if g.Params == (stats.Params{}) {
		g.Params = def.Params
	}
	if g.Gaps == (align.GapParams{}) {
		g.Gaps = def.Gaps
	}
	if g.Workers == 0 {
		g.Workers = o.Workers
	}
	if !o.SearchSpaceOverride.IsZero() {
		g.SearchSpace = o.SearchSpaceOverride
	}
	return g
}

// DefaultOptions returns the pipeline defaults: the W=4 subset seed,
// N=14 (32-residue windows), BLOSUM62, ungapped threshold 38 and the
// gapped stage at E ≤ 10⁻³.
func DefaultOptions() Options {
	return Options{
		Seed:              seed.Default(),
		N:                 14,
		Matrix:            matrix.BLOSUM62,
		UngappedThreshold: 38,
		Gapped:            gapped.DefaultConfig(),
	}
}

// StepTimes records per-step durations. For the RASC engine, Ungapped
// is the simulated accelerator time (cycles at the configured clock
// plus DMA), not host wall time. On a streaming run with several
// shards in flight the steps overlap, so their sum can exceed the wall
// time reported in Result.Pipeline.Wall.
type StepTimes struct {
	Index    time.Duration
	Ungapped time.Duration
	Gapped   time.Duration
}

// Total sums the three steps.
func (st StepTimes) Total() time.Duration {
	return st.Index + st.Ungapped + st.Gapped
}

// Fractions returns each step's share of the total, in step order
// (the quantity Tables 1 and 7 report).
func (st StepTimes) Fractions() [3]float64 {
	tot := st.Total().Seconds()
	if tot == 0 {
		return [3]float64{}
	}
	return [3]float64{
		st.Index.Seconds() / tot,
		st.Ungapped.Seconds() / tot,
		st.Gapped.Seconds() / tot,
	}
}

// Result is the outcome of a bank-vs-bank comparison: the materialized
// alignments plus the search Summary (work counters, timings, device
// reports, engine accounting), whose fields are promoted.
type Result struct {
	Alignments []gapped.Alignment
	Summary
}

// Compare runs the full three-step pipeline on two protein banks
// through the streaming shard engine. With the zero Options.Pipeline
// the run is a single shard and the Result is bit-identical to
// CompareBatch; with sharding enabled the alignment set is identical
// up to order normalisation (the engine sorts stably by
// (Seq0, EValue, Seq1)).
//
// Compare is the v1 entry point, kept as a thin adapter over the v2
// Searcher API (equivalence-tested bit-identical, ordering included);
// new callers should construct a Searcher and stream.
func Compare(b0, b1 *bank.Bank, opt Options) (*Result, error) {
	return CompareContext(context.Background(), b0, b1, opt)
}

// CompareContext is Compare with cancellation: when ctx is cancelled
// the engine shuts every stage down promptly and returns ctx's error.
func CompareContext(ctx context.Context, b0, b1 *bank.Bank, opt Options) (*Result, error) {
	s, err := SearcherFromOptions(opt)
	if err != nil {
		return nil, err
	}
	tgt := NewProteinTarget(b1)
	if err := adoptSubjectIndex(&opt, tgt, tgt.Adopt); err != nil {
		return nil, err
	}
	return collectResult(s.Search(ctx, NewProteinTarget(b0), tgt))
}

// backendFor builds the step-2 backend for the selected engine.
func backendFor(opt *Options) (pipeline.Backend, error) {
	cpu := &pipeline.CPUBackend{
		Matrix:    opt.Matrix,
		Threshold: opt.UngappedThreshold,
		Workers:   opt.Workers,
		Kernel:    opt.Step2Kernel,
	}
	switch opt.Engine {
	case EngineCPU:
		return cpu, nil
	case EngineRASC, EngineMulti:
		dev, err := buildDevice(opt, opt.Seed.Width()+2*opt.N)
		if err != nil {
			return nil, err
		}
		rasc := &pipeline.RASCBackend{Device: dev}
		if opt.Engine == EngineRASC {
			return rasc, nil
		}
		return pipeline.NewMultiBackend(cpu, rasc)
	default:
		return nil, fmt.Errorf("core: unknown engine %v", opt.Engine)
	}
}

// CompareBatch is the historical monolithic driver: both indexes built
// up front, all of step 2 run to completion, then all of step 3. It is
// retained as the reference implementation the streaming engine is
// equivalence-tested and benchmarked against. New callers should use
// Compare.
func CompareBatch(b0, b1 *bank.Bank, opt Options) (*Result, error) {
	if opt.Seed == nil || opt.Matrix == nil {
		return nil, fmt.Errorf("core: Seed and Matrix are required (use DefaultOptions)")
	}
	if opt.N < 0 {
		return nil, fmt.Errorf("core: negative neighbourhood %d", opt.N)
	}

	// Step 1: index both banks (parallel build unless the caller pinned
	// Workers to 1 for sequential-profile measurements).
	t0 := time.Now()
	ix0, err := index.BuildParallel(b0, opt.Seed, opt.N, opt.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: indexing bank 0: %w", err)
	}
	ix1 := opt.SubjectIndex
	if ix1 == nil {
		var err error
		ix1, err = index.BuildParallel(b1, opt.Seed, opt.N, opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: indexing bank 1: %w", err)
		}
	} else if err := pipeline.MatchesRequest(ix1, b1, opt.Seed, opt.N); err != nil {
		// Same acceptance rule as the streaming engine, so the reference
		// and streaming paths never diverge on which indexes they take.
		return nil, fmt.Errorf("core: provided subject index %w", err)
	}
	res := &Result{Summary: Summary{Stats0: ix0.Stats(), Stats1: ix1.Stats()}}
	res.Times.Index = time.Since(t0)

	// Step 2: ungapped extension on the selected engine.
	var hits []ungapped.Hit
	switch opt.Engine {
	case EngineCPU:
		t1 := time.Now()
		r, err := ungapped.Run(ix0, ix1, ungapped.Config{
			Matrix:    opt.Matrix,
			Threshold: opt.UngappedThreshold,
			Workers:   opt.Workers,
			Kernel:    opt.Step2Kernel,
		})
		if err != nil {
			return nil, fmt.Errorf("core: step 2: %w", err)
		}
		res.Times.Ungapped = time.Since(t1)
		hits = r.Hits
		res.Pairs = r.Pairs
	case EngineRASC:
		dev, err := buildDevice(&opt, ix0.SubLen())
		if err != nil {
			return nil, err
		}
		rep, err := dev.RunStep2(ix0, ix1)
		if err != nil {
			return nil, fmt.Errorf("core: step 2 (rasc): %w", err)
		}
		res.Device = rep
		res.Times.Ungapped = time.Duration(rep.Seconds * float64(time.Second))
		hits = rep.Hits
		res.Pairs = rep.Pairs
	default:
		return nil, fmt.Errorf("core: engine %v not supported by the batch path", opt.Engine)
	}
	res.Hits = len(hits)

	// Step 3: gapped extension on the host (or, in the future-work
	// configuration, timed as if on the second FPGA's gap operator).
	t2 := time.Now()
	gcfg := opt.gappedConfig()
	as, gstats, err := gapped.RunWithStats(b0, b1, hits, gcfg)
	if err != nil {
		return nil, fmt.Errorf("core: step 3: %w", err)
	}
	res.Times.Gapped = time.Since(t2)
	res.Alignments = as
	res.GappedWork = gstats
	if opt.Engine == EngineRASC && opt.RASC.OffloadGapped {
		gop := hwsim.DefaultGapOp(gcfg.Band)
		if opt.RASC.ClockHz != 0 {
			gop.ClockHz = opt.RASC.ClockHz
		}
		rep, err := gop.EstimateStep3(gstats)
		if err != nil {
			return nil, fmt.Errorf("core: step 3 (gap operator): %w", err)
		}
		res.GapDevice = rep
		res.Times.Gapped = time.Duration(rep.Seconds * float64(time.Second))
	}
	return res, nil
}

func buildDevice(opt *Options, subLen int) (*hwsim.Device, error) {
	r := opt.RASC.withDefaults()
	psc := hwsim.PSCConfig{
		NumPEs:    r.NumPEs,
		SlotSize:  r.SlotSize,
		FIFODepth: r.FIFODepth,
		SubLen:    subLen,
		Threshold: opt.UngappedThreshold,
		Matrix:    opt.Matrix,
	}
	cfg := hwsim.DeviceConfig{
		PSC:          psc,
		NumFPGAs:     r.NumFPGAs,
		ClockHz:      r.ClockHz,
		DMABandwidth: r.DMABandwidth,
		DMALatency:   r.DMALatency,
		SharedLink:   true,
	}
	return hwsim.NewDevice(cfg)
}

// GenomeMatch is an alignment mapped back to genome coordinates.
type GenomeMatch struct {
	gapped.Alignment
	Protein  int // bank-0 sequence number (same as Alignment.Seq0)
	Frame    translate.Frame
	NucStart int // forward-strand nucleotide interval [NucStart, NucEnd)
	NucEnd   int
}

// GenomeResult extends Result with genome-coordinate matches.
type GenomeResult struct {
	Result
	Matches   []GenomeMatch
	GenomeLen int
}

// CompareGenome runs the tblastn-style workflow: the genome is
// translated into its six reading frames (step 0 of the paper's
// workflow), each frame becomes a subject sequence, and alignments are
// reported in both protein and genome coordinates.
func CompareGenome(proteins *bank.Bank, genome []byte, opt Options) (*GenomeResult, error) {
	return CompareGenomeContext(context.Background(), proteins, genome, opt)
}

// Code resolves the options' genetic code (the standard code when
// GeneticCode is nil).
func (o *Options) Code() *translate.Code { return o.code() }

// FrameBank translates a genome into its six reading frames under the
// options' genetic code and returns them as the subject bank
// CompareGenome compares against. The translation is deterministic, so
// an index built from this bank is reusable (via Options.SubjectIndex)
// across every CompareGenome call with the same genome, code, seed and
// N — the comparison service caches genome frame indexes this way.
func FrameBank(genome []byte, opt Options) *bank.Bank {
	return frameBank(opt.code().SixFrames(genome))
}

// frameBank is the one place a frame set becomes a subject bank;
// FrameBank (the service's cached-index build) and CompareGenomeContext
// must construct identical banks or a cached genome index would
// silently mismatch.
func frameBank(frames [6]translate.FrameTranslation) *bank.Bank {
	fbank := bank.New("genome-frames")
	for _, ft := range frames {
		fbank.Add(ft.Frame.String(), ft.Protein)
	}
	return fbank
}

// CompareGenomeContext is CompareGenome with cancellation. Like
// Compare, it is a thin adapter over the v2 Searcher API: the genome
// becomes a GenomeTarget (which owns the six-frame translation and the
// coordinate mapping) and the collected matches are reshaped into the
// v1 result.
func CompareGenomeContext(ctx context.Context, proteins *bank.Bank, genome []byte, opt Options) (*GenomeResult, error) {
	s, err := SearcherFromOptions(opt)
	if err != nil {
		return nil, err
	}
	tgt := NewGenomeTarget(genome, opt.GeneticCode)
	if err := adoptSubjectIndex(&opt, tgt, tgt.Adopt); err != nil {
		return nil, err
	}
	res := s.Search(ctx, NewProteinTarget(proteins), tgt)
	ms, err := res.Collect()
	if err != nil {
		return nil, err
	}
	sum, err := res.Summary()
	if err != nil {
		return nil, err
	}
	return GenomeResultFrom(ms, sum, len(genome)), nil
}
