package core

import (
	"fmt"

	"seedblast/internal/index"
)

// OpenTarget loads a seeddb file (written by (*index.Index).WriteTo /
// cmd/seeddb) and returns it as a ready protein search target: the
// bank decoded out of the file and the prebuilt step-1 index adopted
// under its (seed model, N) identity, so a Searcher with the same seed
// configuration skips the index build entirely. Searches with a
// different (seed, N) still work — the target builds that index from
// the loaded bank on first use, exactly like a fresh target.
//
// The index and bank alias the file's memory mapping, which stays
// mapped for the life of the target; call Close to release it. Search
// results over an opened target are bit-identical (values and order)
// to searches over an in-memory NewProteinTarget + build of the same
// bank, which the equivalence tests pin for every engine.
func OpenTarget(path string) (*ProteinTarget, error) {
	ix, err := index.Open(path)
	if err != nil {
		return nil, err
	}
	t := NewProteinTarget(ix.Bank())
	t.Adopt(ix)
	t.closer = ix.Close
	return t, nil
}

// Close releases the resources behind a target opened from disk (the
// seeddb file mapping); it is a no-op for targets built in memory. The
// target, its bank, its adopted index and any Results still streaming
// over them are invalid afterwards.
func (t *ProteinTarget) Close() error {
	if t.closer == nil {
		return nil
	}
	c := t.closer
	t.closer = nil
	if err := c(); err != nil {
		return fmt.Errorf("core: closing target: %w", err)
	}
	return nil
}
