package core

import (
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/translate"
)

func TestCompareDNAQueriesBlastx(t *testing.T) {
	// DNA queries that encode (mutated copies of) bank proteins must
	// match those proteins in the right frame and interval.
	proteins := bank.GenerateProteins(bank.ProteinConfig{N: 6, MeanLen: 120, Seed: 51})
	rng := bank.NewRNG(52)
	var queries [][]byte
	wantSubject := []int{2, 4}
	for _, idx := range wantSubject {
		coding, err := bank.ReverseTranslate(rng, proteins.Seq(idx))
		if err != nil {
			t.Fatal(err)
		}
		// Embed the coding region in random flanks; 1-base offset puts
		// it in frame +2.
		dna := append([]byte{0}, coding...)
		dna = append(dna, bank.RandomProtein(rng, 0)...)
		queries = append(queries, dna)
	}
	res, err := CompareDNAQueries(queries, proteins, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) < len(wantSubject) {
		t.Fatalf("only %d matches", len(res.Matches))
	}
	for qi, subj := range wantSubject {
		found := false
		for _, m := range res.Matches {
			if m.Query == qi && m.Subject == subj {
				found = true
				if m.Frame != 2 {
					t.Errorf("query %d matched in frame %s, want +2", qi, m.Frame)
				}
				if m.NucStart < 0 || m.NucEnd > len(queries[qi]) || m.NucStart >= m.NucEnd {
					t.Errorf("bad nucleotide interval [%d,%d)", m.NucStart, m.NucEnd)
				}
				if (m.NucEnd-m.NucStart)/3 != m.Q.Len() {
					t.Errorf("interval/span mismatch: %d nt vs %d aa",
						m.NucEnd-m.NucStart, m.Q.Len())
				}
			}
		}
		if !found {
			t.Errorf("query %d did not match protein %d", qi, subj)
		}
	}
}

func TestCompareDNAQueriesEmpty(t *testing.T) {
	proteins := bank.GenerateProteins(bank.ProteinConfig{N: 2, Seed: 1})
	if _, err := CompareDNAQueries(nil, proteins, DefaultOptions()); err == nil {
		t.Error("no queries accepted")
	}
}

func TestCompareGenomesTblastx(t *testing.T) {
	// Two genomes sharing a planted protein-coding region must match in
	// the frames the region occupies.
	proteins := bank.GenerateProteins(bank.ProteinConfig{N: 4, MeanLen: 100, Seed: 53})
	g0, genes0, err := bank.GenerateGenome(bank.GenomeConfig{
		Length: 20_000, Source: proteins, PlantCount: 2, Seed: 54,
	})
	if err != nil {
		t.Fatal(err)
	}
	g1, genes1, err := bank.GenerateGenome(bank.GenomeConfig{
		Length: 25_000, Source: proteins, PlantCount: 3, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompareGenomes(g0, g1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no tblastx matches despite shared planted genes")
	}
	// Every match pair must correspond to planted genes encoding the
	// same protein.
	shared := map[int]bool{}
	for _, ga := range genes0 {
		shared[ga.ProteinIdx] = true
	}
	anyShared := false
	for _, gb := range genes1 {
		if shared[gb.ProteinIdx] {
			anyShared = true
		}
	}
	if !anyShared {
		t.Skip("workload has no shared protein between the genomes")
	}
	for _, m := range res.Matches {
		if !m.Frame0.Valid() || !m.Frame1.Valid() {
			t.Errorf("invalid frames %d/%d", m.Frame0, m.Frame1)
		}
		if m.NucStart0 < 0 || m.NucEnd0 > len(g0) || m.NucStart0 >= m.NucEnd0 {
			t.Errorf("bad interval 0: [%d,%d)", m.NucStart0, m.NucEnd0)
		}
		if m.NucStart1 < 0 || m.NucEnd1 > len(g1) || m.NucStart1 >= m.NucEnd1 {
			t.Errorf("bad interval 1: [%d,%d)", m.NucStart1, m.NucEnd1)
		}
		if (m.NucEnd0-m.NucStart0)/3 != m.Q.Len() || (m.NucEnd1-m.NucStart1)/3 != m.S.Len() {
			t.Error("interval/span mismatch")
		}
	}
	// The best match must link a gene region in g0 to one in g1.
	best := res.Matches[0]
	overlapsGene := func(start, end int, genes []bank.PlantedGene) bool {
		for _, g := range genes {
			lo := max(start, g.Start)
			hi := min(end, g.Start+g.NucLen)
			if hi-lo > g.NucLen/2 {
				return true
			}
		}
		return false
	}
	if !overlapsGene(best.NucStart0, best.NucEnd0, genes0) ||
		!overlapsGene(best.NucStart1, best.NucEnd1, genes1) {
		t.Error("best tblastx match does not link planted gene regions")
	}
}

func TestCompareGenomeWithMitochondrialCode(t *testing.T) {
	// A gene planted with the mitochondrial code reads back only when
	// the pipeline translates with that code: the ATA/TGA/AGA/AGG
	// differences break or truncate the standard-code translation.
	rng := bank.NewRNG(81)
	protein := bank.RandomProtein(rng, 90)
	proteins := bank.New("q")
	proteins.Add("p", protein)

	// Reverse-translate under the mito code by brute force: pick, for
	// each residue, a codon that the mito code maps to it.
	var coding []byte
	for _, aa := range protein {
		found := false
		for n0 := byte(0); n0 < 4 && !found; n0++ {
			for n1 := byte(0); n1 < 4 && !found; n1++ {
				for n2 := byte(0); n2 < 4 && !found; n2++ {
					if translate.VertebrateMitoCode.Codon(n0, n1, n2) == aa {
						coding = append(coding, n0, n1, n2)
						found = true
					}
				}
			}
		}
		if !found {
			t.Fatalf("no mito codon for residue %d", aa)
		}
	}
	genome := append(bank.RandomProtein(bank.NewRNG(82), 0), make([]byte, 3000)...)
	rng2 := bank.NewRNG(83)
	for i := range genome {
		genome[i] = byte(rng2.Intn(4))
	}
	copy(genome[600:], coding)

	opt := DefaultOptions()
	opt.GeneticCode = translate.VertebrateMitoCode
	res, err := CompareGenome(proteins, genome, opt)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res.Matches {
		if m.NucStart <= 600 && m.NucEnd >= 600+len(coding) {
			found = true
		}
	}
	if !found {
		t.Fatalf("mito-coded gene not found under mito translation (matches: %d)", len(res.Matches))
	}
}
