package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/pipeline"
)

// searchWorkload is the shared v2-vs-v1 equivalence workload.
func searchWorkload(t testing.TB) (*bank.Bank, []byte) {
	t.Helper()
	proteins := bank.GenerateProteins(bank.ProteinConfig{
		N: 12, MeanLen: 120, LenJitter: 20, Seed: 51,
	})
	genome, _, err := bank.GenerateGenome(bank.GenomeConfig{
		Length: 50_000, Source: proteins, PlantCount: 6, PlantSubRate: 0.15, Seed: 52,
	})
	if err != nil {
		t.Fatal(err)
	}
	return proteins, genome
}

// TestSearchEquivalentToCompare is the v2 acceptance gate: for CPU and
// simulated-RASC engines, single-shard and sharded, the streaming
// Search must reproduce the legacy Compare / CompareGenome results
// bit-identically — matches AND order — plus the summary counters.
func TestSearchEquivalentToCompare(t *testing.T) {
	proteins, genome := searchWorkload(t)

	for _, eng := range []Engine{EngineCPU, EngineRASC} {
		for _, ss := range []int{0, 3, 5} {
			name := fmt.Sprintf("%s/shard=%d", eng, ss)
			opt := DefaultOptions()
			opt.Engine = eng
			opt.Pipeline = pipeline.Config{ShardSize: ss, InFlight: 2, Step2Workers: 2, Step3Workers: 2}

			// tblastn: legacy CompareGenome vs Search over a GenomeTarget.
			want, err := CompareGenome(proteins, genome, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Matches) == 0 {
				t.Fatalf("%s: degenerate reference", name)
			}

			s, err := SearcherFromOptions(opt)
			if err != nil {
				t.Fatal(err)
			}
			res := s.Search(context.Background(), NewProteinTarget(proteins), NewGenomeTarget(genome, nil))

			// Stream element by element against the legacy result so an
			// ordering bug cannot hide behind a set comparison.
			i := 0
			for m, err := range res.Matches() {
				if err != nil {
					t.Fatal(err)
				}
				if i >= len(want.Matches) {
					t.Fatalf("%s: stream yielded more than %d matches", name, len(want.Matches))
				}
				ref := &want.Matches[i]
				if !reflect.DeepEqual(m.Alignment, ref.Alignment) {
					t.Fatalf("%s: match %d alignment differs:\n got %+v\nwant %+v", name, i, m.Alignment, ref.Alignment)
				}
				if m.Subject.Frame != ref.Frame || m.Subject.NucStart != ref.NucStart ||
					m.Subject.NucEnd != ref.NucEnd || m.Query.Seq != ref.Protein {
					t.Fatalf("%s: match %d locus differs:\n got %+v\nwant %+v", name, i, m, ref)
				}
				i++
			}
			if i != len(want.Matches) {
				t.Fatalf("%s: stream yielded %d matches, want %d", name, i, len(want.Matches))
			}
			sum, err := res.Summary()
			if err != nil {
				t.Fatal(err)
			}
			if sum.Hits != want.Hits || sum.Pairs != want.Pairs ||
				sum.GappedWork != want.GappedWork ||
				sum.Stats0 != want.Stats0 || sum.Stats1 != want.Stats1 {
				t.Errorf("%s: summary diverges from legacy result", name)
			}
			if eng == EngineRASC {
				if sum.Device == nil || want.Device == nil {
					t.Fatalf("%s: missing device report", name)
				}
				if sum.Device.Seconds != want.Device.Seconds || sum.Times.Ungapped != want.Times.Ungapped {
					t.Errorf("%s: device timing semantics diverge", name)
				}
			}

			// blastp: legacy Compare vs Search over two ProteinTargets.
			fb := NewGenomeTarget(genome, nil).Bank()
			wantP, err := Compare(proteins, fb, opt)
			if err != nil {
				t.Fatal(err)
			}
			resP := s.Search(context.Background(), NewProteinTarget(proteins), NewProteinTarget(fb))
			msP, err := resP.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(alignmentsOf(msP), wantP.Alignments) {
				t.Errorf("%s: protein-target search diverges from Compare", name)
			}
		}
	}
}

// TestSearchModesEquivalent pins the blastx / tblastx target shapes
// against their legacy mode adapters.
func TestSearchModesEquivalent(t *testing.T) {
	proteins, genome := searchWorkload(t)
	opt := DefaultOptions()

	// blastx: DNA queries (the genome, twice, so query numbering > 0 is
	// exercised) against the protein bank.
	queries := [][]byte{genome[:20_000], genome[20_000:]}
	want, err := CompareDNAQueries(queries, proteins, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) == 0 {
		t.Fatal("degenerate blastx reference")
	}
	s, err := SearcherFromOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := s.Search(context.Background(), NewDNATarget(queries, nil), NewProteinTarget(proteins)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(want.Matches) {
		t.Fatalf("blastx: %d matches, want %d", len(ms), len(want.Matches))
	}
	for i := range ms {
		m, ref := &ms[i], &want.Matches[i]
		if !reflect.DeepEqual(m.Alignment, ref.Alignment) ||
			m.Query.Seq != ref.Query || m.Query.Frame != ref.Frame ||
			m.Query.NucStart != ref.NucStart || m.Query.NucEnd != ref.NucEnd {
			t.Fatalf("blastx match %d differs:\n got %+v\nwant %+v", i, m, ref)
		}
	}

	// tblastx: genome vs itself.
	wantG, err := CompareGenomes(genome, genome, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantG.Matches) == 0 {
		t.Fatal("degenerate tblastx reference")
	}
	msG, err := s.Search(context.Background(), NewGenomeTarget(genome, nil), NewGenomeTarget(genome, nil)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(msG) != len(wantG.Matches) {
		t.Fatalf("tblastx: %d matches, want %d", len(msG), len(wantG.Matches))
	}
	for i := range msG {
		m, ref := &msG[i], &wantG.Matches[i]
		if !reflect.DeepEqual(m.Alignment, ref.Alignment) ||
			m.Query.Frame != ref.Frame0 || m.Query.NucStart != ref.NucStart0 || m.Query.NucEnd != ref.NucEnd0 ||
			m.Subject.Frame != ref.Frame1 || m.Subject.NucStart != ref.NucStart1 || m.Subject.NucEnd != ref.NucEnd1 {
			t.Fatalf("tblastx match %d differs:\n got %+v\nwant %+v", i, m, ref)
		}
	}
}

// TestTargetIndexReuse pins the reusable-index contract: the second
// search against a target spends no time building the subject index,
// and its results are bit-identical.
func TestTargetIndexReuse(t *testing.T) {
	proteins, genome := searchWorkload(t)
	s, err := SearcherFromOptions(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewGenomeTarget(genome, nil)
	if tgt.cached(s.opt.Seed, s.opt.N) != nil {
		t.Fatal("index built before any search")
	}

	first, err := s.Search(context.Background(), NewProteinTarget(proteins), tgt).Collect()
	if err != nil {
		t.Fatal(err)
	}
	ix := tgt.cached(s.opt.Seed, s.opt.N)
	if ix == nil {
		t.Fatal("first search did not cache the target index")
	}

	res2 := s.Search(context.Background(), NewProteinTarget(proteins), tgt)
	second, err := res2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if tgt.cached(s.opt.Seed, s.opt.N) != ix {
		t.Error("second search rebuilt the target index")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("index reuse changed results")
	}
	// The engine's step-1 accounting must show only the query-shard
	// build (the subject index arrived prebuilt).
	sum, err := res2.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stats1.Entries == 0 {
		t.Error("reused index lost its statistics")
	}
}

// TestSearchEarlyBreak pins stream abandonment: breaking out of the
// iteration cancels the engine promptly, leaks nothing (the race
// detector and goroutine-chain shutdown cover the rest), and Summary
// reports the stream as abandoned.
func TestSearchEarlyBreak(t *testing.T) {
	proteins, genome := searchWorkload(t)
	opt := DefaultOptions()
	opt.Pipeline = pipeline.Config{ShardSize: 2, InFlight: 2, Step2Workers: 2, Step3Workers: 2}
	s, err := SearcherFromOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Search(context.Background(), NewProteinTarget(proteins), NewGenomeTarget(genome, nil))
	for _, err := range res.Matches() {
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	if _, err := res.Summary(); err == nil {
		t.Error("Summary succeeded on an abandoned stream")
	}
	// The stream is single-use.
	for _, err := range res.Matches() {
		if err == nil {
			t.Error("second iteration of a consumed stream yielded data")
		}
	}
}

// TestSearcherOptionErrors pins option validation.
func TestSearcherOptionErrors(t *testing.T) {
	cases := []Option{
		WithSeed(nil),
		WithMatrix(nil),
		WithNeighborhood(-1),
		WithMaxEValue(0),
	}
	for i, o := range cases {
		if _, err := NewSearcher(o); err == nil {
			t.Errorf("option case %d accepted", i)
		}
	}
	if _, err := NewSearcher(); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
	// Search with a nil side fails through the stream, not a panic.
	s, err := NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(context.Background(), nil, nil).Collect(); err == nil {
		t.Error("nil targets accepted")
	}
}

// TestSearchCancellation pins ctx cancellation through the v2 path.
func TestSearchCancellation(t *testing.T) {
	proteins, genome := searchWorkload(t)
	s, err := SearcherFromOptions(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Search(ctx, NewProteinTarget(proteins), NewGenomeTarget(genome, nil)).Collect(); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// benchSearch builds a sharded searcher and workload big enough that
// the peak-buffer difference between streaming and collecting is
// visible.
func benchSearch(b *testing.B) (*Searcher, *ProteinTarget, *GenomeTarget) {
	b.Helper()
	proteins := bank.GenerateProteins(bank.ProteinConfig{
		N: 48, MeanLen: 150, LenJitter: 30, Seed: 61,
	})
	genome, _, err := bank.GenerateGenome(bank.GenomeConfig{
		Length: 120_000, Source: proteins, PlantCount: 24, PlantSubRate: 0.1, Seed: 62,
	})
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Pipeline = pipeline.Config{ShardSize: 4, InFlight: 2, Step2Workers: 2, Step3Workers: 2}
	s, err := SearcherFromOptions(opt)
	if err != nil {
		b.Fatal(err)
	}
	return s, NewProteinTarget(proteins), NewGenomeTarget(genome, nil)
}

// BenchmarkSearchStream measures the streaming result path: the
// genome sub-benchmark is the multi-shard tblastn run (peak-matches is
// the engine's peak resident match buffer — compare with
// BenchmarkSearchMaterialized, where it equals the whole result), and
// the bank5k sub-benchmarks sweep the candidate prefilter on a
// 5000-sequence subject bank, where k=100 extends 2% of the subjects
// and the end-to-end run should speed up severalfold.
func BenchmarkSearchStream(b *testing.B) {
	b.Run("genome", func(b *testing.B) {
		s, q, tgt := benchSearch(b)
		var peak, total int
		for b.Loop() {
			res := s.Search(context.Background(), q, tgt)
			total = 0
			for m, err := range res.Matches() {
				if err != nil {
					b.Fatal(err)
				}
				_ = m
				total++
			}
			sum, err := res.Summary()
			if err != nil {
				b.Fatal(err)
			}
			peak = sum.Pipeline.MaxBufferedMatches
		}
		b.ReportMetric(float64(peak), "peak-matches")
		b.ReportMetric(float64(total), "total-matches")
	})
	for _, k := range []int{0, 100} {
		b.Run(fmt.Sprintf("bank5k/k=%d", k), func(b *testing.B) {
			benchStreamBank(b, k)
		})
	}
}

// benchStreamBank drives the streaming path over a large protein bank
// with the prefilter at k (0 = off). The subject index is built once
// through the target cache, so iterations measure prefilter + step 2/3
// + assembly — the stages the top-K cut is supposed to shrink.
func benchStreamBank(b *testing.B, k int) {
	queries := bank.GenerateProteins(bank.ProteinConfig{
		N: 16, MeanLen: 120, LenJitter: 30, Seed: 71,
	})
	// A redundant NR-style bank: every subject is a mutated relative of
	// some query, at divergence rates from near-duplicate to twilight.
	// Unfiltered, nearly every (query, subject) pair reaches the
	// extension stages; the top-100 cut keeps each query's closest
	// relatives and skips the rest — the prefilter's target workload.
	rng := bank.NewRNG(73)
	rates := []float64{0.10, 0.20, 0.30, 0.40, 0.50}
	subjects := bank.New("subjects")
	for i := 0; i < 5000; i++ {
		q := queries.Seq(i % queries.Len())
		rate := rates[(i/queries.Len())%len(rates)]
		subjects.Add(fmt.Sprintf("h%d", i), bank.MutateProtein(rng, q, rate))
	}
	opt := DefaultOptions()
	opt.MaxCandidates = k
	s, err := SearcherFromOptions(opt)
	if err != nil {
		b.Fatal(err)
	}
	q, tgt := NewProteinTarget(queries), NewProteinTarget(subjects)
	// Warm the target's cached subject index so iterations measure the
	// per-request stages, not the one-time step-1 build.
	if n := countMatches(b, s, q, tgt); n == 0 {
		b.Fatal("benchmark workload yields no matches")
	}
	var total int
	b.ResetTimer()
	for b.Loop() {
		total = countMatches(b, s, q, tgt)
	}
	b.ReportMetric(float64(total), "total-matches")
}

func countMatches(b *testing.B, s *Searcher, q *ProteinTarget, tgt *ProteinTarget) int {
	b.Helper()
	total := 0
	for m, err := range s.Search(context.Background(), q, tgt).Matches() {
		if err != nil {
			b.Fatal(err)
		}
		_ = m
		total++
	}
	return total
}

// materializedRequest rebuilds the engine request a v1 materialized
// run would issue for the benchmark workload, so the same engine can
// be driven through Run (full slice resident) as the reference.
func materializedRequest(tb testing.TB, s *Searcher, q *ProteinTarget, tgt *GenomeTarget) *pipeline.Request {
	tb.Helper()
	ix1, err := tgt.index(s.opt.Seed, s.opt.N, s.opt.Workers)
	if err != nil {
		tb.Fatal(err)
	}
	return &pipeline.Request{
		Bank0:   q.Bank(),
		Bank1:   tgt.Bank(),
		Seed:    s.opt.Seed,
		N:       s.opt.N,
		Workers: s.opt.Workers,
		Gapped:  s.gcfg,
		Index1:  ix1,
	}
}

// BenchmarkSearchMaterialized is the v1-style materialized-slice path
// over the same workload and engine: every shard's alignments stay
// resident until assembly, so peak-matches equals the full result.
func BenchmarkSearchMaterialized(b *testing.B) {
	s, q, tgt := benchSearch(b)
	req := materializedRequest(b, s, q, tgt)
	var peak, total int
	for b.Loop() {
		out, err := s.eng.Run(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		peak = out.Metrics.MaxBufferedMatches
		total = len(out.Alignments)
	}
	b.ReportMetric(float64(peak), "peak-matches")
	b.ReportMetric(float64(total), "total-matches")
}

// TestStreamPeakBelowMaterialized is the asserted form of the two
// benchmarks: on a multi-shard run the v2 streaming path's peak
// resident match buffer must be strictly below the materialized
// path's, whose peak is the whole result.
func TestStreamPeakBelowMaterialized(t *testing.T) {
	proteins, genome := searchWorkload(t)
	opt := DefaultOptions()
	opt.Pipeline = pipeline.Config{ShardSize: 2, InFlight: 2, Step2Workers: 2, Step3Workers: 1}
	s, err := SearcherFromOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewGenomeTarget(genome, nil)
	q := NewProteinTarget(proteins)

	out, err := s.eng.Run(context.Background(), materializedRequest(t, s, q, tgt))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Alignments) < 4 {
		t.Skipf("workload too small to compare peaks (%d matches)", len(out.Alignments))
	}
	if out.Metrics.MaxBufferedMatches != len(out.Alignments) {
		t.Fatalf("materialized peak %d, want the whole result %d",
			out.Metrics.MaxBufferedMatches, len(out.Alignments))
	}

	res := s.Search(context.Background(), q, tgt)
	n := 0
	for _, err := range res.Matches() {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	sum, err := res.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(out.Alignments) {
		t.Fatalf("stream yielded %d matches, materialized %d", n, len(out.Alignments))
	}
	if sum.Pipeline.MaxBufferedMatches >= out.Metrics.MaxBufferedMatches {
		t.Errorf("streaming peak %d not below materialized peak %d",
			sum.Pipeline.MaxBufferedMatches, out.Metrics.MaxBufferedMatches)
	}
}
