package core

import (
	"fmt"
	"sync"

	"seedblast/internal/bank"
	"seedblast/internal/gapped"
	"seedblast/internal/index"
	"seedblast/internal/seed"
	"seedblast/internal/translate"
)

// Target is one side of a v2 comparison: a set of sequences together
// with the prebuilt, reusable step-1 indexes the engine compares
// against. A Target is built once and handed to any number of
// Searcher.Search calls — its index for a given (seed model, N) is
// built on first use and cached for every later search, subsuming the
// old Options.SubjectIndex / FrameBank plumbing. Translated targets
// (GenomeTarget, DNATarget) also own the frame bookkeeping that maps
// engine alignments back to source nucleotide coordinates.
//
// The interface is sealed: the three implementations below cover the
// BLAST family (blastp, tblastn, blastx, tblastx) and the engine's
// invariants depend on their construction.
type Target interface {
	// Kind names the target flavour: "protein", "genome" or "dna".
	Kind() string
	// Bank returns the effective protein bank the engine compares: the
	// source bank for ProteinTarget, the six-frame translation bank for
	// GenomeTarget and DNATarget.
	Bank() *bank.Bank

	// index returns the target's step-1 index for (model, n), building
	// and caching it on first use.
	index(model seed.Model, n, workers int) (*index.Index, error)
	// cached returns the already-built index for (model, n), or nil —
	// it never builds.
	cached(model seed.Model, n int) *index.Index
	// locus maps an effective-bank sequence number and residue span
	// back to source coordinates.
	locus(seq int, span gapped.Span) Locus
}

// Locus is one side of a Match mapped back to its target's source
// coordinates.
type Locus struct {
	// Seq is the source sequence number: the bank position for a
	// ProteinTarget, the DNA query number for a DNATarget, 0 for a
	// GenomeTarget (one genome per target).
	Seq int
	// ID is the effective sequence id: the bank id for proteins, the
	// frame-bank id otherwise (the frame string for a genome — the same
	// convention the service's wire encoding uses).
	ID string
	// Frame is the reading frame for translated targets, 0 for
	// proteins.
	Frame translate.Frame
	// NucStart/NucEnd is the forward-strand nucleotide interval the
	// aligned span covers, for translated targets only.
	NucStart, NucEnd int
}

// Translated reports whether the locus is a reading frame of a
// nucleotide sequence.
func (l Locus) Translated() bool { return l.Frame != 0 }

// indexSet caches one index per (seed model, N) identity with
// build-once semantics: concurrent searches against a cold target pay
// for exactly one build.
type indexSet struct {
	mu sync.Mutex
	m  map[string]*indexEntry
}

type indexEntry struct {
	once sync.Once
	ix   *index.Index
	err  error
}

func (s *indexSet) entry(key string) *indexEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*indexEntry)
	}
	e, ok := s.m[key]
	if !ok {
		e = &indexEntry{}
		s.m[key] = e
	}
	return e
}

func (s *indexSet) get(b *bank.Bank, model seed.Model, n, workers int) (*index.Index, error) {
	e := s.entry(index.ModelIdentity(model, n))
	e.once.Do(func() {
		e.ix, e.err = index.BuildParallel(b, model, n, workers)
	})
	return e.ix, e.err
}

func (s *indexSet) peek(model seed.Model, n int) *index.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[index.ModelIdentity(model, n)]; ok {
		return e.ix
	}
	return nil
}

// adopt installs a prebuilt index under its own (model, N) identity.
// The index must have been built from the target's effective bank; the
// engine re-validates shape on every run (pipeline.MatchesRequest),
// exactly as Options.SubjectIndex was validated.
func (s *indexSet) adopt(ix *index.Index) {
	if ix == nil {
		return
	}
	e := s.entry(index.ModelIdentity(ix.Model(), ix.N()))
	e.once.Do(func() { e.ix = ix })
}

// ProteinTarget is a protein bank as a search target (or query side).
type ProteinTarget struct {
	b      *bank.Bank
	ixs    indexSet
	closer func() error // releases disk-backed storage (OpenTarget)
}

// NewProteinTarget wraps a protein bank. The bank is treated as
// immutable from here on — the target's cached indexes alias it.
func NewProteinTarget(b *bank.Bank) *ProteinTarget {
	return &ProteinTarget{b: b}
}

// Kind implements Target.
func (t *ProteinTarget) Kind() string { return "protein" }

// Bank implements Target.
func (t *ProteinTarget) Bank() *bank.Bank { return t.b }

// Adopt installs a prebuilt step-1 index of the bank (advanced use:
// the comparison service shares fingerprint-keyed cached indexes
// across targets this way). The index must describe this bank.
func (t *ProteinTarget) Adopt(ix *index.Index) { t.ixs.adopt(ix) }

func (t *ProteinTarget) index(model seed.Model, n, workers int) (*index.Index, error) {
	return t.ixs.get(t.b, model, n, workers)
}

func (t *ProteinTarget) cached(model seed.Model, n int) *index.Index {
	return t.ixs.peek(model, n)
}

func (t *ProteinTarget) locus(seq int, _ gapped.Span) Locus {
	return Locus{Seq: seq, ID: t.b.ID(seq)}
}

// GenomeTarget is a nucleotide sequence as a search target (or query
// side): it owns the six-frame translation bank and maps alignments
// back to genome coordinates — the tblastn subject and the tblastx
// side.
type GenomeTarget struct {
	genome []byte
	code   *translate.Code
	frames [6]translate.FrameTranslation
	fbank  *bank.Bank
	ixs    indexSet
}

// NewGenomeTarget translates an encoded genome (alphabet.EncodeDNA)
// into its six reading frames under the genetic code (nil means the
// standard code) and wraps the result as a reusable target.
func NewGenomeTarget(genome []byte, code *translate.Code) *GenomeTarget {
	if code == nil {
		code = translate.StandardCode
	}
	frames := code.SixFrames(genome)
	return &GenomeTarget{
		genome: genome,
		code:   code,
		frames: frames,
		fbank:  frameBank(frames),
	}
}

// Kind implements Target.
func (t *GenomeTarget) Kind() string { return "genome" }

// Bank implements Target: the six-frame translation bank.
func (t *GenomeTarget) Bank() *bank.Bank { return t.fbank }

// Len returns the genome length in nucleotides.
func (t *GenomeTarget) Len() int { return len(t.genome) }

// Code returns the genetic code the target was translated under.
func (t *GenomeTarget) Code() *translate.Code { return t.code }

// Adopt installs a prebuilt index of the frame bank (see
// ProteinTarget.Adopt).
func (t *GenomeTarget) Adopt(ix *index.Index) { t.ixs.adopt(ix) }

func (t *GenomeTarget) index(model seed.Model, n, workers int) (*index.Index, error) {
	return t.ixs.get(t.fbank, model, n, workers)
}

func (t *GenomeTarget) cached(model seed.Model, n int) *index.Index {
	return t.ixs.peek(model, n)
}

func (t *GenomeTarget) locus(seq int, span gapped.Span) Locus {
	frame := t.frames[seq].Frame
	l := Locus{ID: frame.String(), Frame: frame}
	l.NucStart, l.NucEnd = frameSpanToNuc(frame, span.Start, span.End, len(t.genome))
	return l
}

// DNATarget is a set of DNA sequences as a search side: each sequence
// is translated into its six reading frames (the blastx query side),
// and matches are mapped back to the originating query and its
// nucleotide coordinates.
type DNATarget struct {
	refs  []dnaFrameRef
	fbank *bank.Bank
	ixs   indexSet
}

// dnaFrameRef locates one frame-bank sequence in its source DNA query.
type dnaFrameRef struct {
	query int
	frame translate.Frame
	qLen  int
}

// NewDNATarget translates each encoded DNA sequence into its six
// reading frames under the genetic code (nil means the standard code)
// and wraps the combined frame bank as a reusable target.
func NewDNATarget(queries [][]byte, code *translate.Code) *DNATarget {
	if code == nil {
		code = translate.StandardCode
	}
	fbank := bank.New("dna-query-frames")
	t := &DNATarget{fbank: fbank}
	for qi, dna := range queries {
		for _, ft := range code.SixFrames(dna) {
			fbank.Add(fmt.Sprintf("q%d%s", qi, ft.Frame), ft.Protein)
			t.refs = append(t.refs, dnaFrameRef{query: qi, frame: ft.Frame, qLen: len(dna)})
		}
	}
	return t
}

// Kind implements Target.
func (t *DNATarget) Kind() string { return "dna" }

// Bank implements Target: the combined six-frame translation bank.
func (t *DNATarget) Bank() *bank.Bank { return t.fbank }

// Queries returns the number of source DNA sequences.
func (t *DNATarget) Queries() int { return len(t.refs) / 6 }

// Adopt installs a prebuilt index of the frame bank (see
// ProteinTarget.Adopt).
func (t *DNATarget) Adopt(ix *index.Index) { t.ixs.adopt(ix) }

func (t *DNATarget) index(model seed.Model, n, workers int) (*index.Index, error) {
	return t.ixs.get(t.fbank, model, n, workers)
}

func (t *DNATarget) cached(model seed.Model, n int) *index.Index {
	return t.ixs.peek(model, n)
}

func (t *DNATarget) locus(seq int, span gapped.Span) Locus {
	ref := t.refs[seq]
	l := Locus{Seq: ref.query, ID: t.fbank.ID(seq), Frame: ref.frame}
	l.NucStart, l.NucEnd = frameSpanToNuc(ref.frame, span.Start, span.End, ref.qLen)
	return l
}
