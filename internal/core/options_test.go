package core

import (
	"reflect"
	"testing"

	"seedblast/internal/align"
	"seedblast/internal/bank"
	"seedblast/internal/gapped"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/stats"
	"seedblast/internal/translate"
)

// Regression for the options bug where a nil Gapped.Matrix replaced
// the caller's entire gapped.Config with the defaults, silently
// discarding user-set fields like Band and MaxEValue, and
// Gapped.Workers was unconditionally clobbered by Options.Workers.
func TestGappedConfigPreservesUserFields(t *testing.T) {
	opt := DefaultOptions()
	opt.Workers = 8
	opt.Gapped = gapped.Config{ // Matrix deliberately nil
		Band:      7,
		MaxEValue: 0.5,
		Workers:   3,
	}
	g := opt.gappedConfig()
	if g.Matrix != matrix.BLOSUM62 {
		t.Errorf("missing matrix not filled with the default")
	}
	if g.Band != 7 {
		t.Errorf("user Band discarded: got %d, want 7", g.Band)
	}
	if g.MaxEValue != 0.5 {
		t.Errorf("user MaxEValue discarded: got %g, want 0.5", g.MaxEValue)
	}
	if g.Workers != 3 {
		t.Errorf("explicit Gapped.Workers clobbered: got %d, want 3", g.Workers)
	}
	if g.GapTrigger != 0 {
		t.Errorf("GapTrigger 0 (pre-filter disabled) overwritten: got %d", g.GapTrigger)
	}
	def := gapped.DefaultConfig()
	if g.Params != def.Params {
		t.Errorf("unset Params not filled with the defaults")
	}
	if g.Gaps != def.Gaps {
		t.Errorf("unset Gaps not filled with the defaults")
	}
}

func TestGappedConfigZeroValueGetsDefaults(t *testing.T) {
	opt := DefaultOptions()
	opt.Gapped = gapped.Config{}
	opt.Workers = 2
	g := opt.gappedConfig()
	def := gapped.DefaultConfig()
	if g.Matrix != def.Matrix || g.Band != def.Band || g.MaxEValue != def.MaxEValue ||
		g.Params != def.Params || g.Gaps != def.Gaps {
		t.Errorf("zero Gapped config not filled with defaults: %+v", g)
	}
	if g.Workers != 2 {
		t.Errorf("unset Gapped.Workers should inherit Options.Workers: got %d", g.Workers)
	}
}

func TestGappedConfigExplicitUntouched(t *testing.T) {
	opt := DefaultOptions()
	want := gapped.Config{
		Matrix:     matrix.BLOSUM62,
		Gaps:       align.GapParams{Open: 9, Extend: 2},
		Band:       5,
		GapTrigger: 20,
		XDrop:      9,
		Params:     gapped.DefaultConfig().Params,
		MaxEValue:  2.5,
		Traceback:  true,
		Workers:    4,
	}
	opt.Gapped = want
	opt.Workers = 16
	if got := opt.gappedConfig(); got != want {
		t.Errorf("fully explicit Gapped config modified:\n got %+v\nwant %+v", got, want)
	}
}

func TestGappedConfigSearchSpaceOverride(t *testing.T) {
	opt := DefaultOptions()
	opt.SearchSpaceOverride = stats.SearchSpace{DBLen: 123456, DBSeqs: 42}
	if g := opt.gappedConfig(); g.SearchSpace != opt.SearchSpaceOverride {
		t.Errorf("SearchSpaceOverride not plumbed into the gapped config: %+v", g.SearchSpace)
	}
	// And it must win over a conflicting Gapped.SearchSpace.
	opt.Gapped.SearchSpace = stats.SearchSpace{DBLen: 7}
	if g := opt.gappedConfig(); g.SearchSpace != opt.SearchSpaceOverride {
		t.Errorf("SearchSpaceOverride lost to Gapped.SearchSpace: %+v", g.SearchSpace)
	}
}

// A volume comparison with the full bank's search space must report
// the same E-values as the unpartitioned run: this is the statistical
// invariant the cluster layer's scatter-gather depends on.
func TestCompareSearchSpaceOverrideMatchesFullBank(t *testing.T) {
	b0 := bank.GenerateProteins(bank.ProteinConfig{N: 6, MeanLen: 110, LenJitter: 10, Seed: 11})
	b1 := bank.GenerateProteins(bank.ProteinConfig{N: 10, MeanLen: 110, LenJitter: 10, Seed: 12})

	opt := DefaultOptions()
	opt.UngappedThreshold = 22
	opt.Gapped.MaxEValue = 10 // loose enough that chance hits survive
	full, err := Compare(b0, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Alignments) == 0 {
		t.Skip("workload produced no alignments; nothing to pin")
	}

	// Rebuild the first volume: subject sequences [0, 5).
	vol := bank.New("vol0")
	for i := 0; i < 5; i++ {
		vol.Add(b1.ID(i), b1.Seq(i))
	}
	vopt := opt
	vopt.SearchSpaceOverride = stats.SearchSpace{DBLen: b1.TotalResidues(), DBSeqs: b1.Len()}
	vres, err := Compare(b0, vol, vopt)
	if err != nil {
		t.Fatal(err)
	}
	// The volume is the first five subjects, so volume-local Seq1 equals
	// the global number and filtering the full run to Seq1 < 5 preserves
	// the (Seq0, EValue, Seq1) order: the two lists must match exactly.
	var want []gapped.Alignment
	for _, a := range full.Alignments {
		if a.Seq1 < 5 {
			want = append(want, a)
		}
	}
	if !reflect.DeepEqual(vres.Alignments, want) {
		t.Errorf("volume run with full-bank search space differs from the full run's volume slice:\n got %+v\nwant %+v",
			vres.Alignments, want)
	}
}

// End-to-end: a user-set MaxEValue with a nil Matrix must actually
// reach the gapped stage instead of being replaced by the default.
func TestCompareHonorsGappedEValueWithNilMatrix(t *testing.T) {
	// Unrelated banks: chance similarities only, which survive a loose
	// E-value cutoff but not the strict default.
	b0 := bank.GenerateProteins(bank.ProteinConfig{N: 20, MeanLen: 120, LenJitter: 15, Seed: 7})
	b1 := bank.GenerateProteins(bank.ProteinConfig{N: 20, MeanLen: 120, LenJitter: 15, Seed: 8})

	loose := DefaultOptions()
	loose.UngappedThreshold = 20
	loose.Gapped = gapped.Config{MaxEValue: 1e6} // Matrix nil: fill it, keep the cutoff
	rl, err := Compare(b0, b1, loose)
	if err != nil {
		t.Fatal(err)
	}

	strict := DefaultOptions() // default E ≤ 1e-3
	strict.UngappedThreshold = 20
	rs, err := Compare(b0, b1, strict)
	if err != nil {
		t.Fatal(err)
	}
	if len(rl.Alignments) <= len(rs.Alignments) {
		t.Errorf("loose cutoff (1e6) reported %d alignments, strict (1e-3) %d; the user cutoff was discarded",
			len(rl.Alignments), len(rs.Alignments))
	}
	for _, a := range rl.Alignments {
		if a.EValue > 1e6 {
			t.Fatalf("alignment with E=%g exceeds the user cutoff", a.EValue)
		}
	}
}

// SubjectIndex reuse must be validated and bit-identical to a fresh
// build.
func TestCompareWithPrebuiltSubjectIndex(t *testing.T) {
	b0 := bank.GenerateProteins(bank.ProteinConfig{N: 8, MeanLen: 100, LenJitter: 10, Seed: 3})
	b1 := bank.GenerateProteins(bank.ProteinConfig{N: 8, MeanLen: 100, LenJitter: 10, Seed: 4})

	opt := DefaultOptions()
	fresh, err := Compare(b0, b1, opt)
	if err != nil {
		t.Fatal(err)
	}

	ix1, err := index.BuildParallel(b1, opt.Seed, opt.N, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt.SubjectIndex = ix1
	reused, err := Compare(b0, b1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(reused.Alignments) != len(fresh.Alignments) {
		t.Fatalf("prebuilt subject index changed results: %d vs %d alignments",
			len(reused.Alignments), len(fresh.Alignments))
	}
	for i := range fresh.Alignments {
		if fresh.Alignments[i].Score != reused.Alignments[i].Score ||
			fresh.Alignments[i].Seq0 != reused.Alignments[i].Seq0 ||
			fresh.Alignments[i].Seq1 != reused.Alignments[i].Seq1 ||
			fresh.Alignments[i].EValue != reused.Alignments[i].EValue {
			t.Fatalf("alignment %d differs with prebuilt subject index", i)
		}
	}

	// A mismatched index must be rejected, not silently used.
	bad := DefaultOptions()
	bad.N = opt.N + 1
	bad.SubjectIndex = ix1
	if _, err := Compare(b0, b1, bad); err == nil {
		t.Fatal("mismatched SubjectIndex (wrong N) accepted")
	}
	if _, err := CompareBatch(b0, b1, bad); err == nil {
		t.Fatal("CompareBatch accepted mismatched SubjectIndex")
	}
}

// Regression for the optplumb calibration finding: the geneticCode
// wire option reached Options.GeneticCode through buildOptions, but no
// With* setter managed the field — the v2 functional-option API could
// not express it at all.
func TestWithGeneticCodeSetsTranslationTable(t *testing.T) {
	opt := DefaultOptions()
	if err := WithGeneticCode(translate.VertebrateMitoCode)(&opt); err != nil {
		t.Fatalf("WithGeneticCode: %v", err)
	}
	if opt.GeneticCode != translate.VertebrateMitoCode {
		t.Fatalf("GeneticCode not applied: got %p", opt.GeneticCode)
	}
	if err := WithGeneticCode(nil)(&opt); err != nil {
		t.Fatalf("WithGeneticCode(nil): %v", err)
	}
	if opt.GeneticCode != nil {
		t.Fatal("WithGeneticCode(nil) did not reset to the standard code")
	}
}
