package core

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/gapped"
	"seedblast/internal/pipeline"
	"seedblast/internal/translate"
)

// equivWorkload builds a protein bank and the six-frame bank of a
// genome with planted genes — the tblastn workload both drivers see.
func equivWorkload(t *testing.T) (*bank.Bank, *bank.Bank) {
	t.Helper()
	proteins, genome, _ := plantedWorkload(t, 12, 50_000, 6)
	frames := translate.SixFrames(genome)
	fbank := bank.New("frames")
	for _, ft := range frames {
		fbank.Add(ft.Frame.String(), ft.Protein)
	}
	return proteins, fbank
}

func sortAligns(as []gapped.Alignment) []gapped.Alignment {
	out := append([]gapped.Alignment(nil), as...)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Seq0 != b.Seq0 {
			return a.Seq0 < b.Seq0
		}
		if a.Seq1 != b.Seq1 {
			return a.Seq1 < b.Seq1
		}
		if a.Q.Start != b.Q.Start {
			return a.Q.Start < b.Q.Start
		}
		if a.S.Start != b.S.Start {
			return a.S.Start < b.S.Start
		}
		return a.Score > b.Score
	})
	return out
}

// TestStreamingEquivalence is the acceptance gate for the shard
// engine: for every engine and shard size, the streaming path must
// reproduce the batch path's Hits, Pairs, index statistics, gapped
// work profile and exact (order-normalised) alignment set.
func TestStreamingEquivalence(t *testing.T) {
	proteins, fbank := equivWorkload(t)
	ref, err := CompareBatch(proteins, fbank, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Hits == 0 || len(ref.Alignments) == 0 {
		t.Fatalf("degenerate reference: %d hits, %d alignments", ref.Hits, len(ref.Alignments))
	}
	refAligns := sortAligns(ref.Alignments)

	n := proteins.Len()
	for _, eng := range []Engine{EngineCPU, EngineRASC, EngineMulti} {
		for _, ss := range []int{0, 1, 5, n, n + 9} {
			name := fmt.Sprintf("%s/shard=%d", eng, ss)
			opt := DefaultOptions()
			opt.Engine = eng
			opt.Pipeline = pipeline.Config{
				ShardSize:    ss,
				InFlight:     2,
				Step2Workers: 2,
				Step3Workers: 2,
			}
			res, err := Compare(proteins, fbank, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Hits != ref.Hits || res.Pairs != ref.Pairs {
				t.Fatalf("%s: hits/pairs %d/%d, want %d/%d",
					name, res.Hits, res.Pairs, ref.Hits, ref.Pairs)
			}
			if res.Stats0 != ref.Stats0 || res.Stats1 != ref.Stats1 {
				t.Errorf("%s: index stats diverged:\n%+v %+v\nwant\n%+v %+v",
					name, res.Stats0, res.Stats1, ref.Stats0, ref.Stats1)
			}
			if res.GappedWork != ref.GappedWork {
				t.Errorf("%s: gapped work %+v, want %+v", name, res.GappedWork, ref.GappedWork)
			}
			got := sortAligns(res.Alignments)
			if len(got) != len(refAligns) {
				t.Fatalf("%s: %d alignments, want %d", name, len(got), len(refAligns))
			}
			for i := range got {
				a, b := got[i], refAligns[i]
				if a.Seq0 != b.Seq0 || a.Seq1 != b.Seq1 || a.Score != b.Score ||
					a.BitScore != b.BitScore || a.EValue != b.EValue ||
					a.Q != b.Q || a.S != b.S {
					t.Fatalf("%s: alignment %d differs:\n%+v\nvs\n%+v", name, i, a, b)
				}
			}
			if eng == EngineRASC && res.Device == nil {
				t.Errorf("%s: missing device report", name)
			}
			if eng == EngineMulti && res.Pipeline.Shards > 1 {
				total := 0
				for _, c := range res.Pipeline.ShardsByBackend {
					total += c
				}
				if total != res.Pipeline.Shards {
					t.Errorf("%s: dispatch split %v covers %d of %d shards",
						name, res.Pipeline.ShardsByBackend, total, res.Pipeline.Shards)
				}
			}
		}
	}
}

// TestSingleShardOrderIdentical pins the drop-in guarantee: with the
// zero Pipeline config the streaming driver reproduces the batch
// path's alignments in the exact same order, element by element.
func TestSingleShardOrderIdentical(t *testing.T) {
	proteins, fbank := equivWorkload(t)
	for _, eng := range []Engine{EngineCPU, EngineRASC} {
		opt := DefaultOptions()
		opt.Engine = eng
		batch, err := CompareBatch(proteins, fbank, opt)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := Compare(proteins, fbank, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(stream.Alignments) != len(batch.Alignments) {
			t.Fatalf("%s: %d alignments, want %d", eng, len(stream.Alignments), len(batch.Alignments))
		}
		for i := range stream.Alignments {
			a, b := stream.Alignments[i], batch.Alignments[i]
			if a.Seq0 != b.Seq0 || a.Seq1 != b.Seq1 || a.Score != b.Score ||
				a.EValue != b.EValue || a.Q != b.Q || a.S != b.S {
				t.Fatalf("%s: alignment %d out of order: %+v vs %+v", eng, i, a, b)
			}
		}
		if stream.Hits != batch.Hits || stream.Pairs != batch.Pairs {
			t.Fatalf("%s: hits/pairs diverged", eng)
		}
		if eng == EngineRASC {
			// The single-shard device report must be the shard's verbatim.
			if stream.Device == nil || batch.Device == nil {
				t.Fatal("missing device reports")
			}
			if stream.Device.Seconds != batch.Device.Seconds ||
				stream.Device.Pairs != batch.Device.Pairs ||
				stream.Device.Records != batch.Device.Records {
				t.Errorf("rasc: device report diverged: %+v vs %+v", stream.Device, batch.Device)
			}
		}
	}
}

// TestCompareContextCancelled pins cancellation through the public
// adapter.
func TestCompareContextCancelled(t *testing.T) {
	proteins, fbank := equivWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareContext(ctx, proteins, fbank, DefaultOptions()); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
