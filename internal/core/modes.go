package core

import (
	"fmt"

	"seedblast/internal/bank"
	"seedblast/internal/gapped"
	"seedblast/internal/translate"
)

// The paper's conclusion notes the PSC operator "can be directly
// reused for implementing blastp, blastx, and tblastx": every BLAST
// family program reduces to the same protein bank-vs-bank comparison
// after the appropriate translations. This file provides those modes.
//
//	blastp  — protein bank vs protein bank: Compare itself.
//	tblastn — protein bank vs translated genome: CompareGenome.
//	blastx  — translated DNA queries vs protein bank: CompareDNAQueries.
//	tblastx — translated genome vs translated genome: CompareGenomes.

// DNAQueryMatch is a blastx alignment: a protein-bank subject matched
// by a reading frame of one DNA query, with query coordinates mapped
// back to its nucleotides.
type DNAQueryMatch struct {
	gapped.Alignment
	Query    int // DNA query number
	Frame    translate.Frame
	NucStart int // nucleotide interval of the aligned query region
	NucEnd   int
	Subject  int // protein-bank sequence number (same as Alignment.Seq1)
}

// DNAQueryResult is the outcome of CompareDNAQueries.
type DNAQueryResult struct {
	Result
	Matches []DNAQueryMatch
}

// CompareDNAQueries implements blastx: each DNA query is translated
// into its six reading frames, the frame translations form bank 0, and
// matches are mapped back to query nucleotide coordinates.
func CompareDNAQueries(queries [][]byte, proteins *bank.Bank, opt Options) (*DNAQueryResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no DNA queries")
	}
	qbank := bank.New("dna-query-frames")
	type frameRef struct {
		query int
		frame translate.Frame
		qLen  int
	}
	var refs []frameRef
	for qi, dna := range queries {
		for _, ft := range opt.code().SixFrames(dna) {
			qbank.Add(fmt.Sprintf("q%d%s", qi, ft.Frame), ft.Protein)
			refs = append(refs, frameRef{query: qi, frame: ft.Frame, qLen: len(dna)})
		}
	}
	res, err := Compare(qbank, proteins, opt)
	if err != nil {
		return nil, err
	}
	out := &DNAQueryResult{Result: *res}
	for _, a := range res.Alignments {
		ref := refs[a.Seq0]
		m := DNAQueryMatch{
			Alignment: a,
			Query:     ref.query,
			Frame:     ref.frame,
			Subject:   a.Seq1,
		}
		first := translate.CodonStart(ref.frame, a.Q.Start, ref.qLen)
		last := translate.CodonStart(ref.frame, a.Q.End-1, ref.qLen)
		if ref.frame > 0 {
			m.NucStart, m.NucEnd = first, last+3
		} else {
			m.NucStart, m.NucEnd = last, first+3
		}
		out.Matches = append(out.Matches, m)
	}
	return out, nil
}

// GenomePairMatch is a tblastx alignment: both sides are reading
// frames, both mapped back to nucleotide coordinates.
type GenomePairMatch struct {
	gapped.Alignment
	Frame0    translate.Frame
	NucStart0 int
	NucEnd0   int
	Frame1    translate.Frame
	NucStart1 int
	NucEnd1   int
}

// GenomePairResult is the outcome of CompareGenomes.
type GenomePairResult struct {
	Result
	Matches []GenomePairMatch
}

// CompareGenomes implements tblastx: both nucleotide sequences are
// six-frame translated and compared protein-wise — the most expensive
// BLAST mode (36 frame pairs), which is exactly why the paper's
// bank-vs-bank restructuring applies to it unchanged.
func CompareGenomes(genome0, genome1 []byte, opt Options) (*GenomePairResult, error) {
	f0 := opt.code().SixFrames(genome0)
	f1 := opt.code().SixFrames(genome1)
	b0 := bank.New("genome0-frames")
	b1 := bank.New("genome1-frames")
	for _, ft := range f0 {
		b0.Add(ft.Frame.String(), ft.Protein)
	}
	for _, ft := range f1 {
		b1.Add(ft.Frame.String(), ft.Protein)
	}
	res, err := Compare(b0, b1, opt)
	if err != nil {
		return nil, err
	}
	out := &GenomePairResult{Result: *res}
	for _, a := range res.Alignments {
		m := GenomePairMatch{
			Alignment: a,
			Frame0:    f0[a.Seq0].Frame,
			Frame1:    f1[a.Seq1].Frame,
		}
		m.NucStart0, m.NucEnd0 = frameSpanToNuc(m.Frame0, a.Q.Start, a.Q.End, len(genome0))
		m.NucStart1, m.NucEnd1 = frameSpanToNuc(m.Frame1, a.S.Start, a.S.End, len(genome1))
		out.Matches = append(out.Matches, m)
	}
	return out, nil
}

// frameSpanToNuc maps a half-open protein span within a reading frame
// to the forward-strand nucleotide interval it covers.
func frameSpanToNuc(f translate.Frame, aaStart, aaEnd, genomeLen int) (int, int) {
	first := translate.CodonStart(f, aaStart, genomeLen)
	last := translate.CodonStart(f, aaEnd-1, genomeLen)
	if f > 0 {
		return first, last + 3
	}
	return last, first + 3
}
