package core

import (
	"context"
	"fmt"

	"seedblast/internal/bank"
	"seedblast/internal/gapped"
	"seedblast/internal/translate"
)

// The paper's conclusion notes the PSC operator "can be directly
// reused for implementing blastp, blastx, and tblastx": every BLAST
// family program reduces to the same protein bank-vs-bank comparison
// after the appropriate translations. This file provides the v1 mode
// entry points as thin adapters over the v2 Searcher API — in v2 the
// translations live in the targets themselves (DNATarget,
// GenomeTarget) and one Search call covers every mode.
//
//	blastp  — protein bank vs protein bank: Compare itself.
//	tblastn — protein bank vs translated genome: CompareGenome.
//	blastx  — translated DNA queries vs protein bank: CompareDNAQueries.
//	tblastx — translated genome vs translated genome: CompareGenomes.

// DNAQueryMatch is a blastx alignment: a protein-bank subject matched
// by a reading frame of one DNA query, with query coordinates mapped
// back to its nucleotides.
type DNAQueryMatch struct {
	gapped.Alignment
	Query    int // DNA query number
	Frame    translate.Frame
	NucStart int // nucleotide interval of the aligned query region
	NucEnd   int
	Subject  int // protein-bank sequence number (same as Alignment.Seq1)
}

// DNAQueryResult is the outcome of CompareDNAQueries.
type DNAQueryResult struct {
	Result
	Matches []DNAQueryMatch
}

// CompareDNAQueries implements blastx: each DNA query is translated
// into its six reading frames, the frame translations form bank 0, and
// matches are mapped back to query nucleotide coordinates.
func CompareDNAQueries(queries [][]byte, proteins *bank.Bank, opt Options) (*DNAQueryResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no DNA queries")
	}
	s, err := SearcherFromOptions(opt)
	if err != nil {
		return nil, err
	}
	res := s.Search(context.Background(), NewDNATarget(queries, opt.GeneticCode), NewProteinTarget(proteins))
	ms, err := res.Collect()
	if err != nil {
		return nil, err
	}
	sum, err := res.Summary()
	if err != nil {
		return nil, err
	}
	out := &DNAQueryResult{Result: *ResultFrom(ms, sum)}
	for i := range ms {
		m := &ms[i]
		out.Matches = append(out.Matches, DNAQueryMatch{
			Alignment: m.Alignment,
			Query:     m.Query.Seq,
			Frame:     m.Query.Frame,
			NucStart:  m.Query.NucStart,
			NucEnd:    m.Query.NucEnd,
			Subject:   m.Alignment.Seq1,
		})
	}
	return out, nil
}

// GenomePairMatch is a tblastx alignment: both sides are reading
// frames, both mapped back to nucleotide coordinates.
type GenomePairMatch struct {
	gapped.Alignment
	Frame0    translate.Frame
	NucStart0 int
	NucEnd0   int
	Frame1    translate.Frame
	NucStart1 int
	NucEnd1   int
}

// GenomePairResult is the outcome of CompareGenomes.
type GenomePairResult struct {
	Result
	Matches []GenomePairMatch
}

// CompareGenomes implements tblastx: both nucleotide sequences are
// six-frame translated and compared protein-wise — the most expensive
// BLAST mode (36 frame pairs), which is exactly why the paper's
// bank-vs-bank restructuring applies to it unchanged.
func CompareGenomes(genome0, genome1 []byte, opt Options) (*GenomePairResult, error) {
	s, err := SearcherFromOptions(opt)
	if err != nil {
		return nil, err
	}
	res := s.Search(context.Background(),
		NewGenomeTarget(genome0, opt.GeneticCode), NewGenomeTarget(genome1, opt.GeneticCode))
	ms, err := res.Collect()
	if err != nil {
		return nil, err
	}
	sum, err := res.Summary()
	if err != nil {
		return nil, err
	}
	out := &GenomePairResult{Result: *ResultFrom(ms, sum)}
	for i := range ms {
		m := &ms[i]
		out.Matches = append(out.Matches, GenomePairMatch{
			Alignment: m.Alignment,
			Frame0:    m.Query.Frame,
			NucStart0: m.Query.NucStart,
			NucEnd0:   m.Query.NucEnd,
			Frame1:    m.Subject.Frame,
			NucStart1: m.Subject.NucStart,
			NucEnd1:   m.Subject.NucEnd,
		})
	}
	return out, nil
}

// frameSpanToNuc maps a half-open protein span within a reading frame
// to the forward-strand nucleotide interval it covers.
func frameSpanToNuc(f translate.Frame, aaStart, aaEnd, genomeLen int) (int, int) {
	first := translate.CodonStart(f, aaStart, genomeLen)
	last := translate.CodonStart(f, aaEnd-1, genomeLen)
	if f > 0 {
		return first, last + 3
	}
	return last, first + 3
}
