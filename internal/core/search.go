package core

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"time"

	"seedblast/internal/gapped"
	"seedblast/internal/hwsim"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/pipeline"
	"seedblast/internal/prefilter"
	"seedblast/internal/seed"
	"seedblast/internal/stats"
	"seedblast/internal/translate"
	"seedblast/internal/ungapped"
)

// This file is the v2 search API: one Searcher, constructed once from
// functional options, searching any query against any Target through
// one entry point with streaming results. The four v1 entry points
// (Compare, CompareGenome, CompareDNAQueries, CompareGenomes) are thin
// adapters over it — equivalence tests pin them bit-identical,
// ordering included.

// Option configures a Searcher. Options apply in order over
// DefaultOptions, so later options win.
type Option func(*Options) error

// WithOptions replaces the whole option set — the migration bridge for
// callers that already hold a v1 Options value. SubjectIndex is
// ignored (targets own their indexes in v2).
func WithOptions(o Options) Option {
	return func(dst *Options) error { *dst = o; return nil }
}

// WithSeed selects the seed model (step 1).
func WithSeed(m seed.Model) Option {
	return func(o *Options) error {
		if m == nil {
			return fmt.Errorf("core: WithSeed(nil)")
		}
		o.Seed = m
		return nil
	}
}

// WithNeighborhood sets the neighbourhood extension N; step 2 scores
// windows of W+2N residues.
func WithNeighborhood(n int) Option {
	return func(o *Options) error {
		if n < 0 {
			return fmt.Errorf("core: negative neighbourhood %d", n)
		}
		o.N = n
		return nil
	}
}

// WithMatrix sets the scoring matrix.
func WithMatrix(m *matrix.Matrix) Option {
	return func(o *Options) error {
		if m == nil {
			return fmt.Errorf("core: WithMatrix(nil)")
		}
		o.Matrix = m
		return nil
	}
}

// WithUngappedThreshold sets the step-2 score threshold.
func WithUngappedThreshold(threshold int) Option {
	return func(o *Options) error { o.UngappedThreshold = threshold; return nil }
}

// WithEngine selects where step 2 runs (CPU, simulated RASC, or multi
// fan-out).
func WithEngine(e Engine) Option {
	return func(o *Options) error { o.Engine = e; return nil }
}

// WithRASC configures the simulated accelerator (used by EngineRASC
// and EngineMulti).
func WithRASC(r RASCOptions) Option {
	return func(o *Options) error { o.RASC = r; return nil }
}

// WithWorkers sets the host parallelism (0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(o *Options) error { o.Workers = n; return nil }
}

// WithStep2Kernel selects the CPU step-2 inner-loop implementation
// (ungapped.KernelAuto, KernelScalar, or KernelBlocked). Results are
// bit-identical across kernels; only throughput differs.
func WithStep2Kernel(k ungapped.Kernel) Option {
	return func(o *Options) error { o.Step2Kernel = k; return nil }
}

// WithPipeline tunes the streaming shard engine (shard size, shards in
// flight, per-stage concurrency).
func WithPipeline(cfg pipeline.Config) Option {
	return func(o *Options) error { o.Pipeline = cfg; return nil }
}

// WithMaxCandidates enables the two-stage prefilter: before step 2,
// each query's subject sequences are ranked by a cheap hashed-seed
// diagonal-band score and only the top k survive into ungapped and
// gapped extension. k = 0 disables the stage (the default) and the
// search is bit-identical to one without it; reported E-values are
// unchanged for any k because the statistics keep the full subject
// bank's geometry. See Options.MaxCandidates.
func WithMaxCandidates(k int) Option {
	return func(o *Options) error {
		if k < 0 {
			return fmt.Errorf("core: negative MaxCandidates %d", k)
		}
		o.MaxCandidates = k
		return nil
	}
}

// WithGapped replaces the step-3 configuration wholesale; unset fields
// with no meaningful zero are still filled from the defaults.
func WithGapped(cfg gapped.Config) Option {
	return func(o *Options) error { o.Gapped = cfg; return nil }
}

// WithMaxEValue sets the step-3 significance cutoff.
func WithMaxEValue(ev float64) Option {
	return func(o *Options) error {
		if ev <= 0 {
			return fmt.Errorf("core: MaxEValue must be positive, got %g", ev)
		}
		o.Gapped.MaxEValue = ev
		return nil
	}
}

// WithTraceback records alignment operations for reporting.
func WithTraceback(on bool) Option {
	return func(o *Options) error { o.Gapped.Traceback = on; return nil }
}

// WithSearchSpace fixes the database geometry used for E-value
// statistics — the cluster layer's volume context (see
// Options.SearchSpaceOverride).
func WithSearchSpace(sp stats.SearchSpace) Option {
	return func(o *Options) error {
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		o.SearchSpaceOverride = sp
		return nil
	}
}

// WithGeneticCode selects the translation table applied when DNA and
// genome targets built without an explicit code are translated into
// their reading frames (Options.GeneticCode; nil means the standard
// code).
func WithGeneticCode(code *translate.Code) Option {
	return func(o *Options) error {
		o.GeneticCode = code
		return nil
	}
}

// Searcher runs seed-based comparisons. It is built once — options
// resolved, step-2 backend and shard engine constructed — and reused
// across any number of Search calls; a Searcher is safe for concurrent
// use (the engine and all backends are, see pipeline.Engine).
type Searcher struct {
	opt  Options
	gcfg gapped.Config
	eng  *pipeline.Engine
}

// NewSearcher builds a Searcher from DefaultOptions with the given
// options applied in order.
func NewSearcher(opts ...Option) (*Searcher, error) {
	o := DefaultOptions()
	for _, apply := range opts {
		if err := apply(&o); err != nil {
			return nil, err
		}
	}
	return SearcherFromOptions(o)
}

// SearcherFromOptions builds a Searcher from a resolved v1 Options
// value — the adapter path the deprecated Compare* entry points and
// the comparison service use. Options.SubjectIndex is ignored; prebuilt
// indexes belong to targets (Adopt).
func SearcherFromOptions(opt Options) (*Searcher, error) {
	if opt.Seed == nil || opt.Matrix == nil {
		return nil, fmt.Errorf("core: Seed and Matrix are required (use DefaultOptions)")
	}
	if opt.N < 0 {
		return nil, fmt.Errorf("core: negative neighbourhood %d", opt.N)
	}
	opt.SubjectIndex = nil
	backend, err := backendFor(&opt)
	if err != nil {
		return nil, err
	}
	eng, err := pipeline.New(opt.Pipeline, backend)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Searcher{opt: opt, gcfg: opt.gappedConfig(), eng: eng}, nil
}

// Options returns a copy of the searcher's resolved options.
func (s *Searcher) Options() Options { return s.opt }

// Match is one reported similarity region, in both engine coordinates
// (the embedded alignment: effective-bank sequence numbers and residue
// spans) and source coordinates (the two loci: origin sequence, frame
// and nucleotide span for translated sides).
type Match struct {
	gapped.Alignment
	Query   Locus
	Subject Locus
}

// Summary is the non-match part of a search outcome: work counters,
// per-step timings, device reports and engine accounting. It is
// available from Results.Summary once the match stream has been fully
// consumed.
type Summary struct {
	Hits       int   // step-2 survivors
	Pairs      int64 // step-2 scorings performed
	Times      StepTimes
	Device     *hwsim.Step2Report // non-nil when shards ran on the accelerator
	GapDevice  *hwsim.GapOpReport // non-nil when RASC.OffloadGapped
	GappedWork gapped.Stats
	Stats0     index.Stats
	Stats1     index.Stats
	// Pipeline reports the streaming engine's per-stage accounting,
	// including MaxBufferedMatches — the peak resident match buffer,
	// which streaming consumption keeps far below the full result size.
	Pipeline pipeline.Metrics
}

// Search runs the three-step pipeline on a query side against a
// target. Both sides are Targets, which covers the whole BLAST family:
//
//	blastp   Search(ctx, NewProteinTarget(q), NewProteinTarget(s))
//	tblastn  Search(ctx, NewProteinTarget(q), NewGenomeTarget(g, code))
//	blastx   Search(ctx, NewDNATarget(qs, code), NewProteinTarget(s))
//	tblastx  Search(ctx, NewGenomeTarget(g0, code), NewGenomeTarget(g1, code))
//
// The target's step-1 index for the searcher's (seed, N) is built on
// first use and reused by every later search against it. Search itself
// does no work: the returned Results drives the engine when its match
// stream is consumed.
func (s *Searcher) Search(ctx context.Context, query, target Target) *Results {
	return &Results{s: s, ctx: ctx, query: query, target: target}
}

// Results is a streaming search outcome. The match stream (Matches or
// Collect) is single-use and drives the shard engine as it is
// consumed: matches are yielded shard by shard as final ranking
// completes, in exactly the order the materialized v1 slice had —
// bank-0 order, then E-value, then bank-1 order. Summary data becomes
// available once the stream has been fully drained.
type Results struct {
	s             *Searcher
	ctx           context.Context
	query, target Target

	mu      sync.Mutex
	started bool
	sum     *Summary
	err     error
}

func (r *Results) begin() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("core: Results is a single-use stream (already consumed)")
	}
	r.started = true
	return nil
}

func (r *Results) finish(sum *Summary, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = err
	}
	if err == nil {
		r.sum = sum
	}
}

// Matches returns the match stream. Iteration runs the engine; an
// early break cancels the run promptly and leaks nothing. A failure is
// yielded as the final element's non-nil error. The sequence can be
// ranged over once; a second call yields an error.
func (r *Results) Matches() iter.Seq2[Match, error] {
	return func(yield func(Match, error) bool) {
		if err := r.begin(); err != nil {
			yield(Match{}, err)
			return
		}
		if r.query == nil || r.target == nil {
			err := fmt.Errorf("core: Search needs both a query and a target")
			r.finish(nil, err)
			yield(Match{}, err)
			return
		}
		// Resolve the target's index, timing the resolution: a cold
		// target pays the build here (it used to be timed inside the
		// engine), a warm one costs ~nothing — so step-1 accounting
		// keeps the v1 semantics where index time only grows when an
		// index is actually built.
		t0 := time.Now()
		ix1, err := r.target.index(r.s.opt.Seed, r.s.opt.N, r.s.opt.Workers)
		ixDur := time.Since(t0)
		if err != nil {
			err = fmt.Errorf("core: indexing %s target: %w", r.target.Kind(), err)
			r.finish(nil, err)
			yield(Match{}, err)
			return
		}
		req := &pipeline.Request{
			Bank0:     r.query.Bank(),
			Bank1:     r.target.Bank(),
			Seed:      r.s.opt.Seed,
			N:         r.s.opt.N,
			Workers:   r.s.opt.Workers,
			Gapped:    r.s.gcfg,
			Index1:    ix1,
			Prefilter: prefilter.Config{MaxCandidates: r.s.opt.MaxCandidates},
		}
		// A query-side index is only usable when the engine will not cut
		// bank 0; reuse one the query target happens to have built.
		if size := r.s.opt.Pipeline.ShardSize; size <= 0 || size >= req.Bank0.Len() {
			req.Index0 = r.query.cached(r.s.opt.Seed, r.s.opt.N)
		}

		ctx, cancel := context.WithCancel(r.ctx)
		defer cancel()
		ch := make(chan []gapped.Alignment)
		var out *pipeline.Output
		var runErr error
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer close(ch)
			out, runErr = r.s.eng.RunStream(ctx, req, func(as []gapped.Alignment) error {
				select {
				case ch <- as:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			})
		}()

		stopped := false
	stream:
		for as := range ch {
			for i := range as {
				m := Match{
					Alignment: as[i],
					Query:     r.query.locus(as[i].Seq0, as[i].Q),
					Subject:   r.target.locus(as[i].Seq1, as[i].S),
				}
				if !yield(m, nil) {
					stopped = true
					cancel()
					break stream
				}
			}
		}
		for range ch { // drain after an early break so the engine exits
		}
		<-done

		if stopped {
			r.finish(nil, fmt.Errorf("core: search abandoned before the stream was drained"))
			return
		}
		if runErr != nil {
			err := fmt.Errorf("core: %w", runErr)
			r.finish(nil, err)
			yield(Match{}, err)
			return
		}
		sum, err := summarize(out, &r.s.opt, r.s.gcfg)
		if err == nil {
			sum.Times.Index += ixDur
			sum.Pipeline.Index.Busy += ixDur
		}
		r.finish(sum, err)
		if err != nil {
			yield(Match{}, err)
		}
	}
}

// Collect drains the stream into a slice — the v1 behaviour.
func (r *Results) Collect() ([]Match, error) {
	var ms []Match
	for m, err := range r.Matches() {
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// Summary returns the search's work counters and timings. It is
// available once the match stream has been fully consumed; before
// that, or after a failed or abandoned stream, it returns an error.
func (r *Results) Summary() (*Summary, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return nil, r.err
	}
	if r.sum == nil {
		return nil, fmt.Errorf("core: Summary is available after the match stream is fully consumed")
	}
	return r.sum, nil
}

// summarize maps the engine output onto the v1 StepTimes semantics:
// the RASC engine's step-2 time is the aggregated simulated device
// seconds, and the future-work configuration times step 3 on the
// simulated gap operator.
func summarize(out *pipeline.Output, opt *Options, gcfg gapped.Config) (*Summary, error) {
	sum := &Summary{
		Hits:       out.Hits,
		Pairs:      out.Pairs,
		Device:     out.Device,
		GappedWork: out.GappedWork,
		Stats0:     out.Stats0,
		Stats1:     out.Stats1,
		Pipeline:   out.Metrics,
	}
	sum.Times.Index = out.IndexTime
	sum.Times.Ungapped = out.Step2Time
	sum.Times.Gapped = out.Step3Time
	if opt.Engine == EngineRASC && out.Device != nil {
		sum.Times.Ungapped = time.Duration(out.Device.Seconds * float64(time.Second))
	}
	if opt.Engine == EngineRASC && opt.RASC.OffloadGapped {
		gop := hwsim.DefaultGapOp(gcfg.Band)
		if opt.RASC.ClockHz != 0 {
			gop.ClockHz = opt.RASC.ClockHz
		}
		rep, err := gop.EstimateStep3(out.GappedWork)
		if err != nil {
			return nil, fmt.Errorf("core: step 3 (gap operator): %w", err)
		}
		sum.GapDevice = rep
		sum.Times.Gapped = time.Duration(rep.Seconds * float64(time.Second))
	}
	return sum, nil
}

// alignmentsOf strips v2 matches back to the engine alignments — the
// exact slice a v1 call would have returned.
func alignmentsOf(ms []Match) []gapped.Alignment {
	if len(ms) == 0 {
		return nil
	}
	out := make([]gapped.Alignment, len(ms))
	for i := range ms {
		out[i] = ms[i].Alignment
	}
	return out
}

// ResultFrom assembles a v1 Result from collected v2 matches and their
// summary.
func ResultFrom(ms []Match, sum *Summary) *Result {
	return &Result{Alignments: alignmentsOf(ms), Summary: *sum}
}

// GenomeResultFrom assembles a v1 GenomeResult (tblastn) from
// collected v2 matches against a GenomeTarget.
func GenomeResultFrom(ms []Match, sum *Summary, genomeLen int) *GenomeResult {
	out := &GenomeResult{Result: *ResultFrom(ms, sum), GenomeLen: genomeLen}
	for i := range ms {
		m := &ms[i]
		out.Matches = append(out.Matches, GenomeMatch{
			Alignment: m.Alignment,
			Protein:   m.Alignment.Seq0,
			Frame:     m.Subject.Frame,
			NucStart:  m.Subject.NucStart,
			NucEnd:    m.Subject.NucEnd,
		})
	}
	return out
}

// collectResult is the shared v1 adapter tail: drain, summarize,
// assemble.
func collectResult(res *Results) (*Result, error) {
	ms, err := res.Collect()
	if err != nil {
		return nil, err
	}
	sum, err := res.Summary()
	if err != nil {
		return nil, err
	}
	return ResultFrom(ms, sum), nil
}

// adoptSubjectIndex applies a v1 Options.SubjectIndex to a v2 target,
// preserving the v1 contract: a mismatched index is rejected loudly,
// never silently rebuilt.
func adoptSubjectIndex(opt *Options, t Target, adopt func(*index.Index)) error {
	if opt.SubjectIndex == nil {
		return nil
	}
	if err := pipeline.MatchesRequest(opt.SubjectIndex, t.Bank(), opt.Seed, opt.N); err != nil {
		return fmt.Errorf("core: provided subject index %w", err)
	}
	adopt(opt.SubjectIndex)
	return nil
}
