// Package blast is the comparison baseline: a from-scratch sequential
// implementation of the NCBI BLAST heuristic as tblastn uses it —
// query word index with neighbourhood expansion at threshold T, subject
// scanning, the two-hit diagonal heuristic, X-drop ungapped extension,
// and gapped extension with Karlin-Altschul E-values. It deliberately
// follows BLAST's scanning structure (one query against a streamed
// bank), which the paper contrasts with its bank-vs-bank pipeline: "the
// BLAST programs have been first designed for scanning purpose" and
// "the internal BLAST algorithm is fundamentally sequential".
package blast

import (
	"fmt"
	"sort"

	"seedblast/internal/align"
	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/matrix"
	"seedblast/internal/stats"
	"seedblast/internal/translate"
)

// Config holds the search parameters. Defaults mirror NCBI tblastn.
type Config struct {
	W             int // word size (protein default 3)
	T             int // neighbourhood word score threshold (default 11)
	TwoHitWindow  int // max diagonal distance between the two hits (default 40)
	XDropUngapped int // X-drop for ungapped extension (default 16)
	GapTrigger    int // raw ungapped score that triggers gapped extension (default 41)
	Band          int // gapped extension band half-width (default 24)
	Matrix        *matrix.Matrix
	Gaps          align.GapParams
	Params        stats.Params // gapped statistics for E-values
	MaxEValue     float64
}

// DefaultConfig returns tblastn-like defaults with the paper's
// E ≤ 10⁻³ cutoff.
func DefaultConfig() Config {
	return Config{
		W:             3,
		T:             11,
		TwoHitWindow:  40,
		XDropUngapped: 16,
		GapTrigger:    41,
		Band:          24,
		Matrix:        matrix.BLOSUM62,
		Gaps:          align.DefaultGaps,
		Params:        stats.GappedBLOSUM62,
		MaxEValue:     1e-3,
	}
}

func (c *Config) validate() error {
	switch {
	case c.W < 2 || c.W > 5:
		return fmt.Errorf("blast: word size %d outside [2,5]", c.W)
	case c.T <= 0:
		return fmt.Errorf("blast: threshold T must be positive")
	case c.Matrix == nil:
		return fmt.Errorf("blast: matrix is required")
	case c.MaxEValue <= 0:
		return fmt.Errorf("blast: MaxEValue must be positive")
	case c.TwoHitWindow <= c.W:
		return fmt.Errorf("blast: two-hit window %d must exceed word size", c.TwoHitWindow)
	}
	return nil
}

// Match is one reported alignment.
type Match struct {
	Query    int
	Subject  int
	Score    int
	BitScore float64
	EValue   float64
	QStart   int
	QEnd     int
	SStart   int
	SEnd     int
}

// Search runs the sequential BLAST over all queries against all
// subjects. Matches are sorted by (Query, EValue, Subject).
func Search(queries, subjects *bank.Bank, cfg Config) ([]Match, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dbLen := subjects.TotalResidues()
	al := align.NewAligner(cfg.Matrix, cfg.Gaps)
	scan := newScanner(&cfg)
	var out []Match
	for q := 0; q < queries.Len(); q++ {
		query := queries.Seq(q)
		if len(query) < cfg.W {
			continue
		}
		lut := buildLookup(query, &cfg)
		for s := 0; s < subjects.Len(); s++ {
			ms := scan.scanSubject(al, lut, query, subjects.Seq(s), &cfg, dbLen)
			for _, m := range ms {
				m.Query = q
				m.Subject = s
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Query != out[j].Query {
			return out[i].Query < out[j].Query
		}
		if out[i].EValue != out[j].EValue {
			return out[i].EValue < out[j].EValue
		}
		return out[i].Subject < out[j].Subject
	})
	return out, nil
}

// lookup maps word keys to query positions, including neighbourhood
// words scoring at least T against an indexed query word.
type lookup struct {
	w       int
	buckets map[uint32][]int32
}

func wordKey(w []byte) (uint32, bool) {
	var k uint32
	for _, c := range w {
		if !alphabet.IsStandardAA(c) {
			return 0, false
		}
		k = k*uint32(alphabet.NumStandardAA) + uint32(c)
	}
	return k, true
}

// buildLookup indexes the query's words and their T-neighbourhood: for
// every query position, every word w' with score(word, w') ≥ T is
// registered, exactly as BLAST seeds hits on similar (not only
// identical) words.
func buildLookup(query []byte, cfg *Config) *lookup {
	lut := &lookup{w: cfg.W, buckets: make(map[uint32][]int32)}
	neighbor := make([]byte, cfg.W)
	for pos := 0; pos+cfg.W <= len(query); pos++ {
		word := query[pos : pos+cfg.W]
		ok := true
		for _, c := range word {
			if !alphabet.IsStandardAA(c) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		expandNeighborhood(word, neighbor, 0, 0, int32(pos), cfg, lut)
	}
	return lut
}

// expandNeighborhood enumerates words within score ≥ T of word,
// pruning with the maximum achievable remaining score.
func expandNeighborhood(word, neighbor []byte, depth, score int, pos int32, cfg *Config, lut *lookup) {
	if depth == cfg.W {
		if score >= cfg.T {
			k, _ := wordKey(neighbor)
			lut.buckets[k] = append(lut.buckets[k], pos)
		}
		return
	}
	// Upper bound on the rest: best possible per remaining position.
	row := cfg.Matrix.Row(word[depth])
	maxRest := 0
	for d := depth + 1; d < cfg.W; d++ {
		maxRest += bestRowScore(cfg.Matrix, word[d])
	}
	for c := byte(0); c < alphabet.NumStandardAA; c++ {
		s := int(row[c])
		if score+s+maxRest < cfg.T {
			continue
		}
		neighbor[depth] = c
		expandNeighborhood(word, neighbor, depth+1, score+s, pos, cfg, lut)
	}
}

func bestRowScore(m *matrix.Matrix, a byte) int {
	best := -1 << 30
	for c := byte(0); c < alphabet.NumStandardAA; c++ {
		if s := m.Score(a, c); s > best {
			best = s
		}
	}
	return best
}

// scanner holds reusable per-subject diagonal state. Diagonals are
// indexed by sPos - qPos + len(query); epoch stamps avoid clearing the
// arrays between subjects.
type scanner struct {
	lastHit  []int32 // last single hit position on the diagonal
	extent   []int32 // subject position up to which the diagonal is covered
	epoch    []int32
	curEpoch int32
}

func newScanner(*Config) *scanner { return &scanner{} }

func (sc *scanner) reset(size int) {
	if len(sc.lastHit) < size {
		sc.lastHit = make([]int32, size)
		sc.extent = make([]int32, size)
		sc.epoch = make([]int32, size)
		sc.curEpoch = 0
	}
	sc.curEpoch++
}

// scanSubject streams one subject sequence against the query lookup.
func (sc *scanner) scanSubject(al *align.Aligner, lut *lookup, query, subject []byte,
	cfg *Config, dbLen int) []Match {
	if len(subject) < cfg.W {
		return nil
	}
	sc.reset(len(query) + len(subject) + 1)
	var out []Match
	for sPos := 0; sPos+cfg.W <= len(subject); sPos++ {
		key, ok := wordKey(subject[sPos : sPos+cfg.W])
		if !ok {
			continue
		}
		for _, qPos32 := range lut.buckets[key] {
			qPos := int(qPos32)
			diag := sPos - qPos + len(query)
			if sc.epoch[diag] != sc.curEpoch {
				sc.epoch[diag] = sc.curEpoch
				sc.lastHit[diag] = -1 << 30
				sc.extent[diag] = -1
			}
			if int32(sPos) < sc.extent[diag] {
				continue // inside an already-extended region
			}
			// Two-hit rule: a previous non-overlapping hit on the same
			// diagonal within the window arms the extension. Overlapping
			// hits keep the older anchor (as NCBI does), otherwise dense
			// hit runs would never reach the non-overlap distance.
			last := int(sc.lastHit[diag])
			diff := sPos - last
			if diff < cfg.W {
				continue
			}
			sc.lastHit[diag] = int32(sPos)
			if diff > cfg.TwoHitWindow {
				continue // too far apart: this hit becomes the new anchor
			}
			ext := align.ExtendUngapped(query, subject, qPos, sPos, cfg.W,
				cfg.XDropUngapped, cfg.Matrix)
			sc.extent[diag] = int32(ext.SEnd)
			if ext.Score < cfg.GapTrigger {
				continue
			}
			m, good := gappedExtend(al, query, subject, qPos, sPos, cfg, dbLen)
			if good {
				sc.extent[diag] = int32(m.SEnd)
				if !covered(out, m) {
					out = append(out, m)
				}
			}
		}
	}
	return out
}

// gappedExtend runs the banded gapped extension around the hit diagonal
// and applies the E-value cutoff.
func gappedExtend(al *align.Aligner, query, subject []byte, qPos, sPos int,
	cfg *Config, dbLen int) (Match, bool) {
	slack := cfg.Band + 8
	winStart := max(0, sPos-qPos-slack)
	winEnd := min(len(subject), sPos+(len(query)-qPos)+slack)
	window := subject[winStart:winEnd]
	diag := (sPos - winStart) - qPos
	loc := al.LocalBanded(query, window, diag, cfg.Band)
	if loc.Score <= 0 {
		return Match{}, false
	}
	ev := cfg.Params.EValue(loc.Score, len(query), dbLen)
	if ev > cfg.MaxEValue {
		return Match{}, false
	}
	return Match{
		Score:    loc.Score,
		BitScore: cfg.Params.BitScore(loc.Score),
		EValue:   ev,
		QStart:   loc.AStart,
		QEnd:     loc.AEnd,
		SStart:   loc.BStart + winStart,
		SEnd:     loc.BEnd + winStart,
	}, true
}

// covered reports whether an equal-or-better match already contains m.
func covered(ms []Match, m Match) bool {
	for _, o := range ms {
		if m.QStart >= o.QStart && m.QEnd <= o.QEnd &&
			m.SStart >= o.SStart && m.SEnd <= o.SEnd && o.Score >= m.Score {
			return true
		}
	}
	return false
}

// GenomeMatch is a Match mapped to genome coordinates.
type GenomeMatch struct {
	Match
	Frame    translate.Frame
	NucStart int
	NucEnd   int
}

// SearchGenome runs tblastn proper: the genome is six-frame translated
// and each frame searched as a subject, with matches mapped back to
// forward-strand nucleotide coordinates.
func SearchGenome(queries *bank.Bank, genome []byte, cfg Config) ([]GenomeMatch, error) {
	frames := translate.SixFrames(genome)
	fbank := bank.New("genome-frames")
	for _, ft := range frames {
		fbank.Add(ft.Frame.String(), ft.Protein)
	}
	ms, err := Search(queries, fbank, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]GenomeMatch, 0, len(ms))
	for _, m := range ms {
		frame := frames[m.Subject].Frame
		g := GenomeMatch{Match: m, Frame: frame}
		first := translate.CodonStart(frame, m.SStart, len(genome))
		last := translate.CodonStart(frame, m.SEnd-1, len(genome))
		if frame > 0 {
			g.NucStart, g.NucEnd = first, last+3
		} else {
			g.NucStart, g.NucEnd = last, first+3
		}
		out = append(out, g)
	}
	return out, nil
}
