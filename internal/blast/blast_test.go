package blast

import (
	"testing"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/matrix"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.W = 1 },
		func(c *Config) { c.W = 9 },
		func(c *Config) { c.T = 0 },
		func(c *Config) { c.Matrix = nil },
		func(c *Config) { c.MaxEValue = 0 },
		func(c *Config) { c.TwoHitWindow = 2 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestWordKey(t *testing.T) {
	k1, ok := wordKey(alphabet.MustEncodeProtein("ARN"))
	if !ok {
		t.Fatal("standard word rejected")
	}
	k2, _ := wordKey(alphabet.MustEncodeProtein("ARN"))
	if k1 != k2 {
		t.Error("same word different keys")
	}
	if _, ok := wordKey(alphabet.MustEncodeProtein("AXN")); ok {
		t.Error("ambiguous word accepted")
	}
}

func TestBuildLookupContainsIdentityWord(t *testing.T) {
	cfg := DefaultConfig()
	query := alphabet.MustEncodeProtein("WWWARN")
	lut := buildLookup(query, &cfg)
	// WWW scores 33 ≥ T with itself; position 0 must be indexed.
	k, _ := wordKey(alphabet.MustEncodeProtein("WWW"))
	found := false
	for _, p := range lut.buckets[k] {
		if p == 0 {
			found = true
		}
	}
	if !found {
		t.Error("identity word missing from lookup")
	}
}

func TestBuildLookupNeighborhood(t *testing.T) {
	cfg := DefaultConfig()
	query := alphabet.MustEncodeProtein("WWW")
	lut := buildLookup(query, &cfg)
	// WWY scores 11+11+2=24 ≥ 11: must be a neighbour.
	k, _ := wordKey(alphabet.MustEncodeProtein("WWY"))
	if len(lut.buckets[k]) == 0 {
		t.Error("WWY missing from WWW neighbourhood")
	}
	// AAA vs WWW scores -9: must not be present.
	k2, _ := wordKey(alphabet.MustEncodeProtein("AAA"))
	if len(lut.buckets[k2]) != 0 {
		t.Error("AAA wrongly in WWW neighbourhood")
	}
}

func TestNeighborhoodRespectsThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.T = 15
	query := alphabet.MustEncodeProtein("ARN")
	lut := buildLookup(query, &cfg)
	for key, positions := range lut.buckets {
		if len(positions) == 0 {
			continue
		}
		// Decode the key back into a word and check its score.
		word := make([]byte, 3)
		k := key
		for i := 2; i >= 0; i-- {
			word[i] = byte(k % 20)
			k /= 20
		}
		score := 0
		for i := 0; i < 3; i++ {
			score += cfg.Matrix.Score(query[i], word[i])
		}
		if score < cfg.T {
			t.Errorf("neighbour %s scores %d < T=%d",
				alphabet.DecodeProtein(word), score, cfg.T)
		}
	}
}

func homologBanks(t *testing.T) (*bank.Bank, *bank.Bank) {
	t.Helper()
	rng := bank.NewRNG(77)
	ancestor := bank.RandomProtein(rng, 200)
	queries := bank.New("q")
	queries.Add("query", ancestor)
	subjects := bank.New("s")
	subjects.Add("homolog", bank.MutateProtein(rng, ancestor, 0.25))
	subjects.Add("decoy", bank.RandomProtein(rng, 200))
	subjects.Add("decoy2", bank.RandomProtein(rng, 200))
	return queries, subjects
}

func TestSearchFindsHomolog(t *testing.T) {
	queries, subjects := homologBanks(t)
	ms, err := Search(queries, subjects, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("homolog not found")
	}
	top := ms[0]
	if top.Subject != 0 {
		t.Errorf("top match subject %d, want 0 (the homolog)", top.Subject)
	}
	if top.EValue > 1e-3 {
		t.Errorf("homolog E-value %g", top.EValue)
	}
	if top.QEnd-top.QStart < 120 {
		t.Errorf("alignment covers only %d residues", top.QEnd-top.QStart)
	}
}

func TestSearchNoFalsePositivesOnRandom(t *testing.T) {
	rng := bank.NewRNG(88)
	queries := bank.New("q")
	subjects := bank.New("s")
	for i := 0; i < 3; i++ {
		queries.Add(string(rune('a'+i)), bank.RandomProtein(rng, 150))
		subjects.Add(string(rune('A'+i)), bank.RandomProtein(rng, 150))
	}
	ms, err := Search(queries, subjects, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("%d chance matches at E ≤ 1e-3 on tiny random banks", len(ms))
	}
}

func TestSearchSkipsShortQueries(t *testing.T) {
	queries := bank.New("q")
	queries.Add("tiny", alphabet.MustEncodeProtein("AR"))
	subjects := bank.New("s")
	subjects.Add("s", bank.RandomProtein(bank.NewRNG(1), 100))
	ms, err := Search(queries, subjects, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Error("matches from a 2-residue query")
	}
}

func TestSearchGenomeFindsPlantedGene(t *testing.T) {
	proteins := bank.GenerateProteins(bank.ProteinConfig{N: 5, MeanLen: 100, Seed: 3})
	genome, genes, err := bank.GenerateGenome(bank.GenomeConfig{
		Length:     30_000,
		Source:     proteins,
		PlantCount: 3,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := SearchGenome(proteins, genome, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range genes {
		found := false
		for _, m := range ms {
			if m.Query != g.ProteinIdx {
				continue
			}
			lo := max(m.NucStart, g.Start)
			hi := min(m.NucEnd, g.Start+g.NucLen)
			if hi-lo >= g.NucLen/2 {
				found = true
				if m.Frame != g.Frame {
					t.Errorf("gene %d frame %s, want %s", gi, m.Frame, g.Frame)
				}
			}
		}
		if !found {
			t.Errorf("planted gene %d not found by baseline", gi)
		}
	}
}

func TestSearchMatchesSorted(t *testing.T) {
	queries, subjects := homologBanks(t)
	// Add a second query to exercise ordering.
	rng := bank.NewRNG(5)
	q2 := bank.MutateProtein(rng, subjects.Seq(0), 0.2)
	queries.Add("q2", q2)
	ms, err := Search(queries, subjects, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Query < ms[i-1].Query {
			t.Fatal("matches not sorted by query")
		}
		if ms[i].Query == ms[i-1].Query && ms[i].EValue < ms[i-1].EValue {
			t.Fatal("matches not sorted by E-value within query")
		}
	}
}

func TestBestRowScore(t *testing.T) {
	// The best score in W's row is the W/W diagonal, 11.
	w := alphabet.MustEncodeProtein("W")[0]
	if got := bestRowScore(matrix.BLOSUM62, w); got != 11 {
		t.Errorf("bestRowScore(W) = %d, want 11", got)
	}
}

func TestScannerStateDoesNotLeakAcrossSubjects(t *testing.T) {
	// Two identical subjects must yield identical matches: diagonal
	// state (epoch-tagged arrays) must reset between subjects.
	rng := bank.NewRNG(321)
	ancestor := bank.RandomProtein(rng, 150)
	queries := bank.New("q")
	queries.Add("q0", ancestor)
	subjects := bank.New("s")
	homolog := bank.MutateProtein(rng, ancestor, 0.2)
	subjects.Add("s0", homolog)
	subjects.Add("s1", homolog) // identical copy
	ms, err := Search(queries, subjects, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var first, second []Match
	for _, m := range ms {
		if m.Subject == 0 {
			first = append(first, m)
		} else {
			second = append(second, m)
		}
	}
	if len(first) != len(second) {
		t.Fatalf("identical subjects matched differently: %d vs %d", len(first), len(second))
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.Score != b.Score || a.QStart != b.QStart || a.SStart != b.SStart {
			t.Errorf("match %d differs between identical subjects", i)
		}
	}
}
