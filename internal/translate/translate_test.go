package translate

import (
	"testing"
	"testing/quick"

	"seedblast/internal/alphabet"
)

func tr(t *testing.T, dna string) string {
	t.Helper()
	return alphabet.DecodeProtein(Translate(alphabet.MustEncodeDNA(dna)))
}

func TestStandardCodeKnownCodons(t *testing.T) {
	cases := map[string]string{
		"ATG": "M",
		"TGG": "W",
		"TAA": "*",
		"TAG": "*",
		"TGA": "*",
		"TTT": "F",
		"AAA": "K",
		"GGG": "G",
		"GCT": "A",
		"CGA": "R",
		"AGC": "S",
		"ATA": "I",
		"CAT": "H",
		"GAT": "D",
		"GAA": "E",
		"CAA": "Q",
		"TGT": "C",
		"TAT": "Y",
		"CCC": "P",
		"ACG": "T",
		"AAT": "N",
		"GTT": "V",
		"CTG": "L",
	}
	for dna, want := range cases {
		if got := tr(t, dna); got != want {
			t.Errorf("Translate(%s) = %s, want %s", dna, got, want)
		}
	}
}

func TestCodeCoversAll64Codons(t *testing.T) {
	// Count each amino acid's codons and check the well-known degeneracy.
	counts := make(map[byte]int)
	for a := byte(0); a < 4; a++ {
		for b := byte(0); b < 4; b++ {
			for c := byte(0); c < 4; c++ {
				counts[Codon(a, b, c)]++
			}
		}
	}
	var total int
	for _, n := range counts {
		total += n
	}
	if total != 64 {
		t.Fatalf("codon count = %d", total)
	}
	wants := map[string]int{
		"M": 1, "W": 1, "*": 3, "L": 6, "R": 6, "S": 6,
		"A": 4, "G": 4, "P": 4, "T": 4, "V": 4, "I": 3,
		"F": 2, "K": 2, "N": 2, "D": 2, "E": 2, "H": 2,
		"Q": 2, "Y": 2, "C": 2,
	}
	for letter, want := range wants {
		code := alphabet.MustEncodeProtein(letter)[0]
		if counts[code] != want {
			t.Errorf("%s has %d codons, want %d", letter, counts[code], want)
		}
	}
}

func TestCodonWithN(t *testing.T) {
	if got := Codon(alphabet.NucN, alphabet.NucA, alphabet.NucA); got != alphabet.Xaa {
		t.Errorf("N-containing codon = %d, want Xaa", got)
	}
}

func TestTranslateDropsPartialCodon(t *testing.T) {
	if got := tr(t, "ATGAA"); got != "M" {
		t.Errorf("Translate(ATGAA) = %q, want M", got)
	}
	if got := tr(t, "AT"); got != "" {
		t.Errorf("Translate(AT) = %q, want empty", got)
	}
}

func TestSixFramesKnownSequence(t *testing.T) {
	// ATGGCC: +1 = MA; reverse complement is GGCCAT: -1 = GH.
	dna := alphabet.MustEncodeDNA("ATGGCC")
	frames := SixFrames(dna)
	got := map[Frame]string{}
	for _, ft := range frames {
		got[ft.Frame] = alphabet.DecodeProtein(ft.Protein)
	}
	if got[1] != "MA" {
		t.Errorf("frame +1 = %q, want MA", got[1])
	}
	if got[2] != "W" { // TGGCC -> TGG = W
		t.Errorf("frame +2 = %q, want W", got[2])
	}
	if got[3] != "G" { // GGCC -> GGC = G
		t.Errorf("frame +3 = %q, want G", got[3])
	}
	if got[-1] != "GH" { // GGCCAT -> GGC CAT
		t.Errorf("frame -1 = %q, want GH", got[-1])
	}
}

func TestSixFramesShortSequence(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4} {
		dna := make([]byte, n)
		frames := SixFrames(dna)
		for _, ft := range frames {
			want := 0
			avail := n - (int(abs8(ft.Frame)) - 1)
			if avail >= 3 {
				want = avail / 3
			}
			if len(ft.Protein) != want {
				t.Errorf("len=%d frame %s: %d aa, want %d", n, ft.Frame, len(ft.Protein), want)
			}
		}
	}
}

func TestFrameString(t *testing.T) {
	if Frame(1).String() != "+1" || Frame(-3).String() != "-3" {
		t.Errorf("frame formatting: %s %s", Frame(1), Frame(-3))
	}
	if Frame(0).Valid() || Frame(4).Valid() || !Frame(-2).Valid() {
		t.Error("Frame.Valid boundary wrong")
	}
}

func TestCodonStartForward(t *testing.T) {
	// Frame +2 on a 12-base genome: aa 0 covers bases 1..3.
	if got := CodonStart(2, 0, 12); got != 1 {
		t.Errorf("CodonStart(+2, 0) = %d, want 1", got)
	}
	if got := CodonStart(1, 3, 12); got != 9 {
		t.Errorf("CodonStart(+1, 3) = %d, want 9", got)
	}
}

func TestCodonStartReverse(t *testing.T) {
	// Frame -1 on a 6-base genome: aa 0 is the last codon on the forward
	// strand, bases 3..5.
	if got := CodonStart(-1, 0, 6); got != 3 {
		t.Errorf("CodonStart(-1, 0) = %d, want 3", got)
	}
	if got := CodonStart(-1, 1, 6); got != 0 {
		t.Errorf("CodonStart(-1, 1) = %d, want 0", got)
	}
	if got := CodonStart(-2, 0, 7); got != 3 {
		t.Errorf("CodonStart(-2, 0) = %d, want 3", got)
	}
}

func TestCodonStartProteinPosInverse(t *testing.T) {
	f := func(frameIdx uint8, aaPos uint16, extra uint8) bool {
		frame := Frames[int(frameIdx)%6]
		pos := int(aaPos % 500)
		genomeLen := 3*(pos+1) + int(abs8(frame)) - 1 + int(extra%3) + 1600
		nuc := CodonStart(frame, pos, genomeLen)
		return ProteinPos(frame, nuc, genomeLen) == pos
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProteinPosRejectsNonCodonStart(t *testing.T) {
	if ProteinPos(1, 1, 30) != -1 {
		t.Error("nucPos 1 is not a codon start in frame +1")
	}
	if ProteinPos(1, -3, 30) != -1 {
		t.Error("negative position accepted")
	}
}

func TestSixFramesAgainstDirectTranslation(t *testing.T) {
	f := func(raw []byte) bool {
		dna := make([]byte, len(raw))
		for i, b := range raw {
			dna[i] = b % 4
		}
		frames := SixFrames(dna)
		rc := alphabet.ReverseComplement(dna)
		for _, ft := range frames {
			var want []byte
			off := int(abs8(ft.Frame)) - 1
			if ft.Frame > 0 {
				if off <= len(dna) {
					want = Translate(dna[off:])
				}
			} else {
				if off <= len(rc) {
					want = Translate(rc[off:])
				}
			}
			if string(want) != string(ft.Protein) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodonStartConsistentWithTranslation(t *testing.T) {
	// For every frame and every aa, translating the codon at CodonStart
	// (on the right strand) must reproduce the frame translation.
	dna := alphabet.MustEncodeDNA("ACGTTGCAAGGTACCGATTACAGCT")
	rc := alphabet.ReverseComplement(dna)
	frames := SixFrames(dna)
	for _, ft := range frames {
		for pos, aa := range ft.Protein {
			start := CodonStart(ft.Frame, pos, len(dna))
			var c0, c1, c2 byte
			if ft.Frame > 0 {
				c0, c1, c2 = dna[start], dna[start+1], dna[start+2]
			} else {
				// Reverse strand: the codon reads right-to-left complemented.
				j := len(dna) - start - 3
				c0, c1, c2 = rc[j], rc[j+1], rc[j+2]
			}
			if got := Codon(c0, c1, c2); got != aa {
				t.Fatalf("frame %s aa %d: codon at %d translates to %c, want %c",
					ft.Frame, pos, start,
					alphabet.ProteinLetter(got), alphabet.ProteinLetter(aa))
			}
		}
	}
}
