package translate

import (
	"fmt"

	"seedblast/internal/alphabet"
)

// Code is a genetic code: a mapping from codons to protein codes.
// The zero value is invalid; use StandardCode, BacterialCode,
// VertebrateMitoCode or NewCode.
type Code struct {
	name  string
	table [64]byte
}

// NewCode builds a genetic code from a 64-letter amino-acid string in
// codon index order n0·16 + n1·4 + n2 over nucleotide codes
// A=0 C=1 G=2 T=3, with '*' for stops (the NCBI transl_table layout
// re-ordered to this package's base order).
func NewCode(name, letters string) (*Code, error) {
	if len(letters) != 64 {
		return nil, fmt.Errorf("translate: code %q has %d letters, want 64", name, len(letters))
	}
	c := &Code{name: name}
	for i := 0; i < 64; i++ {
		aa, err := alphabet.EncodeProtein(letters[i : i+1])
		if err != nil {
			return nil, fmt.Errorf("translate: code %q: %v", name, err)
		}
		c.table[i] = aa[0]
	}
	return c, nil
}

func mustCode(name, letters string) *Code {
	c, err := NewCode(name, letters)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the code's name.
func (c *Code) Name() string { return c.name }

// Codon translates one codon under this code; codons containing N
// translate to X.
func (c *Code) Codon(n0, n1, n2 byte) byte {
	if n0 >= alphabet.NucN || n1 >= alphabet.NucN || n2 >= alphabet.NucN {
		return alphabet.Xaa
	}
	return c.table[int(n0)<<4|int(n1)<<2|int(n2)]
}

// Translate translates an encoded DNA sequence in frame 0 under this
// code.
func (c *Code) Translate(dna []byte) []byte {
	out := make([]byte, 0, len(dna)/3)
	for i := 0; i+2 < len(dna); i += 3 {
		out = append(out, c.Codon(dna[i], dna[i+1], dna[i+2]))
	}
	return out
}

// SixFrames translates all six reading frames under this code.
func (c *Code) SixFrames(dna []byte) [6]FrameTranslation {
	var out [6]FrameTranslation
	rc := alphabet.ReverseComplement(dna)
	for i, f := range Frames {
		strand := dna
		if f < 0 {
			strand = rc
		}
		off := int(abs8(f)) - 1
		if off > len(strand) {
			off = len(strand)
		}
		out[i] = FrameTranslation{Frame: f, Protein: c.Translate(strand[off:])}
	}
	return out
}

// StandardCode is NCBI transl_table=1, the code the package-level
// functions use.
var StandardCode = mustCode("standard", codonTable)

// BacterialCode is NCBI transl_table=11. Its codon→amino-acid mapping
// is identical to the standard code (the tables differ only in which
// codons may initiate translation, which does not affect similarity
// search); it exists so annotation pipelines can name the code they
// mean.
var BacterialCode = mustCode("bacterial", codonTable)

// VertebrateMitoCode is NCBI transl_table=2: AGA and AGG become stops,
// ATA codes methionine and TGA codes tryptophan.
var VertebrateMitoCode = mustCode("vertebrate-mitochondrial",
	"KNKNTTTT*S*SMIMI"+ // A..: AGA/AGG→*, ATA→M
		"QHQHPPPPRRRRLLLL"+ // C..
		"EDEDAAAAGGGGVVVV"+ // G..
		"*Y*YSSSSWCWCLFLF") // T..: TGA→W

// CodeByName resolves a genetic code by the names used in CLI flags.
func CodeByName(name string) (*Code, error) {
	switch name {
	case "", "standard", "1":
		return StandardCode, nil
	case "bacterial", "11":
		return BacterialCode, nil
	case "vertebrate-mitochondrial", "mito", "2":
		return VertebrateMitoCode, nil
	default:
		return nil, fmt.Errorf("translate: unknown genetic code %q (standard, bacterial, vertebrate-mitochondrial)", name)
	}
}
