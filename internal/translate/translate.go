// Package translate implements the standard genetic code and the
// six-frame translation a tblastn-style search needs: the genome is
// translated into its 6 possible protein frames and the resulting
// proteins are compared against the query bank, with coordinates mapped
// back to the nucleotide sequence for reporting.
package translate

import (
	"fmt"

	"seedblast/internal/alphabet"
)

// codonTable lists the standard genetic code (NCBI transl_table=1) with
// codon index n0*16 + n1*4 + n2 over nucleotide codes A=0 C=1 G=2 T=3.
const codonTable = "KNKNTTTTRSRSIIMI" + // A..
	"QHQHPPPPRRRRLLLL" + // C..
	"EDEDAAAAGGGGVVVV" + // G..
	"*Y*YSSSS*CWCLFLF" //   T..

// codonCode holds the protein code for each codon index.
var codonCode [64]byte

func init() {
	for i := 0; i < 64; i++ {
		codonCode[i] = alphabet.MustEncodeProtein(codonTable[i : i+1])[0]
	}
}

// Codon translates one codon of nucleotide codes into a protein code.
// Any codon containing N translates to X.
func Codon(n0, n1, n2 byte) byte {
	if n0 >= alphabet.NucN || n1 >= alphabet.NucN || n2 >= alphabet.NucN {
		return alphabet.Xaa
	}
	return codonCode[int(n0)<<4|int(n1)<<2|int(n2)]
}

// Translate translates an encoded DNA sequence in reading frame 0
// (starting at the first base). Trailing bases that do not fill a codon
// are ignored. Stops translate to the '*' code, as tblastn requires.
func Translate(dna []byte) []byte {
	out := make([]byte, 0, len(dna)/3)
	for i := 0; i+2 < len(dna); i += 3 {
		out = append(out, Codon(dna[i], dna[i+1], dna[i+2]))
	}
	return out
}

// Frame identifies one of the six reading frames: +1, +2, +3 on the
// forward strand and -1, -2, -3 on the reverse complement, matching
// BLAST's frame numbering.
type Frame int8

// Frames lists all six frames in canonical order.
var Frames = [6]Frame{1, 2, 3, -1, -2, -3}

// String formats the frame as BLAST does (e.g. "+2", "-1").
func (f Frame) String() string {
	if f > 0 {
		return fmt.Sprintf("+%d", int8(f))
	}
	return fmt.Sprintf("%d", int8(f))
}

// Valid reports whether f is one of the six reading frames.
func (f Frame) Valid() bool {
	return f >= -3 && f <= 3 && f != 0
}

// FrameTranslation is the protein translation of one reading frame.
type FrameTranslation struct {
	Frame   Frame
	Protein []byte // encoded protein codes, stops included as '*'
}

// SixFrames translates an encoded DNA sequence into its six reading
// frames. This is the genome-side preprocessing of the paper's workflow.
func SixFrames(dna []byte) [6]FrameTranslation {
	var out [6]FrameTranslation
	rc := alphabet.ReverseComplement(dna)
	for i, f := range Frames {
		strand := dna
		if f < 0 {
			strand = rc
		}
		off := int(abs8(f)) - 1
		if off > len(strand) {
			off = len(strand)
		}
		out[i] = FrameTranslation{Frame: f, Protein: Translate(strand[off:])}
	}
	return out
}

func abs8(f Frame) int8 {
	if f < 0 {
		return -int8(f)
	}
	return int8(f)
}

// CodonStart maps a protein position within a reading frame back to the
// forward-strand coordinate (0-based) of the first base of its codon.
// genomeLen is the full nucleotide length of the sequence the frame was
// translated from.
func CodonStart(f Frame, aaPos, genomeLen int) int {
	off := int(abs8(f)) - 1
	if f > 0 {
		return off + 3*aaPos
	}
	// Position on the reverse-complement strand, then flipped: the codon
	// occupies forward coordinates [L - rcStart - 3, L - rcStart).
	rcStart := off + 3*aaPos
	return genomeLen - rcStart - 3
}

// ProteinPos is the inverse of CodonStart for the forward strand base
// nucPos known to be the first base of a codon in frame f. It returns
// the protein position, or -1 if nucPos is not a codon start in f.
func ProteinPos(f Frame, nucPos, genomeLen int) int {
	off := int(abs8(f)) - 1
	var rel int
	if f > 0 {
		rel = nucPos - off
	} else {
		rel = genomeLen - nucPos - 3 - off
	}
	if rel < 0 || rel%3 != 0 {
		return -1
	}
	return rel / 3
}
