package translate

import (
	"testing"

	"seedblast/internal/alphabet"
)

func codonOf(t *testing.T, c *Code, dna string) string {
	t.Helper()
	codes := alphabet.MustEncodeDNA(dna)
	return alphabet.DecodeProtein([]byte{c.Codon(codes[0], codes[1], codes[2])})
}

func TestStandardCodeMatchesPackageFunctions(t *testing.T) {
	for n0 := byte(0); n0 < 4; n0++ {
		for n1 := byte(0); n1 < 4; n1++ {
			for n2 := byte(0); n2 < 4; n2++ {
				if StandardCode.Codon(n0, n1, n2) != Codon(n0, n1, n2) {
					t.Fatalf("StandardCode disagrees with Codon at %d%d%d", n0, n1, n2)
				}
			}
		}
	}
}

func TestBacterialCodeSameMapping(t *testing.T) {
	for i := 0; i < 64; i++ {
		if BacterialCode.table[i] != StandardCode.table[i] {
			t.Fatal("bacterial mapping must equal standard (start codons only differ)")
		}
	}
	if BacterialCode.Name() == StandardCode.Name() {
		t.Error("codes should be distinguishable by name")
	}
}

func TestVertebrateMitoDifferences(t *testing.T) {
	// The four documented differences of transl_table=2.
	diffs := []struct{ codon, std, mito string }{
		{"AGA", "R", "*"},
		{"AGG", "R", "*"},
		{"ATA", "I", "M"},
		{"TGA", "*", "W"},
	}
	for _, d := range diffs {
		if got := codonOf(t, StandardCode, d.codon); got != d.std {
			t.Errorf("standard %s = %s, want %s", d.codon, got, d.std)
		}
		if got := codonOf(t, VertebrateMitoCode, d.codon); got != d.mito {
			t.Errorf("mito %s = %s, want %s", d.codon, got, d.mito)
		}
	}
	// Every other codon agrees with the standard code.
	changed := 0
	for i := 0; i < 64; i++ {
		if VertebrateMitoCode.table[i] != StandardCode.table[i] {
			changed++
		}
	}
	if changed != 4 {
		t.Errorf("%d codons differ from standard, want exactly 4", changed)
	}
}

func TestCodeSixFramesAgainstPackage(t *testing.T) {
	dna := alphabet.MustEncodeDNA("ACGTTGCAAGGTACCGATTACAGCTAGGA")
	std := SixFrames(dna)
	viaCode := StandardCode.SixFrames(dna)
	for i := range std {
		if string(std[i].Protein) != string(viaCode[i].Protein) {
			t.Fatalf("frame %s differs between package and StandardCode", std[i].Frame)
		}
	}
}

func TestCodeWithN(t *testing.T) {
	if VertebrateMitoCode.Codon(alphabet.NucN, 0, 0) != alphabet.Xaa {
		t.Error("N-containing codon should be X")
	}
}

func TestNewCodeValidation(t *testing.T) {
	if _, err := NewCode("short", "KNKN"); err == nil {
		t.Error("short table accepted")
	}
	bad := make([]byte, 64)
	for i := range bad {
		bad[i] = '!'
	}
	if _, err := NewCode("bad", string(bad)); err == nil {
		t.Error("invalid letters accepted")
	}
}

func TestCodeByName(t *testing.T) {
	cases := map[string]*Code{
		"":                         StandardCode,
		"standard":                 StandardCode,
		"1":                        StandardCode,
		"bacterial":                BacterialCode,
		"11":                       BacterialCode,
		"mito":                     VertebrateMitoCode,
		"2":                        VertebrateMitoCode,
		"vertebrate-mitochondrial": VertebrateMitoCode,
	}
	for name, want := range cases {
		got, err := CodeByName(name)
		if err != nil || got != want {
			t.Errorf("CodeByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := CodeByName("klingon"); err == nil {
		t.Error("unknown code accepted")
	}
}

func TestMitoTranslation(t *testing.T) {
	// ATA AGA TGA under mito: M * W; under standard: I R *.
	dna := alphabet.MustEncodeDNA("ATAAGATGA")
	if got := alphabet.DecodeProtein(VertebrateMitoCode.Translate(dna)); got != "M*W" {
		t.Errorf("mito translation = %s, want M*W", got)
	}
	if got := alphabet.DecodeProtein(StandardCode.Translate(dna)); got != "IR*" {
		t.Errorf("standard translation = %s, want IR*", got)
	}
}
