package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series: a metric name, its sorted label set and
// the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s *Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    MetricType // "untyped" when no TYPE line preceded the samples
	Samples []Sample
}

// Families is a parsed exposition, keyed by family name.
type Families map[string]*Family

// Value returns the first sample named name matching every given
// label (extra labels on the sample are allowed, so histogram _bucket
// series can be selected by le). Histogram _bucket/_sum/_count sample
// names resolve into their base family. ok is false when no sample
// matches.
func (fs Families) Value(name string, labels ...Label) (v float64, ok bool) {
	f := fs[name]
	if f == nil {
		// _bucket/_sum/_count live under the histogram's base family.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && fs[base] != nil {
				f = fs[base]
				break
			}
		}
	}
	if f == nil {
		return 0, false
	}
outer:
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name {
			continue
		}
		for _, want := range labels {
			if s.Label(want.Name) != want.Value {
				continue outer
			}
		}
		return s.Value, true
	}
	return 0, false
}

// Quantile derives the q-quantile (0 < q < 1) of the named histogram
// from its cumulative buckets by linear interpolation inside the
// bucket that crosses the target rank — the same estimate
// Prometheus's histogram_quantile computes. Extra labels select one
// labeled histogram. ok is false when the histogram is missing, empty
// or the target lands in the +Inf bucket (where no upper bound exists;
// the highest finite bound is returned with ok true as Prometheus
// does, unless there are no finite buckets at all).
func (fs Families) Quantile(name string, q float64, labels ...Label) (float64, bool) {
	f := fs[name+"_bucket"]
	if f == nil {
		// Buckets parse into the base family when a TYPE histogram line
		// declared it.
		f = fs[name]
	}
	if f == nil {
		return 0, false
	}
	type bucket struct {
		le  float64
		cum float64
	}
	var bs []bucket
outer:
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name+"_bucket" {
			continue
		}
		for _, want := range labels {
			if s.Label(want.Name) != want.Value {
				continue outer
			}
		}
		le, err := parseFloat(s.Label("le"))
		if err != nil {
			return 0, false
		}
		bs = append(bs, bucket{le: le, cum: s.Value})
	}
	if len(bs) == 0 {
		return 0, false
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	total := bs[len(bs)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	prevLe, prevCum := 0.0, 0.0
	for _, b := range bs {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) {
				// Target beyond the last finite bound: report that bound.
				if prevLe == 0 && prevCum == 0 {
					return 0, false
				}
				return prevLe, true
			}
			span := b.cum - prevCum
			if span == 0 {
				return b.le, true
			}
			return prevLe + (b.le-prevLe)*(rank-prevCum)/span, true
		}
		prevLe, prevCum = b.le, b.cum
	}
	return prevLe, true
}

// ParseText parses (and validates) the Prometheus text exposition
// format, version 0.0.4. It is deliberately strict — it exists so
// tests can assert both daemons' /metrics stay machine-consumable:
//
//   - metric and label names must match the grammar;
//   - HELP/TYPE lines must precede their family's samples and appear
//     at most once per family;
//   - sample values must parse as Go floats (+Inf, -Inf, NaN allowed);
//   - histogram families must carry _bucket series with le labels,
//     cumulative bucket counts must be monotonically non-decreasing in
//     le order, must end at le="+Inf", and the +Inf count must equal
//     the family's _count sample;
//   - duplicate series (same name and label set) are rejected.
func ParseText(r io.Reader) (Families, error) {
	fams := make(Families)
	var order []string
	seen := make(map[string]bool) // name+labels duplicate detection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	get := func(name string) *Family {
		f := fams[name]
		if f == nil {
			f = &Family{Name: name, Type: "untyped"}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	typed := make(map[string]bool)
	helped := make(map[string]bool)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "" {
				continue // plain comment
			}
			f := get(name)
			switch kind {
			case "HELP":
				if helped[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: HELP for %s after its samples", lineNo, name)
				}
				helped[name] = true
				f.Help = rest
			case "TYPE":
				if typed[name] {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				switch MetricType(rest) {
				case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				typed[name] = true
				f.Type = MetricType(rest)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		sig := s.Name + labelString(s.Labels)
		if seen[sig] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, sig)
		}
		seen[sig] = true
		// A histogram's _bucket/_sum/_count samples belong to the base
		// family its TYPE line declared.
		fam := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suffix)
			if base != s.Name && typed[base] && fams[base].Type == TypeHistogram {
				fam = base
				break
			}
		}
		f := get(fam)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range order {
		f := fams[name]
		if f.Type == TypeHistogram {
			if err := validateHistogram(f); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", name, err)
			}
		}
	}
	return fams, nil
}

// validateHistogram checks one histogram family's structural
// invariants per labeled sub-series.
func validateHistogram(f *Family) error {
	type series struct {
		buckets []Sample
		sum     bool
		count   float64
		hasCnt  bool
	}
	// Group by the label signature minus le.
	bySig := map[string]*series{}
	sigOf := func(s *Sample) string {
		var ls []Label
		for _, l := range s.Labels {
			if l.Name != "le" {
				ls = append(ls, l)
			}
		}
		return labelString(ls)
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		sig := sigOf(s)
		sr := bySig[sig]
		if sr == nil {
			sr = &series{}
			bySig[sig] = sr
		}
		switch {
		case s.Name == f.Name+"_bucket":
			sr.buckets = append(sr.buckets, *s)
		case s.Name == f.Name+"_sum":
			sr.sum = true
		case s.Name == f.Name+"_count":
			sr.hasCnt = true
			sr.count = s.Value
		default:
			return fmt.Errorf("unexpected sample %s in histogram family", s.Name)
		}
	}
	for sig, sr := range bySig {
		if len(sr.buckets) == 0 {
			return fmt.Errorf("series %q has no _bucket samples", sig)
		}
		if !sr.sum || !sr.hasCnt {
			return fmt.Errorf("series %q missing _sum or _count", sig)
		}
		type bb struct {
			le  float64
			cum float64
		}
		bs := make([]bb, 0, len(sr.buckets))
		for i := range sr.buckets {
			leStr := sr.buckets[i].Label("le")
			if leStr == "" {
				return fmt.Errorf("series %q: _bucket without le label", sig)
			}
			le, err := parseFloat(leStr)
			if err != nil {
				return fmt.Errorf("series %q: bad le %q", sig, leStr)
			}
			bs = append(bs, bb{le: le, cum: sr.buckets[i].Value})
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("series %q: buckets do not end at le=\"+Inf\"", sig)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].cum < bs[i-1].cum {
				return fmt.Errorf("series %q: bucket counts not monotonic at le=%g (%g < %g)",
					sig, bs[i].le, bs[i].cum, bs[i-1].cum)
			}
		}
		if last.cum != sr.count {
			return fmt.Errorf("series %q: +Inf bucket %g != _count %g", sig, last.cum, sr.count)
		}
	}
	return nil
}

// parseComment splits a # line: returns kind "HELP"/"TYPE" with the
// metric name and remainder, or kind "" for plain comments.
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	var k string
	switch {
	case strings.HasPrefix(body, "HELP "):
		k = "HELP"
	case strings.HasPrefix(body, "TYPE "):
		k = "TYPE"
	default:
		return "", "", "", nil
	}
	body = strings.TrimPrefix(body, k+" ")
	i := strings.IndexByte(body, ' ')
	if i < 0 {
		if k == "HELP" {
			// HELP with empty docstring is legal.
			if !validName(body) {
				return "", "", "", fmt.Errorf("invalid metric name %q in %s line", body, k)
			}
			return k, body, "", nil
		}
		return "", "", "", fmt.Errorf("malformed %s line", k)
	}
	name = body[:i]
	if !validName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q in %s line", name, k)
	}
	return k, name, body[i+1:], nil
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	// Name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		endBlock := strings.LastIndexByte(rest, '}')
		if endBlock < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		var err error
		s.Labels, err = parseLabels(rest[1:endBlock])
		if err != nil {
			return s, err
		}
		rest = rest[endBlock+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp: %v", line, err)
		}
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a {…} block.
func parseLabels(body string) ([]Label, error) {
	var out []Label
	i := 0
	for i < len(body) {
		// name
		j := strings.IndexByte(body[i:], '=')
		if j < 0 {
			return nil, fmt.Errorf("label block %q: missing '='", body)
		}
		name := strings.TrimSpace(body[i : i+j])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		i += j + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(body) {
				return nil, fmt.Errorf("label %s: unterminated value", name)
			}
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch body[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		out = append(out, Label{Name: name, Value: b.String()})
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("label block %q: want ',' after value", body)
			}
			i++
			for i < len(body) && (body[i] == ' ' || body[i] == '\t') {
				i++
			}
		}
	}
	return out, nil
}

// parseFloat parses a sample value, accepting the exposition spellings
// of the special values.
func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
