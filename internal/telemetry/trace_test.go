package telemetry

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceRecordAndSpans(t *testing.T) {
	tr := NewTrace("abc123")
	if tr.ID() != "abc123" {
		t.Fatalf("ID = %q", tr.ID())
	}
	base := time.Now()
	tr.Record("step2", base.Add(time.Millisecond), 2*time.Millisecond, Int("shard", 1))
	tr.Record("step1", base, time.Millisecond, String("part", "subject"))
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Sorted by start time.
	if spans[0].Name != "step1" || spans[1].Name != "step2" {
		t.Errorf("span order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[1].Attr("shard") != "1" {
		t.Errorf("shard attr = %q", spans[1].Attr("shard"))
	}
	if spans[0].Attr("missing") != "" {
		t.Error("absent attr should be empty")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if TraceFromContext(ctx) != nil {
		t.Fatal("empty context carries a trace")
	}
	// Inert span on a trace-free context.
	StartSpan(ctx, "noop").End()

	tr := NewTrace(NewTraceID())
	ctx = ContextWithTrace(ctx, tr)
	if TraceFromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	sp := StartSpan(ctx, "work", String("k", "v"))
	time.Sleep(time.Millisecond)
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "work" || spans[0].Duration <= 0 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || a == b {
		t.Errorf("trace ids %q, %q", a, b)
	}
}

func TestGraftAddsAttrs(t *testing.T) {
	worker := NewTrace("same-id")
	worker.Record("step2", time.Now(), time.Millisecond, Int("shard", 0))
	coord := NewTrace("same-id")
	coord.Graft(worker.Spans(), String("worker", "http://w1"), Int("volume", 2))
	spans := coord.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Attr("worker") != "http://w1" || spans[0].Attr("volume") != "2" || spans[0].Attr("shard") != "0" {
		t.Errorf("grafted span attrs = %+v", spans[0].Attrs)
	}
	// Grafting must not alias the source span's attr slice.
	if worker.Spans()[0].Attr("worker") != "" {
		t.Error("graft mutated the source span")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTrace("deadbeefdeadbeef")
	tr.Record("step3", time.Now().Truncate(time.Microsecond), 1500*time.Microsecond, Int("shard", 3))
	buf, err := json.Marshal(tr.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var tj TraceJSON
	if err := json.Unmarshal(buf, &tj); err != nil {
		t.Fatal(err)
	}
	if tj.TraceID != "deadbeefdeadbeef" || len(tj.Spans) != 1 {
		t.Fatalf("round trip = %+v", tj)
	}
	if tj.Spans[0].DurationMS != 1.5 || tj.Spans[0].Attrs["shard"] != "3" {
		t.Errorf("span = %+v", tj.Spans[0])
	}
	back := SpansFromJSON(tj.Spans)
	if len(back) != 1 || back[0].Name != "step3" || back[0].Duration != 1500*time.Microsecond {
		t.Errorf("SpansFromJSON = %+v", back)
	}
	if back[0].Attr("shard") != "3" {
		t.Errorf("attrs lost: %+v", back[0].Attrs)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.Record("x", time.Now(), time.Second)
	tr.Graft([]Span{{Name: "y"}})
	if tr.Spans() != nil {
		t.Error("nil trace returned spans")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(NewTraceID())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record("s", time.Now(), time.Microsecond)
				_ = tr.Spans()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8*500 {
		t.Errorf("got %d spans, want %d", got, 8*500)
	}
}
