package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests seen.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	g := r.Gauge("test_running", "Currently running.", L("mode", "bank"))
	g.Set(3)
	g.Add(-1)
	r.Func("test_cache_entries", "Cache size.", TypeGauge, func() float64 { return 7 })

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# HELP test_requests_total Requests seen.",
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"# TYPE test_running gauge",
		`test_running{mode="bank"} 2`,
		"test_cache_entries 7",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("counter value = %g, want 3", c.Value())
	}
}

func TestSameNameSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	if l1, l2 := r.Counter("x_total", "", L("k", "1")), r.Counter("x_total", "", L("k", "2")); l1 == l2 {
		t.Error("distinct label sets returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a name under a different type did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	r.Counter("0bad-name", "")
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10}, L("stage", "step2"))
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{stage="step2",le="0.1"} 1`,
		`test_seconds_bucket{stage="step2",le="1"} 3`,
		`test_seconds_bucket{stage="step2",le="10"} 4`,
		`test_seconds_bucket{stage="step2",le="+Inf"} 5`,
		`test_seconds_sum{stage="step2"} 56.05`,
		`test_seconds_count{stage="step2"} 5`,
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

// TestExpositionParses pins the registry and the parser against each
// other: everything the registry writes must pass the strict grammar.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "With \\ and \"quotes\" and\nnewline.", L("q", "x\"y\\z\nw")).Inc()
	r.Gauge("b", "").Set(math.Inf(1))
	h := r.Histogram("c_seconds", "h", DurationBuckets)
	h.Observe(0.002)
	h.Observe(1000) // past the last bound: +Inf only
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("registry output does not parse: %v\n%s", err, b.String())
	}
	if v, ok := fams.Value("a_total", L("q", "x\"y\\z\nw")); !ok || v != 1 {
		t.Errorf("a_total = %g, %v; want 1, true", v, ok)
	}
	if v, ok := fams.Value("b"); !ok || !math.IsInf(v, 1) {
		t.Errorf("b = %g, %v; want +Inf, true", v, ok)
	}
	if v, ok := fams.Value("c_seconds_count"); !ok || v != 2 {
		t.Errorf("c_seconds_count = %g, %v; want 2, true", v, ok)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4, 8})
	// 100 observations uniform in (0, 1]: p50 interpolates to ~0.5
	// inside the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%10)/10 + 0.05)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	p50, ok := fams.Quantile("q_seconds", 0.5)
	if !ok {
		t.Fatal("no p50")
	}
	if p50 < 0.4 || p50 > 0.6 {
		t.Errorf("p50 = %g, want ~0.5", p50)
	}
	p99, ok := fams.Quantile("q_seconds", 0.99)
	if !ok || p99 > 1 {
		t.Errorf("p99 = %g, %v; want <= 1 (all mass in first bucket)", p99, ok)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// and checks the totals are exact — the -race run of this test is the
// "concurrent observes never corrupt totals" gate.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "", []float64{0.5, 1, 2})
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(w%4) * 0.6)
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*perW); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseText(strings.NewReader(b.String())); err != nil {
		t.Errorf("concurrent-write exposition does not parse: %v", err)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":          "0bad 1\n",
		"bad value":         "a_total one\n",
		"duplicate series":  "a_total 1\na_total 2\n",
		"unknown type":      "# TYPE a_total matrix\n",
		"help after sample": "a_total 1\n# HELP a_total late\n",
		"non-monotonic histogram": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"histogram without +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"histogram count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
		"histogram missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_count 5\n",
	}
	for name, in := range cases {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse accepted %q", name, in)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if len(DurationBuckets) != 21 || DurationBuckets[0] != 100e-6 {
		t.Errorf("DurationBuckets = %v", DurationBuckets)
	}
}
