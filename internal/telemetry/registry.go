// Package telemetry is the repo's unified observability layer: a
// zero-dependency metrics registry with exact Prometheus text
// exposition (counters, gauges, callback-backed metrics and
// fixed-bucket histograms), a parser for that same text format (so
// tests and the load generator consume what the daemons expose), and
// a lightweight per-job span tracer with context propagation (trace.go)
// that follows one comparison across the coordinator→worker scatter.
//
// The source paper's whole contribution is a per-stage wall-time
// breakdown measured offline; this package makes the same breakdown
// observable on every production request. Both daemons serve a
// Registry on /metrics, the pipeline records per-shard step1/2/3
// spans into the request's Trace, and the cluster coordinator stitches
// worker traces into its own so cross-node tail latency has a per-
// volume, per-stage attribution.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the Prometheus metric type announced on the TYPE line.
type MetricType string

// Metric types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Label is one name="value" pair attached to a metric instance.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). All methods are safe for
// concurrent use. Metric and label names are validated on
// registration; invalid names panic — they are programmer errors, and
// failing at registration keeps the exposition exactly parseable.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string // family registration order
}

// family is every metric sharing one name (differing only in labels).
type family struct {
	name  string
	help  string
	typ   MetricType
	mets  map[string]renderable // label signature → metric
	order []string
}

// renderable is the exposition hook every metric kind implements.
type renderable interface {
	render(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal label name (colons are
// reserved for metric names).
func validLabelName(s string) bool {
	return validName(s) && !strings.Contains(s, ":")
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// labelString renders a sorted, escaped {a="b",c="d"} block ("" when
// no labels). Sorting makes the signature canonical, so the same label
// set always resolves to the same metric instance.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the family and the labeled slot, running
// make() under the registry lock when the slot is new. Re-registering
// the same (name, labels) returns the existing metric; re-registering
// a name under a different type panics — one name must render under
// one TYPE line or the exposition is unparseable.
func (r *Registry) lookup(name, help string, typ MetricType, labels []Label, mk func() renderable) renderable {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	sig := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, mets: make(map[string]renderable)}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	m := f.mets[sig]
	if m == nil {
		m = mk()
		f.mets[sig] = m
		f.order = append(f.order, sig)
	}
	return m
}

// Counter is a monotonically increasing float64.
type Counter struct{ bits atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.bits.add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.bits.add(v)
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.bits.load() }

func (c *Counter) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(c.bits.load()))
}

// Counter finds or creates a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, TypeCounter, labels, func() renderable { return &Counter{} }).(*Counter)
}

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.store(v) }

// Add adjusts the value by v (may be negative).
func (g *Gauge) Add(v float64) { g.bits.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.bits.load() }

func (g *Gauge) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.bits.load()))
}

// Gauge finds or creates a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, TypeGauge, labels, func() renderable { return &Gauge{} }).(*Gauge)
}

// funcMetric reads its value from a callback at scrape time — the
// bridge for counters that already live elsewhere (the service's
// MetricsSnapshot, the coordinator's worker table) so migrating onto
// the registry does not mean double-counting.
type funcMetric struct{ fn func() float64 }

func (f *funcMetric) render(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(f.fn()))
}

// Func registers a callback-backed metric of the given type. The
// callback runs at every scrape and must be safe for concurrent use.
func (r *Registry) Func(name, help string, typ MetricType, fn func() float64, labels ...Label) {
	r.lookup(name, help, typ, labels, func() renderable { return &funcMetric{fn: fn} })
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; the +Inf bucket is implicit. Observe is
// lock-free (atomics), so hot paths — one observation per pipeline
// shard per stage — never contend on a registry lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound; +Inf derived from total
	total  atomic.Uint64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are cumulative in the exposition but stored sparse here:
	// count only the first bucket the value fits, accumulate on render.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.total.Add(1)
	h.sum.add(v)
}

// Count returns how many observations the histogram has recorded.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func (h *Histogram) render(w io.Writer, name, labels string) {
	// The _bucket series carries an extra le label; splice it into any
	// existing label block.
	leLabels := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		return fmt.Sprintf(`%s,le="%s"}`, strings.TrimSuffix(labels, "}"), le)
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabels(formatFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabels("+Inf"), h.total.Load())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.sum.load()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.total.Load())
}

// Histogram finds or creates a histogram with the given bucket upper
// bounds (ascending, deduplicated; +Inf implicit). An empty bounds
// slice panics — a histogram with only +Inf is a counter in disguise.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly ascending", name))
		}
	}
	return r.lookup(name, help, TypeHistogram, labels, func() renderable {
		return &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)),
		}
	}).(*Histogram)
}

// ExpBuckets returns n upper bounds growing geometrically from start
// by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default latency bucket layout: 100 µs to
// ~105 s in ×2 steps (21 buckets), wide enough for a cold index build
// and fine enough that p50/p99 of a sub-millisecond stage resolve.
var DurationBuckets = ExpBuckets(100e-6, 2, 21)

// WriteTo renders every family in registration order: HELP and TYPE
// lines first, then each labeled series. The output parses under
// ParseText — the registry and the parser are tested against each
// other.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cw := &countingWriter{w: w}
	for _, name := range r.order {
		f := r.fams[name]
		if f.help != "" {
			fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ)
		for _, sig := range f.order {
			f.mets[sig].render(cw, f.name, sig)
		}
	}
	return cw.n, cw.err
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest round-trip representation, Inf as +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// atomicFloat is a float64 with atomic load/store/add.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}
