package telemetry

import (
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves the net/http/pprof profiling endpoints on addr in
// a background goroutine and returns once the listener is bound (so a
// bad address fails fast at daemon startup). The profiling mux is
// deliberately its own server on its own port: profiles expose
// internals the job API's port should not, and a wedged handler on the
// serving port must not take profiling down with it. Returns the bound
// address (useful with ":0").
//
// The server lives for the process; daemons expose it behind a
// -pprof-addr flag and simply don't call this when the flag is unset.
func StartPprof(addr string, log *slog.Logger) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if serr := srv.Serve(ln); serr != nil && log != nil {
			log.Error("pprof server exited", "addr", ln.Addr().String(), "err", serr)
		}
	}()
	if log != nil {
		log.Info("pprof listening", "addr", ln.Addr().String())
	}
	return ln.Addr().String(), nil
}
