package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceHeader is the HTTP header the cluster coordinator propagates a
// trace ID under when scattering volume jobs onto workers; a worker
// that sees it stamps the submitted job with the caller's trace ID, so
// the spans it records are correlatable with the coordinator's when
// the trace is gathered.
const TraceHeader = "Seedblast-Trace-Id"

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Span is one finished, named, timed unit of work inside a trace.
type Span struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Attr returns the value of the named attribute ("" when absent).
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Trace collects the spans of one job under one trace ID. It is safe
// for concurrent use — pipeline stages record spans from several
// goroutines at once. Spans are append-only; Spans() snapshots them
// sorted by start time, so a trace can be served over the job API
// while the job is still running.
type Trace struct {
	id    string
	begun time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace with the given ID (NewTraceID for a
// fresh one).
func NewTrace(id string) *Trace {
	return &Trace{id: id, begun: time.Now()}
}

// NewTraceID returns a 16-hex-char random trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; a zero ID
		// beats a panic in a telemetry path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace identifier ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Record appends one finished span. It is the low-level hook for call
// sites that already hold a start time and duration (the pipeline's
// stage timings); StartSpan is the ergonomic wrapper.
func (t *Trace) Record(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Duration: d, Attrs: attrs})
	t.mu.Unlock()
}

// Graft appends spans recorded elsewhere (a worker's trace fetched at
// gather), adding the given attributes to every one — the coordinator
// stamps worker= and volume= so cross-node spans stay attributable.
func (t *Trace) Graft(spans []Span, attrs ...Attr) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, s := range spans {
		s.Attrs = append(append([]Attr(nil), s.Attrs...), attrs...)
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Spans returns a snapshot of the recorded spans sorted by start time
// (ties keep recording order).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// ActiveSpan is an in-progress span; End records it.
type ActiveSpan struct {
	trace *Trace
	name  string
	start time.Time
	attrs []Attr
}

// End finishes the span and records it on its trace. Safe on the
// no-trace zero span.
func (s *ActiveSpan) End() {
	if s.trace == nil {
		return
	}
	s.trace.Record(s.name, s.start, time.Since(s.start), s.attrs...)
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// ContextWithTrace returns ctx carrying the trace. The pipeline, the
// service and the coordinator all discover the current job's trace
// this way, so one context value follows the request through every
// layer.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFromContext returns the context's trace, or nil — every
// recording entry point tolerates a nil trace, so instrumented code
// needs no "is tracing on" branches.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// StartSpan begins a span on the context's trace; End records it. With
// no trace in ctx the returned span is inert.
func StartSpan(ctx context.Context, name string, attrs ...Attr) *ActiveSpan {
	t := TraceFromContext(ctx)
	if t == nil {
		return &ActiveSpan{}
	}
	return &ActiveSpan{trace: t, name: name, start: time.Now(), attrs: attrs}
}

// SpanJSON is a span's wire form on the GET /v1/jobs/{id}/trace
// endpoint.
type SpanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"durationMS"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceJSON is a trace's wire form. Span start times are absolute
// host clocks; across nodes they are comparable only up to clock
// skew — durations are always exact.
type TraceJSON struct {
	TraceID string     `json:"traceId"`
	Spans   []SpanJSON `json:"spans"`
}

// JSON renders the trace's current snapshot in wire form. A nil trace
// renders as an empty trace, so serving a job with no trace is safe.
func (t *Trace) JSON() *TraceJSON {
	out := &TraceJSON{TraceID: t.ID(), Spans: []SpanJSON{}}
	for _, s := range t.Spans() {
		sj := SpanJSON{
			Name:       s.Name,
			Start:      s.Start,
			DurationMS: float64(s.Duration.Nanoseconds()) / 1e6,
		}
		if len(s.Attrs) > 0 {
			sj.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				sj.Attrs[a.Key] = a.Value
			}
		}
		out.Spans = append(out.Spans, sj)
	}
	return out
}

// SpansFromJSON converts wire spans back into Span values — the
// coordinator grafts a fetched worker trace this way.
func SpansFromJSON(spans []SpanJSON) []Span {
	out := make([]Span, 0, len(spans))
	for _, sj := range spans {
		s := Span{
			Name:     sj.Name,
			Start:    sj.Start,
			Duration: time.Duration(sj.DurationMS * 1e6),
		}
		if len(sj.Attrs) > 0 {
			keys := make([]string, 0, len(sj.Attrs))
			for k := range sj.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				s.Attrs = append(s.Attrs, Attr{Key: k, Value: sj.Attrs[k]})
			}
		}
		out = append(out, s)
	}
	return out
}
