package align

import (
	"bytes"
	"fmt"

	"seedblast/internal/alphabet"
	"seedblast/internal/matrix"
)

// GapParams are affine gap penalties expressed as positive costs.
// Opening a gap of length L costs Open + L·Extend, the NCBI convention;
// the paper's comparisons run BLAST at its defaults (11, 1).
type GapParams struct {
	Open   int
	Extend int
}

// DefaultGaps are BLAST's default BLOSUM62 gap costs.
var DefaultGaps = GapParams{Open: 11, Extend: 1}

const negInf = int32(-1 << 28)

// Local is the result of a local alignment: score and half-open
// coordinate ranges in both sequences.
type Local struct {
	Score  int
	AStart int
	AEnd   int
	BStart int
	BEnd   int
}

// Aligner runs affine-gap local alignments (Gotoh's algorithm). It
// keeps scratch buffers between calls, so one Aligner per goroutine
// avoids repeated allocation in the gapped stage's hot loop.
type Aligner struct {
	m   *matrix.Matrix
	gap GapParams
	h   []int32
	e   []int32
}

// NewAligner returns an Aligner for the given matrix and gap costs.
func NewAligner(m *matrix.Matrix, gap GapParams) *Aligner {
	return &Aligner{m: m, gap: gap}
}

func (al *Aligner) scratch(n int) (h, e []int32) {
	if cap(al.h) < n {
		al.h = make([]int32, n)
		al.e = make([]int32, n)
	}
	h, e = al.h[:n], al.e[:n]
	for j := range h {
		h[j] = 0
		e[j] = negInf
	}
	return h, e
}

// Local computes the best local alignment score of a against b with
// affine gaps, returning score and end coordinates (half-open). Start
// coordinates are recovered by a reverse pass only when needed — use
// Traceback for full coordinates and operations.
func (al *Aligner) Local(a, b []byte) Local {
	openExt := int32(al.gap.Open + al.gap.Extend)
	ext := int32(al.gap.Extend)
	table := al.m.Table()
	h, e := al.scratch(len(b) + 1)
	var best Local
	for i := 1; i <= len(a); i++ {
		row := table[int(a[i-1])*24 : int(a[i-1])*24+24]
		var diag int32 // H[i-1][j-1]
		f := negInf
		for j := 1; j <= len(b); j++ {
			up := h[j] // H[i-1][j]
			val := diag + int32(row[b[j-1]])
			diag = up
			if e[j] > val {
				val = e[j]
			}
			if f > val {
				val = f
			}
			if val < 0 {
				val = 0
			}
			h[j] = val
			if int(val) > best.Score {
				best = Local{Score: int(val), AEnd: i, BEnd: j}
			}
			// E: gap in a (consume b); F: gap in b (consume a).
			e[j] = maxI32(val-openExt, e[j]-ext)
			f = maxI32(val-openExt, f-ext)
		}
	}
	if best.Score == 0 {
		return Local{}
	}
	best.AStart, best.BStart = al.localStart(a, b, best)
	return best
}

// localStart recovers the start of the best alignment by running the
// same DP on the reversed prefixes ending at the known endpoint.
func (al *Aligner) localStart(a, b []byte, end Local) (int, int) {
	ra := reverse(a[:end.AEnd])
	rb := reverse(b[:end.BEnd])
	openExt := int32(al.gap.Open + al.gap.Extend)
	ext := int32(al.gap.Extend)
	table := al.m.Table()
	h, e := al.scratch(len(rb) + 1)
	bestScore, bi, bj := int32(0), 0, 0
	for i := 1; i <= len(ra); i++ {
		row := table[int(ra[i-1])*24 : int(ra[i-1])*24+24]
		var diag int32
		f := negInf
		for j := 1; j <= len(rb); j++ {
			up := h[j]
			val := diag + int32(row[rb[j-1]])
			diag = up
			if e[j] > val {
				val = e[j]
			}
			if f > val {
				val = f
			}
			if val < 0 {
				val = 0
			}
			h[j] = val
			if val > bestScore {
				bestScore, bi, bj = val, i, j
			}
			e[j] = maxI32(val-openExt, e[j]-ext)
			f = maxI32(val-openExt, f-ext)
		}
	}
	return end.AEnd - bi, end.BEnd - bj
}

func reverse(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

// LocalBanded computes a local alignment restricted to the diagonal
// band |(j - i) - diag| ≤ band, the gapped-stage shape: hits from the
// ungapped stage fix the diagonal and homologous regions stay near it.
// Cells outside the band are unreachable. Cost is O(len(a)·band).
func (al *Aligner) LocalBanded(a, b []byte, diag, band int) Local {
	best := al.LocalBandedEnd(a, b, diag, band)
	if best.Score == 0 {
		return Local{}
	}
	// Recover starts with a reverse banded pass on the bounded window:
	// reversed coordinates map (i, j) to (AEnd-i, BEnd-j), so the band
	// |(j-i) - diag| ≤ band becomes |(j'-i') - rd| ≤ band with
	// rd = BEnd - AEnd - diag.
	ra := reverse(a[:best.AEnd])
	rb := reverse(b[:best.BEnd])
	rd := best.BEnd - best.AEnd - diag
	sub := al.LocalBandedEnd(ra, rb, rd, band)
	best.AStart = best.AEnd - sub.AEnd
	best.BStart = best.BEnd - sub.BEnd
	return best
}

// LocalBandedEnd is LocalBanded without start recovery (score and
// endpoint only); exported for tests that validate the banded DP
// against the full Local.
func (al *Aligner) LocalBandedEnd(a, b []byte, diag, band int) Local {
	if band < 0 {
		band = 0
	}
	openExt := int32(al.gap.Open + al.gap.Extend)
	ext := int32(al.gap.Extend)
	table := al.m.Table()
	h, e, prevH, prevE := al.scratchBanded(len(b) + 2)
	var best Local
	for i := 1; i <= len(a); i++ {
		lo := max(1, i+diag-band)
		hi := min(len(b), i+diag+band)
		if i+diag-band > len(b) {
			break // band has left the matrix; later rows are all empty
		}
		if hi < 1 {
			continue // band has not yet entered the matrix
		}
		row := table[int(a[i-1])*24 : int(a[i-1])*24+24]
		f := negInf
		for j := lo; j <= hi; j++ {
			val := prevH[j-1] + int32(row[b[j-1]])
			pe := maxI32(prevH[j]-openExt, prevE[j]-ext)
			if pe > val {
				val = pe
			}
			if f > val {
				val = f
			}
			if val < 0 {
				val = 0
			}
			h[j] = val
			e[j] = pe
			if int(val) > best.Score {
				best = Local{Score: int(val), AEnd: i, BEnd: j}
			}
			f = maxI32(val-openExt, f-ext)
		}
		// Sentinels: the next row reads columns lo'-1..hi' with
		// lo' ≥ lo and hi' ≤ hi+1, so resetting the cells flanking the
		// written range keeps out-of-band cells unreachable without a
		// full-row clear.
		if lo-1 >= 0 {
			h[lo-1], e[lo-1] = 0, negInf
		}
		if hi+1 < len(h) {
			h[hi+1], e[hi+1] = 0, negInf
		}
		prevH, h = h, prevH
		prevE, e = e, prevE
	}
	return best
}

// scratchBanded returns four zeroed row buffers of length n for the
// banded DP, reusing Aligner storage.
func (al *Aligner) scratchBanded(n int) (h, e, prevH, prevE []int32) {
	if cap(al.h) < 2*n {
		al.h = make([]int32, 2*n)
		al.e = make([]int32, 2*n)
	}
	buf, ebuf := al.h[:2*n], al.e[:2*n]
	h, prevH = buf[:n], buf[n:]
	e, prevE = ebuf[:n], ebuf[n:]
	for j := 0; j < n; j++ {
		h[j], prevH[j] = 0, 0
		e[j], prevE[j] = negInf, negInf
	}
	return h, e, prevH, prevE
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Op is one run of alignment operations.
type Op struct {
	Kind OpKind
	Len  int
}

// OpKind distinguishes aligned pairs from gaps.
type OpKind byte

const (
	OpAligned OpKind = 'M' // aligned pair (match or substitution)
	OpInsB    OpKind = 'I' // gap in a, residues consumed from b
	OpDelB    OpKind = 'D' // gap in b, residues consumed from a
)

// Direction-matrix bit layout for Traceback. Per cell (i, j):
//
//	bits 0-1: source of H[i][j] — 0 stop, 1 diagonal, 2 vertical gap
//	          state V[i][j], 3 horizontal gap state G[i][j];
//	bit 2:    V[i][j] extends V[i-1][j] (otherwise opens from H[i-1][j]);
//	bit 3:    G[i][j] extends G[i][j-1] (otherwise opens from H[i][j-1]).
//
// V is the gap-in-b state (consumes a, moves up); G is the gap-in-a
// state (consumes b, moves left).
const (
	tbSrcMask  = 3
	tbStop     = 0
	tbDiag     = 1
	tbVert     = 2
	tbHoriz    = 3
	tbVertExt  = 4
	tbHorizExt = 8
)

// Traceback computes the best local alignment with full operations.
// It stores a direction matrix of (len(a)+1)·(len(b)+1) bytes, so use
// it on bounded windows (the gapped stage aligns query-sized windows).
func (al *Aligner) Traceback(a, b []byte) (Local, []Op) {
	openExt := int32(al.gap.Open + al.gap.Extend)
	ext := int32(al.gap.Extend)
	table := al.m.Table()
	cols := len(b) + 1
	dir := make([]byte, (len(a)+2)*cols)
	h, e := al.scratch(len(b) + 1)
	var best Local
	for i := 1; i <= len(a); i++ {
		row := table[int(a[i-1])*24 : int(a[i-1])*24+24]
		var diag int32
		f := negInf
		for j := 1; j <= len(b); j++ {
			up := h[j] // H[i-1][j]
			val := diag + int32(row[b[j-1]])
			src := byte(tbDiag)
			if e[j] > val { // e[j] = V[i][j], provenance already recorded
				val = e[j]
				src = tbVert
			}
			if f > val { // f = G[i][j]
				val = f
				src = tbHoriz
			}
			if val <= 0 {
				val = 0
				src = tbStop
			}
			diag = up
			h[j] = val
			dir[i*cols+j] |= src
			if int(val) > best.Score {
				best = Local{Score: int(val), AEnd: i, BEnd: j}
			}
			// V[i+1][j] = max(H[i][j]-openExt, V[i][j]-ext): record its
			// provenance in the next row's cell.
			if e[j]-ext >= val-openExt {
				e[j] -= ext
				dir[(i+1)*cols+j] |= tbVertExt
			} else {
				e[j] = val - openExt
			}
			// G[i][j+1] = max(H[i][j]-openExt, G[i][j]-ext): record its
			// provenance in the next column's cell.
			if f-ext >= val-openExt {
				f -= ext
				if j+1 <= len(b) {
					dir[i*cols+j+1] |= tbHorizExt
				}
			} else {
				f = val - openExt
			}
		}
	}
	if best.Score == 0 {
		return Local{}, nil
	}
	// Walk back from the endpoint.
	var rev []Op
	pushOp := func(k OpKind) {
		if len(rev) > 0 && rev[len(rev)-1].Kind == k {
			rev[len(rev)-1].Len++
			return
		}
		rev = append(rev, Op{Kind: k, Len: 1})
	}
	i, j := best.AEnd, best.BEnd
	const stH, stV, stG = 0, 1, 2
	state := stH
walk:
	for i > 0 && j > 0 {
		d := dir[i*cols+j]
		switch state {
		case stH:
			switch d & tbSrcMask {
			case tbStop:
				break walk
			case tbDiag:
				pushOp(OpAligned)
				i--
				j--
			case tbVert:
				state = stV
			case tbHoriz:
				state = stG
			}
		case stV: // gap in b: consume a[i-1], move up
			pushOp(OpDelB)
			if d&tbVertExt == 0 {
				state = stH
			}
			i--
		case stG: // gap in a: consume b[j-1], move left
			pushOp(OpInsB)
			if d&tbHorizExt == 0 {
				state = stH
			}
			j--
		}
	}
	best.AStart, best.BStart = i, j
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return best, rev
}

// FormatAlignment renders a three-line alignment (query, midline,
// subject) for the traceback ops, starting at the Local coordinates.
// The midline shows the residue for identities, '+' for positive
// substitution scores and ' ' otherwise, as BLAST output does.
func FormatAlignment(a, b []byte, loc Local, ops []Op, m *matrix.Matrix) string {
	var qa, mid, sa bytes.Buffer
	i, j := loc.AStart, loc.BStart
	for _, op := range ops {
		for k := 0; k < op.Len; k++ {
			switch op.Kind {
			case OpAligned:
				ca, cb := a[i], b[j]
				qa.WriteByte(alphabet.ProteinLetter(ca))
				sa.WriteByte(alphabet.ProteinLetter(cb))
				switch {
				case ca == cb:
					mid.WriteByte(alphabet.ProteinLetter(ca))
				case m.Score(ca, cb) > 0:
					mid.WriteByte('+')
				default:
					mid.WriteByte(' ')
				}
				i++
				j++
			case OpInsB:
				qa.WriteByte('-')
				mid.WriteByte(' ')
				sa.WriteByte(alphabet.ProteinLetter(b[j]))
				j++
			case OpDelB:
				qa.WriteByte(alphabet.ProteinLetter(a[i]))
				mid.WriteByte(' ')
				sa.WriteByte('-')
				i++
			}
		}
	}
	return fmt.Sprintf("Query  %4d %s %d\n            %s\nSbjct  %4d %s %d\n",
		loc.AStart+1, qa.String(), i,
		mid.String(),
		loc.BStart+1, sa.String(), j)
}
