// Package align provides the scoring primitives shared by the
// pipeline's ungapped stage, the gapped stage, the hardware simulator
// and the BLAST baseline: window scores over fixed-length
// neighbourhoods, X-drop ungapped extension, and banded affine-gap
// local alignment with traceback.
package align

import (
	"seedblast/internal/alphabet"
	"seedblast/internal/matrix"
)

// WindowScore computes the ungapped score of two equal-length windows
// as the maximum over all zero-clamped running sums (Kadane): the best
// scoring contiguous segment of the window. This is the semantics of
// the paper's §2.2 pseudocode — its published listing reads
// "score = max(score, score + Sub[S0[k]][S1[k]])", which taken
// literally never decreases and is a typo for the clamped running sum —
// and is what each processing element of the PSC operator computes in
// W+2N clock cycles (an adder, a clamp and a running maximum).
func WindowScore(s0, s1 []byte, m *matrix.Matrix) int {
	table := m.Table()
	score, best := 0, 0
	for k := 0; k < len(s0); k++ {
		score += int(table[int(s0[k])*alphabet.NumAA+int(s1[k])])
		if score < 0 {
			score = 0
		}
		if score > best {
			best = score
		}
	}
	return best
}

// MaxPrefixScore computes the running-sum variant without the zero
// clamp: the maximum over prefix sums of the window. It is the most
// literal reading of the PE datapath ("the result is added to the
// current score and a maximum value is computed") and is kept as an
// ablation; the pipeline uses WindowScore.
func MaxPrefixScore(s0, s1 []byte, m *matrix.Matrix) int {
	table := m.Table()
	score, best := 0, 0
	for k := 0; k < len(s0); k++ {
		score += int(table[int(s0[k])*alphabet.NumAA+int(s1[k])])
		if score > best {
			best = score
		}
	}
	return best
}

// UngappedExtension is the result of an X-drop ungapped extension.
type UngappedExtension struct {
	Score  int
	QStart int // inclusive
	QEnd   int // exclusive
	SStart int
	SEnd   int
}

// ExtendUngapped performs BLAST-style X-drop ungapped extension from a
// seed match q[qPos:qPos+w] / s[sPos:sPos+w]: it extends left from the
// seed start and right from the seed end, in each direction accumulating
// pair scores and stopping when the running score falls more than xdrop
// below the best seen. The returned interval is the best-scoring
// extension including the seed.
func ExtendUngapped(q, s []byte, qPos, sPos, w int, xdrop int, m *matrix.Matrix) UngappedExtension {
	table := m.Table()

	// Score of the seed itself.
	seedScore := 0
	for k := 0; k < w; k++ {
		seedScore += int(table[int(q[qPos+k])*alphabet.NumAA+int(s[sPos+k])])
	}

	// Right extension from the seed end.
	best := 0
	run := 0
	rightLen := 0
	for i := 0; qPos+w+i < len(q) && sPos+w+i < len(s); i++ {
		run += int(table[int(q[qPos+w+i])*alphabet.NumAA+int(s[sPos+w+i])])
		if run > best {
			best = run
			rightLen = i + 1
		}
		if best-run > xdrop {
			break
		}
	}
	rightScore := best

	// Left extension from the seed start.
	best, run = 0, 0
	leftLen := 0
	for i := 1; qPos-i >= 0 && sPos-i >= 0; i++ {
		run += int(table[int(q[qPos-i])*alphabet.NumAA+int(s[sPos-i])])
		if run > best {
			best = run
			leftLen = i
		}
		if best-run > xdrop {
			break
		}
	}
	leftScore := best

	return UngappedExtension{
		Score:  seedScore + leftScore + rightScore,
		QStart: qPos - leftLen,
		QEnd:   qPos + w + rightLen,
		SStart: sPos - leftLen,
		SEnd:   sPos + w + rightLen,
	}
}
