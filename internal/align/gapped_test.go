package align

import (
	"strings"
	"testing"
	"testing/quick"

	"seedblast/internal/alphabet"
	"seedblast/internal/matrix"
)

// naiveAffine is an independent full three-matrix affine local
// alignment used as the reference implementation in tests.
func naiveAffine(a, b []byte, m *matrix.Matrix, gap GapParams) int {
	n0, n1 := len(a), len(b)
	const ninf = -1 << 28
	H := mkMat(n0+1, n1+1, 0)
	E := mkMat(n0+1, n1+1, ninf) // gap in a (horizontal)
	F := mkMat(n0+1, n1+1, ninf) // gap in b (vertical)
	best := 0
	for i := 1; i <= n0; i++ {
		for j := 1; j <= n1; j++ {
			E[i][j] = maxInt(H[i][j-1]-gap.Open-gap.Extend, E[i][j-1]-gap.Extend)
			F[i][j] = maxInt(H[i-1][j]-gap.Open-gap.Extend, F[i-1][j]-gap.Extend)
			h := H[i-1][j-1] + m.Score(a[i-1], b[j-1])
			h = maxInt(h, E[i][j])
			h = maxInt(h, F[i][j])
			h = maxInt(h, 0)
			H[i][j] = h
			best = maxInt(best, h)
		}
	}
	return best
}

func mkMat(r, c, fill int) [][]int {
	m := make([][]int, r)
	for i := range m {
		m[i] = make([]int, c)
		for j := range m[i] {
			m[i][j] = fill
		}
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func randSeqs(raw0, raw1 []byte) (a, b []byte) {
	a = make([]byte, len(raw0))
	b = make([]byte, len(raw1))
	for i, r := range raw0 {
		a[i] = r % alphabet.NumStandardAA
	}
	for i, r := range raw1 {
		b[i] = r % alphabet.NumStandardAA
	}
	return a, b
}

func TestLocalMatchesNaive(t *testing.T) {
	al := NewAligner(matrix.BLOSUM62, DefaultGaps)
	f := func(raw0, raw1 [20]byte) bool {
		a, b := randSeqs(raw0[:], raw1[:])
		return al.Local(a, b).Score == naiveAffine(a, b, matrix.BLOSUM62, DefaultGaps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalMatchesNaiveCheapGaps(t *testing.T) {
	gaps := GapParams{Open: 2, Extend: 1}
	al := NewAligner(matrix.BLOSUM62, gaps)
	f := func(raw0, raw1 [16]byte) bool {
		a, b := randSeqs(raw0[:], raw1[:])
		return al.Local(a, b).Score == naiveAffine(a, b, matrix.BLOSUM62, gaps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalIdentity(t *testing.T) {
	al := NewAligner(matrix.NewMatchMismatch(3, -2), GapParams{Open: 5, Extend: 1})
	s := alphabet.MustEncodeProtein("ARNDCQEGH")
	loc := al.Local(s, s)
	if loc.Score != 27 {
		t.Errorf("identity score = %d, want 27", loc.Score)
	}
	if loc.AStart != 0 || loc.AEnd != 9 || loc.BStart != 0 || loc.BEnd != 9 {
		t.Errorf("identity span = %+v", loc)
	}
}

func TestLocalEmptyAndNoMatch(t *testing.T) {
	al := NewAligner(matrix.NewMatchMismatch(1, -1), DefaultGaps)
	if loc := al.Local(nil, nil); loc.Score != 0 {
		t.Error("empty alignment nonzero")
	}
	a := alphabet.MustEncodeProtein("AAAA")
	b := alphabet.MustEncodeProtein("RRRR")
	if loc := al.Local(a, b); loc.Score != 0 {
		t.Errorf("all-mismatch score = %d", loc.Score)
	}
}

func TestLocalFindsGappedAlignment(t *testing.T) {
	// Two identical halves with an insertion in b: score must beat the
	// ungapped alternative by paying one gap.
	al := NewAligner(matrix.NewMatchMismatch(2, -2), GapParams{Open: 3, Extend: 1})
	a := alphabet.MustEncodeProtein("WWWWWWKKKKKK")
	b := alphabet.MustEncodeProtein("WWWWWWAAAKKKKKK")
	loc := al.Local(a, b)
	want := 12*2 - (3 + 3*1) // 12 matches, one gap of length 3
	if loc.Score != want {
		t.Errorf("gapped score = %d, want %d", loc.Score, want)
	}
}

func TestLocalStartRecovery(t *testing.T) {
	al := NewAligner(matrix.NewMatchMismatch(2, -3), DefaultGaps)
	a := alphabet.MustEncodeProtein("DDDDWWWWWW")
	b := alphabet.MustEncodeProtein("RRRRRWWWWWW")
	loc := al.Local(a, b)
	if loc.AStart != 4 || loc.BStart != 5 {
		t.Errorf("start = (%d,%d), want (4,5)", loc.AStart, loc.BStart)
	}
	if loc.AEnd != 10 || loc.BEnd != 11 {
		t.Errorf("end = (%d,%d), want (10,11)", loc.AEnd, loc.BEnd)
	}
}

func TestLocalBandedWideBandEqualsLocal(t *testing.T) {
	al := NewAligner(matrix.BLOSUM62, DefaultGaps)
	f := func(raw0, raw1 [18]byte) bool {
		a, b := randSeqs(raw0[:], raw1[:])
		full := al.Local(a, b)
		banded := al.LocalBanded(a, b, 0, len(a)+len(b))
		return full.Score == banded.Score
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalBandedRespectsBand(t *testing.T) {
	// With band 0 around diagonal 0 only the main diagonal is reachable:
	// the score equals the best clamped segment of pairwise scores.
	al := NewAligner(matrix.NewMatchMismatch(3, -3), GapParams{Open: 1, Extend: 1})
	a := alphabet.MustEncodeProtein("AAAAAA")
	b := alphabet.MustEncodeProtein("AAARAA")
	loc := al.LocalBandedEnd(a, b, 0, 0)
	// Best diagonal segment: all six pairs, 5 matches − 1 mismatch = 12.
	if loc.Score != 12 {
		t.Errorf("band-0 score = %d, want 12", loc.Score)
	}
	// Skipping the R with a cheap gap scores 5·3 − 2 = 13 but needs to
	// leave the diagonal, which band 0 forbids.
	wide := al.LocalBanded(a, b, 0, 3)
	if wide.Score != 13 {
		t.Errorf("wider band score = %d, want 13", wide.Score)
	}
}

func TestLocalBandedOffsetDiagonal(t *testing.T) {
	al := NewAligner(matrix.NewMatchMismatch(2, -2), DefaultGaps)
	// Match lies on diagonal +3.
	a := alphabet.MustEncodeProtein("WWWWW")
	b := alphabet.MustEncodeProtein("RRRWWWWW")
	loc := al.LocalBanded(a, b, 3, 1)
	if loc.Score != 10 {
		t.Errorf("offset-diag score = %d, want 10", loc.Score)
	}
	if loc.AStart != 0 || loc.BStart != 3 {
		t.Errorf("start = (%d,%d), want (0,3)", loc.AStart, loc.BStart)
	}
}

func TestLocalBandedStartRecoveryProperty(t *testing.T) {
	al := NewAligner(matrix.BLOSUM62, DefaultGaps)
	f := func(raw0, raw1 [22]byte, bandRaw uint8) bool {
		a, b := randSeqs(raw0[:], raw1[:])
		band := int(bandRaw%10) + 1
		loc := al.LocalBanded(a, b, 0, band)
		if loc.Score == 0 {
			return true
		}
		// Realigning the recovered sub-ranges must reproduce the score.
		sub := al.LocalBanded(a[loc.AStart:loc.AEnd], b[loc.BStart:loc.BEnd],
			loc.BStart-loc.AStart+ /*shift to window*/ loc.AStart-loc.BStart, band)
		return sub.Score >= loc.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTracebackScoreMatchesLocal(t *testing.T) {
	al := NewAligner(matrix.BLOSUM62, DefaultGaps)
	f := func(raw0, raw1 [20]byte) bool {
		a, b := randSeqs(raw0[:], raw1[:])
		full := al.Local(a, b)
		loc, ops := al.Traceback(a, b)
		if loc.Score != full.Score {
			return false
		}
		if loc.Score == 0 {
			return ops == nil
		}
		return opsScore(a, b, loc, ops, matrix.BLOSUM62, DefaultGaps) == loc.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// opsScore recomputes an alignment's score from its operations; -1<<30
// if the ops do not span the Local ranges exactly.
func opsScore(a, b []byte, loc Local, ops []Op, m *matrix.Matrix, gap GapParams) int {
	i, j, score := loc.AStart, loc.BStart, 0
	for _, op := range ops {
		switch op.Kind {
		case OpAligned:
			for k := 0; k < op.Len; k++ {
				score += m.Score(a[i], b[j])
				i++
				j++
			}
		case OpInsB:
			score -= gap.Open + gap.Extend*op.Len
			j += op.Len
		case OpDelB:
			score -= gap.Open + gap.Extend*op.Len
			i += op.Len
		}
	}
	if i != loc.AEnd || j != loc.BEnd {
		return -1 << 30
	}
	return score
}

func TestTracebackGappedOps(t *testing.T) {
	al := NewAligner(matrix.NewMatchMismatch(2, -2), GapParams{Open: 3, Extend: 1})
	a := alphabet.MustEncodeProtein("WWWWWWKKKKKK")
	b := alphabet.MustEncodeProtein("WWWWWWAAAKKKKKK")
	loc, ops := al.Traceback(a, b)
	if got := opsScore(a, b, loc, ops, al.m, al.gap); got != loc.Score {
		t.Errorf("ops score %d != loc score %d", got, loc.Score)
	}
	// Must contain exactly one insertion run of length 3.
	var ins int
	for _, op := range ops {
		if op.Kind == OpInsB {
			ins += op.Len
		}
	}
	if ins != 3 {
		t.Errorf("insertion length = %d, want 3", ins)
	}
}

func TestFormatAlignment(t *testing.T) {
	al := NewAligner(matrix.BLOSUM62, DefaultGaps)
	a := alphabet.MustEncodeProtein("MKVLILAC")
	b := alphabet.MustEncodeProtein("MKVLVLAC")
	loc, ops := al.Traceback(a, b)
	out := FormatAlignment(a, b, loc, ops, matrix.BLOSUM62)
	if !strings.Contains(out, "MKVLILAC") || !strings.Contains(out, "MKVLVLAC") {
		t.Errorf("alignment text missing sequences:\n%s", out)
	}
	if !strings.Contains(out, "MKVL") {
		t.Errorf("midline missing identities:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Errorf("midline should mark positive I/V substitution:\n%s", out)
	}
}

func TestAlignerScratchReuse(t *testing.T) {
	// Repeated calls with shrinking/growing sizes must not corrupt results.
	al := NewAligner(matrix.BLOSUM62, DefaultGaps)
	a := alphabet.MustEncodeProtein("MKVLILACDEFGHIKLMN")
	b := alphabet.MustEncodeProtein("MKVLVLACDEFGHIKLMN")
	first := al.Local(a, b).Score
	al.Local(a[:4], b[:4])
	al.LocalBanded(a, b, 0, 3)
	second := al.Local(a, b).Score
	if first != second {
		t.Errorf("scratch reuse changed result: %d vs %d", first, second)
	}
}
